(* Benchmark harness.

   Running `dune exec bench/main.exe` regenerates every table and
   figure-grade claim of the paper (experiments E1-E8 of DESIGN.md) plus
   the A2-A5 ablations, and finishes with bechamel microbenchmarks of the
   computational kernels. Pass section names to run a subset:

     dune exec bench/main.exe -- table1 micro
     dune exec bench/main.exe -- quick table1   # E1 with fewer patterns
     dune exec bench/main.exe -- domains=4 profile
     dune exec bench/main.exe -- no-cache micro # cold-cache kernels

   One Bechamel test per paper table/figure measures the kernel that
   produces it. *)

let std = Format.std_formatter

let quick = ref false

let patterns () = if !quick then 65536 else Techmap.Estimate.default_patterns

(* ------------------------------------------------------------------ *)
(* Experiment sections                                                 *)

let run_libchar () =
  Format.printf "@.#### E2/E4/E5/E6 — library characterization ####@.";
  Experiments.Exp_libchar.print std (Experiments.Exp_libchar.run ())

let run_patterns () =
  Format.printf "@.#### E3/E8/A1 — I_off pattern classification ####@.";
  Experiments.Exp_patterns.print std (Experiments.Exp_patterns.run ())

let run_tgate () =
  Format.printf "@.#### E7 — transmission gate (Fig. 2) ####@.";
  Experiments.Exp_tgate.print std (Experiments.Exp_tgate.run ())

let run_delay () =
  Format.printf "@.#### E9 — intrinsic delay (transient analysis) ####@.";
  Experiments.Exp_delay.print std (Experiments.Exp_delay.run ())

let run_dynamic () =
  Format.printf "@.#### E10 — dynamic / reconfigurable cells (extension) ####@.";
  Experiments.Exp_dynamic.print std (Experiments.Exp_dynamic.run ())

let run_seq () =
  Format.printf "@.#### E12 — clocked CRC engine (extension) ####@.";
  Experiments.Exp_seq.print std (Experiments.Exp_seq.run ())

let run_pla () =
  Format.printf "@.#### E11 — ambipolar PLAs (extension) ####@.";
  Experiments.Exp_pla.print std (Experiments.Exp_pla.run ())

let run_sensitivity () =
  Format.printf "@.#### E13-E15 — operating point & variation sensitivity (extension) ####@.";
  Experiments.Exp_sensitivity.print std (Experiments.Exp_sensitivity.run ())

let run_table1 () =
  Format.printf "@.#### E1 — Table 1 (%d random patterns) ####@." (patterns ());
  Experiments.Exp_table1.print std (Experiments.Exp_table1.run ~patterns:(patterns ()) ())

let run_ablations () =
  Format.printf "@.#### A2-A5 — ablations ####@.";
  Experiments.Ablations.print std ()

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

open Bechamel
open Toolkit

let micro_tests () =
  let nor3 = Cell.Cells.find "NOR3" in
  let classify =
    Test.make ~name:"pattern-classify-NOR3"
      (Staged.stage (fun () -> ignore (Power.Pattern.analyze nor3.Cell.Cells.ambipolar ~pins:3)))
  in
  let dc_solve =
    Test.make ~name:"dc-solve-stack3"
      (Staged.stage (fun () ->
           Power.Leakage.clear_cache ();
           ignore
             (Power.Leakage.pattern_ioff Spice.Tech.cmos
                (Power.Pattern.Series
                   [ Power.Pattern.Unit 1; Power.Pattern.Unit 1; Power.Pattern.Unit 1 ]))))
  in
  let resyn =
    let nl = Circuits.Multiplier.generate ~width:4 in
    let aig = Aigs.Aig.of_netlist nl in
    Test.make ~name:"resyn2rs-mult4" (Staged.stage (fun () -> ignore (Aigs.Opt.resyn2rs aig)))
  in
  let mapping =
    let nl = Circuits.Multiplier.generate ~width:4 in
    let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
    let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
    Test.make ~name:"map-mult4" (Staged.stage (fun () -> ignore (Techmap.Mapper.map ml aig)))
  in
  let simulate =
    let nl = Circuits.Multiplier.generate ~width:8 in
    let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
    let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
    let mapped = Techmap.Mapper.map ml aig in
    Test.make ~name:"estimate-mult8-64k"
      (Staged.stage (fun () -> ignore (Techmap.Estimate.run ~patterns:65536 mapped)))
  in
  let matchlib_per_family =
    (* The real table construction per logic family — built-ins plus any
       registered data file (the PTL family when run from the repo root) —
       cold (cache bypassed) and Diskcache-warm (the first warm iteration
       publishes the artifact, the rest load it). *)
    List.concat_map
      (fun lib ->
        let name = lib.Cell.Genlib.name in
        [
          Test.make ~name:(Printf.sprintf "matchlib-build-%s-cold" name)
            (Staged.stage (fun () ->
                 ignore (Techmap.Matchlib.build ~cache:false lib)));
          Test.make ~name:(Printf.sprintf "matchlib-build-%s-warm" name)
            (Staged.stage (fun () -> ignore (Techmap.Matchlib.build lib)));
        ])
      (Cell.Genlib.libraries ())
  in
  let sim_seq_vs_par =
    (* Sequential vs. domain-parallel sweep over the same mapped netlist
       and stimulus: the pair pins the parallel speedup (and on a 1-core
       host, the sharding overhead) of the bit-sliced kernel. *)
    let nl = Circuits.Multiplier.generate ~width:8 in
    let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
    let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
    let mapped = Techmap.Mapper.map ml aig in
    let stimulus =
      Nets.Sim.random_stimulus ~domains:1
        ~inputs:(Array.length mapped.Techmap.Mapped.pi_nets) ~patterns:65536 ()
    in
    [
      Test.make ~name:"simulate-mult8-64k-seq"
        (Staged.stage (fun () ->
             ignore (Techmap.Mapped.simulate ~domains:1 mapped stimulus)));
      Test.make ~name:"simulate-mult8-64k-par"
        (Staged.stage (fun () ->
             ignore (Techmap.Mapped.simulate mapped stimulus)));
    ]
  in
  let supervise =
    (* Cost of the process-isolation layer itself: fork a worker, marshal
       a typical scalar payload back, reap the exit. Bounds the overhead
       `cntpower all` pays per experiment for crash/timeout safety. *)
    let payload = List.init 16 (fun i -> (Printf.sprintf "m%d" i, float_of_int i)) in
    Test.make ~name:"supervisor-fork-roundtrip"
      (Staged.stage (fun () ->
           ignore
             (Runtime.Supervisor.run
                ~policy:{ Runtime.Supervisor.timeout_s = 30.0; retries = 0; degrade = false }
                ~name:"bench"
                (fun ~degraded:_ -> payload))))
  in
  let telemetry_disabled =
    (* The instrumentation ships in release paths guarded by one flag;
       this pins the disabled cost of a span + counter + observation to
       nanoseconds so `cntpower all` without --profile stays free. *)
    Test.make ~name:"telemetry-span-disabled"
      (Staged.stage (fun () ->
           Runtime.Telemetry.with_span "bench.span" (fun () ->
               Runtime.Telemetry.count "bench.counter" 1;
               Runtime.Telemetry.observe "bench.dist" 1.0)))
  in
  let telemetry_disabled_traced =
    (* Same disabled path with a live trace context installed: the
       per-request Tracectx must not reintroduce cost into guarded
       emit/span sites when journal and telemetry are off. *)
    let ctx = Runtime.Tracectx.mint_root () in
    Test.make ~name:"telemetry-span-disabled-traced"
      (Staged.stage (fun () ->
           Runtime.Tracectx.with_ctx ctx (fun () ->
               Runtime.Telemetry.with_span "bench.span" (fun () ->
                   Runtime.Telemetry.count "bench.counter" 1;
                   Runtime.Telemetry.observe "bench.dist" 1.0);
               Runtime.Journal.emit Runtime.Journal.Cache_hit [])))
  in
  let metrics_snapshot =
    (* What the daemon pays to answer the `metrics` verb inline (and the
       campaign coordinator per completion): merge caller gauges and
       lifecycle counters with the telemetry registry into a snapshot. *)
    let gauges =
      List.init 8 (fun i -> (Printf.sprintf "gauge%d" i, float_of_int i))
    in
    let counters = List.init 24 (fun i -> (Printf.sprintf "serve.c%d" i, i)) in
    let started = Unix.gettimeofday () in
    Test.make ~name:"metrics-snapshot"
      (Staged.stage (fun () ->
           ignore
             (Runtime.Metrics.make ~source:"bench" ~started ~gauges ~counters
                ())))
  in
  [ classify; dc_solve; resyn; mapping; simulate ]
  @ matchlib_per_family @ sim_seq_vs_par
  @ [ supervise; telemetry_disabled; telemetry_disabled_traced;
      metrics_snapshot ]

let run_micro () =
  Format.printf "@.#### Microbenchmarks (bechamel) ####@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results =
        Analyze.all ols Instance.monotonic_clock (Benchmark.all cfg instances test)
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (ns :: _) ->
              if ns > 1e6 then Format.printf "  %-28s %10.2f ms/run@." name (ns /. 1e6)
              else Format.printf "  %-28s %10.1f ns/run@." name ns
          | Some [] | None -> Format.printf "  %-28s (no estimate)@." name)
        results)
    (micro_tests ())

(* ------------------------------------------------------------------ *)
(* Profiled representative workload: BENCH_profile.json                *)

let run_profile () =
  Format.printf
    "@.#### Telemetry profile (synth -> map -> estimate, mult8) ####@.";
  let module T = Runtime.Telemetry in
  (* Prime the persistent caches (unless no-cache) so the committed
     profile reflects the steady state: techmap.matchlib.build is a warm
     artifact load, not the one-off 0.8 s construction. *)
  if Runtime.Diskcache.enabled () then
    ignore (Techmap.Matchlib.build Cell.Genlib.generalized_cntfet);
  T.set_enabled true;
  T.reset ();
  (* Per-family match-table construction, cold and Diskcache-warm, so the
     committed profile tracks what a new family (e.g. the PTL data file)
     costs to bring up versus load back. *)
  T.with_span "bench.matchlib_families" (fun () ->
      List.iter
        (fun lib ->
          let name = lib.Cell.Genlib.name in
          T.with_span (Printf.sprintf "%s.cold" name) (fun () ->
              ignore (Techmap.Matchlib.build ~cache:false lib));
          T.with_span (Printf.sprintf "%s.warm" name) (fun () ->
              ignore (Techmap.Matchlib.build lib)))
        (Cell.Genlib.libraries ()));
  T.with_span "bench.pipeline" (fun () ->
      let nl = Circuits.Multiplier.generate ~width:8 in
      let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
      let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
      let mapped = Techmap.Mapper.map ml aig in
      ignore (Techmap.Estimate.run ~patterns:65536 mapped));
  let prof = T.snapshot () in
  T.set_enabled false;
  let path = "BENCH_profile.json" in
  (match T.save ~path prof with
  | Ok () -> Format.printf "wrote %s@." path
  | Error e -> Format.eprintf "cannot write %s: %a@." path Runtime.Cnt_error.pp e);
  T.pp std prof

(* ------------------------------------------------------------------ *)
(* serve round-trip: warm-cache request latency against a live daemon  *)

let serve_blif =
  ".model benchround\n\
   .inputs a b c d\n\
   .outputs y z\n\
   .names a b t\n\
   11 1\n\
   .names c d u\n\
   00 1\n\
   .names t u y\n\
   10 1\n\
   .names t u z\n\
   01 1\n\
   .end\n"

let run_serve_roundtrip () =
  let module Sv = Runtime.Server in
  let module Ck = Runtime.Checkpoint in
  let module T = Runtime.Telemetry in
  let n = 50 in
  Format.printf "@.#### serve round-trip (warm cache, %d requests) ####@." n;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cntb-%d.sock" (Unix.getpid ()))
  in
  flush stdout;
  flush stderr;
  (* The daemon is a forked child; OCaml 5 refuses to fork once any
     domain has ever been spawned, which is why this section leads the
     default order — every estimate section spawns pool domains. *)
  match (try Some (Unix.fork ()) with Unix.Unix_error _ -> None) with
  | None ->
      Format.printf
        "  skipped: cannot fork after parallel sections (run serve-roundtrip \
         first)@."
  | Some 0 ->
      Runtime.Journal.set_verbosity None;
      let handlers =
        {
          Sv.admit =
            (fun req -> Result.bind (Ck.field req "blif") (Ck.as_str "blif"));
          execute =
            (fun blif ->
              Result.map
                (fun r ->
                  Ck.Obj [ ("total_W", Ck.Num r.Techmap.Estimate.total) ])
                (Techmap.Estimate.run_blif ~domains:1 ~patterns:4096
                   ~lib:Cell.Genlib.generalized_cntfet blif));
          describe = (fun _ -> [ ("bench", "roundtrip") ]);
        }
      in
      let cfg =
        { (Sv.default_config ~socket_path:sock) with Sv.max_workers = 2 }
      in
      let code =
        match Sv.run cfg handlers with
        | Ok Sv.Drained -> 0
        | Ok Sv.Tripped -> 3
        | Error _ -> 4
      in
      Unix._exit code
  | Some pid ->
      let health = Ck.Obj [ ("verb", Ck.Str "health") ] in
      let rec wait_ready tries =
        tries > 0
        &&
        match Sv.call ~socket_path:sock ~timeout_s:2.0 health with
        | Ok _ -> true
        | Error _ ->
            Unix.sleepf 0.1;
            wait_ready (tries - 1)
      in
      if not (wait_ready 100) then
        Format.printf "  daemon never became ready@."
      else begin
        let req =
          Ck.Obj [ ("verb", Ck.Str "estimate"); ("blif", Ck.Str serve_blif) ]
        in
        (* Two throwaway calls publish the matchlib/leakage artifacts so
           the measured requests all run against a warm disk cache. *)
        for _ = 1 to 2 do
          ignore (Sv.call ~socket_path:sock req)
        done;
        let was = T.enabled () in
        T.set_enabled true;
        let failures = ref 0 in
        for _ = 1 to n do
          let t0 = Unix.gettimeofday () in
          match Sv.call ~socket_path:sock req with
          | Ok resp when Sv.response_error resp = None ->
              T.observe "serve.roundtrip_s" (Unix.gettimeofday () -. t0)
          | Ok _ | Error _ -> incr failures
        done;
        let prof = T.snapshot () in
        T.set_enabled was;
        (match T.find_dist prof "serve.roundtrip_s" with
        | Some d ->
            Format.printf "  requests %d  failures %d@." n !failures;
            Format.printf "  p50 %8.3f ms   p95 %8.3f ms   mean %8.3f ms@."
              (1e3 *. T.percentile d 0.50)
              (1e3 *. T.percentile d 0.95)
              (1e3 *. T.mean d)
        | None -> Format.printf "  no samples (all %d requests failed)@." n);
        let path = "BENCH_serve.json" in
        match T.save ~path prof with
        | Ok () -> Format.printf "wrote %s@." path
        | Error e ->
            Format.eprintf "cannot write %s: %a@." path Runtime.Cnt_error.pp e
      end;
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> Format.printf "  daemon drained clean@."
      | _, _ -> Format.printf "  daemon exited abnormally@.")

(* ------------------------------------------------------------------ *)

(* Data-file families ride along in every per-family section when the
   committed libraries are present (bench runs from the repo root). *)
let load_data_libraries () =
  let dir = Filename.concat "data" "libraries" in
  let builtin name =
    List.exists
      (fun (l : Cell.Genlib.t) -> l.Cell.Genlib.name = name)
      Cell.Genlib.all_libraries
  in
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f Cell.Libfile.extension then
          let path = Filename.concat dir f in
          if not (builtin (Filename.chop_suffix f Cell.Libfile.extension)) then
            match Cell.Libfile.load path with
            | Ok (lib, _) ->
                Format.printf "loaded %s (%s)@." path lib.Cell.Genlib.name
            | Error e ->
                Format.eprintf "cannot load %s: %a@." path Runtime.Cnt_error.pp e)
      (Sys.readdir dir)

let () =
  load_data_libraries ();
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    List.filter
      (fun a ->
        if a = "quick" then begin
          quick := true;
          false
        end
        else if a = "no-cache" then begin
          Runtime.Diskcache.set_enabled false;
          false
        end
        else if String.length a > 8 && String.sub a 0 8 = "domains=" then begin
          (match int_of_string_opt (String.sub a 8 (String.length a - 8)) with
          | Some d when d >= 1 && d <= Runtime.Dpool.max_domains ->
              Runtime.Dpool.set_default (Some d)
          | _ ->
              Format.printf "ignoring bad domains=%s (want 1..%d)@."
                (String.sub a 8 (String.length a - 8))
                Runtime.Dpool.max_domains);
          false
        end
        else true)
      args
  in
  let sections =
    [
      (* must lead: forks a daemon, illegal once pool domains have run *)
      ("serve-roundtrip", run_serve_roundtrip);
      ("libchar", run_libchar);
      ("patterns", run_patterns);
      ("tgate", run_tgate);
      ("delay", run_delay);
      ("dynamic", run_dynamic);
      ("pla", run_pla);
      ("seq", run_seq);
      ("sensitivity", run_sensitivity);
      ("table1", run_table1);
      ("ablations", run_ablations);
      ("micro", run_micro);
      ("profile", run_profile);
    ]
  in
  let selected = if args = [] then List.map fst sections else args in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Format.printf "unknown section %s (have: %s)@." name
            (String.concat ", " (List.map fst sections)))
    selected
