(* cntpower — command-line driver for the ambipolar-CNTFET power study.

   Subcommands map one-to-one onto the experiments of DESIGN.md:
   table1, libchar, patterns, tgate, delay, dynamic, pla, seq, sensitivity,
   ablations, synth, genlib, check, and `all`, which reproduces every table
   and headline figure through the fault-isolating experiment harness.

   Exit codes (documented in README.md): 0 success; 10 `all --keep-going`
   completed with failures; 11 `all --strict` aborted at the first failure;
   12-27 a typed Cnt_error escaped a single-experiment command (one code
   per error class, see Runtime.Cnt_error.exit_code); 124/125 cmdliner
   errors. *)

let std = Format.std_formatter

module R = Runtime.Cnt_error

open Cmdliner

let patterns_arg =
  let doc = "Number of random simulation patterns for power estimation." in
  Arg.(value & opt int Techmap.Estimate.default_patterns & info [ "p"; "patterns" ] ~doc)

let circuit_arg =
  let doc = "Benchmark circuit name (Table 1 row), e.g. C6288." in
  Arg.(value & opt string "C6288" & info [ "c"; "circuit" ] ~doc)

(* All commands evaluate to an exit code so `all` can report partial
   failure distinctly from success. *)
let ok0 run = Term.(const (fun () -> run (); 0) $ const ())

let run_table1 patterns only =
  let circuits =
    match only with
    | [] -> Circuits.Suite.all
    | names -> List.map Circuits.Suite.find names
  in
  let summary = Experiments.Exp_table1.run ~patterns ~circuits () in
  Experiments.Exp_table1.print std summary

let table1_cmd =
  let only =
    let doc = "Restrict to the given circuits (repeatable)." in
    Arg.(value & opt_all string [] & info [ "only" ] ~doc)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (synthesis, mapping, power, EDP).")
    Term.(const (fun patterns only -> run_table1 patterns only; 0) $ patterns_arg $ only)

let libchar_cmd =
  Cmd.v
    (Cmd.info "libchar"
       ~doc:"Reproduce the library characterization (E2, E4, E5, E6).")
    (ok0 (fun () -> Experiments.Exp_libchar.print std (Experiments.Exp_libchar.run ())))

let patterns_cmd =
  Cmd.v
    (Cmd.info "patterns" ~doc:"Reproduce the I_off pattern census (E3, E8, A1).")
    (ok0 (fun () -> Experiments.Exp_patterns.print std (Experiments.Exp_patterns.run ())))

let tgate_cmd =
  Cmd.v
    (Cmd.info "tgate" ~doc:"Reproduce the transmission-gate transfer study (E7, Fig. 2).")
    (ok0 (fun () -> Experiments.Exp_tgate.print std (Experiments.Exp_tgate.run ())))

let delay_cmd =
  Cmd.v
    (Cmd.info "delay"
       ~doc:"Measure intrinsic inverter delays by transient analysis (E9).")
    (ok0 (fun () -> Experiments.Exp_delay.print std (Experiments.Exp_delay.run ())))

let dynamic_cmd =
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:"Dynamic / reconfigurable ambipolar cells study (E10, extension).")
    (ok0 (fun () -> Experiments.Exp_dynamic.print std (Experiments.Exp_dynamic.run ())))

let pla_cmd =
  Cmd.v
    (Cmd.info "pla"
       ~doc:"In-field programmable ambipolar PLA study (E11, extension).")
    (ok0 (fun () -> Experiments.Exp_pla.print std (Experiments.Exp_pla.run ())))

let seq_cmd =
  Cmd.v
    (Cmd.info "seq"
       ~doc:"Clocked CRC engine with registers and clock tree (E12, extension).")
    (ok0 (fun () -> Experiments.Exp_seq.print std (Experiments.Exp_seq.run ())))

let sensitivity_cmd =
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Supply/temperature/variation sensitivity studies (E13-E15, extension).")
    (ok0 (fun () -> Experiments.Exp_sensitivity.print std (Experiments.Exp_sensitivity.run ())))

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the A2-A5 ablations on the multiplier.")
    (ok0 (fun () -> Experiments.Ablations.print std ()))

let run_synth circuit patterns =
  let entry = Circuits.Suite.find circuit in
  let nl = entry.Circuits.Suite.generate () in
  let wf = Nets.Check.check_exn nl in
  let aig = Aigs.Aig.of_netlist nl in
  Format.fprintf std "%s (%s): %a [%a]@." entry.Circuits.Suite.name
    entry.Circuits.Suite.description Aigs.Aig.pp_stats aig Nets.Check.pp_report wf;
  let opt = Aigs.Opt.resyn2rs aig in
  Format.fprintf std "after resyn2rs: %a@." Aigs.Aig.pp_stats opt;
  List.iter
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let mapped = R.get_exn (Techmap.Mapper.map_checked ml opt) in
      let ok = Techmap.Mapped.check mapped nl ~patterns:512 ~seed:4L in
      Format.fprintf std "@.%a (verified: %b)@." Techmap.Mapped.pp_stats mapped ok;
      List.iter
        (fun (name, count) -> Format.fprintf std "  %-10s x%d@." name count)
        (Techmap.Mapped.gate_histogram mapped);
      let report = Techmap.Estimate.run ~patterns mapped in
      Format.fprintf std "  %a@." Techmap.Estimate.pp_report report;
      let sta = Techmap.Sta.analyze mapped in
      Format.fprintf std "  %a@." Techmap.Sta.pp_report sta)
    Cell.Genlib.all_libraries

let synth_cmd =
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize and map one benchmark with all three libraries, with details.")
    Term.(const (fun c p -> run_synth c p; 0) $ circuit_arg $ patterns_arg)

let genlib_cmd =
  let run () =
    List.iter
      (fun lib ->
        Format.fprintf std "# %a@.%s@." Cell.Genlib.pp_summary lib
          (Cell.Genlib.to_genlib_string lib))
      Cell.Genlib.all_libraries
  in
  Cmd.v
    (Cmd.info "genlib" ~doc:"Dump the three mapping libraries in genlib syntax.")
    (ok0 run)

(* BLIF pipeline used by `check` and by `all --with-blif`: parse, validate
   well-formedness, synthesize, map and estimate. Every failure is a typed
   error. *)
let run_blif_pipeline ppf ~patterns path =
  let nl = R.get_exn (Nets.Blif.parse_file path) in
  let wf = Nets.Check.check_exn nl in
  Format.fprintf ppf "%s: %a [%a]@." path Nets.Netlist.pp_stats nl
    Nets.Check.pp_report wf;
  let aig = Aigs.Aig.of_netlist nl in
  let opt = Aigs.Opt.resyn2rs aig in
  List.iter
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let mapped = R.get_exn (Techmap.Mapper.map_checked ml opt) in
      let report = Techmap.Estimate.run ~patterns mapped in
      Format.fprintf ppf "  %-20s %a@." lib.Cell.Genlib.name
        Techmap.Estimate.pp_report report)
    Cell.Genlib.all_libraries

let check_cmd =
  let file =
    let doc = "BLIF file to parse, validate and map." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file patterns =
    run_blif_pipeline std ~patterns file;
    0
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse a BLIF netlist, run the well-formedness checker and map it. \
          Malformed input exits non-zero with a typed error, never a \
          backtrace.")
    Term.(const run $ file $ patterns_arg)

let mode_arg =
  let keep_going =
    ( Experiments.Harness.Keep_going,
      Arg.info [ "keep-going" ]
        ~doc:
          "Run every experiment even if one fails; collect failures into the \
           final summary and exit 10 if any failed (default)." )
  in
  let strict =
    ( Experiments.Harness.Strict,
      Arg.info [ "strict" ]
        ~doc:"Abort at the first failing experiment and exit 11." )
  in
  Arg.(value & vflag Experiments.Harness.Keep_going [ keep_going; strict ])

let all_cmd =
  let only_arg =
    let doc = "Run only the named experiments (repeatable); see the list in each entry name." in
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"NAME" ~doc)
  in
  let with_blif_arg =
    let doc =
      "Additionally run the BLIF pipeline (parse, well-formedness check, map, \
       estimate) on $(docv) as an experiment named blif:<basename> \
       (repeatable). Used by the fault-injection smoke tests."
    in
    Arg.(value & opt_all string [] & info [ "with-blif" ] ~docv:"FILE" ~doc)
  in
  let run patterns mode only with_blifs =
    let entry = Experiments.Harness.entry in
    let entries =
      [
        entry "libchar" "library characterization (E2, E4-E6)" (fun ppf ->
            Experiments.Exp_libchar.print ppf (Experiments.Exp_libchar.run ()));
        entry "patterns" "I_off pattern census (E3, E8, A1)" (fun ppf ->
            Experiments.Exp_patterns.print ppf (Experiments.Exp_patterns.run ()));
        entry "tgate" "transmission-gate transfer study (E7)" (fun ppf ->
            Experiments.Exp_tgate.print ppf (Experiments.Exp_tgate.run ()));
        entry "delay" "intrinsic inverter delays (E9)" (fun ppf ->
            Experiments.Exp_delay.print ppf (Experiments.Exp_delay.run ()));
        entry "dynamic" "dynamic / reconfigurable cells (E10)" (fun ppf ->
            Experiments.Exp_dynamic.print ppf (Experiments.Exp_dynamic.run ()));
        entry "pla" "programmable ambipolar PLA (E11)" (fun ppf ->
            Experiments.Exp_pla.print ppf (Experiments.Exp_pla.run ()));
        entry "seq" "clocked CRC engine (E12)" (fun ppf ->
            Experiments.Exp_seq.print ppf (Experiments.Exp_seq.run ()));
        entry "sensitivity" "supply/temperature/variation (E13-E15)" (fun ppf ->
            Experiments.Exp_sensitivity.print ppf (Experiments.Exp_sensitivity.run ()));
        entry "table1" "Table 1 reproduction (E1)" (fun ppf ->
            let summary = Experiments.Exp_table1.run ~patterns () in
            Experiments.Exp_table1.print ppf summary);
        entry "ablations" "A2-A5 ablations" (fun ppf ->
            Experiments.Ablations.print ppf ());
      ]
      @ List.map
          (fun path ->
            entry
              ("blif:" ^ Filename.basename path)
              ("external BLIF pipeline on " ^ path)
              (fun ppf -> run_blif_pipeline ppf ~patterns path))
          with_blifs
    in
    let entries =
      match only with
      | [] -> entries
      | names ->
          List.filter (fun (e : Experiments.Harness.entry) -> List.mem e.name names) entries
    in
    if entries = [] then begin
      Format.eprintf "cntpower all: no experiment matches the --only filter@.";
      R.exit_code (R.make R.Cli R.Validation_error "empty experiment selection")
    end
    else begin
      let summary = Experiments.Harness.run_all ~mode std entries in
      Experiments.Harness.print_summary std summary;
      Experiments.Harness.exit_status summary
    end
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run every experiment (E1-E15 and the ablations) through the \
          fault-isolating harness, with a final pass/fail summary.")
    Term.(const run $ patterns_arg $ mode_arg $ only_arg $ with_blif_arg)

let main =
  Cmd.group
    (Cmd.info "cntpower" ~version:"1.0.0"
       ~doc:
         "Power consumption of logic circuits in ambipolar carbon nanotube \
          technology (DATE 2010) - reproduction harness.")
    [
      table1_cmd; libchar_cmd; patterns_cmd; tgate_cmd; delay_cmd; dynamic_cmd;
      pla_cmd; seq_cmd; sensitivity_cmd; ablations_cmd; synth_cmd; genlib_cmd;
      check_cmd; all_cmd;
    ]

(* Every failure leaves through a typed error: Cnt_error carries its own
   exit code; anything else is wrapped (never a bare backtrace). *)
let () =
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception R.Error e ->
      Format.eprintf "cntpower: %a@." R.pp e;
      exit (R.exit_code e)
  | exception exn ->
      let e = R.of_exn ~stage:R.Cli exn in
      Format.eprintf "cntpower: %a@." R.pp e;
      exit (R.exit_code e)
