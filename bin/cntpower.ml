(* cntpower — command-line driver for the ambipolar-CNTFET power study.

   Subcommands map one-to-one onto the experiments of DESIGN.md:
   table1, libchar, patterns, tgate, delay, dynamic, pla, seq, sensitivity,
   ablations, synth, genlib, check, golden, and `all`, which reproduces
   every table and headline figure through the supervised experiment
   harness (forked workers, watchdog timeouts, checkpoint/resume).

   Exit codes (documented in README.md): 0 success; 10 `all --keep-going`
   completed with failures; 11 `all --strict` aborted at the first failure;
   12-30 a typed Cnt_error escaped a single-experiment command (one code
   per error class, see Runtime.Cnt_error.exit_code — 25 worker timeout,
   26 worker killed, also `serve` after a breaker trip; 29 a request shed
   by an overloaded `serve` daemon; 30 a `campaign` that completed with
   quarantined shards); 124/125 cmdliner errors. *)

let std = Format.std_formatter

module R = Runtime.Cnt_error
module C = Runtime.Checkpoint
module S = Runtime.Supervisor
module T = Runtime.Telemetry
module Jn = Runtime.Journal
module Tr = Runtime.Trace_export
module Cp = Runtime.Compare

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Argument validation: a nonpositive pattern count must die here as a
   typed usage error, not deep inside Logic.Bitvec.create. *)

let validate_patterns p =
  if p < 1 then
    R.failf
      ~context:[ ("patterns", string_of_int p) ]
      R.Cli R.Validation_error "--patterns must be >= 1 (got %d)" p;
  if p > 100_000_000 then
    R.failf
      ~context:[ ("patterns", string_of_int p) ]
      R.Cli R.Validation_error
      "--patterns %d is beyond the supported budget (max 100000000)" p

let validate_seed s =
  if Int64.compare s 0L < 0 then
    R.failf
      ~context:[ ("seed", Int64.to_string s) ]
      R.Cli R.Validation_error "--seed must be >= 0 (got %Ld)" s

(* --timeout and --retries go through the same typed usage-error path.
   NaN is the nasty case: it slips past simple [< 0.0] comparisons and
   would poison the watchdog deadline arithmetic downstream. *)
let validate_timeout t =
  if not (Float.is_finite t) || t < 0.0 then
    R.failf
      ~context:[ ("timeout", Printf.sprintf "%h" t) ]
      R.Cli R.Validation_error
      "--timeout must be a finite number of seconds >= 0 (got %g)" t

let validate_retries r =
  if r < 0 || r > 1000 then
    R.failf
      ~context:[ ("retries", string_of_int r) ]
      R.Cli R.Validation_error "--retries must be in [0, 1000] (got %d)" r

let validate_domains = function
  | None -> ()
  | Some d ->
      if d < 1 || d > Runtime.Dpool.max_domains then
        R.failf
          ~context:[ ("domains", string_of_int d) ]
          R.Cli R.Validation_error "--domains must be in [1, %d] (got %d)"
          Runtime.Dpool.max_domains d

(* Shared by the pipeline commands: pin the simulation domain count and
   switch the persistent artifact caches. Results are bit-identical for
   any domain count; --domains only moves wall clock. *)
let apply_runtime_opts ~domains ~no_cache =
  validate_domains domains;
  (* CNTPOWER_DOMAINS gets the same scrutiny as --domains: when the
     environment would actually be consulted (no explicit --domains),
     garbage is a typed usage error, not a silent fallback to
     autodetection. *)
  (match (domains, Runtime.Dpool.env_domains_checked ()) with
  | None, Result.Error msg ->
      R.failf
        ~context:
          [
            ( "CNTPOWER_DOMAINS",
              Option.value ~default:"" (Sys.getenv_opt "CNTPOWER_DOMAINS") );
          ]
        R.Cli R.Validation_error "%s" msg
  | _ -> ());
  Runtime.Dpool.set_default domains;
  if no_cache then Runtime.Diskcache.set_enabled false
  else Power.Leakage.set_persistent true

let domains_arg =
  let doc =
    "Simulation worker domains (cores) for the pattern sweeps; default: \
     the runtime's recommended count (or $(b,CNTPOWER_DOMAINS)). Results \
     are bit-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Bypass the persistent _cache/ artifacts (match tables, leakage \
     solves): rebuild everything from scratch and write nothing."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let find_circuit name =
  match
    List.find_opt (fun (e : Circuits.Suite.entry) -> e.Circuits.Suite.name = name)
      Circuits.Suite.all
  with
  | Some e -> e
  | None ->
      R.failf
        ~context:
          [
            ( "known",
              String.concat ","
                (List.map
                   (fun (e : Circuits.Suite.entry) -> e.Circuits.Suite.name)
                   Circuits.Suite.all) );
          ]
        R.Cli R.Validation_error "unknown circuit %S" name

(* The "known" context must list the *resolution view* — built-ins plus
   registered data files — or the error would deny libraries that are in
   fact loadable. *)
let find_library name =
  match Cell.Genlib.find_library name with
  | Some l -> l
  | None ->
      R.failf
        ~context:[ ("known", String.concat "," (Cell.Genlib.library_names ())) ]
        R.Cli R.Validation_error "unknown library %S" name

(* Logic-family files: the CNTPOWER_LIBPATH search path loads first, then
   the explicit --library-file arguments (so an explicit file wins a name
   collision). Any broken file is fatal here with its typed line-numbered
   error; shadowing warnings go to stderr and the run continues. *)
let load_library_files files =
  let load_one path =
    match Cell.Libfile.load path with
    | Ok (_, warnings) ->
        List.iter (fun w -> Format.eprintf "cntpower: %s: %s@." path w) warnings
    | Result.Error e -> R.raise_error e
  in
  List.iter load_one (Cell.Libfile.discover ());
  List.iter load_one files

let library_file_arg =
  let doc =
    "Load a logic-family file (genlib-plus, see README \"Defining a logic \
     family\") and register it under its LIBRARY name next to the \
     built-ins for this invocation (repeatable). Files found on the \
     colon-separated $(b,CNTPOWER_LIBPATH) directories are loaded first."
  in
  Arg.(value & opt_all string [] & info [ "library-file" ] ~docv:"FILE" ~doc)

let patterns_arg =
  let doc = "Number of random simulation patterns for power estimation (>= 1)." in
  Arg.(value & opt int Techmap.Estimate.default_patterns & info [ "p"; "patterns" ] ~doc)

let seed_arg =
  let doc = "PRNG seed for power-estimation patterns (>= 0)." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~doc)

let circuit_arg =
  let doc = "Benchmark circuit name (Table 1 row), e.g. C6288." in
  Arg.(value & opt string "C6288" & info [ "c"; "circuit" ] ~doc)

(* All commands evaluate to an exit code so `all` can report partial
   failure distinctly from success. *)
let ok0 run = Term.(const (fun () -> run (); 0) $ const ())

let run_table1 libfiles patterns seed only =
  validate_patterns patterns;
  validate_seed seed;
  load_library_files libfiles;
  let circuits =
    match only with [] -> Circuits.Suite.all | names -> List.map find_circuit names
  in
  let summary = Experiments.Exp_table1.run ~patterns ~seed ~circuits () in
  Experiments.Exp_table1.print std summary

let table1_cmd =
  let only =
    let doc = "Restrict to the given circuits (repeatable)." in
    Arg.(value & opt_all string [] & info [ "only" ] ~doc)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (synthesis, mapping, power, EDP).")
    Term.(
      const (fun libfiles patterns seed only ->
          run_table1 libfiles patterns seed only;
          0)
      $ library_file_arg $ patterns_arg $ seed_arg $ only)

let libchar_cmd =
  Cmd.v
    (Cmd.info "libchar"
       ~doc:"Reproduce the library characterization (E2, E4, E5, E6).")
    (ok0 (fun () -> Experiments.Exp_libchar.print std (Experiments.Exp_libchar.run ())))

let patterns_cmd =
  Cmd.v
    (Cmd.info "patterns" ~doc:"Reproduce the I_off pattern census (E3, E8, A1).")
    (ok0 (fun () -> Experiments.Exp_patterns.print std (Experiments.Exp_patterns.run ())))

let tgate_cmd =
  Cmd.v
    (Cmd.info "tgate" ~doc:"Reproduce the transmission-gate transfer study (E7, Fig. 2).")
    (ok0 (fun () -> Experiments.Exp_tgate.print std (Experiments.Exp_tgate.run ())))

let delay_cmd =
  Cmd.v
    (Cmd.info "delay"
       ~doc:"Measure intrinsic inverter delays by transient analysis (E9).")
    (ok0 (fun () -> Experiments.Exp_delay.print std (Experiments.Exp_delay.run ())))

let dynamic_cmd =
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:"Dynamic / reconfigurable ambipolar cells study (E10, extension).")
    (ok0 (fun () -> Experiments.Exp_dynamic.print std (Experiments.Exp_dynamic.run ())))

let pla_cmd =
  Cmd.v
    (Cmd.info "pla"
       ~doc:"In-field programmable ambipolar PLA study (E11, extension).")
    (ok0 (fun () -> Experiments.Exp_pla.print std (Experiments.Exp_pla.run ())))

let seq_cmd =
  Cmd.v
    (Cmd.info "seq"
       ~doc:"Clocked CRC engine with registers and clock tree (E12, extension).")
    (ok0 (fun () -> Experiments.Exp_seq.print std (Experiments.Exp_seq.run ())))

let sensitivity_cmd =
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Supply/temperature/variation sensitivity studies (E13-E15, extension).")
    (ok0 (fun () -> Experiments.Exp_sensitivity.print std (Experiments.Exp_sensitivity.run ())))

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the A2-A5 ablations on the multiplier.")
    (ok0 (fun () -> Experiments.Ablations.print std ()))

(* `synth` goes through the checked error path end to end: every failure
   (unknown circuit, malformed generator output, mapping dead-end) is
   reported as a typed error and exits with its per-class code, exactly
   like the other subcommands. *)
let run_synth circuit libfiles patterns seed domains no_cache =
  validate_patterns patterns;
  validate_seed seed;
  apply_runtime_opts ~domains ~no_cache;
  load_library_files libfiles;
  let body () =
    let entry = find_circuit circuit in
    let nl = entry.Circuits.Suite.generate () in
    let wf = Nets.Check.check_exn nl in
    let aig = Aigs.Aig.of_netlist nl in
    Format.fprintf std "%s (%s): %a [%a]@." entry.Circuits.Suite.name
      entry.Circuits.Suite.description Aigs.Aig.pp_stats aig Nets.Check.pp_report wf;
    let opt = Aigs.Opt.resyn2rs aig in
    Format.fprintf std "after resyn2rs: %a@." Aigs.Aig.pp_stats opt;
    List.iter
      (fun lib ->
        let ml = Techmap.Matchlib.build lib in
        match Techmap.Mapper.map_checked ml opt with
        | Result.Error e ->
            R.raise_error
              (R.with_context e
                 [ ("circuit", circuit); ("library", lib.Cell.Genlib.name) ])
        | Ok mapped ->
            let ok = Techmap.Mapped.check mapped nl ~patterns:512 ~seed:4L in
            Format.fprintf std "@.%a (verified: %b)@." Techmap.Mapped.pp_stats mapped ok;
            List.iter
              (fun (name, count) -> Format.fprintf std "  %-10s x%d@." name count)
              (Techmap.Mapped.gate_histogram mapped);
            let report = Techmap.Estimate.run ~patterns ~seed mapped in
            Format.fprintf std "  %a@." Techmap.Estimate.pp_report report;
            let sta = Techmap.Sta.analyze mapped in
            Format.fprintf std "  %a@." Techmap.Sta.pp_report sta)
      (Cell.Genlib.libraries ())
  in
  match R.protect ~stage:R.Experiment body with
  | Ok () -> 0
  | Result.Error e ->
      Format.eprintf "cntpower: %a@." R.pp e;
      R.exit_code e

let synth_cmd =
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize and map one benchmark with every library, with details.")
    Term.(
      const run_synth $ circuit_arg $ library_file_arg $ patterns_arg
      $ seed_arg $ domains_arg $ no_cache_arg)

let genlib_cmd =
  let run libfiles =
    load_library_files libfiles;
    List.iter
      (fun lib ->
        Format.fprintf std "# %a@.%s@." Cell.Genlib.pp_summary lib
          (Cell.Genlib.to_genlib_string lib))
      (Cell.Genlib.libraries ());
    0
  in
  Cmd.v
    (Cmd.info "genlib" ~doc:"Dump the mapping libraries in genlib syntax.")
    Term.(const run $ library_file_arg)

(* BLIF pipeline used by `check` and by `all --with-blif`: parse, validate
   well-formedness, synthesize, map and estimate. Every failure is a typed
   error. *)
let run_blif_pipeline ppf ~patterns ~seed path =
  let nl = R.get_exn (Nets.Blif.parse_file path) in
  let wf = Nets.Check.check_exn nl in
  Format.fprintf ppf "%s: %a [%a]@." path Nets.Netlist.pp_stats nl
    Nets.Check.pp_report wf;
  let aig = Aigs.Aig.of_netlist nl in
  let opt = Aigs.Opt.resyn2rs aig in
  List.concat_map
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let mapped = R.get_exn (Techmap.Mapper.map_checked ml opt) in
      let report = Techmap.Estimate.run ~patterns ~seed mapped in
      Format.fprintf ppf "  %-20s %a@." lib.Cell.Genlib.name
        Techmap.Estimate.pp_report report;
      [
        (lib.Cell.Genlib.name ^ ".gates", float_of_int report.Techmap.Estimate.gates);
        (lib.Cell.Genlib.name ^ ".total_uW", report.Techmap.Estimate.total *. 1e6);
      ])
    (Cell.Genlib.libraries ())

let check_cmd =
  let file =
    let doc = "BLIF file to parse, validate and map." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file libfiles patterns seed =
    validate_patterns patterns;
    validate_seed seed;
    load_library_files libfiles;
    let (_ : (string * float) list) = run_blif_pipeline std ~patterns ~seed file in
    0
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse a BLIF netlist, run the well-formedness checker and map it. \
          Malformed input exits non-zero with a typed error, never a \
          backtrace.")
    Term.(const run $ file $ library_file_arg $ patterns_arg $ seed_arg)

let mode_arg =
  let keep_going =
    ( Experiments.Harness.Keep_going,
      Arg.info [ "keep-going" ]
        ~doc:
          "Run every experiment even if one fails; collect failures into the \
           final summary and exit 10 if any failed (default)." )
  in
  let strict =
    ( Experiments.Harness.Strict,
      Arg.info [ "strict" ]
        ~doc:"Abort at the first failing experiment and exit 11." )
  in
  Arg.(value & vflag Experiments.Harness.Keep_going [ keep_going; strict ])

(* ------------------------------------------------------------------ *)
(* `all`: the supervised run. *)

let run_dir_of run_name = Filename.concat "_runs" run_name
let manifest_path_of run_name = Filename.concat (run_dir_of run_name) "manifest.json"
let profile_path_of run_name = Filename.concat (run_dir_of run_name) "profile.json"
let events_path_of run_name = Filename.concat (run_dir_of run_name) "events.jsonl"
let trace_path_of run_name = Filename.concat (run_dir_of run_name) "trace.json"
let metrics_path_of run_name = Filename.concat (run_dir_of run_name) "metrics.json"

let log_level_arg =
  let doc =
    "Verbosity of the live event echo on stderr: $(b,quiet) silences all \
     journal chatter, $(b,info) (default) echoes retries and worker \
     failures, $(b,debug) echoes every event. The on-disk events.jsonl \
     always records everything."
  in
  Arg.(
    value
    & opt (enum [ ("quiet", None); ("info", Some Jn.Info); ("debug", Some Jn.Debug) ])
        (Some Jn.Info)
    & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let all_cmd =
  let only_arg =
    let doc = "Run only the named experiments (repeatable); see the list in each entry name." in
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"NAME" ~doc)
  in
  let with_blif_arg =
    let doc =
      "Additionally run the BLIF pipeline (parse, well-formedness check, map, \
       estimate) on $(docv) as an experiment named blif:<basename> \
       (repeatable). Used by the fault-injection smoke tests."
    in
    Arg.(value & opt_all string [] & info [ "with-blif" ] ~docv:"FILE" ~doc)
  in
  let timeout_arg =
    let doc =
      "Wall-clock watchdog per experiment attempt, in seconds; a worker \
       exceeding it is killed and reported as experiment/worker-timeout. 0 \
       disables the watchdog."
    in
    Arg.(value & opt float 900.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let retries_arg =
    let doc =
      "Extra attempts after a worker crash or timeout. Retries run degraded: \
       pattern-driven experiments shed half their pattern budget and the \
       result is tagged as degraded in the summary and manifest."
    in
    Arg.(value & opt int 1 & info [ "retries" ] ~doc)
  in
  let no_supervise_arg =
    let doc =
      "Run experiments in-process instead of in forked workers (no crash \
       isolation, no watchdog). Mainly for debugging."
    in
    Arg.(value & flag & info [ "no-supervise" ] ~doc)
  in
  let resume_arg =
    let doc =
      "Skip experiments the run manifest already records as passed with the \
       same seed and pattern count; only failed or missing entries re-run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let run_name_arg =
    let doc = "Run name; the manifest is written to _runs/$(docv)/manifest.json." in
    Arg.(value & opt string "all" & info [ "run" ] ~docv:"NAME" ~doc)
  in
  let profile_arg =
    let doc =
      "Collect per-run telemetry (hierarchical spans, counters, simulator \
       throughput distributions) and write it to _runs/<run>/profile.json; \
       render it later with `cntpower stats <run>`. Workers profile \
       themselves and ship their span trees back to the parent, so the \
       profile covers the full supervised run."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let inject_crash_arg =
    let doc =
      "Fault injection (testing the supervisor): SIGKILL the worker of the \
       named experiment on every attempt."
    in
    Arg.(value & opt_all string [] & info [ "inject-crash" ] ~docv:"NAME" ~doc)
  in
  let inject_hang_arg =
    let doc =
      "Fault injection: make the named experiment's worker hang until the \
       watchdog kills it."
    in
    Arg.(value & opt_all string [] & info [ "inject-hang" ] ~docv:"NAME" ~doc)
  in
  let inject_flaky_arg =
    let doc =
      "Fault injection: SIGKILL the named experiment's worker on the first \
       attempt only, so the degraded retry succeeds."
    in
    Arg.(value & opt_all string [] & info [ "inject-flaky" ] ~docv:"NAME" ~doc)
  in
  let run libfiles patterns seed mode only with_blifs timeout retries
      no_supervise resume run_name profile log_level domains no_cache
      inj_crash inj_hang inj_flaky =
    validate_patterns patterns;
    validate_seed seed;
    validate_timeout timeout;
    validate_retries retries;
    apply_runtime_opts ~domains ~no_cache;
    (* Before the harness starts: experiment workers fork from this
       process, so registrations are inherited by every experiment. *)
    load_library_files libfiles;
    Jn.set_verbosity log_level;
    let entry = Experiments.Harness.entry in
    let budget ~degraded = if degraded then max 1 (patterns / 2) else patterns in
    let entries =
      [
        entry "libchar" "library characterization (E2, E4-E6)" (fun ~degraded:_ ppf ->
            let r = Experiments.Exp_libchar.run () in
            Experiments.Exp_libchar.print ppf r;
            Experiments.Exp_libchar.scalars r);
        entry "patterns" "I_off pattern census (E3, E8, A1)" (fun ~degraded:_ ppf ->
            let r = Experiments.Exp_patterns.run () in
            Experiments.Exp_patterns.print ppf r;
            Experiments.Exp_patterns.scalars r);
        entry "tgate" "transmission-gate transfer study (E7)" (fun ~degraded:_ ppf ->
            let r = Experiments.Exp_tgate.run () in
            Experiments.Exp_tgate.print ppf r;
            Experiments.Exp_tgate.scalars r);
        entry "delay" "intrinsic inverter delays (E9)" (fun ~degraded:_ ppf ->
            let r = Experiments.Exp_delay.run () in
            Experiments.Exp_delay.print ppf r;
            Experiments.Exp_delay.scalars r);
        entry "dynamic" "dynamic / reconfigurable cells (E10)" (fun ~degraded:_ ppf ->
            let r = Experiments.Exp_dynamic.run () in
            Experiments.Exp_dynamic.print ppf r;
            Experiments.Exp_dynamic.scalars r);
        entry "pla" "programmable ambipolar PLA (E11)" (fun ~degraded:_ ppf ->
            let r = Experiments.Exp_pla.run () in
            Experiments.Exp_pla.print ppf r;
            Experiments.Exp_pla.scalars r);
        entry "seq" "clocked CRC engine (E12)" (fun ~degraded ppf ->
            let cycles = if degraded then 250 else 500 in
            let rows = Experiments.Exp_seq.run ~cycles () in
            Experiments.Exp_seq.print ppf rows;
            Experiments.Exp_seq.scalars rows);
        entry "sensitivity" "supply/temperature/variation (E13-E15)" (fun ~degraded ppf ->
            let mc = if degraded then 500 else 1000 in
            let r = Experiments.Exp_sensitivity.run ~mc_samples:mc () in
            Experiments.Exp_sensitivity.print ppf r;
            Experiments.Exp_sensitivity.scalars r);
        entry "table1" "Table 1 reproduction (E1)" (fun ~degraded ppf ->
            let summary =
              Experiments.Exp_table1.run ~patterns:(budget ~degraded) ~seed ()
            in
            Experiments.Exp_table1.print ppf summary;
            Experiments.Exp_table1.scalars summary);
        entry "ablations" "A2-A5 ablations" (fun ~degraded:_ ppf ->
            Experiments.Ablations.print ppf ();
            []);
      ]
      @ List.map
          (fun path ->
            entry
              ("blif:" ^ Filename.basename path)
              ("external BLIF pipeline on " ^ path)
              (fun ~degraded ppf ->
                run_blif_pipeline ppf ~patterns:(budget ~degraded) ~seed path))
          with_blifs
    in
    let entries =
      match only with
      | [] -> entries
      | names ->
          List.filter (fun (e : Experiments.Harness.entry) -> List.mem e.name names) entries
    in
    (* Fault injection runs inside the worker: the supervisor must reap the
       death / timeout and keep the run alive. *)
    let inject (e : Experiments.Harness.entry) =
      let crash = List.mem e.name inj_crash in
      let hang = List.mem e.name inj_hang in
      let flaky = List.mem e.name inj_flaky in
      if not (crash || hang || flaky) then e
      else
        {
          e with
          run =
            (fun ~degraded ppf ->
              if crash || (flaky && not degraded) then
                Unix.kill (Unix.getpid ()) Sys.sigkill;
              if hang then
                while true do
                  Unix.sleepf 3600.0
                done;
              e.run ~degraded ppf);
        }
    in
    let entries = List.map inject entries in
    if entries = [] then begin
      Format.eprintf "cntpower all: no experiment matches the --only filter@.";
      R.exit_code (R.make R.Cli R.Validation_error "empty experiment selection")
    end
    else begin
      let policy =
        if no_supervise then None
        else Some { S.timeout_s = timeout; retries; degrade = true }
      in
      let manifest_path = manifest_path_of run_name in
      let config =
        {
          Experiments.Harness.mode;
          policy;
          run_name;
          manifest_path = Some manifest_path;
          resume;
          seed;
          patterns;
        }
      in
      if profile then begin
        T.set_enabled true;
        T.reset ()
      end;
      (* The event journal is always on for `all`: a handful of typed
         events per experiment, appended and flushed line by line, is
         cheap next to the experiments themselves and is what `cntpower
         trace` and post-mortems feed on. *)
      let events_path = events_path_of run_name in
      Jn.set_enabled true;
      (match Jn.open_sink ~path:events_path () with
      | Ok () -> ()
      | Result.Error e ->
          Format.eprintf "cntpower: cannot open event journal: %a@." R.pp e;
          Jn.set_enabled false);
      Jn.emit Jn.Run_started
        [
          ("run", run_name);
          ("seed", Int64.to_string seed);
          ("patterns", string_of_int patterns);
          ( "mode",
            match mode with
            | Experiments.Harness.Keep_going -> "keep-going"
            | Experiments.Harness.Strict -> "strict" );
          ("supervised", string_of_bool (not no_supervise));
          ("profile", string_of_bool profile);
          ("domains", string_of_int (Runtime.Dpool.default_domains ()));
          ("cache", string_of_bool (Runtime.Diskcache.enabled ()));
          ("experiments", string_of_int (List.length entries));
        ];
      let summary = Experiments.Harness.run_all ~config std entries in
      Experiments.Harness.print_summary std summary;
      Format.fprintf std "manifest: %s@." manifest_path;
      if profile then begin
        let prof = T.snapshot () in
        T.set_enabled false;
        let path = profile_path_of run_name in
        match T.save ~path prof with
        | Ok () -> Format.fprintf std "profile: %s@." path
        | Result.Error e ->
            Format.eprintf "cntpower: cannot write profile: %a@." R.pp e
      end;
      let code = Experiments.Harness.exit_status summary in
      let count p =
        List.length
          (List.filter (fun (_, st) -> p st) summary.Experiments.Harness.results)
      in
      Jn.emit Jn.Run_finished
        [
          ("run", run_name);
          ( "passed",
            string_of_int
              (count (function Experiments.Harness.Passed _ -> true | _ -> false))
          );
          ( "failed",
            string_of_int
              (count (function Experiments.Harness.Failed _ -> true | _ -> false))
          );
          ( "resumed",
            string_of_int
              (count (function Experiments.Harness.Resumed _ -> true | _ -> false))
          );
          ("exit_code", string_of_int code);
        ];
      Jn.close_sink ();
      Jn.set_enabled false;
      code
    end
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run every experiment (E1-E15 and the ablations) in supervised \
          worker processes with watchdog timeouts, checkpointing each \
          result to the run manifest; --resume continues an interrupted \
          run, with a final pass/fail summary.")
    Term.(
      const run $ library_file_arg $ patterns_arg $ seed_arg $ mode_arg
      $ only_arg $ with_blif_arg $ timeout_arg $ retries_arg
      $ no_supervise_arg $ resume_arg $ run_name_arg $ profile_arg
      $ log_level_arg $ domains_arg $ no_cache_arg $ inject_crash_arg
      $ inject_hang_arg $ inject_flaky_arg)

(* ------------------------------------------------------------------ *)
(* `campaign`: the durable (circuit × library × seed) sweep runner.    *)

module Cg = Experiments.Campaign

let campaign_cmd =
  let run_name_arg =
    let doc =
      "Campaign name; the queue log, manifest, journal and profile live \
       under _runs/$(docv)/."
    in
    Arg.(value & opt string "campaign" & info [ "run" ] ~docv:"NAME" ~doc)
  in
  let only_arg =
    let doc = "Restrict the sweep to the given circuits (repeatable)." in
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"CIRCUIT" ~doc)
  in
  let library_arg =
    let doc =
      "Restrict the sweep to the given libraries (repeatable); default \
       every library, built-in or loaded."
    in
    Arg.(value & opt_all string [] & info [ "library" ] ~docv:"NAME" ~doc)
  in
  let seeds_arg =
    let doc =
      "Number of seeds per (circuit, library) cell: seeds --seed, \
       --seed+1, ..."
    in
    Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Concurrent forked shard workers." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let shard_timeout_arg =
    let doc =
      "Per-shard-attempt deadline in seconds; a worker outliving it is \
       killed and the attempt counts as failed. 0 disables the deadline."
    in
    Arg.(value & opt float 300.0 & info [ "shard-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_attempts_arg =
    let doc =
      "Lease budget per shard: after this many failed attempts the shard \
       is quarantined and the campaign continues degraded (exit 30 at the \
       end if anything was quarantined)."
    in
    Arg.(value & opt int 3 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let resume_arg =
    let doc =
      "Continue an existing campaign: reclaim leases left by a dead \
       coordinator and re-run only shards the queue log does not record \
       as done. Without this flag an existing queue log is refused."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let inject_crash_arg =
    let doc =
      "Fault injection: SIGKILL the worker of the named shard (id or \
       circuit name) on every attempt — a deterministic poison shard."
    in
    Arg.(value & opt_all string [] & info [ "inject-crash" ] ~docv:"SHARD" ~doc)
  in
  let inject_flaky_arg =
    let doc =
      "Fault injection: SIGKILL the named shard's worker on the first \
       attempt only, so the retry succeeds."
    in
    Arg.(value & opt_all string [] & info [ "inject-flaky" ] ~docv:"SHARD" ~doc)
  in
  let inject_hang_arg =
    let doc =
      "Fault injection: wedge the named shard's worker until the deadline \
       kill."
    in
    Arg.(value & opt_all string [] & info [ "inject-hang" ] ~docv:"SHARD" ~doc)
  in
  let inject_kill_after_arg =
    let doc =
      "Fault injection: SIGKILL the coordinator itself right after the \
       $(docv)th shard completion of this invocation hits the queue log \
       (before the manifest write) — the crash --resume must recover from."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "inject-kill-after" ] ~docv:"N" ~doc)
  in
  let run run_name only libs libfiles seeds_n patterns seed workers
      shard_timeout max_attempts resume log_level domains no_cache inj_crash
      inj_flaky inj_hang kill_after =
    validate_patterns patterns;
    validate_seed seed;
    validate_timeout shard_timeout;
    if workers < 1 || workers > 128 then
      R.failf
        ~context:[ ("workers", string_of_int workers) ]
        R.Cli R.Validation_error "--workers must be in [1, 128] (got %d)"
        workers;
    if max_attempts < 1 || max_attempts > 100 then
      R.failf
        ~context:[ ("max-attempts", string_of_int max_attempts) ]
        R.Cli R.Validation_error "--max-attempts must be in [1, 100] (got %d)"
        max_attempts;
    if seeds_n < 1 || seeds_n > 10_000 then
      R.failf
        ~context:[ ("seeds", string_of_int seeds_n) ]
        R.Cli R.Validation_error "--seeds must be in [1, 10000] (got %d)"
        seeds_n;
    (match kill_after with
    | Some n when n < 1 ->
        R.failf R.Cli R.Validation_error
          "--inject-kill-after must be >= 1 (got %d)" n
    | _ -> ());
    apply_runtime_opts ~domains ~no_cache;
    load_library_files libfiles;
    Jn.set_verbosity log_level;
    let circuits =
      match only with [] -> Circuits.Suite.all | names -> List.map find_circuit names
    in
    let libraries =
      match libs with
      | [] -> Cell.Genlib.libraries ()
      | names -> List.map find_library names
    in
    let seeds = List.init seeds_n (fun i -> Int64.add seed (Int64.of_int i)) in
    let cfg =
      {
        (Cg.default_config ~campaign:run_name) with
        Cg.circuits;
        libraries;
        seeds;
        patterns;
        workers;
        shard_timeout_s = shard_timeout;
        max_attempts;
        resume;
        inject =
          {
            Cg.inj_crash;
            inj_flaky;
            inj_hang;
            inj_kill_after = kill_after;
          };
      }
    in
    (* Telemetry and the journal are always on for a campaign: shard
       transitions are the observable surface, and workers ship their
       profiles back through the supervisor pipe. *)
    T.set_enabled true;
    T.reset ();
    Jn.set_enabled true;
    (match Jn.open_sink ~path:(Cg.events_path cfg) () with
    | Ok () -> ()
    | Result.Error e ->
        Format.eprintf "cntpower: cannot open event journal: %a@." R.pp e;
        Jn.set_enabled false);
    let result = Cg.run cfg in
    Jn.close_sink ();
    Jn.set_enabled false;
    T.set_enabled false;
    match result with
    | Ok s ->
        Format.fprintf std "%a@." Cg.pp_summary s;
        Format.fprintf std "queue: %s@.manifest: %s@." (Cg.queue_path cfg)
          (Cg.manifest_path cfg);
        if s.Cg.quarantined = [] then 0
        else begin
          let e =
            R.makef
              ~context:[ ("shards", String.concat "," s.Cg.quarantined) ]
              R.Experiment R.Shard_quarantined
              "%d shard(s) quarantined after %d attempt(s) each"
              (List.length s.Cg.quarantined)
              max_attempts
          in
          Format.eprintf "cntpower: %a@." R.pp e;
          R.exit_code e
        end
    | Result.Error e ->
        Format.eprintf "cntpower: %a@." R.pp e;
        R.exit_code e
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a durable (circuit × library × seed) sweep on a crash-safe \
          work-queue: every shard transition is an appended, flushed line \
          in _runs/<run>/queue.jsonl, shards run in forked workers under \
          per-attempt deadlines with bounded retry + exponential backoff, \
          poison shards are quarantined after --max-attempts (campaign \
          continues degraded, exit 30), and --resume after a hard kill \
          reclaims stale leases and re-runs only what is not recorded \
          done. Results stream into the run manifest and telemetry \
          profile, so stats/trace/compare work mid-campaign.")
    Term.(
      const run $ run_name_arg $ only_arg $ library_arg $ library_file_arg
      $ seeds_arg $ patterns_arg $ seed_arg $ workers_arg $ shard_timeout_arg
      $ max_attempts_arg $ resume_arg $ log_level_arg $ domains_arg
      $ no_cache_arg $ inject_crash_arg $ inject_flaky_arg $ inject_hang_arg
      $ inject_kill_after_arg)

(* ------------------------------------------------------------------ *)
(* `golden`: the regression gate over a run manifest. *)

let golden_cmd =
  let manifest_arg =
    let doc = "Run manifest to read (written by `cntpower all`)." in
    Arg.(value & opt string (manifest_path_of "all") & info [ "manifest" ] ~docv:"FILE" ~doc)
  in
  let golden_arg =
    let doc = "Golden metrics file." in
    Arg.(value & opt string "golden/golden.json" & info [ "golden" ] ~docv:"FILE" ~doc)
  in
  let check_arg =
    let doc = "Compare the manifest against the golden file (default action)." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let update_arg =
    let doc = "Regenerate the golden file from the manifest instead of checking." in
    Arg.(value & flag & info [ "update" ] ~doc)
  in
  let rtol_arg =
    let doc =
      "Relative tolerance assigned to non-integral metrics on --update \
       (integral metrics are pinned exactly)."
    in
    Arg.(value & opt float 0.1 & info [ "rtol" ] ~doc)
  in
  let only_arg =
    let doc = "On --update, restrict the golden set to the named experiments (repeatable)." in
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"NAME" ~doc)
  in
  let run manifest golden check update rtol only =
    ignore check;
    if rtol < 0.0 || rtol > 1.0 then
      R.failf R.Cli R.Validation_error "--rtol must be in [0, 1] (got %g)" rtol;
    let m = R.get_exn (C.load ~path:manifest) in
    if update then begin
      let experiments = match only with [] -> None | names -> Some names in
      let metrics = C.golden_of_manifest ~rtol ?experiments m in
      if metrics = [] then
        R.failf
          ~context:[ ("manifest", manifest) ]
          R.Cli R.Validation_error
          "manifest has no passing entries to turn into golden metrics";
      R.get_exn (C.save_golden ~path:golden metrics);
      Format.fprintf std "golden: wrote %d metrics from %d manifest entries to %s@."
        (List.length metrics) (List.length m.C.entries) golden;
      0
    end
    else begin
      let metrics = R.get_exn (C.load_golden ~path:golden) in
      List.iter
        (fun (e : C.entry) ->
          if e.C.status = C.Degraded then
            Format.fprintf std
              "golden: note: %s is a degraded result (checked all the same)@."
              e.C.experiment)
        m.C.entries;
      match C.check_golden m metrics with
      | [] ->
          Format.fprintf std "golden: OK — %d metrics within tolerance (%s)@."
            (List.length metrics) golden;
          0
      | drifts ->
          List.iter (fun d -> Format.eprintf "golden: DRIFT %a@." C.pp_drift d) drifts;
          (* Drift is a first-class run event: append it to the journal
             living next to the manifest so the run's events.jsonl tells
             the whole story, gate included. *)
          let events_path =
            Filename.concat (Filename.dirname manifest) "events.jsonl"
          in
          Jn.set_enabled true;
          Jn.set_verbosity None;
          (match Jn.open_sink ~path:events_path () with
          | Ok () ->
              List.iter
                (fun (d : C.drift) ->
                  Jn.emit ~level:Jn.Warn Jn.Golden_drift
                    [
                      ("experiment", d.C.d_experiment);
                      ("metric", d.C.d_metric);
                      ("expected", Printf.sprintf "%.6g" d.C.d_expected);
                      ( "actual",
                        match d.C.d_actual with
                        | None -> "missing"
                        | Some a -> Printf.sprintf "%.6g" a );
                      ("rtol", Printf.sprintf "%g" d.C.d_rtol);
                    ])
                drifts;
              Jn.close_sink ()
          | Result.Error _ -> ());
          Jn.set_enabled false;
          let e =
            R.makef
              ~context:[ ("manifest", manifest); ("golden", golden) ]
              R.Cli R.Mismatch "%d of %d golden metrics drifted out of tolerance"
              (List.length drifts) (List.length metrics)
          in
          Format.eprintf "cntpower: %a@." R.pp e;
          R.exit_code e
    end
  in
  Cmd.v
    (Cmd.info "golden"
       ~doc:
         "Check a run manifest against committed golden results (paper's \
          headline numbers) with per-metric relative tolerances; nonzero \
          exit on drift. --update regenerates the golden file.")
    Term.(
      const run $ manifest_arg $ golden_arg $ check_arg $ update_arg $ rtol_arg
      $ only_arg)

(* ------------------------------------------------------------------ *)
(* `stats`: render a run's telemetry profile. *)

(* Machine-readable stats rendering: span paths flattened, quantiles
   precomputed — the shape scripts want, on the Checkpoint JSON dialect. *)
let stats_json ~path ?journal prof =
  let rec flatten prefix acc (s : Runtime.Telemetry.span) =
    let p = prefix ^ s.T.span_name in
    let acc =
      C.Obj
        [
          ("path", C.Str p);
          ("calls", C.Num (float_of_int s.T.calls));
          ("total_s", C.Num s.T.total_s);
        ]
      :: acc
    in
    List.fold_left (flatten (p ^ "/")) acc s.T.children
  in
  C.Obj
    ([
       ("profile", C.Str path);
     ]
    @ (match journal with
      | None -> []
      | Some (events, skipped) ->
          [
            ( "journal",
              C.Obj
                [
                  ("events", C.Num (float_of_int events));
                  ("skipped_lines", C.Num (float_of_int skipped));
                ] );
          ])
    @ [
      ("spans", C.Arr (List.rev (List.fold_left (flatten "") [] prof.T.p_spans)));
      ( "counters",
        C.Obj
          (List.map (fun (k, v) -> (k, C.Num (float_of_int v))) prof.T.p_counters)
      );
      ( "dists",
        C.Arr
          (List.map
             (fun (name, d) ->
               C.Obj
                 [
                   ("name", C.Str name);
                   ("count", C.Num (float_of_int d.T.d_count));
                   ("mean", C.Num (T.mean d));
                   ("p50", C.Num (T.percentile d 0.5));
                   ("p95", C.Num (T.percentile d 0.95));
                   ("min", C.Num (if d.T.d_count = 0 then 0.0 else d.T.d_min));
                   ("max", C.Num (if d.T.d_count = 0 then 0.0 else d.T.d_max));
                 ])
             prof.T.p_dists) );
    ])

(* Span ordering for `stats`: applied recursively, so every level of the
   tree (and the --json flattening, which walks the same tree) comes out
   in the requested order. *)
let rec sort_spans ~cmp ~top spans =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let spans = List.stable_sort cmp spans in
  let spans = match top with Some n -> take n spans | None -> spans in
  List.map
    (fun (s : Runtime.Telemetry.span) ->
      { s with T.children = sort_spans ~cmp ~top s.T.children })
    spans

let span_cmp = function
  | `Wall ->
      fun (a : Runtime.Telemetry.span) (b : Runtime.Telemetry.span) ->
        Float.compare b.T.total_s a.T.total_s
  | `Count ->
      fun (a : Runtime.Telemetry.span) (b : Runtime.Telemetry.span) ->
        compare (b.T.calls, b.T.span_name) (a.T.calls, a.T.span_name)
  | `Path ->
      fun (a : Runtime.Telemetry.span) (b : Runtime.Telemetry.span) ->
        String.compare a.T.span_name b.T.span_name

let stats_cmd =
  let run_pos =
    let doc = "Run name whose profile to render (_runs/$(docv)/profile.json)." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"RUN" ~doc)
  in
  let file_arg =
    let doc = "Read the profile from $(docv) instead of _runs/<run>/profile.json." in
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the rendering as JSON on stdout (flattened span paths, \
       counters, distribution quantiles) instead of the human tables."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let sort_arg =
    let doc =
      "Span ordering at every tree level: $(b,wall) (total wall time, \
       largest first — the default, so the expensive stages lead), \
       $(b,count) (call count), or $(b,path) (name, alphabetical)."
    in
    Arg.(
      value
      & opt (enum [ ("wall", `Wall); ("count", `Count); ("path", `Path) ]) `Wall
      & info [ "sort" ] ~docv:"KEY" ~doc)
  in
  let top_arg =
    let doc = "Show only the top $(docv) spans at each tree level." in
    Arg.(value & opt (some int) None & info [ "top" ] ~docv:"N" ~doc)
  in
  let run run_name file json sort top =
    (match top with
    | Some n when n < 1 ->
        R.failf
          ~context:[ ("top", string_of_int n) ]
          R.Cli R.Validation_error "--top must be >= 1 (got %d)" n
    | _ -> ());
    let path =
      match file with Some p -> p | None -> profile_path_of run_name
    in
    let prof = R.get_exn (T.load ~path) in
    let prof =
      { prof with T.p_spans = sort_spans ~cmp:(span_cmp sort) ~top prof.T.p_spans }
    in
    (* The run's journal rides along when stats is pointed at a run (not
       a bare --file): event count plus how many torn/corrupt lines the
       lenient loader had to skip — silent data loss is not OK. *)
    let journal =
      match file with
      | Some _ -> None
      | None ->
          let epath = events_path_of run_name in
          if Sys.file_exists epath then
            match Jn.load ~path:epath with
            | Ok (evs, skipped) -> Some (List.length evs, skipped)
            | Result.Error e ->
                Format.eprintf "cntpower: cannot read journal %s: %a@." epath
                  R.pp e;
                None
          else None
    in
    (match journal with
    | Some (_, skipped) when skipped > 0 ->
        Format.eprintf
          "cntpower: journal for run %s has %d malformed line(s) (torn \
           write?)@."
          run_name skipped
    | _ -> ());
    if json then print_string (C.json_to_string (stats_json ~path ?journal prof))
    else begin
      Format.fprintf std "profile: %s@." path;
      (match journal with
      | Some (events, skipped) ->
          Format.fprintf std "journal: %d events" events;
          if skipped > 0 then
            Format.fprintf std " (%d torn/corrupt line(s) skipped)" skipped;
          Format.fprintf std "@."
      | None -> ());
      T.pp std prof
    end;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Pretty-print the telemetry profile of a run recorded with \
          `cntpower all --profile`: the hierarchical span tree (wall time \
          per pipeline stage per experiment), monotonic counters (DC \
          solves, cache hits, matches tried, words simulated) and \
          throughput distributions; --json emits the same data \
          machine-readably. Spans are sorted by total wall time (--sort \
          count/path for other orders, --top N to truncate each level). A \
          missing or malformed profile exits with its typed error code, \
          never a backtrace.")
    Term.(const run $ run_pos $ file_arg $ json_arg $ sort_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* `trace`: Chrome trace_event export of profile + journal.            *)

let load_events_lenient path =
  if Sys.file_exists path then
    match Jn.load ~path with
    | Ok (evs, skipped) ->
        if skipped > 0 then
          Format.eprintf
            "cntpower: skipped %d malformed line(s) in %s (torn write?)@."
            skipped path;
        (evs, skipped)
    | Result.Error e ->
        Format.eprintf "cntpower: cannot read journal %s: %a@." path R.pp e;
        ([], 0)
  else ([], 0)

let trace_cmd =
  let run_pos =
    let doc =
      "Run whose profile and journal to export \
       (_runs/$(docv)/profile.json + events.jsonl)."
    in
    Arg.(value & pos 0 string "all" & info [] ~docv:"RUN" ~doc)
  in
  let out_arg =
    let doc = "Write the trace to $(docv) instead of _runs/<run>/trace.json." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let request_arg =
    let doc =
      "Slice the export down to one request/shard: $(docv) is a trace id \
       (t<pid>-<n>, as stamped on journal events) or a daemon request \
       number. Only that trace's telemetry subtrees and journal events are \
       exported, worker tracks still anchored on their PIDs."
    in
    Arg.(value & opt (some string) None & info [ "request" ] ~docv:"ID" ~doc)
  in
  let run run_name out request =
    let prof = R.get_exn (T.load ~path:(profile_path_of run_name)) in
    let events, skipped = load_events_lenient (events_path_of run_name) in
    if events = [] then
      Format.eprintf
        "cntpower: no journal events for run %s; spans will be laid out \
         sequentially on one track@."
        run_name;
    let prof, events, sliced =
      match request with
      | None -> (prof, events, "")
      | Some arg -> (
          match Tr.resolve_trace_id ~events arg with
          | None ->
              R.failf
                ~context:[ ("request", arg) ]
                R.Cli R.Validation_error
                "no journal event of run %s carries trace id or request \
                 number %S"
                run_name arg
          | Some trace_id ->
              let p, evs = Tr.slice ~trace_id ~events prof in
              (p, evs, Printf.sprintf ", sliced to trace %s" trace_id))
    in
    let out = match out with Some p -> p | None -> trace_path_of run_name in
    R.get_exn (Tr.save ~path:out ~events prof);
    Format.fprintf std
      "trace: %s (%d journal events, %d torn/corrupt line(s) skipped%s; \
       open in chrome://tracing or ui.perfetto.dev)@."
      out (List.length events) skipped sliced;
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Export a profiled run as Chrome trace_event JSON: telemetry \
          spans become duration events, one track per worker PID \
          (anchored at the journal's experiment_started / worker_spawned \
          timestamps), and journal events become instants. --request <id> \
          slices a single request/shard end-to-end by its trace id. Open \
          the result in chrome://tracing or Perfetto. Requires a profiled \
          run (`all --profile`, `campaign`, or `serve`).")
    Term.(const run $ run_pos $ out_arg $ request_arg)

(* ------------------------------------------------------------------ *)
(* `compare`: cross-run regression gate over profiles + manifests.     *)

let compare_cmd =
  let base_pos =
    let doc =
      "Baseline run name, or a profile JSON file (an argument containing \
       a '/' or ending in .json is read as a file)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN-A" ~doc)
  in
  let cur_pos =
    let doc = "Current run name (or profile JSON file) to compare against the baseline." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"RUN-B" ~doc)
  in
  let baseline_arg =
    let doc =
      "Compare $(i,RUN-A) (as the current run) against this baseline \
       profile file, e.g. the committed BENCH_profile.json."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let wall_rtol_arg =
    let doc = "Allowed relative wall-clock slowdown per span before it regresses." in
    Arg.(value & opt float Cp.default.Cp.wall_rtol & info [ "wall-rtol" ] ~doc)
  in
  let counter_rtol_arg =
    let doc = "Allowed relative drift per counter (two-sided)." in
    Arg.(value & opt float Cp.default.Cp.counter_rtol & info [ "counter-rtol" ] ~doc)
  in
  let scalar_rtol_arg =
    let doc = "Allowed relative drift per manifest scalar (two-sided)." in
    Arg.(value & opt float Cp.default.Cp.scalar_rtol & info [ "scalar-rtol" ] ~doc)
  in
  let dist_rtol_arg =
    let doc =
      "Allowed relative drop of a distribution mean (one-sided; \
       distributions like sim.patterns_per_s are throughput — only \
       slower regresses)."
    in
    Arg.(value & opt float Cp.default.Cp.dist_rtol & info [ "dist-rtol" ] ~doc)
  in
  let min_wall_arg =
    let doc =
      "Spans faster than this (seconds) in both runs never regress — \
       sub-jitter timings are noise."
    in
    Arg.(value & opt float Cp.default.Cp.min_wall_s & info [ "min-wall" ] ~docv:"SECONDS" ~doc)
  in
  let json_arg =
    let doc = "Emit the comparison report as JSON on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let validate_rtol name v =
    if not (Float.is_finite v) || v < 0.0 then
      R.failf
        ~context:[ (name, Printf.sprintf "%h" v) ]
        R.Cli R.Validation_error "--%s must be a finite number >= 0 (got %g)"
        name v
  in
  let side_of arg =
    if String.contains arg '/' || Filename.check_suffix arg ".json" then
      `File arg
    else `Run arg
  in
  let profile_of = function
    | `File p -> R.get_exn (T.load ~path:p)
    | `Run r -> R.get_exn (T.load ~path:(profile_path_of r))
  in
  let manifest_of = function
    | `File _ -> None
    | `Run r ->
        let path = manifest_path_of r in
        if not (Sys.file_exists path) then None
        else (
          match C.load ~path with
          | Ok m -> Some m
          | Result.Error e ->
              Format.eprintf
                "cntpower: ignoring unreadable manifest %s: %a@." path R.pp e;
              None)
  in
  let run base_arg cur_arg baseline wall_rtol counter_rtol scalar_rtol
      dist_rtol min_wall json =
    validate_rtol "wall-rtol" wall_rtol;
    validate_rtol "counter-rtol" counter_rtol;
    validate_rtol "scalar-rtol" scalar_rtol;
    validate_rtol "dist-rtol" dist_rtol;
    validate_rtol "min-wall" min_wall;
    let base, cur =
      match (baseline, cur_arg) with
      | Some file, None -> (`File file, side_of base_arg)
      | None, Some cur -> (side_of base_arg, side_of cur)
      | Some _, Some _ ->
          R.failf R.Cli R.Validation_error
            "give either RUN-B or --baseline FILE, not both"
      | None, None ->
          R.failf R.Cli R.Validation_error
            "compare needs two runs, or one run and --baseline FILE"
    in
    let tol =
      {
        Cp.wall_rtol;
        counter_rtol;
        scalar_rtol;
        dist_rtol;
        min_wall_s = min_wall;
      }
    in
    let base_prof = profile_of base in
    let cur_prof = profile_of cur in
    let items = Cp.compare_profiles ~tol ~base:base_prof cur_prof in
    let items =
      match (manifest_of base, manifest_of cur) with
      | Some bm, Some cm -> items @ Cp.compare_manifests ~tol ~base:bm cm
      | _ -> items
    in
    let report = { Cp.tol; items } in
    if json then print_string (C.json_to_string (Cp.to_json report))
    else Cp.pp std report;
    match Cp.regression_error report with
    | None -> 0
    | Some e ->
        Format.eprintf "cntpower: %a@." R.pp e;
        R.exit_code e
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Diff two profiled runs (or one run against a committed baseline \
          profile): per-span wall-clock deltas, counter drift, and \
          manifest scalar drift, each under its own relative tolerance. \
          Exits 0 when everything is within tolerance and 28 \
          (cli/regression) when any metric regressed, so CI can gate on \
          performance drift exactly like `golden --check` gates on \
          metric drift.")
    Term.(
      const run $ base_pos $ cur_pos $ baseline_arg $ wall_rtol_arg
      $ counter_rtol_arg $ scalar_rtol_arg $ dist_rtol_arg $ min_wall_arg
      $ json_arg)

(* ------------------------------------------------------------------ *)
(* `serve` / `request`: the fault-tolerant estimation daemon.          *)

module Sv = Runtime.Server

let report_json (r : Techmap.Estimate.report) =
  C.Obj
    [
      ("gates", C.Num (float_of_int r.Techmap.Estimate.gates));
      ("area", C.Num r.Techmap.Estimate.area);
      ("delay_s", C.Num r.Techmap.Estimate.delay);
      ("dynamic_W", C.Num r.Techmap.Estimate.dynamic);
      ("short_circuit_W", C.Num r.Techmap.Estimate.short_circuit);
      ("static_W", C.Num r.Techmap.Estimate.static);
      ("gate_leak_W", C.Num r.Techmap.Estimate.gate_leak);
      ("total_W", C.Num r.Techmap.Estimate.total);
      ("edp_Js", C.Num r.Techmap.Estimate.edp);
    ]

type serve_job = {
  sj_lib : Cell.Genlib.t;
  sj_blif : string;
  sj_patterns : int;
  sj_seed : int64;
  sj_domains : int option;
  sj_inject : string option;
}

let opt_field json name conv ~default =
  match C.field json name with Result.Error _ -> Ok default | Ok v -> conv v

let as_int name v =
  match C.as_num name v with
  | Result.Error _ as e -> e
  | Ok f ->
      if Float.is_integer f && Float.abs f < 1e15 then Ok (int_of_float f)
      else
        R.error
          ~context:[ (name, Printf.sprintf "%g" f) ]
          R.Cli R.Validation_error "%s must be an integer" name

(* Admission runs in the server process: cheap typed validation of every
   parameter plus a full BLIF parse + well-formedness check, so garbage
   is refused before a worker is ever spawned. *)
let serve_admit ~allow_inject json =
  let ( let* ) = Result.bind in
  let* verb = Result.bind (C.field json "verb") (C.as_str "verb") in
  let* () =
    if verb = "estimate" then Ok ()
    else
      R.error R.Cli R.Validation_error
        "unknown verb %S (this daemon speaks \"estimate\", \"health\" and \
         \"metrics\")" verb
  in
  let* blif = Result.bind (C.field json "blif") (C.as_str "blif") in
  let* lib_name =
    opt_field json "library" (C.as_str "library") ~default:"cntfet-generalized"
  in
  let* lib =
    match Cell.Genlib.find_library lib_name with
    | Some l -> Ok l
    | None ->
        R.error
          ~context:[ ("known", String.concat "," (Cell.Genlib.library_names ())) ]
          R.Cli R.Validation_error "unknown library %S" lib_name
  in
  let* patterns =
    opt_field json "patterns" (as_int "patterns")
      ~default:Techmap.Estimate.default_patterns
  in
  let* seed =
    opt_field json "seed"
      (fun v -> Result.map Int64.of_int (as_int "seed" v))
      ~default:42L
  in
  let* domains =
    opt_field json "domains"
      (fun v -> Result.map Option.some (as_int "domains" v))
      ~default:None
  in
  let* () =
    R.protect ~stage:R.Cli (fun () ->
        validate_patterns patterns;
        validate_seed seed;
        validate_domains domains)
  in
  let* nl = Nets.Blif.parse_string blif in
  let* (_ : Nets.Check.report) = Nets.Check.check nl in
  let* inject =
    match C.field json "inject" with
    | Result.Error _ -> Ok None
    | Ok v ->
        let* s = C.as_str "inject" v in
        if not allow_inject then
          R.error R.Cli R.Validation_error
            "fault injection is disabled (start the daemon with --allow-inject)"
        else if s = "crash" || s = "hang" then Ok (Some s)
        else
          R.error R.Cli R.Validation_error
            "unknown inject %S (crash or hang)" s
  in
  Ok
    {
      sj_lib = lib;
      sj_blif = blif;
      sj_patterns = patterns;
      sj_seed = seed;
      sj_domains = domains;
      sj_inject = inject;
    }

(* Runs in the forked worker. Fault injection mimics a worker crash /
   wedge from inside the request, exactly what the supervisor machinery
   exists to contain. *)
let serve_execute job =
  (match job.sj_inject with
  | Some "crash" -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some "hang" ->
      while true do
        Unix.sleepf 3600.0
      done
  | _ -> ());
  Result.map report_json
    (Techmap.Estimate.run_blif ?domains:job.sj_domains
       ~patterns:job.sj_patterns ~seed:job.sj_seed ~lib:job.sj_lib job.sj_blif)

let serve_describe job =
  [
    ("library", job.sj_lib.Cell.Genlib.name);
    ("patterns", string_of_int job.sj_patterns);
    ("blif_bytes", string_of_int (String.length job.sj_blif));
  ]

let socket_arg =
  let doc = "Unix-domain socket path the daemon binds (or the client dials)." in
  Arg.(value & opt string "cntpower.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let workers_arg =
    let doc = "Concurrent forked estimation workers." in
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admitted requests allowed to wait for a worker; beyond this the \
       daemon sheds with an immediate `overloaded` response."
    in
    Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let max_bytes_arg =
    let doc = "Admission cap on the request frame payload, in bytes." in
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info [ "max-request-bytes" ] ~docv:"BYTES" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request deadline in seconds; a worker outliving it is \
       killed and the request answered with a typed worker-timeout error."
    in
    Arg.(value & opt float 60.0 & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let drain_arg =
    let doc = "Budget for finishing in-flight work on SIGTERM/SIGINT." in
    Arg.(value & opt float 30.0 & info [ "drain-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let breaker_arg =
    let doc =
      "Worker crashes within the breaker window that trip the circuit \
       breaker and flip the daemon to draining."
    in
    Arg.(value & opt int 5 & info [ "breaker" ] ~docv:"N" ~doc)
  in
  let breaker_window_arg =
    let doc = "Circuit-breaker crash-counting window, in seconds." in
    Arg.(value & opt float 60.0 & info [ "breaker-window" ] ~docv:"SECONDS" ~doc)
  in
  let allow_inject_arg =
    let doc =
      "Accept `inject` fields in requests (crash/hang the worker); for the \
       resilience tests only."
    in
    Arg.(value & flag & info [ "allow-inject" ] ~doc)
  in
  let run_name_arg =
    let doc =
      "Run name for the journal/telemetry artifacts \
       (_runs/$(docv)/events.jsonl, profile.json, metrics.json); default \
       serve-<unix-time>."
    in
    Arg.(value & opt (some string) None & info [ "run" ] ~docv:"NAME" ~doc)
  in
  let journal_max_bytes_arg =
    let doc =
      "Rotate the event journal when it exceeds $(docv) bytes: the live \
       events.jsonl is renamed events.jsonl.1 (older segments shift up) \
       and a fresh file is started. 0 disables rotation."
    in
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "journal-max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let journal_keep_arg =
    let doc = "Rotated journal segments to keep (events.jsonl.1 .. .$(docv))." in
    Arg.(value & opt int 4 & info [ "journal-keep" ] ~docv:"N" ~doc)
  in
  let run socket libfiles workers queue max_bytes deadline drain breaker
      window allow_inject run_name journal_max_bytes journal_keep log_level
      domains no_cache =
    validate_timeout deadline;
    validate_timeout drain;
    validate_timeout window;
    if journal_max_bytes < 0 then
      R.failf
        ~context:[ ("journal-max-bytes", string_of_int journal_max_bytes) ]
        R.Cli R.Validation_error "--journal-max-bytes must be >= 0 (got %d)"
        journal_max_bytes;
    if journal_keep < 1 || journal_keep > 1000 then
      R.failf
        ~context:[ ("journal-keep", string_of_int journal_keep) ]
        R.Cli R.Validation_error "--journal-keep must be in [1, 1000] (got %d)"
        journal_keep;
    apply_runtime_opts ~domains ~no_cache;
    (* Before the daemon binds: request admission resolves library names
       against the registry, and estimation workers fork from here. *)
    load_library_files libfiles;
    Jn.set_verbosity log_level;
    let run_name =
      match run_name with
      | Some n -> n
      | None -> Printf.sprintf "serve-%d" (int_of_float (Unix.time ()))
    in
    (* Telemetry and the journal are always on for the daemon: the
       per-request profile merge and the typed lifecycle events are the
       observable surface `stats`/`trace`/`compare` feed on. *)
    T.set_enabled true;
    T.reset ();
    Jn.set_enabled true;
    (match
       Jn.open_sink
         ?max_bytes:
           (if journal_max_bytes = 0 then None else Some journal_max_bytes)
         ~keep:journal_keep
         ~path:(events_path_of run_name) ()
     with
    | Ok () -> ()
    | Result.Error e ->
        Format.eprintf "cntpower: cannot open event journal: %a@." R.pp e;
        Jn.set_enabled false);
    let cfg =
      {
        (Sv.default_config ~socket_path:socket) with
        Sv.max_workers = workers;
        queue_limit = queue;
        max_request_bytes = max_bytes;
        default_deadline_s = deadline;
        drain_timeout_s = drain;
        breaker_threshold = breaker;
        breaker_window_s = window;
        metrics_path = Some (metrics_path_of run_name);
      }
    in
    Format.fprintf std
      "cntpower serve: socket %s, run %s (%d workers, queue %d)@." socket
      run_name workers queue;
    Format.pp_print_flush std ();
    let handlers =
      {
        Sv.admit = serve_admit ~allow_inject;
        execute = serve_execute;
        describe = serve_describe;
      }
    in
    let result = Sv.run cfg handlers in
    let prof = T.snapshot () in
    T.set_enabled false;
    (match T.save ~path:(profile_path_of run_name) prof with
    | Ok () -> Format.fprintf std "profile: %s@." (profile_path_of run_name)
    | Result.Error e ->
        Format.eprintf "cntpower: cannot write profile: %a@." R.pp e);
    Jn.close_sink ();
    Jn.set_enabled false;
    match result with
    | Ok Sv.Drained ->
        Format.fprintf std "serve: drained clean@.";
        0
    | Ok Sv.Tripped ->
        let e =
          R.make R.Experiment R.Worker_killed
            "circuit breaker tripped on worker crash churn; daemon drained"
        in
        Format.eprintf "cntpower: %a@." R.pp e;
        R.exit_code e
    | Result.Error e ->
        Format.eprintf "cntpower: %a@." R.pp e;
        R.exit_code e
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the power-estimation daemon on a Unix socket: length-prefixed \
          JSON requests (estimate/health/metrics), bounded forked-worker \
          pool, admission validation, per-request deadlines, overload \
          shedding, crash isolation with exponential backoff and a circuit \
          breaker, and graceful SIGTERM/SIGINT drain. Journal (rotated at \
          --journal-max-bytes), telemetry and live metrics land in \
          _runs/<run>/ for stats/trace/compare/top.")
    Term.(
      const run $ socket_arg $ library_file_arg $ workers_arg $ queue_arg
      $ max_bytes_arg $ deadline_arg $ drain_arg $ breaker_arg
      $ breaker_window_arg $ allow_inject_arg $ run_name_arg
      $ journal_max_bytes_arg $ journal_keep_arg $ log_level_arg
      $ domains_arg $ no_cache_arg)

let request_cmd =
  let file_arg =
    let doc = "BLIF netlist to estimate (omit with --health)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let health_arg =
    let doc = "Ask the daemon for its health report instead of an estimate." in
    Arg.(value & flag & info [ "health" ] ~doc)
  in
  let library_arg =
    let doc =
      "Mapping library name (a built-in or one loaded by the daemon, see \
       `cntpower library list`)."
    in
    Arg.(
      value & opt string "cntfet-generalized" & info [ "library" ] ~docv:"NAME" ~doc)
  in
  let req_patterns_arg =
    let doc = "Simulation patterns for the request (server default: 640000)." in
    Arg.(value & opt int 4096 & info [ "p"; "patterns" ] ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline to send (seconds); server default otherwise." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let timeout_arg =
    let doc = "Client-side wait for the response, in seconds." in
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let inject_arg =
    let doc =
      "Fault injection (daemon must run with --allow-inject): $(b,crash) \
       SIGKILLs the worker mid-request, $(b,hang) wedges it until the \
       deadline kill."
    in
    Arg.(
      value
      & opt (some (enum [ ("crash", "crash"); ("hang", "hang") ])) None
      & info [ "inject" ] ~docv:"MODE" ~doc)
  in
  let req_retries_arg =
    let doc =
      "Extra attempts when the daemon sheds the request as overloaded: \
       each retry waits the server's retry_after_s hint (doubled per \
       attempt, jittered, capped at 30 s) before re-dialing. Default 0: \
       give up immediately, as before."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~doc)
  in
  let run socket file health library patterns seed deadline timeout inject
      retries =
    validate_timeout timeout;
    if health then begin
      let resp =
        R.get_exn
          (Sv.call ~socket_path:socket ~timeout_s:timeout
             (C.Obj [ ("verb", C.Str "health") ]))
      in
      (match Sv.response_error resp with
      | Some e -> R.raise_error e
      | None -> ());
      let h =
        match C.field resp "health" with Ok h -> h | Result.Error _ -> resp
      in
      print_endline (C.json_to_string h);
      0
    end
    else begin
      let file =
        match file with
        | Some f -> f
        | None ->
            R.failf R.Cli R.Validation_error
              "request needs a BLIF file argument (or --health)"
      in
      validate_patterns patterns;
      validate_seed seed;
      let blif =
        match In_channel.with_open_bin file In_channel.input_all with
        | s -> s
        | exception Sys_error m -> R.failf R.Cli R.Io_error "%s" m
      in
      let fields =
        [
          ("verb", C.Str "estimate");
          ("blif", C.Str blif);
          ("library", C.Str library);
          ("patterns", C.Num (float_of_int patterns));
          ("seed", C.Num (Int64.to_float seed));
        ]
        @ (match deadline with
          | None -> []
          | Some d -> [ ("deadline_s", C.Num d) ])
        @ match inject with None -> [] | Some s -> [ ("inject", C.Str s) ]
      in
      (* Overload is the one retryable reply: the daemon shed the request
         and said when to come back (retry_after_s). Honor the hint with
         exponential growth and jitter so a herd of shed clients does not
         re-dial in lockstep; everything else still fails fast. *)
      let retry_delay ~hint attempt =
        let frac, _ = Float.modf (Unix.gettimeofday () *. 1000.0) in
        let jitter = 0.75 +. (0.5 *. frac) in
        Float.min 30.0 (hint *. (2.0 ** float_of_int attempt) *. jitter)
      in
      let rec attempt n =
        let resp =
          R.get_exn
            (Sv.call ~socket_path:socket ~timeout_s:timeout (C.Obj fields))
        in
        match Sv.response_error resp with
        | Some e when e.R.code = R.Overloaded && n < retries ->
            let hint =
              match List.assoc_opt "retry_after_s" e.R.context with
              | Some s -> (
                  match float_of_string_opt s with
                  | Some f when Float.is_finite f && f > 0.0 -> f
                  | _ -> 1.0)
              | None -> 1.0
            in
            let delay = retry_delay ~hint n in
            Format.eprintf
              "cntpower: daemon overloaded; retry %d/%d in %.2f s@." (n + 1)
              retries delay;
            Unix.sleepf delay;
            attempt (n + 1)
        | Some e ->
            Format.eprintf "cntpower: %a@." R.pp e;
            R.exit_code e
        | None ->
            let result =
              match C.field resp "result" with
              | Ok r -> r
              | Result.Error _ -> resp
            in
            print_endline (C.json_to_string result);
            0
      in
      attempt 0
    end
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running `cntpower serve` daemon and print \
          the JSON response body. Server-side failures exit with their \
          typed error code (29 when the daemon shed the request under \
          load); transport failures are typed cli/io-error.")
    Term.(
      const run $ socket_arg $ file_arg $ health_arg $ library_arg
      $ req_patterns_arg $ seed_arg $ deadline_arg $ timeout_arg $ inject_arg
      $ req_retries_arg)

(* ------------------------------------------------------------------ *)
(* `metrics` / `top`: live operational metrics from a daemon socket or
   a run directory's metrics.json snapshot.                            *)

module Mx = Runtime.Metrics

(* Target resolution shared by both commands: an existing Unix socket
   (or anything named *.sock — dialing a missing one yields the typed
   io-error) is a live daemon to poll with the `metrics` verb; a *.json
   path is read directly; anything else is a run name under _runs/. *)
let metrics_source arg =
  let is_socket p =
    match Unix.stat p with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> true
    | _ -> false
    | exception Unix.Unix_error _ -> false
  in
  if is_socket arg || Filename.check_suffix arg ".sock" then `Socket arg
  else if Filename.check_suffix arg ".json" then `File arg
  else `File (metrics_path_of arg)

let fetch_metrics ~timeout_s = function
  | `Socket sock ->
      let ( let* ) = Result.bind in
      let* resp =
        Sv.call ~socket_path:sock ~timeout_s
          (C.Obj [ ("verb", C.Str "metrics") ])
      in
      let* () =
        match Sv.response_error resp with
        | Some e -> Result.Error e
        | None -> Ok ()
      in
      let* m = C.field resp "metrics" in
      Mx.of_json m
  | `File path -> Mx.load ~path

let metrics_target_pos =
  let doc =
    "What to read: a daemon socket path (the `metrics` verb is answered \
     inline, even under load or while draining), a run name \
     (_runs/$(docv)/metrics.json, written by `serve` and `campaign`), or \
     a metrics.json file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)

let metrics_timeout_arg =
  let doc = "Client-side wait for a daemon's metrics response, in seconds." in
  Arg.(value & opt float 10.0 & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let metrics_cmd =
  let json_arg =
    let doc = "Emit the snapshot as JSON on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let prometheus_arg =
    let doc =
      "Emit the snapshot as Prometheus text exposition (version 0.0.4): \
       counters as cntpower_*_total, gauges, and distribution summaries \
       with p50/p95 quantile series."
    in
    Arg.(value & flag & info [ "prometheus" ] ~doc)
  in
  let run target json prometheus timeout =
    validate_timeout timeout;
    let m = R.get_exn (fetch_metrics ~timeout_s:timeout (metrics_source target)) in
    if prometheus then print_string (Mx.to_prometheus m)
    else if json then print_endline (C.json_to_string (Mx.to_json m))
    else Format.fprintf std "%a@." Mx.pp m;
    0
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Fetch one live metrics snapshot — request counts by verb and \
          outcome, queue depth, in-flight workers, latency distributions, \
          cache hit ratios — from a running daemon's socket or a run's \
          metrics.json, as a human summary, --json, or --prometheus text \
          exposition.")
    Term.(
      const run $ metrics_target_pos $ json_arg $ prometheus_arg
      $ metrics_timeout_arg)

let top_cmd =
  let interval_arg =
    let doc = "Refresh interval, in seconds." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let once_arg =
    let doc = "Print one snapshot and exit instead of refreshing." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let run target interval once timeout =
    validate_timeout timeout;
    if not (Float.is_finite interval) || interval < 0.1 then
      R.failf
        ~context:[ ("interval", Printf.sprintf "%h" interval) ]
        R.Cli R.Validation_error
        "--interval must be a finite number of seconds >= 0.1 (got %g)"
        interval;
    let source = metrics_source target in
    let rec loop () =
      (match fetch_metrics ~timeout_s:timeout source with
      | Ok m ->
          if not once then print_string "\027[2J\027[H";
          Format.fprintf std "%a@." Mx.pp m;
          Format.pp_print_flush std ()
      | Result.Error e ->
          (* One failed poll is not fatal when refreshing: the daemon may
             be mid-restart or the snapshot mid-rename. --once must exit
             typed so scripts and CI can gate on it. *)
          if once then R.raise_error e
          else Format.fprintf std "cntpower top: %a@." R.pp e);
      if once then 0
      else begin
        Unix.sleepf interval;
        loop ()
      end
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live one-screen status of a running daemon or campaign: polls \
          the socket's `metrics` verb or the run's metrics.json every \
          --interval seconds and redraws gauges, counters, cache hit \
          ratios and latency summaries; --once prints a single snapshot \
          (typed exit on failure) for scripts.")
    Term.(
      const run $ metrics_target_pos $ interval_arg $ once_arg
      $ metrics_timeout_arg)

(* ------------------------------------------------------------------ *)
(* `library`: inspect, validate and export logic-family definitions.   *)

let library_cmd =
  let name_pos =
    let doc = "Library name (see `cntpower library list`)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let origin_of lib =
    let name = lib.Cell.Genlib.name in
    let builtin =
      List.exists
        (fun (l : Cell.Genlib.t) -> l.Cell.Genlib.name = name)
        Cell.Genlib.all_libraries
    in
    let registered =
      List.exists
        (fun (l : Cell.Genlib.t) -> l.Cell.Genlib.name = name)
        (Cell.Genlib.registered ())
    in
    match (builtin, registered) with
    | _, false -> "built-in"
    | true, true -> "file (shadows built-in)"
    | false, true -> "file"
  in
  let list_cmd =
    (* Unlike the pipeline commands, a broken file on the search path is
       not fatal here: list is the diagnostic surface, so per-file
       outcomes are printed and the exit stays 0. Explicit --library-file
       arguments are still load-or-die. *)
    let run libfiles =
      let discovered = Cell.Libfile.load_search_path () in
      List.iter
        (fun path ->
          match Cell.Libfile.load path with
          | Ok (_, warnings) ->
              List.iter
                (fun w -> Format.eprintf "cntpower: %s: %s@." path w)
                warnings
          | Result.Error e -> R.raise_error e)
        libfiles;
      List.iter
        (fun lib ->
          Format.fprintf std "%-24s %-24s %a@." lib.Cell.Genlib.name
            (origin_of lib) Cell.Genlib.pp_summary lib)
        (Cell.Genlib.libraries ());
      List.iter
        (fun (path, outcome) ->
          match outcome with
          | Ok ((lib : Cell.Genlib.t), _) ->
              Format.fprintf std "# %s: loaded %s@." path lib.Cell.Genlib.name
          | Result.Error e -> Format.fprintf std "# %s: BROKEN — %a@." path R.pp e)
        discovered;
      0
    in
    Cmd.v
      (Cmd.info "list"
         ~doc:
           "List every resolvable library — built-ins, $(b,CNTPOWER_LIBPATH) \
            discoveries (broken files are reported, not fatal) and explicit \
            --library-file loads — with origin and summary.")
      Term.(const run $ library_file_arg)
  in
  let show_cmd =
    let run libfiles name =
      load_library_files libfiles;
      let lib = find_library name in
      Format.fprintf std "# %s [%s]@.# %a@.%s@." lib.Cell.Genlib.name
        (origin_of lib) Cell.Genlib.pp_summary lib
        (Cell.Genlib.to_genlib_string lib);
      0
    in
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Print one library's summary and its genlib rendering (resolves \
            data files exactly like the pipeline commands).")
      Term.(const run $ library_file_arg $ name_pos)
  in
  let validate_cmd =
    let file_pos =
      let doc = "Logic-family file (genlib-plus) to parse and validate." in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
    in
    let run file =
      match Cell.Libfile.load_file file with
      | Ok lib ->
          Format.fprintf std "%s: OK — %a@." file Cell.Genlib.pp_summary lib;
          0
      | Result.Error e -> R.raise_error e
    in
    Cmd.v
      (Cmd.info "validate"
         ~doc:
           "Parse and fully validate one logic-family file without \
            registering it. Exit 0 when the file would load; otherwise the \
            typed error's code (12 syntax, 13 semantics, 24 unreadable) \
            with file/line context.")
      Term.(const run $ file_pos)
  in
  let export_cmd =
    let out_arg =
      let doc = "Write to $(docv) instead of stdout." in
      Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
    in
    let run libfiles name out =
      load_library_files libfiles;
      let lib = find_library name in
      let text = Cell.Libfile.export lib in
      (match out with
      | None -> print_string text
      | Some path -> (
          try Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)
          with Sys_error m ->
            R.failf ~context:[ ("file", path) ] R.Library R.Io_error "%s" m));
      0
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Render a library as a canonical genlib-plus file — the format \
            `--library-file` loads. The committed data/libraries/*.genlibp \
            copies of the built-ins are exactly this output.")
      Term.(const run $ library_file_arg $ name_pos $ out_arg)
  in
  Cmd.group
    (Cmd.info "library"
       ~doc:
         "Inspect, validate and export logic-family definitions: the three \
          built-ins plus genlib-plus data files loaded via --library-file \
          or $(b,CNTPOWER_LIBPATH).")
    [ list_cmd; show_cmd; validate_cmd; export_cmd ]

let main =
  Cmd.group
    (Cmd.info "cntpower" ~version:"1.1.0"
       ~doc:
         "Power consumption of logic circuits in ambipolar carbon nanotube \
          technology (DATE 2010) - reproduction harness.")
    [
      table1_cmd; libchar_cmd; patterns_cmd; tgate_cmd; delay_cmd; dynamic_cmd;
      pla_cmd; seq_cmd; sensitivity_cmd; ablations_cmd; synth_cmd; genlib_cmd;
      check_cmd; all_cmd; campaign_cmd; golden_cmd; stats_cmd; trace_cmd;
      compare_cmd; serve_cmd; request_cmd; metrics_cmd; top_cmd; library_cmd;
    ]

(* Every failure leaves through a typed error: Cnt_error carries its own
   exit code; anything else is wrapped (never a bare backtrace). *)
let () =
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception R.Error e ->
      Format.eprintf "cntpower: %a@." R.pp e;
      exit (R.exit_code e)
  | exception exn ->
      let e = R.of_exn ~stage:R.Cli exn in
      Format.eprintf "cntpower: %a@." R.pp e;
      exit (R.exit_code e)
