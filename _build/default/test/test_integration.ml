(* Cross-cutting integration tests: format roundtrips on real benchmark
   circuits and agreement between the three equivalence-checking engines
   (random co-simulation, BDD, SAT) on both correct and mutated designs. *)

module A = Aigs.Aig
module N = Nets.Netlist
module V = Techmap.Verify

let random_netlist rng ~inputs ~gates ~outputs =
  Circuits.Randlogic.generate ~inputs ~gates ~outputs
    ~seed:(Logic.Prng.next64 rng) ()

(* ------------------------------------------------------------------ *)
(* Format roundtrips on benchmark circuits *)

let blif_roundtrip_suite () =
  List.iter
    (fun name ->
      let nl = (Circuits.Suite.find name).Circuits.Suite.generate () in
      let nl2 = Nets.Blif.read_string (Nets.Blif.write_string nl) in
      Alcotest.(check bool) (name ^ " blif roundtrip equivalent") true
        (V.equiv_netlists nl nl2))
    [ "C1355"; "C1908" ]

let blif_roundtrip_random =
  QCheck.Test.make ~count:30 ~name:"blif roundtrip on random netlists"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 3)) in
      let nl = random_netlist rng ~inputs:8 ~gates:60 ~outputs:6 in
      let nl2 = Nets.Blif.read_string (Nets.Blif.write_string nl) in
      V.equiv_netlists nl nl2)

let aig_netlist_roundtrip =
  QCheck.Test.make ~count:30 ~name:"netlist -> aig -> netlist -> aig fixpoint"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 9)) in
      let nl = random_netlist rng ~inputs:7 ~gates:50 ~outputs:5 in
      let aig = A.of_netlist nl in
      let nl2 = A.to_netlist aig in
      V.equiv_netlists nl nl2)

let aiger_roundtrip_suite () =
  let nl = (Circuits.Suite.find "C1908").Circuits.Suite.generate () in
  let aig = A.cleanup (A.of_netlist nl) in
  let aig2 = Aigs.Aiger.read_string (Aigs.Aiger.write_string aig) in
  Alcotest.(check bool) "aiger roundtrip equivalent" true (V.equiv_netlist_aig nl aig2)

(* ------------------------------------------------------------------ *)
(* Three-engine CEC agreement *)

(* Mutate one random LUT/gate of a netlist by rebuilding it with one node's
   function complemented. *)
let mutate rng nl =
  let size = N.size nl in
  (* pick a non-input node to flip *)
  let candidates = ref [] in
  N.iter_nodes nl (fun id op _ ->
      match op with
      | N.Input | N.Constant _ -> ()
      | N.Buf | N.Not | N.And | N.Or | N.Xor | N.Nand | N.Nor | N.Xnor | N.Mux
      | N.Maj | N.Lut _ -> candidates := id :: !candidates);
  let target = List.nth !candidates (Logic.Prng.int rng (List.length !candidates)) in
  let fresh = N.create () in
  let map = Array.make size (-1) in
  N.iter_nodes nl (fun id op fanins ->
      let mapped_fanins = Array.map (fun f -> map.(f)) fanins in
      map.(id) <-
        (match op with
        | N.Input -> N.add_input fresh (N.input_name nl id)
        | N.Constant _ | N.Buf | N.Not | N.And | N.Or | N.Xor | N.Nand | N.Nor
        | N.Xnor | N.Mux | N.Maj | N.Lut _ ->
            let node = N.add_node fresh op mapped_fanins in
            if id = target then N.add_node fresh N.Not [| node |] else node));
  Array.iter (fun (name, id) -> N.add_output fresh name map.(id)) (N.outputs nl);
  (fresh, target)

let engines_agree =
  QCheck.Test.make ~count:25 ~name:"sim/BDD/SAT agree on correct and mutated mappings"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 17)) in
      let nl = random_netlist rng ~inputs:7 ~gates:40 ~outputs:5 in
      let aig_good = A.of_netlist nl in
      let bdd_good = V.equiv_netlist_aig nl aig_good in
      let sat_good = V.sat_equiv_netlist_aig nl aig_good = V.Equivalent in
      let mutated, _ = mutate rng nl in
      let aig_bad = A.of_netlist mutated in
      (* The mutation may be functionally benign (masked); all engines must
         still agree with each other. *)
      let bdd_bad = V.equiv_netlist_aig nl aig_bad in
      let sat_bad = V.sat_equiv_netlist_aig nl aig_bad = V.Equivalent in
      bdd_good && sat_good && bdd_bad = sat_bad)

let mapped_three_engines () =
  let nl = Circuits.Hamming.corrector ~data_bits:8 in
  let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
  List.iter
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let m = Techmap.Mapper.map ml aig in
      Alcotest.(check bool) (lib.Cell.Genlib.name ^ " sim") true
        (Techmap.Mapped.check m nl ~patterns:2048 ~seed:3L);
      Alcotest.(check bool) (lib.Cell.Genlib.name ^ " bdd") true
        (V.equiv_netlist_mapped nl m);
      Alcotest.(check bool)
        (lib.Cell.Genlib.name ^ " sat")
        true
        (V.sat_equiv_netlist_mapped nl m = V.Equivalent))
    Cell.Genlib.all_libraries

(* ------------------------------------------------------------------ *)
(* Flow-level invariants *)

let optimization_never_breaks_suite () =
  (* resyn2rs + mapping on every small/medium suite row, verified by random
     co-simulation (the cheap engine), is already covered elsewhere for two
     rows — here sweep all 12 at low pattern count as a smoke invariant. *)
  List.iter
    (fun (e : Circuits.Suite.entry) ->
      let nl = e.Circuits.Suite.generate () in
      let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
      let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
      let m = Techmap.Mapper.map ml aig in
      Alcotest.(check bool) (e.Circuits.Suite.name ^ " verified") true
        (Techmap.Mapped.check m nl ~patterns:256 ~seed:12L))
    Circuits.Suite.all

let estimate_pattern_count_convergence () =
  (* Dynamic power estimates at 64K and 256K patterns agree within 2%. *)
  let nl = Circuits.Hamming.corrector ~data_bits:16 in
  let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let m = Techmap.Mapper.map ml aig in
  let a = Techmap.Estimate.run ~patterns:65536 ~seed:1L m in
  let b = Techmap.Estimate.run ~patterns:262144 ~seed:2L m in
  let rel = abs_float (a.Techmap.Estimate.dynamic -. b.Techmap.Estimate.dynamic)
            /. b.Techmap.Estimate.dynamic in
  Alcotest.(check bool) (Printf.sprintf "rel diff %.4f < 0.02" rel) true (rel < 0.02)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "integration"
    [
      ( "roundtrips",
        Alcotest.
          [
            test_case "blif on ECC rows" `Slow blif_roundtrip_suite;
            test_case "aiger on C1908" `Slow aiger_roundtrip_suite;
          ]
        @ qt [ blif_roundtrip_random; aig_netlist_roundtrip ] );
      ( "cec-engines",
        Alcotest.[ test_case "mapped: all three engines" `Slow mapped_three_engines ]
        @ qt [ engines_agree ] );
      ( "flow",
        [
          Alcotest.test_case "all 12 rows verified" `Slow optimization_never_breaks_suite;
          Alcotest.test_case "estimator convergence" `Slow estimate_pattern_count_convergence;
        ] );
    ]
