module T = Logic.Truthtable
module B = Logic.Bitvec
module E = Logic.Expr

let tt = Alcotest.testable T.pp T.equal

(* ------------------------------------------------------------------ *)
(* Prng *)

let prng_deterministic () =
  let a = Logic.Prng.create 7L and b = Logic.Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Logic.Prng.next64 a) (Logic.Prng.next64 b)
  done

let prng_bounds () =
  let rng = Logic.Prng.create 1L in
  for _ = 1 to 1000 do
    let v = Logic.Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let prng_float_range () =
  let rng = Logic.Prng.create 2L in
  for _ = 1 to 1000 do
    let v = Logic.Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

(* ------------------------------------------------------------------ *)
(* Bitvec *)

let bitvec_get_set () =
  let v = B.create 130 in
  B.set v 0 true;
  B.set v 64 true;
  B.set v 129 true;
  Alcotest.(check bool) "bit 0" true (B.get v 0);
  Alcotest.(check bool) "bit 1" false (B.get v 1);
  Alcotest.(check bool) "bit 64" true (B.get v 64);
  Alcotest.(check bool) "bit 129" true (B.get v 129);
  Alcotest.(check int) "popcount" 3 (B.popcount v)

let bitvec_lognot_respects_length () =
  let v = B.create 70 in
  let nv = B.lognot v in
  Alcotest.(check int) "popcount of ~0 over 70 bits" 70 (B.popcount nv)

let bitvec_ops () =
  let rng = Logic.Prng.create 3L in
  let a = B.create 200 and b = B.create 200 in
  B.fill_random rng a;
  B.fill_random rng b;
  let x = B.logxor a b in
  for i = 0 to 199 do
    Alcotest.(check bool) "xor bit" (B.get a i <> B.get b i) (B.get x i)
  done

let bitvec_transitions_small () =
  let v = B.create 6 in
  (* 010110: toggles 0-1,1-0,0-1,1-1,1-0 = 4 *)
  List.iteri (fun i b -> B.set v i b) [ false; true; false; true; true; false ];
  Alcotest.(check int) "transitions" 4 (B.transitions v)

let bitvec_transitions_word_boundary () =
  let v = B.create 128 in
  B.set v 63 true;
  Alcotest.(check int) "transitions across word seam" 2 (B.transitions v)

let bitvec_transitions_matches_naive () =
  let rng = Logic.Prng.create 11L in
  for len = 1 to 8 do
    let v = B.create (len * 37) in
    B.fill_random rng v;
    let naive = ref 0 in
    for i = 0 to B.length v - 2 do
      if B.get v i <> B.get v (i + 1) then incr naive
    done;
    Alcotest.(check int) "naive transitions" !naive (B.transitions v)
  done

(* ------------------------------------------------------------------ *)
(* Truthtable *)

let tt_vars_small () =
  let x0 = T.var 2 0 and x1 = T.var 2 1 in
  Alcotest.(check bool) "x0(01)=1" true (T.eval x0 1);
  Alcotest.(check bool) "x0(10)=0" false (T.eval x0 2);
  Alcotest.(check bool) "x1(10)=1" true (T.eval x1 2);
  Alcotest.check tt "and" (T.of_int64 2 8L) (T.logand x0 x1)

let tt_vars_large () =
  let x7 = T.var 8 7 in
  Alcotest.(check bool) "x7 low" false (T.eval x7 0);
  Alcotest.(check bool) "x7 high" true (T.eval x7 128);
  Alcotest.(check int) "count" 128 (T.count_ones x7)

let tt_cofactor () =
  let n = 3 in
  let f = T.logor (T.logand (T.var n 0) (T.var n 1)) (T.var n 2) in
  Alcotest.check tt "f|x2=1 is const 1" (T.const n true) (T.cofactor f 2 true);
  Alcotest.check tt "f|x2=0 = x0&x1"
    (T.logand (T.var n 0) (T.var n 1))
    (T.cofactor f 2 false)

let tt_cofactor_high_var () =
  let n = 8 in
  let f = T.logxor (T.var n 7) (T.var n 0) in
  Alcotest.check tt "f|x7=0 = x0" (T.var n 0) (T.cofactor f 7 false);
  Alcotest.check tt "f|x7=1 = !x0" (T.lognot (T.var n 0)) (T.cofactor f 7 true)

let tt_support () =
  let n = 5 in
  let f = T.logxor (T.var n 1) (T.var n 3) in
  Alcotest.(check (list int)) "support" [ 1; 3 ] (T.support f)

let tt_shrink_expand () =
  let n = 5 in
  let f = T.logand (T.var n 2) (T.var n 4) in
  let s = T.shrink f in
  Alcotest.(check int) "shrunk to 2 vars" 2 (T.nvars s);
  Alcotest.check tt "shrunk = x0&x1" (T.logand (T.var 2 0) (T.var 2 1)) s;
  let e = T.expand s 4 in
  Alcotest.check tt "expand" (T.logand (T.var 4 0) (T.var 4 1)) e

let tt_permute () =
  let n = 3 in
  let f = T.logand (T.var n 0) (T.lognot (T.var n 2)) in
  (* variable i of f becomes variable p(i): with p = (1 2 0),
     x0 -> x1 and x2 -> x0 *)
  let g = T.permute f [| 1; 2; 0 |] in
  Alcotest.check tt "permuted" (T.logand (T.var n 1) (T.lognot (T.var n 0))) g;
  (* applying the 3-cycle three times is the identity *)
  let h = T.permute (T.permute g [| 1; 2; 0 |]) [| 1; 2; 0 |] in
  Alcotest.check tt "3-cycle identity" f h

let tt_permute_identity () =
  let n = 4 in
  let f = T.logxor (T.var n 0) (T.logand (T.var n 1) (T.var n 3)) in
  Alcotest.check tt "id perm" f (T.permute f [| 0; 1; 2; 3 |])

let tt_flip_input () =
  let n = 2 in
  let xor = T.logxor (T.var n 0) (T.var n 1) in
  Alcotest.check tt "flip gives xnor" (T.lognot xor) (T.flip_input xor 0)

let tt_int64_roundtrip () =
  let f = T.of_int64 4 0x6996L in
  Alcotest.(check int64) "roundtrip" 0x6996L (T.to_int64 f);
  let parity =
    List.fold_left (fun acc i -> T.logxor acc (T.var 4 i)) (T.const 4 false) [ 0; 1; 2; 3 ]
  in
  Alcotest.check tt "0x6996 is parity4" parity f

let qcheck_tt_gen n =
  QCheck.Gen.(
    map (fun bits -> T.of_bits n (Array.of_list bits)) (list_size (return (1 lsl n)) bool))

let isop_covers_exactly n =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "isop covers exactly (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f -> T.equal f (T.of_cubes n (T.isop f)))

let isop_irredundant n =
  QCheck.Test.make ~count:50
    ~name:(Printf.sprintf "isop irredundant (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f ->
      let cubes = T.isop f in
      List.for_all
        (fun c ->
          let rest = List.filter (fun c' -> c' <> c) cubes in
          not (T.equal f (T.of_cubes n rest)))
        cubes)

(* ------------------------------------------------------------------ *)
(* Expr *)

let expr_smart_constructors () =
  Alcotest.(check bool) "and [] = 1" true (E.and_ [] = E.Const true);
  Alcotest.(check bool) "or [] = 0" true (E.or_ [] = E.Const false);
  Alcotest.(check bool) "not not x" true (E.not_ (E.not_ (E.var 3)) = E.var 3);
  Alcotest.(check bool) "and with 0" true (E.and_ [ E.var 0; E.const false ] = E.Const false);
  Alcotest.(check bool) "xor with 1 flips" true
    (E.xor [ E.var 0; E.const true ] = E.Not (E.Var 0))

let expr_eval_tt () =
  let e = E.or_ [ E.and_ [ E.var 0; E.var 1 ]; E.xor [ E.var 1; E.var 2 ] ] in
  let f = E.to_tt 3 e in
  for m = 0 to 7 do
    let env i = (m lsr i) land 1 = 1 in
    Alcotest.(check bool) "agree" (E.eval env e) (T.eval f m)
  done

let factor_preserves_function n =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "factor preserves function (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f -> T.equal f (E.to_tt n (E.factor (T.isop f))))

let factor_tt_preserves n =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "factor_tt preserves function (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f -> T.equal f (E.to_tt n (E.factor_tt f)))

let factor_tt_finds_xor () =
  let n = 3 in
  let parity =
    List.fold_left (fun acc i -> T.logxor acc (T.var n i)) (T.const n false) [ 0; 1; 2 ]
  in
  match E.factor_tt parity with
  | E.Xor [ E.Var 0; E.Var 1; E.Var 2 ] -> ()
  | e -> Alcotest.failf "expected Xor node, got %a" E.pp e

let expr_size_depth () =
  let e = E.and_ [ E.var 0; E.var 1; E.var 2; E.var 3 ] in
  Alcotest.(check int) "size of and4" 3 (E.size e);
  Alcotest.(check int) "depth of and4" 2 (E.depth e)

(* ------------------------------------------------------------------ *)
(* Bdd *)

module Bdd = Logic.Bdd

let bdd_basics () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check bool) "x & !x = 0" true
    (Bdd.equal (Bdd.and_ m x (Bdd.not_ m x)) (Bdd.zero m));
  Alcotest.(check bool) "x + !x = 1" true
    (Bdd.equal (Bdd.or_ m x (Bdd.not_ m x)) (Bdd.one m));
  Alcotest.(check bool) "xor self" true (Bdd.equal (Bdd.xor m x x) (Bdd.zero m));
  Alcotest.(check bool) "commutativity" true
    (Bdd.equal (Bdd.and_ m x y) (Bdd.and_ m y x));
  Alcotest.(check bool) "de morgan" true
    (Bdd.equal
       (Bdd.not_ m (Bdd.and_ m x y))
       (Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m y)))

let bdd_hash_consing_canonical () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  (* (x&y)|(x&z) == x&(y|z): physically equal after reduction *)
  let a = Bdd.or_ m (Bdd.and_ m x y) (Bdd.and_ m x z) in
  let b = Bdd.and_ m x (Bdd.or_ m y z) in
  Alcotest.(check bool) "distribution canonical" true (Bdd.equal a b)

let bdd_matches_tt n =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "bdd of_tt eval matches tt (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f ->
      let m = Bdd.manager () in
      let b = Bdd.of_tt m f in
      let ok = ref true in
      for v = 0 to (1 lsl n) - 1 do
        let env i = (v lsr i) land 1 = 1 in
        if Bdd.eval b env <> T.eval f v then ok := false
      done;
      !ok)

let bdd_sat_count_matches n =
  QCheck.Test.make ~count:100
    ~name:(Printf.sprintf "bdd sat_count = count_ones (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f ->
      let m = Bdd.manager () in
      let b = Bdd.of_tt m f in
      abs_float (Bdd.sat_count b ~nvars:n -. float_of_int (T.count_ones f)) < 0.5)

let bdd_of_expr_matches n =
  QCheck.Test.make ~count:100
    ~name:(Printf.sprintf "bdd of_expr = of_tt (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f ->
      let m = Bdd.manager () in
      Bdd.equal (Bdd.of_expr m (E.factor_tt f)) (Bdd.of_tt m f))

let bdd_parity_linear_size () =
  (* Parity has a linear-size BDD: 2n-1 decision nodes. *)
  let m = Bdd.manager () in
  let n = 16 in
  let parity =
    List.fold_left (fun acc i -> Bdd.xor m acc (Bdd.var m i)) (Bdd.zero m)
      (List.init n (fun i -> i))
  in
  Alcotest.(check int) "2n-1 nodes" ((2 * n) - 1) (Bdd.size parity)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "logic"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick prng_deterministic;
          Alcotest.test_case "bounds" `Quick prng_bounds;
          Alcotest.test_case "float range" `Quick prng_float_range;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "get/set/popcount" `Quick bitvec_get_set;
          Alcotest.test_case "lognot respects length" `Quick bitvec_lognot_respects_length;
          Alcotest.test_case "xor bitwise" `Quick bitvec_ops;
          Alcotest.test_case "transitions small" `Quick bitvec_transitions_small;
          Alcotest.test_case "transitions word boundary" `Quick bitvec_transitions_word_boundary;
          Alcotest.test_case "transitions naive equiv" `Quick bitvec_transitions_matches_naive;
        ] );
      ( "truthtable",
        [
          Alcotest.test_case "vars small" `Quick tt_vars_small;
          Alcotest.test_case "vars large" `Quick tt_vars_large;
          Alcotest.test_case "cofactor" `Quick tt_cofactor;
          Alcotest.test_case "cofactor high var" `Quick tt_cofactor_high_var;
          Alcotest.test_case "support" `Quick tt_support;
          Alcotest.test_case "shrink/expand" `Quick tt_shrink_expand;
          Alcotest.test_case "permute 3-cycle" `Quick tt_permute;
          Alcotest.test_case "permute identity" `Quick tt_permute_identity;
          Alcotest.test_case "flip input" `Quick tt_flip_input;
          Alcotest.test_case "int64 roundtrip / parity" `Quick tt_int64_roundtrip;
        ] );
      ( "isop",
        qt
          [
            isop_covers_exactly 3;
            isop_covers_exactly 5;
            isop_covers_exactly 8;
            isop_irredundant 4;
          ] );
      ( "bdd",
        Alcotest.
          [
            test_case "basics" `Quick bdd_basics;
            test_case "hash consing canonical" `Quick bdd_hash_consing_canonical;
            test_case "parity linear size" `Quick bdd_parity_linear_size;
          ]
        @ qt [ bdd_matches_tt 5; bdd_sat_count_matches 6; bdd_of_expr_matches 5 ] );
      ( "expr",
        Alcotest.
          [
            test_case "smart constructors" `Quick expr_smart_constructors;
            test_case "eval matches tt" `Quick expr_eval_tt;
            test_case "factor_tt finds xor" `Quick factor_tt_finds_xor;
            test_case "size/depth" `Quick expr_size_depth;
          ]
        @ qt [ factor_preserves_function 4; factor_preserves_function 6; factor_tt_preserves 5 ]
      );
    ]
