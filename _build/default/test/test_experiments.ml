module E = Experiments

let libchar_claims () =
  let r = E.Exp_libchar.run () in
  Alcotest.(check bool) "saving in paper band" true
    (r.E.Exp_libchar.saving_vs_cmos > 0.2 && r.E.Exp_libchar.saving_vs_cmos < 0.45);
  Alcotest.(check (float 1e-9)) "nand alpha" 0.25 r.E.Exp_libchar.alpha_nand2;
  Alcotest.(check (float 1e-9)) "xor alpha" 0.5 r.E.Exp_libchar.alpha_xor2;
  Alcotest.(check bool) "PG/PS cmos ~ 10%" true
    (r.E.Exp_libchar.pg_over_ps_cmos > 0.05 && r.E.Exp_libchar.pg_over_ps_cmos < 0.2);
  Alcotest.(check bool) "PG/PS cntfet < 1%" true (r.E.Exp_libchar.pg_over_ps_cntfet < 0.01);
  Alcotest.(check (float 1e-21)) "36aF" 36e-18 r.E.Exp_libchar.inv_cap_cntfet;
  Alcotest.(check (float 1e-21)) "52aF" 52e-18 r.E.Exp_libchar.inv_cap_cmos

let pattern_claims () =
  let r = E.Exp_patterns.run () in
  Alcotest.(check int) "26 patterns" 26 (List.length r.E.Exp_patterns.patterns);
  Alcotest.(check bool) "nor3 parallel > 3x series" true
    (r.E.Exp_patterns.nor3_parallel > 3.0 *. r.E.Exp_patterns.nor3_series);
  Alcotest.(check bool) "classification saves simulations" true
    (r.E.Exp_patterns.dc_solves * 5 < r.E.Exp_patterns.total_vectors)

let tgate_claims () =
  let configs = E.Exp_tgate.run () in
  Alcotest.(check int) "8 configs" 8 (List.length configs);
  List.iter
    (fun (c : E.Exp_tgate.config) ->
      if c.E.Exp_tgate.passing then
        Alcotest.(check bool) "full swing" true
          (abs_float (c.E.Exp_tgate.vout -. c.E.Exp_tgate.vin) < 0.05))
    configs

let table1_small_subset () =
  (* A reduced Table-1 run on the two cheapest rows keeps CI fast while
     exercising the whole E1 pipeline including verification. *)
  let circuits =
    [ Circuits.Suite.find "C1908"; Circuits.Suite.find "C1355" ]
  in
  let s = E.Exp_table1.run ~patterns:16384 ~circuits () in
  Alcotest.(check int) "two rows" 2 (List.length s.E.Exp_table1.rows);
  let gen = List.assoc "cntfet-generalized" s.E.Exp_table1.averages in
  let cmos = List.assoc "cmos" s.E.Exp_table1.averages in
  let module R = Techmap.Estimate in
  Alcotest.(check bool) "fewer gates" true (gen.R.gates < cmos.R.gates);
  Alcotest.(check bool) "faster" true (gen.R.delay < cmos.R.delay /. 4.0);
  Alcotest.(check bool) "less power" true (gen.R.total < cmos.R.total);
  Alcotest.(check bool) "EDP much lower" true (gen.R.edp *. 5.0 < cmos.R.edp);
  (* ECC rows are the generalized library's best case. *)
  let improvements = List.assoc "cntfet-generalized" s.E.Exp_table1.improvement_vs_cmos in
  Alcotest.(check bool) "EDP ratio > 10x on ECC" true (List.assoc "edp" improvements > 10.0)

let ablation_a5 () =
  (* Removing the XOR cells from the generalized library must cost gates on
     the multiplier (the expressive-power effect in isolation). *)
  let results = E.Ablations.a5_no_xor_cells ~circuit:"C1355" () in
  let full = List.assoc "full generalized" results in
  let reduced = List.assoc "XOR cells removed" results in
  Alcotest.(check bool) "xor cells matter" true
    (full.E.Ablations.gates < reduced.E.Ablations.gates)

let ablation_a3 () =
  let results = E.Ablations.a3_script ~circuit:"C1355" () in
  let raw = List.assoc "raw AIG" results in
  let opt = List.assoc "resyn2rs" results in
  Alcotest.(check bool) "resyn2rs does not hurt area" true
    (opt.E.Ablations.area <= raw.E.Ablations.area *. 1.1)

let seq_claims () =
  let rows = E.Exp_seq.run ~data_width:4 ~cycles:500 () in
  let find name = List.find (fun r -> r.E.Exp_seq.library = name) rows in
  let gen = (find "cntfet-generalized").E.Exp_seq.report in
  let cmos = (find "cmos").E.Exp_seq.report in
  Alcotest.(check bool) "fewer gates" true (gen.Techmap.Seqmap.gates < cmos.Techmap.Seqmap.gates);
  Alcotest.(check bool) "lower epc" true (gen.Techmap.Seqmap.epc < cmos.Techmap.Seqmap.epc);
  Alcotest.(check bool) "lower clock power (no clk' rail + smaller caps)" true
    (gen.Techmap.Seqmap.clock_power < cmos.Techmap.Seqmap.clock_power)

let sensitivity_claims () =
  let r = E.Exp_sensitivity.run ~mc_samples:500 () in
  (* E13: power grows and delay shrinks with supply, monotonically. *)
  let rec monotone f = function
    | a :: (b :: _ as rest) -> f a b && monotone f rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "power up with vdd" true
    (monotone
       (fun a b ->
         a.E.Exp_sensitivity.avg_gate_power_cnt < b.E.Exp_sensitivity.avg_gate_power_cnt)
       r.E.Exp_sensitivity.vdd_sweep);
  Alcotest.(check bool) "delay down with vdd" true
    (monotone
       (fun a b -> a.E.Exp_sensitivity.inv_delay_cnt > b.E.Exp_sensitivity.inv_delay_cnt)
       r.E.Exp_sensitivity.vdd_sweep);
  (* E14: leakage grows with temperature; CNTFET stays below CMOS. *)
  Alcotest.(check bool) "ioff up with T" true
    (monotone
       (fun a b -> a.E.Exp_sensitivity.ioff_cnt < b.E.Exp_sensitivity.ioff_cnt)
       r.E.Exp_sensitivity.temp_sweep);
  List.iter
    (fun p ->
      Alcotest.(check bool) "cnt < cmos at every T" true
        (p.E.Exp_sensitivity.ioff_cnt < p.E.Exp_sensitivity.ioff_cmos))
    r.E.Exp_sensitivity.temp_sweep;
  (* E15: exponential sensitivity skews the mean above nominal. *)
  Alcotest.(check bool) "mean > nominal (cnt)" true
    (r.E.Exp_sensitivity.mc_cnt.E.Exp_sensitivity.mean
    > r.E.Exp_sensitivity.mc_cnt.E.Exp_sensitivity.nominal);
  Alcotest.(check bool) "p95 > mean" true
    (r.E.Exp_sensitivity.mc_cnt.E.Exp_sensitivity.p95
    > r.E.Exp_sensitivity.mc_cnt.E.Exp_sensitivity.mean)

let dynamic_and_pla_claims () =
  let d = E.Exp_dynamic.run () in
  Alcotest.(check bool) ">= 8 functions" true (d.E.Exp_dynamic.reconf_functions >= 8);
  Alcotest.(check bool) "<= 7 transistors" true (d.E.Exp_dynamic.reconf_transistors <= 7);
  Alcotest.(check bool) "dynamic alpha above static" true
    (d.E.Exp_dynamic.gnor2_dynamic_alpha > d.E.Exp_dynamic.static_gnor2_alpha);
  let rows = E.Exp_pla.run () in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.E.Exp_pla.name ^ " ambipolar PLA smaller")
        true
        (r.E.Exp_pla.ambipolar_transistors < r.E.Exp_pla.cmos_transistors))
    rows

let delay_claim () =
  let r = E.Exp_delay.run () in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f in [4, 6.5]" r.E.Exp_delay.ratio)
    true
    (r.E.Exp_delay.ratio > 4.0 && r.E.Exp_delay.ratio < 6.5)

let report_rendering () =
  let t =
    {
      E.Report.title = "t";
      headers = [| "A"; "B" |];
      rows = [ [| "aa"; "1" |]; [| "b"; "22" |] ];
    }
  in
  let s = Format.asprintf "%a" E.Report.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0
    &&
    let rec has i =
      i + 2 <= String.length s && (String.sub s i 2 = "aa" || has (i + 1))
    in
    has 0);
  Alcotest.(check string) "pct" "28.1%" (E.Report.pct 0.281);
  Alcotest.(check string) "times" "7.2x" (E.Report.times 7.16)

let () =
  Alcotest.run "experiments"
    [
      ( "claims",
        [
          Alcotest.test_case "E2/E4/E5/E6 libchar" `Slow libchar_claims;
          Alcotest.test_case "E3/E8 patterns" `Quick pattern_claims;
          Alcotest.test_case "E7 tgate" `Quick tgate_claims;
          Alcotest.test_case "E1 table1 subset" `Slow table1_small_subset;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "E12 seq" `Slow seq_claims;
          Alcotest.test_case "E13-E15 sensitivity" `Slow sensitivity_claims;
          Alcotest.test_case "E10/E11 dynamic+pla" `Slow dynamic_and_pla_claims;
          Alcotest.test_case "E9 delay ratio" `Slow delay_claim;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "A5 xor cells" `Slow ablation_a5;
          Alcotest.test_case "A3 script" `Slow ablation_a3;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick report_rendering ]);
    ]
