module C = Spice.Circuit
module D = Spice.Device
module T = Spice.Tech

let feq ?(eps = 1e-6) msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6g ~ %.6g" msg a b)
    true
    (abs_float (a -. b) <= eps *. (abs_float a +. abs_float b +. 1e-30))

let resistor_divider () =
  let c = C.create () in
  let vdd = C.node c "vdd" and mid = C.node c "mid" in
  C.add_vsource c vdd 0.9;
  C.add_resistor c vdd mid 1000.0;
  C.add_resistor c mid C.ground 1000.0;
  let sol = C.solve c in
  feq "midpoint" 0.45 (C.node_voltage sol mid);
  feq "source current" (0.9 /. 2000.0) (C.source_current c sol vdd)

let nmos_on_pulls_down () =
  let c = C.create () in
  let vdd = C.node c "vdd" and out = C.node c "out" and g = C.node c "g" in
  C.add_vsource c vdd 0.9;
  C.add_vsource c g 0.9;
  C.add_resistor c vdd out 1.0e6;
  C.add_transistor c (D.Nmos T.cmos) ~d:out ~g ~s:C.ground ();
  let sol = C.solve c in
  Alcotest.(check bool) "output pulled low" true (C.node_voltage sol out < 0.1)

let nmos_off_leaks_little () =
  let c = C.create () in
  let vdd = C.node c "vdd" and g = C.node c "g" in
  C.add_vsource c vdd 0.9;
  C.add_vsource c g 0.0;
  C.add_transistor c (D.Nmos T.cmos) ~d:vdd ~g ~s:C.ground ();
  let sol = C.solve c in
  let ioff = C.source_current c sol vdd in
  (* By calibration the unit off-current is tech.ioff_unit. *)
  feq ~eps:0.02 "unit ioff" T.cmos.T.ioff_unit ioff

let parallel_off_triples_leakage () =
  (* Fig. 4(a): three parallel off transistors leak ~3x a single one. *)
  let leak k =
    let c = C.create () in
    let vdd = C.node c "vdd" and g = C.node c "g" in
    C.add_vsource c vdd 0.9;
    C.add_vsource c g 0.0;
    for _ = 1 to k do
      C.add_transistor c (D.Nmos T.cmos) ~d:vdd ~g ~s:C.ground ()
    done;
    let sol = C.solve c in
    C.source_current c sol vdd
  in
  let one = leak 1 and three = leak 3 in
  feq ~eps:0.02 "3x" (3.0 *. one) three

let series_off_leaks_less () =
  (* Fig. 4(b): a series stack of three off transistors leaks less than a
     single off transistor. *)
  let c = C.create () in
  let vdd = C.node c "vdd" and g = C.node c "g" in
  let n1 = C.node c "n1" and n2 = C.node c "n2" in
  C.add_vsource c vdd 0.9;
  C.add_vsource c g 0.0;
  C.add_transistor c (D.Nmos T.cmos) ~d:vdd ~g ~s:n1 ();
  C.add_transistor c (D.Nmos T.cmos) ~d:n1 ~g ~s:n2 ();
  C.add_transistor c (D.Nmos T.cmos) ~d:n2 ~g ~s:C.ground ();
  let sol = C.solve c in
  let stack = C.source_current c sol vdd in
  Alcotest.(check bool)
    (Printf.sprintf "stack %.3g < unit %.3g" stack T.cmos.T.ioff_unit)
    true
    (stack < T.cmos.T.ioff_unit && stack > 0.0)

let pmos_symmetry () =
  (* An off PMOS (gate at VDD, source at VDD, drain at 0) should show the
     same unit leakage as the off NMOS by construction. *)
  let c = C.create () in
  let vdd = C.node c "vdd" and g = C.node c "g" in
  C.add_vsource c vdd 0.9;
  C.add_vsource c g 0.9;
  C.add_transistor c (D.Pmos T.cmos) ~d:C.ground ~g ~s:vdd ();
  let sol = C.solve c in
  let ioff = C.source_current c sol vdd in
  feq ~eps:0.02 "pmos unit ioff" T.cmos.T.ioff_unit ioff

let cmos_inverter_transfer () =
  let out_for vin =
    let c = C.create () in
    let vdd = C.node c "vdd" and input = C.node c "in" and out = C.node c "out" in
    C.add_vsource c vdd 0.9;
    C.add_vsource c input vin;
    C.add_transistor c (D.Pmos T.cmos) ~d:out ~g:input ~s:vdd ();
    C.add_transistor c (D.Nmos T.cmos) ~d:out ~g:input ~s:C.ground ();
    let sol = C.solve c in
    C.node_voltage sol out
  in
  Alcotest.(check bool) "inverts 0" true (out_for 0.0 > 0.85);
  Alcotest.(check bool) "inverts 1" true (out_for 0.9 < 0.05)

let ambipolar_polarity_control () =
  (* PG = 0 -> n-type: conducts with gate high. PG = VDD -> p-type: conducts
     with gate low. (Fig. 1 of the paper.) The n-configured device is used
     as a pull-down against a resistive pull-up; the p-configured device as
     a pull-up against a resistive pull-down — each in its "good
     transmission" role. *)
  let pulldown_out ~vpg ~vg =
    let c = C.create () in
    let vdd = C.node c "vdd" and out = C.node c "out" in
    let g = C.node c "g" and pg = C.node c "pg" in
    C.add_vsource c vdd 0.9;
    C.add_vsource c g vg;
    C.add_vsource c pg vpg;
    C.add_resistor c vdd out 1.0e6;
    C.add_transistor c (D.Ambipolar T.cntfet) ~d:out ~g ~s:C.ground ~pg ();
    let sol = C.solve c in
    C.node_voltage sol out
  in
  let pullup_out ~vpg ~vg =
    let c = C.create () in
    let vdd = C.node c "vdd" and out = C.node c "out" in
    let g = C.node c "g" and pg = C.node c "pg" in
    C.add_vsource c vdd 0.9;
    C.add_vsource c g vg;
    C.add_vsource c pg vpg;
    C.add_resistor c out C.ground 1.0e6;
    C.add_transistor c (D.Ambipolar T.cntfet) ~d:out ~g ~s:vdd ~pg ();
    let sol = C.solve c in
    C.node_voltage sol out
  in
  Alcotest.(check bool) "n-type on" true (pulldown_out ~vpg:0.0 ~vg:0.9 < 0.1);
  Alcotest.(check bool) "n-type off" true (pulldown_out ~vpg:0.0 ~vg:0.0 > 0.8);
  Alcotest.(check bool) "p-type on" true (pullup_out ~vpg:0.9 ~vg:0.0 > 0.8);
  Alcotest.(check bool) "p-type off" true (pullup_out ~vpg:0.9 ~vg:0.9 < 0.1)

let transmission_gate_full_swing () =
  (* E7 / Fig. 2: the ambipolar transmission gate passes the input rail
     without degradation whenever A xor B = 1. Drive a strong source
     through the gate into a weak load and check the output. *)
  let pass ~va ~vb ~vin =
    let c = C.create () in
    let src = C.node c "src" and out = C.node c "out" in
    let a = C.node c "a" and na = C.node c "na" in
    let b = C.node c "b" and nb = C.node c "nb" in
    C.add_vsource c src vin;
    C.add_vsource c a va;
    C.add_vsource c na (0.9 -. va);
    C.add_vsource c b vb;
    C.add_vsource c nb (0.9 -. vb);
    (* Device 1: polarity gate A, signal gate B; device 2: complements. *)
    C.add_transistor c (D.Ambipolar T.cntfet) ~d:src ~g:b ~s:out ~pg:a ();
    C.add_transistor c (D.Ambipolar T.cntfet) ~d:src ~g:nb ~s:out ~pg:na ();
    C.add_resistor c out C.ground 1.0e8;
    let sol = C.solve c in
    C.node_voltage sol out
  in
  (* Passing configurations: A xor B = 1. *)
  Alcotest.(check bool) "A=1,B=0 passes 1" true (pass ~va:0.9 ~vb:0.0 ~vin:0.9 > 0.85);
  Alcotest.(check bool) "A=0,B=1 passes 1" true (pass ~va:0.0 ~vb:0.9 ~vin:0.9 > 0.85);
  Alcotest.(check bool) "A=1,B=0 passes 0" true (pass ~va:0.9 ~vb:0.0 ~vin:0.0 < 0.05);
  (* Blocking configurations: A xor B = 0 -> output floats to the weak
     pulldown. *)
  Alcotest.(check bool) "A=B=0 blocks" true (pass ~va:0.0 ~vb:0.0 ~vin:0.9 < 0.2);
  Alcotest.(check bool) "A=B=1 blocks" true (pass ~va:0.9 ~vb:0.9 ~vin:0.9 < 0.2)

let cntfet_leaks_less_than_cmos () =
  let leak tech =
    let c = C.create () in
    let vdd = C.node c "vdd" and g = C.node c "g" in
    C.add_vsource c vdd 0.9;
    C.add_vsource c g 0.0;
    C.add_transistor c (D.Nmos tech) ~d:vdd ~g ~s:C.ground ();
    let sol = C.solve c in
    C.source_current c sol vdd
  in
  let ratio = leak T.cmos /. leak T.cntfet in
  Alcotest.(check bool)
    (Printf.sprintf "cmos/cnt leakage ratio %.1f ~ 1 order of magnitude" ratio)
    true
    (ratio > 8.0 && ratio < 30.0)

(* ------------------------------------------------------------------ *)
(* Transient *)

let step_stimulus_shape () =
  let s = Spice.Transient.step ~t0:1e-12 ~rise:2e-12 ~low:0.0 ~high:0.9 () in
  feq "before" 0.0 (s 0.0);
  feq "midpoint" 0.45 (s 2e-12);
  feq "after" 0.9 (s 5e-12)

let crossing_detection () =
  let w =
    {
      Spice.Transient.times = [| 0.0; 1.0; 2.0; 3.0 |];
      voltages = [| 0.0; 0.2; 0.6; 0.9 |];
    }
  in
  (match Spice.Transient.crossing_time w 0.4 `Rising with
  | Some t -> feq "interpolated" 1.5 t
  | None -> Alcotest.fail "expected crossing");
  Alcotest.(check bool) "no falling crossing" true
    (Spice.Transient.crossing_time w 0.4 `Falling = None)

let rc_discharge_timeconstant () =
  (* A capacitor through a resistor to ground discharges with tau = RC. *)
  let c = C.create () in
  let top = C.node c "top" in
  let src = C.node c "src" in
  let r = 1.0e5 and cap = 1.0e-15 in
  (* src --R--> top(C): stepping src down discharges the cap with tau = RC. *)
  C.add_resistor c src top r;
  let stim = Spice.Transient.step ~t0:5.0e-12 ~rise:0.1e-12 ~low:0.9 ~high:0.0 () in
  let waves =
    Spice.Transient.simulate c ~caps:[ (top, cap) ] ~drives:[ (src, stim) ]
      ~tstop:600.0e-12 ~samples:2000 [ top ]
  in
  let w = List.assoc top waves in
  (* After one time constant (RC = 100 ps) past the edge the voltage should
     be ~0.9/e = 0.331. *)
  let expected_t = 5.0e-12 +. (r *. cap) in
  match Spice.Transient.crossing_time w (0.9 /. 2.718281828) `Falling with
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "tau: got %.1f ps, expected %.1f ps" (t *. 1e12) (expected_t *. 1e12))
        true
        (abs_float (t -. expected_t) < 0.1 *. expected_t)
  | None -> Alcotest.fail "no crossing"

let inverter_delays_match_tau () =
  let d_cmos = Spice.Transient.inverter_delay T.cmos in
  let d_cnt = Spice.Transient.inverter_delay T.cntfet in
  Alcotest.(check bool)
    (Printf.sprintf "cmos %.2f ps ~ tau %.2f ps" (d_cmos *. 1e12) (T.cmos.T.tau *. 1e12))
    true
    (abs_float (d_cmos -. T.cmos.T.tau) < 0.25 *. T.cmos.T.tau);
  Alcotest.(check bool)
    (Printf.sprintf "cnt %.2f ps ~ tau %.2f ps" (d_cnt *. 1e12) (T.cntfet.T.tau *. 1e12))
    true
    (abs_float (d_cnt -. T.cntfet.T.tau) < 0.25 *. T.cntfet.T.tau);
  let ratio = d_cmos /. d_cnt in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f ~ 5x" ratio)
    true
    (ratio > 4.0 && ratio < 6.5)

let () =
  Alcotest.run "spice"
    [
      ( "dcsolve",
        [
          Alcotest.test_case "resistor divider" `Quick resistor_divider;
          Alcotest.test_case "nmos on pulls down" `Quick nmos_on_pulls_down;
          Alcotest.test_case "nmos off unit leakage" `Quick nmos_off_leaks_little;
          Alcotest.test_case "parallel off = 3x" `Quick parallel_off_triples_leakage;
          Alcotest.test_case "series off < 1x" `Quick series_off_leaks_less;
          Alcotest.test_case "pmos symmetry" `Quick pmos_symmetry;
          Alcotest.test_case "cmos inverter transfer" `Quick cmos_inverter_transfer;
        ] );
      ( "transient",
        [
          Alcotest.test_case "step stimulus" `Quick step_stimulus_shape;
          Alcotest.test_case "crossing detection" `Quick crossing_detection;
          Alcotest.test_case "rc time constant" `Quick rc_discharge_timeconstant;
          Alcotest.test_case "inverter delay ~ tau, ratio ~ 5x" `Slow inverter_delays_match_tau;
        ] );
      ( "ambipolar",
        [
          Alcotest.test_case "polarity control" `Quick ambipolar_polarity_control;
          Alcotest.test_case "transmission gate full swing" `Quick transmission_gate_full_swing;
          Alcotest.test_case "cntfet leaks less" `Quick cntfet_leaks_less_than_cmos;
        ] );
    ]
