module A = Aigs.Aig
module Opt = Aigs.Opt
module Cut = Aigs.Cut
module T = Logic.Truthtable
module N = Nets.Netlist

let tt = Alcotest.testable T.pp T.equal

(* Function of every output in terms of all primary inputs (n <= 16). *)
let output_functions aig =
  let leaves = A.input_lits aig in
  Array.map
    (fun (name, lit) ->
      let base = A.cone_tt aig (A.node_of_lit lit) leaves in
      (name, if A.is_complemented lit then T.lognot base else base))
    (A.outputs aig)

let check_equiv msg a b =
  let fa = output_functions a and fb = output_functions b in
  Alcotest.(check int) (msg ^ ": same output count") (Array.length fa) (Array.length fb);
  Array.iteri
    (fun i (name, f) ->
      let name', f' = fb.(i) in
      Alcotest.(check string) (msg ^ ": output name") name name';
      Alcotest.check tt (msg ^ ": output " ^ name) f f')
    fa

(* Random AIG generator. *)
let random_aig rng ~inputs ~ands ~outs =
  let aig = A.create () in
  let lits = ref [] in
  for i = 1 to inputs do
    lits := A.add_input aig (Printf.sprintf "i%d" i) :: !lits
  done;
  let pick () =
    let all = Array.of_list !lits in
    let l = all.(Logic.Prng.int rng (Array.length all)) in
    if Logic.Prng.bool rng then A.lit_not l else l
  in
  for _ = 1 to ands do
    lits := A.mk_and aig (pick ()) (pick ()) :: !lits
  done;
  for o = 1 to outs do
    A.add_output aig (Printf.sprintf "o%d" o) (pick ())
  done;
  aig

(* ------------------------------------------------------------------ *)

let strash_dedupes () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  let x = A.mk_and aig a b and y = A.mk_and aig b a in
  Alcotest.(check int) "same literal" x y;
  Alcotest.(check int) "one and node" 1 (A.num_ands aig)

let constant_folding () =
  let aig = A.create () in
  let a = A.add_input aig "a" in
  Alcotest.(check int) "a & 0" A.const_false (A.mk_and aig a A.const_false);
  Alcotest.(check int) "a & 1" a (A.mk_and aig a A.const_true);
  Alcotest.(check int) "a & a" a (A.mk_and aig a a);
  Alcotest.(check int) "a & !a" A.const_false (A.mk_and aig a (A.lit_not a));
  Alcotest.(check int) "no nodes created" 0 (A.num_ands aig)

let xor_function () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  let x = A.mk_xor aig a b in
  A.add_output aig "x" x;
  let fns = output_functions aig in
  let _, f = fns.(0) in
  Alcotest.check tt "xor" (T.logxor (T.var 2 0) (T.var 2 1)) f

let mux_function () =
  let aig = A.create () in
  let s = A.add_input aig "s" in
  let a = A.add_input aig "a" in
  let b = A.add_input aig "b" in
  A.add_output aig "m" (A.mk_mux aig s a b);
  let _, f = (output_functions aig).(0) in
  let expected =
    T.logor
      (T.logand (T.lognot (T.var 3 0)) (T.var 3 1))
      (T.logand (T.var 3 0) (T.var 3 2))
  in
  Alcotest.check tt "mux" expected f

let rollback_works () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  let _x = A.mk_and aig a b in
  let ck = A.checkpoint aig in
  let _y = A.mk_and aig a (A.lit_not b) in
  let _z = A.mk_and aig (A.lit_not a) b in
  A.rollback aig ck;
  Alcotest.(check int) "back to one and" 1 (A.num_ands aig);
  (* The rolled-back structure can be rebuilt. *)
  let y2 = A.mk_and aig a (A.lit_not b) in
  Alcotest.(check bool) "fresh node" true (A.node_of_lit y2 >= A.num_inputs aig + 1)

let netlist_roundtrip () =
  let nl = N.create () in
  let a = N.add_input nl "a" in
  let b = N.add_input nl "b" in
  let c = N.add_input nl "c" in
  let x = N.add_node nl N.Xor [| a; b |] in
  let m = N.add_node nl N.Maj [| a; b; c |] in
  N.add_output nl "sum" (N.add_node nl N.Xor [| x; c |]);
  N.add_output nl "carry" m;
  let aig = A.of_netlist nl in
  let nl2 = A.to_netlist aig in
  (* exhaustive comparison *)
  for m = 0 to 7 do
    let ins = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
    Alcotest.(check (array bool))
      (Printf.sprintf "pattern %d" m)
      (N.eval nl ins) (N.eval nl2 ins)
  done

let cleanup_removes_dead () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  let x = A.mk_and aig a b in
  let _dead = A.mk_and aig a (A.lit_not b) in
  A.add_output aig "x" x;
  let clean = A.cleanup aig in
  Alcotest.(check int) "dead removed" 1 (A.num_ands clean);
  check_equiv "cleanup" aig clean

let full_adder_aig () =
  let aig = A.create () in
  let a = A.add_input aig "a" in
  let b = A.add_input aig "b" in
  let c = A.add_input aig "c" in
  let sum = A.mk_xor aig (A.mk_xor aig a b) c in
  let carry =
    A.mk_or aig (A.mk_and aig a b) (A.mk_or aig (A.mk_and aig a c) (A.mk_and aig b c))
  in
  A.add_output aig "sum" sum;
  A.add_output aig "carry" carry;
  aig

let cut_enumeration_trivial () =
  let aig = full_adder_aig () in
  let cuts = Cut.enumerate aig ~k:4 ~max_cuts:8 in
  for node = 0 to A.num_nodes aig - 1 do
    let has_trivial =
      Array.exists (fun (c : Cut.cut) -> c.leaves = [| node |]) cuts.(node)
    in
    Alcotest.(check bool) (Printf.sprintf "trivial cut of %d" node) true has_trivial
  done

let cut_tt_full_adder () =
  let aig = full_adder_aig () in
  let _, sum_lit = (A.outputs aig).(0) in
  let node = A.node_of_lit sum_lit in
  let cuts = Cut.enumerate aig ~k:3 ~max_cuts:16 in
  let input_cut =
    Array.to_list cuts.(node)
    |> List.find_opt (fun (c : Cut.cut) -> c.leaves = [| 1; 2; 3 |])
  in
  match input_cut with
  | None -> Alcotest.fail "expected the PI cut {a,b,c}"
  | Some cut ->
      let f = Cut.cut_tt aig node cut in
      let f = if A.is_complemented sum_lit then T.lognot f else f in
      let parity =
        List.fold_left (fun acc i -> T.logxor acc (T.var 3 i)) (T.const 3 false) [ 0; 1; 2 ]
      in
      Alcotest.check tt "sum is parity" parity f

let pass_preserves name pass =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 1)) in
      let aig = random_aig rng ~inputs:6 ~ands:40 ~outs:4 in
      let opt = pass aig in
      let fa = output_functions aig and fb = output_functions opt in
      Array.for_all2 (fun (_, f) (_, g) -> T.equal f g) fa fb)

let balance_not_deeper () =
  let rng = Logic.Prng.create 5L in
  for _ = 1 to 20 do
    let aig = random_aig rng ~inputs:6 ~ands:60 ~outs:3 in
    let bal = Opt.balance aig in
    Alcotest.(check bool)
      (Printf.sprintf "depth %d <= %d" (A.depth bal) (A.depth aig))
      true
      (A.depth bal <= A.depth aig)
  done

let balance_chain_depth () =
  (* A linear AND chain of 8 operands must balance to depth 3. *)
  let aig = A.create () in
  let ins = Array.init 8 (fun i -> A.add_input aig (Printf.sprintf "i%d" i)) in
  let chain = Array.fold_left (fun acc l -> A.mk_and aig acc l) A.const_true ins in
  A.add_output aig "o" chain;
  let bal = Opt.balance aig in
  Alcotest.(check int) "balanced depth" 3 (A.depth bal);
  check_equiv "balance chain" aig bal

let rewrite_reduces_redundancy () =
  (* Build a deliberately redundant structure: (a&b)|(a&!b) = a. *)
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  let o = A.mk_or aig (A.mk_and aig a b) (A.mk_and aig a (A.lit_not b)) in
  A.add_output aig "o" o;
  let opt = Opt.rewrite aig in
  check_equiv "rewrite redundancy" aig opt;
  Alcotest.(check int) "reduced to zero ands" 0 (A.num_ands opt)

let resyn_monotone_benefit () =
  let rng = Logic.Prng.create 77L in
  for _ = 1 to 5 do
    let aig = random_aig rng ~inputs:8 ~ands:120 ~outs:6 in
    let aig = A.cleanup aig in
    let opt = Opt.resyn2rs aig in
    check_equiv "resyn2rs" aig opt;
    Alcotest.(check bool)
      (Printf.sprintf "not larger: %d <= %d" (A.num_ands opt) (A.num_ands aig))
      true
      (A.num_ands opt <= A.num_ands aig)
  done

(* ------------------------------------------------------------------ *)
(* Aiger *)

let aiger_roundtrip_fa () =
  let aig = full_adder_aig () in
  let text = Aigs.Aiger.write_string aig in
  let aig2 = Aigs.Aiger.read_string text in
  check_equiv "aiger roundtrip" aig aig2;
  Alcotest.(check int) "same ands" (A.num_ands aig) (A.num_ands aig2);
  Alcotest.(check string) "input names preserved" "a" (A.input_name aig2 1)

let aiger_roundtrip_random =
  QCheck.Test.make ~count:50 ~name:"aiger roundtrip preserves function"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 5)) in
      let aig = A.cleanup (random_aig rng ~inputs:5 ~ands:30 ~outs:3) in
      let aig2 = Aigs.Aiger.read_string (Aigs.Aiger.write_string aig) in
      let fa = output_functions aig and fb = output_functions aig2 in
      Array.for_all2 (fun (_, f) (_, g) -> T.equal f g) fa fb)

let aiger_parse_errors () =
  let bad text =
    try
      ignore (Aigs.Aiger.read_string text);
      false
    with Aigs.Aiger.Parse_error _ -> true
  in
  Alcotest.(check bool) "garbage" true (bad "hello");
  Alcotest.(check bool) "latches" true (bad "aag 1 0 1 0 0\n2 3\n");
  Alcotest.(check bool) "truncated" true (bad "aag 3 1 0 1 1\n2\n")

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "aig"
    [
      ( "core",
        [
          Alcotest.test_case "strash dedupes" `Quick strash_dedupes;
          Alcotest.test_case "constant folding" `Quick constant_folding;
          Alcotest.test_case "xor function" `Quick xor_function;
          Alcotest.test_case "mux function" `Quick mux_function;
          Alcotest.test_case "rollback" `Quick rollback_works;
          Alcotest.test_case "netlist roundtrip" `Quick netlist_roundtrip;
          Alcotest.test_case "cleanup removes dead" `Quick cleanup_removes_dead;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "trivial cut present" `Quick cut_enumeration_trivial;
          Alcotest.test_case "full-adder sum cut tt" `Quick cut_tt_full_adder;
        ] );
      ( "aiger",
        Alcotest.
          [
            test_case "full adder roundtrip" `Quick aiger_roundtrip_fa;
            test_case "parse errors" `Quick aiger_parse_errors;
          ]
        @ qt [ aiger_roundtrip_random ] );
      ( "opt",
        Alcotest.
          [
            test_case "balance chain depth" `Quick balance_chain_depth;
            test_case "balance not deeper" `Quick balance_not_deeper;
            test_case "rewrite removes redundancy" `Quick rewrite_reduces_redundancy;
            test_case "resyn2rs equivalence + benefit" `Slow resyn_monotone_benefit;
          ]
        @ qt
            [
              pass_preserves "balance preserves function" Opt.balance;
              pass_preserves "rewrite preserves function" (fun a -> Opt.rewrite a);
              pass_preserves "refactor preserves function" (fun a -> Opt.refactor a);
              pass_preserves "rewrite -z preserves function" (fun a ->
                  Opt.rewrite ~zero_cost:true a);
            ] );
    ]
