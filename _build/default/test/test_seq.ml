module Seq = Nets.Seq
module N = Nets.Netlist
module B = Logic.Bitvec

(* A 4-bit synchronous counter: state + 1 every cycle. *)
let counter () =
  let t = Seq.create () in
  let q = Array.init 4 (fun i -> Seq.add_register t (Printf.sprintf "c%d" i) ()) in
  let one = N.add_node (Seq.comb t) (N.Constant true) [||] in
  let carry = ref one in
  Array.iteri
    (fun i qi ->
      let sum = N.add_node (Seq.comb t) N.Xor [| qi; !carry |] in
      carry := N.add_node (Seq.comb t) N.And [| qi; !carry |];
      Seq.connect t (Printf.sprintf "c%d" i) sum;
      Seq.add_output t (Printf.sprintf "o%d" i) sum)
    q;
  t

let counter_counts () =
  let t = counter () in
  let state = ref (Array.make 4 false) in
  for expected = 1 to 20 do
    let _, next = Seq.step t ~state:!state ~inputs:[||] in
    state := next;
    let v = ref 0 in
    Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) next;
    Alcotest.(check int) (Printf.sprintf "cycle %d" expected) (expected land 15) !v
  done

let unconnected_register_fails () =
  let t = Seq.create () in
  let _ = Seq.add_register t "r" () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Seq.registers t);
       false
     with Failure _ -> true)

let simulate_matches_step () =
  (* The 64-stream simulator and the single-step reference must agree on
     state probabilities for the free-running counter (each bit of a
     counter has p(1) = 0.5 over time). *)
  let t = counter () in
  let sim = Seq.simulate ~cycles:4096 t in
  let regs = Seq.registers t in
  List.iter
    (fun (_, q, _) ->
      let p = sim.Seq.node_probs.(q) in
      Alcotest.(check bool) (Printf.sprintf "p=%.3f ~ 0.5" p) true (abs_float (p -. 0.5) < 0.05))
    regs;
  (* bit 0 toggles every cycle *)
  let _, q0, _ = List.hd regs in
  Alcotest.(check bool) "bit0 toggles every cycle" true
    (sim.Seq.node_toggles.(q0) > 0.95)

(* ------------------------------------------------------------------ *)
(* CRC *)

let crc_reference_known_value () =
  (* CRC-32 of the single byte 0x00 from init 0xFFFFFFFF, no final xor /
     reflection steps beyond the reflected polynomial itself. *)
  let data = Array.make 8 false in
  let r = Circuits.Crc.reference_step 0xFFFFFFFFl ~data in
  (* Cross-check against an independent table-based computation of the same
     convention: crc := (crc >> 8) ^ table[(crc ^ byte) & 0xff]. *)
  let table_entry byte =
    let c = ref (Int32.of_int byte) in
    for _ = 1 to 8 do
      let lsb = Int32.logand !c 1l <> 0l in
      c := Int32.shift_right_logical !c 1;
      if lsb then c := Int32.logxor !c Circuits.Crc.crc32_polynomial
    done;
    !c
  in
  let expected =
    Int32.logxor (Int32.shift_right_logical 0xFFFFFFFFl 8) (table_entry (0xFF land 0xFF))
  in
  Alcotest.(check int32) "one zero byte" expected r

let crc_circuit_matches_reference () =
  List.iter
    (fun data_width ->
      let seq = Circuits.Crc.generate ~data_width () in
      let rng = Logic.Prng.create 4L in
      let state = ref 0xFFFFFFFFl in
      let circuit_state =
        ref
          (Array.init 32 (fun i ->
               Int32.logand (Int32.shift_right_logical 0xFFFFFFFFl i) 1l <> 0l))
      in
      for cycle = 1 to 30 do
        let data = Array.init data_width (fun _ -> Logic.Prng.bool rng) in
        state := Circuits.Crc.reference_step !state ~data;
        let outs, next = Seq.step seq ~state:!circuit_state ~inputs:data in
        circuit_state := next;
        let got = ref 0l in
        Array.iteri (fun i b -> if b then got := Int32.logor !got (Int32.shift_left 1l i)) next;
        Alcotest.(check int32) (Printf.sprintf "w=%d cycle %d" data_width cycle) !state !got;
        (* outputs expose the next state *)
        Array.iteri
          (fun i b -> Alcotest.(check bool) "output = next state" next.(i) b)
          (Array.sub outs 0 32)
      done)
    [ 1; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Register model + Seqmap *)

let register_model_sane () =
  let amb = Cell.Register.ambipolar_cntfet in
  let cmos = Cell.Register.cmos in
  Alcotest.(check bool) "ambipolar smaller" true
    (amb.Cell.Register.transistors < cmos.Cell.Register.transistors);
  Alcotest.(check (float 0.0)) "no clk' net in ambipolar" 0.0
    amb.Cell.Register.clock_internal_cap;
  Alcotest.(check bool) "cmos clk' net toggles" true
    (cmos.Cell.Register.clock_internal_cap > 0.0);
  Alcotest.(check bool) "leakage ordering" true
    (amb.Cell.Register.leakage < cmos.Cell.Register.leakage)

let seqmap_preserves_function () =
  (* One mapped cycle must equal one reference cycle for random stimulus. *)
  let seq = Circuits.Crc.generate ~data_width:4 () in
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let mapped, reg_nets = Techmap.Seqmap.map_seq ml seq in
  let rng = Logic.Prng.create 6L in
  let regs = Seq.registers seq in
  let state = ref (Array.make (List.length regs) false) in
  for _ = 1 to 20 do
    let inputs = Array.init 4 (fun _ -> Logic.Prng.bool rng) in
    let _, expected_next = Seq.step seq ~state:!state ~inputs in
    (* drive the mapped netlist with the same stimulus *)
    let stimulus =
      Array.map
        (fun (name, _) ->
          let v = B.create 1 in
          let value =
            if String.length name > 2 && String.sub name (String.length name - 2) 2 = ".q"
            then begin
              let reg = String.sub name 0 (String.length name - 2) in
              let rec index i = function
                | [] -> failwith "missing reg"
                | (n, _, _) :: rest -> if n = reg then i else index (i + 1) rest
              in
              !state.(index 0 regs)
            end
            else begin
              let rec pos i = function
                | [] -> failwith "missing input"
                | x :: rest -> if x = name then i else pos (i + 1) rest
              in
              inputs.(pos 0 [ "d0"; "d1"; "d2"; "d3" ])
            end
          in
          B.set v 0 value;
          v)
        mapped.Techmap.Mapped.pi_nets
    in
    let values = Techmap.Mapped.simulate mapped stimulus in
    List.iteri
      (fun ri (_, _, d_net) ->
        Alcotest.(check bool)
          (Printf.sprintf "reg %d next" ri)
          expected_next.(ri)
          (B.get values.(d_net) 0))
      reg_nets;
    state := expected_next
  done

let seqmap_report_sane () =
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let r = Techmap.Seqmap.estimate ~cycles:500 ml (Circuits.Crc.generate ~data_width:4 ()) in
  Alcotest.(check int) "32 registers" 32 r.Techmap.Seqmap.registers;
  Alcotest.(check bool) "positive total" true (r.Techmap.Seqmap.total > 0.0);
  Alcotest.(check bool) "clock power positive" true (r.Techmap.Seqmap.clock_power > 0.0);
  Alcotest.(check bool) "total >= comb" true
    (r.Techmap.Seqmap.total >= r.Techmap.Seqmap.comb_power.Techmap.Estimate.total);
  Alcotest.(check bool) "min period > comb delay" true
    (r.Techmap.Seqmap.min_period > r.Techmap.Seqmap.comb_power.Techmap.Estimate.delay)

let seq_generalized_beats_cmos () =
  let run lib =
    Techmap.Seqmap.estimate ~cycles:500 (Techmap.Matchlib.build lib)
      (Circuits.Crc.generate ~data_width:8 ())
  in
  let gen = run Cell.Genlib.generalized_cntfet in
  let cmos = run Cell.Genlib.cmos in
  Alcotest.(check bool) "fewer gates" true (gen.Techmap.Seqmap.gates < cmos.Techmap.Seqmap.gates);
  Alcotest.(check bool) "less energy per cycle" true
    (gen.Techmap.Seqmap.epc < 0.5 *. cmos.Techmap.Seqmap.epc);
  Alcotest.(check bool) "faster clock" true
    (gen.Techmap.Seqmap.min_period *. 4.0 < cmos.Techmap.Seqmap.min_period)

let () =
  Alcotest.run "seq"
    [
      ( "seq-core",
        [
          Alcotest.test_case "counter counts" `Quick counter_counts;
          Alcotest.test_case "unconnected register" `Quick unconnected_register_fails;
          Alcotest.test_case "simulate matches step" `Quick simulate_matches_step;
        ] );
      ( "crc",
        [
          Alcotest.test_case "reference known value" `Quick crc_reference_known_value;
          Alcotest.test_case "circuit matches reference" `Quick crc_circuit_matches_reference;
        ] );
      ( "seqmap",
        [
          Alcotest.test_case "register model" `Quick register_model_sane;
          Alcotest.test_case "mapped cycle = reference cycle" `Slow seqmap_preserves_function;
          Alcotest.test_case "report sane" `Slow seqmap_report_sane;
          Alcotest.test_case "generalized beats cmos" `Slow seq_generalized_beats_cmos;
        ] );
    ]
