module N = Cell.Network
module Cells = Cell.Cells
module G = Cell.Genlib
module E = Logic.Expr
module T = Logic.Truthtable

let tt = Alcotest.testable T.pp T.equal

(* ------------------------------------------------------------------ *)
(* Network *)

let tgate_conduction () =
  let tg = N.Dev (N.Tgate (N.sig_ 0, N.sig_ 1)) in
  List.iter
    (fun (a, b) ->
      let env i = if i = 0 then a else b in
      Alcotest.(check bool)
        (Printf.sprintf "tg a=%b b=%b" a b)
        (a <> b) (N.conducts env tg))
    [ (false, false); (false, true); (true, false); (true, true) ]

let fixed_devices () =
  let env1 _ = true and env0 _ = false in
  Alcotest.(check bool) "n on" true (N.conducts env1 (N.Dev (N.Fixed_n (N.sig_ 0))));
  Alcotest.(check bool) "n off" false (N.conducts env0 (N.Dev (N.Fixed_n (N.sig_ 0))));
  Alcotest.(check bool) "p off" false (N.conducts env1 (N.Dev (N.Fixed_p (N.sig_ 0))));
  Alcotest.(check bool) "p on" true (N.conducts env0 (N.Dev (N.Fixed_p (N.sig_ 0))));
  Alcotest.(check bool) "inverted signal" true
    (N.conducts env0 (N.Dev (N.Fixed_n (N.nsig 0))))

let series_parallel () =
  let net =
    N.Ser [ N.Dev (N.Fixed_n (N.sig_ 0)); N.Par [ N.Dev (N.Fixed_n (N.sig_ 1)); N.Dev (N.Fixed_n (N.sig_ 2)) ] ]
  in
  let env m i = (m lsr i) land 1 = 1 in
  for m = 0 to 7 do
    let expected = env m 0 && (env m 1 || env m 2) in
    Alcotest.(check bool) (Printf.sprintf "m=%d" m) expected (N.conducts (env m) net)
  done

let stack_and_counts () =
  let net =
    N.Ser
      [
        N.Dev (N.Fixed_n (N.sig_ 0));
        N.Dev (N.Tgate (N.sig_ 1, N.sig_ 2));
        N.Par [ N.Dev (N.Fixed_n (N.sig_ 3)); N.Dev (N.Fixed_n (N.sig_ 4)) ];
      ]
  in
  Alcotest.(check int) "transistors" 5 (N.num_transistors net);
  Alcotest.(check int) "leaves" 4 (N.num_leaves net);
  Alcotest.(check int) "stack" 3 (N.max_stack net)

let impl_complementarity_all_cells () =
  (* Every shipped implementation must have complementary PU/PD networks
     and realize the declared expression (checked inside impl_function /
     builders, re-checked here). *)
  List.iter
    (fun (c : Cells.t) ->
      let expected = Cells.tt c in
      Alcotest.check tt (c.Cells.name ^ " ambipolar")
        expected
        (N.impl_function c.Cells.ambipolar c.Cells.pins);
      match c.Cells.static with
      | None -> ()
      | Some impl ->
          Alcotest.check tt (c.Cells.name ^ " static") expected (N.impl_function impl c.Cells.pins))
    Cells.all

let qcheck_expr_gen =
  (* Random expressions over <= 4 vars from literals, and/or, xor pairs. *)
  let open QCheck.Gen in
  let lit = map (fun (i, n) -> if n then E.not_ (E.var i) else E.var i) (pair (int_bound 3) bool) in
  let xor_pair = map2 (fun a b -> E.Xor [ a; b ]) lit lit in
  let atom = oneof [ lit; xor_pair ] in
  let rec expr depth =
    if depth = 0 then atom
    else
      frequency
        [
          (2, atom);
          (2, map (fun es -> E.and_ es) (list_size (int_range 2 3) (expr (depth - 1))));
          (2, map (fun es -> E.or_ es) (list_size (int_range 2 3) (expr (depth - 1))));
        ]
  in
  expr 2

let network_of_expr_correct =
  QCheck.Test.make ~count:300 ~name:"of_expr realizes the expression"
    (QCheck.make qcheck_expr_gen)
    (fun e ->
      match E.to_tt 4 e |> T.is_const with
      | Some _ -> true (* constant functions are not gates *)
      | None ->
          let impl = N.of_expr ~pins:4 e in
          T.equal (N.impl_function impl 4) (E.to_tt 4 e))

let no_tgate_has_no_tgates =
  QCheck.Test.make ~count:300 ~name:"of_expr_no_tgate uses no transmission gates"
    (QCheck.make qcheck_expr_gen)
    (fun e ->
      match E.to_tt 4 e |> T.is_const with
      | Some _ -> true
      | None ->
          let impl = N.of_expr_no_tgate ~pins:4 e in
          let ok = ref true in
          let rec scan = function
            | N.Dev (N.Tgate _) -> ok := false
            | N.Dev (N.Fixed_n _ | N.Fixed_p _) -> ()
            | N.Ser children | N.Par children -> List.iter scan children
          in
          scan impl.N.pull_up;
          scan impl.N.pull_down;
          !ok && T.equal (N.impl_function impl 4) (E.to_tt 4 e))

(* ------------------------------------------------------------------ *)
(* Cells *)

let library_has_46_cells () =
  Alcotest.(check int) "46 cells" 46 (List.length Cells.all)

let conventional_subset () =
  Alcotest.(check bool) "conventional smaller" true
    (List.length Cells.conventional < List.length Cells.all);
  List.iter
    (fun (c : Cells.t) ->
      Alcotest.(check bool) (c.Cells.name ^ " has static impl") true (c.Cells.static <> None))
    Cells.conventional

let generalized_cells_embed_xor () =
  List.iter
    (fun (c : Cells.t) ->
      if c.Cells.generalized && c.Cells.name <> "MUX2" && c.Cells.name <> "MUXI2" then begin
        let rec has_xor = function
          | E.Xor _ -> true
          | E.Const _ | E.Var _ -> false
          | E.Not e -> has_xor e
          | E.And es | E.Or es -> List.exists has_xor es
        in
        Alcotest.(check bool) (c.Cells.name ^ " embeds xor") true (has_xor c.Cells.expr)
      end)
    Cells.all

let inverter_is_two_transistors () =
  Alcotest.(check int) "INV 2T" 2 (N.impl_transistors Cells.inverter.Cells.ambipolar)

let xor2_cheaper_ambipolar () =
  let xor = Cells.find "XOR2" in
  let amb = N.impl_transistors xor.Cells.ambipolar in
  (* The transmission-gate XOR needs 6 transistors (2 TGs + complement
     inverter); the unipolar static XOR needs 12. *)
  Alcotest.(check int) "ambipolar XOR2 6T" 6 amb;
  let static = N.of_expr_no_tgate ~pins:2 xor.Cells.expr in
  Alcotest.(check int) "static XOR2 12T" 12 (N.impl_transistors static)

let nand2_classic () =
  let nand = Cells.find "NAND2" in
  Alcotest.(check int) "NAND2 4T" 4 (N.impl_transistors nand.Cells.ambipolar);
  Alcotest.(check int) "NAND2 stack 2" 2 (N.impl_stack nand.Cells.ambipolar)

let gnand2_structure () =
  let g = Cells.find "GNAND2" in
  (* (A^C)(B^D)' : two transmission gates per network + 2 complement
     inverters = 4 + 4 + 4 = 12 transistors. *)
  Alcotest.(check int) "GNAND2 12T" 12 (N.impl_transistors g.Cells.ambipolar);
  Alcotest.(check int) "GNAND2 stack 2" 2 (N.impl_stack g.Cells.ambipolar)

let all_pins_in_support () =
  List.iter
    (fun (c : Cells.t) ->
      Alcotest.(check int)
        (c.Cells.name ^ " full support")
        c.Cells.pins
        (List.length (T.support (Cells.tt c))))
    Cells.all

(* ------------------------------------------------------------------ *)
(* Genlib *)

let libraries_well_formed () =
  List.iter
    (fun (lib : G.t) ->
      Alcotest.(check bool) (lib.G.name ^ " nonempty") true (lib.G.gates <> []);
      List.iter
        (fun (g : G.gate) ->
          Alcotest.(check bool) "positive area" true (g.G.area > 0.0);
          Alcotest.(check bool) "positive delay" true (g.G.delay > 0.0);
          Alcotest.(check int) "caps per pin" g.G.cell.Cells.pins (Array.length g.G.input_caps))
        lib.G.gates;
      ignore (G.find_gate lib "INV"))
    G.all_libraries

let generalized_library_is_46 () =
  Alcotest.(check int) "46 gates" 46 (List.length G.generalized_cntfet.G.gates)

let conventional_same_gate_set () =
  let names lib = List.map (fun g -> g.G.cell.Cells.name) lib.G.gates in
  Alcotest.(check (list string)) "cnv = cmos gate set"
    (names G.conventional_cntfet) (names G.cmos)

let cmos_slower_than_cntfet () =
  List.iter2
    (fun (a : G.gate) (b : G.gate) ->
      Alcotest.(check bool)
        (a.G.cell.Cells.name ^ " cmos slower")
        true
        (b.G.delay > a.G.delay *. 4.0))
    G.conventional_cntfet.G.gates G.cmos.G.gates

let genlib_export_mentions_all_gates () =
  let text = G.to_genlib_string G.generalized_cntfet in
  List.iter
    (fun (g : G.gate) ->
      let name = "GATE " ^ g.G.cell.Cells.name ^ " " in
      let found =
        let len = String.length text and n = String.length name in
        let rec scan i = i + n <= len && (String.sub text i n = name || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) ("exports " ^ g.G.cell.Cells.name) true found)
    G.generalized_cntfet.G.gates

(* ------------------------------------------------------------------ *)
(* Dynlogic *)

module D = Cell.Dynlogic

let dyn_gnor_functions () =
  let g = D.gnor 2 in
  let fns = D.achievable_functions g in
  Alcotest.(check int) "4 configurations, 4 functions" 4 (List.length fns);
  (* config 0 must be plain NOR2 *)
  let nor2 = Cells.tt (Cells.find "NOR2") in
  Alcotest.check tt "config 0 = NOR2" nor2 (D.function_of g ~config:0)

let dyn_gnor_polarity_flip () =
  let g = D.gnor 2 in
  (* flipping config bit 0 complements input 0 *)
  let f0 = D.function_of g ~config:0 in
  let f1 = D.function_of g ~config:1 in
  Alcotest.check tt "flip" (T.flip_input f0 0) f1

let dyn_reconfigurable_rich () =
  let g = D.reconfigurable2 in
  let fns = D.achievable_functions g in
  Alcotest.(check bool)
    (Printf.sprintf "%d functions >= 8 (background [5]: 8 with 7T)" (List.length fns))
    true
    (List.length fns >= 8);
  Alcotest.(check bool)
    (Printf.sprintf "%dT <= 7" (D.num_transistors g))
    true
    (D.num_transistors g <= 7);
  (* the achievable set contains XNOR (the poster child of ambipolarity) *)
  let xnor = Cells.tt (Cells.find "XNOR2") in
  Alcotest.(check bool) "xnor achievable" true
    (List.exists (fun f -> T.equal f xnor) fns)

let dyn_alpha_exceeds_static () =
  let g = D.gnor 2 in
  Alcotest.(check (float 1e-9)) "dynamic NOR alpha = offset fraction" 0.75
    (D.eval_alpha g ~config:0)

(* ------------------------------------------------------------------ *)
(* Genlib text roundtrip *)

let genlib_parse_roundtrip () =
  List.iter
    (fun lib ->
      let parsed = G.parse_genlib (G.to_genlib_string lib) in
      Alcotest.(check int)
        (lib.G.name ^ " gate count")
        (List.length lib.G.gates) (List.length parsed);
      List.iter2
        (fun (g : G.gate) (name, area, expr, _delay) ->
          Alcotest.(check string) "name" g.G.cell.Cells.name name;
          Alcotest.(check (float 1e-9)) "area" g.G.area area;
          Alcotest.check tt
            (name ^ " function")
            (Cells.tt g.G.cell)
            (E.to_tt g.G.cell.Cells.pins expr))
        lib.G.gates parsed)
    G.all_libraries

let genlib_parse_errors () =
  Alcotest.(check bool) "bad formula raises" true
    (try
       ignore (G.parse_genlib "GATE x 1 O=A**B;\n");
       false
     with G.Parse_error _ -> true)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "cell"
    [
      ( "network",
        Alcotest.
          [
            test_case "tgate conduction" `Quick tgate_conduction;
            test_case "fixed devices" `Quick fixed_devices;
            test_case "series/parallel" `Quick series_parallel;
            test_case "stack and counts" `Quick stack_and_counts;
            test_case "all cells complementary + correct" `Quick impl_complementarity_all_cells;
          ]
        @ qt [ network_of_expr_correct; no_tgate_has_no_tgates ] );
      ( "cells",
        [
          Alcotest.test_case "46 cells" `Quick library_has_46_cells;
          Alcotest.test_case "conventional subset" `Quick conventional_subset;
          Alcotest.test_case "generalized embed xor" `Quick generalized_cells_embed_xor;
          Alcotest.test_case "inverter 2T" `Quick inverter_is_two_transistors;
          Alcotest.test_case "xor2 6T vs 12T" `Quick xor2_cheaper_ambipolar;
          Alcotest.test_case "nand2 classic" `Quick nand2_classic;
          Alcotest.test_case "gnand2 structure" `Quick gnand2_structure;
          Alcotest.test_case "full pin support" `Quick all_pins_in_support;
        ] );
      ( "dynlogic",
        [
          Alcotest.test_case "gnor functions" `Quick dyn_gnor_functions;
          Alcotest.test_case "polarity flip" `Quick dyn_gnor_polarity_flip;
          Alcotest.test_case "reconfigurable >= 8 fns" `Quick dyn_reconfigurable_rich;
          Alcotest.test_case "dynamic alpha" `Quick dyn_alpha_exceeds_static;
        ] );
      ( "genlib",
        [
          Alcotest.test_case "libraries well-formed" `Quick libraries_well_formed;
          Alcotest.test_case "generalized has 46" `Quick generalized_library_is_46;
          Alcotest.test_case "cnv/cmos same gates" `Quick conventional_same_gate_set;
          Alcotest.test_case "cmos 5x slower" `Quick cmos_slower_than_cntfet;
          Alcotest.test_case "genlib export complete" `Quick genlib_export_mentions_all_gates;
          Alcotest.test_case "genlib parse roundtrip" `Quick genlib_parse_roundtrip;
          Alcotest.test_case "genlib parse errors" `Quick genlib_parse_errors;
        ] );
    ]
