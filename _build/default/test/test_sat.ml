module S = Logic.Sat
module T = Logic.Truthtable

let model_or_fail = function
  | S.Sat m -> m
  | S.Unsat -> Alcotest.fail "expected SAT"
  | S.Unknown -> Alcotest.fail "unexpected Unknown"

let basic_sat () =
  let t = S.create () in
  let a = S.new_var t and b = S.new_var t in
  S.add_clause t [ a; b ];
  S.add_clause t [ -a; b ];
  let m = model_or_fail (S.solve t) in
  Alcotest.(check bool) "b forced" true (m b)

let basic_unsat () =
  let t = S.create () in
  let a = S.new_var t in
  S.add_clause t [ a ];
  S.add_clause t [ -a ];
  Alcotest.(check bool) "unsat" true (S.solve t = S.Unsat)

let empty_clause () =
  let t = S.create () in
  S.add_clause t [];
  Alcotest.(check bool) "unsat" true (S.solve t = S.Unsat)

let incremental_clauses () =
  let t = S.create () in
  let a = S.new_var t and b = S.new_var t in
  S.add_clause t [ a; b ];
  S.add_clause t [ -a; b ];
  S.add_clause t [ a; -b ];
  (match S.solve t with S.Sat _ -> () | S.Unsat | S.Unknown -> Alcotest.fail "sat");
  S.add_clause t [ -a; -b ];
  Alcotest.(check bool) "now unsat" true (S.solve t = S.Unsat)

let assumptions () =
  let t = S.create () in
  let a = S.new_var t and b = S.new_var t in
  S.add_clause t [ -a; b ];
  (match S.solve ~assumptions:[ a ] t with
  | S.Sat m -> Alcotest.(check bool) "b implied" true (m b)
  | S.Unsat | S.Unknown -> Alcotest.fail "sat under assumption");
  S.add_clause t [ -a; -b ];
  Alcotest.(check bool) "a now contradictory" true (S.solve ~assumptions:[ a ] t = S.Unsat);
  (match S.solve ~assumptions:[ -a ] t with
  | S.Sat _ -> ()
  | S.Unsat | S.Unknown -> Alcotest.fail "still sat without a")

let pigeonhole n =
  (* n+1 pigeons into n holes: unsat, forces real search + learning. *)
  let t = S.create () in
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> S.new_var t)) in
  for p = 0 to n do
    S.add_clause t (Array.to_list var.(p))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        S.add_clause t [ -var.(p1).(h); -var.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) (Printf.sprintf "php %d unsat" n) true (S.solve t = S.Unsat)

let conflict_budget () =
  let t = S.create () in
  let var = Array.init 7 (fun _ -> Array.init 6 (fun _ -> S.new_var t)) in
  for p = 0 to 6 do
    S.add_clause t (Array.to_list var.(p))
  done;
  for h = 0 to 5 do
    for p1 = 0 to 6 do
      for p2 = p1 + 1 to 6 do
        S.add_clause t [ -var.(p1).(h); -var.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "budget trips" true (S.solve ~max_conflicts:5 t = S.Unknown)

let planted_random_3sat =
  QCheck.Test.make ~count:60 ~name:"planted 3-sat instances solved with valid models"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 13)) in
      let t = S.create () in
      let n = 25 in
      let vars = Array.init n (fun _ -> S.new_var t) in
      let sol = Array.init n (fun _ -> Logic.Prng.bool rng) in
      let clauses = ref [] in
      for _ = 1 to 110 do
        let c =
          List.init 3 (fun _ ->
              let i = Logic.Prng.int rng n in
              if Logic.Prng.bool rng then vars.(i) else -vars.(i))
        in
        let satisfied = List.exists (fun l -> l > 0 = sol.(abs l - 1)) c in
        let c =
          if satisfied then c
          else
            (let i = Logic.Prng.int rng n in
             if sol.(i) then vars.(i) else -vars.(i))
            :: c
        in
        clauses := c :: !clauses;
        S.add_clause t c
      done;
      match S.solve t with
      | S.Sat m ->
          List.for_all (fun c -> List.exists (fun l -> l > 0 = m (abs l)) c) !clauses
      | S.Unsat | S.Unknown -> false)

let unsat_implies_no_model =
  (* Cross-check UNSAT answers against exhaustive enumeration on small
     random instances. *)
  QCheck.Test.make ~count:100 ~name:"unsat answers verified exhaustively"
    QCheck.(make Gen.(int_bound 100_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 31)) in
      let t = S.create () in
      let n = 6 in
      let vars = Array.init n (fun _ -> S.new_var t) in
      let clauses = ref [] in
      for _ = 1 to 24 do
        let c =
          List.init 3 (fun _ ->
              let i = Logic.Prng.int rng n in
              if Logic.Prng.bool rng then vars.(i) else -vars.(i))
        in
        clauses := c :: !clauses;
        S.add_clause t c
      done;
      let exists_model =
        let found = ref false in
        for m = 0 to (1 lsl n) - 1 do
          let ok =
            List.for_all
              (fun c -> List.exists (fun l -> l > 0 = ((m lsr (abs l - 1)) land 1 = 1)) c)
              !clauses
          in
          if ok then found := true
        done;
        !found
      in
      match S.solve t with
      | S.Sat m ->
          exists_model
          && List.for_all (fun c -> List.exists (fun l -> l > 0 = m (abs l)) c) !clauses
      | S.Unsat -> not exists_model
      | S.Unknown -> false)

(* ------------------------------------------------------------------ *)
(* SAT-based CEC *)

module A = Aigs.Aig
module V = Techmap.Verify

let sat_cec_positive () =
  let nl = Circuits.Hamming.corrector ~data_bits:8 in
  let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
  Alcotest.(check bool) "aig equivalent" true (V.sat_equiv_netlist_aig nl aig = V.Equivalent);
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let m = Techmap.Mapper.map ml aig in
  Alcotest.(check bool) "mapped equivalent" true
    (V.sat_equiv_netlist_mapped nl m = V.Equivalent)

let sat_cec_negative () =
  let nl = Circuits.Hamming.corrector ~data_bits:8 in
  (* A wrong implementation: encoder instead of corrector outputs. *)
  let aig = A.create () in
  let module N = Nets.Netlist in
  let inputs = N.inputs nl in
  let lits = Array.map (fun id -> A.add_input aig (N.input_name nl id)) inputs in
  Array.iteri
    (fun i (name, _) ->
      A.add_output aig name (if i < Array.length lits then lits.(i) else A.const_false))
    (N.outputs nl);
  Alcotest.(check bool) "detected" true (V.sat_equiv_netlist_aig nl aig = V.Not_equivalent)

let sat_cec_multiplier () =
  (* BDD-hostile structure; the SAT engine discharges the 5-bit miter. *)
  let nl = Circuits.Multiplier.generate ~width:5 in
  let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let m = Techmap.Mapper.map ml aig in
  Alcotest.(check bool) "mult5 equivalent" true
    (V.sat_equiv_netlist_mapped nl m = V.Equivalent)

let sat_cec_budget () =
  let nl = Circuits.Multiplier.generate ~width:8 in
  let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
  match V.sat_equiv_netlist_aig ~max_conflicts:50 nl aig with
  | V.Inconclusive | V.Equivalent -> ()
  | V.Not_equivalent -> Alcotest.fail "false negative"

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sat"
    [
      ( "core",
        Alcotest.
          [
            test_case "basic sat" `Quick basic_sat;
            test_case "basic unsat" `Quick basic_unsat;
            test_case "empty clause" `Quick empty_clause;
            test_case "incremental" `Quick incremental_clauses;
            test_case "assumptions" `Quick assumptions;
            test_case "pigeonhole 4" `Quick (fun () -> pigeonhole 4);
            test_case "pigeonhole 6" `Slow (fun () -> pigeonhole 6);
            test_case "conflict budget" `Quick conflict_budget;
          ]
        @ qt [ planted_random_3sat; unsat_implies_no_model ] );
      ( "cec",
        [
          Alcotest.test_case "positive" `Slow sat_cec_positive;
          Alcotest.test_case "negative" `Quick sat_cec_negative;
          Alcotest.test_case "multiplier" `Slow sat_cec_multiplier;
          Alcotest.test_case "budget inconclusive" `Quick sat_cec_budget;
        ] );
    ]
