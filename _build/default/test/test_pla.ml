module T = Logic.Truthtable
module TL = Logic.Twolevel
module N = Nets.Netlist

(* ------------------------------------------------------------------ *)
(* Twolevel minimization *)

let qcheck_tt_gen n =
  QCheck.Gen.(
    map (fun bits -> T.of_bits n (Array.of_list bits)) (list_size (return (1 lsl n)) bool))

let minimize_exact n =
  QCheck.Test.make ~count:150
    ~name:(Printf.sprintf "minimize covers exactly (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f -> TL.is_cover_of f (TL.minimize f))

let minimize_not_worse_than_isop n =
  QCheck.Test.make ~count:150
    ~name:(Printf.sprintf "minimize <= isop terms (n=%d)" n)
    (QCheck.make (qcheck_tt_gen n))
    (fun f -> TL.cover_terms (TL.minimize f) <= List.length (T.isop f))

let minimize_with_dc =
  QCheck.Test.make ~count:100 ~name:"don't-cares only help"
    (QCheck.make QCheck.Gen.(pair (qcheck_tt_gen 5) (qcheck_tt_gen 5)))
    (fun (f, dc_raw) ->
      (* Keep dc disjoint from the on-set to form a classic incompletely
         specified function. *)
      let dc = T.logand dc_raw (T.lognot f) in
      let plain = TL.minimize f in
      let with_dc = TL.minimize ~dc f in
      TL.is_cover_of ~dc f with_dc
      && TL.cover_terms with_dc <= TL.cover_terms plain)

let minimize_known_example () =
  (* f = minterms {0,1,2,3} over 3 vars = !x2 : one cube, one literal. *)
  let f = T.of_bits 3 [| true; true; true; true; false; false; false; false |] in
  let cover = TL.minimize f in
  Alcotest.(check int) "one cube" 1 (TL.cover_terms cover);
  Alcotest.(check int) "one literal" 1 (TL.cover_literals cover)

let minimize_constants () =
  Alcotest.(check int) "zero: empty cover" 0 (TL.cover_terms (TL.minimize (T.const 4 false)));
  let ones = TL.minimize (T.const 4 true) in
  Alcotest.(check int) "one: single empty cube" 1 (TL.cover_terms ones);
  Alcotest.(check int) "one: zero literals" 0 (TL.cover_literals ones)

(* ------------------------------------------------------------------ *)
(* PLA *)

let decoder_netlist () =
  let nl = N.create () in
  let sel = Circuits.Arith.input_bus nl "s" 3 in
  let hot = Circuits.Arith.decoder nl sel in
  Array.iteri (fun i id -> N.add_output nl (Printf.sprintf "d%d" i) id) hot;
  nl

let pla_of_decoder () =
  let nl = decoder_netlist () in
  let p = Pla.of_netlist nl in
  Alcotest.(check bool) "matches netlist" true (Pla.check_against p nl);
  Alcotest.(check int) "8 terms (one per minterm)" 8 (Pla.num_terms p);
  Alcotest.(check int) "24 literals" 24 (Pla.num_literals p)

let pla_term_sharing () =
  (* Two outputs with a shared product term share it in the AND plane. *)
  let x = T.var 3 0 and y = T.var 3 1 and z = T.var 3 2 in
  let shared = T.logand x y in
  let f0 = T.logor shared z in
  let f1 = T.logand shared (T.lognot z) in
  let p = Pla.of_functions [| f0; f1 |] in
  Alcotest.(check bool) "term count below naive sum" true
    (Pla.num_terms p < TL.cover_terms (TL.minimize f0) + TL.cover_terms (TL.minimize f1)
    || Pla.num_terms p = 3 (* x&y shared, z, x&y&!z -> 3 *))

let pla_eval_random =
  QCheck.Test.make ~count:100 ~name:"pla eval = minimized functions"
    (QCheck.make QCheck.Gen.(pair (qcheck_tt_gen 5) (qcheck_tt_gen 5)))
    (fun (f0, f1) ->
      let p = Pla.of_functions [| f0; f1 |] in
      let ok = ref true in
      for m = 0 to 31 do
        let outs = Pla.eval p m in
        if outs.(0) <> T.eval f0 m || outs.(1) <> T.eval f1 m then ok := false
      done;
      !ok)

let pla_costs () =
  let nl = decoder_netlist () in
  let p = Pla.of_netlist nl in
  let amb = Pla.ambipolar_cost p and cmos = Pla.cmos_cost p in
  Alcotest.(check int) "no ambipolar input inverters" 0 amb.Pla.input_inverters;
  Alcotest.(check int) "cmos inverters = inputs" 3 cmos.Pla.input_inverters;
  Alcotest.(check int) "cmos overhead = 2 per input" (amb.Pla.transistors + 6)
    cmos.Pla.transistors;
  Alcotest.(check bool) "ambipolar reconfigurable" true amb.Pla.reconfigurable;
  Alcotest.(check bool) "cmos fixed" false cmos.Pla.reconfigurable;
  Alcotest.(check bool) "positive switched cap" true (amb.Pla.switched_cap > 0.0)

(* ------------------------------------------------------------------ *)
(* STA *)

let sta_zero_slack_at_critical () =
  let nl = Circuits.Hamming.corrector ~data_bits:8 in
  let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let m = Techmap.Mapper.map ml aig in
  let r = Techmap.Sta.analyze m in
  Alcotest.(check bool) "worst slack ~ 0" true (abs_float r.Techmap.Sta.worst_slack < 1e-15);
  Alcotest.(check int) "no violations at own period" 0
    (List.length r.Techmap.Sta.violating_endpoints);
  Alcotest.(check bool) "critical delay = mapped delay" true
    (abs_float (r.Techmap.Sta.critical_delay -. Techmap.Mapped.delay m) < 1e-18);
  (* Path arrivals are non-decreasing and end at the critical delay. *)
  let arrivals = List.map (fun e -> e.Techmap.Sta.arrival) r.Techmap.Sta.critical_path in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-18 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone arrivals" true (monotone arrivals);
  match List.rev arrivals with
  | last :: _ ->
      Alcotest.(check bool) "path ends at critical" true
        (abs_float (last -. r.Techmap.Sta.critical_delay) < 1e-18)
  | [] -> Alcotest.fail "empty critical path"

let sta_violations_under_tight_period () =
  let nl = Circuits.Hamming.corrector ~data_bits:8 in
  let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let m = Techmap.Mapper.map ml aig in
  let full = Techmap.Sta.analyze m in
  let tight = Techmap.Sta.analyze ~period:(full.Techmap.Sta.critical_delay /. 2.0) m in
  Alcotest.(check bool) "violations appear" true
    (List.length tight.Techmap.Sta.violating_endpoints > 0);
  Alcotest.(check bool) "worst slack negative" true (tight.Techmap.Sta.worst_slack < 0.0)

let sta_histogram_counts_endpoints () =
  let nl = Circuits.Hamming.corrector ~data_bits:8 in
  let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let m = Techmap.Mapper.map ml aig in
  let r = Techmap.Sta.analyze m in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 r.Techmap.Sta.slack_histogram in
  Alcotest.(check int) "histogram covers all endpoints"
    (Array.length m.Techmap.Mapped.po_nets)
    total

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "pla"
    [
      ( "twolevel",
        Alcotest.
          [
            test_case "known example" `Quick minimize_known_example;
            test_case "constants" `Quick minimize_constants;
          ]
        @ qt
            [
              minimize_exact 4;
              minimize_exact 6;
              minimize_not_worse_than_isop 5;
              minimize_with_dc;
            ] );
      ( "pla",
        Alcotest.
          [
            test_case "decoder" `Quick pla_of_decoder;
            test_case "term sharing" `Quick pla_term_sharing;
            test_case "costs" `Quick pla_costs;
          ]
        @ qt [ pla_eval_random ] );
      ( "sta",
        [
          Alcotest.test_case "zero slack at critical" `Quick sta_zero_slack_at_critical;
          Alcotest.test_case "tight period violations" `Quick sta_violations_under_tight_period;
          Alcotest.test_case "histogram totals" `Quick sta_histogram_counts_endpoints;
        ] );
    ]
