test/test_experiments.ml: Alcotest Circuits Experiments Format List Printf String Techmap
