test/test_logic.ml: Alcotest Array List Logic Printf QCheck QCheck_alcotest
