test/test_power.ml: Alcotest Array Cell List Logic Power Printf QCheck QCheck_alcotest Spice
