test/test_nets.mli:
