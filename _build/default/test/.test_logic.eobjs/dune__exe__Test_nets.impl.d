test/test_nets.ml: Alcotest Array List Logic Nets Printf
