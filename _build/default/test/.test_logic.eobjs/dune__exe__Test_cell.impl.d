test/test_cell.ml: Alcotest Array Cell List Logic Printf QCheck QCheck_alcotest String
