test/test_spice.ml: Alcotest List Printf Spice
