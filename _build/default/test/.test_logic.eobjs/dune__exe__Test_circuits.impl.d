test/test_circuits.ml: Alcotest Array Circuits Format List Logic Nets Printf
