test/test_aig.ml: Aigs Alcotest Array Gen Int64 List Logic Nets Printf QCheck QCheck_alcotest
