test/test_pla.ml: Aigs Alcotest Array Cell Circuits List Logic Nets Pla Printf QCheck QCheck_alcotest Techmap
