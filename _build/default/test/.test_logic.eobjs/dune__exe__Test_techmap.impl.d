test/test_techmap.ml: Aigs Alcotest Array Cell Circuits Gen Int64 Lazy List Logic Printf QCheck QCheck_alcotest String Techmap
