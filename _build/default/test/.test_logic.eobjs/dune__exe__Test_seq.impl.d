test/test_seq.ml: Alcotest Array Cell Circuits Int32 List Logic Nets Printf String Techmap
