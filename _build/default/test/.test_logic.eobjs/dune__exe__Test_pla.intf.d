test/test_pla.mli:
