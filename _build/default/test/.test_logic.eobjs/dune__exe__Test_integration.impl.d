test/test_integration.ml: Aigs Alcotest Array Cell Circuits Gen Int64 List Logic Nets Printf QCheck QCheck_alcotest Techmap
