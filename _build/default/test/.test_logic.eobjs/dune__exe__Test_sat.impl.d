test/test_sat.ml: Aigs Alcotest Array Cell Circuits Gen Int64 List Logic Nets Printf QCheck QCheck_alcotest Techmap
