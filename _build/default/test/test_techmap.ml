module A = Aigs.Aig
module M = Techmap
module G = Cell.Genlib
module T = Logic.Truthtable

let matchlibs =
  lazy (List.map (fun lib -> (lib, M.Matchlib.build lib)) G.all_libraries)

let ml_gen () = snd (List.hd (Lazy.force matchlibs))
let ml_of name = snd (List.find (fun (l, _) -> l.G.name = name) (Lazy.force matchlibs))

(* ------------------------------------------------------------------ *)
(* Matchlib *)

let lookup_nand2 () =
  let ml = ml_gen () in
  let f = T.lognot (T.logand (T.var 2 0) (T.var 2 1)) in
  let cands = M.Matchlib.lookup ml f in
  Alcotest.(check bool) "has NAND2" true
    (List.exists
       (fun (c : M.Matchlib.candidate) -> c.gate.G.cell.Cell.Cells.name = "NAND2")
       cands)

let lookup_respects_permutation () =
  let ml = ml_gen () in
  (* !((x1 ^ x0) & x2): GNAND2B with permuted pins. *)
  let f = T.lognot (T.logand (T.logxor (T.var 3 1) (T.var 3 0)) (T.var 3 2)) in
  let cands = M.Matchlib.lookup ml f in
  Alcotest.(check bool) "nonempty" true (cands <> []);
  (* Every candidate must actually compute f when wired per (perm, mask). *)
  List.iter
    (fun (c : M.Matchlib.candidate) ->
      let g = Cell.Cells.tt c.gate.G.cell in
      let k = c.gate.G.cell.Cell.Cells.pins in
      let recomputed = ref g in
      for j = 0 to k - 1 do
        if (c.inv_mask lsr j) land 1 = 1 then recomputed := T.flip_input !recomputed j
      done;
      let recomputed = T.permute !recomputed c.perm in
      Alcotest.(check bool)
        (c.gate.G.cell.Cell.Cells.name ^ " binding correct")
        true
        (T.equal recomputed f))
    cands

let lookup_unknown_function () =
  let ml = ml_of "cmos" in
  (* 4-input parity has no single-gate realization in the CMOS library. *)
  let parity =
    List.fold_left (fun acc i -> T.logxor acc (T.var 4 i)) (T.const 4 false) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "no match" 0 (List.length (M.Matchlib.lookup ml parity))

let generalized_matches_xor_shapes () =
  let ml = ml_gen () in
  let gnand = T.lognot (T.logand (T.logxor (T.var 4 0) (T.var 4 2)) (T.logxor (T.var 4 1) (T.var 4 3))) in
  Alcotest.(check bool) "GNAND2 shape matched" true (M.Matchlib.lookup ml gnand <> [])

(* ------------------------------------------------------------------ *)
(* Mapper *)

let random_aig rng ~inputs ~ands ~outs =
  let aig = A.create () in
  let lits = ref [] in
  for i = 1 to inputs do
    lits := A.add_input aig (Printf.sprintf "i%d" i) :: !lits
  done;
  let pick () =
    let all = Array.of_list !lits in
    let l = all.(Logic.Prng.int rng (Array.length all)) in
    if Logic.Prng.bool rng then A.lit_not l else l
  in
  for _ = 1 to ands do
    lits := A.mk_and aig (pick ()) (pick ()) :: !lits
  done;
  for o = 1 to outs do
    A.add_output aig (Printf.sprintf "o%d" o) (pick ())
  done;
  aig

let output_functions aig =
  let leaves = A.input_lits aig in
  Array.map
    (fun (name, lit) ->
      let base = A.cone_tt aig (A.node_of_lit lit) leaves in
      (name, if A.is_complemented lit then T.lognot base else base))
    (A.outputs aig)

let mapped_output_functions (m : M.Mapped.t) n =
  (* Exhaustive simulation over n inputs. *)
  let patterns = 1 lsl n in
  let stimulus =
    Array.init n (fun i ->
        let v = Logic.Bitvec.create patterns in
        for p = 0 to patterns - 1 do
          Logic.Bitvec.set v p ((p lsr i) land 1 = 1)
        done;
        v)
  in
  let values = M.Mapped.simulate m stimulus in
  Array.map
    (fun (name, net) ->
      let bits = Array.init patterns (fun p -> Logic.Bitvec.get values.(net) p) in
      (name, T.of_bits n bits))
    m.M.Mapped.po_nets

let mapping_preserves_function lib_name =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "mapping preserves function (%s)" lib_name)
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 1)) in
      let aig = random_aig rng ~inputs:6 ~ands:40 ~outs:4 in
      let ml = ml_of lib_name in
      let m = M.Mapper.map ml aig in
      let ref_fns = output_functions aig in
      let got_fns = mapped_output_functions m 6 in
      Array.for_all2 (fun (_, f) (_, g) -> T.equal f g) ref_fns got_fns)

let mapping_area_objective_not_larger () =
  (* Area flow is a heuristic, so compare the two objectives on average
     over a batch of random subject graphs, not per instance. *)
  let rng = Logic.Prng.create 4242L in
  let ml = ml_gen () in
  let area_d = ref 0.0 and area_a = ref 0.0 in
  let delay_d = ref 0.0 and delay_a = ref 0.0 in
  for _ = 1 to 10 do
    let aig = random_aig rng ~inputs:8 ~ands:80 ~outs:5 in
    let md = M.Mapper.map ~objective:M.Mapper.Delay ml aig in
    let ma = M.Mapper.map ~objective:M.Mapper.Area ml aig in
    area_d := !area_d +. M.Mapped.area md;
    area_a := !area_a +. M.Mapped.area ma;
    delay_d := !delay_d +. M.Mapped.delay md;
    delay_a := !delay_a +. M.Mapped.delay ma
  done;
  Alcotest.(check bool)
    (Printf.sprintf "avg area %.0f <= %.0f" !area_a !area_d)
    true (!area_a <= !area_d +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "avg delay %.3g <= %.3g" !delay_d !delay_a)
    true
    (!delay_d <= !delay_a +. 1e-18)

let xor_maps_to_single_gate () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  A.add_output aig "y" (A.mk_xor aig a b);
  let m = M.Mapper.map (ml_gen ()) aig in
  Alcotest.(check int) "one gate" 1 (M.Mapped.num_gates m);
  match M.Mapped.gate_histogram m with
  | [ ("XOR2", 1) ] -> ()
  | h ->
      Alcotest.failf "expected XOR2 x1, got %s"
        (String.concat "," (List.map (fun (n, c) -> Printf.sprintf "%s x%d" n c) h))

let xor_in_cmos_needs_several_gates () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  A.add_output aig "y" (A.mk_xor aig a b);
  let m = M.Mapper.map (ml_of "cmos") aig in
  Alcotest.(check bool)
    (Printf.sprintf "gates %d > 1" (M.Mapped.num_gates m))
    true
    (M.Mapped.num_gates m > 1)

let constant_output () =
  let aig = A.create () in
  let a = A.add_input aig "a" in
  A.add_output aig "zero" (A.mk_and aig a (A.lit_not a));
  A.add_output aig "one" A.const_true;
  let m = M.Mapper.map (ml_gen ()) aig in
  let values = M.Mapped.simulate m [| Logic.Bitvec.create 8 |] in
  let net name =
    let _, n = Array.to_list m.M.Mapped.po_nets |> List.find (fun (x, _) -> x = name) in
    n
  in
  Alcotest.(check int) "zero net all 0" 0 (Logic.Bitvec.popcount values.(net "zero"));
  Alcotest.(check int) "one net all 1" 8 (Logic.Bitvec.popcount values.(net "one"))

let inverter_inserted_for_negated_output () =
  let aig = A.create () in
  let a = A.add_input aig "a" in
  A.add_output aig "na" (A.lit_not a);
  let m = M.Mapper.map (ml_gen ()) aig in
  Alcotest.(check int) "one INV" 1 (M.Mapped.num_gates m);
  match M.Mapped.gate_histogram m with
  | [ ("INV", 1) ] -> ()
  | _ -> Alcotest.fail "expected a single INV"

(* ------------------------------------------------------------------ *)
(* Mapped analysis + Estimate *)

let delay_is_path_sum () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" and c = A.add_input aig "c" in
  A.add_output aig "y" (A.mk_and aig (A.mk_and aig a b) c);
  let ml = ml_gen () in
  let m = M.Mapper.map ml aig in
  let arr = M.Mapped.arrival_times m in
  Array.iter (fun (_, net) -> Alcotest.(check bool) "nonneg" true (arr.(net) >= 0.0)) m.M.Mapped.po_nets;
  Alcotest.(check bool) "delay positive" true (M.Mapped.delay m > 0.0)

let estimate_scales_with_activity () =
  (* The same netlist estimated with constant-zero inputs must show zero
     dynamic power; with random inputs, positive. *)
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  A.add_output aig "y" (A.mk_and aig a b);
  let m = M.Mapper.map (ml_gen ()) aig in
  let r = M.Estimate.run ~patterns:4096 m in
  Alcotest.(check bool) "dynamic > 0" true (r.M.Estimate.dynamic > 0.0);
  Alcotest.(check bool) "static > 0" true (r.M.Estimate.static > 0.0);
  Alcotest.(check bool) "psc = 0.15 pd" true
    (abs_float (r.M.Estimate.short_circuit -. (0.15 *. r.M.Estimate.dynamic)) < 1e-18);
  Alcotest.(check bool) "total consistent" true
    (abs_float
       (r.M.Estimate.total
       -. (r.M.Estimate.dynamic +. r.M.Estimate.short_circuit +. r.M.Estimate.static
         +. r.M.Estimate.gate_leak))
    < 1e-15)

let estimate_deterministic () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  A.add_output aig "y" (A.mk_xor aig a b);
  let m = M.Mapper.map (ml_gen ()) aig in
  let r1 = M.Estimate.run ~patterns:8192 ~seed:5L m in
  let r2 = M.Estimate.run ~patterns:8192 ~seed:5L m in
  Alcotest.(check (float 0.0)) "same dynamic" r1.M.Estimate.dynamic r2.M.Estimate.dynamic;
  Alcotest.(check (float 0.0)) "same static" r1.M.Estimate.static r2.M.Estimate.static

let suite_circuit_mapping name =
  Alcotest.test_case (name ^ " maps and verifies") `Slow (fun () ->
      let entry = Circuits.Suite.find name in
      let nl = entry.Circuits.Suite.generate () in
      let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
      List.iter
        (fun (lib, ml) ->
          let m = M.Mapper.map ml aig in
          Alcotest.(check bool)
            (name ^ " equivalent under " ^ lib.G.name)
            true
            (M.Mapped.check m nl ~patterns:512 ~seed:77L))
        (Lazy.force matchlibs))

let generalized_maps_fewer_gates_on_ecc () =
  let entry = Circuits.Suite.find "C1355" in
  let nl = entry.Circuits.Suite.generate () in
  let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
  let m_gen = M.Mapper.map (ml_gen ()) aig in
  let m_cmos = M.Mapper.map (ml_of "cmos") aig in
  Alcotest.(check bool)
    (Printf.sprintf "gen %d < cmos %d gates" (M.Mapped.num_gates m_gen) (M.Mapped.num_gates m_cmos))
    true
    (float_of_int (M.Mapped.num_gates m_gen)
    < 0.6 *. float_of_int (M.Mapped.num_gates m_cmos))

(* ------------------------------------------------------------------ *)
(* Verify (exact BDD-based CEC) *)

let verify_agrees_with_simulation =
  QCheck.Test.make ~count:30 ~name:"BDD CEC agrees on random AIG mappings"
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let rng = Logic.Prng.create (Int64.of_int (seed + 77)) in
      let aig = random_aig rng ~inputs:6 ~ands:40 ~outs:3 in
      let nl = A.to_netlist aig in
      let m = M.Mapper.map (ml_gen ()) aig in
      M.Verify.equiv_netlist_mapped nl m)

let verify_detects_bugs () =
  (* Mutate a mapped netlist by swapping a cell's gate; CEC must catch it. *)
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  A.add_output aig "y" (A.mk_and aig a b);
  let nl = A.to_netlist aig in
  let m = M.Mapper.map (ml_gen ()) aig in
  Alcotest.(check bool) "correct mapping passes" true (M.Verify.equiv_netlist_mapped nl m);
  let nor2 = Cell.Genlib.find_gate Cell.Genlib.generalized_cntfet "NOR2" in
  let broken =
    {
      m with
      M.Mapped.cells =
        Array.map
          (fun (c : M.Mapped.cell) ->
            if Array.length c.M.Mapped.inputs = 2 then { c with M.Mapped.gate = nor2 } else c)
          m.M.Mapped.cells;
    }
  in
  Alcotest.(check bool) "mutated mapping fails" false
    (M.Verify.equiv_netlist_mapped nl broken)

let verify_exact_on_suite () =
  List.iter
    (fun name ->
      let entry = Circuits.Suite.find name in
      let nl = entry.Circuits.Suite.generate () in
      let aig = Aigs.Opt.resyn2rs (A.of_netlist nl) in
      Alcotest.(check bool) (name ^ " aig exact") true (M.Verify.equiv_netlist_aig nl aig);
      let m = M.Mapper.map (ml_gen ()) aig in
      Alcotest.(check bool) (name ^ " mapped exact") true (M.Verify.equiv_netlist_mapped nl m))
    [ "C1355"; "C1908" ]

let verify_too_large_guard () =
  (* The 16x16 multiplier is BDD-hostile: the node budget must trip rather
     than hang. *)
  let nl = Circuits.Multiplier.generate ~width:16 in
  let aig = A.of_netlist nl in
  Alcotest.check_raises "budget" M.Verify.Too_large (fun () ->
      ignore (M.Verify.equiv_netlist_aig ~max_nodes:50_000 nl aig))

(* ------------------------------------------------------------------ *)
(* Verilog writer *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let verilog_structural () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  A.add_output aig "y" (A.mk_xor aig a b);
  let m = M.Mapper.map (ml_gen ()) aig in
  let v = M.Verilog.write_string ~module_name:"xor_top" m in
  Alcotest.(check bool) "module header" true (contains v "module xor_top(");
  Alcotest.(check bool) "instantiates XOR2" true (contains v "XOR2 u0 (");
  Alcotest.(check bool) "output assign" true (contains v "assign y = ");
  let lib = M.Verilog.cell_library_string Cell.Genlib.generalized_cntfet in
  Alcotest.(check bool) "library has XOR2 module" true (contains lib "module XOR2(A, B, Y)");
  Alcotest.(check bool) "verilog operators" true (contains lib "assign Y = A ^ B")

let wire_load_increases_power () =
  let aig = A.create () in
  let a = A.add_input aig "a" and b = A.add_input aig "b" in
  A.add_output aig "y" (A.mk_and aig a b);
  let m = M.Mapper.map (ml_gen ()) aig in
  let base = M.Estimate.run ~patterns:4096 m in
  let loaded = M.Estimate.run ~patterns:4096 ~wire_cap_per_fanout:50e-18 m in
  Alcotest.(check bool) "wire load raises dynamic power" true
    (loaded.M.Estimate.dynamic > base.M.Estimate.dynamic);
  Alcotest.(check (float 1e-12)) "static unchanged" base.M.Estimate.static
    loaded.M.Estimate.static

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "techmap"
    [
      ( "matchlib",
        [
          Alcotest.test_case "nand2 lookup" `Quick lookup_nand2;
          Alcotest.test_case "permutation binding" `Quick lookup_respects_permutation;
          Alcotest.test_case "unknown function" `Quick lookup_unknown_function;
          Alcotest.test_case "generalized xor shapes" `Quick generalized_matches_xor_shapes;
        ] );
      ( "mapper",
        Alcotest.
          [
            test_case "xor single gate" `Quick xor_maps_to_single_gate;
            test_case "xor several gates in cmos" `Quick xor_in_cmos_needs_several_gates;
            test_case "constant outputs" `Quick constant_output;
            test_case "negated PI output" `Quick inverter_inserted_for_negated_output;
            test_case "area objective" `Slow mapping_area_objective_not_larger;
          ]
        @ qt
            [
              mapping_preserves_function "cntfet-generalized";
              mapping_preserves_function "cmos";
            ] );
      ( "verify",
        Alcotest.
          [
            test_case "detects bugs" `Quick verify_detects_bugs;
            test_case "exact on ECC rows" `Slow verify_exact_on_suite;
            test_case "too-large guard" `Slow verify_too_large_guard;
          ]
        @ qt [ verify_agrees_with_simulation ] );
      ( "verilog+wireload",
        [
          Alcotest.test_case "structural verilog" `Quick verilog_structural;
          Alcotest.test_case "wire load" `Quick wire_load_increases_power;
        ] );
      ( "mapped+estimate",
        [
          Alcotest.test_case "arrival/delay" `Quick delay_is_path_sum;
          Alcotest.test_case "estimate components" `Quick estimate_scales_with_activity;
          Alcotest.test_case "estimate deterministic" `Quick estimate_deterministic;
          suite_circuit_mapping "C1355";
          suite_circuit_mapping "C1908";
          Alcotest.test_case "gen wins on ECC" `Slow generalized_maps_fewer_gates_on_ecc;
        ] );
    ]
