module N = Nets.Netlist
module C = Circuits

let eval_bus outs lo width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    if outs.(lo + i) then v := !v lor (1 lsl i)
  done;
  !v

(* ------------------------------------------------------------------ *)
(* Arith *)

let adder_exhaustive () =
  let t = N.create () in
  let a = C.Arith.input_bus t "a" 4 and b = C.Arith.input_bus t "b" 4 in
  let sum, carry = C.Arith.ripple_adder t a b in
  C.Arith.output_bus t "s" sum;
  N.add_output t "c" carry;
  for x = 0 to 15 do
    for y = 0 to 15 do
      let ins = Array.init 8 (fun i -> if i < 4 then (x lsr i) land 1 = 1 else (y lsr (i - 4)) land 1 = 1) in
      let outs = N.eval t ins in
      let got = eval_bus outs 0 4 lor if outs.(4) then 16 else 0 in
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) (x + y) got
    done
  done

let subtractor_exhaustive () =
  let t = N.create () in
  let a = C.Arith.input_bus t "a" 4 and b = C.Arith.input_bus t "b" 4 in
  let diff, no_borrow = C.Arith.subtractor t a b in
  C.Arith.output_bus t "d" diff;
  N.add_output t "nb" no_borrow;
  for x = 0 to 15 do
    for y = 0 to 15 do
      let ins = Array.init 8 (fun i -> if i < 4 then (x lsr i) land 1 = 1 else (y lsr (i - 4)) land 1 = 1) in
      let outs = N.eval t ins in
      Alcotest.(check int) (Printf.sprintf "%d-%d" x y) ((x - y) land 15) (eval_bus outs 0 4);
      Alcotest.(check bool) "no borrow" (x >= y) outs.(4)
    done
  done

let comparators () =
  let t = N.create () in
  let a = C.Arith.input_bus t "a" 4 and b = C.Arith.input_bus t "b" 4 in
  N.add_output t "eq" (C.Arith.equal_comparator t a b);
  N.add_output t "lt" (C.Arith.less_than t a b);
  for x = 0 to 15 do
    for y = 0 to 15 do
      let ins = Array.init 8 (fun i -> if i < 4 then (x lsr i) land 1 = 1 else (y lsr (i - 4)) land 1 = 1) in
      let outs = N.eval t ins in
      Alcotest.(check bool) "eq" (x = y) outs.(0);
      Alcotest.(check bool) "lt" (x < y) outs.(1)
    done
  done

let parity_and_trees () =
  let t = N.create () in
  let x = C.Arith.input_bus t "x" 5 in
  N.add_output t "par" (C.Arith.parity_tree t x);
  N.add_output t "all" (C.Arith.and_tree t x);
  N.add_output t "any" (C.Arith.or_tree t x);
  for m = 0 to 31 do
    let ins = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
    let outs = N.eval t ins in
    let pop = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ins in
    Alcotest.(check bool) "parity" (pop land 1 = 1) outs.(0);
    Alcotest.(check bool) "and" (pop = 5) outs.(1);
    Alcotest.(check bool) "or" (pop > 0) outs.(2)
  done

let mux_tree_selects () =
  let t = N.create () in
  let sel = C.Arith.input_bus t "s" 2 in
  let choices = Array.init 4 (fun i -> C.Arith.input_bus t (Printf.sprintf "c%d" i) 2) in
  let out = C.Arith.mux_tree t sel choices in
  C.Arith.output_bus t "o" out;
  let rng = Logic.Prng.create 15L in
  for _ = 1 to 100 do
    let vals = Array.init 4 (fun _ -> Logic.Prng.int rng 4) in
    let s = Logic.Prng.int rng 4 in
    let ins = Array.make 10 false in
    ins.(0) <- s land 1 = 1;
    ins.(1) <- s lsr 1 = 1;
    Array.iteri (fun i v ->
        ins.(2 + (2 * i)) <- v land 1 = 1;
        ins.(2 + (2 * i) + 1) <- v lsr 1 = 1)
      vals;
    let outs = N.eval t ins in
    Alcotest.(check int) "selected" vals.(s) (eval_bus outs 0 2)
  done

let decoder_one_hot () =
  let t = N.create () in
  let sel = C.Arith.input_bus t "s" 3 in
  let outs = C.Arith.decoder t sel in
  Array.iteri (fun i id -> N.add_output t (Printf.sprintf "d%d" i) id) outs;
  for s = 0 to 7 do
    let ins = Array.init 3 (fun i -> (s lsr i) land 1 = 1) in
    let result = N.eval t ins in
    Array.iteri
      (fun i v -> Alcotest.(check bool) (Printf.sprintf "s=%d d%d" s i) (i = s) v)
      result
  done

(* ------------------------------------------------------------------ *)
(* Multiplier *)

let multiplier_exhaustive width =
  let t = C.Multiplier.generate ~width in
  let lim = (1 lsl width) - 1 in
  for a = 0 to lim do
    for b = 0 to lim do
      let ins =
        Array.init (2 * width) (fun i ->
            if i < width then (a lsr i) land 1 = 1 else (b lsr (i - width)) land 1 = 1)
      in
      let outs = N.eval t ins in
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (eval_bus outs 0 (2 * width))
    done
  done

let multiplier_random_16 () =
  let t = C.Multiplier.generate ~width:16 in
  let rng = Logic.Prng.create 31L in
  for _ = 1 to 200 do
    let a = Logic.Prng.int rng 65536 and b = Logic.Prng.int rng 65536 in
    let ins =
      Array.init 32 (fun i -> if i < 16 then (a lsr i) land 1 = 1 else (b lsr (i - 16)) land 1 = 1)
    in
    let outs = N.eval t ins in
    Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b) (eval_bus outs 0 32)
  done

(* ------------------------------------------------------------------ *)
(* Hamming *)

let hamming_corrects_all_single_errors () =
  List.iter
    (fun data_bits ->
      let enc = C.Hamming.encoder ~data_bits in
      let cor = C.Hamming.corrector ~data_bits in
      let r = C.Hamming.check_bits_for data_bits in
      let rng = Logic.Prng.create 53L in
      for _ = 1 to 50 do
        let d = Logic.Prng.int rng (1 lsl min data_bits 30) in
        let data = Array.init data_bits (fun i -> (d lsr i) land 1 = 1) in
        let checks = N.eval enc data in
        Alcotest.(check int) "check width" r (Array.length checks);
        for flip = -1 to data_bits - 1 do
          let received = Array.mapi (fun i v -> if i = flip then not v else v) data in
          let outs = N.eval cor (Array.append received checks) in
          Alcotest.(check int)
            (Printf.sprintf "w=%d d=%d flip=%d" data_bits d flip)
            d
            (eval_bus outs 0 data_bits);
          Alcotest.(check bool) "err flag" (flip >= 0) outs.(data_bits)
        done
      done)
    [ 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* ALU / randlogic / des / suite *)

let alu_add_op () =
  (* Feature list [Add]: single op, result = a + b (mod 2^w). *)
  let t = C.Alu.generate ~width:4 ~features:[ C.Alu.Add ] () in
  let ins_of a b op =
    (* input order: a, b, op *)
    Array.init (N.num_inputs t) (fun i ->
        if i < 4 then (a lsr i) land 1 = 1
        else if i < 8 then (b lsr (i - 4)) land 1 = 1
        else (op lsr (i - 8)) land 1 = 1)
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let outs = N.eval t (ins_of a b 0) in
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) ((a + b) land 15) (eval_bus outs 0 4);
      Alcotest.(check bool) "zero flag" ((a + b) land 15 = 0) outs.(4)
    done
  done

let generators_deterministic () =
  let once () =
    let t = C.Randlogic.generate ~inputs:10 ~gates:50 ~outputs:5 ~seed:99L () in
    let r = Nets.Sim.run_random ~seed:1L t 64 in
    Array.map (fun (_, v) -> Format.asprintf "%a" Logic.Bitvec.pp v) (Nets.Sim.output_values t r)
  in
  Alcotest.(check (array string)) "same circuit" (once ()) (once ())

let des_feistel_structure () =
  (* One round leaves the old right half in the new left half. *)
  let t = C.Des.generate ~rounds:1 ~seed:5L () in
  let rng = Logic.Prng.create 71L in
  for _ = 1 to 20 do
    let ins = Array.init (N.num_inputs t) (fun _ -> Logic.Prng.bool rng) in
    let outs = N.eval t ins in
    for i = 0 to 31 do
      Alcotest.(check bool) (Printf.sprintf "L'=R bit %d" i) ins.(32 + i) outs.(i)
    done
  done

let suite_entries_generate () =
  List.iter
    (fun (e : C.Suite.entry) ->
      let t = e.C.Suite.generate () in
      Alcotest.(check bool) (e.C.Suite.name ^ " nonempty") true (N.num_gates t > 50);
      Alcotest.(check bool) (e.C.Suite.name ^ " has outputs") true (N.num_outputs t > 0))
    C.Suite.all;
  Alcotest.(check int) "12 circuits" 12 (List.length C.Suite.all)

let suite_row_order_matches_paper () =
  let names = List.map (fun (e : C.Suite.entry) -> e.C.Suite.name) C.Suite.all in
  Alcotest.(check (list string)) "Table 1 order"
    [ "C2670"; "C1908"; "C3540"; "dalu"; "C7552"; "C6288"; "C5315"; "des"; "i10"; "t481"; "i8"; "C1355" ]
    names

let () =
  Alcotest.run "circuits"
    [
      ( "arith",
        [
          Alcotest.test_case "ripple adder" `Quick adder_exhaustive;
          Alcotest.test_case "subtractor" `Quick subtractor_exhaustive;
          Alcotest.test_case "comparators" `Quick comparators;
          Alcotest.test_case "parity/and/or trees" `Quick parity_and_trees;
          Alcotest.test_case "mux tree" `Quick mux_tree_selects;
          Alcotest.test_case "decoder one-hot" `Quick decoder_one_hot;
        ] );
      ( "multiplier",
        [
          Alcotest.test_case "3x3 exhaustive" `Quick (fun () -> multiplier_exhaustive 3);
          Alcotest.test_case "4x4 exhaustive" `Quick (fun () -> multiplier_exhaustive 4);
          Alcotest.test_case "16x16 random" `Slow multiplier_random_16;
        ] );
      ( "hamming",
        [ Alcotest.test_case "corrects single errors" `Slow hamming_corrects_all_single_errors ]
      );
      ( "suite",
        [
          Alcotest.test_case "alu add op" `Quick alu_add_op;
          Alcotest.test_case "deterministic generators" `Quick generators_deterministic;
          Alcotest.test_case "des feistel structure" `Quick des_feistel_structure;
          Alcotest.test_case "entries generate" `Slow suite_entries_generate;
          Alcotest.test_case "paper row order" `Quick suite_row_order_matches_paper;
        ] );
    ]
