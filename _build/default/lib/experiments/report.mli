(** Fixed-width table rendering for the experiment reports. *)

type t = { title : string; headers : string array; rows : string array list }

val render : Format.formatter -> t -> unit

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string
(** Compact float formatting with 1/2/3 fraction digits. *)

val pct : float -> string
(** 0.281 -> "28.1%" *)

val times : float -> string
(** 7.05 -> "7.1x" *)
