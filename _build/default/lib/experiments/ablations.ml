module A = Aigs.Aig
module G = Cell.Genlib

type mapping_stats = { gates : int; area : float; delay : float }

let stats m =
  {
    gates = Techmap.Mapped.num_gates m;
    area = Techmap.Mapped.area m;
    delay = Techmap.Mapped.delay m;
  }

let prepared circuit =
  let entry = Circuits.Suite.find circuit in
  let nl = entry.Circuits.Suite.generate () in
  let aig = A.of_netlist nl in
  (aig, Aigs.Opt.resyn2rs aig)

let a2_objective ?(circuit = "C6288") () =
  let _, opt = prepared circuit in
  let ml = Techmap.Matchlib.build G.generalized_cntfet in
  [
    ("delay-oriented", stats (Techmap.Mapper.map ~objective:Techmap.Mapper.Delay ml opt));
    ("area-oriented", stats (Techmap.Mapper.map ~objective:Techmap.Mapper.Area ml opt));
  ]

let a3_script ?(circuit = "C6288") () =
  let raw, opt = prepared circuit in
  let ml = Techmap.Matchlib.build G.generalized_cntfet in
  [
    ("raw AIG", stats (Techmap.Mapper.map ml raw));
    ("resyn2rs", stats (Techmap.Mapper.map ml opt));
  ]

let a4_cut_size ?(circuit = "C6288") () =
  let _, opt = prepared circuit in
  let ml = Techmap.Matchlib.build G.generalized_cntfet in
  List.map (fun k -> (k, stats (Techmap.Mapper.map ~k ml opt))) [ 4; 5; 6 ]

let a5_no_xor_cells ?(circuit = "C6288") () =
  let _, opt = prepared circuit in
  let full = G.generalized_cntfet in
  let reduced =
    {
      full with
      G.name = "cntfet-generalized-noxor";
      G.gates =
        List.filter (fun g -> not g.G.cell.Cell.Cells.generalized) full.G.gates;
    }
  in
  [
    ("full generalized", stats (Techmap.Mapper.map (Techmap.Matchlib.build full) opt));
    ("XOR cells removed", stats (Techmap.Mapper.map (Techmap.Matchlib.build reduced) opt));
  ]

let a6_wire_load ?(circuit = "C1355") () =
  let _, opt = prepared circuit in
  let gen = Techmap.Mapper.map (Techmap.Matchlib.build G.generalized_cntfet) opt in
  let cmos = Techmap.Mapper.map (Techmap.Matchlib.build G.cmos) opt in
  List.map
    (fun wire_aF ->
      let wire = wire_aF *. 1e-18 in
      let rg = Techmap.Estimate.run ~patterns:65536 ~wire_cap_per_fanout:wire gen in
      let rc = Techmap.Estimate.run ~patterns:65536 ~wire_cap_per_fanout:wire cmos in
      (wire_aF, rg.Techmap.Estimate.total *. 1e6, rc.Techmap.Estimate.total *. 1e6))
    [ 0.0; 10.0; 25.0; 50.0; 100.0 ]

let table ppf title rows =
  Report.render ppf
    {
      Report.title;
      headers = [| "Variant"; "Gates"; "Area (T)"; "Delay (ps)" |];
      rows =
        List.map
          (fun (name, s) ->
            [| name; string_of_int s.gates; Report.f1 s.area; Report.f1 (s.delay *. 1e12) |])
          rows;
    }

let print ppf () =
  table ppf "A2: mapping objective (C6288, generalized library)" (a2_objective ());
  table ppf "A3: optimization script before mapping (C6288)" (a3_script ());
  table ppf "A4: mapper cut size K (C6288)"
    (List.map (fun (k, s) -> (Printf.sprintf "K=%d" k, s)) (a4_cut_size ()));
  table ppf "A5: generalized library with XOR-embedding cells removed (C6288)"
    (a5_no_xor_cells ());
  Report.render ppf
    {
      Report.title = "A6: lumped wire load sweep (C1355), total power";
      headers = [| "Wire cap/fanout (aF)"; "GEN PT (uW)"; "CMOS PT (uW)"; "saving" |];
      rows =
        List.map
          (fun (w, pg, pc) ->
            [| Report.f1 w; Report.f2 pg; Report.f2 pc; Report.pct (1.0 -. (pg /. pc)) |])
          (a6_wire_load ());
    }
