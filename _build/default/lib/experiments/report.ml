type t = { title : string; headers : string array; rows : string array list }

let render ppf t =
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row)
    t.rows;
  let pad i s =
    let w = widths.(i) in
    let pad = w - String.length s in
    if i = 0 then s ^ String.make pad ' ' else String.make pad ' ' ^ s
  in
  let line c =
    Format.fprintf ppf "%s@."
      (String.concat (String.make 1 c)
         (Array.to_list (Array.map (fun w -> String.make (w + 2) c) widths)))
  in
  Format.fprintf ppf "@.== %s ==@." t.title;
  line '-';
  Format.fprintf ppf "%s@."
    (String.concat "|"
       (List.mapi (fun i h -> " " ^ pad i h ^ " ") (Array.to_list t.headers)));
  line '-';
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@."
        (String.concat "|"
           (List.mapi (fun i c -> " " ^ pad i c ^ " ") (Array.to_list row))))
    t.rows;
  line '-'

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f%%" (v *. 100.0)
let times v = Printf.sprintf "%.1fx" v
