lib/experiments/exp_dynamic.mli: Format
