lib/experiments/exp_dynamic.ml: Cell Format List Power Report
