lib/experiments/ablations.mli: Format
