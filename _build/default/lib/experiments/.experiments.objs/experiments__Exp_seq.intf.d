lib/experiments/exp_seq.mli: Format Techmap
