lib/experiments/exp_table1.ml: Aigs Array Cell Circuits Format List Printf Report Techmap
