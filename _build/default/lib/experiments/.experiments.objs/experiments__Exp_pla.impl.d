lib/experiments/exp_pla.ml: Aigs Array Cell Circuits Format List Nets Pla Printf Report Techmap
