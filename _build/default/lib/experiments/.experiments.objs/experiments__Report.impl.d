lib/experiments/report.ml: Array Format List Printf String
