lib/experiments/exp_patterns.ml: Array Cell Format List Power Printf Report Spice
