lib/experiments/exp_pla.mli: Format
