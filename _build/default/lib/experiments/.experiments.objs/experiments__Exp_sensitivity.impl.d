lib/experiments/exp_sensitivity.ml: Array Cell Float Format List Logic Power Printf Report Spice
