lib/experiments/ablations.ml: Aigs Cell Circuits List Printf Report Techmap
