lib/experiments/exp_table1.mli: Circuits Format Techmap
