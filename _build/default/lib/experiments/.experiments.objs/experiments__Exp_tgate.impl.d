lib/experiments/exp_tgate.ml: List Report Spice
