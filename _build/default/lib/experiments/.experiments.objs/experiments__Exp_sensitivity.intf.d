lib/experiments/exp_sensitivity.mli: Format
