lib/experiments/exp_patterns.mli: Format Power
