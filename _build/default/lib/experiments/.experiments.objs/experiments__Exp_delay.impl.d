lib/experiments/exp_delay.ml: Format Report Spice
