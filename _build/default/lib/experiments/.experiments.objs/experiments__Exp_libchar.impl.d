lib/experiments/exp_libchar.ml: Cell Format List Power Report Spice
