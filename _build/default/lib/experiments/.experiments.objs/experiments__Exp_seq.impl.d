lib/experiments/exp_seq.ml: Cell Circuits Format List Report Techmap
