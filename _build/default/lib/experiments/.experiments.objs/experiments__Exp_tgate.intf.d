lib/experiments/exp_tgate.mli: Format
