lib/experiments/exp_libchar.mli: Format Power
