lib/experiments/exp_delay.mli: Format
