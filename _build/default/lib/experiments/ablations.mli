(** Ablation studies for the design choices called out in DESIGN.md.

    A2 — mapping objective: delay-oriented vs area-flow-oriented covering.
    A3 — optimization script: raw AIG vs resyn2rs before mapping.
    A4 — cut size K: mapper quality at K = 4 / 5 / 6.
    A5 — expressive power in isolation: the generalized library with every
         XOR-embedding cell removed collapses onto the conventional library,
         separating the technology benefit from the design-style benefit.
    A6 — interconnect: the paper ignores wire capacitance; sweeping a lumped
         per-fanout wire load shows whether the generalized-vs-CMOS power
         ranking survives realistic interconnect. *)

type mapping_stats = { gates : int; area : float; delay : float }

val a2_objective : ?circuit:string -> unit -> (string * mapping_stats) list
val a3_script : ?circuit:string -> unit -> (string * mapping_stats) list
val a4_cut_size : ?circuit:string -> unit -> (int * mapping_stats) list
val a5_no_xor_cells : ?circuit:string -> unit -> (string * mapping_stats) list

val a6_wire_load : ?circuit:string -> unit -> (float * float * float) list
(** [(wire_cap_aF, PT_generalized_uW, PT_cmos_uW)] per sweep point. *)

val print : Format.formatter -> unit -> unit
(** Run all four ablations on the default circuit (C6288, the multiplier,
    where the effects are largest) and render them. *)
