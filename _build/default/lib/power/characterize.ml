module G = Cell.Genlib
module Cells = Cell.Cells

type gate_char = {
  gate : G.gate;
  alpha : float;
  c_load : float;
  avg_ioff : float;
  avg_ig : float;
  power : Powermodel.components;
  ioff_by_vector : float array;
  delay : float;
  area : float;
}

type library_char = {
  library : G.t;
  gates : gate_char list;
  avg_alpha : float;
  avg_total_power : float;
  avg_dynamic : float;
  avg_static : float;
  avg_gate_leak : float;
  pattern_count : int;
}

let average a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let characterize_gate (lib : G.t) (gate : G.gate) =
  let pins = gate.G.cell.Cells.pins in
  let tech = gate.G.tech in
  let patterns = Pattern.analyze gate.G.impl ~pins in
  let ioff_by_vector = Leakage.gate_ioff tech patterns in
  let ig_by_vector = Leakage.gate_ig tech patterns in
  let alpha = Activity.gate_alpha (Cells.tt gate.G.cell) in
  let c_load = G.gate_load gate in
  let avg_ioff = average ioff_by_vector in
  let avg_ig = average ig_by_vector in
  let power =
    Powermodel.make ~alpha ~c_load ~ioff:avg_ioff ~ig:avg_ig ~vdd:tech.Spice.Tech.vdd ()
  in
  ignore lib;
  {
    gate;
    alpha;
    c_load;
    avg_ioff;
    avg_ig;
    power;
    ioff_by_vector;
    delay = gate.G.delay;
    area = gate.G.area;
  }

let characterize (lib : G.t) =
  let gates = List.map (characterize_gate lib) lib.G.gates in
  let mean f =
    List.fold_left (fun acc g -> acc +. f g) 0.0 gates /. float_of_int (List.length gates)
  in
  let census =
    Pattern.census
      (List.map (fun g -> (g.G.impl, g.G.cell.Cells.pins)) lib.G.gates)
  in
  {
    library = lib;
    gates;
    avg_alpha = mean (fun g -> g.alpha);
    avg_total_power = mean (fun g -> Powermodel.total g.power);
    avg_dynamic = mean (fun g -> g.power.Powermodel.dynamic);
    avg_static = mean (fun g -> g.power.Powermodel.static);
    avg_gate_leak = mean (fun g -> g.power.Powermodel.gate_leak);
    pattern_count = List.length census;
  }

let compare_totals a b =
  let find_in chars name =
    List.find_opt (fun g -> g.gate.G.cell.Cells.name = name) chars
  in
  let shared =
    List.filter_map
      (fun ga ->
        match find_in b.gates ga.gate.G.cell.Cells.name with
        | Some gb -> Some (Powermodel.total ga.power, Powermodel.total gb.power)
        | None -> None)
      a.gates
  in
  let savings = List.map (fun (pa, pb) -> 1.0 -. (pa /. pb)) shared in
  List.fold_left ( +. ) 0.0 savings /. float_of_int (List.length savings)

let pattern_census_all () =
  let amb =
    List.map (fun c -> (c.Cells.ambipolar, c.Cells.pins)) Cells.all
  in
  let sta =
    List.filter_map
      (fun c -> Option.map (fun impl -> (impl, c.Cells.pins)) c.Cells.static)
      Cells.all
  in
  Pattern.census (amb @ sta)
