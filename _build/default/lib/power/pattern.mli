(** I_off pattern extraction and classification (Section 3.2 of the paper,
    after Gu & Elmasry).

    For a gate and an input vector, exactly one of the pull-up/pull-down
    networks is off; the subthreshold leakage flows through that off network
    with the full supply across it. The pattern of that off network — after
    shorting on-devices and deleting off-devices bypassed by parallel
    on-paths — determines I_off. Many input vectors share a pattern, so only
    the distinct patterns need circuit simulation: the paper reports 26
    across its whole library. *)

type t =
  | Unit of int
      (** [Unit k]: [k] identical unit off-devices in parallel (a single off
          transistor is [Unit 1]; an off transmission gate contributes its
          two parallel devices) *)
  | Series of t list  (** sorted, flattened, length >= 2 *)
  | Parallel of t list  (** sorted, flattened, length >= 2 *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. [3u] for three parallel units, [ser(u,u,u)] for a stack. *)

val of_network : Cell.Network.network -> (int -> bool) -> t option
(** [of_network net env] reduces the network under the assignment: on
    devices become shorts, parallel branches containing a conducting path
    disappear. [None] if the whole network conducts (it is the on network —
    no leakage pattern). *)

type gate_patterns = {
  off_pattern : t array;  (** per input vector, pattern of the main off network *)
  extra_unit_offs : int;
      (** off devices of internal inverters (complement generators and the
          output inverter), each an independent unit leak per vector *)
  on_devices : int array;  (** per vector: conducting devices, inverters included *)
  off_devices : int array;  (** per vector: non-conducting devices, inverters included *)
}

val analyze : Cell.Network.impl -> pins:int -> gate_patterns
(** The paper's "gate topology analyzer": walk all [2^pins] input vectors of
    the implementation. *)

val census : (Cell.Network.impl * int) list -> t list
(** Distinct off-network patterns across a library of (implementation, pin
    count) pairs, sorted; the paper's "26 different I_off patterns". *)
