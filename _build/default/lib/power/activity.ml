module T = Logic.Truthtable

let gate_alpha tt =
  let total = 1 lsl T.nvars tt in
  let ones = T.count_ones tt in
  let zeros = total - ones in
  float_of_int (min ones zeros) /. float_of_int total

let toggle_alpha tt =
  let total = 1 lsl T.nvars tt in
  let p = float_of_int (T.count_ones tt) /. float_of_int total in
  2.0 *. p *. (1.0 -. p)

let library_average cells =
  let sum =
    List.fold_left (fun acc cell -> acc +. gate_alpha (Cell.Cells.tt cell)) 0.0 cells
  in
  sum /. float_of_int (List.length cells)
