(** The paper's power model, Eq. (1)-(5):

    P_T = P_D + P_SC + P_S + P_G, with
    P_D = alpha · C · f · V_DD², P_SC = 0.15 · P_D,
    P_S = I_off · V_DD, P_G = I_g · V_DD. *)

type components = {
  dynamic : float;
  short_circuit : float;
  static : float;
  gate_leak : float;
}

val total : components -> float

val dynamic : alpha:float -> c_load:float -> ?f:float -> vdd:float -> unit -> float
val short_circuit_of_dynamic : float -> float
val static_power : ioff:float -> vdd:float -> float
val gate_leak_power : ig:float -> vdd:float -> float

val make :
  alpha:float -> c_load:float -> ioff:float -> ig:float -> ?f:float -> vdd:float -> unit -> components

val edp : total_power:float -> delay:float -> ?f:float -> unit -> float
(** Energy-delay product as reported in Table 1: (P_T / f) · delay, J·s. *)

val pp : Format.formatter -> components -> unit
