lib/power/powermodel.mli: Format
