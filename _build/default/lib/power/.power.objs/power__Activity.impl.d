lib/power/activity.ml: Cell List Logic
