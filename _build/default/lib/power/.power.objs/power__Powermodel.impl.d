lib/power/powermodel.ml: Format Spice
