lib/power/leakage.mli: Pattern Spice
