lib/power/leakage.ml: Array Hashtbl List Pattern Printf Spice
