lib/power/characterize.mli: Cell Pattern Powermodel
