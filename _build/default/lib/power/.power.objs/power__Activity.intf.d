lib/power/activity.mli: Cell Logic
