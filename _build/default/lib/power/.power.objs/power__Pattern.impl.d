lib/power/pattern.ml: Array Cell Format Int List Set Stdlib
