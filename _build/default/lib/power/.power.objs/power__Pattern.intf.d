lib/power/pattern.mli: Cell Format
