lib/power/characterize.ml: Activity Array Cell Leakage List Option Pattern Powermodel Spice
