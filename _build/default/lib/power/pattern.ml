module N = Cell.Network

type t = Unit of int | Series of t list | Parallel of t list

let rec compare a b =
  match (a, b) with
  | Unit x, Unit y -> Stdlib.compare x y
  | Unit _, (Series _ | Parallel _) -> -1
  | (Series _ | Parallel _), Unit _ -> 1
  | Series x, Series y | Parallel x, Parallel y -> compare_list x y
  | Series _, Parallel _ -> -1
  | Parallel _, Series _ -> 1

and compare_list x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: xs, b :: ys ->
      let c = compare a b in
      if c <> 0 then c else compare_list xs ys

let equal a b = compare a b = 0

let rec pp ppf = function
  | Unit 1 -> Format.pp_print_string ppf "u"
  | Unit k -> Format.fprintf ppf "%du" k
  | Series parts ->
      Format.fprintf ppf "ser(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp)
        parts
  | Parallel parts ->
      Format.fprintf ppf "par(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp)
        parts

(* Canonicalizing constructors. *)
let series parts =
  let parts =
    List.concat_map (function Series inner -> inner | (Unit _ | Parallel _) as p -> [ p ]) parts
  in
  match List.sort compare parts with [] -> Unit 0 | [ p ] -> p | ps -> Series ps

let parallel parts =
  let parts =
    List.concat_map
      (function Parallel inner -> inner | (Unit _ | Series _) as p -> [ p ])
      parts
  in
  (* Merge parallel unit devices into a single weighted unit. *)
  let units, rest =
    List.partition_map (function Unit k -> Left k | (Series _ | Parallel _) as p -> Right p) parts
  in
  let unit_total = List.fold_left ( + ) 0 units in
  let parts = if unit_total > 0 then Unit unit_total :: rest else rest in
  match List.sort compare parts with [] -> Unit 0 | [ p ] -> p | ps -> Parallel ps

type reduced = Short | Pat of t

let of_network net env =
  let rec reduce = function
    | N.Dev d ->
        if N.conducts env (N.Dev d) then Short
        else
          Pat
            (match d with
            | N.Fixed_n _ | N.Fixed_p _ -> Unit 1
            | N.Tgate _ -> Unit 2)
    | N.Ser children ->
        let reduced = List.map reduce children in
        let pats =
          List.filter_map (function Short -> None | Pat p -> Some p) reduced
        in
        if pats = [] then Short else Pat (series pats)
    | N.Par children ->
        let reduced = List.map reduce children in
        if List.exists (function Short -> true | Pat _ -> false) reduced then Short
        else
          Pat
            (parallel
               (List.map (function Pat p -> p | Short -> assert false) reduced))
  in
  match reduce net with Short -> None | Pat p -> Some p

(* ------------------------------------------------------------------ *)

type gate_patterns = {
  off_pattern : t array;
  extra_unit_offs : int;
  on_devices : int array;
  off_devices : int array;
}

let count_devices env net =
  let on = ref 0 and off = ref 0 in
  let rec go = function
    | N.Dev d ->
        let n = match d with N.Fixed_n _ | N.Fixed_p _ -> 1 | N.Tgate _ -> 2 in
        if N.conducts env (N.Dev d) then on := !on + n else off := !off + n
    | N.Ser children | N.Par children -> List.iter go children
  in
  go net;
  (!on, !off)

let analyze (impl : N.impl) ~pins =
  let num_vectors = 1 lsl pins in
  let complemented =
    let module S = Set.Make (Int) in
    S.cardinal
      (S.union
         (S.of_list (N.complemented_pins impl.N.pull_up))
         (S.of_list (N.complemented_pins impl.N.pull_down)))
  in
  let num_inverters = complemented + if impl.N.output_inverter then 1 else 0 in
  let off_pattern = Array.make num_vectors (Unit 0) in
  let on_devices = Array.make num_vectors 0 in
  let off_devices = Array.make num_vectors 0 in
  for v = 0 to num_vectors - 1 do
    let env i = (v lsr i) land 1 = 1 in
    let pu_on = N.conducts env impl.N.pull_up in
    let off_net = if pu_on then impl.N.pull_down else impl.N.pull_up in
    (match of_network off_net env with
    | Some p -> off_pattern.(v) <- p
    | None -> failwith "Pattern.analyze: both networks conduct");
    let on_pu, off_pu = count_devices env impl.N.pull_up in
    let on_pd, off_pd = count_devices env impl.N.pull_down in
    (* Every internal inverter has one on and one off device. *)
    on_devices.(v) <- on_pu + on_pd + num_inverters;
    off_devices.(v) <- off_pu + off_pd + num_inverters
  done;
  { off_pattern; extra_unit_offs = num_inverters; on_devices; off_devices }

let census impls =
  let module S = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end) in
  let acc = ref S.empty in
  List.iter
    (fun (impl, pins) ->
      let patterns = analyze impl ~pins in
      Array.iter (fun p -> acc := S.add p !acc) patterns.off_pattern;
      if patterns.extra_unit_offs > 0 then acc := S.add (Unit 1) !acc)
    impls;
  S.elements !acc
