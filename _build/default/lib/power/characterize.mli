(** Library characterization — the simulation flow of Fig. 5.

    For every gate of a mapping library: the gate topology analyzer maps
    input vectors to I_off/I_g patterns and computes the activity factor;
    the circuit simulator quantifies each distinct pattern once; averaging
    over input vectors yields the static components; the activity factor
    and the fanout-3 load give the dynamic components. *)

type gate_char = {
  gate : Cell.Genlib.gate;
  alpha : float;  (** combinational activity factor *)
  c_load : float;  (** characterization load, F *)
  avg_ioff : float;  (** A, averaged over input vectors *)
  avg_ig : float;  (** A, averaged over input vectors *)
  power : Powermodel.components;  (** at f = 1 GHz, V_DD = 0.9 V *)
  ioff_by_vector : float array;
  delay : float;  (** s *)
  area : float;  (** unit transistors *)
}

type library_char = {
  library : Cell.Genlib.t;
  gates : gate_char list;
  avg_alpha : float;
  avg_total_power : float;
  avg_dynamic : float;
  avg_static : float;
  avg_gate_leak : float;
  pattern_count : int;  (** distinct I_off patterns across this library *)
}

val characterize_gate : Cell.Genlib.t -> Cell.Genlib.gate -> gate_char
val characterize : Cell.Genlib.t -> library_char

val compare_totals : library_char -> library_char -> float
(** [compare_totals a b]: mean over the cells present in both libraries of
    the relative total-power saving of [a] versus [b] (0.28 = "dissipates
    28 % less power"). *)

val pattern_census_all : unit -> Pattern.t list
(** Distinct patterns across the whole generalized library (ambipolar
    realizations) plus the conventional static realizations — the paper's
    library-wide count. *)
