type components = {
  dynamic : float;
  short_circuit : float;
  static : float;
  gate_leak : float;
}

let total p = p.dynamic +. p.short_circuit +. p.static +. p.gate_leak

let dynamic ~alpha ~c_load ?(f = Spice.Tech.frequency) ~vdd () =
  alpha *. c_load *. f *. vdd *. vdd

let short_circuit_of_dynamic pd = Spice.Tech.short_circuit_fraction *. pd
let static_power ~ioff ~vdd = ioff *. vdd
let gate_leak_power ~ig ~vdd = ig *. vdd

let make ~alpha ~c_load ~ioff ~ig ?(f = Spice.Tech.frequency) ~vdd () =
  let pd = dynamic ~alpha ~c_load ~f ~vdd () in
  {
    dynamic = pd;
    short_circuit = short_circuit_of_dynamic pd;
    static = static_power ~ioff ~vdd;
    gate_leak = gate_leak_power ~ig ~vdd;
  }

let edp ~total_power ~delay ?(f = Spice.Tech.frequency) () = total_power /. f *. delay

let pp ppf p =
  Format.fprintf ppf "PD=%.3g PSC=%.3g PS=%.3g PG=%.3g PT=%.3g" p.dynamic
    p.short_circuit p.static p.gate_leak (total p)
