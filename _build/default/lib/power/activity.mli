(** Activity factors (Section 3 of the paper).

    For stand-alone gates the paper uses the combinational definition: the
    activity factor is the fraction of input combinations whose output
    polarity differs from the majority polarity — 25 % for 2-input NAND/NOR
    (one combination out of four) and 50 % for 2-input XOR. For mapped
    netlists, switching activity comes from random-pattern simulation
    ({!Nets.Sim.toggle_rate}) instead. *)

val gate_alpha : Logic.Truthtable.t -> float
(** [min(#offset, #onset) / 2^n] for the gate's output function. *)

val toggle_alpha : Logic.Truthtable.t -> float
(** Temporal definition for reference: probability that two consecutive
    uniform input vectors produce different outputs, [2 p (1-p)]. *)

val library_average : Cell.Cells.t list -> float
(** Mean combinational activity factor across the given cells. *)
