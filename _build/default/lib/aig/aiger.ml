exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Our internal literals already use the AIGER convention (2*node + compl)
   with inputs numbered 1..I in creation order, so translation is direct as
   long as AND nodes stay contiguous after the inputs — which Aig
   guarantees. *)

let write_string aig =
  let buf = Buffer.create 4096 in
  let num_inputs = Aig.num_inputs aig in
  let num_ands = Aig.num_ands aig in
  let outputs = Aig.outputs aig in
  let maxvar = Aig.num_nodes aig - 1 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" maxvar num_inputs (Array.length outputs) num_ands);
  for i = 1 to num_inputs do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * i))
  done;
  Array.iter (fun (_, lit) -> Buffer.add_string buf (Printf.sprintf "%d\n" lit)) outputs;
  for node = num_inputs + 1 to Aig.num_nodes aig - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d\n" (2 * node) (Aig.fanin0 aig node) (Aig.fanin1 aig node))
  done;
  for i = 1 to num_inputs do
    Buffer.add_string buf (Printf.sprintf "i%d %s\n" (i - 1) (Aig.input_name aig i))
  done;
  Array.iteri
    (fun o (name, _) -> Buffer.add_string buf (Printf.sprintf "o%d %s\n" o name))
    outputs;
  Buffer.contents buf

let read_string text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | [] -> fail "empty AIGER file"
  | header :: rest -> (
      let ints s =
        String.split_on_char ' ' s
        |> List.filter (fun w -> w <> "")
        |> List.map (fun w -> try int_of_string w with Failure _ -> fail "bad integer %S" w)
      in
      match String.split_on_char ' ' header with
      | "aag" :: _ -> (
          match ints (String.sub header 3 (String.length header - 3)) with
          | [ _maxvar; num_inputs; num_latches; num_outputs; num_ands ] ->
              if num_latches <> 0 then fail "latches are not supported";
              let rest = Array.of_list rest in
              if Array.length rest < num_inputs + num_outputs + num_ands then
                fail "truncated AIGER body";
              let aig = Aig.create () in
              (* Provisional names; overridden by the symbol table. *)
              let names = Array.init num_inputs (fun i -> Printf.sprintf "i%d" i) in
              let out_names = Array.init num_outputs (fun o -> Printf.sprintf "o%d" o) in
              (* symbol table *)
              for k = num_inputs + num_outputs + num_ands to Array.length rest - 1 do
                let line = String.trim rest.(k) in
                match String.index_opt line ' ' with
                | Some sp when String.length line > 1 ->
                    let tag = String.sub line 0 sp in
                    let name = String.sub line (sp + 1) (String.length line - sp - 1) in
                    let idx () =
                      try int_of_string (String.sub tag 1 (String.length tag - 1))
                      with Failure _ -> fail "bad symbol tag %S" tag
                    in
                    if tag.[0] = 'i' && idx () < num_inputs then names.(idx ()) <- name
                    else if tag.[0] = 'o' && idx () < num_outputs then out_names.(idx ()) <- name
                | Some _ | None -> ()
              done;
              let input_lits = Array.map (fun name -> Aig.add_input aig name) names in
              (* Inputs must be the literals 2, 4, ... in order. *)
              Array.iteri
                (fun i line ->
                  if i < num_inputs then
                    match ints line with
                    | [ l ] ->
                        if l <> input_lits.(i) then fail "non-contiguous input literal %d" l
                    | _ -> fail "bad input line %S" line)
                rest;
              (* AND gates: definitions may be assumed topologically ordered
                 (standard for aag writers; we check fanins exist). *)
              let translate = Hashtbl.create 64 in
              Hashtbl.replace translate 0 Aig.const_false;
              Hashtbl.replace translate 1 Aig.const_true;
              Array.iter
                (fun lit ->
                  Hashtbl.replace translate lit lit;
                  Hashtbl.replace translate (lit + 1) (lit + 1))
                input_lits;
              let lookup l =
                match Hashtbl.find_opt translate l with
                | Some x -> x
                | None -> fail "undefined literal %d" l
              in
              for k = 0 to num_ands - 1 do
                let line = rest.(num_inputs + num_outputs + k) in
                match ints line with
                | [ lhs; rhs0; rhs1 ] ->
                    let result = Aig.mk_and aig (lookup rhs0) (lookup rhs1) in
                    Hashtbl.replace translate lhs result;
                    Hashtbl.replace translate (lhs + 1) (Aig.lit_not result)
                | _ -> fail "bad AND line %S" line
              done;
              for o = 0 to num_outputs - 1 do
                let line = rest.(num_inputs + o) in
                match ints line with
                | [ l ] -> Aig.add_output aig out_names.(o) (lookup l)
                | _ -> fail "bad output line %S" line
              done;
              aig
          | _ -> fail "bad AIGER header %S" header)
      | _ -> fail "not an ASCII AIGER file (expected 'aag')")

let write_file path aig =
  let oc = open_out path in
  output_string oc (write_string aig);
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  read_string s
