(** AIGER interchange format (ASCII variant, [aag]).

    The de-facto exchange format for And-Inverter Graphs between
    model checkers and synthesis tools. Combinational subset: no latches.
    Literal encoding matches AIGER: variable [v] is literal [2v], its
    complement [2v+1], constant false is 0. *)

exception Parse_error of string

val write_string : Aig.t -> string
val read_string : string -> Aig.t

val write_file : string -> Aig.t -> unit
val read_file : string -> Aig.t
