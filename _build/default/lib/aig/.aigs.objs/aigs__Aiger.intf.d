lib/aig/aiger.mli: Aig
