lib/aig/aig.ml: Array Format Hashtbl Lazy List Logic Nets
