lib/aig/opt.ml: Aig Array Cut List Logic Option
