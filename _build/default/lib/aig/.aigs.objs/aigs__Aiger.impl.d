lib/aig/aiger.ml: Aig Array Buffer Hashtbl List Printf String
