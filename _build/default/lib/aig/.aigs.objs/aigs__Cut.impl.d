lib/aig/cut.ml: Aig Array Hashtbl Int List Set
