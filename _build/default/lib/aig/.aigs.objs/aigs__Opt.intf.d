lib/aig/opt.mli: Aig
