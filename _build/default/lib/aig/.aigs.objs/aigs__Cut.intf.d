lib/aig/cut.mli: Aig Logic
