type cut = { leaves : int array }

(* Merge two sorted leaf arrays; None if the union exceeds k. *)
let merge k a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let rec go i j n =
    if i = la && j = lb then Some (Array.sub out 0 n)
    else if n = k then None
    else begin
      let v, i', j' =
        if j = lb || (i < la && a.(i) < b.(j)) then (a.(i), i + 1, j)
        else if i = la || b.(j) < a.(i) then (b.(j), i, j + 1)
        else (a.(i), i + 1, j + 1)
      in
      out.(n) <- v;
      go i' j' (n + 1)
    end
  in
  go 0 0 0

let subset a b =
  (* is a a subset of b? both sorted *)
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i = la then true
    else if j = lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let enumerate t ~k ~max_cuts =
  let n = Aig.num_nodes t in
  let cuts = Array.make n [||] in
  for node = 0 to n - 1 do
    let trivial = { leaves = [| node |] } in
    if not (Aig.is_and t node) then cuts.(node) <- [| trivial |]
    else begin
      let f0 = Aig.node_of_lit (Aig.fanin0 t node) in
      let f1 = Aig.node_of_lit (Aig.fanin1 t node) in
      let acc = ref [] in
      Array.iter
        (fun c0 ->
          Array.iter
            (fun c1 ->
              match merge k c0.leaves c1.leaves with
              | None -> ()
              | Some leaves -> acc := { leaves } :: !acc)
            cuts.(f1))
        cuts.(f0);
      (* Deduplicate and drop dominated cuts (supersets of another cut). *)
      let all = List.sort_uniq compare !acc in
      let irredundant =
        List.filter
          (fun c ->
            not
              (List.exists (fun c' -> c' <> c && subset c'.leaves c.leaves) all))
          all
      in
      let by_size = List.sort (fun a b -> compare (Array.length a.leaves) (Array.length b.leaves)) irredundant in
      let kept =
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | c :: rest -> c :: take (n - 1) rest
        in
        take (max_cuts - 1) by_size
      in
      cuts.(node) <- Array.of_list (kept @ [ trivial ])
    end
  done;
  cuts

let cut_tt t node cut =
  Aig.cone_tt t node (Array.map (fun leaf -> Aig.lit_of_node leaf false) cut.leaves)

let mffc_size t fanouts node cut =
  let module S = Set.Make (Int) in
  let leaves = Array.fold_left (fun s x -> S.add x s) S.empty cut.leaves in
  (* Collect cone nodes (ANDs strictly above the cut). *)
  let cone = Hashtbl.create 16 in
  let rec collect nd =
    if (not (S.mem nd leaves)) && Aig.is_and t nd && not (Hashtbl.mem cone nd) then begin
      Hashtbl.replace cone nd ();
      collect (Aig.node_of_lit (Aig.fanin0 t nd));
      collect (Aig.node_of_lit (Aig.fanin1 t nd))
    end
  in
  collect node;
  (* Iteratively remove nodes whose references all come from removed nodes:
     start from the root (external refs irrelevant: the root itself is being
     replaced) and propagate. *)
  let removed = Hashtbl.create 16 in
  let remaining_refs = Hashtbl.create 16 in
  Hashtbl.iter (fun nd () -> Hashtbl.replace remaining_refs nd fanouts.(nd)) cone;
  let rec drop nd =
    if Hashtbl.mem cone nd && not (Hashtbl.mem removed nd) then begin
      Hashtbl.replace removed nd ();
      let release child =
        if Hashtbl.mem cone child then begin
          let r = Hashtbl.find remaining_refs child - 1 in
          Hashtbl.replace remaining_refs child r;
          if r = 0 then drop child
        end
      in
      release (Aig.node_of_lit (Aig.fanin0 t nd));
      release (Aig.node_of_lit (Aig.fanin1 t nd))
    end
  in
  drop node;
  Hashtbl.length removed
