module T = Logic.Truthtable
module B = Logic.Bitvec

type lit = int

type t = {
  mutable fanin0 : int array;
  mutable fanin1 : int array;
  mutable num : int; (* nodes allocated: constant + inputs + ands *)
  strash : (int * int, int) Hashtbl.t;
  mutable ninputs : int;
  mutable names : string array;
  mutable outs : (string * lit) list; (* reversed *)
}

let const_false = 0
let const_true = 1
let lit_of_node node compl = (2 * node) lor if compl then 1 else 0
let node_of_lit lit = lit lsr 1
let is_complemented lit = lit land 1 = 1
let lit_not lit = lit lxor 1

let create () =
  {
    fanin0 = Array.make 256 (-1);
    fanin1 = Array.make 256 (-1);
    num = 1 (* constant node *);
    strash = Hashtbl.create 1024;
    ninputs = 0;
    names = Array.make 16 "";
    outs = [];
  }

let grow t =
  if t.num = Array.length t.fanin0 then begin
    let n = 2 * t.num in
    let f0 = Array.make n (-1) and f1 = Array.make n (-1) in
    Array.blit t.fanin0 0 f0 0 t.num;
    Array.blit t.fanin1 0 f1 0 t.num;
    t.fanin0 <- f0;
    t.fanin1 <- f1
  end

let num_nodes t = t.num
let num_inputs t = t.ninputs
let num_ands t = t.num - 1 - t.ninputs
let num_outputs t = List.length t.outs
let is_input t node = node >= 1 && node <= t.ninputs
let is_and t node = node > t.ninputs && node < t.num

let add_input t name =
  if num_ands t > 0 then invalid_arg "Aig.add_input: after AND nodes";
  grow t;
  let node = t.num in
  t.num <- t.num + 1;
  t.ninputs <- t.ninputs + 1;
  if t.ninputs > Array.length t.names then begin
    let bigger = Array.make (2 * Array.length t.names) "" in
    Array.blit t.names 0 bigger 0 (Array.length t.names);
    t.names <- bigger
  end;
  t.names.(t.ninputs - 1) <- name;
  lit_of_node node false

let input_lits t = Array.init t.ninputs (fun i -> lit_of_node (i + 1) false)
let input_name t node = t.names.(node - 1)

let mk_and t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const_false then const_false
  else if a = const_true then b
  else if a = b then a
  else if a = lit_not b then const_false
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some node -> lit_of_node node false
    | None ->
        grow t;
        let node = t.num in
        t.num <- t.num + 1;
        t.fanin0.(node) <- a;
        t.fanin1.(node) <- b;
        Hashtbl.replace t.strash (a, b) node;
        lit_of_node node false

let mk_or t a b = lit_not (mk_and t (lit_not a) (lit_not b))

let mk_xor t a b =
  (* a ^ b = !(a & b) & (a | b) *)
  let nand = lit_not (mk_and t a b) in
  let either = mk_or t a b in
  mk_and t nand either

let mk_mux t s a b = mk_or t (mk_and t (lit_not s) a) (mk_and t s b)

let mk_and_list t lits = List.fold_left (mk_and t) const_true lits
let mk_or_list t lits = List.fold_left (mk_or t) const_false lits

let add_output t name lit = t.outs <- (name, lit) :: t.outs
let outputs t = Array.of_list (List.rev t.outs)

let fanin0 t node =
  assert (is_and t node);
  t.fanin0.(node)

let fanin1 t node =
  assert (is_and t node);
  t.fanin1.(node)

let levels t =
  let lv = Array.make t.num 0 in
  for node = t.ninputs + 1 to t.num - 1 do
    lv.(node) <- 1 + max lv.(node_of_lit t.fanin0.(node)) lv.(node_of_lit t.fanin1.(node))
  done;
  lv

let depth t =
  let lv = levels t in
  List.fold_left (fun acc (_, lit) -> max acc lv.(node_of_lit lit)) 0 t.outs

let fanout_counts t =
  let fc = Array.make t.num 0 in
  for node = t.ninputs + 1 to t.num - 1 do
    fc.(node_of_lit t.fanin0.(node)) <- fc.(node_of_lit t.fanin0.(node)) + 1;
    fc.(node_of_lit t.fanin1.(node)) <- fc.(node_of_lit t.fanin1.(node)) + 1
  done;
  List.iter (fun (_, lit) -> fc.(node_of_lit lit) <- fc.(node_of_lit lit) + 1) t.outs;
  fc

let checkpoint t = t.num

let rollback t ck =
  assert (ck >= t.ninputs + 1 && ck <= t.num);
  for node = ck to t.num - 1 do
    Hashtbl.remove t.strash (t.fanin0.(node), t.fanin1.(node))
  done;
  t.num <- ck

let build_expr t e leaves =
  let module E = Logic.Expr in
  let rec go = function
    | E.Const b -> if b then const_true else const_false
    | E.Var i -> leaves.(i)
    | E.Not e -> lit_not (go e)
    | E.And children -> mk_and_list t (List.map go children)
    | E.Or children -> mk_or_list t (List.map go children)
    | E.Xor children ->
        List.fold_left (fun acc e -> mk_xor t acc (go e)) const_false children
  in
  go e

let cone_tt t root leaves =
  let n = Array.length leaves in
  assert (n <= 16);
  let tts = Hashtbl.create 32 in
  Array.iteri
    (fun i lit ->
      let v = T.var n i in
      Hashtbl.replace tts (node_of_lit lit) (if is_complemented lit then T.lognot v else v))
    leaves;
  let rec go node =
    match Hashtbl.find_opt tts node with
    | Some tt -> tt
    | None ->
        if node = 0 then T.const n false
        else if is_input t node then
          invalid_arg "Aig.cone_tt: cone escapes leaves"
        else begin
          let lit_tt lit =
            let tt = go (node_of_lit lit) in
            if is_complemented lit then T.lognot tt else tt
          in
          let tt = T.logand (lit_tt t.fanin0.(node)) (lit_tt t.fanin1.(node)) in
          Hashtbl.replace tts node tt;
          tt
        end
  in
  go root

let of_netlist nl =
  let module N = Nets.Netlist in
  let t = create () in
  let lits = Array.make (N.size nl) const_false in
  Array.iter (fun id -> lits.(id) <- add_input t (N.input_name nl id)) (N.inputs nl);
  N.iter_nodes nl (fun id op fanins ->
      let arg i = lits.(fanins.(i)) in
      let args () = Array.to_list (Array.map (fun f -> lits.(f)) fanins) in
      match op with
      | N.Input -> ()
      | N.Constant b -> lits.(id) <- (if b then const_true else const_false)
      | N.Buf -> lits.(id) <- arg 0
      | N.Not -> lits.(id) <- lit_not (arg 0)
      | N.And -> lits.(id) <- mk_and_list t (args ())
      | N.Or -> lits.(id) <- mk_or_list t (args ())
      | N.Xor -> lits.(id) <- List.fold_left (mk_xor t) const_false (args ())
      | N.Nand -> lits.(id) <- lit_not (mk_and_list t (args ()))
      | N.Nor -> lits.(id) <- lit_not (mk_or_list t (args ()))
      | N.Xnor -> lits.(id) <- lit_not (List.fold_left (mk_xor t) const_false (args ()))
      | N.Mux -> lits.(id) <- mk_mux t (arg 0) (arg 1) (arg 2)
      | N.Maj ->
          lits.(id) <-
            mk_or t
              (mk_and t (arg 0) (arg 1))
              (mk_or t (mk_and t (arg 0) (arg 2)) (mk_and t (arg 1) (arg 2)))
      | N.Lut tt ->
          let e = Logic.Expr.factor_tt tt in
          lits.(id) <- build_expr t e (Array.map (fun f -> lits.(f)) fanins));
  Array.iter (fun (name, id) -> add_output t name lits.(id)) (N.outputs nl);
  t

let to_netlist t =
  let module N = Nets.Netlist in
  let nl = N.create () in
  let ids = Array.make t.num (-1) in
  let const_id = lazy (N.add_node nl (N.Constant false) [||]) in
  for i = 1 to t.ninputs do
    ids.(i) <- N.add_input nl t.names.(i - 1)
  done;
  let lit_node lit =
    let node = node_of_lit lit in
    let id = if node = 0 then Lazy.force const_id else ids.(node) in
    if is_complemented lit then N.add_node nl N.Not [| id |] else id
  in
  for node = t.ninputs + 1 to t.num - 1 do
    ids.(node) <- N.add_node nl N.And [| lit_node t.fanin0.(node); lit_node t.fanin1.(node) |]
  done;
  List.iter (fun (name, lit) -> N.add_output nl name (lit_node lit)) (List.rev t.outs);
  nl

let simulate t stimulus =
  assert (Array.length stimulus = t.ninputs);
  let npat = if t.ninputs = 0 then 0 else B.length stimulus.(0) in
  let values = Array.make t.num (B.create npat) in
  for i = 1 to t.ninputs do
    values.(i) <- stimulus.(i - 1)
  done;
  let lit_val lit =
    let v = values.(node_of_lit lit) in
    if is_complemented lit then B.lognot v else v
  in
  for node = t.ninputs + 1 to t.num - 1 do
    values.(node) <- B.logand (lit_val t.fanin0.(node)) (lit_val t.fanin1.(node))
  done;
  values

let cleanup t =
  let reachable = Array.make t.num false in
  reachable.(0) <- true;
  let rec mark node =
    if not reachable.(node) then begin
      reachable.(node) <- true;
      if is_and t node then begin
        mark (node_of_lit t.fanin0.(node));
        mark (node_of_lit t.fanin1.(node))
      end
    end
  in
  List.iter (fun (_, lit) -> mark (node_of_lit lit)) t.outs;
  let fresh = create () in
  let map = Array.make t.num const_false in
  for i = 1 to t.ninputs do
    (* keep all inputs to preserve the interface *)
    map.(i) <- add_input fresh t.names.(i - 1)
  done;
  let map_lit lit =
    let base = map.(node_of_lit lit) in
    if is_complemented lit then lit_not base else base
  in
  for node = t.ninputs + 1 to t.num - 1 do
    if reachable.(node) then
      map.(node) <- mk_and fresh (map_lit t.fanin0.(node)) (map_lit t.fanin1.(node))
  done;
  List.iter (fun (name, lit) -> add_output fresh name (map_lit lit)) (List.rev t.outs);
  fresh

let copy t =
  {
    fanin0 = Array.copy t.fanin0;
    fanin1 = Array.copy t.fanin1;
    num = t.num;
    strash = Hashtbl.copy t.strash;
    ninputs = t.ninputs;
    names = Array.copy t.names;
    outs = t.outs;
  }

let pp_stats ppf t =
  Format.fprintf ppf "aig: inputs=%d outputs=%d ands=%d depth=%d" t.ninputs
    (num_outputs t) (num_ands t) (depth t)
