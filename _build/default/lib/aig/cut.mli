(** K-feasible cut enumeration on AIGs.

    A cut of node [n] is a set of nodes (leaves) such that every path from
    [n] to a primary input passes through a leaf. Cuts drive both the
    rewriting passes and the technology mapper. *)

type cut = { leaves : int array }
(** Leaf node ids, sorted ascending. The trivial cut of [n] is [{n}]. *)

val enumerate : Aig.t -> k:int -> max_cuts:int -> cut array array
(** [enumerate t ~k ~max_cuts] computes for every node a set of cuts with at
    most [k] leaves, keeping at most [max_cuts] cuts per node (smallest
    first; the trivial cut is always included and stored last). Constant and
    input nodes get only their trivial cut. *)

val cut_tt : Aig.t -> int -> cut -> Logic.Truthtable.t
(** Function of the node in terms of the cut leaves (variable [i] = leaf
    [i]). *)

val mffc_size : Aig.t -> int array -> int -> cut -> int
(** [mffc_size t fanouts node cut] counts the AND nodes in the cone of
    [node] above the cut that are referenced only from inside that cone —
    the nodes that would die if [node] were re-expressed directly in terms
    of the cut leaves. [fanouts] comes from {!Aig.fanout_counts}. *)
