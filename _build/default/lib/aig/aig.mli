(** Structurally hashed And-Inverter Graphs.

    The subject-graph representation used by the optimizer and the technology
    mapper (our substitute for ABC's AIG package). Node 0 is the constant
    false; primary inputs follow; AND nodes come last, in topological order.
    A {e literal} is [2 * node + complement_bit]. *)

type t

type lit = int

val const_false : lit
val const_true : lit

val lit_of_node : int -> bool -> lit
val node_of_lit : lit -> int
val is_complemented : lit -> bool
val lit_not : lit -> lit

val create : unit -> t

val add_input : t -> string -> lit
(** All inputs must be added before the first AND node. *)

val mk_and : t -> lit -> lit -> lit
(** Structurally hashed conjunction with constant/idempotence folding. *)

val mk_or : t -> lit -> lit -> lit
val mk_xor : t -> lit -> lit -> lit
val mk_mux : t -> lit -> lit -> lit -> lit
(** [mk_mux t s a b] is [if s then b else a]. *)

val mk_and_list : t -> lit list -> lit
val mk_or_list : t -> lit list -> lit

val add_output : t -> string -> lit -> unit

val num_nodes : t -> int
(** Constant + inputs + ANDs. *)

val num_inputs : t -> int
val num_ands : t -> int
val num_outputs : t -> int

val input_lits : t -> lit array
val input_name : t -> int -> string
val outputs : t -> (string * lit) array

val fanin0 : t -> int -> lit
val fanin1 : t -> int -> lit
(** Fanins of an AND node (node id in [num_inputs+1 .. num_nodes-1]). *)

val is_and : t -> int -> bool
val is_input : t -> int -> bool

val levels : t -> int array
(** Per-node logic depth (inputs at 0). *)

val depth : t -> int
(** Max level over output nodes. *)

val fanout_counts : t -> int array
(** Number of AND-node and output references to each node. *)

val checkpoint : t -> int
val rollback : t -> int -> unit
(** [rollback t ck] discards every AND node created after [checkpoint t]
    returned [ck]. No surviving node may reference the discarded ones. *)

val build_expr : t -> Logic.Expr.t -> lit array -> lit
(** [build_expr t e leaves] instantiates expression [e] with [Var i] bound to
    [leaves.(i)]. *)

val cone_tt : t -> int -> lit array -> Logic.Truthtable.t
(** [cone_tt t node leaves] is the function of [node] in terms of the leaf
    literals (every path from [node] to an input passes through a leaf).
    At most 16 leaves. *)

val of_netlist : Nets.Netlist.t -> t
val to_netlist : t -> Nets.Netlist.t

val simulate : t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
(** Per-node simulation values given one stimulus vector per input. *)

val cleanup : t -> t
(** Copy, keeping only nodes reachable from the outputs. *)

val copy : t -> t

val pp_stats : Format.formatter -> t -> unit
