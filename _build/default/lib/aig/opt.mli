(** AIG optimization passes (our substitute for ABC's [resyn2rs] pieces).

    Every pass is functional: it analyzes the input AIG and rebuilds a fresh
    structurally hashed AIG, so no in-place surgery is needed. Passes never
    change the circuit function (checked by the test suite with random and
    exhaustive co-simulation). *)

val balance : Aig.t -> Aig.t
(** Delay-driven balancing: maximal single-fanout AND trees are rebuilt as
    minimum-depth trees (lowest-level operands combined first). *)

val rewrite : ?zero_cost:bool -> ?k:int -> ?max_cuts:int -> Aig.t -> Aig.t
(** Cut-based rewriting: for every node, enumerate [k]-feasible cuts
    (default [k = 4]), re-express the cut function as a factored form and
    accept the replacement when it saves AIG nodes compared to the
    maximum-fanout-free cone of the cut ([zero_cost] also accepts
    size-neutral replacements, which perturbs the structure like ABC's
    [rw -z]). *)

val refactor : ?k:int -> ?max_cuts:int -> Aig.t -> Aig.t
(** Same engine with larger cuts (default [k = 8]), corresponding to ABC's
    [refactor]. *)

val resyn2rs : Aig.t -> Aig.t
(** Optimization script modeled after ABC's [resyn2rs]: interleaved balance,
    rewrite and refactor passes, iterated while the node count improves. *)

val node_count_script : Aig.t -> int * int
(** [(ands, depth)] after {!resyn2rs}; convenience for reporting. *)
