module E = Logic.Expr

(* ------------------------------------------------------------------ *)
(* Balance                                                             *)

let balance t =
  let fresh = Aig.create () in
  let n = Aig.num_nodes t in
  let ninputs = Aig.num_inputs t in
  let map = Array.make n Aig.const_false in
  for i = 1 to ninputs do
    map.(i) <- Aig.add_input fresh (Aig.input_name t i)
  done;
  let fanouts = Aig.fanout_counts t in
  let map_lit lit =
    let base = map.(Aig.node_of_lit lit) in
    if Aig.is_complemented lit then Aig.lit_not base else base
  in
  (* Collect the operand literals of the maximal AND tree rooted at [node]:
     descend through non-complemented single-fanout AND fanins. *)
  let rec operands acc lit ~root =
    let nd = Aig.node_of_lit lit in
    if
      (not (Aig.is_complemented lit))
      && Aig.is_and t nd
      && (root || fanouts.(nd) = 1)
    then
      operands (operands acc (Aig.fanin0 t nd) ~root:false) (Aig.fanin1 t nd) ~root:false
    else lit :: acc
  in
  (* Incrementally tracked levels of the fresh AIG (inputs at 0). *)
  let lvl = ref (Array.make 1024 0) in
  let get_lvl node = if node < Array.length !lvl then !lvl.(node) else 0 in
  let set_lvl node v =
    if node >= Array.length !lvl then begin
      let bigger = Array.make (2 * max node (Array.length !lvl)) 0 in
      Array.blit !lvl 0 bigger 0 (Array.length !lvl);
      lvl := bigger
    end;
    !lvl.(node) <- v
  in
  let mk_and_leveled a b =
    let r = Aig.mk_and fresh a b in
    let nd = Aig.node_of_lit r in
    if Aig.is_and fresh nd then
      set_lvl nd (1 + max (get_lvl (Aig.node_of_lit a)) (get_lvl (Aig.node_of_lit b)));
    r
  in
  let lv lit = get_lvl (Aig.node_of_lit lit) in
  for node = ninputs + 1 to n - 1 do
    let ops = operands [] (Aig.lit_of_node node false) ~root:true in
    let mapped = List.map map_lit ops in
    (* Build a balanced tree: repeatedly AND the two lowest-level operands. *)
    let rec reduce = function
      | [] -> Aig.const_true
      | [ x ] -> x
      | items ->
          let sorted = List.sort (fun a b -> compare (lv a) (lv b)) items in
          (match sorted with
          | a :: b :: rest -> reduce (mk_and_leveled a b :: rest)
          | [ _ ] | [] -> assert false)
    in
    map.(node) <- reduce mapped
  done;
  Array.iter (fun (name, lit) -> Aig.add_output fresh name (map_lit lit)) (Aig.outputs t);
  Aig.cleanup fresh

(* ------------------------------------------------------------------ *)
(* Rewrite / refactor                                                  *)

(* AIG node cost of a factored expression: XOR pairs cost 3 ANDs. *)
let rec aig_cost = function
  | E.Const _ | E.Var _ -> 0
  | E.Not e -> aig_cost e
  | E.And children | E.Or children ->
      List.length children - 1 + List.fold_left (fun a e -> a + aig_cost e) 0 children
  | E.Xor children ->
      (3 * (List.length children - 1))
      + List.fold_left (fun a e -> a + aig_cost e) 0 children

let cut_rebuild ~zero_cost ~k ~max_cuts t =
  let n = Aig.num_nodes t in
  let ninputs = Aig.num_inputs t in
  let cuts = Cut.enumerate t ~k ~max_cuts in
  let fanouts = Aig.fanout_counts t in
  (* Pass 1: pick a replacement per node (or none). *)
  let choice : (Cut.cut * E.t) option array = Array.make n None in
  for node = ninputs + 1 to n - 1 do
    let best = ref None in
    Array.iter
      (fun (cut : Cut.cut) ->
        if Array.length cut.leaves >= 2 && cut.leaves <> [| node |] then begin
          let tt = Cut.cut_tt t node cut in
          let expr = E.factor_tt tt in
          let cost = aig_cost expr in
          let saved = Cut.mffc_size t fanouts node cut in
          let gain = saved - cost in
          let accept = if zero_cost then gain >= 0 else gain > 0 in
          if accept then
            match !best with
            | Some (_, _, best_gain) when best_gain >= gain -> ()
            | Some _ | None -> best := Some (cut, expr, gain)
        end)
      cuts.(node);
    choice.(node) <- Option.map (fun (cut, expr, _) -> (cut, expr)) !best
  done;
  (* Pass 2: lazy rebuild from the outputs. *)
  let fresh = Aig.create () in
  let map = Array.make n (-1) in
  map.(0) <- Aig.const_false;
  for i = 1 to ninputs do
    map.(i) <- Aig.add_input fresh (Aig.input_name t i)
  done;
  let rec build node =
    if map.(node) >= 0 then map.(node)
    else begin
      let result =
        match choice.(node) with
        | Some (cut, expr) ->
            let leaves = Array.map (fun leaf -> build_lit (Aig.lit_of_node leaf false)) cut.leaves in
            Aig.build_expr fresh expr leaves
        | None ->
            Aig.mk_and fresh (build_lit (Aig.fanin0 t node)) (build_lit (Aig.fanin1 t node))
      in
      map.(node) <- result;
      result
    end
  and build_lit lit =
    let base = build (Aig.node_of_lit lit) in
    if Aig.is_complemented lit then Aig.lit_not base else base
  in
  Array.iter (fun (name, lit) -> Aig.add_output fresh name (build_lit lit)) (Aig.outputs t);
  Aig.cleanup fresh

let rewrite ?(zero_cost = false) ?(k = 4) ?(max_cuts = 8) t =
  cut_rebuild ~zero_cost ~k ~max_cuts t

let refactor ?(k = 8) ?(max_cuts = 4) t = cut_rebuild ~zero_cost:false ~k ~max_cuts t

(* ------------------------------------------------------------------ *)
(* Script                                                              *)

let resyn2rs t =
  let step f t = f t in
  let once t =
    t |> step balance |> step rewrite |> step refactor |> step balance
    |> step (rewrite ~zero_cost:true)
    |> step balance
  in
  let rec iterate t best_ands rounds =
    if rounds = 0 then t
    else begin
      let t' = once t in
      let ands = Aig.num_ands t' in
      if ands < best_ands then iterate t' ands (rounds - 1) else t
    end
  in
  let t0 = once t in
  iterate t0 (Aig.num_ands t0) 3

let node_count_script t =
  let t' = resyn2rs t in
  (Aig.num_ands t', Aig.depth t')
