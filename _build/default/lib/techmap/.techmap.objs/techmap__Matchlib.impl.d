lib/techmap/matchlib.ml: Array Cell Hashtbl List Logic Option
