lib/techmap/verilog.ml: Array Buffer Cell Char Format List Logic Mapped Printf String
