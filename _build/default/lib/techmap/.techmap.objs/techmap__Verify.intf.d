lib/techmap/verify.mli: Aigs Mapped Nets
