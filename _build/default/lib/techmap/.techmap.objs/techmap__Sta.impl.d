lib/techmap/sta.ml: Array Cell Format List Mapped
