lib/techmap/verilog.mli: Cell Mapped
