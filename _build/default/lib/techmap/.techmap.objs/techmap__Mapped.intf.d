lib/techmap/mapped.mli: Cell Format Logic Nets
