lib/techmap/seqmap.mli: Estimate Format Mapped Matchlib Nets
