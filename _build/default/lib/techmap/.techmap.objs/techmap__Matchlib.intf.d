lib/techmap/matchlib.mli: Cell Logic
