lib/techmap/sta.mli: Format Mapped
