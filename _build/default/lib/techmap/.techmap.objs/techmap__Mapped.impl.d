lib/techmap/mapped.ml: Array Cell Format Hashtbl Int64 List Logic Nets Option Spice
