lib/techmap/estimate.mli: Format Mapped
