lib/techmap/mapper.ml: Aigs Array Cell Hashtbl List Logic Mapped Matchlib Printf
