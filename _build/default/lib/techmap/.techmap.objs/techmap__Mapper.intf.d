lib/techmap/mapper.mli: Aigs Mapped Matchlib
