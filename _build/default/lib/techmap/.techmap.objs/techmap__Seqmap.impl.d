lib/techmap/seqmap.ml: Aigs Array Cell Estimate Format Hashtbl List Logic Mapped Mapper Nets Power Spice
