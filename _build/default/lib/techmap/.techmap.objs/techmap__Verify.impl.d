lib/techmap/verify.ml: Aigs Array Cell Hashtbl Lazy List Logic Mapped Nets
