lib/techmap/estimate.ml: Array Cell Format Hashtbl Logic Mapped Power Spice
