(** Mapping and power estimation of sequential circuits.

    The combinational core is technology-mapped as usual (register Q
    outputs become mapped primary inputs, D inputs become extra primary
    outputs, so the register boundary survives covering). Power is then
    estimated by cycle-accurate simulation of the {e mapped} netlist — the
    state distribution, not a uniform-input assumption, drives the toggle
    rates — and the register model adds clock-tree load, internal
    switching, and register leakage. *)

type report = {
  gates : int;  (** combinational cells *)
  registers : int;
  comb_area : float;  (** transistors *)
  reg_area : float;
  min_period : float;  (** critical path + register clk-to-q and setup, s *)
  comb_power : Estimate.report;  (** combinational components at 1 GHz *)
  clock_power : float;  (** W: clock net + internal clock-derived switching *)
  reg_internal_power : float;  (** W: state-toggle internal switching *)
  reg_leak_power : float;  (** W *)
  total : float;  (** W, everything *)
  epc : float;  (** energy per clock cycle, J *)
}

val map_seq : Matchlib.t -> Nets.Seq.t -> Mapped.t * (string * int * int) list
(** Map the core; returns the mapped netlist plus, per register, its name
    and the indices of its Q net and D net in the mapped netlist. *)

val estimate : ?cycles:int -> ?seed:int64 -> Matchlib.t -> Nets.Seq.t -> report
(** Default 10_000 cycles x 64 streams (= the paper's 640 K samples). *)

val pp_report : Format.formatter -> report -> unit
