(** Static timing analysis on mapped netlists.

    Computes arrival times, required times and slacks under a target clock
    period, and extracts the critical path as a list of cell instances —
    the per-circuit "Delay" column of Table 1 with full reporting depth. *)

type path_element = {
  cell_index : int;  (** index into [Mapped.cells] *)
  gate_name : string;
  through_pin : int;  (** the input pin on the critical path (-1 at PIs) *)
  arrival : float;
}

type report = {
  period : float;  (** analysis clock period, s *)
  critical_delay : float;
  worst_slack : float;
  violating_endpoints : (string * float) list;  (** PO name, slack *)
  critical_path : path_element list;  (** from inputs to the worst PO *)
  slack_histogram : (float * int) list;
      (** (upper bound of bin, endpoint count), 10 bins over observed range *)
}

val analyze : ?period:float -> Mapped.t -> report
(** Default period: the critical delay itself (zero worst slack). *)

val pp_report : Format.formatter -> report -> unit
