module B = Logic.Bitvec
module G = Cell.Genlib

type report = {
  gates : int;
  registers : int;
  comb_area : float;
  reg_area : float;
  min_period : float;
  comb_power : Estimate.report;
  clock_power : float;
  reg_internal_power : float;
  reg_leak_power : float;
  total : float;
  epc : float;
}

let map_seq ml (seq : Nets.Seq.t) =
  let comb = Nets.Seq.comb seq in
  let regs = Nets.Seq.registers seq in
  (* Expose every register's D input as an extra primary output so covering
     preserves the register boundary. Guard against repeated calls. *)
  let existing =
    Array.to_list (Nets.Netlist.outputs comb) |> List.map fst
  in
  List.iter
    (fun (name, _, d) ->
      let po = name ^ ".d" in
      if not (List.mem po existing) then Nets.Netlist.add_output comb po d)
    regs;
  let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist comb) in
  let mapped = Mapper.map ml aig in
  let find_pi name =
    match Array.find_opt (fun (n, _) -> n = name) mapped.Mapped.pi_nets with
    | Some (_, net) -> net
    | None -> failwith ("Seqmap: missing Q input " ^ name)
  in
  let find_po name =
    match Array.find_opt (fun (n, _) -> n = name) mapped.Mapped.po_nets with
    | Some (_, net) -> net
    | None -> failwith ("Seqmap: missing D output " ^ name)
  in
  let reg_nets =
    List.map
      (fun (name, _, _) -> (name, find_pi (name ^ ".q"), find_po (name ^ ".d")))
      regs
  in
  (mapped, reg_nets)

let estimate ?(cycles = 10_000) ?(seed = 21L) ml (seq : Nets.Seq.t) =
  let mapped, reg_nets = map_seq ml seq in
  let lib = mapped.Mapped.lib in
  let tech = lib.G.tech in
  let vdd = tech.Spice.Tech.vdd in
  let f = Spice.Tech.frequency in
  let dff = Cell.Register.for_library lib in
  let streams = 64 in
  let rng = Logic.Prng.create seed in
  (* Cycle-accurate simulation of the mapped netlist. *)
  let nregs = List.length reg_nets in
  let q_nets = Array.of_list (List.map (fun (_, q, _) -> q) reg_nets) in
  let d_nets = Array.of_list (List.map (fun (_, _, d) -> d) reg_nets) in
  let is_q = Hashtbl.create 16 in
  Array.iteri (fun i q -> Hashtbl.replace is_q q i) q_nets;
  let state = Array.init nregs (fun _ -> B.create streams) in
  let num_nets = mapped.Mapped.num_nets in
  let toggles = Array.make num_nets 0 in
  let ones = Array.make num_nets 0 in
  let state_toggles = ref 0 in
  let prev = Array.make num_nets (B.create streams) in
  for cycle = 0 to cycles - 1 do
    let stimulus =
      Array.map
        (fun (_, net) ->
          match Hashtbl.find_opt is_q net with
          | Some ri -> state.(ri)
          | None ->
              let v = B.create streams in
              B.fill_random rng v;
              v)
        mapped.Mapped.pi_nets
    in
    let values = Mapped.simulate mapped stimulus in
    for net = 0 to num_nets - 1 do
      ones.(net) <- ones.(net) + B.popcount values.(net);
      if cycle > 0 then
        toggles.(net) <- toggles.(net) + B.popcount (B.logxor values.(net) prev.(net));
      prev.(net) <- values.(net)
    done;
    (* Clock edge. *)
    for ri = 0 to nregs - 1 do
      let next = values.(d_nets.(ri)) in
      state_toggles := !state_toggles + B.popcount (B.logxor next state.(ri));
      state.(ri) <- next
    done
  done;
  let samples_t = float_of_int (max 1 ((cycles - 1) * streams)) in
  let samples_p = float_of_int (cycles * streams) in
  let toggle net = float_of_int toggles.(net) /. samples_t in
  let prob net = float_of_int ones.(net) /. samples_p in
  (* Combinational power under the sequential stimulus. *)
  let loads = Mapped.net_loads mapped in
  Array.iter (fun q -> loads.(q) <- loads.(q) +. dff.Cell.Register.q_drive_cap) q_nets;
  Array.iter (fun d -> loads.(d) <- loads.(d) +. dff.Cell.Register.d_cap) d_nets;
  let dynamic = ref 0.0 in
  for net = 0 to num_nets - 1 do
    dynamic := !dynamic +. (toggle net *. loads.(net) *. f *. vdd *. vdd)
  done;
  let static, gate_leak = Estimate.static_components mapped ~probs:prob in
  let short_circuit = Spice.Tech.short_circuit_fraction *. !dynamic in
  let comb_total = !dynamic +. short_circuit +. static +. gate_leak in
  let delay = Mapped.delay mapped in
  let comb_power =
    {
      Estimate.gates = Mapped.num_gates mapped;
      area = Mapped.area mapped;
      delay;
      dynamic = !dynamic;
      short_circuit;
      static;
      gate_leak;
      total = comb_total;
      edp = Power.Powermodel.edp ~total_power:comb_total ~delay ();
    }
  in
  (* Register contributions. *)
  let nregs_f = float_of_int nregs in
  let clock_power =
    nregs_f
    *. (dff.Cell.Register.clock_cap +. dff.Cell.Register.clock_internal_cap)
    *. f *. vdd *. vdd
  in
  let state_alpha = float_of_int !state_toggles /. samples_t /. max 1.0 nregs_f in
  let reg_internal_power =
    nregs_f *. state_alpha *. dff.Cell.Register.internal_cap *. f *. vdd *. vdd
  in
  let reg_leak_power = nregs_f *. dff.Cell.Register.leakage *. vdd in
  let total = comb_total +. clock_power +. reg_internal_power +. reg_leak_power in
  let reg_delay_margin = 4.0 *. tech.Spice.Tech.tau in
  {
    gates = Mapped.num_gates mapped;
    registers = nregs;
    comb_area = Mapped.area mapped;
    reg_area = nregs_f *. float_of_int dff.Cell.Register.transistors;
    min_period = delay +. reg_delay_margin;
    comb_power;
    clock_power;
    reg_internal_power;
    reg_leak_power;
    total;
    epc = total /. f;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "seq: %d gates + %d regs, area %g + %g T, min period %.1f ps (%.2f GHz max)@."
    r.gates r.registers r.comb_area r.reg_area (r.min_period *. 1e12)
    (1.0 /. r.min_period /. 1e9);
  Format.fprintf ppf
    "  comb %.3g uW (PD %.3g, PS %.3g) + clock %.3g uW + reg switch %.3g uW + reg leak %.3g uW = %.3g uW@."
    (r.comb_power.Estimate.total *. 1e6)
    (r.comb_power.Estimate.dynamic *. 1e6)
    (r.comb_power.Estimate.static *. 1e6)
    (r.clock_power *. 1e6) (r.reg_internal_power *. 1e6) (r.reg_leak_power *. 1e6)
    (r.total *. 1e6);
  Format.fprintf ppf "  energy per cycle %.3g fJ@." (r.epc *. 1e15)
