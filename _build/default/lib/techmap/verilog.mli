(** Structural Verilog netlist writer for mapped circuits.

    Emits one module instantiating the library cells by name (with a
    companion behavioural cell library so the output is simulable by any
    Verilog tool), the standard hand-off format after technology mapping. *)

val write_string : ?module_name:string -> Mapped.t -> string
(** The mapped netlist as a structural module. *)

val cell_library_string : Cell.Genlib.t -> string
(** Behavioural `module` definitions (one per library gate, with an
    [assign] of the gate function) matching the instances emitted by
    {!write_string}. *)

val write_file : ?module_name:string -> string -> Mapped.t -> unit
(** Writes the structural module followed by the cell library. *)
