(** Exact combinational equivalence checking via BDDs.

    Complements the random co-simulation of {!Mapped.check}: builds the BDD
    of every primary output of the reference netlist and of the mapped (or
    optimized) implementation under a shared variable order and compares
    them for physical equality. Exact but subject to BDD blow-up: a node
    budget aborts gracefully on BDD-hostile structures (e.g. large
    multipliers). *)

exception Too_large

val equiv_netlist_mapped : ?max_nodes:int -> Nets.Netlist.t -> Mapped.t -> bool
(** Inputs and outputs are matched by name. Raises [Too_large] if the BDD
    manager exceeds [max_nodes] (default 2_000_000), [Failure] on name
    mismatches. *)

val equiv_netlist_aig : ?max_nodes:int -> Nets.Netlist.t -> Aigs.Aig.t -> bool

val equiv_netlists : ?max_nodes:int -> Nets.Netlist.t -> Nets.Netlist.t -> bool

(** {1 SAT-based checking}

    A second exact engine, complementary to BDDs: the reference and the
    implementation are Tseitin-encoded into one CNF miter and the CDCL
    solver ({!Logic.Sat}) proves the outputs can never differ. Handles
    BDD-hostile structures; effort is bounded by a conflict budget. *)

type sat_verdict = Equivalent | Not_equivalent | Inconclusive

val sat_equiv_netlist_mapped :
  ?max_conflicts:int -> Nets.Netlist.t -> Mapped.t -> sat_verdict
(** Default budget: 2_000_000 conflicts. *)

val sat_equiv_netlist_aig :
  ?max_conflicts:int -> Nets.Netlist.t -> Aigs.Aig.t -> sat_verdict
