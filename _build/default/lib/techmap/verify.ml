module B = Logic.Bdd
module N = Nets.Netlist

exception Too_large

let guard m max_nodes = if B.node_count m > max_nodes then raise Too_large

(* Variable index per input name, shared across both sides. *)
let var_assignment names =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun i name -> Hashtbl.replace tbl name i) names;
  tbl

let netlist_bdds m max_nodes vars nl =
  let values = Array.make (N.size nl) (B.zero m) in
  Array.iter
    (fun id ->
      let name = N.input_name nl id in
      match Hashtbl.find_opt vars name with
      | Some i -> values.(id) <- B.var m i
      | None -> failwith ("Verify: unassigned input " ^ name))
    (N.inputs nl);
  N.iter_nodes nl (fun id op fanins ->
      guard m max_nodes;
      let arg i = values.(fanins.(i)) in
      let fold f init =
        Array.fold_left (fun acc fi -> f acc values.(fi)) init fanins
      in
      match op with
      | N.Input -> ()
      | N.Constant b -> values.(id) <- (if b then B.one m else B.zero m)
      | N.Buf -> values.(id) <- arg 0
      | N.Not -> values.(id) <- B.not_ m (arg 0)
      | N.And -> values.(id) <- fold (B.and_ m) (B.one m)
      | N.Or -> values.(id) <- fold (B.or_ m) (B.zero m)
      | N.Xor -> values.(id) <- fold (B.xor m) (B.zero m)
      | N.Nand -> values.(id) <- B.not_ m (fold (B.and_ m) (B.one m))
      | N.Nor -> values.(id) <- B.not_ m (fold (B.or_ m) (B.zero m))
      | N.Xnor -> values.(id) <- B.not_ m (fold (B.xor m) (B.zero m))
      | N.Mux -> values.(id) <- B.ite m (arg 0) (arg 2) (arg 1)
      | N.Maj ->
          values.(id) <-
            B.or_ m
              (B.and_ m (arg 0) (arg 1))
              (B.or_ m (B.and_ m (arg 0) (arg 2)) (B.and_ m (arg 1) (arg 2)))
      | N.Lut tt ->
          let k = Array.length fanins in
          let acc = ref (B.zero m) in
          for minterm = 0 to (1 lsl k) - 1 do
            if Logic.Truthtable.eval tt minterm then begin
              let cube = ref (B.one m) in
              for i = 0 to k - 1 do
                let lit =
                  if (minterm lsr i) land 1 = 1 then arg i else B.not_ m (arg i)
                in
                cube := B.and_ m !cube lit
              done;
              acc := B.or_ m !acc !cube
            end
          done;
          values.(id) <- !acc);
  Array.map (fun (name, id) -> (name, values.(id))) (N.outputs nl)

let mapped_bdds m max_nodes vars (mp : Mapped.t) =
  let values = Array.make mp.Mapped.num_nets (B.zero m) in
  Array.iter
    (fun (name, net) ->
      match Hashtbl.find_opt vars name with
      | Some i -> values.(net) <- B.var m i
      | None -> failwith ("Verify: unassigned input " ^ name))
    mp.Mapped.pi_nets;
  Array.iter
    (fun (net, b) -> values.(net) <- (if b then B.one m else B.zero m))
    mp.Mapped.const_nets;
  Array.iter
    (fun (c : Mapped.cell) ->
      guard m max_nodes;
      let tt = Cell.Cells.tt c.Mapped.gate.Cell.Genlib.cell in
      let k = Array.length c.Mapped.inputs in
      let acc = ref (B.zero m) in
      List.iter
        (fun (cube : Logic.Truthtable.cube) ->
          let prod = ref (B.one m) in
          for i = 0 to k - 1 do
            if (cube.Logic.Truthtable.pos lsr i) land 1 = 1 then
              prod := B.and_ m !prod values.(c.Mapped.inputs.(i))
            else if (cube.Logic.Truthtable.neg lsr i) land 1 = 1 then
              prod := B.and_ m !prod (B.not_ m values.(c.Mapped.inputs.(i)))
          done;
          acc := B.or_ m !acc !prod)
        (Logic.Truthtable.isop tt);
      values.(c.Mapped.output) <- !acc)
    mp.Mapped.cells;
  Array.map (fun (name, net) -> (name, values.(net))) mp.Mapped.po_nets

let aig_bdds m max_nodes vars aig =
  let module A = Aigs.Aig in
  let n = A.num_nodes aig in
  let values = Array.make n (B.zero m) in
  Array.iter
    (fun lit ->
      let node = A.node_of_lit lit in
      let name = A.input_name aig node in
      match Hashtbl.find_opt vars name with
      | Some i -> values.(node) <- B.var m i
      | None -> failwith ("Verify: unassigned input " ^ name))
    (A.input_lits aig);
  let lit_bdd lit =
    let v = values.(A.node_of_lit lit) in
    if A.is_complemented lit then B.not_ m v else v
  in
  for node = A.num_inputs aig + 1 to n - 1 do
    guard m max_nodes;
    values.(node) <- B.and_ m (lit_bdd (A.fanin0 aig node)) (lit_bdd (A.fanin1 aig node))
  done;
  Array.map (fun (name, lit) -> (name, lit_bdd lit)) (A.outputs aig)

let compare_outputs ref_outs got_outs =
  Array.length ref_outs = Array.length got_outs
  && Array.for_all
       (fun (name, f) ->
         match Array.find_opt (fun (n, _) -> n = name) got_outs with
         | Some (_, g) -> B.equal f g
         | None -> failwith ("Verify: missing output " ^ name))
       ref_outs

let reference_vars nl =
  var_assignment
    (Array.to_list (Array.map (fun id -> N.input_name nl id) (N.inputs nl)))

let equiv_netlist_mapped ?(max_nodes = 2_000_000) nl mp =
  let m = B.manager () in
  let vars = reference_vars nl in
  compare_outputs (netlist_bdds m max_nodes vars nl) (mapped_bdds m max_nodes vars mp)

let equiv_netlist_aig ?(max_nodes = 2_000_000) nl aig =
  let m = B.manager () in
  let vars = reference_vars nl in
  compare_outputs (netlist_bdds m max_nodes vars nl) (aig_bdds m max_nodes vars aig)

let equiv_netlists ?(max_nodes = 2_000_000) a b =
  let m = B.manager () in
  let vars = reference_vars a in
  compare_outputs (netlist_bdds m max_nodes vars a) (netlist_bdds m max_nodes vars b)

(* ------------------------------------------------------------------ *)
(* SAT-based checking                                                  *)

module Sat = Logic.Sat

type sat_verdict = Equivalent | Not_equivalent | Inconclusive

(* Tseitin encoding helpers: force [f] to equal the function of [args]
   given by the truth table, one implication clause per minterm (cells have
   at most 6 pins, so at most 64 clauses each). *)
let encode_tt solver tt args f =
  let k = Array.length args in
  for minterm = 0 to (1 lsl k) - 1 do
    let antecedent =
      List.init k (fun i ->
          if (minterm lsr i) land 1 = 1 then -args.(i) else args.(i))
    in
    let consequent = if Logic.Truthtable.eval tt minterm then f else -f in
    Sat.add_clause solver (consequent :: antecedent)
  done

let encode_and2 solver a b f =
  Sat.add_clause solver [ -f; a ];
  Sat.add_clause solver [ -f; b ];
  Sat.add_clause solver [ f; -a; -b ]

let encode_netlist solver vars nl =
  let module N = Nets.Netlist in
  let values = Array.make (N.size nl) 0 in
  Array.iter
    (fun id ->
      match Hashtbl.find_opt vars (N.input_name nl id) with
      | Some v -> values.(id) <- v
      | None -> failwith "Verify.sat: unassigned input")
    (N.inputs nl);
  N.iter_nodes nl (fun id op fanins ->
      match op with
      | N.Input -> ()
      | N.Buf -> values.(id) <- values.(fanins.(0))
      | N.Not -> values.(id) <- -values.(fanins.(0))
      | N.Constant b ->
          let f = Sat.new_var solver in
          Sat.add_clause solver [ (if b then f else -f) ];
          values.(id) <- f
      | N.And | N.Or | N.Xor | N.Nand | N.Nor | N.Xnor | N.Mux | N.Maj | N.Lut _ ->
          let f = Sat.new_var solver in
          values.(id) <- f;
          let args = Array.map (fun fi -> values.(fi)) fanins in
          (match op with
          | N.And ->
              Array.iter (fun a -> Sat.add_clause solver [ -f; a ]) args;
              Sat.add_clause solver (f :: Array.to_list (Array.map (fun a -> -a) args))
          | N.Nand ->
              Array.iter (fun a -> Sat.add_clause solver [ f; a ]) args;
              Sat.add_clause solver (-f :: Array.to_list (Array.map (fun a -> -a) args))
          | N.Or ->
              Array.iter (fun a -> Sat.add_clause solver [ f; -a ]) args;
              Sat.add_clause solver (-f :: Array.to_list args)
          | N.Nor ->
              Array.iter (fun a -> Sat.add_clause solver [ -f; -a ]) args;
              Sat.add_clause solver (f :: Array.to_list args)
          | N.Xor | N.Xnor ->
              (* chain pairwise *)
              let rec chain acc = function
                | [] -> acc
                | x :: rest ->
                    let z = Sat.new_var solver in
                    (* z = acc xor x *)
                    Sat.add_clause solver [ -z; acc; x ];
                    Sat.add_clause solver [ -z; -acc; -x ];
                    Sat.add_clause solver [ z; -acc; x ];
                    Sat.add_clause solver [ z; acc; -x ];
                    chain z rest
              in
              (match Array.to_list args with
              | [] -> Sat.add_clause solver [ -f ]
              | first :: rest ->
                  let x = chain first rest in
                  let target = if op = N.Xor then x else -x in
                  Sat.add_clause solver [ -f; target ];
                  Sat.add_clause solver [ f; -target ])
          | N.Mux ->
              let s = args.(0) and a = args.(1) and b = args.(2) in
              Sat.add_clause solver [ -f; -s; b ];
              Sat.add_clause solver [ f; -s; -b ];
              Sat.add_clause solver [ -f; s; a ];
              Sat.add_clause solver [ f; s; -a ]
          | N.Maj ->
              let a = args.(0) and b = args.(1) and c = args.(2) in
              Sat.add_clause solver [ -f; a; b ];
              Sat.add_clause solver [ -f; a; c ];
              Sat.add_clause solver [ -f; b; c ];
              Sat.add_clause solver [ f; -a; -b ];
              Sat.add_clause solver [ f; -a; -c ];
              Sat.add_clause solver [ f; -b; -c ]
          | N.Lut tt -> encode_tt solver tt args f
          | N.Input | N.Buf | N.Not | N.Constant _ -> assert false));
  Array.map (fun (name, id) -> (name, values.(id))) (N.outputs nl)

let encode_mapped solver vars (mp : Mapped.t) =
  let values = Array.make mp.Mapped.num_nets 0 in
  Array.iter
    (fun (name, net) ->
      match Hashtbl.find_opt vars name with
      | Some v -> values.(net) <- v
      | None -> failwith "Verify.sat: unassigned input")
    mp.Mapped.pi_nets;
  Array.iter
    (fun (net, b) ->
      let f = Sat.new_var solver in
      Sat.add_clause solver [ (if b then f else -f) ];
      values.(net) <- f)
    mp.Mapped.const_nets;
  Array.iter
    (fun (c : Mapped.cell) ->
      let f = Sat.new_var solver in
      let args = Array.map (fun net -> values.(net)) c.Mapped.inputs in
      encode_tt solver (Cell.Cells.tt c.Mapped.gate.Cell.Genlib.cell) args f;
      values.(c.Mapped.output) <- f)
    mp.Mapped.cells;
  Array.map (fun (name, net) -> (name, values.(net))) mp.Mapped.po_nets

let encode_aig solver vars aig =
  let module A = Aigs.Aig in
  let values = Array.make (A.num_nodes aig) 0 in
  Array.iter
    (fun lit ->
      let node = A.node_of_lit lit in
      match Hashtbl.find_opt vars (A.input_name aig node) with
      | Some v -> values.(node) <- v
      | None -> failwith "Verify.sat: unassigned input")
    (A.input_lits aig);
  let const_var = lazy (
    let f = Sat.new_var solver in
    Sat.add_clause solver [ -f ];
    f)
  in
  let lit_var lit =
    let node = A.node_of_lit lit in
    let base = if node = 0 then Lazy.force const_var else values.(node) in
    if A.is_complemented lit then -base else base
  in
  for node = A.num_inputs aig + 1 to A.num_nodes aig - 1 do
    let f = Sat.new_var solver in
    values.(node) <- f;
    encode_and2 solver (lit_var (A.fanin0 aig node)) (lit_var (A.fanin1 aig node)) f
  done;
  Array.map (fun (name, lit) -> (name, lit_var lit)) (A.outputs aig)

let sat_miter ?(max_conflicts = 2_000_000) nl encode_impl =
  let solver = Sat.create () in
  let vars = Hashtbl.create 64 in
  Array.iter
    (fun id ->
      Hashtbl.replace vars (Nets.Netlist.input_name nl id) (Sat.new_var solver))
    (Nets.Netlist.inputs nl);
  let ref_outs = encode_netlist solver vars nl in
  let impl_outs = encode_impl solver vars in
  (* diff_o = ref_o xor impl_o; assert OR of diffs. *)
  let diffs =
    Array.map
      (fun (name, r) ->
        let i =
          match Array.find_opt (fun (n, _) -> n = name) impl_outs with
          | Some (_, v) -> v
          | None -> failwith ("Verify.sat: missing output " ^ name)
        in
        let d = Sat.new_var solver in
        Sat.add_clause solver [ -d; r; i ];
        Sat.add_clause solver [ -d; -r; -i ];
        Sat.add_clause solver [ d; -r; i ];
        Sat.add_clause solver [ d; r; -i ];
        d)
      ref_outs
  in
  Sat.add_clause solver (Array.to_list diffs);
  match Sat.solve ~max_conflicts solver with
  | Sat.Unsat -> Equivalent
  | Sat.Sat _ -> Not_equivalent
  | Sat.Unknown -> Inconclusive

let sat_equiv_netlist_mapped ?max_conflicts nl mp =
  sat_miter ?max_conflicts nl (fun solver vars -> encode_mapped solver vars mp)

let sat_equiv_netlist_aig ?max_conflicts nl aig =
  sat_miter ?max_conflicts nl (fun solver vars -> encode_aig solver vars aig)
