module G = Cell.Genlib

type path_element = {
  cell_index : int;
  gate_name : string;
  through_pin : int;
  arrival : float;
}

type report = {
  period : float;
  critical_delay : float;
  worst_slack : float;
  violating_endpoints : (string * float) list;
  critical_path : path_element list;
  slack_histogram : (float * int) list;
}

let analyze ?period (m : Mapped.t) =
  let arrivals = Mapped.arrival_times m in
  (* Driver cell per net, and the worst-arrival fanin pin per cell. *)
  let driver = Array.make m.Mapped.num_nets (-1) in
  Array.iteri (fun i (c : Mapped.cell) -> driver.(c.Mapped.output) <- i) m.Mapped.cells;
  let critical_delay =
    Array.fold_left (fun acc (_, net) -> max acc arrivals.(net)) 0.0 m.Mapped.po_nets
  in
  let period = match period with Some p -> p | None -> critical_delay in
  (* Required times: propagate backwards from POs. *)
  let required = Array.make m.Mapped.num_nets infinity in
  Array.iter (fun (_, net) -> required.(net) <- min required.(net) period) m.Mapped.po_nets;
  for i = Array.length m.Mapped.cells - 1 downto 0 do
    let c = m.Mapped.cells.(i) in
    let req_out = required.(c.Mapped.output) in
    Array.iter
      (fun net -> required.(net) <- min required.(net) (req_out -. c.Mapped.gate.G.delay))
      c.Mapped.inputs
  done;
  let slack_of net = required.(net) -. arrivals.(net) in
  let endpoints =
    Array.to_list (Array.map (fun (name, net) -> (name, slack_of net)) m.Mapped.po_nets)
  in
  let worst_slack =
    List.fold_left (fun acc (_, s) -> min acc s) infinity endpoints
  in
  let violating = List.filter (fun (_, s) -> s < -1e-15) endpoints in
  (* Critical path: walk back from the worst PO through worst-arrival pins. *)
  let worst_po =
    List.fold_left
      (fun acc (name, net) ->
        match acc with
        | Some (_, best) when arrivals.(best) >= arrivals.(net) -> acc
        | Some _ | None -> Some (name, net))
      None
      (Array.to_list m.Mapped.po_nets |> List.map (fun (n, net) -> (n, net)))
  in
  let path = ref [] in
  (match worst_po with
  | None -> ()
  | Some (_, net0) ->
      let current = ref net0 in
      let continue = ref true in
      while !continue do
        let ci = driver.(!current) in
        if ci < 0 then continue := false
        else begin
          let c = m.Mapped.cells.(ci) in
          let worst_pin = ref (-1) and worst_arr = ref neg_infinity in
          Array.iteri
            (fun pin net ->
              if arrivals.(net) > !worst_arr then begin
                worst_arr := arrivals.(net);
                worst_pin := pin
              end)
            c.Mapped.inputs;
          path :=
            {
              cell_index = ci;
              gate_name = c.Mapped.gate.G.cell.Cell.Cells.name;
              through_pin = !worst_pin;
              arrival = arrivals.(c.Mapped.output);
            }
            :: !path;
          if !worst_pin >= 0 then current := c.Mapped.inputs.(!worst_pin)
          else continue := false
        end
      done);
  (* Slack histogram over endpoints. *)
  let slacks = List.map snd endpoints in
  let histogram =
    match slacks with
    | [] -> []
    | first :: _ ->
        let lo = List.fold_left min first slacks in
        let hi = List.fold_left max first slacks in
        let bins = 10 in
        let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
        List.init bins (fun b ->
            let upper = lo +. (width *. float_of_int (b + 1)) in
            let lower = lo +. (width *. float_of_int b) in
            let count =
              List.length
                (List.filter
                   (fun s -> s >= lower -. 1e-18 && (s < upper || b = bins - 1))
                   slacks)
            in
            (upper, count))
  in
  {
    period;
    critical_delay;
    worst_slack;
    violating_endpoints = violating;
    critical_path = !path;
    slack_histogram = histogram;
  }

let pp_report ppf r =
  Format.fprintf ppf "STA @ period %.1f ps: critical %.1f ps, worst slack %.2f ps, %d violations@."
    (r.period *. 1e12) (r.critical_delay *. 1e12) (r.worst_slack *. 1e12)
    (List.length r.violating_endpoints);
  Format.fprintf ppf "critical path (%d stages):@." (List.length r.critical_path);
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-10s via pin %d  arrival %.1f ps@." e.gate_name e.through_pin
        (e.arrival *. 1e12))
    r.critical_path
