module G = Cell.Genlib

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') name

let net_name = Printf.sprintf "n%d"

let write_string ?(module_name = "mapped") (m : Mapped.t) =
  let buf = Buffer.create 4096 in
  let pis = Array.to_list m.Mapped.pi_nets in
  let pos = Array.to_list m.Mapped.po_nets in
  Buffer.add_string buf (Printf.sprintf "module %s(" (sanitize module_name));
  let ports =
    List.map (fun (name, _) -> sanitize name) pis @ List.map (fun (name, _) -> sanitize name) pos
  in
  Buffer.add_string buf (String.concat ", " ports);
  Buffer.add_string buf ");\n";
  List.iter (fun (name, _) -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (sanitize name))) pis;
  List.iter (fun (name, _) -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" (sanitize name))) pos;
  (* internal wires *)
  for net = 0 to m.Mapped.num_nets - 1 do
    Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (net_name net))
  done;
  (* tie PI nets *)
  List.iter
    (fun (name, net) ->
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" (net_name net) (sanitize name)))
    pis;
  Array.iter
    (fun (net, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = 1'b%d;\n" (net_name net) (if b then 1 else 0)))
    m.Mapped.const_nets;
  (* cell instances *)
  Array.iteri
    (fun k (c : Mapped.cell) ->
      let gate = c.Mapped.gate.G.cell.Cell.Cells.name in
      let pins =
        List.init (Array.length c.Mapped.inputs) (fun j ->
            Printf.sprintf ".%c(%s)" (Char.chr (Char.code 'A' + j)) (net_name c.Mapped.inputs.(j)))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s u%d (%s, .Y(%s));\n" gate k (String.concat ", " pins)
           (net_name c.Mapped.output)))
    m.Mapped.cells;
  (* PO assigns *)
  List.iter
    (fun (name, net) ->
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" (sanitize name) (net_name net)))
    pos;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let cell_library_string (lib : G.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (g : G.gate) ->
      let pins = g.G.cell.Cell.Cells.pins in
      let pin_names = List.init pins (fun i -> String.make 1 (Char.chr (Char.code 'A' + i))) in
      Buffer.add_string buf
        (Printf.sprintf "module %s(%s, Y);\n" g.G.cell.Cell.Cells.name
           (String.concat ", " pin_names));
      List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" p)) pin_names;
      Buffer.add_string buf "  output Y;\n";
      let formula =
        Format.asprintf "%a"
          (Logic.Expr.pp_named (fun i -> List.nth pin_names i))
          g.G.cell.Cell.Cells.expr
      in
      (* genlib syntax -> verilog operators *)
      let formula =
        String.concat ""
          (List.map
             (fun c ->
               match c with '*' -> "&" | '+' -> "|" | '!' -> "~" | c -> String.make 1 c)
             (List.init (String.length formula) (String.get formula)))
      in
      Buffer.add_string buf (Printf.sprintf "  assign Y = %s;\n" formula);
      Buffer.add_string buf "endmodule\n\n")
    lib.G.gates;
  Buffer.contents buf

let write_file ?module_name path (m : Mapped.t) =
  let oc = open_out path in
  output_string oc (write_string ?module_name m);
  output_string oc "\n";
  output_string oc (cell_library_string m.Mapped.lib);
  close_out oc
