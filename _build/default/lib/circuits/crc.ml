module N = Nets.Netlist

let crc32_polynomial = 0xEDB88320l

(* Reflected-form LFSR step: bit = lsb(state) xor data; state >>= 1;
   if bit then state ^= poly. *)
let reference_step ?(polynomial = crc32_polynomial) state ~data =
  Array.fold_left
    (fun st bit ->
      let feedback = Int32.logand st 1l <> 0l <> bit in
      let shifted = Int32.shift_right_logical st 1 in
      if feedback then Int32.logxor shifted polynomial else shifted)
    state data

let generate ?(polynomial = crc32_polynomial) ~data_width () =
  let t = Nets.Seq.create () in
  let data = Array.init data_width (fun i -> Nets.Seq.add_input t (Printf.sprintf "d%d" i)) in
  let state =
    Array.init 32 (fun i -> Nets.Seq.add_register t (Printf.sprintf "s%d" i) ())
  in
  (* Unroll the bit-serial recurrence data_width times. *)
  let current = ref (Array.copy state) in
  Array.iter
    (fun data_bit ->
      let st = !current in
      let feedback = N.add_node (Nets.Seq.comb t) N.Xor [| st.(0); data_bit |] in
      let next =
        Array.init 32 (fun j ->
            let shifted = if j = 31 then None else Some st.(j + 1) in
            let tap = Int32.logand (Int32.shift_right_logical polynomial j) 1l <> 0l in
            match (shifted, tap) with
            | Some s, true -> N.add_node (Nets.Seq.comb t) N.Xor [| s; feedback |]
            | Some s, false -> s
            | None, true -> feedback
            | None, false -> N.add_node (Nets.Seq.comb t) (N.Constant false) [||])
      in
      current := next)
    data;
  Array.iteri
    (fun i d -> Nets.Seq.connect t (Printf.sprintf "s%d" i) d)
    !current;
  Array.iteri
    (fun i d -> Nets.Seq.add_output t (Printf.sprintf "crc%d" i) d)
    !current;
  t
