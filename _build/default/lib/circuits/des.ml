module N = Nets.Netlist
module T = Logic.Truthtable

(* DES expansion: 32 -> 48, taking overlapping 6-bit windows of 4-bit
   groups with their neighbours (standard E-table structure). *)
let expansion half =
  Array.init 48 (fun i ->
      let group = i / 6 and pos = i mod 6 in
      let bit = ((group * 4) + pos - 1 + 32) mod 32 in
      half.(bit))

(* Balanced random 6->4 S-box: each output column is a random balanced
   6-variable function (32 ones), like the real S-boxes. *)
let sbox_tables rng =
  Array.init 4 (fun _ ->
      let bits = Array.make 64 false in
      Array.fill bits 0 32 true;
      for i = 63 downto 1 do
        let j = Logic.Prng.int rng (i + 1) in
        let tmp = bits.(i) in
        bits.(i) <- bits.(j);
        bits.(j) <- tmp
      done;
      T.of_bits 6 bits)

let generate ~rounds ?(seed = 3L) () =
  let t = N.create () in
  let rng = Logic.Prng.create seed in
  let block = Arith.input_bus t "x" 64 in
  let keys =
    Array.init rounds (fun r -> Arith.input_bus t (Printf.sprintf "k%d_" r) 48)
  in
  (* Per-round structural constants are fixed per instance (like real DES,
     where every round shares E/P/S). *)
  let sboxes = Array.init 8 (fun _ -> sbox_tables rng) in
  let perm_order =
    let order = Array.init 32 (fun i -> i) in
    for i = 31 downto 1 do
      let j = Logic.Prng.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    order
  in
  let left = ref (Array.sub block 0 32) in
  let right = ref (Array.sub block 32 32) in
  for r = 0 to rounds - 1 do
    let expanded = expansion !right in
    let mixed = Array.map2 (fun x k -> N.add_node t N.Xor [| x; k |]) expanded keys.(r) in
    let substituted =
      Array.concat
        (List.init 8 (fun s ->
             let window = Array.sub mixed (s * 6) 6 in
             Array.map (fun tt -> N.add_node t (N.Lut tt) window) sboxes.(s)))
    in
    let permuted = Array.map (fun i -> substituted.(i)) perm_order in
    let new_right = Array.map2 (fun l p -> N.add_node t N.Xor [| l; p |]) !left permuted in
    left := !right;
    right := new_right
  done;
  Arith.output_bus t "y" (Array.append !left !right);
  t
