module N = Nets.Netlist

type feature = Add | Sub | Bitwise | Compare | Parity | Shift

(* A seeded random control cone: a multi-level network of random 2-3 input
   gates over the given support, producing one output. *)
let control_cone t rng support depth =
  let pool = ref (Array.to_list support) in
  let pick () =
    let arr = Array.of_list !pool in
    arr.(Logic.Prng.int rng (Array.length arr))
  in
  let ops = [| N.And; N.Or; N.Xor; N.Nand; N.Nor; N.Mux |] in
  let node = ref (pick ()) in
  for _ = 1 to depth do
    let op = ops.(Logic.Prng.int rng (Array.length ops)) in
    let arity = match op with N.Mux -> 3 | _ -> 2 in
    let fanins = Array.init arity (fun _ -> pick ()) in
    fanins.(Logic.Prng.int rng arity) <- !node;
    node := N.add_node t op fanins;
    pool := !node :: !pool
  done;
  !node

let generate ~width ~features ?(control_blocks = 0) ?(seed = 1L) () =
  let t = N.create () in
  let rng = Logic.Prng.create seed in
  let a = Arith.input_bus t "a" width in
  let b = Arith.input_bus t "b" width in
  let has feat = List.mem feat features in
  let results = ref [] in
  if has Add then begin
    let sum, carry = Arith.ripple_adder t a b in
    results := (sum, Some carry) :: !results
  end;
  if has Sub then begin
    let diff, borrow = Arith.subtractor t a b in
    results := (diff, Some borrow) :: !results
  end;
  if has Bitwise then begin
    results := (Arith.bitwise t N.And a b, None) :: !results;
    results := (Arith.bitwise t N.Or a b, None) :: !results;
    results := (Arith.bitwise t N.Xor a b, None) :: !results
  end;
  if has Shift then begin
    (* Left shift by one with zero fill, and rotate. *)
    let zero = Arith.constant t false in
    let shl = Array.init width (fun i -> if i = 0 then zero else a.(i - 1)) in
    let rot = Array.init width (fun i -> a.((i + width - 1) mod width)) in
    results := (shl, None) :: !results;
    results := (rot, None) :: !results
  end;
  (* Pad the result list to a power of two with the pass-through operand. *)
  let choices = ref (List.rev_map fst !results) in
  let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k) in
  let target = next_pow2 (max 1 (List.length !choices)) 1 in
  while List.length !choices < target do
    choices := a :: !choices
  done;
  let sel_width = int_of_float (log (float_of_int target) /. log 2.0 +. 0.5) in
  let opcode = Arith.input_bus t "op" (max 1 sel_width) in
  let result =
    if target = 1 then List.hd !choices
    else Arith.mux_tree t (Array.sub opcode 0 sel_width) (Array.of_list !choices)
  in
  Arith.output_bus t "r" result;
  (* Flags. *)
  let nresult = Array.map (fun id -> N.add_node t N.Not [| id |]) result in
  N.add_output t "zero" (Arith.and_tree t nresult);
  if has Parity then N.add_output t "par" (Arith.parity_tree t result);
  if has Compare then begin
    N.add_output t "eq" (Arith.equal_comparator t a b);
    N.add_output t "lt" (Arith.less_than t a b)
  end;
  (* Control blocks over dedicated inputs, mixed with opcode bits. *)
  if control_blocks > 0 then begin
    let ctl = Arith.input_bus t "ctl" (2 * control_blocks) in
    let support = Array.append ctl opcode in
    for i = 0 to control_blocks - 1 do
      let out = control_cone t rng support (8 + Logic.Prng.int rng 8) in
      N.add_output t (Printf.sprintf "k%d" i) out
    done
  end;
  t
