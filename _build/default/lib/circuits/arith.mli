(** Arithmetic building blocks over netlists.

    A bus is an array of node ids, least significant bit first. These
    generators produce the XOR-rich datapath structures (adders, parity
    trees, comparators) that the paper's benchmark set exercises. *)

type bus = int array

val constant : Nets.Netlist.t -> bool -> int
val input_bus : Nets.Netlist.t -> string -> int -> bus
val output_bus : Nets.Netlist.t -> string -> bus -> unit

val half_adder : Nets.Netlist.t -> int -> int -> int * int
(** [(sum, carry)] *)

val full_adder : Nets.Netlist.t -> int -> int -> int -> int * int
(** [(sum, carry)] *)

val ripple_adder : Nets.Netlist.t -> ?carry_in:int -> bus -> bus -> bus * int
(** Equal-width buses; returns [(sum_bus, carry_out)]. *)

val subtractor : Nets.Netlist.t -> bus -> bus -> bus * int
(** Two's complement [a - b]; second result is the borrow-free flag
    (carry out). *)

val parity_tree : Nets.Netlist.t -> int array -> int
(** XOR reduction. *)

val and_tree : Nets.Netlist.t -> int array -> int
val or_tree : Nets.Netlist.t -> int array -> int

val equal_comparator : Nets.Netlist.t -> bus -> bus -> int
val less_than : Nets.Netlist.t -> bus -> bus -> int
(** Unsigned [a < b]. *)

val mux_bus : Nets.Netlist.t -> int -> bus -> bus -> bus
(** [mux_bus t s a b] is bitwise [if s then b else a]. *)

val mux_tree : Nets.Netlist.t -> bus -> bus array -> bus
(** [mux_tree t sel choices]: select among [2^|sel|] equal-width buses. *)

val bitwise : Nets.Netlist.t -> Nets.Netlist.op -> bus -> bus -> bus

val decoder : Nets.Netlist.t -> bus -> int array
(** One-hot decode: [2^width] outputs. *)
