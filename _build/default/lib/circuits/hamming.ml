module N = Nets.Netlist

(* Hamming code with data bits placed at non-power-of-two codeword
   positions 1..; check bit i covers positions with bit i set. *)

let check_bits_for data_bits =
  let rec go r = if 1 lsl r >= data_bits + r + 1 then r else go (r + 1) in
  go 2

(* Codeword positions (1-based) of the data bits, in order. *)
let data_positions data_bits =
  let rec collect pos acc remaining =
    if remaining = 0 then List.rev acc
    else if pos land (pos - 1) = 0 then collect (pos + 1) acc remaining
    else collect (pos + 1) (pos :: acc) (remaining - 1)
  in
  Array.of_list (collect 1 [] data_bits)

let syndrome_trees t data positions r =
  Array.init r (fun i ->
      let covered =
        Array.to_list data
        |> List.mapi (fun j id -> (positions.(j), id))
        |> List.filter (fun (pos, _) -> (pos lsr i) land 1 = 1)
        |> List.map snd
      in
      Arith.parity_tree t (Array.of_list covered))

let encoder ~data_bits =
  let t = N.create () in
  let data = Arith.input_bus t "d" data_bits in
  let r = check_bits_for data_bits in
  let positions = data_positions data_bits in
  let checks = syndrome_trees t data positions r in
  Arith.output_bus t "c" checks;
  t

let corrector ~data_bits =
  let t = N.create () in
  let data = Arith.input_bus t "d" data_bits in
  let r = check_bits_for data_bits in
  let received = Arith.input_bus t "c" r in
  let positions = data_positions data_bits in
  let recomputed = syndrome_trees t data positions r in
  (* Syndrome: xor of received and recomputed check bits. Non-zero syndrome
     equal to a data position flips that bit. *)
  let syndrome =
    Array.init r (fun i -> N.add_node t N.Xor [| recomputed.(i); received.(i) |])
  in
  let nsyndrome = Array.map (fun id -> N.add_node t N.Not [| id |]) syndrome in
  let corrected =
    Array.mapi
      (fun j id ->
        let pos = positions.(j) in
        let hit_terms =
          Array.init r (fun i -> if (pos lsr i) land 1 = 1 then syndrome.(i) else nsyndrome.(i))
        in
        let hit = Arith.and_tree t hit_terms in
        N.add_node t N.Xor [| id; hit |])
      data
  in
  Arith.output_bus t "o" corrected;
  N.add_output t "err" (Arith.or_tree t syndrome);
  t
