(** Parallel CRC engines — a sequential, XOR-dominated workload.

    A cyclic-redundancy-check circuit shifts [data_width] input bits per
    clock into an LFSR defined by a polynomial: nothing but XOR trees
    feeding registers, i.e. the best possible showcase for the ambipolar
    library's embedded-XOR cells under a clock. *)

val crc32_polynomial : int32
(** The IEEE 802.3 polynomial (0xEDB88320, reflected form). *)

val generate : ?polynomial:int32 -> data_width:int -> unit -> Nets.Seq.t
(** Sequential circuit: inputs [d0..d<w-1>] (LSB first = first bit shifted
    in), 32 state registers [s0..s31], outputs [crc0..crc31] exposing the
    next state. One clock consumes [data_width] message bits. *)

val reference_step : ?polynomial:int32 -> int32 -> data:bool array -> int32
(** Software model of one clock: fold the data bits (index order) into the
    running CRC state. Used to cross-check the circuit. *)
