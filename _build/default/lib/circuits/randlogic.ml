module N = Nets.Netlist

let generate ~inputs ~gates ~outputs ?(xor_fraction = 0.15) ?(seed = 7L) () =
  let t = N.create () in
  let rng = Logic.Prng.create seed in
  let ins = Arith.input_bus t "x" inputs in
  let nodes = ref (Array.to_list ins) in
  let recent = ref [] in
  let pick_any () =
    let arr = Array.of_list !nodes in
    arr.(Logic.Prng.int rng (Array.length arr))
  in
  (* Bias one operand towards recent nodes so depth grows and fanout
     reconverges, like real multi-level control logic. *)
  let pick_recent () =
    match !recent with
    | [] -> pick_any ()
    | r ->
        let arr = Array.of_list r in
        arr.(Logic.Prng.int rng (Array.length arr))
  in
  for _ = 1 to gates do
    let use_xor = Logic.Prng.float rng < xor_fraction in
    let op =
      if use_xor then if Logic.Prng.bool rng then N.Xor else N.Xnor
      else
        match Logic.Prng.int rng 5 with
        | 0 -> N.And
        | 1 -> N.Or
        | 2 -> N.Nand
        | 3 -> N.Nor
        | _ -> N.Mux
    in
    let arity = match op with N.Mux -> 3 | _ -> 2 in
    let fanins = Array.init arity (fun _ -> pick_any ()) in
    fanins.(0) <- pick_recent ();
    let id = N.add_node t op fanins in
    nodes := id :: !nodes;
    recent := id :: (if List.length !recent > 24 then List.filteri (fun i _ -> i < 24) !recent else !recent)
  done;
  (* Outputs come from the most recent (deepest) gates. *)
  let arr = Array.of_list !recent in
  for i = 0 to outputs - 1 do
    let id = if i < Array.length arr then arr.(i) else pick_any () in
    N.add_output t (Printf.sprintf "f%d" i) id
  done;
  t
