(** The 12-circuit benchmark suite of Table 1.

    Each entry names a row of the paper's Table 1 and generates a
    functionally-similar circuit of the same size class and logic style
    (see DESIGN.md for the substitution rationale: the ISCAS-85/MCNC
    originals are distributed as netlists we do not ship). *)

type entry = {
  name : string;  (** the paper's circuit name, e.g. "C6288" *)
  description : string;  (** the paper's "Function" column *)
  generate : unit -> Nets.Netlist.t;
}

val all : entry list
(** In the paper's Table 1 row order: C2670, C1908, C3540, dalu, C7552,
    C6288, C5315, des, i10, t481, i8, C1355. *)

val find : string -> entry

val small : entry list
(** Reduced-size variants of a few representative rows, for fast tests. *)
