lib/circuits/des.ml: Arith Array List Logic Nets Printf
