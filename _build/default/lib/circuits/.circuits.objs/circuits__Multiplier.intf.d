lib/circuits/multiplier.mli: Nets
