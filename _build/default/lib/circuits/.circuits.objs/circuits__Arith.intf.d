lib/circuits/arith.mli: Nets
