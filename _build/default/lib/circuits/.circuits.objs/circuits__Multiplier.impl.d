lib/circuits/multiplier.ml: Arith Array Nets
