lib/circuits/suite.mli: Nets
