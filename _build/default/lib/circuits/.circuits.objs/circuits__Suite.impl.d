lib/circuits/suite.ml: Alu Des Hamming List Multiplier Nets Randlogic
