lib/circuits/crc.mli: Nets
