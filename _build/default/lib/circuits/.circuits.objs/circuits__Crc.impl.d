lib/circuits/crc.ml: Array Int32 Nets Printf
