lib/circuits/hamming.ml: Arith Array List Nets
