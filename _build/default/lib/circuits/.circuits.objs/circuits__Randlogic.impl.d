lib/circuits/randlogic.ml: Arith Array List Logic Nets Printf
