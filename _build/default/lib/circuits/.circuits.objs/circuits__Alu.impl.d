lib/circuits/alu.ml: Arith Array List Logic Nets Printf
