lib/circuits/hamming.mli: Nets
