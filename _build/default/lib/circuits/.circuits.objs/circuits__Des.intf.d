lib/circuits/des.mli: Nets
