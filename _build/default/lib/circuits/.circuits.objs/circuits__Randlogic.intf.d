lib/circuits/randlogic.mli: Nets
