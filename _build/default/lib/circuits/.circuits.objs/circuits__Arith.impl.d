lib/circuits/arith.ml: Array Nets Printf
