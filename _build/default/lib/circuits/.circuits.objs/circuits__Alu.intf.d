lib/circuits/alu.mli: Nets
