(** Parameterized ALU-and-control generator — the C2670/C3540/C5315/C7552
    and dalu-like workloads.

    Those ISCAS-85/MCNC circuits are ALUs with surrounding control and
    selection logic. The generator builds a [width]-bit datapath with the
    selected set of operations (add, subtract, bitwise logic, comparisons,
    parity), an operation mux tree, and optional extra random control logic
    to emulate the control-dominated parts. *)

type feature = Add | Sub | Bitwise | Compare | Parity | Shift

val generate :
  width:int -> features:feature list -> ?control_blocks:int -> ?seed:int64 -> unit -> Nets.Netlist.t
(** Inputs: operands [a*], [b*], opcode [op*]; [control_blocks] extra seeded
    random control cones over dedicated [ctl*] inputs. Outputs: result bus
    [r*], flags ([zero], [ovf] when meaningful, [par], [lt], [eq]), and one
    [k*] output per control block. *)
