module N = Nets.Netlist

let generate ~width =
  let t = N.create () in
  let a = Arith.input_bus t "a" width in
  let b = Arith.input_bus t "b" width in
  (* Partial-product plane. *)
  let pp =
    Array.init width (fun j -> Array.init width (fun i -> N.add_node t N.And [| a.(i); b.(j) |]))
  in
  (* Carry-save reduction, row by row: running sum of width bits plus the
     product bits already finalized. *)
  let product = Array.make (2 * width) 0 in
  let zero = Arith.constant t false in
  Array.fill product 0 (2 * width) zero;
  (* Row 0 initializes the running sum. *)
  let sum = Array.copy pp.(0) in
  let carries = Array.make width zero in
  product.(0) <- sum.(0);
  let sum = ref (Array.append (Array.sub sum 1 (width - 1)) [| zero |]) in
  let carries = ref carries in
  for j = 1 to width - 1 do
    let new_sum = Array.make width zero in
    let new_carries = Array.make width zero in
    for i = 0 to width - 1 do
      let s, c = Arith.full_adder t pp.(j).(i) !sum.(i) !carries.(i) in
      new_sum.(i) <- s;
      new_carries.(i) <- c
    done;
    product.(j) <- new_sum.(0);
    sum := Array.append (Array.sub new_sum 1 (width - 1)) [| zero |];
    carries := new_carries
  done;
  (* Final ripple stage merges the remaining sum and carry vectors. *)
  (* The final ripple carry is arithmetically zero (the product fits in
     2*width bits), so it is dropped. *)
  let final, _carry_out = Arith.ripple_adder t !sum !carries in
  for i = 0 to width - 1 do
    product.(width + i) <- final.(i)
  done;
  Arith.output_bus t "p" product;
  t
