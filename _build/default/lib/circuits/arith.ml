module N = Nets.Netlist

type bus = int array

let constant t b = N.add_node t (N.Constant b) [||]

let input_bus t name width =
  Array.init width (fun i -> N.add_input t (Printf.sprintf "%s%d" name i))

let output_bus t name bus =
  Array.iteri (fun i id -> N.add_output t (Printf.sprintf "%s%d" name i) id) bus

let half_adder t a b =
  (N.add_node t N.Xor [| a; b |], N.add_node t N.And [| a; b |])

let full_adder t a b c =
  let sum = N.add_node t N.Xor [| a; b; c |] in
  let carry = N.add_node t N.Maj [| a; b; c |] in
  (sum, carry)

let ripple_adder t ?carry_in a b =
  assert (Array.length a = Array.length b);
  let width = Array.length a in
  let sum = Array.make width 0 in
  let carry = ref (match carry_in with Some c -> c | None -> constant t false) in
  for i = 0 to width - 1 do
    let s, c = full_adder t a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let subtractor t a b =
  let nb = Array.map (fun id -> N.add_node t N.Not [| id |]) b in
  let one = constant t true in
  ripple_adder t ~carry_in:one a nb

let rec tree t op = function
  | [||] -> invalid_arg "Arith.tree: empty"
  | [| x |] -> x
  | items ->
      let n = Array.length items in
      let half = n / 2 in
      let left = tree t op (Array.sub items 0 half) in
      let right = tree t op (Array.sub items half (n - half)) in
      N.add_node t op [| left; right |]

let parity_tree t items = tree t N.Xor items
let and_tree t items = tree t N.And items
let or_tree t items = tree t N.Or items

let equal_comparator t a b =
  assert (Array.length a = Array.length b);
  let eq = Array.map2 (fun x y -> N.add_node t N.Xnor [| x; y |]) a b in
  and_tree t eq

let less_than t a b =
  (* a < b iff borrow out of a - b: carry out of a + ~b + 1 is 0. *)
  let _, carry = subtractor t a b in
  N.add_node t N.Not [| carry |]

let mux_bus t s a b =
  assert (Array.length a = Array.length b);
  Array.map2 (fun x y -> N.add_node t N.Mux [| s; x; y |]) a b

let rec mux_tree t sel choices =
  match Array.length sel with
  | 0 ->
      assert (Array.length choices = 1);
      choices.(0)
  | _ ->
      let n = Array.length choices in
      assert (n = 1 lsl Array.length sel);
      let low_sel = Array.sub sel 0 (Array.length sel - 1) in
      let top = sel.(Array.length sel - 1) in
      let half = n / 2 in
      let a = mux_tree t low_sel (Array.sub choices 0 half) in
      let b = mux_tree t low_sel (Array.sub choices half half) in
      mux_bus t top a b

let bitwise t op a b =
  assert (Array.length a = Array.length b);
  Array.map2 (fun x y -> N.add_node t op [| x; y |]) a b

let decoder t sel =
  let width = Array.length sel in
  let nsel = Array.map (fun id -> N.add_node t N.Not [| id |]) sel in
  Array.init (1 lsl width) (fun v ->
      let lits = Array.init width (fun i -> if (v lsr i) land 1 = 1 then sel.(i) else nsel.(i)) in
      if width = 1 then lits.(0) else and_tree t lits)
