(** Feistel block-cipher rounds — the des-like workload.

    The MCNC [des] benchmark is the DES data path. This generator builds
    the same structure: per round, a 32-to-48-bit expansion, key XOR, eight
    6-to-4-bit S-boxes, a bit permutation and the Feistel XOR/swap. The
    S-box contents are deterministic seeded random balanced tables rather
    than the FIPS 46-3 constants (see DESIGN.md: the logic style — dense
    random LUTs fed and followed by XOR layers — is what matters for the
    power comparison, not cryptographic fidelity). *)

val generate : rounds:int -> ?seed:int64 -> unit -> Nets.Netlist.t
(** Inputs: 64-bit block [x*] and one 48-bit round key [k<r>_*] per round;
    outputs the 64-bit result [y*]. *)
