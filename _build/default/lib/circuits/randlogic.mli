(** Seeded random multi-level logic — the i8/i10/t481-like "logic"
    workloads.

    The MCNC benchmarks i8, i10 and t481 are unstructured multi-level
    control logic. This generator produces deterministic random netlists of
    comparable size: layered random 2-3-input gates over a declared input
    set, with reconvergent fanout, a controllable XOR fraction and a set of
    primary outputs drawn from the deepest layer. *)

val generate :
  inputs:int ->
  gates:int ->
  outputs:int ->
  ?xor_fraction:float ->
  ?seed:int64 ->
  unit ->
  Nets.Netlist.t
