(** Array multiplier generator — the C6288-like workload.

    ISCAS-85 C6288 is a 16x16 array multiplier built from a grid of half and
    full adders; this generator reproduces that structure (partial-product
    AND plane + carry-save adder array + ripple final stage), giving the
    multiplier's characteristic XOR-dominated profile. *)

val generate : width:int -> Nets.Netlist.t
(** [generate ~width] multiplies two [width]-bit unsigned operands [a] and
    [b] into a [2*width]-bit product [p]. *)
