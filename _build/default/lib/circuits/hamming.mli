(** Hamming single-error-correcting circuits — the C1355/C1908-like
    workloads.

    ISCAS-85 C499/C1355 implement a 32-bit single-error-correcting decoder
    and C1908 a 16-bit SEC/DED circuit; both are parity/syndrome logic,
    which is why they profit most from XOR-capable libraries. The
    generators below produce the same structure for arbitrary data width:
    syndrome computation over received data + check bits, syndrome decode,
    and correction XORs. *)

val encoder : data_bits:int -> Nets.Netlist.t
(** Inputs [d*]; outputs the check bits [c*] (one per syndrome position). *)

val corrector : data_bits:int -> Nets.Netlist.t
(** Inputs: received data [d*] and received check bits [c*]; outputs the
    corrected data word [o*] plus an error indicator [err]. Single-bit
    errors in the data are corrected. *)

val check_bits_for : int -> int
(** Number of Hamming check bits needed for the given data width. *)
