type entry = {
  name : string;
  description : string;
  generate : unit -> Nets.Netlist.t;
}

let all =
  [
    {
      name = "C2670";
      description = "ALU and control";
      generate =
        (fun () ->
          Alu.generate ~width:12 ~features:[ Alu.Add; Alu.Bitwise; Alu.Compare ]
            ~control_blocks:24 ~seed:2670L ());
    };
    {
      name = "C1908";
      description = "Error correcting";
      generate = (fun () -> Hamming.corrector ~data_bits:16);
    };
    {
      name = "C3540";
      description = "ALU and control";
      generate =
        (fun () ->
          Alu.generate ~width:16
            ~features:[ Alu.Add; Alu.Sub; Alu.Bitwise; Alu.Parity; Alu.Shift ]
            ~control_blocks:32 ~seed:3540L ());
    };
    {
      name = "dalu";
      description = "Dedicated ALU";
      generate =
        (fun () ->
          Alu.generate ~width:16 ~features:[ Alu.Add; Alu.Sub; Alu.Compare; Alu.Parity ]
            ~control_blocks:40 ~seed:9L ());
    };
    {
      name = "C7552";
      description = "ALU and control";
      generate =
        (fun () ->
          Alu.generate ~width:32
            ~features:[ Alu.Add; Alu.Sub; Alu.Bitwise; Alu.Compare; Alu.Parity ]
            ~control_blocks:48 ~seed:7552L ());
    };
    {
      name = "C6288";
      description = "Multiplier";
      generate = (fun () -> Multiplier.generate ~width:16);
    };
    {
      name = "C5315";
      description = "ALU and selector";
      generate =
        (fun () ->
          Alu.generate ~width:24 ~features:[ Alu.Add; Alu.Bitwise; Alu.Shift; Alu.Compare ]
            ~control_blocks:36 ~seed:5315L ());
    };
    {
      name = "des";
      description = "Data encryption";
      generate = (fun () -> Des.generate ~rounds:2 ~seed:46L ());
    };
    {
      name = "i10";
      description = "Logic";
      generate =
        (fun () ->
          Randlogic.generate ~inputs:128 ~gates:1400 ~outputs:120 ~xor_fraction:0.12
            ~seed:10L ());
    };
    {
      name = "t481";
      description = "Logic";
      generate =
        (fun () ->
          Randlogic.generate ~inputs:16 ~gates:600 ~outputs:1 ~xor_fraction:0.30 ~seed:481L ());
    };
    {
      name = "i8";
      description = "Logic";
      generate =
        (fun () ->
          Randlogic.generate ~inputs:100 ~gates:800 ~outputs:80 ~xor_fraction:0.10 ~seed:8L ());
    };
    {
      name = "C1355";
      description = "Error correcting";
      generate = (fun () -> Hamming.corrector ~data_bits:32);
    };
  ]

let find name = List.find (fun e -> e.name = name) all

let small =
  [
    {
      name = "mult8";
      description = "8x8 multiplier";
      generate = (fun () -> Multiplier.generate ~width:8);
    };
    {
      name = "ham8";
      description = "8-bit corrector";
      generate = (fun () -> Hamming.corrector ~data_bits:8);
    };
    {
      name = "alu4";
      description = "4-bit ALU";
      generate =
        (fun () ->
          Alu.generate ~width:4 ~features:[ Alu.Add; Alu.Bitwise; Alu.Compare ]
            ~control_blocks:4 ~seed:4L ());
    };
    {
      name = "rand200";
      description = "random logic";
      generate =
        (fun () -> Randlogic.generate ~inputs:24 ~gates:200 ~outputs:16 ~seed:200L ());
    };
  ]
