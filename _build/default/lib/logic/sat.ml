(* CDCL with two-watched literals, first-UIP learning, VSIDS and Luby
   restarts — a compact MiniSat-style core. Clauses are int arrays whose
   first two slots are the watched literals. *)

type clause = int array

type t = {
  mutable nvars : int;
  mutable watches : clause list array; (* indexed by literal index *)
  mutable assign : int array; (* per var: 0 unknown / 1 true / -1 false *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array; (* saved polarity *)
  mutable activity : float array;
  mutable var_inc : float;
  mutable heap : int array; (* binary max-heap of vars by activity *)
  mutable heap_size : int;
  mutable heap_pos : int array; (* var -> heap slot, -1 if absent *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int list; (* decision-level boundaries, reversed *)
  mutable qhead : int;
  mutable num_clauses : int;
  mutable conflicts : int;
  mutable ok : bool; (* false once an empty clause was added *)
}

type result = Sat of (int -> bool) | Unsat | Unknown

let create () =
  {
    nvars = 0;
    watches = Array.make 4 [];
    assign = Array.make 2 0;
    level = Array.make 2 0;
    reason = Array.make 2 None;
    phase = Array.make 2 false;
    activity = Array.make 2 0.0;
    var_inc = 1.0;
    heap = Array.make 2 0;
    heap_size = 0;
    heap_pos = Array.make 2 (-1);
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    num_clauses = 0;
    conflicts = 0;
    ok = true;
  }

let lit_index l = if l > 0 then 2 * l else (-2 * l) + 1

let grow_to t v =
  let cap = Array.length t.assign in
  if v >= cap then begin
    let ncap = max (2 * cap) (v + 1) in
    let grow_arr a fill =
      let bigger = Array.make ncap fill in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    t.assign <- grow_arr t.assign 0;
    t.level <- grow_arr t.level 0;
    t.reason <- grow_arr t.reason None;
    t.phase <- grow_arr t.phase false;
    t.activity <- grow_arr t.activity 0.0;
    t.heap <- grow_arr t.heap 0;
    t.heap_pos <- grow_arr t.heap_pos (-1);
    let wcap = 2 * ncap + 2 in
    let bigger = Array.make wcap [] in
    Array.blit t.watches 0 bigger 0 (Array.length t.watches);
    t.watches <- bigger
  end

let new_var t =
  let v = t.nvars + 1 in
  t.nvars <- v;
  grow_to t v;
  v

let num_vars t = t.nvars
let num_clauses t = t.num_clauses
let num_conflicts t = t.conflicts

let value t l =
  let a = t.assign.(abs l) in
  if l > 0 then a else -a

(* --- activity heap ------------------------------------------------- *)

let heap_swap t i j =
  let vi = t.heap.(i) and vj = t.heap.(j) in
  t.heap.(i) <- vj;
  t.heap.(j) <- vi;
  t.heap_pos.(vj) <- i;
  t.heap_pos.(vi) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.activity.(t.heap.(i)) > t.activity.(t.heap.(parent)) then begin
      heap_swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && t.activity.(t.heap.(l)) > t.activity.(t.heap.(!best)) then best := l;
  if r < t.heap_size && t.activity.(t.heap.(r)) > t.activity.(t.heap.(!best)) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    sift_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    sift_up t t.heap_pos.(v)
  end

let heap_pop t =
  let top = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(top) <- -1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap_pos.(t.heap.(0)) <- 0;
    sift_down t 0
  end;
  top

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 1 to t.nvars do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then sift_up t t.heap_pos.(v)

(* --- assignment ---------------------------------------------------- *)

let decision_level t = List.length t.trail_lim

let enqueue t l reason =
  t.assign.(abs l) <- (if l > 0 then 1 else -1);
  t.level.(abs l) <- decision_level t;
  t.reason.(abs l) <- reason;
  t.phase.(abs l) <- l > 0;
  if t.trail_size = Array.length t.trail then begin
    let bigger = Array.make (2 * t.trail_size) 0 in
    Array.blit t.trail 0 bigger 0 t.trail_size;
    t.trail <- bigger
  end;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let backtrack t target_level =
  let keep =
    let rec boundary lims n = if n = 0 then t.trail_size else
      match lims with [] -> 0 | b :: rest -> if n = 1 then b else boundary rest (n - 1)
    in
    (* trail_lim is reversed: head is the most recent boundary *)
    let rec nth_boundary lims n =
      match lims with
      | [] -> 0
      | b :: rest -> if n = 1 then b else nth_boundary rest (n - 1)
    in
    ignore boundary;
    let depth = decision_level t in
    if target_level >= depth then t.trail_size
    else nth_boundary t.trail_lim (depth - target_level)
  in
  for i = t.trail_size - 1 downto keep do
    let v = abs t.trail.(i) in
    t.assign.(v) <- 0;
    t.reason.(v) <- None;
    heap_insert t v
  done;
  t.trail_size <- keep;
  t.qhead <- min t.qhead keep;
  let rec drop lims n = if n = 0 then lims else match lims with [] -> [] | _ :: rest -> drop rest (n - 1) in
  t.trail_lim <- drop t.trail_lim (decision_level t - target_level)

(* --- clauses -------------------------------------------------------- *)

let attach t (c : clause) =
  t.watches.(lit_index (-c.(0))) <- c :: t.watches.(lit_index (-c.(0)));
  t.watches.(lit_index (-c.(1))) <- c :: t.watches.(lit_index (-c.(1)))

let add_clause t lits =
  if t.ok then begin
    List.iter (fun l -> grow_to t (abs l)) lits;
    (* Clause addition happens at the root level (also for incremental use
       between solves). *)
    backtrack t 0;
    let lits = List.sort_uniq compare lits in
    let tautology = List.exists (fun l -> List.mem (-l) lits) lits in
    (* Simplify against root-level facts. *)
    let satisfied = List.exists (fun l -> value t l = 1) lits in
    let lits = List.filter (fun l -> value t l <> -1) lits in
    if not (tautology || satisfied) then begin
      match lits with
      | [] -> t.ok <- false
      | [ l ] -> enqueue t l None
      | _ :: _ :: _ ->
          let c = Array.of_list lits in
          attach t c;
          t.num_clauses <- t.num_clauses + 1
    end
  end

(* --- propagation ---------------------------------------------------- *)

exception Conflict of clause

let propagate t =
  try
    while t.qhead < t.trail_size do
      let p = t.trail.(t.qhead) in
      t.qhead <- t.qhead + 1;
      let false_lit = -p in
      let ws = t.watches.(lit_index p) in
      (* watches.(lit_index p) holds clauses watching the literal that just
         became false: we stored clause c under lit_index (-watched), so a
         watched literal l is triggered when -l is assigned. Here p became
         true, so literals -p became false: those watches live at
         lit_index p. *)
      t.watches.(lit_index p) <- [];
      let rec process = function
        | [] -> ()
        | c :: rest -> (
            (* ensure the false literal is at slot 1 *)
            if c.(0) = false_lit then begin
              c.(0) <- c.(1);
              c.(1) <- false_lit
            end;
            if value t c.(0) = 1 then begin
              t.watches.(lit_index p) <- c :: t.watches.(lit_index p);
              process rest
            end
            else begin
              (* search a replacement watch *)
              let found = ref false in
              let k = ref 2 in
              let n = Array.length c in
              while (not !found) && !k < n do
                if value t c.(!k) <> -1 then begin
                  let tmp = c.(1) in
                  c.(1) <- c.(!k);
                  c.(!k) <- tmp;
                  t.watches.(lit_index (-c.(1))) <- c :: t.watches.(lit_index (-c.(1)));
                  found := true
                end;
                incr k
              done;
              if !found then process rest
              else begin
                (* no replacement: clause is unit or conflicting *)
                t.watches.(lit_index p) <- c :: t.watches.(lit_index p);
                if value t c.(0) = -1 then begin
                  (* restore remaining watches before failing *)
                  t.watches.(lit_index p) <- List.rev_append rest t.watches.(lit_index p);
                  raise (Conflict c)
                end
                else begin
                  enqueue t c.(0) (Some c);
                  process rest
                end
              end
            end)
      in
      process ws
    done;
    None
  with Conflict c -> Some c

(* --- conflict analysis ---------------------------------------------- *)

let analyze t conflict =
  let seen = Hashtbl.create 64 in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  let c = ref conflict in
  let idx = ref (t.trail_size - 1) in
  let current = decision_level t in
  let continue = ref true in
  while !continue do
    (* [!p] is the literal whose reason clause [!c] is being expanded
       (0 for the initial conflict clause); skip it when scanning. *)
    Array.iter
      (fun q ->
        if q <> !p && not (Hashtbl.mem seen (abs q)) then begin
          let lv = t.level.(abs q) in
          if lv > 0 then begin
            Hashtbl.replace seen (abs q) ();
            bump t (abs q);
            if lv = current then incr counter else learnt := q :: !learnt
          end
        end)
      !c;
    (* find the most recently assigned seen literal on the trail *)
    while not (Hashtbl.mem seen (abs t.trail.(!idx))) do
      decr idx
    done;
    p := t.trail.(!idx);
    Hashtbl.remove seen (abs !p);
    decr idx;
    decr counter;
    if !counter <= 0 then continue := false
    else
      c :=
        (match t.reason.(abs !p) with
        | Some r -> r
        | None -> failwith "Sat.analyze: missing reason")
  done;
  let asserting = - !p in
  let tail = !learnt in
  let back_level = List.fold_left (fun acc q -> max acc (t.level.(abs q))) 0 tail in
  (asserting :: tail, back_level)

(* --- main loop ------------------------------------------------------ *)

(* Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby k =
  let rec pow2 n = if n = 0 then 1 else 2 * pow2 (n - 1) in
  let rec f k =
    let rec level n = if pow2 n - 1 >= k then n else level (n + 1) in
    let n = level 0 in
    if pow2 n - 1 = k then pow2 (n - 1) else f (k - pow2 (n - 1) + 1)
  in
  f k

let solve ?(assumptions = []) ?(max_conflicts = max_int) t =
  if not t.ok then Unsat
  else begin
    t.conflicts <- 0;
    backtrack t 0;
    (* fill heap *)
    for v = 1 to t.nvars do
      if t.assign.(v) = 0 then heap_insert t v
    done;
    match propagate t with
    | Some _ -> Unsat
    | None -> (
        let result = ref None in
        let restart_count = ref 0 in
        let conflict_budget = ref (100 * luby 1) in
        (try
           while !result = None do
             (* (re)apply assumptions *)
             let assumption_failed = ref false in
             List.iter
               (fun a ->
                 if !result = None && not !assumption_failed then begin
                   match value t a with
                   | 1 -> ()
                   | -1 -> assumption_failed := true
                   | _ ->
                       t.trail_lim <- t.trail_size :: t.trail_lim;
                       enqueue t a None;
                       (match propagate t with
                       | None -> ()
                       | Some _ -> assumption_failed := true)
                 end)
               assumptions;
             if !assumption_failed then begin
               result := Some Unsat
             end
             else begin
               let assumption_level = decision_level t in
               let searching = ref true in
               while !searching && !result = None do
                 match propagate t with
                 | Some conflict ->
                     t.conflicts <- t.conflicts + 1;
                     decr conflict_budget;
                     if t.conflicts >= max_conflicts then result := Some Unknown
                     else if decision_level t <= assumption_level then begin
                       result := Some Unsat
                     end
                     else begin
                       let learnt, back_level = analyze t conflict in
                       let back_level = max back_level assumption_level in
                       backtrack t back_level;
                       (match learnt with
                       | [] -> result := Some Unsat
                       | [ l ] -> if value t l = 0 then enqueue t l None
                       | l :: _ ->
                           let c = Array.of_list learnt in
                           attach t c;
                           t.num_clauses <- t.num_clauses + 1;
                           if value t l = 0 then enqueue t l (Some c));
                       t.var_inc <- t.var_inc /. 0.95;
                       if !conflict_budget <= 0 then begin
                         (* restart *)
                         incr restart_count;
                         conflict_budget := 100 * luby (!restart_count + 1);
                         backtrack t assumption_level;
                         searching := false
                       end
                     end
                 | None ->
                     (* decide *)
                     let decision = ref 0 in
                     while !decision = 0 && t.heap_size > 0 do
                       let v = heap_pop t in
                       if t.assign.(v) = 0 then
                         decision := (if t.phase.(v) then v else -v)
                     done;
                     if !decision = 0 then begin
                       let model = Array.copy t.assign in
                       result := Some (Sat (fun v -> model.(v) = 1))
                     end
                     else begin
                       t.trail_lim <- t.trail_size :: t.trail_lim;
                       enqueue t !decision None
                     end
               done;
               (* restart loops back to re-apply assumptions (they are kept
                  assigned since we backtrack only to assumption_level) *)
               ()
             end
           done
         with e -> raise e);
        match !result with Some r -> r | None -> assert false)
  end
