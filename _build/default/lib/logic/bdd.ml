(* ROBDD with a unique table (hash-consing) and a binary-apply cache.
   Nodes carry unique ids so memo keys are cheap. No complement edges:
   simplicity over peak capacity, which is ample for the test workloads. *)

type t = Leaf of bool | Node of node
and node = { id : int; level : int; low : t; high : t }

type manager = {
  unique : (int * int * int, t) Hashtbl.t; (* (level, low id, high id) -> node *)
  and_cache : (int * int, t) Hashtbl.t;
  xor_cache : (int * int, t) Hashtbl.t;
  not_cache : (int, t) Hashtbl.t;
  mutable next_id : int;
}

let manager ?(cache_size = 1 lsl 14) () =
  {
    unique = Hashtbl.create cache_size;
    and_cache = Hashtbl.create cache_size;
    xor_cache = Hashtbl.create cache_size;
    not_cache = Hashtbl.create 256;
    next_id = 2;
  }

let id = function Leaf false -> 0 | Leaf true -> 1 | Node n -> n.id

let mk m level low high =
  if id low = id high then low
  else begin
    let key = (level, id low, id high) in
    match Hashtbl.find_opt m.unique key with
    | Some node -> node
    | None ->
        let node = Node { id = m.next_id; level; low; high } in
        m.next_id <- m.next_id + 1;
        Hashtbl.replace m.unique key node;
        node
  end

let zero _ = Leaf false
let one _ = Leaf true
let var m i = mk m i (Leaf false) (Leaf true)
let nvar m i = mk m i (Leaf true) (Leaf false)

let rec not_ m t =
  match t with
  | Leaf b -> Leaf (not b)
  | Node n -> (
      match Hashtbl.find_opt m.not_cache n.id with
      | Some r -> r
      | None ->
          let r = mk m n.level (not_ m n.low) (not_ m n.high) in
          Hashtbl.replace m.not_cache n.id r;
          r)


let cofactors t level =
  match t with
  | Leaf _ -> (t, t)
  | Node n -> if n.level = level then (n.low, n.high) else (t, t)

let rec and_ m a b =
  match (a, b) with
  | Leaf false, _ | _, Leaf false -> Leaf false
  | Leaf true, x | x, Leaf true -> x
  | Node na, Node nb ->
      if na.id = nb.id then a
      else begin
        let key = if na.id <= nb.id then (na.id, nb.id) else (nb.id, na.id) in
        match Hashtbl.find_opt m.and_cache key with
        | Some r -> r
        | None ->
            let level = min na.level nb.level in
            let a0, a1 = cofactors a level and b0, b1 = cofactors b level in
            let r = mk m level (and_ m a0 b0) (and_ m a1 b1) in
            Hashtbl.replace m.and_cache key r;
            r
      end

let or_ m a b = not_ m (and_ m (not_ m a) (not_ m b))

let rec xor m a b =
  match (a, b) with
  | Leaf false, x | x, Leaf false -> x
  | Leaf true, x | x, Leaf true -> not_ m x
  | Node na, Node nb ->
      if na.id = nb.id then Leaf false
      else begin
        let key = if na.id <= nb.id then (na.id, nb.id) else (nb.id, na.id) in
        match Hashtbl.find_opt m.xor_cache key with
        | Some r -> r
        | None ->
            let level = min na.level nb.level in
            let a0, a1 = cofactors a level and b0, b1 = cofactors b level in
            let r = mk m level (xor m a0 b0) (xor m a1 b1) in
            Hashtbl.replace m.xor_cache key r;
            r
      end

let ite m s a b = or_ m (and_ m s a) (and_ m (not_ m s) b)

let equal a b = id a = id b

let is_const = function Leaf b -> Some b | Node _ -> None

let size t =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Leaf _ -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.replace seen n.id ();
          go n.low;
          go n.high
        end
  in
  go t;
  Hashtbl.length seen

let rec eval t env =
  match t with
  | Leaf b -> b
  | Node n -> if env n.level then eval n.high env else eval n.low env

let sat_count t ~nvars =
  let memo = Hashtbl.create 64 in
  (* count over variables in [from, nvars) *)
  let rec go t from =
    match t with
    | Leaf false -> 0.0
    | Leaf true -> 2.0 ** float_of_int (nvars - from)
    | Node n -> (
        let key = (n.id, from) in
        match Hashtbl.find_opt memo key with
        | Some c -> c
        | None ->
            (* Variables skipped between [from] and the node each double the
               count; the node's own variable splits into the two branches. *)
            let skip = 2.0 ** float_of_int (n.level - from) in
            let result = skip *. (go n.low (n.level + 1) +. go n.high (n.level + 1)) in
            Hashtbl.replace memo key result;
            result)
  in
  go t 0

let of_tt m tt =
  let n = Truthtable.nvars tt in
  let rec build level f =
    match Truthtable.is_const f with
    | Some b -> Leaf b
    | None ->
        assert (level < n);
        let low = build (level + 1) (Truthtable.cofactor f level false) in
        let high = build (level + 1) (Truthtable.cofactor f level true) in
        mk m level low high
  in
  build 0 tt

let of_expr m e =
  let module E = Expr in
  let rec go = function
    | E.Const b -> Leaf b
    | E.Var i -> var m i
    | E.Not e -> not_ m (go e)
    | E.And children ->
        List.fold_left (fun acc e -> and_ m acc (go e)) (Leaf true) children
    | E.Or children -> List.fold_left (fun acc e -> or_ m acc (go e)) (Leaf false) children
    | E.Xor children -> List.fold_left (fun acc e -> xor m acc (go e)) (Leaf false) children
  in
  go e

let node_count m = m.next_id - 2
