(** Reduced ordered binary decision diagrams with hash-consing.

    Complements the 16-variable truth-table engine: BDDs scale to the wide
    benchmark circuits (ALUs, correctors) and give {e exact} combinational
    equivalence checking where the test suite would otherwise rely on random
    co-simulation. Variables are integers ordered by value (smaller = closer
    to the root). *)

type manager
type t

val manager : ?cache_size:int -> unit -> manager

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
val nvar : manager -> int -> t

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t

val equal : t -> t -> bool
(** Constant-time: hash-consing makes equivalent functions physically
    equal within one manager. *)

val is_const : t -> bool option

val size : t -> int
(** Number of distinct decision nodes reachable from this root. *)

val eval : t -> (int -> bool) -> bool

val sat_count : t -> nvars:int -> float
(** Number of satisfying assignments over the given variable count. *)

val of_tt : manager -> Truthtable.t -> t
val of_expr : manager -> Expr.t -> t

val node_count : manager -> int
(** Total allocated nodes (for resource reporting). *)
