(** Two-level (sum-of-products) cover minimization.

    An Espresso-style EXPAND / IRREDUNDANT / REDUCE iteration over cube
    covers of functions with at most 16 inputs. Used by the PLA subsystem
    (where every literal is a transistor in the AND plane) and wherever a
    smaller cover than {!Truthtable.isop} pays off. *)

val minimize : ?dc:Truthtable.t -> Truthtable.t -> Truthtable.cube list
(** [minimize ?dc f] returns an irredundant prime cover of [f]'s on-set,
    optionally using the don't-care set [dc] for expansion. The cover
    equals [f] on [f]'s care set (exactly [f] when [dc] is absent). *)

val cover_literals : Truthtable.cube list -> int
(** Total literal count — the PLA AND-plane cost. *)

val cover_terms : Truthtable.cube list -> int

val is_cover_of : ?dc:Truthtable.t -> Truthtable.t -> Truthtable.cube list -> bool
(** Does the cover compute [f] wherever [dc] is 0? *)
