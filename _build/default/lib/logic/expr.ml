type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t list

let var i = Var i
let const b = Const b

let not_ = function
  | Const b -> Const (not b)
  | Not e -> e
  | (Var _ | And _ | Or _ | Xor _) as e -> Not e

let rec flatten kind acc = function
  | [] -> List.rev acc
  | e :: rest ->
      let acc =
        match (kind, e) with
        | `And, And children | `Or, Or children | `Xor, Xor children ->
            List.rev_append (flatten kind [] children) acc
        | (`And | `Or | `Xor), (Const _ | Var _ | Not _ | And _ | Or _ | Xor _) -> e :: acc
      in
      flatten kind acc rest

let and_ children =
  let children = flatten `And [] children in
  let children = List.filter (fun e -> e <> Const true) children in
  if List.mem (Const false) children then Const false
  else
    match children with [] -> Const true | [ e ] -> e | _ -> And children

let or_ children =
  let children = flatten `Or [] children in
  let children = List.filter (fun e -> e <> Const false) children in
  if List.mem (Const true) children then Const true
  else match children with [] -> Const false | [ e ] -> e | _ -> Or children

let xor children =
  let children = flatten `Xor [] children in
  (* Fold constants out of the XOR: each [Const true] flips the phase. *)
  let phase = ref false in
  let keep =
    List.filter
      (fun e ->
        match e with
        | Const b ->
            if b then phase := not !phase;
            false
        | Var _ | Not _ | And _ | Or _ | Xor _ -> true)
      children
  in
  let base =
    match keep with [] -> Const false | [ e ] -> e | _ -> Xor keep
  in
  if !phase then not_ base else base

let rec eval env = function
  | Const b -> b
  | Var i -> env i
  | Not e -> not (eval env e)
  | And children -> List.for_all (eval env) children
  | Or children -> List.exists (eval env) children
  | Xor children -> List.fold_left (fun acc e -> acc <> eval env e) false children

let to_tt n e =
  let module T = Truthtable in
  let rec go = function
    | Const b -> T.const n b
    | Var i -> T.var n i
    | Not e -> T.lognot (go e)
    | And children -> List.fold_left (fun acc e -> T.logand acc (go e)) (T.const n true) children
    | Or children -> List.fold_left (fun acc e -> T.logor acc (go e)) (T.const n false) children
    | Xor children -> List.fold_left (fun acc e -> T.logxor acc (go e)) (T.const n false) children
  in
  go e

let support e =
  let module S = Set.Make (Int) in
  let rec go acc = function
    | Const _ -> acc
    | Var i -> S.add i acc
    | Not e -> go acc e
    | And children | Or children | Xor children -> List.fold_left go acc children
  in
  S.elements (go S.empty e)

let rec size = function
  | Const _ | Var _ -> 0
  | Not e -> size e
  | And children | Or children | Xor children ->
      List.length children - 1 + List.fold_left (fun acc e -> acc + size e) 0 children

let rec depth = function
  | Const _ | Var _ -> 0
  | Not e -> depth e
  | And children | Or children | Xor children ->
      let k = List.length children in
      let levels = int_of_float (ceil (log (float_of_int k) /. log 2.0)) in
      levels + List.fold_left (fun acc e -> max acc (depth e)) 0 children

let rec map_vars f = function
  | Const b -> Const b
  | Var i -> f i
  | Not e -> not_ (map_vars f e)
  | And children -> and_ (List.map (map_vars f) children)
  | Or children -> or_ (List.map (map_vars f) children)
  | Xor children -> xor (List.map (map_vars f) children)

(* ------------------------------------------------------------------ *)
(* Factoring                                                           *)

let cube_expr (c : Truthtable.cube) =
  let lits = ref [] in
  for i = 15 downto 0 do
    if (c.pos lsr i) land 1 = 1 then lits := Var i :: !lits;
    if (c.neg lsr i) land 1 = 1 then lits := Not (Var i) :: !lits
  done;
  and_ !lits

let of_cubes cubes = or_ (List.map cube_expr cubes)

(* A literal is (variable, phase). Count occurrences across cubes. *)
let most_frequent_literal cubes =
  let counts = Hashtbl.create 16 in
  let bump key = Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)) in
  List.iter
    (fun (c : Truthtable.cube) ->
      for i = 0 to 15 do
        if (c.pos lsr i) land 1 = 1 then bump (i, true);
        if (c.neg lsr i) land 1 = 1 then bump (i, false)
      done)
    cubes;
  Hashtbl.fold
    (fun key count best ->
      match best with
      | Some (_, best_count) when best_count >= count -> best
      | Some _ | None -> Some (key, count))
    counts None

let cube_has (c : Truthtable.cube) (i, phase) =
  if phase then (c.pos lsr i) land 1 = 1 else (c.neg lsr i) land 1 = 1

let cube_remove (c : Truthtable.cube) (i, phase) : Truthtable.cube =
  if phase then { c with pos = c.pos land lnot (1 lsl i) }
  else { c with neg = c.neg land lnot (1 lsl i) }

let cube_contains (f : Truthtable.cube) (q : Truthtable.cube) =
  f.pos land q.pos = q.pos && f.neg land q.neg = q.neg

let cube_sub (f : Truthtable.cube) (q : Truthtable.cube) : Truthtable.cube =
  { pos = f.pos land lnot q.pos; neg = f.neg land lnot q.neg }

let cube_mul (a : Truthtable.cube) (b : Truthtable.cube) : Truthtable.cube =
  { pos = a.pos lor b.pos; neg = a.neg lor b.neg }

(* Weak (algebraic) division: F = Q * D + R with Q the divisor. *)
let algebraic_divide (divisor : Truthtable.cube list) (cubes : Truthtable.cube list) =
  match divisor with
  | [] -> ([], cubes)
  | first :: rest ->
      let quotient_for q =
        List.filter_map (fun f -> if cube_contains f q then Some (cube_sub f q) else None) cubes
      in
      let inter a b = List.filter (fun x -> List.mem x b) a in
      let d = List.fold_left (fun acc q -> inter acc (quotient_for q)) (quotient_for first) rest in
      if d = [] then ([], cubes)
      else begin
        let product =
          List.concat_map (fun q -> List.map (fun dd -> cube_mul q dd) d) divisor
        in
        let r = List.filter (fun f -> not (List.mem f product)) cubes in
        (d, r)
      end

(* Quick-factor: divide by the quotient of the most frequent literal, made
   cube-free, and recurse (Brayton's algebraic factoring family). *)
let rec factor cubes =
  match cubes with
  | [] -> Const false
  | [ c ] -> cube_expr c
  | _ -> (
      match most_frequent_literal cubes with
      | None -> Const true (* an empty cube is present: tautology *)
      | Some ((i, phase), count) ->
          if count <= 1 then of_cubes cubes
          else begin
            let lit = ((i, phase), if phase then Var i else Not (Var i)) in
            let with_lit, without = List.partition (fun c -> cube_has c (fst lit)) cubes in
            let q0 = List.map (fun c -> cube_remove c (fst lit)) with_lit in
            (* Make the quotient cube-free by stripping its common cube. *)
            let common =
              List.fold_left
                (fun (acc : Truthtable.cube) c ->
                  { Truthtable.pos = acc.pos land c.Truthtable.pos; neg = acc.neg land c.neg })
                { Truthtable.pos = -1; neg = -1 }
                q0
            in
            let q = List.map (fun c -> cube_sub c common) q0 in
            let d, r = if List.length q >= 2 then algebraic_divide q cubes else ([], []) in
            if List.length d >= 2 then or_ [ and_ [ factor q; factor d ]; factor r ]
            else begin
              let factored = and_ [ snd lit; factor q0 ] in
              if without = [] then factored else or_ [ factored; factor without ]
            end
          end)

(* Detect an XOR/XNOR over a partition of the support: f = a ^ b (^ c ...).
   We only attempt full-support parity detection, which is what the
   generalized gates need. *)
let parity_of_tt t =
  let module T = Truthtable in
  let sup = T.support t in
  match sup with
  | [] | [ _ ] -> None
  | _ :: _ :: _ ->
      let n = T.nvars t in
      let parity =
        List.fold_left (fun acc v -> T.logxor acc (T.var n v)) (T.const n false) sup
      in
      if T.equal t parity then Some (xor (List.map var sup))
      else if T.equal t (T.lognot parity) then Some (not_ (xor (List.map var sup)))
      else None

let factor_tt t =
  match parity_of_tt t with
  | Some e -> e
  | None ->
      let pos = factor (Truthtable.isop t) in
      let neg = not_ (factor (Truthtable.isop (Truthtable.lognot t))) in
      if size neg < size pos then neg else pos

(* ------------------------------------------------------------------ *)

let rec pp_prec names prec ppf e =
  let open Format in
  match e with
  | Const b -> pp_print_string ppf (if b then "1" else "0")
  | Var i -> pp_print_string ppf (names i)
  | Not e -> fprintf ppf "!%a" (pp_prec names 3) e
  | And children ->
      let body ppf () =
        pp_print_list
          ~pp_sep:(fun ppf () -> pp_print_string ppf " * ")
          (pp_prec names 2) ppf children
      in
      if prec > 2 then fprintf ppf "(%a)" body () else body ppf ()
  | Xor children ->
      let body ppf () =
        pp_print_list
          ~pp_sep:(fun ppf () -> pp_print_string ppf " ^ ")
          (pp_prec names 1) ppf children
      in
      if prec > 1 then fprintf ppf "(%a)" body () else body ppf ()
  | Or children ->
      let body ppf () =
        pp_print_list
          ~pp_sep:(fun ppf () -> pp_print_string ppf " + ")
          (pp_prec names 0) ppf children
      in
      if prec > 0 then fprintf ppf "(%a)" body () else body ppf ()

let pp_named names ppf e = pp_prec names 0 ppf e
let pp ppf e = pp_named (fun i -> Printf.sprintf "x%d" i) ppf e
