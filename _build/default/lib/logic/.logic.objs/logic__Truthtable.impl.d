lib/logic/truthtable.ml: Array Format Hashtbl Int64 List Stdlib
