lib/logic/truthtable.mli: Format
