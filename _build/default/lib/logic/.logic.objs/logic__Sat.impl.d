lib/logic/sat.ml: Array Hashtbl List
