lib/logic/twolevel.ml: List Truthtable
