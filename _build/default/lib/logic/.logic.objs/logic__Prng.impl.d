lib/logic/prng.ml: Int64
