lib/logic/twolevel.mli: Truthtable
