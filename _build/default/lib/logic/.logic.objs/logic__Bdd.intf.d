lib/logic/bdd.mli: Expr Truthtable
