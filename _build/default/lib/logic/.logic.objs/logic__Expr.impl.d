lib/logic/expr.ml: Format Hashtbl Int List Option Printf Set Truthtable
