lib/logic/prng.mli:
