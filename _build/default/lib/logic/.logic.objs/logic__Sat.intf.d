lib/logic/sat.mli:
