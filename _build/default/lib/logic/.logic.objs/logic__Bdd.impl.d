lib/logic/bdd.ml: Expr Hashtbl List Truthtable
