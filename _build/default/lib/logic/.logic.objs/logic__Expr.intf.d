lib/logic/expr.mli: Format Truthtable
