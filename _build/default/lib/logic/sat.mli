(** A small CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP learning, VSIDS-style activities and Luby restarts — enough
    to discharge the combinational-equivalence miters of this project's
    test suite (BDD-hostile structures included). Variables are positive
    integers; literals are [var] or [-var] as in DIMACS. *)

type t

type result = Sat of (int -> bool) | Unsat | Unknown
(** [Sat model]: [model v] is the value of variable [v]; [Unknown] is
    returned only when a conflict budget was given and exhausted. *)

val create : unit -> t

val new_var : t -> int
(** Allocate the next variable (1, 2, 3, ...). *)

val add_clause : t -> int list -> unit
(** Clauses may be added only before {!solve}. The empty clause makes the
    instance trivially unsatisfiable. *)

val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> result
(** Solve under optional assumption literals. The solver can be re-solved
    with different assumptions. [max_conflicts] bounds the search effort. *)

val num_vars : t -> int
val num_clauses : t -> int
val num_conflicts : t -> int
(** Conflicts encountered during the last [solve] (for reporting). *)
