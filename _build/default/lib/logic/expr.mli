(** Boolean expression trees.

    Used in two roles: as the functional specification of library gates
    (genlib-style formulas over pins) and as the factored forms rebuilt from
    irredundant covers during AIG refactoring. *)

type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t list
      (** [And]/[Or]/[Xor] children lists always have length >= 2. *)

val var : int -> t
val const : bool -> t
val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val xor : t list -> t
(** Smart constructors: flatten nested operators of the same kind, drop
    units, and collapse to [Const]/single-child where possible. They do not
    attempt Boolean simplification beyond that. *)

val eval : (int -> bool) -> t -> bool

val to_tt : int -> t -> Truthtable.t
(** [to_tt n e] evaluates [e] as a function of [n] variables. *)

val support : t -> int list
(** Variables occurring in the expression, ascending, without duplicates. *)

val size : t -> int
(** Number of 2-input gate equivalents: every [And]/[Or]/[Xor] of [k]
    children costs [k-1]; [Not] and leaves are free. *)

val depth : t -> int
(** Levels of 2-input gate logic assuming balanced decomposition. *)

val map_vars : (int -> t) -> t -> t
(** Substitute an expression for every variable. *)

val of_cubes : Truthtable.cube list -> t
(** Two-level OR-of-ANDs expression of a cover. *)

val factor : Truthtable.cube list -> t
(** Algebraic factoring of a cover (quick-factor style: recursive division by
    the most frequent literal). The result computes the same function with
    typically far fewer literals than the flat SOP. *)

val factor_tt : Truthtable.t -> t
(** [factor_tt t] = [factor (Truthtable.isop t)], with XOR recovery: 2-input
    XOR/XNOR-shaped functions are emitted as [Xor] nodes. *)

val pp : Format.formatter -> t -> unit
(** Render with genlib-ish syntax: [*] for AND, [+] for OR, [^] for XOR, [!]
    for NOT, variables as [x<i>]. *)

val pp_named : (int -> string) -> Format.formatter -> t -> unit
