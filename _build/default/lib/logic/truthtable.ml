type t = { n : int; data : int64 array }

(* Number of storage words for an [n]-variable table. *)
let nwords n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Valid-bit mask for the (single) word of a small table. *)
let small_mask n = if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let nvars t = t.n

let const n b =
  assert (n >= 0 && n <= 16);
  let w = if b then small_mask n else 0L in
  { n; data = Array.make (nwords n) w }

(* Canonical word patterns for variables 0..5. *)
let var_pattern =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let var n i =
  assert (i >= 0 && i < n && n <= 16);
  let words = nwords n in
  let data =
    if i < 6 then Array.make words (Int64.logand var_pattern.(i) (small_mask n))
    else
      Array.init words (fun w -> if (w lsr (i - 6)) land 1 = 1 then -1L else 0L)
  in
  { n; data }

let map2 f a b =
  assert (a.n = b.n);
  { n = a.n; data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let logand = map2 Int64.logand
let logor = map2 Int64.logor
let logxor = map2 Int64.logxor

let lognot a =
  let m = small_mask a.n in
  { n = a.n; data = Array.map (fun w -> Int64.logand (Int64.lognot w) m) a.data }

let equal a b = a.n = b.n && a.data = b.data
let compare a b = Stdlib.compare (a.n, a.data) (b.n, b.data)
let hash t = Hashtbl.hash (t.n, t.data)

let eval t m =
  assert (m >= 0 && m < 1 lsl t.n);
  Int64.logand (Int64.shift_right_logical t.data.(m lsr 6) (m land 63)) 1L = 1L

let popcount_word x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let count_ones t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.data

let is_const t =
  if equal t (const t.n false) then Some false
  else if equal t (const t.n true) then Some true
  else None

(* Positive/negative halves of a word with respect to an intra-word
   variable [i < 6]: [lo] keeps the minterms where variable i is 0,
   duplicated into both halves; [hi] the minterms where it is 1. *)
let word_cofactor i b w =
  let shift = 1 lsl i in
  let mask = Int64.logxor var_pattern.(i) (-1L) in
  (* mask selects bits where var i = 0 *)
  if b then begin
    let hi = Int64.logand w var_pattern.(i) in
    Int64.logor hi (Int64.shift_right_logical hi shift)
  end
  else begin
    let lo = Int64.logand w mask in
    Int64.logor lo (Int64.shift_left lo shift)
  end

let cofactor t i b =
  assert (i >= 0 && i < t.n);
  if i < 6 then
    { n = t.n;
      data =
        Array.map (fun w -> Int64.logand (word_cofactor i b w) (small_mask t.n)) t.data }
  else begin
    let stride = 1 lsl (i - 6) in
    let data =
      Array.init (Array.length t.data) (fun w ->
          let base = w land lnot stride in
          t.data.(if b then base lor stride else base))
    in
    { n = t.n; data }
  end

let depends_on t i = not (equal (cofactor t i false) (cofactor t i true))

let support t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (if depends_on t i then i :: acc else acc) in
  go (t.n - 1) []

let of_bits n values =
  assert (Array.length values = 1 lsl n);
  let data = Array.make (nwords n) 0L in
  Array.iteri
    (fun m b ->
      if b then data.(m lsr 6) <- Int64.logor data.(m lsr 6) (Int64.shift_left 1L (m land 63)))
    values;
  { n; data }

let rebuild n f = of_bits n (Array.init (1 lsl n) f)

let permute t p =
  assert (Array.length p = t.n);
  let remap m =
    let m' = ref 0 in
    for i = 0 to t.n - 1 do
      if (m lsr p.(i)) land 1 = 1 then m' := !m' lor (1 lsl i)
    done;
    !m'
  in
  rebuild t.n (fun m -> eval t (remap m))

let flip_input t i =
  assert (i >= 0 && i < t.n);
  rebuild t.n (fun m -> eval t (m lxor (1 lsl i)))

let shrink t =
  let sup = Array.of_list (support t) in
  let k = Array.length sup in
  rebuild k (fun m ->
      let m' = ref 0 in
      Array.iteri (fun j v -> if (m lsr j) land 1 = 1 then m' := !m' lor (1 lsl v)) sup;
      (* Variables outside the support do not matter; leave them 0. *)
      eval t !m')

let expand t n =
  assert (n >= t.n && n <= 16);
  rebuild n (fun m -> eval t (m land ((1 lsl t.n) - 1)))

let of_int64 n w =
  assert (n <= 6);
  { n; data = [| Int64.logand w (small_mask n) |] }

let to_int64 t =
  assert (t.n <= 6);
  t.data.(0)

let pp ppf t =
  for w = Array.length t.data - 1 downto 0 do
    Format.fprintf ppf "%016Lx" t.data.(w)
  done

(* ------------------------------------------------------------------ *)
(* Two-level covers                                                    *)

type cube = { pos : int; neg : int }

let cube_tt n c =
  let acc = ref (const n true) in
  for i = 0 to n - 1 do
    if (c.pos lsr i) land 1 = 1 then acc := logand !acc (var n i)
    else if (c.neg lsr i) land 1 = 1 then acc := logand !acc (lognot (var n i))
  done;
  !acc

let of_cubes n cubes =
  List.fold_left (fun acc c -> logor acc (cube_tt n c)) (const n false) cubes

(* Minato–Morreale ISOP: cover [lower] while staying inside [upper].
   Returns (cover, tt of cover). *)
let isop t =
  let n = t.n in
  let rec go lower upper vars =
    if equal lower (const n false) then ([], const n false)
    else
      match vars with
      | [] ->
          (* lower is a nonzero constant on the remaining space: upper must be 1 *)
          ([ { pos = 0; neg = 0 } ], const n true)
      | v :: rest ->
          if not (depends_on lower v) && not (depends_on upper v) then go lower upper rest
          else begin
            let l0 = cofactor lower v false and l1 = cofactor lower v true in
            let u0 = cofactor upper v false and u1 = cofactor upper v true in
            (* Terms that must use literal v' / v respectively. *)
            let cover0, tt0 = go (logand l0 (lognot u1)) u0 rest in
            let cover1, tt1 = go (logand l1 (lognot u0)) u1 rest in
            let lnew =
              logor
                (logand l0 (lognot tt0))
                (logand l1 (lognot tt1))
            in
            let cover2, tt2 = go lnew (logand u0 u1) rest in
            let bit = 1 lsl v in
            let cover =
              List.map (fun c -> { c with neg = c.neg lor bit }) cover0
              @ List.map (fun c -> { c with pos = c.pos lor bit }) cover1
              @ cover2
            in
            let tt =
              logor tt2
                (logor
                   (logand (lognot (var n v)) tt0)
                   (logand (var n v) tt1))
            in
            (cover, tt)
          end
  in
  let vars = List.init n (fun i -> i) in
  let cover, tt = go t t vars in
  assert (equal tt t);
  cover
