(** Truth tables over up to 16 variables.

    A table over [n] variables stores 2^n function values packed into 64-bit
    words; minterm [m] (variable [i] contributing bit [i] of [m]) is bit
    [m mod 64] of word [m / 64]. Tables are immutable. *)

type t

val nvars : t -> int

val const : int -> bool -> t
(** [const n b] is the constant-[b] function of [n] variables. *)

val var : int -> int -> t
(** [var n i] is the projection onto variable [i] ([0 <= i < n <= 16]). *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val eval : t -> int -> bool
(** [eval t m] is the value of the function on minterm [m]. *)

val count_ones : t -> int

val is_const : t -> bool option
(** [Some b] if the table is the constant [b], else [None]. *)

val depends_on : t -> int -> bool
(** Whether the function actually depends on variable [i]. *)

val support : t -> int list
(** Variables the function depends on, ascending. *)

val cofactor : t -> int -> bool -> t
(** [cofactor t i b] restricts variable [i] to value [b]; the result still
    formally ranges over [n] variables but no longer depends on [i]. *)

val permute : t -> int array -> t
(** [permute t p] renames variables: variable [i] of the argument becomes
    variable [p.(i)] of the result. [p] must be a permutation of
    [0 .. nvars-1]. *)

val flip_input : t -> int -> t
(** Negate input [i]: [flip_input t i] evaluated on [m] equals [t] on
    [m lxor (1 lsl i)]. *)

val shrink : t -> t
(** Project the function onto its support: the result has [List.length
    (support t)] variables, with support variables renumbered in ascending
    order. *)

val expand : t -> int -> t
(** [expand t n] re-views [t] as a function of [n >= nvars t] variables that
    ignores the new ones. *)

val of_int64 : int -> int64 -> t
(** [of_int64 n w] builds a table of [n <= 6] variables from the low [2^n]
    bits of [w]. *)

val to_int64 : t -> int64
(** Inverse of {!of_int64}; the table must have at most 6 variables. *)

val of_bits : int -> bool array -> t
(** [of_bits n values] with [Array.length values = 2^n]. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal dump, most significant word first. *)

(** {1 Two-level covers} *)

type cube = { pos : int; neg : int }
(** A product term over the table's variables: variable [i] appears positive
    if bit [i] of [pos] is set, negative if bit [i] of [neg] is set.
    [pos land neg = 0]. The empty cube is the constant-1 product. *)

val cube_tt : int -> cube -> t
(** Truth table of a cube over [n] variables. *)

val isop : t -> cube list
(** Irredundant sum-of-products cover computed with the Minato–Morreale
    recursion. [isop t] covers exactly the on-set of [t]. *)

val of_cubes : int -> cube list -> t
(** OR of the given cubes over [n] variables. *)
