module T = Truthtable

let cover_literals cubes =
  let count_bits m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  List.fold_left
    (fun acc (c : T.cube) -> acc + count_bits c.T.pos + count_bits c.T.neg)
    0 cubes

let cover_terms = List.length

let is_cover_of ?dc f cubes =
  let n = T.nvars f in
  let covered = T.of_cubes n cubes in
  match dc with
  | None -> T.equal covered f
  | Some dc ->
      (* agree wherever dc = 0 *)
      let care = T.lognot dc in
      T.equal (T.logand covered care) (T.logand f care)

(* EXPAND: greedily drop literals from a cube while it stays inside
   on-set + dc-set. Literals are tried in a fixed order; the result is a
   prime implicant. *)
let expand_cube n upper (c : T.cube) =
  let current = ref c in
  for i = 0 to n - 1 do
    let try_drop (c : T.cube) =
      if (c.T.pos lsr i) land 1 = 1 then Some { c with T.pos = c.T.pos land lnot (1 lsl i) }
      else if (c.T.neg lsr i) land 1 = 1 then
        Some { c with T.neg = c.T.neg land lnot (1 lsl i) }
      else None
    in
    match try_drop !current with
    | None -> ()
    | Some bigger ->
        let tt = T.cube_tt n bigger in
        if T.equal (T.logand tt upper) tt then current := bigger
  done;
  !current

(* IRREDUNDANT: drop cubes whose care part is covered by the others. *)
let irredundant n care f_cubes =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let others = List.rev_append kept rest in
        let rest_tt = T.of_cubes n others in
        let c_tt = T.logand (T.cube_tt n c) care in
        if T.equal (T.logand c_tt rest_tt) c_tt then go kept rest else go (c :: kept) rest
  in
  go [] f_cubes

(* REDUCE: shrink cubes one at a time (sequentially, like Espresso — a
   simultaneous reduction would un-cover regions shared by two cubes): each
   cube becomes the smallest cube covering the care minterms that the rest
   of the current cover misses. *)
let smallest_enclosing_cube n own =
  let pos = ref ((1 lsl n) - 1) and neg = ref ((1 lsl n) - 1) in
  for m = 0 to (1 lsl n) - 1 do
    if T.eval own m then begin
      pos := !pos land m;
      neg := !neg land lnot m
    end
  done;
  { T.pos = !pos land ((1 lsl n) - 1); T.neg = !neg land ((1 lsl n) - 1) }

let reduce_sequential n care cubes =
  let rec go done_ = function
    | [] -> List.rev done_
    | c :: rest ->
        let others_tt = T.of_cubes n (List.rev_append done_ rest) in
        let own = T.logand (T.logand (T.cube_tt n c) care) (T.lognot others_tt) in
        (match T.is_const own with
        | Some false -> go done_ rest (* fully redundant *)
        | Some true | None -> go (smallest_enclosing_cube n own :: done_) rest)
  in
  go [] cubes

let minimize ?dc f =
  let n = T.nvars f in
  assert (n <= 16);
  let dc = match dc with Some d -> d | None -> T.const n false in
  let care = T.lognot dc in
  let upper = T.logor f dc in
  let on_care = T.logand f care in
  let cost cubes = (cover_terms cubes, cover_literals cubes) in
  let step cubes =
    let expanded = List.map (expand_cube n upper) cubes in
    let expanded = List.sort_uniq compare expanded in
    let irr = irredundant n on_care expanded in
    let reduced = reduce_sequential n on_care irr in
    (* Re-expand the reduced cubes to primes for the final answer. *)
    let final = List.sort_uniq compare (List.map (expand_cube n upper) reduced) in
    irredundant n on_care final
  in
  let rec iterate cubes best rounds =
    if rounds = 0 then cubes
    else begin
      let next = step cubes in
      if cost next < best then iterate next (cost next) (rounds - 1) else cubes
    end
  in
  let start = T.isop f in
  let result = iterate start (cost start) 8 in
  assert (is_cover_of ~dc f result);
  result
