type t = { len : int; data : int64 array }

let nwords len = (len + 63) / 64

let create len =
  assert (len >= 0);
  { len; data = Array.make (max 1 (nwords len)) 0L }

let length t = t.len
let words t = t.data

(* Mask clearing bits past [len] in the last word. *)
let tail_mask len =
  let r = len land 63 in
  if r = 0 then -1L else Int64.sub (Int64.shift_left 1L r) 1L

let clamp t =
  if t.len > 0 then begin
    let last = nwords t.len - 1 in
    t.data.(last) <- Int64.logand t.data.(last) (tail_mask t.len)
  end

let get t i =
  assert (i >= 0 && i < t.len);
  Int64.logand (Int64.shift_right_logical t.data.(i lsr 6) (i land 63)) 1L = 1L

let set t i b =
  assert (i >= 0 && i < t.len);
  let w = i lsr 6 and m = Int64.shift_left 1L (i land 63) in
  t.data.(w) <-
    (if b then Int64.logor t.data.(w) m else Int64.logand t.data.(w) (Int64.lognot m))

let fill_random rng t =
  for w = 0 to Array.length t.data - 1 do
    t.data.(w) <- Prng.next64 rng
  done;
  clamp t

let map2 f a b =
  assert (a.len = b.len);
  let r = create a.len in
  for w = 0 to Array.length r.data - 1 do
    r.data.(w) <- f a.data.(w) b.data.(w)
  done;
  clamp r;
  r

let logand = map2 Int64.logand
let logor = map2 Int64.logor
let logxor = map2 Int64.logxor

let lognot a =
  let r = create a.len in
  for w = 0 to Array.length r.data - 1 do
    r.data.(w) <- Int64.lognot a.data.(w)
  done;
  clamp r;
  r

let equal a b = a.len = b.len && a.data = b.data

let popcount_word x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.data

let transitions t =
  if t.len <= 1 then 0
  else begin
    let count = ref 0 in
    let last_word = nwords t.len - 1 in
    for w = 0 to last_word do
      let x = t.data.(w) in
      (* Toggles inside the word: bit i vs bit i+1. *)
      let shifted = Int64.shift_right_logical x 1 in
      let inner = Int64.logxor x shifted in
      (* The top comparison of the word pairs bit 63 with the next word's bit 0
         (or is out of range for the final partial word); mask it out here and
         handle the seam below. *)
      let valid_bits = if w = last_word then (t.len - 1) land 63 else 63 in
      let mask =
        if valid_bits = 0 then 0L else Int64.sub (Int64.shift_left 1L valid_bits) 1L
      in
      count := !count + popcount_word (Int64.logand inner mask);
      if w < last_word then begin
        let hi = Int64.shift_right_logical x 63 in
        let lo = Int64.logand t.data.(w + 1) 1L in
        if hi <> lo then incr count
      end
    done;
    !count
  end

let copy t = { len = t.len; data = Array.copy t.data }

let pp ppf t =
  for i = t.len - 1 downto 0 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
