module T = Logic.Truthtable

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Logical lines: backslash continuations joined, comments stripped. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | line :: rest ->
        let line = strip_comment line in
        let line = String.trim line in
        if line = "" then join (if pending = "" then acc else pending :: acc) "" rest
        else if String.length line > 0 && line.[String.length line - 1] = '\\' then
          join acc (pending ^ String.sub line 0 (String.length line - 1) ^ " ") rest
        else join ((pending ^ line) :: acc) "" rest
  in
  join [] "" raw

let tokens line =
  String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

type names_block = { ins : string list; out : string; cover : (string * char) list }
(* cover: (input pattern, output char) rows *)

let read_string text =
  let lines = logical_lines text in
  let inputs = ref [] and outputs = ref [] and blocks = ref [] in
  let rec scan = function
    | [] -> ()
    | line :: rest -> (
        match tokens line with
        | ".model" :: _ | ".end" :: _ -> scan rest
        | ".inputs" :: names ->
            inputs := !inputs @ names;
            scan rest
        | ".outputs" :: names ->
            outputs := !outputs @ names;
            scan rest
        | ".names" :: signals ->
            (match List.rev signals with
            | [] -> fail ".names with no signals"
            | out :: rev_ins ->
                let ins = List.rev rev_ins in
                let rec take_cover acc = function
                  | row :: more when String.length row > 0 && row.[0] <> '.' -> (
                      match tokens row with
                      | [ pat; v ] when ins <> [] && String.length v = 1 ->
                          take_cover ((pat, v.[0]) :: acc) more
                      | [ v ] when ins = [] && String.length v = 1 ->
                          take_cover (("", v.[0]) :: acc) more
                      | _ -> fail "bad cover row %S" row)
                  | remaining -> (List.rev acc, remaining)
                in
                let cover, remaining = take_cover [] rest in
                blocks := { ins; out; cover } :: !blocks;
                scan remaining)
        | directive :: _ when String.length directive > 0 && directive.[0] = '.' ->
            fail "unsupported BLIF directive %S" directive
        | _ -> fail "unexpected line %S" line)
  in
  scan lines;
  let blocks = List.rev !blocks in
  let t = Netlist.create () in
  let ids = Hashtbl.create 64 in
  List.iter (fun name -> Hashtbl.replace ids name (Netlist.add_input t name)) !inputs;
  (* Blocks may reference each other in any order: resolve by repeated passes
     (combinational circuits are acyclic). *)
  let remaining = ref blocks in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let later = ref [] in
    List.iter
      (fun b ->
        if List.for_all (fun i -> Hashtbl.mem ids i) b.ins then begin
          progress := true;
          let k = List.length b.ins in
          if k > 16 then fail ".names with %d inputs (max 16)" k;
          let on_output_one = List.for_all (fun (_, v) -> v = '1') b.cover in
          let rows = if on_output_one then b.cover else List.filter (fun (_, v) -> v = '0') b.cover in
          if (not on_output_one) && List.exists (fun (_, v) -> v = '1') b.cover then
            fail "mixed 0/1 cover for %s" b.out;
          let cube_of pat =
            if String.length pat <> k then fail "cover width mismatch for %s" b.out;
            let pos = ref 0 and neg = ref 0 in
            String.iteri
              (fun i c ->
                match c with
                | '1' -> pos := !pos lor (1 lsl i)
                | '0' -> neg := !neg lor (1 lsl i)
                | '-' -> ()
                | _ -> fail "bad cover char %C" c)
              pat;
            { T.pos = !pos; T.neg = !neg }
          in
          let tt = T.of_cubes k (List.map (fun (pat, _) -> cube_of pat) rows) in
          let tt = if on_output_one then tt else T.lognot tt in
          let fanins = Array.of_list (List.map (Hashtbl.find ids) b.ins) in
          let id =
            if k = 0 then Netlist.add_node t (Netlist.Constant (T.eval tt 0)) [||]
            else Netlist.add_node t (Netlist.Lut tt) fanins
          in
          Hashtbl.replace ids b.out id
        end
        else later := b :: !later)
      !remaining;
    remaining := List.rev !later
  done;
  if !remaining <> [] then
    fail "unresolved signals (cycle or missing driver), e.g. %S" (List.hd !remaining).out;
  List.iter
    (fun name ->
      match Hashtbl.find_opt ids name with
      | Some id -> Netlist.add_output t name id
      | None -> fail "undriven output %S" name)
    !outputs;
  t

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  read_string s

let node_name t id =
  match Netlist.op t id with
  | Netlist.Input -> Netlist.input_name t id
  | Netlist.Constant _ | Netlist.Buf | Netlist.Not | Netlist.And | Netlist.Or
  | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Xnor | Netlist.Mux
  | Netlist.Maj | Netlist.Lut _ ->
      Printf.sprintf "n%d" id

let write_string ?(model = "circuit") t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n.inputs" model);
  Array.iter (fun id -> Buffer.add_string buf (" " ^ Netlist.input_name t id)) (Netlist.inputs t);
  Buffer.add_string buf "\n.outputs";
  Array.iter (fun (name, _) -> Buffer.add_string buf (" " ^ name)) (Netlist.outputs t);
  Buffer.add_char buf '\n';
  let emit_cover fanin_names tt =
    let k = List.length fanin_names in
    let cubes = T.isop tt in
    if cubes = [] then Buffer.add_string buf "" (* constant 0: empty cover *)
    else
      List.iter
        (fun (c : T.cube) ->
          if k = 0 then Buffer.add_string buf "1\n"
          else begin
            for i = 0 to k - 1 do
              if (c.pos lsr i) land 1 = 1 then Buffer.add_char buf '1'
              else if (c.neg lsr i) land 1 = 1 then Buffer.add_char buf '0'
              else Buffer.add_char buf '-'
            done;
            Buffer.add_string buf " 1\n"
          end)
        cubes
  in
  Netlist.iter_nodes t (fun id op fanins ->
      match op with
      | Netlist.Input -> ()
      | Netlist.Constant _ | Netlist.Buf | Netlist.Not | Netlist.And | Netlist.Or
      | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Xnor | Netlist.Mux
      | Netlist.Maj | Netlist.Lut _ ->
          let k = Array.length fanins in
          let fanin_names = Array.to_list (Array.map (node_name t) fanins) in
          Buffer.add_string buf ".names";
          List.iter (fun n -> Buffer.add_string buf (" " ^ n)) fanin_names;
          Buffer.add_string buf (" " ^ node_name t id ^ "\n");
          let tt =
            match op with
            | Netlist.Lut tt -> tt
            | Netlist.Input -> assert false
            | Netlist.Constant _ | Netlist.Buf | Netlist.Not | Netlist.And
            | Netlist.Or | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Xnor
            | Netlist.Mux | Netlist.Maj ->
                let vars = Array.init k (fun i -> Logic.Expr.var i) in
                let e =
                  match op with
                  | Netlist.Constant b -> Logic.Expr.const b
                  | Netlist.Buf -> vars.(0)
                  | Netlist.Not -> Logic.Expr.not_ vars.(0)
                  | Netlist.And -> Logic.Expr.and_ (Array.to_list vars)
                  | Netlist.Or -> Logic.Expr.or_ (Array.to_list vars)
                  | Netlist.Xor -> Logic.Expr.xor (Array.to_list vars)
                  | Netlist.Nand -> Logic.Expr.not_ (Logic.Expr.and_ (Array.to_list vars))
                  | Netlist.Nor -> Logic.Expr.not_ (Logic.Expr.or_ (Array.to_list vars))
                  | Netlist.Xnor -> Logic.Expr.not_ (Logic.Expr.xor (Array.to_list vars))
                  | Netlist.Mux ->
                      Logic.Expr.or_
                        [ Logic.Expr.and_ [ vars.(0); vars.(2) ];
                          Logic.Expr.and_ [ Logic.Expr.not_ vars.(0); vars.(1) ] ]
                  | Netlist.Maj ->
                      Logic.Expr.or_
                        [ Logic.Expr.and_ [ vars.(0); vars.(1) ];
                          Logic.Expr.and_ [ vars.(0); vars.(2) ];
                          Logic.Expr.and_ [ vars.(1); vars.(2) ] ]
                  | Netlist.Input | Netlist.Lut _ -> assert false
                in
                Logic.Expr.to_tt k e
          in
          emit_cover fanin_names tt);
  (* Alias outputs whose name differs from their driver's printed name. *)
  Array.iter
    (fun (name, id) ->
      let driver = node_name t id in
      if driver <> name then
        Buffer.add_string buf (Printf.sprintf ".names %s %s\n1 1\n" driver name))
    (Netlist.outputs t);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model path t =
  let oc = open_out path in
  output_string oc (write_string ?model t);
  close_out oc
