(** 64-way parallel bit simulation of netlists.

    This is the engine behind the 640 K random-pattern power estimation of
    the paper (Section 4): input vectors are packed 64 per machine word, and
    the whole netlist is evaluated with word-level logic operations. *)

type result = {
  num_patterns : int;
  node_values : Logic.Bitvec.t array;  (** indexed by node id *)
}

val run : Netlist.t -> Logic.Bitvec.t array -> result
(** [run t input_vectors] simulates with the given per-input stimulus (in
    [Netlist.inputs] order; all vectors must have equal length). *)

val run_random : ?seed:int64 -> Netlist.t -> int -> result
(** [run_random t n] simulates [n] uniform random patterns (deterministic
    given [seed], default [42L]). *)

val signal_probability : result -> int -> float
(** Fraction of patterns on which the node evaluates to 1. *)

val toggle_rate : result -> int -> float
(** Average number of value changes per consecutive pattern pair — the
    switching activity [alpha] of the node under the applied stimulus,
    treating patterns as consecutive clock cycles. *)

val output_values : Netlist.t -> result -> (string * Logic.Bitvec.t) array
