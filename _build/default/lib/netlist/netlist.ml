type op =
  | Input
  | Constant of bool
  | Buf
  | Not
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Xnor
  | Mux
  | Maj
  | Lut of Logic.Truthtable.t

type node = { op : op; fanins : int array }

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable input_ids : int list; (* reversed *)
  mutable input_names : (int * string) list;
  mutable outs : (string * int) list; (* reversed *)
}

let create () =
  { nodes = Array.make 64 { op = Input; fanins = [||] }; n = 0; input_ids = []; input_names = []; outs = [] }

let grow t =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end

let arity_ok op fanins =
  let k = Array.length fanins in
  match op with
  | Input | Constant _ -> k = 0
  | Buf | Not -> k = 1
  | Mux | Maj -> k = 3
  | And | Or | Xor | Nand | Nor | Xnor -> k >= 2
  | Lut tt -> k = Logic.Truthtable.nvars tt

let add_raw t op fanins =
  assert (arity_ok op fanins);
  Array.iter (fun f -> assert (f >= 0 && f < t.n)) fanins;
  grow t;
  t.nodes.(t.n) <- { op; fanins };
  t.n <- t.n + 1;
  t.n - 1

let add_input t name =
  let id = add_raw t Input [||] in
  t.input_ids <- id :: t.input_ids;
  t.input_names <- (id, name) :: t.input_names;
  id

let add_node t op fanins =
  (match op with Input -> invalid_arg "add_node: use add_input" | Constant _ | Buf | Not | And | Or | Xor | Nand | Nor | Xnor | Mux | Maj | Lut _ -> ());
  add_raw t op fanins

let add_output t name id =
  assert (id >= 0 && id < t.n);
  t.outs <- (name, id) :: t.outs

let size t = t.n
let num_inputs t = List.length t.input_ids
let num_outputs t = List.length t.outs
let inputs t = Array.of_list (List.rev t.input_ids)
let outputs t = Array.of_list (List.rev t.outs)
let op t id = t.nodes.(id).op
let fanins t id = t.nodes.(id).fanins
let input_name t id = List.assoc id t.input_names

let iter_nodes t f =
  for id = 0 to t.n - 1 do
    f id t.nodes.(id).op t.nodes.(id).fanins
  done

let num_gates t =
  let count = ref 0 in
  iter_nodes t (fun _ op _ ->
      match op with
      | Input | Constant _ -> ()
      | Buf | Not | And | Or | Xor | Nand | Nor | Xnor | Mux | Maj | Lut _ -> incr count);
  !count

let apply op (args : bool array) =
  let all f = Array.for_all f args and any f = Array.exists f args in
  match op with
  | Input -> invalid_arg "apply Input"
  | Constant b -> b
  | Buf -> args.(0)
  | Not -> not args.(0)
  | And -> all Fun.id
  | Or -> any Fun.id
  | Xor -> Array.fold_left (fun acc b -> acc <> b) false args
  | Nand -> not (all Fun.id)
  | Nor -> not (any Fun.id)
  | Xnor -> not (Array.fold_left (fun acc b -> acc <> b) false args)
  | Mux -> if args.(0) then args.(2) else args.(1)
  | Maj ->
      (args.(0) && args.(1)) || (args.(0) && args.(2)) || (args.(1) && args.(2))
  | Lut tt ->
      let m = ref 0 in
      Array.iteri (fun i b -> if b then m := !m lor (1 lsl i)) args;
      Logic.Truthtable.eval tt !m

let eval t input_values =
  let ins = inputs t in
  assert (Array.length input_values = Array.length ins);
  let values = Array.make t.n false in
  Array.iteri (fun i id -> values.(id) <- input_values.(i)) ins;
  iter_nodes t (fun id op fanins ->
      match op with
      | Input -> ()
      | Constant _ | Buf | Not | And | Or | Xor | Nand | Nor | Xnor | Mux | Maj | Lut _ ->
          values.(id) <- apply op (Array.map (fun f -> values.(f)) fanins));
  Array.map (fun (_, id) -> values.(id)) (outputs t)

let node_function t root vars =
  let module T = Logic.Truthtable in
  let n = Array.length vars in
  let memo = Hashtbl.create 64 in
  Array.iteri (fun i id -> Hashtbl.replace memo id (T.var n i)) vars;
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some tt -> tt
    | None ->
        let { op; fanins } = t.nodes.(id) in
        let tts = Array.map go fanins in
        let tt =
          match op with
          | Input -> invalid_arg "node_function: reached an input not in vars"
          | Constant b -> T.const n b
          | Buf -> tts.(0)
          | Not -> T.lognot tts.(0)
          | And -> Array.fold_left T.logand (T.const n true) tts
          | Or -> Array.fold_left T.logor (T.const n false) tts
          | Xor -> Array.fold_left T.logxor (T.const n false) tts
          | Nand -> T.lognot (Array.fold_left T.logand (T.const n true) tts)
          | Nor -> T.lognot (Array.fold_left T.logor (T.const n false) tts)
          | Xnor -> T.lognot (Array.fold_left T.logxor (T.const n false) tts)
          | Mux -> T.logor (T.logand tts.(0) tts.(2)) (T.logand (T.lognot tts.(0)) tts.(1))
          | Maj ->
              T.logor
                (T.logand tts.(0) tts.(1))
                (T.logor (T.logand tts.(0) tts.(2)) (T.logand tts.(1) tts.(2)))
          | Lut table ->
              (* Compose the LUT with the fanin functions minterm by minterm:
                 f = OR over on-set minterms m of the product of fanin
                 literals selected by m. LUTs are small (<= 6 vars). *)
              let k = Array.length tts in
              let acc = ref (T.const n false) in
              for m = 0 to (1 lsl k) - 1 do
                if T.eval table m then begin
                  let cube = ref (T.const n true) in
                  for i = 0 to k - 1 do
                    let lit = if (m lsr i) land 1 = 1 then tts.(i) else T.lognot tts.(i) in
                    cube := T.logand !cube lit
                  done;
                  acc := T.logor !acc !cube
                end
              done;
              !acc
        in
        Hashtbl.replace memo id tt;
        tt
  in
  go root

let pp_stats ppf t =
  let counts = Hashtbl.create 16 in
  let label op =
    match op with
    | Input -> "input"
    | Constant _ -> "const"
    | Buf -> "buf"
    | Not -> "not"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Nand -> "nand"
    | Nor -> "nor"
    | Xnor -> "xnor"
    | Mux -> "mux"
    | Maj -> "maj"
    | Lut _ -> "lut"
  in
  iter_nodes t (fun _ op _ ->
      let key = label op in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)));
  Format.fprintf ppf "nodes=%d inputs=%d outputs=%d gates=%d [" t.n (num_inputs t)
    (num_outputs t) (num_gates t);
  let first = ref true in
  List.iter
    (fun key ->
      match Hashtbl.find_opt counts key with
      | None -> ()
      | Some c ->
          if not !first then Format.pp_print_string ppf " ";
          first := false;
          Format.fprintf ppf "%s:%d" key c)
    [ "input"; "const"; "buf"; "not"; "and"; "or"; "xor"; "nand"; "nor"; "xnor"; "mux"; "maj"; "lut" ];
  Format.pp_print_string ppf "]"
