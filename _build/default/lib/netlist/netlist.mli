(** Technology-independent gate-level netlists.

    Nodes are stored in topological order: every fanin of a node has a
    smaller id. Primary inputs are nodes with op {!Input}; primary outputs
    are named references to nodes. This is the exchange format between the
    benchmark generators, the AIG optimizer and the technology mapper. *)

type op =
  | Input
  | Constant of bool
  | Buf
  | Not
  | And
  | Or
  | Xor
  | Nand
  | Nor
  | Xnor
  | Mux  (** fanins [s; a; b]: if [s] then [b] else [a] *)
  | Maj  (** 3-input majority *)
  | Lut of Logic.Truthtable.t
      (** arbitrary function; fanin [i] is variable [i] of the table *)

type t

val create : unit -> t

val add_input : t -> string -> int
(** Returns the node id of the new primary input. *)

val add_node : t -> op -> int array -> int
(** [add_node t op fanins] appends a logic node; all fanins must already
    exist. Arity is checked: [Buf]/[Not] take 1, [Mux]/[Maj] take 3,
    [And]/[Or]/[Xor]/[Nand]/[Nor]/[Xnor] take >= 2, [Lut tt] takes
    [Truthtable.nvars tt], [Constant] takes 0. *)

val add_output : t -> string -> int -> unit

val size : t -> int
(** Total number of nodes, inputs included. *)

val num_inputs : t -> int
val num_outputs : t -> int

val inputs : t -> int array
(** Ids of the primary inputs in declaration order. *)

val outputs : t -> (string * int) array

val op : t -> int -> op
val fanins : t -> int -> int array
val input_name : t -> int -> string

val iter_nodes : t -> (int -> op -> int array -> unit) -> unit
(** Visit every node in topological (id) order. *)

val num_gates : t -> int
(** Nodes that are neither inputs nor constants. *)

val eval : t -> bool array -> bool array
(** [eval t input_values] computes output values (in [outputs] order) for a
    single input vector given in [inputs] order. Reference semantics used by
    tests; simulation at scale goes through {!Sim}. *)

val node_function : t -> int -> int array -> Logic.Truthtable.t
(** [node_function t node vars] computes the function of [node] in terms of
    the given nodes [vars]: variable [i] of the result is node [vars.(i)].
    Every path from [node] to a primary input must pass through [vars].
    Used for equivalence checking of small circuits in tests. *)

val pp_stats : Format.formatter -> t -> unit
