(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Supports the combinational subset used by synthesis benchmarks:
    [.model], [.inputs], [.outputs], [.names] with single-output covers, and
    [.end]. Covers become {!Netlist.op.Lut} nodes. *)

exception Parse_error of string

val read_string : string -> Netlist.t
val read_file : string -> Netlist.t

val write_string : ?model:string -> Netlist.t -> string
val write_file : ?model:string -> string -> Netlist.t -> unit
