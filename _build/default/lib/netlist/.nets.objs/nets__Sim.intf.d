lib/netlist/sim.mli: Logic Netlist
