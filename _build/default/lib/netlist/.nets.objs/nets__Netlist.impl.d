lib/netlist/netlist.ml: Array Format Fun Hashtbl List Logic Option
