lib/netlist/seq.mli: Logic Netlist
