lib/netlist/blif.mli: Netlist
