lib/netlist/netlist.mli: Format Logic
