lib/netlist/sim.ml: Array List Logic Netlist
