lib/netlist/blif.ml: Array Buffer Hashtbl List Logic Netlist Printf String
