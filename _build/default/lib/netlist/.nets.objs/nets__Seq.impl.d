lib/netlist/seq.ml: Array List Logic Netlist Sim
