(** Sequential (registered) circuits: a combinational core plus edge-
    triggered registers.

    The paper evaluates combinational blocks; real designs clock them. A
    sequential circuit here is a combinational netlist in which every
    register contributes one pseudo-input (its Q output) and designates one
    node as its D input. Cycle simulation advances all registers
    simultaneously; 64 independent streams run in parallel (bit-sliced), so
    power estimation gets 64 samples per simulated cycle. *)

type t

val create : unit -> t

val comb : t -> Netlist.t
(** The underlying combinational netlist (build through it). *)

val add_input : t -> string -> int
(** A true primary input of the sequential circuit. *)

val add_register : t -> string -> ?init:bool -> unit -> int
(** Declare a register; returns the node id of its Q output (a pseudo-input
    of the combinational core). The D input is connected later with
    {!connect}. *)

val connect : t -> string -> int -> unit
(** [connect t reg d_node]: drive register [reg] from [d_node]. Every
    register must be connected before simulation. *)

val add_output : t -> string -> int -> unit

val num_registers : t -> int
val registers : t -> (string * int * int) list
(** [(name, q_node, d_node)]; raises if some register is unconnected. *)

type sim = {
  cycles : int;
  streams : int;  (** 64 independent executions, bit-sliced *)
  node_toggles : float array;
      (** average toggles per cycle per node of the combinational core,
          register outputs included *)
  node_probs : float array;  (** average probability of 1 per node *)
  final_state : Logic.Bitvec.t array;  (** per register, one bit per stream *)
}

val simulate :
  ?seed:int64 -> ?cycles:int -> t -> sim
(** Drive the primary inputs with fresh random values every cycle,
    starting from the declared initial state in every stream. *)

val step :
  t -> state:bool array -> inputs:bool array -> bool array * bool array
(** Single-stream reference semantics: [(outputs, next_state)] for one
    cycle, registers in {!registers} order, outputs in declaration order.
    Used by the tests to cross-check {!simulate}. *)
