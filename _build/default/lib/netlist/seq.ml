module B = Logic.Bitvec

type reg = { name : string; q_node : int; mutable d_node : int; init : bool }

type t = {
  netlist : Netlist.t;
  mutable regs : reg list; (* reversed *)
}

let create () = { netlist = Netlist.create (); regs = [] }

let comb t = t.netlist
let add_input t name = Netlist.add_input t.netlist name

let add_register t name ?(init = false) () =
  let q = Netlist.add_input t.netlist (name ^ ".q") in
  t.regs <- { name; q_node = q; d_node = -1; init } :: t.regs;
  q

let connect t name d_node =
  match List.find_opt (fun r -> r.name = name) t.regs with
  | Some r -> r.d_node <- d_node
  | None -> invalid_arg ("Seq.connect: unknown register " ^ name)

let add_output t name id = Netlist.add_output t.netlist name id

let num_registers t = List.length t.regs

let registers t =
  List.rev_map
    (fun r ->
      if r.d_node < 0 then failwith ("Seq: register " ^ r.name ^ " is unconnected");
      (r.name, r.q_node, r.d_node))
    t.regs

type sim = {
  cycles : int;
  streams : int;
  node_toggles : float array;
  node_probs : float array;
  final_state : B.t array;
}

(* True primary inputs = inputs of the core that are not register Qs. *)
let true_inputs t =
  let qs = List.map (fun r -> r.q_node) t.regs in
  Array.to_list (Netlist.inputs t.netlist)
  |> List.filter (fun id -> not (List.mem id qs))

let simulate ?(seed = 99L) ?(cycles = 10_000) t =
  let regs = registers t in
  let rng = Logic.Prng.create seed in
  let streams = 64 in
  let size = Netlist.size t.netlist in
  (* Per-node running stats. *)
  let toggles = Array.make size 0 in
  let ones = Array.make size 0 in
  (* Current state per register: one word = 64 streams. *)
  let state =
    Array.of_list
      (List.map
         (fun (_, _, _) -> B.create streams)
         regs)
  in
  List.iteri
    (fun i (name, _, _) ->
      let r = List.find (fun r -> r.name = name) t.regs in
      if r.init then state.(i) <- B.lognot (B.create streams))
    regs;
  let prev = Array.make size (B.create streams) in
  let all_input_ids = Netlist.inputs t.netlist in
  for cycle = 0 to cycles - 1 do
    (* Build this cycle's stimulus: fresh random values on true inputs,
       current state on register Qs. *)
    let stimulus =
      Array.map
        (fun id ->
          match List.find_index (fun (_, q, _) -> q = id) regs with
          | Some ri -> state.(ri)
          | None ->
              let v = B.create streams in
              B.fill_random rng v;
              v)
        all_input_ids
    in
    let result = Sim.run t.netlist stimulus in
    let values = result.Sim.node_values in
    for node = 0 to size - 1 do
      ones.(node) <- ones.(node) + B.popcount values.(node);
      if cycle > 0 then
        toggles.(node) <- toggles.(node) + B.popcount (B.logxor values.(node) prev.(node));
      prev.(node) <- values.(node)
    done;
    (* Clock edge: capture D into state. *)
    List.iteri (fun ri (_, _, d) -> state.(ri) <- values.(d)) regs
  done;
  let denom_t = float_of_int (max 1 ((cycles - 1) * streams)) in
  let denom_p = float_of_int (cycles * streams) in
  {
    cycles;
    streams;
    node_toggles = Array.map (fun c -> float_of_int c /. denom_t) toggles;
    node_probs = Array.map (fun c -> float_of_int c /. denom_p) ones;
    final_state = state;
  }

let step t ~state ~inputs =
  let regs = registers t in
  assert (Array.length state = List.length regs);
  let input_ids = true_inputs t in
  assert (Array.length inputs = List.length input_ids);
  let all = Netlist.inputs t.netlist in
  let stimulus =
    Array.map
      (fun id ->
        match List.find_index (fun (_, q, _) -> q = id) regs with
        | Some ri -> state.(ri)
        | None ->
            let rec pos i = function
              | [] -> failwith "Seq.step: unknown input"
              | x :: rest -> if x = id then i else pos (i + 1) rest
            in
            inputs.(pos 0 input_ids))
      all
  in
  let outputs = Netlist.eval t.netlist stimulus in
  (* Next-state needs arbitrary node values: run the bit simulator on
     width-1 vectors. *)
  let stim_bv =
    Array.map
      (fun b ->
        let v = B.create 1 in
        B.set v 0 b;
        v)
      stimulus
  in
  let result = Sim.run t.netlist stim_bv in
  let next_state =
    Array.of_list (List.map (fun (_, _, d) -> B.get result.Sim.node_values.(d) 0) regs)
  in
  (outputs, next_state)
