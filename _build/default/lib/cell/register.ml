module T = Spice.Tech

type t = {
  style : Genlib.style;
  tech : T.t;
  transistors : int;
  clock_cap : float;
  d_cap : float;
  q_drive_cap : float;
  internal_cap : float;
  clock_internal_cap : float;
  leakage : float;
}

(* Master-slave TG DFF: two pass stages + two keeper inverter pairs.
   - Static (unipolar) version: 2 TGs (4T) + 4 inverters (8T) + the
     complement-clock inverter (2T) = 14T; the clock net drives one
     inverter plus one device gate per TG, and the internal clk' net (one
     inverter output + two device gates) toggles every cycle.
   - Ambipolar version: each pass stage is a single ambipolar device pair
     whose polarity gates take the clock directly (opposite data-gate
     phases make one stage transparent-high and the other
     transparent-low), so no clk' rail exists: 2 TGs (4T) + 4 inverters
     (8T) = 12T. *)
let of_corner style (tech : T.t) =
  let cg = tech.T.c_gate and cd = tech.T.c_drain in
  match style with
  | Genlib.Ambipolar ->
      {
        style;
        tech;
        transistors = 12;
        clock_cap = 4.0 *. cg;
        d_cap = 2.0 *. cg;
        q_drive_cap = 2.0 *. cd;
        internal_cap = (6.0 *. cg) +. (4.0 *. cd);
        clock_internal_cap = 0.0;
        leakage = 5.0 *. tech.T.ioff_unit;
      }
  | Genlib.Static ->
      {
        style;
        tech;
        transistors = 14;
        clock_cap = 4.0 *. cg;
        d_cap = 2.0 *. cg;
        q_drive_cap = 2.0 *. cd;
        internal_cap = (6.0 *. cg) +. (4.0 *. cd);
        clock_internal_cap = (4.0 *. cg) +. (2.0 *. cd);
        leakage = 6.0 *. tech.T.ioff_unit;
      }

let ambipolar_cntfet = of_corner Genlib.Ambipolar T.cntfet
let conventional_cntfet = of_corner Genlib.Static T.cntfet
let cmos = of_corner Genlib.Static T.cmos

let for_library (lib : Genlib.t) = of_corner lib.Genlib.style lib.Genlib.tech
