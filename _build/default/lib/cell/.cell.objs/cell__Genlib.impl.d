lib/cell/genlib.ml: Array Buffer Cells Char Format List Logic Network Option Printf Spice String
