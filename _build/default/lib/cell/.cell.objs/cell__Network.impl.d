lib/cell/network.ml: Array Format Int List Logic Printf Set
