lib/cell/register.ml: Genlib Spice
