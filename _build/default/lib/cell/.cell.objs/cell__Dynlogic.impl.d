lib/cell/dynlogic.ml: Array List Logic Printf Set
