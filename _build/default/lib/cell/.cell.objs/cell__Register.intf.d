lib/cell/register.mli: Genlib Spice
