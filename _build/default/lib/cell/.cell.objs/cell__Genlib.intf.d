lib/cell/genlib.mli: Cells Format Logic Network Spice
