lib/cell/cells.ml: Format List Logic Network Printf
