lib/cell/network.mli: Logic
