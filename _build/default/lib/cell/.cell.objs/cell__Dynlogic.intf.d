lib/cell/dynlogic.mli: Logic
