lib/cell/cells.mli: Format Logic Network
