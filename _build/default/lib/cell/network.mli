(** Transistor-level structure of library gates: series/parallel pull-up and
    pull-down networks over three device flavours (fixed-polarity n, fixed
    polarity p, ambipolar transmission gate).

    This is the "gate topology" that the paper's topology analyzer walks to
    derive I_off patterns (Section 3.2-3.3) and transistor counts, and from
    which both the ambipolar CNTFET gates of [3] and conventional
    complementary static (CMOS-style) gates are constructed. *)

type signal = { pin : int; inverted : bool }
(** A gate terminal signal: input pin [pin], possibly through an internal
    complement inverter. *)

val sig_ : int -> signal
val nsig : int -> signal
val sig_not : signal -> signal

type device =
  | Fixed_n of signal  (** conducts when the signal is 1 *)
  | Fixed_p of signal  (** conducts when the signal is 0 *)
  | Tgate of signal * signal
      (** ambipolar transmission gate: conducts when the XOR of the two
          signals is 1 (Fig. 2 of the paper); built from two ambipolar
          devices in parallel, so it counts as two transistors *)

type network = Dev of device | Ser of network list | Par of network list

val conducts : (int -> bool) -> network -> bool
(** Conduction of the network under an input assignment. *)

val num_transistors : network -> int
(** Devices in the network (a transmission gate counts 2). *)

val num_leaves : network -> int
(** Branch elements (a transmission gate counts 1). *)

val max_stack : network -> int
(** Longest series chain of branch elements — the worst-case conduction
    stack, used as the first-order delay proxy. *)

val gate_loads : network -> int array -> unit
(** [gate_loads net acc] adds, per input pin, the number of device gates the
    pin drives (complemented uses included); [acc] must be sized to the pin
    count. *)

val complemented_pins : network -> int list
(** Pins used in inverted form somewhere in the network. *)

(** {1 Gate implementations} *)

type impl = {
  pull_up : network;
  pull_down : network;
  output_inverter : bool;
      (** when set, the networks compute the complement and a 2-transistor
          inverter drives the output *)
}

val impl_function : impl -> int -> Logic.Truthtable.t
(** [impl_function impl n] is the output function over [n] pins. Raises
    [Failure] if the pull-up and pull-down networks are not complementary
    (both or neither conducting for some input). *)

val impl_transistors : impl -> int
(** Total transistor count: both networks, the output inverter if present,
    and one 2-transistor inverter per internally complemented input pin. *)

val impl_stack : impl -> int
(** Worst series stack across PU/PD plus one if there is an output
    inverter — the gate's logical-depth proxy. *)

val impl_input_load : impl -> int -> int array
(** Per-pin count of driven device gates over [n] pins (complement
    inverters add one gate load on their pin). *)

val impl_output_drains : impl -> int
(** Number of device drains touching the output node (intrinsic output
    capacitance proxy). *)

(** {1 Builders} *)

val of_expr : pins:int -> Logic.Expr.t -> impl
(** Build a complementary static implementation of the expression.
    [And]/[Or] map to series/parallel; literals map to fixed-polarity
    devices (n in pull-down, p in pull-up); two-literal [Xor] atoms map to
    transmission gates. If implementing the complement plus an output
    inverter needs fewer transistors, that variant is returned. The
    expression must be built from literals, [And], [Or] and [Xor] of two
    literals. *)

val of_expr_no_tgate : pins:int -> Logic.Expr.t -> impl
(** Same, but [Xor] atoms are expanded to sum-of-products first — the
    conventional CMOS/unipolar realization, which cannot use ambipolar
    transmission gates. *)
