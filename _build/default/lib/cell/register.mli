(** Edge-triggered register (DFF) cells.

    A master-slave transmission-gate flip-flop in each technology corner.
    The ambipolar realization puts the clock on the {e polarity gates} of
    its pass devices, so the complement-clock inverter of the classic CMOS
    TG-DFF disappears — 2 transistors and one internally toggling net saved
    per register, and a smaller clock load. Used by the sequential mapping
    flow to account for register area, clock power, internal switching and
    leakage. *)

type t = {
  style : Genlib.style;
  tech : Spice.Tech.t;
  transistors : int;
  clock_cap : float;  (** capacitance presented to the clock net, F *)
  d_cap : float;  (** input capacitance at D, F *)
  q_drive_cap : float;  (** intrinsic drain capacitance at Q, F *)
  internal_cap : float;  (** capacitance switched when the state toggles, F *)
  clock_internal_cap : float;
      (** capacitance toggling every cycle regardless of data (the CMOS
          complement-clock net; 0 for the ambipolar cell) *)
  leakage : float;  (** average static current, A *)
}

val of_corner : Genlib.style -> Spice.Tech.t -> t

val ambipolar_cntfet : t
val conventional_cntfet : t
val cmos : t

val for_library : Genlib.t -> t
(** The register matching a mapping library's style and corner. *)
