module E = Logic.Expr

type t = {
  name : string;
  pins : int;
  expr : E.t;
  generalized : bool;
  ambipolar : Network.impl;
  static : Network.impl option;
}

let a = E.var 0
let b = E.var 1
let c = E.var 2
let d = E.var 3
let e = E.var 4
let f = E.var 5
let x2 p q = E.Xor [ p; q ]

(* A conventional cell exists in every technology. *)
let conv name pins expr =
  {
    name;
    pins;
    expr;
    generalized = false;
    ambipolar = Network.of_expr ~pins expr;
    static = Some (Network.of_expr_no_tgate ~pins expr);
  }

(* A generalized cell embeds XORs through transmission gates and has no
   conventional static counterpart in the comparison libraries. *)
let gen name pins expr =
  {
    name;
    pins;
    expr;
    generalized = true;
    ambipolar = Network.of_expr ~pins expr;
    static = None;
  }

let nand_of lst = E.not_ (E.and_ lst)
let nor_of lst = E.not_ (E.or_ lst)

let conventional_cells =
  [
    conv "INV" 1 (E.not_ a);
    conv "BUF" 1 a;
    conv "NAND2" 2 (nand_of [ a; b ]);
    conv "NAND3" 3 (nand_of [ a; b; c ]);
    conv "NAND4" 4 (nand_of [ a; b; c; d ]);
    conv "NOR2" 2 (nor_of [ a; b ]);
    conv "NOR3" 3 (nor_of [ a; b; c ]);
    conv "NOR4" 4 (nor_of [ a; b; c; d ]);
    conv "AND2" 2 (E.and_ [ a; b ]);
    conv "OR2" 2 (E.or_ [ a; b ]);
    conv "AOI21" 3 (nor_of [ E.and_ [ a; b ]; c ]);
    conv "AOI22" 4 (nor_of [ E.and_ [ a; b ]; E.and_ [ c; d ] ]);
    conv "OAI21" 3 (nand_of [ E.or_ [ a; b ]; c ]);
    conv "OAI22" 4 (nand_of [ E.or_ [ a; b ]; E.or_ [ c; d ] ]);
    (* XOR/XNOR are primitives only thanks to ambipolar transmission gates;
       conventional static libraries compose them from NAND/NOR (the 12T
       unipolar XOR is not a genlib primitive in the paper's comparison
       libraries, which is what makes XOR-rich circuits the showcase). *)
    gen "XOR2" 2 (x2 a b);
    gen "XNOR2" 2 (E.not_ (x2 a b));
  ]

let generalized_cells =
  [
    (* Generalized NAND/AND family: inputs replaced by embedded XORs. *)
    gen "GNAND2" 4 (nand_of [ x2 a c; x2 b d ]);
    gen "GNAND2B" 3 (nand_of [ x2 a c; b ]);
    gen "GNAND2X" 3 (nand_of [ x2 a c; x2 b c ]);
    gen "GAND2" 4 (E.and_ [ x2 a c; x2 b d ]);
    gen "GAND2B" 3 (E.and_ [ x2 a c; b ]);
    (* Generalized NOR/OR family. *)
    gen "GNOR2" 4 (nor_of [ x2 a c; x2 b d ]);
    gen "GNOR2B" 3 (nor_of [ x2 a c; b ]);
    gen "GNOR2X" 3 (nor_of [ x2 a c; x2 b c ]);
    gen "GOR2" 4 (E.or_ [ x2 a c; x2 b d ]);
    gen "GOR2B" 3 (E.or_ [ x2 a c; b ]);
    (* Parity. *)
    gen "XOR3" 3 (E.xor [ a; b; c ]);
    gen "XNOR3" 3 (E.not_ (E.xor [ a; b; c ]));
    (* Generalized 3-input NAND/NOR. *)
    gen "GNAND3" 5 (nand_of [ x2 a d; x2 b e; c ]);
    gen "GNAND3B" 4 (nand_of [ x2 a d; b; c ]);
    gen "GNOR3" 5 (nor_of [ x2 a d; x2 b e; c ]);
    gen "GNOR3B" 4 (nor_of [ x2 a d; b; c ]);
    (* Generalized AOI family. *)
    gen "GAOI21" 5 (nor_of [ E.and_ [ x2 a d; x2 b e ]; c ]);
    gen "GAOI21B" 4 (nor_of [ E.and_ [ x2 a d; b ]; c ]);
    gen "GAOI21C" 4 (nor_of [ E.and_ [ a; b ]; x2 c d ]);
    gen "GAOI22" 6 (nor_of [ E.and_ [ x2 a e; x2 b f ]; E.and_ [ c; d ] ]);
    gen "GAOI22B" 6 (nor_of [ E.and_ [ x2 a e; b ]; E.and_ [ x2 c f; d ] ]);
    gen "GAOI22C" 5 (nor_of [ E.and_ [ x2 a e; b ]; E.and_ [ c; d ] ]);
    (* Generalized OAI family. *)
    gen "GOAI21" 5 (nand_of [ E.or_ [ x2 a d; x2 b e ]; c ]);
    gen "GOAI21B" 4 (nand_of [ E.or_ [ x2 a d; b ]; c ]);
    gen "GOAI21C" 4 (nand_of [ E.or_ [ a; b ]; x2 c d ]);
    gen "GOAI22" 6 (nand_of [ E.or_ [ x2 a e; x2 b f ]; E.or_ [ c; d ] ]);
    gen "GOAI22B" 6 (nand_of [ E.or_ [ x2 a e; b ]; E.or_ [ x2 c f; d ] ]);
    gen "GOAI22C" 5 (nand_of [ E.or_ [ x2 a e; b ]; E.or_ [ c; d ] ]);
    (* Multiplexers: natural transmission-gate structures. *)
    gen "MUX2" 3 (E.or_ [ E.and_ [ E.not_ a; b ]; E.and_ [ a; c ] ]);
    gen "MUXI2" 3 (E.not_ (E.or_ [ E.and_ [ E.not_ a; b ]; E.and_ [ a; c ] ]));
  ]

let all = conventional_cells @ generalized_cells

let () = assert (List.length all = 46)

let conventional = List.filter (fun cell -> cell.static <> None) all

let find name = List.find (fun cell -> cell.name = name) all

let tt cell = E.to_tt cell.pins cell.expr

let inverter = find "INV"

let pp ppf cell =
  Format.fprintf ppf "%s/%d%s: %a [%dT ambipolar%s]" cell.name cell.pins
    (if cell.generalized then " (gen)" else "")
    E.pp cell.expr
    (Network.impl_transistors cell.ambipolar)
    (match cell.static with
    | None -> ""
    | Some s -> Printf.sprintf ", %dT static" (Network.impl_transistors s))
