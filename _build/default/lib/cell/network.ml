module E = Logic.Expr
module T = Logic.Truthtable

type signal = { pin : int; inverted : bool }

let sig_ pin = { pin; inverted = false }
let nsig pin = { pin; inverted = true }
let sig_not s = { s with inverted = not s.inverted }

type device = Fixed_n of signal | Fixed_p of signal | Tgate of signal * signal

type network = Dev of device | Ser of network list | Par of network list

let eval_signal env s = if s.inverted then not (env s.pin) else env s.pin

let rec conducts env = function
  | Dev (Fixed_n s) -> eval_signal env s
  | Dev (Fixed_p s) -> not (eval_signal env s)
  | Dev (Tgate (a, b)) -> eval_signal env a <> eval_signal env b
  | Ser children -> List.for_all (conducts env) children
  | Par children -> List.exists (conducts env) children

let device_transistors = function Fixed_n _ | Fixed_p _ -> 1 | Tgate _ -> 2

let rec num_transistors = function
  | Dev d -> device_transistors d
  | Ser children | Par children ->
      List.fold_left (fun acc n -> acc + num_transistors n) 0 children

let rec num_leaves = function
  | Dev _ -> 1
  | Ser children | Par children ->
      List.fold_left (fun acc n -> acc + num_leaves n) 0 children

let rec max_stack = function
  | Dev _ -> 1
  | Ser children -> List.fold_left (fun acc n -> acc + max_stack n) 0 children
  | Par children -> List.fold_left (fun acc n -> max acc (max_stack n)) 0 children

let device_signals = function
  | Fixed_n s | Fixed_p s -> [ s ]
  | Tgate (a, b) -> [ a; b ]

let rec iter_devices f = function
  | Dev d -> f d
  | Ser children | Par children -> List.iter (iter_devices f) children

let gate_loads net acc =
  iter_devices
    (fun d -> List.iter (fun s -> acc.(s.pin) <- acc.(s.pin) + 1) (device_signals d))
    net

let complemented_pins net =
  let module S = Set.Make (Int) in
  let acc = ref S.empty in
  iter_devices
    (fun d ->
      List.iter (fun s -> if s.inverted then acc := S.add s.pin !acc) (device_signals d))
    net;
  S.elements !acc

(* ------------------------------------------------------------------ *)

type impl = { pull_up : network; pull_down : network; output_inverter : bool }

let impl_function impl n =
  let values =
    Array.init (1 lsl n) (fun m ->
        let env i = (m lsr i) land 1 = 1 in
        let up = conducts env impl.pull_up in
        let down = conducts env impl.pull_down in
        if up = down then
          failwith
            (Printf.sprintf "Network.impl_function: non-complementary networks at minterm %d" m);
        let core = up in
        if impl.output_inverter then not core else core)
  in
  T.of_bits n values

let impl_complemented impl =
  let module S = Set.Make (Int) in
  S.elements
    (S.union
       (S.of_list (complemented_pins impl.pull_up))
       (S.of_list (complemented_pins impl.pull_down)))

let impl_transistors impl =
  num_transistors impl.pull_up + num_transistors impl.pull_down
  + (if impl.output_inverter then 2 else 0)
  + (2 * List.length (impl_complemented impl))

let impl_stack impl =
  max (max_stack impl.pull_up) (max_stack impl.pull_down)
  + if impl.output_inverter then 1 else 0

let impl_input_load impl n =
  let acc = Array.make n 0 in
  gate_loads impl.pull_up acc;
  gate_loads impl.pull_down acc;
  (* Each internally generated complement adds one inverter gate load on its
     pin (the inverter's own fanout is internal). *)
  List.iter (fun pin -> acc.(pin) <- acc.(pin) + 1) (impl_complemented impl);
  acc

let top_drains net =
  (* Devices whose drain terminal touches the network's output side: the
     first element of every top-level series chain, all members of a
     top-level parallel group. *)
  let rec count = function
    | Dev d -> device_transistors d
    | Ser [] -> 0
    | Ser (first :: _) -> count first
    | Par children -> List.fold_left (fun acc n -> acc + count n) 0 children
  in
  count net

let impl_output_drains impl =
  if impl.output_inverter then 2
  else top_drains impl.pull_up + top_drains impl.pull_down

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)

(* Literal extraction: expressions over Var / Not Var / Xor of two literals. *)
let signal_of_literal = function
  | E.Var i -> sig_ i
  | E.Not (E.Var i) -> nsig i
  | e -> failwith (Format.asprintf "Network.of_expr: not a literal: %a" E.pp e)

let is_literal = function E.Var _ | E.Not (E.Var _) -> true | _ -> false

(* Negation normal form, keeping 2-literal XOR atoms intact; XORs over
   non-literal operands are Shannon-expanded so only literal transmission
   gates remain. *)
let rec nnf negate e =
  match (e, negate) with
  | E.Const b, _ -> E.Const (b <> negate)
  | E.Var _, false -> e
  | E.Var i, true -> E.Not (E.Var i)
  | E.Not inner, _ -> nnf (not negate) inner
  | E.And children, false -> E.and_ (List.map (nnf false) children)
  | E.And children, true -> E.or_ (List.map (nnf true) children)
  | E.Or children, false -> E.or_ (List.map (nnf false) children)
  | E.Or children, true -> E.and_ (List.map (nnf true) children)
  | E.Xor [ a; b ], _ ->
      let a' = nnf false a and b' = nnf negate b in
      if is_literal a' && is_literal b' then E.Xor [ a'; b' ]
      else
        (* p xor q (xor negate) = (p and !(q xor negate)) or (!p and (q xor negate)) *)
        E.or_
          [
            E.and_ [ nnf false a; nnf (not negate) b ];
            E.and_ [ nnf true a; nnf negate b ];
          ]
  | E.Xor (first :: rest), _ -> nnf negate (E.Xor [ first; E.xor rest ])
  | E.Xor [], _ -> E.Const negate

(* Build a network that conducts exactly when the NNF expression is true.
   [position] decides the device flavour used for plain literals. *)
let rec network_of ~position e =
  match e with
  | E.And children -> Ser (List.map (network_of ~position) children)
  | E.Or children -> Par (List.map (network_of ~position) children)
  | E.Xor [ a; b ] -> Dev (Tgate (signal_of_literal a, signal_of_literal b))
  | E.Var _ | E.Not (E.Var _) ->
      let s = signal_of_literal e in
      (match position with
      | `Pull_down -> Dev (Fixed_n s)
      | `Pull_up -> Dev (Fixed_p (sig_not s)))
  | E.Const _ | E.Not _ | E.Xor _ ->
      failwith (Format.asprintf "Network.of_expr: unsupported shape: %a" E.pp e)

(* Structural dual: swap series/parallel and complement every device's
   conduction condition. The dual of a series-parallel network conducts
   exactly when the network does not. *)
let rec dual = function
  | Dev (Fixed_n s) -> Dev (Fixed_p s)
  | Dev (Fixed_p s) -> Dev (Fixed_n s)
  | Dev (Tgate (a, b)) -> Dev (Tgate (a, sig_not b))
  | Ser children -> Par (List.map dual children)
  | Par children -> Ser (List.map dual children)

let direct_impl expr =
  let from_exprs =
    {
      pull_up = network_of ~position:`Pull_up (nnf false expr);
      pull_down = network_of ~position:`Pull_down (nnf true expr);
      output_inverter = false;
    }
  in
  (* Alternative: derive the pull-up as the structural dual of the pull-down
     (the classic complementary-static construction); keep whichever needs
     fewer transistors. *)
  let from_dual =
    { from_exprs with pull_up = dual from_exprs.pull_down }
  in
  if impl_transistors from_dual < impl_transistors from_exprs then from_dual
  else from_exprs

let of_expr ~pins expr =
  let direct = direct_impl expr in
  let inverted_core = { (direct_impl (E.not_ expr)) with output_inverter = true } in
  let best =
    if impl_transistors inverted_core < impl_transistors direct then inverted_core
    else direct
  in
  (* Sanity: the chosen implementation realizes the requested function. *)
  let expected = E.to_tt pins expr in
  if not (T.equal (impl_function best pins) expected) then
    failwith "Network.of_expr: implementation does not match the expression";
  best

(* Expand XOR atoms to SOP over literals for unipolar technologies. *)
let rec expand_xor e =
  match e with
  | E.Const _ | E.Var _ -> e
  | E.Not inner -> E.not_ (expand_xor inner)
  | E.And children -> E.and_ (List.map expand_xor children)
  | E.Or children -> E.or_ (List.map expand_xor children)
  | E.Xor children -> (
      match List.map expand_xor children with
      | [] -> E.Const false
      | [ x ] -> x
      | x :: rest ->
          let y = expand_xor (E.xor rest) in
          E.or_ [ E.and_ [ x; E.not_ y ]; E.and_ [ E.not_ x; y ] ])

let of_expr_no_tgate ~pins expr =
  (* Re-factor through the truth table so the SOP expansion stays small and
     the networks keep a classic series/parallel shape. *)
  let tt = E.to_tt pins expr in
  let pos = E.factor (T.isop tt) in
  let neg = E.factor (T.isop (T.lognot tt)) in
  let candidates =
    let pd_neg = network_of ~position:`Pull_down (nnf false (expand_xor neg)) in
    let pd_pos = network_of ~position:`Pull_down (nnf false (expand_xor pos)) in
    [
      {
        pull_up = network_of ~position:`Pull_up (nnf false (expand_xor pos));
        pull_down = pd_neg;
        output_inverter = false;
      };
      { pull_up = dual pd_neg; pull_down = pd_neg; output_inverter = false };
      {
        pull_up = network_of ~position:`Pull_up (nnf false (expand_xor neg));
        pull_down = pd_pos;
        output_inverter = true;
      };
      { pull_up = dual pd_pos; pull_down = pd_pos; output_inverter = true };
    ]
  in
  let best =
    List.fold_left
      (fun acc cand ->
        if impl_transistors cand < impl_transistors acc then cand else acc)
      (List.hd candidates) (List.tl candidates)
  in
  let expected = E.to_tt pins expr in
  if not (T.equal (impl_function best pins) expected) then
    failwith "Network.of_expr_no_tgate: implementation does not match";
  best
