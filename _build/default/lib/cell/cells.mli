(** The gate library.

    Regenerates the 46-gate static ambipolar CNTFET library of
    [Ben Jamaa et al., DATE'09] from its construction rules: conventional
    static gates plus their {e generalized} counterparts in which inputs are
    replaced by embedded two-input XORs realized with ambipolar transmission
    gates (at most two transmission gates or transistors in series/parallel
    per network). Each cell also carries the conventional (unipolar,
    XOR-expanded) realization used for the CMOS and conventional-CNTFET
    comparison libraries — when one exists within ordinary static-CMOS size
    limits. *)

type t = {
  name : string;
  pins : int;
  expr : Logic.Expr.t;  (** output function over pins [0 .. pins-1] *)
  generalized : bool;  (** embeds XOR via transmission gates *)
  ambipolar : Network.impl;  (** transmission-gate realization *)
  static : Network.impl option;
      (** conventional complementary static realization; [None] for
          generalized cells that only exist in the ambipolar library *)
}

val all : t list
(** The full generalized library: exactly 46 cells. *)

val conventional : t list
(** The subset available to conventional technologies (CMOS and
    MOSFET-like-CNTFET-only): every cell with a static realization. *)

val find : string -> t
(** Lookup by name. Raises [Not_found]. *)

val tt : t -> Logic.Truthtable.t
(** Output truth table over the cell's pins. *)

val inverter : t
val pp : Format.formatter -> t -> unit
