module T = Logic.Truthtable

type device = { data : int; config : int }
type network = Dev of device | Ser of network list | Par of network list

type t = { name : string; data_pins : int; config_pins : int; eval : network }

let rec devices = function
  | Dev _ -> 1
  | Ser children | Par children -> List.fold_left (fun acc n -> acc + devices n) 0 children

let num_transistors t = devices t.eval + 2

let rec conducts ~data ~config = function
  | Dev d ->
      let x = (data lsr d.data) land 1 = 1 in
      let c = (config lsr d.config) land 1 = 1 in
      x <> c
  | Ser children -> List.for_all (conducts ~data ~config) children
  | Par children -> List.exists (conducts ~data ~config) children

let function_of t ~config =
  assert (config >= 0 && config < 1 lsl t.config_pins);
  T.of_bits t.data_pins
    (Array.init (1 lsl t.data_pins) (fun data ->
         not (conducts ~data ~config t.eval)))

let achievable_functions t =
  let module S = Set.Make (struct
    type nonrec t = T.t

    let compare = T.compare
  end) in
  let acc = ref S.empty in
  for config = 0 to (1 lsl t.config_pins) - 1 do
    acc := S.add (function_of t ~config) !acc
  done;
  S.elements !acc

let gnor k =
  {
    name = Printf.sprintf "dyn-GNOR%d" k;
    data_pins = k;
    config_pins = k;
    eval = Par (List.init k (fun i -> Dev { data = i; config = i }));
  }

let reconfigurable2 =
  {
    name = "dyn-RECONF2";
    data_pins = 2;
    config_pins = 4;
    eval =
      Par
        [
          Ser [ Dev { data = 0; config = 0 }; Dev { data = 1; config = 1 } ];
          Ser [ Dev { data = 0; config = 2 }; Dev { data = 1; config = 3 } ];
        ];
  }

let eval_alpha t ~config =
  let f = function_of t ~config in
  let total = 1 lsl t.data_pins in
  float_of_int (total - T.count_ones f) /. float_of_int total
