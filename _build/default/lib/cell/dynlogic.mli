(** Dynamic and in-field reconfigurable ambipolar gates.

    The paper's background (Section 2.2) surveys two uses of controllable
    ambipolarity beyond the static library: dynamic generalized-NOR gates as
    PLA cores (Ben Jamaa et al., DAC'08 [6]) and compact reconfigurable
    cells mapping many functions with few transistors (O'Connor et al. [5],
    eight 2-input functions from seven CNTFETs). This module models both:
    a dynamic gate is a precharged output pulled down by an evaluation
    network of ambipolar devices whose polarity gates are {e configuration}
    inputs, so each configuration vector selects a different Boolean
    function of the data inputs. *)

type device = {
  data : int;  (** data pin driving the conventional gate *)
  config : int;  (** configuration pin driving the polarity gate *)
}
(** One ambipolar CNTFET in the evaluation network: it conducts exactly
    when [data xor config] is 1. *)

type network = Dev of device | Ser of network list | Par of network list

type t = {
  name : string;
  data_pins : int;
  config_pins : int;
  eval : network;
}

val num_transistors : t -> int
(** Evaluation devices plus the precharge transistor and the clocked
    footer. *)

val function_of : t -> config:int -> Logic.Truthtable.t
(** Output function of the data pins for one configuration: the precharged
    output stays high unless the evaluation network discharges it. *)

val achievable_functions : t -> Logic.Truthtable.t list
(** Distinct data functions over all configuration vectors. *)

val gnor : int -> t
(** [gnor k]: the dynamic generalized NOR of [6] — [k] parallel ambipolar
    branches; configuration selects the polarity of every input, so it
    computes [NOR(x_i xor c_i)]. *)

val reconfigurable2 : t
(** A two-data-input reconfigurable cell (two series pairs in parallel,
    four configuration bits): achieves more than eight distinct functions
    of its two data inputs — the expressive-power claim of [5] reproduced
    with a slightly different topology. *)

val eval_alpha : t -> config:int -> float
(** Dynamic-logic activity: the output discharges (and must be recharged)
    whenever the function evaluates to 0, so the per-cycle switching
    probability is the off-set fraction — typically far above the static
    gates' combinational activity factor, which is why the paper's static
    library is the power-efficient choice. *)
