(** Programmable logic arrays.

    The paper's reference [6] proposes dynamic generalized-NOR gates as the
    core of in-field programmable ambipolar PLAs: because every AND-plane
    device is an ambipolar CNTFET, the {e polarity} of each literal is a
    configuration input, so the complement input columns of a classic
    NOR-NOR PLA disappear and the array is reprogrammable in the field.
    This module provides the PLA data structure, two-level synthesis from
    netlists (via {!Logic.Twolevel}), and transistor/activity cost models
    for the ambipolar and the conventional CMOS realizations. *)

type t = {
  num_inputs : int;
  num_outputs : int;
  terms : Logic.Truthtable.cube array;  (** AND plane product terms *)
  connects : bool array array;  (** [connects.(o).(t)]: term [t] feeds output [o] *)
}

val of_functions : Logic.Truthtable.t array -> t
(** Build a PLA computing the given single-output functions (all over the
    same inputs, at most 16): every function is minimized with the
    two-level engine and identical product terms are shared between
    outputs. *)

val of_netlist : Nets.Netlist.t -> t
(** Collapse a combinational netlist (at most 16 primary inputs) to
    two-level form. *)

val eval : t -> int -> bool array
(** Output values for an input minterm. *)

val num_terms : t -> int
val num_literals : t -> int
val num_connects : t -> int

val check_against : t -> Nets.Netlist.t -> bool
(** Exhaustive comparison with a reference netlist. *)

(** {1 Implementation cost models} *)

type cost = {
  transistors : int;
  input_inverters : int;  (** complement-rail inverters (0 for ambipolar) *)
  switched_cap : float;
      (** expected capacitance switched per evaluate cycle, F — dynamic
          NOR-NOR planes precharge every cycle and discharge with the
          line's off-probability *)
  reconfigurable : bool;
}

val ambipolar_cost : t -> cost
(** Dynamic GNOR-GNOR realization with ambipolar devices: one device per
    AND-plane literal and per OR-plane connection, a 2-transistor
    precharge/footer pair per line, and no complement columns; literal
    polarities are in-field configuration. *)

val cmos_cost : t -> cost
(** Conventional dynamic NOR-NOR realization: same array devices plus one
    inverter per input to build the complement rails; polarities fixed at
    manufacturing. *)

val pp : Format.formatter -> t -> unit
