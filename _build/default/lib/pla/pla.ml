module T = Logic.Truthtable

type t = {
  num_inputs : int;
  num_outputs : int;
  terms : T.cube array;
  connects : bool array array;
}

let of_functions functions =
  assert (Array.length functions > 0);
  let num_inputs = T.nvars functions.(0) in
  Array.iter (fun f -> assert (T.nvars f = num_inputs)) functions;
  let covers = Array.map (fun f -> Logic.Twolevel.minimize f) functions in
  (* Share identical product terms across outputs. *)
  let index = Hashtbl.create 64 in
  let terms = ref [] in
  let num_terms = ref 0 in
  let term_id cube =
    match Hashtbl.find_opt index cube with
    | Some i -> i
    | None ->
        let i = !num_terms in
        incr num_terms;
        Hashtbl.replace index cube i;
        terms := cube :: !terms;
        i
  in
  let per_output = Array.map (fun cover -> List.map term_id cover) covers in
  let terms = Array.of_list (List.rev !terms) in
  let connects =
    Array.map
      (fun ids ->
        let row = Array.make (Array.length terms) false in
        List.iter (fun i -> row.(i) <- true) ids;
        row)
      per_output
  in
  { num_inputs; num_outputs = Array.length functions; terms; connects }

let of_netlist nl =
  let module N = Nets.Netlist in
  let inputs = N.inputs nl in
  assert (Array.length inputs <= 16);
  let functions =
    Array.map (fun (_, id) -> N.node_function nl id inputs) (N.outputs nl)
  in
  of_functions functions

let eval t minterm =
  let term_on (cube : T.cube) =
    minterm land cube.T.pos = cube.T.pos && minterm land cube.T.neg = 0
  in
  let term_values = Array.map term_on t.terms in
  Array.map
    (fun row ->
      let hit = ref false in
      Array.iteri (fun i c -> if c && term_values.(i) then hit := true) row;
      !hit)
    t.connects

let num_terms t = Array.length t.terms

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let num_literals t =
  Array.fold_left (fun acc (c : T.cube) -> acc + popcount c.T.pos + popcount c.T.neg) 0 t.terms

let num_connects t =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a c -> if c then a + 1 else a) acc row)
    0 t.connects

let check_against t nl =
  let module N = Nets.Netlist in
  let n = t.num_inputs in
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    let ins = Array.init n (fun i -> (m lsr i) land 1 = 1) in
    if N.eval nl ins <> eval t m then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)

type cost = {
  transistors : int;
  input_inverters : int;
  switched_cap : float;
  reconfigurable : bool;
}

(* Expected per-cycle switched capacitance of the dynamic planes under
   uniform inputs: a precharged line discharges whenever its NOR evaluates
   low, i.e. with probability P(any connected device conducts). *)
let switched_cap_of t (tech : Spice.Tech.t) =
  let n = t.num_inputs in
  let cap = ref 0.0 in
  (* AND plane: term line t carries one drain per literal. *)
  let term_tts = Array.map (fun cube -> T.cube_tt n cube) t.terms in
  Array.iteri
    (fun i (cube : T.cube) ->
      let devices = popcount cube.T.pos + popcount cube.T.neg in
      let line_cap = float_of_int (devices + 2) *. tech.Spice.Tech.c_drain in
      (* term line is discharged when the term is NOT active (NOR-plane
         line low) = 1 - P(term) *)
      let p_term =
        float_of_int (T.count_ones term_tts.(i)) /. float_of_int (1 lsl n)
      in
      cap := !cap +. ((1.0 -. p_term) *. line_cap))
    t.terms;
  (* OR plane: output line o carries one drain per connected term. *)
  Array.iteri
    (fun o row ->
      let devices = Array.fold_left (fun a c -> if c then a + 1 else a) 0 row in
      let line_cap = float_of_int (devices + 2) *. tech.Spice.Tech.c_drain in
      let f =
        Array.to_list t.terms
        |> List.filteri (fun i _ -> row.(i))
        |> List.fold_left (fun acc cube -> T.logor acc (T.cube_tt n cube)) (T.const n false)
      in
      let p_out = float_of_int (T.count_ones f) /. float_of_int (1 lsl n) in
      ignore o;
      cap := !cap +. ((1.0 -. p_out) *. line_cap))
    t.connects;
  !cap

let plane_devices t = num_literals t + num_connects t

let line_overhead t =
  (* precharge + footer per term line and per output line *)
  2 * (num_terms t + t.num_outputs)

let ambipolar_cost t =
  {
    transistors = plane_devices t + line_overhead t;
    input_inverters = 0;
    switched_cap = switched_cap_of t Spice.Tech.cntfet;
    reconfigurable = true;
  }

let cmos_cost t =
  {
    transistors = plane_devices t + line_overhead t + (2 * t.num_inputs);
    input_inverters = t.num_inputs;
    switched_cap = switched_cap_of t Spice.Tech.cmos;
    reconfigurable = false;
  }

let pp ppf t =
  Format.fprintf ppf "pla: %d inputs, %d outputs, %d terms, %d literals, %d connects"
    t.num_inputs t.num_outputs (num_terms t) (num_literals t) (num_connects t)
