(** Transient analysis: explicit adaptive time integration of node voltages
    over the device models.

    Used to {e derive} the intrinsic-delay technology booster that the paper
    takes from Deng et al. [10] ("the intrinsic CNTFET delay is 5x lower
    than the MOSFET delay"): stepping an inverter of each technology into
    its characterization load and measuring the 50 %-crossing propagation
    delay. Only capacitors at circuit nodes are modeled (C dV/dt = -I);
    nodes driven by sources follow their stimulus exactly. *)

type stimulus = float -> float
(** Voltage of a driven node as a function of time (seconds). *)

val step : ?t0:float -> ?rise:float -> low:float -> high:float -> unit -> stimulus
(** Linear ramp from [low] to [high] starting at [t0] (default 0) over
    [rise] seconds (default 1 ps). *)

type waveform = { times : float array; voltages : float array }

val simulate :
  Circuit.t ->
  caps:(Circuit.node * float) list ->
  drives:(Circuit.node * stimulus) list ->
  tstop:float ->
  ?dv_max:float ->
  ?samples:int ->
  Circuit.node list ->
  (Circuit.node * waveform) list
(** [simulate circuit ~caps ~drives ~tstop watch] integrates from the DC
    solution at t = 0 (with every [drives] stimulus evaluated at 0) to
    [tstop], returning sampled waveforms for the watched nodes. Free nodes
    must appear in [caps]; driven nodes follow their stimulus. [dv_max]
    bounds the per-step voltage change (default 2 mV). *)

val crossing_time : waveform -> float -> [ `Rising | `Falling ] -> float option
(** First time the waveform crosses the given level in the given direction
    (linear interpolation between samples). *)

val inverter_delay : Tech.t -> float
(** Propagation delay (input 50 % to output 50 %, falling output) of an
    inverter built in the given technology corner driving its intrinsic
    drain capacitance plus a fanout-3 inverter load. *)
