type kind = Nmos of Tech.t | Pmos of Tech.t | Ambipolar of Tech.t

let tech = function Nmos t | Pmos t | Ambipolar t -> t

(* Symmetric EKV: Ids = Ispec (if(vg - vs) - if(vg - vd)), with
   if(v) = ln^2(1 + exp((v - vth) / (2 n vt))). Negative Ids means reverse
   conduction, which the nodal solver handles naturally. *)
let ekv_current (t : Tech.t) ~vth ~vg ~vd ~vs =
  let half = 2.0 *. t.ss_factor *. t.temp_vt in
  let f v =
    let x = (v -. vth) /. half in
    (* Guard against overflow for strongly forward-biased terms. *)
    let l = if x > 40.0 then x else log (1.0 +. exp x) in
    l ** t.sat_exponent
  in
  t.ispec *. (f (vg -. vs) -. f (vg -. vd))

let nmos_ids t ~vg ~vd ~vs = ekv_current t ~vth:t.Tech.vth_n ~vg ~vd ~vs

(* PMOS: mirror voltages around the rails. *)
let pmos_ids t ~vg ~vd ~vs =
  -.ekv_current t ~vth:t.Tech.vth_p ~vg:(-.vg) ~vd:(-.vd) ~vs:(-.vs)

let ids kind ~vg ~vd ~vs ~vpg =
  match kind with
  | Nmos t -> nmos_ids t ~vg ~vd ~vs
  | Pmos t -> pmos_ids t ~vg ~vd ~vs
  | Ambipolar t ->
      (* Smooth blend between the two polarities driven by the polarity
         gate; PG is rail-driven in all library gates so the blend acts as a
         selector while keeping the function differentiable. *)
      let w = vpg /. t.Tech.vdd in
      let w = if w < 0.0 then 0.0 else if w > 1.0 then 1.0 else w in
      ((1.0 -. w) *. nmos_ids t ~vg ~vd ~vs) +. (w *. pmos_ids t ~vg ~vd ~vs)

let gate_leak kind ~on =
  let t = tech kind in
  if on then t.Tech.ig_on_unit else t.Tech.ig_off_unit
