lib/spice/tech.mli: Format
