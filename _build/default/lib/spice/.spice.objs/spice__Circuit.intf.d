lib/spice/circuit.mli: Device
