lib/spice/transient.mli: Circuit Tech
