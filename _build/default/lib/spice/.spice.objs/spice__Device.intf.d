lib/spice/device.mli: Tech
