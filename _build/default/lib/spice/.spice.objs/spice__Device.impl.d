lib/spice/device.ml: Tech
