lib/spice/tech.ml: Format
