lib/spice/transient.ml: Array Circuit Device List Tech
