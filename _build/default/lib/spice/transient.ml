type stimulus = float -> float

let step ?(t0 = 0.0) ?(rise = 1.0e-12) ~low ~high () t =
  if t <= t0 then low
  else if t >= t0 +. rise then high
  else low +. ((high -. low) *. (t -. t0) /. rise)

type waveform = { times : float array; voltages : float array }

let simulate circuit ~caps ~drives ~tstop ?(dv_max = 2.0e-3) ?(samples = 400) watch =
  let n = Circuit.num_nodes circuit in
  let cap = Array.make n 0.0 in
  List.iter (fun (node, c) -> cap.(node) <- c) caps;
  let driven = Array.make n None in
  List.iter (fun (node, s) -> driven.(node) <- Some s) drives;
  (* Initial condition: DC solve with the t=0 stimulus values applied as
     extra sources is overkill for our use (all watched circuits start in a
     settled rail state); start free nodes at their DC value given t=0
     drives by briefly relaxing the system. *)
  let v = Array.make n 0.0 in
  for node = 0 to n - 1 do
    if Circuit.is_source circuit node then v.(node) <- Circuit.source_value circuit node;
    match driven.(node) with Some s -> v.(node) <- s 0.0 | None -> ()
  done;
  (* Settle free nodes to a quasi-static start: integrate with the t = 0
     stimulus frozen until the state stops moving. *)
  let free node =
    (not (Circuit.is_source circuit node)) && driven.(node) = None && cap.(node) > 0.0
  in
  let adaptive_dt currents bound =
    let dt = ref bound in
    for node = 1 to n - 1 do
      if free node then begin
        let rate = abs_float (currents.(node) /. cap.(node)) in
        if rate > 0.0 then dt := min !dt (dv_max /. rate)
      end
    done;
    max !dt 1.0e-18
  in
  let settle_budget = ref 200_000 in
  let moving = ref true in
  while !moving && !settle_budget > 0 do
    decr settle_budget;
    let currents = Circuit.node_currents circuit v in
    let dt = adaptive_dt currents (tstop /. 10.0) in
    let biggest = ref 0.0 in
    for node = 1 to n - 1 do
      if free node then begin
        let dv = -.(currents.(node) /. cap.(node)) *. dt in
        v.(node) <- v.(node) +. dv;
        if abs_float dv > !biggest then biggest := abs_float dv
      end
    done;
    if !biggest < dv_max /. 100.0 then moving := false
  done;
  let sample_dt = tstop /. float_of_int samples in
  let recorded = List.map (fun node -> (node, ref [ (0.0, v.(node)) ])) watch in
  let t = ref 0.0 in
  let next_sample = ref sample_dt in
  let steps = ref 0 in
  let max_steps = 5_000_000 in
  while !t < tstop && !steps < max_steps do
    incr steps;
    (* Adaptive step: bound every free node's voltage change. *)
    let currents = Circuit.node_currents circuit v in
    let dt = adaptive_dt currents (tstop /. 1000.0) in
    let dt = min dt (tstop -. !t) in
    for node = 1 to n - 1 do
      if Circuit.is_source circuit node then ()
      else
        match driven.(node) with
        | Some s -> v.(node) <- s (!t +. dt)
        | None ->
            if cap.(node) > 0.0 then
              v.(node) <- v.(node) -. (currents.(node) /. cap.(node) *. dt)
    done;
    t := !t +. dt;
    if !t >= !next_sample then begin
      List.iter (fun (node, acc) -> acc := (!t, v.(node)) :: !acc) recorded;
      next_sample := !next_sample +. sample_dt
    end
  done;
  List.map
    (fun (node, acc) ->
      let pts = List.rev !acc in
      ( node,
        {
          times = Array.of_list (List.map fst pts);
          voltages = Array.of_list (List.map snd pts);
        } ))
    recorded

let crossing_time w level direction =
  let n = Array.length w.times in
  let rec scan i =
    if i + 1 >= n then None
    else begin
      let v0 = w.voltages.(i) and v1 = w.voltages.(i + 1) in
      let crossed =
        match direction with
        | `Rising -> v0 < level && v1 >= level
        | `Falling -> v0 > level && v1 <= level
      in
      if crossed then begin
        let t0 = w.times.(i) and t1 = w.times.(i + 1) in
        let frac = if v1 = v0 then 0.0 else (level -. v0) /. (v1 -. v0) in
        Some (t0 +. (frac *. (t1 -. t0)))
      end
      else scan (i + 1)
    end
  in
  scan 0

let inverter_delay (tech : Tech.t) =
  let vdd = tech.Tech.vdd in
  let c = Circuit.create () in
  let vdd_node = Circuit.node c "vdd" in
  let input = Circuit.node c "in" in
  let out = Circuit.node c "out" in
  Circuit.add_vsource c vdd_node vdd;
  Circuit.add_transistor c (Device.Pmos tech) ~d:out ~g:input ~s:vdd_node ();
  Circuit.add_transistor c (Device.Nmos tech) ~d:out ~g:input ~s:Circuit.ground ();
  (* Load: own drain caps + fanout-3 inverter input loads. *)
  let c_load =
    (2.0 *. tech.Tech.c_drain) +. (float_of_int Tech.fanout *. Tech.inverter_input_cap tech)
  in
  let t_edge = 2.0e-12 in
  let stim = step ~t0:t_edge ~rise:0.5e-12 ~low:0.0 ~high:vdd () in
  let tstop = 60.0e-12 in
  let waves =
    simulate c
      ~caps:[ (out, c_load) ]
      ~drives:[ (input, stim) ]
      ~tstop ~samples:3000 [ out ]
  in
  let wave = List.assoc out waves in
  let half = vdd /. 2.0 in
  let t_in = t_edge +. 0.25e-12 in
  match crossing_time wave half `Falling with
  | Some t_out -> t_out -. t_in
  | None -> failwith "Transient.inverter_delay: output never crossed 50%"
