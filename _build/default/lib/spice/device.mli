(** Analytic device models evaluated by the DC solver.

    The drain current model is a symmetric EKV formulation: smooth from deep
    subthreshold (which dominates the paper's I_off patterns) to strong
    inversion, and well-behaved under Newton iteration. The ambipolar
    CNTFET is the behavioural model the paper adopts from O'Connor et al.: a
    polarity-gate-controlled selection between an n- and a p-branch. *)

type kind =
  | Nmos of Tech.t
  | Pmos of Tech.t
  | Ambipolar of Tech.t
      (** four-terminal device; the polarity gate chooses n- (PG low) or
          p-type (PG high) behaviour. Always built from the CNTFET corner in
          this reproduction, but the model is corner-generic. *)

val ids : kind -> vg:float -> vd:float -> vs:float -> vpg:float -> float
(** Drain-to-source current (positive into the drain). [vpg] is ignored by
    [Nmos]/[Pmos]. *)

val gate_leak : kind -> on:bool -> float
(** First-order gate tunneling current of a device that is logically on or
    off at rail bias. *)

val tech : kind -> Tech.t
