examples/multiplier_power.ml: Aigs Cell Circuits Format List Techmap
