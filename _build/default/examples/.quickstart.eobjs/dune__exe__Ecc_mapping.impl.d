examples/ecc_mapping.ml: Aigs Array Cell Circuits Format List Nets Techmap
