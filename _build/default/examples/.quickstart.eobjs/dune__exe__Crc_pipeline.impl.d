examples/crc_pipeline.ml: Array Cell Circuits Format Int32 List Logic Nets Techmap
