examples/multiplier_power.mli:
