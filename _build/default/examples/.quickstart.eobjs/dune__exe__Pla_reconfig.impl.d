examples/pla_reconfig.ml: Array Cell Circuits Format Hashtbl Logic Nets Pla
