examples/crc_pipeline.mli:
