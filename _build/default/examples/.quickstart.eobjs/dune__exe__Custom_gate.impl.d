examples/custom_gate.ml: Aigs Array Cell Char Format Logic Power Spice String Techmap
