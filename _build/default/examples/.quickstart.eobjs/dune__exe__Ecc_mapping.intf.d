examples/ecc_mapping.mli:
