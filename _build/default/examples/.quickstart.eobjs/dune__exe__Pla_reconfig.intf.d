examples/pla_reconfig.mli:
