examples/quickstart.mli:
