examples/quickstart.ml: Aigs Cell Circuits Format List Nets Power Techmap
