examples/custom_gate.mli:
