(* Extending the library: define a new generalized gate from scratch at the
   transistor level, check it, and characterize its power exactly like the
   shipped cells — the workflow a library designer would follow.

   The new gate is a "generalized majority": MAJ(A xor D, B, C), built with
   one transmission gate and fixed-polarity devices in each network.

   Run with:  dune exec examples/custom_gate.exe *)

module N = Cell.Network
module E = Logic.Expr

let () =
  let pins = 4 in
  (* f = (A^D)B + (A^D)C + BC *)
  let expr =
    E.or_
      [
        E.and_ [ E.Xor [ E.var 0; E.var 3 ]; E.var 1 ];
        E.and_ [ E.Xor [ E.var 0; E.var 3 ]; E.var 2 ];
        E.and_ [ E.var 1; E.var 2 ];
      ]
  in
  (* The builder derives complementary PU/PD networks (using transmission
     gates for the XOR atoms) and verifies them against the expression. *)
  let impl = N.of_expr ~pins expr in
  Format.printf "GMAJ: %a@." E.pp expr;
  Format.printf "transistors: %d, worst stack: %d, output inverter: %b@."
    (N.impl_transistors impl) (N.impl_stack impl) impl.N.output_inverter;

  (* Topology analysis: I_off patterns per input vector. *)
  let gp = Power.Pattern.analyze impl ~pins in
  Format.printf "@.off-network patterns by input vector:@.";
  Array.iteri
    (fun v p ->
      Format.printf "  [%d%d%d%d] -> %a@." (v land 1) ((v lsr 1) land 1)
        ((v lsr 2) land 1) ((v lsr 3) land 1) Power.Pattern.pp p)
    gp.Power.Pattern.off_pattern;

  (* Quantify with the DC solver and apply the paper's power model. *)
  let tech = Spice.Tech.cntfet in
  let ioff = Power.Leakage.gate_ioff tech gp in
  let avg = Array.fold_left ( +. ) 0.0 ioff /. float_of_int (Array.length ioff) in
  let alpha = Power.Activity.gate_alpha (E.to_tt pins expr) in
  let c_load =
    float_of_int (N.impl_output_drains impl) *. tech.Spice.Tech.c_drain
    +. (float_of_int Spice.Tech.fanout *. Spice.Tech.inverter_input_cap tech)
  in
  let power =
    Power.Powermodel.make ~alpha ~c_load ~ioff:avg
      ~ig:(float_of_int (N.impl_transistors impl) *. tech.Spice.Tech.ig_on_unit)
      ~vdd:tech.Spice.Tech.vdd ()
  in
  Format.printf "@.alpha = %.3f, avg Ioff = %.3g nA@." alpha (avg *. 1e9);
  Format.printf "power at 1 GHz / 0.9 V: %a@." Power.Powermodel.pp power;

  (* Compare against composing the same function from shipped cells. *)
  let aig = Aigs.Aig.create () in
  let ins = Array.init pins (fun i -> Aigs.Aig.add_input aig (String.make 1 (Char.chr (65 + i)))) in
  Aigs.Aig.add_output aig "f"
    (Aigs.Aig.build_expr aig expr ins);
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let mapped = Techmap.Mapper.map ml aig in
  Format.printf "@.same function composed from library cells: %d gates, area %g T@."
    (Techmap.Mapped.num_gates mapped) (Techmap.Mapped.area mapped);
  Format.printf "custom single-cell area: %d T@." (N.impl_transistors impl)
