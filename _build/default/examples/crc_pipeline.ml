(* Clocked design walkthrough: a parallel CRC-32 engine through the full
   sequential flow — registers, mapping, cycle-accurate power, and timing.

   CRC datapaths are pure XOR trees feeding a 32-bit register, the extreme
   case of the binate logic the paper's introduction motivates. The
   ambipolar flip-flop also clocks without a complement-clock rail, which
   shows up in the clock power column.

   Run with:  dune exec examples/crc_pipeline.exe *)

let () =
  let data_width = 8 in
  let seq = Circuits.Crc.generate ~data_width () in
  Format.printf "CRC-32, %d message bits per clock, %d registers@.@." data_width
    (Nets.Seq.num_registers seq);

  (* Functional check against the software model first. *)
  let rng = Logic.Prng.create 2026L in
  let sw = ref 0xFFFFFFFFl in
  let hw = ref (Array.init 32 (fun i -> Int32.logand (Int32.shift_right_logical 0xFFFFFFFFl i) 1l <> 0l)) in
  for _ = 1 to 64 do
    let data = Array.init data_width (fun _ -> Logic.Prng.bool rng) in
    sw := Circuits.Crc.reference_step !sw ~data;
    let _, next = Nets.Seq.step seq ~state:!hw ~inputs:data in
    hw := next
  done;
  let hw_value = ref 0l in
  Array.iteri (fun i b -> if b then hw_value := Int32.logor !hw_value (Int32.shift_left 1l i)) !hw;
  Format.printf "after 64 random bytes: software %08lx, circuit %08lx (%s)@.@." !sw !hw_value
    (if !sw = !hw_value then "match" else "MISMATCH");

  (* Map with each library and compare the clocked power picture. *)
  List.iter
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let report = Techmap.Seqmap.estimate ml seq in
      Format.printf "%s:@.%a@." lib.Cell.Genlib.name Techmap.Seqmap.pp_report report)
    Cell.Genlib.all_libraries;

  (* Show the critical path of the generalized mapping. *)
  let ml = Techmap.Matchlib.build Cell.Genlib.generalized_cntfet in
  let mapped, _ = Techmap.Seqmap.map_seq ml seq in
  Format.printf "%a@." Techmap.Sta.pp_report (Techmap.Sta.analyze mapped)
