(* Error-correcting circuits (the paper's C1355/C1908 rows) are syndrome
   logic: parity trees feeding correction XORs. This example maps a Hamming
   corrector with the generalized ambipolar library and with the CMOS
   library and shows how the gate mix changes: the XOR trees collapse onto
   XOR2/XOR3/GNOR cells instead of exploding into NAND/NOR networks.

   Run with:  dune exec examples/ecc_mapping.exe *)

let () =
  let data_bits = 32 in
  let nl = Circuits.Hamming.corrector ~data_bits in
  Format.printf "Hamming corrector, %d data bits, %d check bits:@." data_bits
    (Circuits.Hamming.check_bits_for data_bits);
  let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
  Format.printf "subject graph: %a@.@." Aigs.Aig.pp_stats aig;
  List.iter
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let mapped = Techmap.Mapper.map ml aig in
      assert (Techmap.Mapped.check mapped nl ~patterns:1024 ~seed:3L);
      Format.printf "%a@." Techmap.Mapped.pp_stats mapped;
      List.iter
        (fun (name, count) -> Format.printf "  %-8s x%d@." name count)
        (Techmap.Mapped.gate_histogram mapped);
      Format.printf "@.")
    [ Cell.Genlib.generalized_cntfet; Cell.Genlib.cmos ];
  (* Demonstrate the corrector actually corrects: flip one bit. *)
  let module N = Nets.Netlist in
  let data = Array.init data_bits (fun i -> i mod 3 = 0) in
  let enc = Circuits.Hamming.encoder ~data_bits in
  let checks = N.eval enc data in
  let corrupted = Array.mapi (fun i v -> if i = 13 then not v else v) data in
  let outs = N.eval nl (Array.append corrupted checks) in
  let ok = ref true in
  Array.iteri (fun i v -> if i < data_bits && v <> data.(i) then ok := false) outs;
  Format.printf "bit 13 flipped in transit; corrected: %b, error flag: %b@." !ok
    outs.(data_bits)
