(* Quickstart: characterize a gate, then synthesize and map a small circuit.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  Format.printf "=== 1. A single ambipolar gate ===@.";
  (* Every cell of the 46-gate library carries its transmission-gate
     implementation. GNAND2 computes !((A xor C) & (B xor D)). *)
  let gnand2 = Cell.Cells.find "GNAND2" in
  Format.printf "cell: %a@." Cell.Cells.pp gnand2;

  (* Characterize it in the CNTFET corner: activity factor, per-input-vector
     leakage (via I_off pattern classification + DC simulation), and the
     paper's power model at 1 GHz / 0.9 V. *)
  let lib = Cell.Genlib.generalized_cntfet in
  let gate = Cell.Genlib.find_gate lib "GNAND2" in
  let char = Power.Characterize.characterize_gate lib gate in
  Format.printf "alpha = %.2f, avg Ioff = %.3g nA, power: %a@."
    char.Power.Characterize.alpha
    (char.Power.Characterize.avg_ioff *. 1e9)
    Power.Powermodel.pp char.Power.Characterize.power;

  Format.printf "@.=== 2. A small circuit through the full flow ===@.";
  (* Build a 4-bit adder netlist, optimize it as an AIG, map it with the
     generalized ambipolar library, and estimate its power. *)
  let nl = Nets.Netlist.create () in
  let a = Circuits.Arith.input_bus nl "a" 4 in
  let b = Circuits.Arith.input_bus nl "b" 4 in
  let sum, carry = Circuits.Arith.ripple_adder nl a b in
  Circuits.Arith.output_bus nl "s" sum;
  Nets.Netlist.add_output nl "cout" carry;

  let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
  Format.printf "optimized subject graph: %a@." Aigs.Aig.pp_stats aig;

  let ml = Techmap.Matchlib.build lib in
  let mapped = Techmap.Mapper.map ml aig in
  Format.printf "mapped: %a@." Techmap.Mapped.pp_stats mapped;
  List.iter
    (fun (name, count) -> Format.printf "  %-8s x%d@." name count)
    (Techmap.Mapped.gate_histogram mapped);
  assert (Techmap.Mapped.check mapped nl ~patterns:1024 ~seed:1L);

  let report = Techmap.Estimate.run ~patterns:65536 mapped in
  Format.printf "power: %a@." Techmap.Estimate.pp_report report
