(* In-field programmable logic: the PLA and reconfigurable-cell story of
   the paper's background references [5] and [6].

   Builds a control function as an ambipolar PLA, compares its cost with a
   CMOS PLA and with standard cells, then shows a dynamic reconfigurable
   cell morphing through its function set by polarity-gate programming.

   Run with:  dune exec examples/pla_reconfig.exe *)

module D = Cell.Dynlogic
module T = Logic.Truthtable

let () =
  Format.printf "=== An ambipolar PLA ===@.";
  let nl = Nets.Netlist.create () in
  let sel = Circuits.Arith.input_bus nl "s" 4 in
  (* A small control block: gray-code next-state + parity + range check. *)
  let gray =
    Array.init 4 (fun i ->
        if i = 3 then sel.(3)
        else Nets.Netlist.add_node nl Nets.Netlist.Xor [| sel.(i); sel.(i + 1) |])
  in
  Circuits.Arith.output_bus nl "g" gray;
  Nets.Netlist.add_output nl "par" (Circuits.Arith.parity_tree nl sel);
  let p = Pla.of_netlist nl in
  Format.printf "%a@." Pla.pp p;
  assert (Pla.check_against p nl);
  let amb = Pla.ambipolar_cost p and cmos = Pla.cmos_cost p in
  Format.printf
    "ambipolar: %d transistors, %d input inverters, reprogrammable: %b@."
    amb.Pla.transistors amb.Pla.input_inverters amb.Pla.reconfigurable;
  Format.printf "cmos:      %d transistors, %d input inverters, reprogrammable: %b@."
    cmos.Pla.transistors cmos.Pla.input_inverters cmos.Pla.reconfigurable;

  Format.printf "@.=== A reconfigurable dynamic cell ===@.";
  let cell = D.reconfigurable2 in
  Format.printf "%s: %d transistors, %d config bits@." cell.D.name
    (D.num_transistors cell) cell.D.config_pins;
  Format.printf "functions reachable by reprogramming the polarity gates:@.";
  let seen = Hashtbl.create 16 in
  for config = 0 to (1 lsl cell.D.config_pins) - 1 do
    let f = D.function_of cell ~config in
    let key = Format.asprintf "%a" T.pp f in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      Format.printf "  config %2d: %a@." config Logic.Expr.pp (Logic.Expr.factor_tt f)
    end
  done;
  Format.printf "%d distinct functions (background [5]: 8 functions from 7 CNTFETs)@."
    (Hashtbl.length seen)
