(* Multipliers are the paper's motivating workload: arrays of full adders
   are XOR-dominated, which conventional NAND/NOR libraries implement
   poorly. This example sweeps the multiplier width and prints how the
   three libraries compare on gates, delay, power and EDP — the C6288 story
   of Table 1 at several sizes.

   Run with:  dune exec examples/multiplier_power.exe *)

let () =
  Format.printf
    "width | library               | gates | delay(ps) | PT(uW) | EDP(1e-24 J.s)@.";
  let matchlibs =
    List.map (fun lib -> (lib, Techmap.Matchlib.build lib)) Cell.Genlib.all_libraries
  in
  List.iter
    (fun width ->
      let nl = Circuits.Multiplier.generate ~width in
      let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
      List.iter
        (fun (lib, ml) ->
          let mapped = Techmap.Mapper.map ml aig in
          assert (Techmap.Mapped.check mapped nl ~patterns:512 ~seed:2L);
          let r = Techmap.Estimate.run ~patterns:65536 mapped in
          Format.printf "%5d | %-21s | %5d | %9.1f | %6.2f | %.3f@." width
            lib.Cell.Genlib.name r.Techmap.Estimate.gates
            (r.Techmap.Estimate.delay *. 1e12)
            (r.Techmap.Estimate.total *. 1e6)
            (r.Techmap.Estimate.edp *. 1e24))
        matchlibs;
      Format.printf "@.")
    [ 4; 8; 12 ]
