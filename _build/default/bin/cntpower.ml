(* cntpower — command-line driver for the ambipolar-CNTFET power study.

   Subcommands map one-to-one onto the experiments of DESIGN.md:
   table1, libchar, patterns, tgate, delay, dynamic, pla, seq, sensitivity,
   ablations, synth, genlib, and `all`, which reproduces every table and
   headline figure. *)

let std = Format.std_formatter

open Cmdliner

let patterns_arg =
  let doc = "Number of random simulation patterns for power estimation." in
  Arg.(value & opt int Techmap.Estimate.default_patterns & info [ "p"; "patterns" ] ~doc)

let circuit_arg =
  let doc = "Benchmark circuit name (Table 1 row), e.g. C6288." in
  Arg.(value & opt string "C6288" & info [ "c"; "circuit" ] ~doc)

let run_table1 patterns only =
  let circuits =
    match only with
    | [] -> Circuits.Suite.all
    | names -> List.map Circuits.Suite.find names
  in
  let summary = Experiments.Exp_table1.run ~patterns ~circuits () in
  Experiments.Exp_table1.print std summary

let table1_cmd =
  let only =
    let doc = "Restrict to the given circuits (repeatable)." in
    Arg.(value & opt_all string [] & info [ "only" ] ~doc)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1 (synthesis, mapping, power, EDP).")
    Term.(const run_table1 $ patterns_arg $ only)

let libchar_cmd =
  Cmd.v
    (Cmd.info "libchar"
       ~doc:"Reproduce the library characterization (E2, E4, E5, E6).")
    Term.(const (fun () -> Experiments.Exp_libchar.print std (Experiments.Exp_libchar.run ())) $ const ())

let patterns_cmd =
  Cmd.v
    (Cmd.info "patterns" ~doc:"Reproduce the I_off pattern census (E3, E8, A1).")
    Term.(const (fun () -> Experiments.Exp_patterns.print std (Experiments.Exp_patterns.run ())) $ const ())

let tgate_cmd =
  Cmd.v
    (Cmd.info "tgate" ~doc:"Reproduce the transmission-gate transfer study (E7, Fig. 2).")
    Term.(const (fun () -> Experiments.Exp_tgate.print std (Experiments.Exp_tgate.run ())) $ const ())

let delay_cmd =
  Cmd.v
    (Cmd.info "delay"
       ~doc:"Measure intrinsic inverter delays by transient analysis (E9).")
    Term.(const (fun () -> Experiments.Exp_delay.print std (Experiments.Exp_delay.run ())) $ const ())

let dynamic_cmd =
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:"Dynamic / reconfigurable ambipolar cells study (E10, extension).")
    Term.(const (fun () -> Experiments.Exp_dynamic.print std (Experiments.Exp_dynamic.run ())) $ const ())

let pla_cmd =
  Cmd.v
    (Cmd.info "pla"
       ~doc:"In-field programmable ambipolar PLA study (E11, extension).")
    Term.(const (fun () -> Experiments.Exp_pla.print std (Experiments.Exp_pla.run ())) $ const ())

let seq_cmd =
  Cmd.v
    (Cmd.info "seq"
       ~doc:"Clocked CRC engine with registers and clock tree (E12, extension).")
    Term.(const (fun () -> Experiments.Exp_seq.print std (Experiments.Exp_seq.run ())) $ const ())

let sensitivity_cmd =
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Supply/temperature/variation sensitivity studies (E13-E15, extension).")
    Term.(const (fun () -> Experiments.Exp_sensitivity.print std (Experiments.Exp_sensitivity.run ())) $ const ())

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the A2-A5 ablations on the multiplier.")
    Term.(const (fun () -> Experiments.Ablations.print std ()) $ const ())

let run_synth circuit patterns =
  let entry = Circuits.Suite.find circuit in
  let nl = entry.Circuits.Suite.generate () in
  let aig = Aigs.Aig.of_netlist nl in
  Format.fprintf std "%s (%s): %a@." entry.Circuits.Suite.name
    entry.Circuits.Suite.description Aigs.Aig.pp_stats aig;
  let opt = Aigs.Opt.resyn2rs aig in
  Format.fprintf std "after resyn2rs: %a@." Aigs.Aig.pp_stats opt;
  List.iter
    (fun lib ->
      let ml = Techmap.Matchlib.build lib in
      let mapped = Techmap.Mapper.map ml opt in
      let ok = Techmap.Mapped.check mapped nl ~patterns:512 ~seed:4L in
      Format.fprintf std "@.%a (verified: %b)@." Techmap.Mapped.pp_stats mapped ok;
      List.iter
        (fun (name, count) -> Format.fprintf std "  %-10s x%d@." name count)
        (Techmap.Mapped.gate_histogram mapped);
      let report = Techmap.Estimate.run ~patterns mapped in
      Format.fprintf std "  %a@." Techmap.Estimate.pp_report report;
      let sta = Techmap.Sta.analyze mapped in
      Format.fprintf std "  %a@." Techmap.Sta.pp_report sta)
    Cell.Genlib.all_libraries

let synth_cmd =
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesize and map one benchmark with all three libraries, with details.")
    Term.(const run_synth $ circuit_arg $ patterns_arg)

let genlib_cmd =
  let run () =
    List.iter
      (fun lib ->
        Format.fprintf std "# %a@.%s@." Cell.Genlib.pp_summary lib
          (Cell.Genlib.to_genlib_string lib))
      Cell.Genlib.all_libraries
  in
  Cmd.v
    (Cmd.info "genlib" ~doc:"Dump the three mapping libraries in genlib syntax.")
    Term.(const run $ const ())

let all_cmd =
  let run patterns =
    Experiments.Exp_libchar.print std (Experiments.Exp_libchar.run ());
    Experiments.Exp_patterns.print std (Experiments.Exp_patterns.run ());
    Experiments.Exp_tgate.print std (Experiments.Exp_tgate.run ());
    Experiments.Exp_delay.print std (Experiments.Exp_delay.run ());
    Experiments.Exp_dynamic.print std (Experiments.Exp_dynamic.run ());
    Experiments.Exp_pla.print std (Experiments.Exp_pla.run ());
    Experiments.Exp_seq.print std (Experiments.Exp_seq.run ());
    Experiments.Exp_sensitivity.print std (Experiments.Exp_sensitivity.run ());
    run_table1 patterns [];
    Experiments.Ablations.print std ()
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (E1-E8 and the ablations).")
    Term.(const run $ patterns_arg)

let main =
  Cmd.group
    (Cmd.info "cntpower" ~version:"1.0.0"
       ~doc:
         "Power consumption of logic circuits in ambipolar carbon nanotube \
          technology (DATE 2010) - reproduction harness.")
    [
      table1_cmd; libchar_cmd; patterns_cmd; tgate_cmd; delay_cmd; dynamic_cmd;
      pla_cmd; seq_cmd; sensitivity_cmd; ablations_cmd; synth_cmd; genlib_cmd; all_cmd;
    ]

let () = exit (Cmd.eval main)
