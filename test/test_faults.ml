(* Fault-injection suite: perturbed inputs (NaN device parameters, truncated
   BLIF, zero-capacitance nodes, combinational loops, ...) must surface as
   typed Cnt_error results with the right stage and code — never as an
   escaping exception. *)

module R = Runtime.Cnt_error
module F = Runtime.Fault
module C = Spice.Circuit
module T = Spice.Tech
module N = Nets.Netlist
module Blif = Nets.Blif
module Check = Nets.Check

let code = Alcotest.testable (fun ppf c -> Format.pp_print_string ppf (R.code_name c)) ( = )

let expect_graceful ~expected_code outcome =
  (match outcome.F.verdict with
  | F.Escaped exn -> Alcotest.failf "%s: exception escaped: %s" outcome.F.name exn
  | F.Survived -> Alcotest.failf "%s: fault was silently absorbed" outcome.F.name
  | F.Graceful e -> Alcotest.check code (outcome.F.name ^ " code") expected_code e.R.code);
  outcome

let context_key k outcome =
  match outcome.F.verdict with
  | F.Graceful e ->
      Alcotest.(check bool)
        (outcome.F.name ^ " has " ^ k ^ " context")
        true
        (List.mem_assoc k e.R.context)
  | _ -> Alcotest.failf "%s: expected a typed error" outcome.F.name

(* ------------------------------------------------------------------ *)
(* BLIF parser error paths *)

let parse s = Blif.parse_string s

let blif_fault ~name ~expected_code ?(line = true) text =
  let o =
    expect_graceful ~expected_code
      (F.inject ~name ~description:"blif" (fun () -> parse text))
  in
  if line then context_key "line" o

let blif_malformed_names () =
  blif_fault ~name:"names-no-signals" ~expected_code:R.Parse_error
    ".model m\n.inputs a\n.outputs y\n.names\n.end\n";
  blif_fault ~name:"bad-cover-row" ~expected_code:R.Parse_error
    ".model m\n.inputs a b\n.outputs y\n.names a b y\n1q 1\n.end\n";
  blif_fault ~name:"cover-width-mismatch" ~expected_code:R.Parse_error
    ".model m\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n";
  blif_fault ~name:"mixed-cover" ~expected_code:R.Parse_error
    ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n";
  blif_fault ~name:"unsupported-directive" ~expected_code:R.Unsupported
    ".model m\n.inputs a\n.outputs y\n.latch a y\n.end\n";
  blif_fault ~name:"unexpected-line" ~expected_code:R.Parse_error
    ".model m\ngarbage here\n.end\n"

let blif_truncated () =
  (* A partially-written file: truncate a valid BLIF at various fractions.
     The exact diagnosis depends on where the cut lands (missing .end,
     half a directive, a re-driven net), but every truncation must be
     rejected with a typed error — never accepted, never an exception. *)
  let full =
    ".model m\n.inputs a b c\n.outputs y\n.names a b t\n11 1\n.names t c y\n10 1\n.end\n"
  in
  List.iter
    (fun fraction ->
      let text = F.truncate_text ~fraction full in
      let o =
        F.inject
          ~name:(Printf.sprintf "truncated-%.2f" fraction)
          ~description:"truncated blif" (fun () -> parse text)
      in
      Alcotest.(check bool)
        (Printf.sprintf "truncated %.2f rejected with typed error" fraction)
        true (F.graceful o))
    [ 0.95; 0.8; 0.6; 0.4 ]

let blif_truncated_fixture () =
  match Blif.parse_file "fixtures/truncated.blif" with
  | Ok _ -> Alcotest.fail "truncated fixture must not parse"
  | Error e ->
      Alcotest.check code "code" R.Parse_error e.R.code;
      Alcotest.(check (option string)) "line" (Some "5") (List.assoc_opt "line" e.R.context);
      Alcotest.(check bool) "file context" true (List.mem_assoc "file" e.R.context)

let blif_duplicate_model () =
  blif_fault ~name:"dup-model" ~expected_code:R.Parse_error
    ".model m\n.inputs a\n.outputs y\n.model m2\n.names a y\n1 1\n.end\n";
  match Blif.parse_file "fixtures/dup_model.blif" with
  | Ok _ -> Alcotest.fail "duplicate model fixture must not parse"
  | Error e ->
      Alcotest.check code "code" R.Parse_error e.R.code;
      Alcotest.(check (option string))
        "first model name" (Some "dup")
        (List.assoc_opt "first_model" e.R.context);
      Alcotest.(check (option string)) "line" (Some "4") (List.assoc_opt "line" e.R.context)

let blif_multiply_driven () =
  blif_fault ~name:"driven-twice" ~expected_code:R.Multiply_driven_net
    ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n";
  blif_fault ~name:"input-redriven" ~expected_code:R.Multiply_driven_net
    ".model m\n.inputs a b\n.outputs y\n.names b a\n1 1\n.names a y\n1 1\n.end\n"

let blif_loops_and_undriven () =
  blif_fault ~name:"self-loop" ~expected_code:R.Combinational_loop
    ".model m\n.inputs a\n.outputs y\n.names a y z\n11 1\n.names z y\n1 1\n.names y z q\n11 1\n.end\n";
  (match Blif.parse_file "fixtures/loop.blif" with
  | Ok _ -> Alcotest.fail "loop fixture must not parse"
  | Error e ->
      Alcotest.check code "loop fixture code" R.Combinational_loop e.R.code;
      Alcotest.(check bool) "cycle context" true (List.mem_assoc "cycle" e.R.context));
  blif_fault ~name:"undriven-signal" ~expected_code:R.Undriven_net
    ".model m\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n";
  blif_fault ~name:"undriven-output" ~expected_code:R.Undriven_net ~line:false
    ".model m\n.inputs a\n.outputs y\n.end\n"

let blif_good_fixture () =
  match Blif.parse_file "fixtures/good.blif" with
  | Error e -> Alcotest.failf "good fixture rejected: %s" (R.to_string e)
  | Ok nl ->
      Alcotest.(check int) "inputs" 3 (N.num_inputs nl);
      Alcotest.(check int) "outputs" 2 (N.num_outputs nl);
      let report = R.get_exn (Check.check nl) in
      Alcotest.(check bool) "well-formed" true (Check.clean report)

(* ------------------------------------------------------------------ *)
(* Spice faults *)

let nan_device_param () =
  List.iter
    (fun (name, corrupt) ->
      ignore
        (expect_graceful ~expected_code:R.Non_finite
           (F.inject ~name ~description:"corrupted model card" (fun () ->
                Result.map (fun _ -> ()) (T.validate (corrupt T.cntfet))))))
    [
      ("nan-vth", fun t -> { t with T.vth_n = F.corrupt_float `Nan t.T.vth_n });
      ("inf-vdd", fun t -> { t with T.vdd = F.corrupt_float `Pos_inf t.T.vdd });
      ("nan-tau", fun t -> { t with T.tau = F.corrupt_float `Nan t.T.tau });
    ];
  (* Non-finite parameters are also rejected on the way into a transient
     simulation, through Circuit.validate. *)
  let bad = { T.cntfet with T.vth_n = Float.nan } in
  let c = C.create () in
  let vdd = C.node c "vdd" and out = C.node c "out" and g = C.node c "g" in
  C.add_vsource c vdd 0.9;
  C.add_transistor c (Spice.Device.Nmos bad) ~d:out ~g ~s:C.ground ();
  let o =
    F.inject ~name:"nan-vth-simulate" ~description:"NaN Vth reaches simulate"
      (fun () ->
        Spice.Transient.simulate_checked c
          ~caps:[ (out, 1e-15) ]
          ~drives:[ (g, Spice.Transient.step ~low:0.0 ~high:0.9 ()) ]
          ~tstop:1e-11 [ out ])
  in
  ignore (expect_graceful ~expected_code:R.Non_finite o)

let zero_cap_node () =
  let c = C.create () in
  let src = C.node c "src" and top = C.node c "top" in
  C.add_resistor c src top 1e5;
  let stim = Spice.Transient.step ~low:0.9 ~high:0.0 () in
  let run caps =
    Spice.Transient.simulate_checked c ~caps ~drives:[ (src, stim) ] ~tstop:1e-10 [ top ]
  in
  let o =
    expect_graceful ~expected_code:R.Validation_error
      (F.inject ~name:"zero-cap-free-node" ~description:"cap omitted" (fun () -> run []))
  in
  context_key "nodes" o;
  ignore
    (expect_graceful ~expected_code:R.Validation_error
       (F.inject ~name:"explicit-zero-cap" ~description:"cap = 0" (fun () ->
            run [ (top, 0.0) ])));
  ignore
    (expect_graceful ~expected_code:R.Non_finite
       (F.inject ~name:"nan-cap" ~description:"cap = NaN" (fun () ->
            run [ (top, Float.nan) ])));
  ignore
    (expect_graceful ~expected_code:R.Validation_error
       (F.inject ~name:"negative-cap" ~description:"cap < 0" (fun () ->
            run [ (top, -1e-15) ])))

let nan_stimulus () =
  let c = C.create () in
  let src = C.node c "src" and top = C.node c "top" in
  C.add_resistor c src top 1e5;
  ignore
    (expect_graceful ~expected_code:R.Non_finite
       (F.inject ~name:"nan-stimulus" ~description:"stimulus returns NaN" (fun () ->
            Spice.Transient.simulate_checked c
              ~caps:[ (top, 1e-15) ]
              ~drives:[ (src, fun _ -> Float.nan) ]
              ~tstop:1e-10 [ top ])))

let invalid_elements () =
  (* Construction-time validation raises typed errors; a protect boundary
     turns them into results. *)
  List.iter
    (fun (name, build) ->
      let o =
        F.inject ~name ~description:"invalid element"
          (fun () -> R.protect ~stage:R.Spice build)
      in
      match o.F.verdict with
      | F.Graceful _ -> ()
      | F.Survived -> Alcotest.failf "%s: accepted" name
      | F.Escaped e -> Alcotest.failf "%s: escaped: %s" name e)
    [
      ( "negative-resistor",
        fun () ->
          let c = C.create () in
          C.add_resistor c (C.node c "a") (C.node c "b") (-10.0) );
      ( "nan-resistor",
        fun () ->
          let c = C.create () in
          C.add_resistor c (C.node c "a") (C.node c "b") Float.nan );
      ( "nan-source",
        fun () ->
          let c = C.create () in
          C.add_vsource c (C.node c "a") Float.nan );
      ( "source-on-ground",
        fun () ->
          let c = C.create () in
          C.add_vsource c C.ground 0.9 );
    ]

let step_budget_exhaustion () =
  (* dv_max so small that tstop needs ~1e9 steps: the solver must fail with
     a typed convergence error instead of silently returning a partial
     waveform (the pre-hardening behavior). *)
  let c = C.create () in
  let src = C.node c "src" and top = C.node c "top" in
  C.add_resistor c src top 1e5;
  let stim = Spice.Transient.step ~t0:1e-12 ~rise:1e-13 ~low:0.9 ~high:0.0 () in
  let o =
    F.inject ~name:"step-budget" ~description:"dv_max too small for tstop"
      (fun () ->
        Spice.Transient.simulate_checked c
          ~caps:[ (top, 1e-15) ]
          ~drives:[ (src, stim) ]
          ~tstop:600e-12 ~dv_max:1e-12 ~max_retries:0 [ top ])
  in
  let o = expect_graceful ~expected_code:R.Convergence_failure o in
  context_key "retries" o

let diagnostics_reported () =
  let c = C.create () in
  let src = C.node c "src" and top = C.node c "top" in
  C.add_resistor c src top 1e5;
  let stim = Spice.Transient.step ~t0:5e-12 ~low:0.9 ~high:0.0 () in
  match
    Spice.Transient.simulate_checked c
      ~caps:[ (top, 1e-15) ]
      ~drives:[ (src, stim) ]
      ~tstop:600e-12 [ top ]
  with
  | Error e -> Alcotest.failf "rc discharge failed: %s" (R.to_string e)
  | Ok (waves, diag) ->
      Alcotest.(check bool) "converged" true diag.Spice.Transient.converged;
      Alcotest.(check int) "no retries" 0 diag.Spice.Transient.retries;
      Alcotest.(check bool) "steps counted" true (diag.Spice.Transient.steps > 0);
      Alcotest.(check bool) "min_dt positive" true (diag.Spice.Transient.min_dt > 0.0);
      Alcotest.(check bool) "waveform present" true (List.mem_assoc top waves)

(* ------------------------------------------------------------------ *)
(* Netlist checker and harness *)

let check_reports () =
  let t = N.create () in
  let a = N.add_input t "a" and b = N.add_input t "b" in
  let y = N.add_node t N.And [| a; b |] in
  let _dead = N.add_node t N.Or [| a; b |] in
  N.add_output t "y" y;
  let r = R.get_exn (Check.check t) in
  Alcotest.(check int) "dangling" 1 r.Check.dangling_nodes;
  Alcotest.(check (list string)) "unused" [] r.Check.unused_inputs;
  let t2 = N.create () in
  let a2 = N.add_input t2 "a" in
  let _unused = N.add_input t2 "u" in
  N.add_output t2 "y" (N.add_node t2 N.Not [| a2 |]);
  let r2 = R.get_exn (Check.check t2) in
  Alcotest.(check (list string)) "unused input" [ "u" ] r2.Check.unused_inputs

let check_errors () =
  let t = N.create () in
  let a = N.add_input t "a" in
  N.add_output t "y" a;
  N.add_output t "y" a;
  (match Check.check t with
  | Ok _ -> Alcotest.fail "duplicate output accepted"
  | Error e -> Alcotest.check code "dup output" R.Multiply_driven_net e.R.code);
  let t2 = N.create () in
  let _ = N.add_input t2 "a" in
  (match Check.check t2 with
  | Ok _ -> Alcotest.fail "no outputs accepted"
  | Error e -> Alcotest.check code "no outputs" R.Validation_error e.R.code);
  let t3 = N.create () in
  let a3 = N.add_input t3 "x" in
  let _ = N.add_input t3 "x" in
  N.add_output t3 "y" a3;
  match Check.check t3 with
  | Ok _ -> Alcotest.fail "duplicate input accepted"
  | Error e -> Alcotest.check code "dup input" R.Validation_error e.R.code

let find_cycle_unit () =
  let deps = function
    | "a" -> [ "b" ]
    | "b" -> [ "c" ]
    | "c" -> [ "a" ]
    | _ -> []
  in
  (match Check.find_cycle ~nodes:[ "x"; "a" ] ~deps with
  | Some cycle -> Alcotest.(check int) "cycle length" 3 (List.length cycle)
  | None -> Alcotest.fail "cycle not found");
  let acyclic = function "a" -> [ "b"; "c" ] | "b" -> [ "c" ] | _ -> [] in
  Alcotest.(check bool)
    "acyclic" true
    (Check.find_cycle ~nodes:[ "a" ] ~deps:acyclic = None)

let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let harness_keep_going () =
  let module H = Experiments.Harness in
  let entries =
    [
      H.entry "good1" "passes" (fun ~degraded:_ _ -> []);
      H.entry "bad" "raises" (fun ~degraded:_ _ -> failwith "boom");
      H.entry "good2" "passes" (fun ~degraded:_ _ -> []);
    ]
  in
  let s =
    H.run_all
      ~config:{ H.default_config with H.mode = H.Keep_going }
      null entries
  in
  Alcotest.(check int) "one failure" 1 (List.length (H.failures s));
  Alcotest.(check bool) "not aborted" false s.H.aborted;
  Alcotest.(check int) "exit 10" 10 (H.exit_status s);
  (match List.assoc "good2" s.H.results with
  | H.Passed _ -> ()
  | _ -> Alcotest.fail "good2 must still run after bad fails");
  let name, e = List.hd (H.failures s) in
  Alcotest.(check string) "failed name" "bad" name;
  Alcotest.check code "wrapped failure" R.Internal e.R.code;
  Alcotest.(check (option string))
    "experiment context" (Some "bad")
    (List.assoc_opt "experiment" e.R.context)

let harness_strict () =
  let module H = Experiments.Harness in
  let ran = ref [] in
  let entries =
    [
      H.entry "good1" "passes" (fun ~degraded:_ _ ->
          ran := "good1" :: !ran;
          []);
      H.entry "bad" "typed failure" (fun ~degraded:_ _ ->
          R.failf R.Spice R.Convergence_failure "injected");
      H.entry "good2" "passes" (fun ~degraded:_ _ ->
          ran := "good2" :: !ran;
          []);
    ]
  in
  let s =
    H.run_all ~config:{ H.default_config with H.mode = H.Strict } null entries
  in
  Alcotest.(check bool) "aborted" true s.H.aborted;
  Alcotest.(check int) "exit 11" 11 (H.exit_status s);
  Alcotest.(check (list string)) "good2 skipped" [ "good1" ] !ran;
  (match List.assoc "good2" s.H.results with
  | H.Skipped -> ()
  | _ -> Alcotest.fail "good2 must be skipped");
  let _, e = List.hd (H.failures s) in
  Alcotest.check code "typed failure preserved" R.Convergence_failure e.R.code

let harness_all_pass () =
  let module H = Experiments.Harness in
  let s =
    H.run_all null [ H.entry "only" "ok" (fun ~degraded:_ _ -> []) ]
  in
  Alcotest.(check int) "exit 0" 0 (H.exit_status s)

let injector_classification () =
  let escaped =
    Runtime.Fault.inject ~name:"escape" ~description:"raw exception" (fun () ->
        failwith "raw")
  in
  Alcotest.(check bool) "escaped detected" false (F.contained escaped);
  let survived =
    Runtime.Fault.inject ~name:"benign" ~description:"ok" (fun () -> Ok 42)
  in
  Alcotest.(check bool) "survived" true (F.contained survived);
  Alcotest.(check bool) "not graceful" false (F.graceful survived)

(* ------------------------------------------------------------------ *)
(* Acceptance: the four canonical faults of the issue, in one sweep. *)

let canonical_sweep () =
  let nan_tech = { T.cntfet with T.vth_n = Float.nan } in
  let outcomes =
    [
      F.inject ~name:"nan-device-param" ~description:"NaN Vth in the model card"
        (fun () -> Result.map ignore (T.validate nan_tech));
      F.inject ~name:"truncated-blif" ~description:"file cut mid-cover" (fun () ->
          Blif.parse_file "fixtures/truncated.blif");
      F.inject ~name:"zero-cap-node" ~description:"free node without cap" (fun () ->
          let c = C.create () in
          let src = C.node c "src" and top = C.node c "top" in
          C.add_resistor c src top 1e5;
          Spice.Transient.simulate_checked c ~caps:[]
            ~drives:[ (src, Spice.Transient.step ~low:0.9 ~high:0.0 ()) ]
            ~tstop:1e-10 [ top ]);
      F.inject ~name:"combinational-loop" ~description:"cyclic .names blocks"
        (fun () -> Blif.parse_file "fixtures/loop.blif");
    ]
  in
  let escaped = F.summarize null outcomes in
  Alcotest.(check int) "zero uncaught exceptions" 0 escaped;
  List.iter
    (fun o ->
      match o.F.verdict with
      | F.Graceful e ->
          Alcotest.(check bool)
            (o.F.name ^ " carries stage+code") true
            (R.stage_name e.R.stage <> "" && R.code_name e.R.code <> "")
      | _ -> Alcotest.failf "%s: expected typed error" o.F.name)
    outcomes

let () =
  Alcotest.run "faults"
    [
      ( "blif",
        [
          Alcotest.test_case "malformed .names" `Quick blif_malformed_names;
          Alcotest.test_case "truncated text" `Quick blif_truncated;
          Alcotest.test_case "truncated fixture" `Quick blif_truncated_fixture;
          Alcotest.test_case "duplicate model" `Quick blif_duplicate_model;
          Alcotest.test_case "multiply driven" `Quick blif_multiply_driven;
          Alcotest.test_case "loops and undriven" `Quick blif_loops_and_undriven;
          Alcotest.test_case "good fixture parses" `Quick blif_good_fixture;
        ] );
      ( "spice",
        [
          Alcotest.test_case "nan device param" `Quick nan_device_param;
          Alcotest.test_case "zero-cap node" `Quick zero_cap_node;
          Alcotest.test_case "nan stimulus" `Quick nan_stimulus;
          Alcotest.test_case "invalid elements" `Quick invalid_elements;
          Alcotest.test_case "step budget exhaustion" `Slow step_budget_exhaustion;
          Alcotest.test_case "diagnostics" `Quick diagnostics_reported;
        ] );
      ( "checker",
        [
          Alcotest.test_case "reports" `Quick check_reports;
          Alcotest.test_case "errors" `Quick check_errors;
          Alcotest.test_case "find_cycle" `Quick find_cycle_unit;
        ] );
      ( "harness",
        [
          Alcotest.test_case "keep-going" `Quick harness_keep_going;
          Alcotest.test_case "strict" `Quick harness_strict;
          Alcotest.test_case "all pass" `Quick harness_all_pass;
          Alcotest.test_case "injector classification" `Quick injector_classification;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "canonical fault sweep" `Quick canonical_sweep ] );
    ]
