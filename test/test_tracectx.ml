(* Trace correlation: counter-based id minting, propagation across
   Supervisor forks and Dpool domains, journal stamping, and the
   per-request slicing that `cntpower trace --request` is built on. *)

module Tc = Runtime.Tracectx
module Jn = Runtime.Journal
module T = Runtime.Telemetry
module E = Runtime.Cnt_error
module S = Runtime.Supervisor
module Tr = Runtime.Trace_export
module C = Runtime.Checkpoint

let temp_dir prefix =
  let d = Filename.temp_file prefix ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Tests install contexts; always leave the domain clean. *)
let fresh f () =
  Tc.set None;
  Fun.protect ~finally:(fun () -> Tc.set None) f

(* --- minting ------------------------------------------------------- *)

let minting_shape =
  fresh (fun () ->
      let pid = string_of_int (Unix.getpid ()) in
      let a = Tc.mint_root () in
      let b = Tc.mint_root () in
      Alcotest.(check bool) "trace ids carry this pid" true
        (String.length a.Tc.trace_id > 2
        && String.sub a.Tc.trace_id 0 1 = "t"
        && String.sub a.Tc.trace_id 1 (String.length pid) = pid);
      Alcotest.(check bool) "roots have no parent" true
        (a.Tc.parent_id = None && b.Tc.parent_id = None);
      Alcotest.(check bool) "consecutive mints are distinct" true
        (a.Tc.trace_id <> b.Tc.trace_id && a.Tc.span_id <> b.Tc.span_id);
      let c = Tc.child a in
      Alcotest.(check string) "child stays in the trace" a.Tc.trace_id
        c.Tc.trace_id;
      Alcotest.(check (option string)) "child points at its parent span"
        (Some a.Tc.span_id) c.Tc.parent_id;
      Alcotest.(check bool) "child gets its own span" true
        (c.Tc.span_id <> a.Tc.span_id))

let with_ctx_restores =
  fresh (fun () ->
      let outer = Tc.mint_root () in
      Tc.set (Some outer);
      let inner = Tc.mint_root () in
      let seen = Tc.with_ctx inner (fun () -> Tc.current ()) in
      Alcotest.(check (option string)) "inner installed"
        (Some inner.Tc.span_id)
        (Option.map (fun c -> c.Tc.span_id) seen);
      Alcotest.(check (option string)) "outer restored"
        (Some outer.Tc.span_id)
        (Option.map (fun c -> c.Tc.span_id) (Tc.current ()));
      (match Tc.with_ctx inner (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      Alcotest.(check (option string)) "restored on exception too"
        (Some outer.Tc.span_id)
        (Option.map (fun c -> c.Tc.span_id) (Tc.current ())))

let fields_roundtrip =
  fresh (fun () ->
      let root = Tc.mint_root () in
      let ctx = Tc.child root in
      Alcotest.(check (option string)) "fields round-trip a child"
        (Some ctx.Tc.span_id)
        (Option.map
           (fun c -> c.Tc.span_id)
           (Tc.of_fields (Tc.to_fields ctx)));
      Alcotest.(check bool) "root renders no parent field" true
        (not (List.mem_assoc "parent" (Tc.to_fields root)));
      Alcotest.(check (option string)) "span label inverts"
        (Some ctx.Tc.trace_id)
        (Tc.trace_of_label (Tc.span_label ctx));
      Alcotest.(check (option string)) "non-label is not a trace" None
        (Tc.trace_of_label "serve.request"))

(* --- fork propagation ---------------------------------------------- *)

let fork_derives_child =
  fresh (fun () ->
      let ctx = Tc.mint_root () in
      Tc.set (Some ctx);
      let outcome =
        S.run
          ~policy:{ S.timeout_s = 30.0; retries = 0; degrade = false }
          ~name:"tracectx-fork"
          (fun ~degraded:_ ->
            (* Runs in the forked worker: the supervisor must have
               replaced the inherited context with a child of it. *)
            match Tc.current () with
            | None -> []
            | Some c -> Tc.to_fields c)
      in
      let fields =
        match outcome.S.value with
        | Ok f -> f
        | Result.Error e -> Alcotest.failf "worker: %s" (E.to_string e)
      in
      let worker = Tc.of_fields fields in
      Alcotest.(check (option string)) "worker stays in the trace"
        (Some ctx.Tc.trace_id)
        (Option.map (fun c -> c.Tc.trace_id) worker);
      Alcotest.(check (option (option string)))
        "worker span is a child of the request span"
        (Some (Some ctx.Tc.span_id))
        (Option.map (fun c -> c.Tc.parent_id) worker);
      Alcotest.(check bool) "worker span is its own" true
        (Option.map (fun c -> c.Tc.span_id) worker <> Some ctx.Tc.span_id))

let journal_events_stamped =
  fresh (fun () ->
      let dir = temp_dir "tracectx" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          Jn.set_enabled true;
          Jn.set_verbosity None;
          Fun.protect
            ~finally:(fun () ->
              Jn.close_sink ();
              Jn.set_enabled false;
              Jn.set_verbosity (Some Jn.Info))
            (fun () ->
              let path = Filename.concat dir "events.jsonl" in
              E.get_exn (Jn.open_sink ~path ());
              let ctx = Tc.mint_root () in
              Tc.with_ctx ctx (fun () ->
                  Jn.emit Jn.Run_started [ ("run", "t") ];
                  let outcome =
                    S.run
                      ~policy:
                        { S.timeout_s = 30.0; retries = 0; degrade = false }
                      ~name:"stamped"
                      (fun ~degraded:_ ->
                        Jn.emit ~level:Jn.Debug Jn.Experiment_started
                          [ ("experiment", "stamped") ];
                        Unix.getpid ())
                  in
                  match outcome.S.value with
                  | Ok _ -> ()
                  | Result.Error e ->
                      Alcotest.failf "worker: %s" (E.to_string e));
              (* Outside the context: no stamp. *)
              Jn.emit Jn.Run_finished [];
              Jn.close_sink ();
              let events, skipped =
                match Jn.load ~path with
                | Ok r -> r
                | Result.Error e ->
                    Alcotest.failf "load: %s" (E.to_string e)
              in
              Alcotest.(check int) "clean parse" 0 skipped;
              let stamped =
                List.filter
                  (fun e -> Jn.find e "trace" = Some ctx.Tc.trace_id)
                  events
              in
              (* Parent-side lifecycle events and the worker's own event
                 all carry the same trace id. *)
              let kinds = List.map (fun e -> e.Jn.ev_kind) stamped in
              List.iter
                (fun k ->
                  Alcotest.(check bool)
                    (Jn.kind_name k ^ " stamped")
                    true (List.mem k kinds))
                [ Jn.Run_started; Jn.Worker_spawned; Jn.Experiment_started ];
              (* The worker's event is a child span: same trace, its own
                 span, parented under the request span. *)
              let worker_ev =
                List.find
                  (fun e -> e.Jn.ev_kind = Jn.Experiment_started)
                  stamped
              in
              Alcotest.(check (option string)) "worker event parented"
                (Some ctx.Tc.span_id)
                (Jn.find worker_ev "parent");
              let finished =
                List.find (fun e -> e.Jn.ev_kind = Jn.Run_finished) events
              in
              Alcotest.(check (option string)) "no context, no stamp" None
                (Jn.find finished "trace"))))

(* --- domain propagation -------------------------------------------- *)

let domains_inherit =
  fresh (fun () ->
      let ctx = Tc.mint_root () in
      Tc.set (Some ctx);
      let n = 8 in
      let seen = Array.make n "" in
      let (_ : Runtime.Dpool.stats) =
        Runtime.Dpool.run ~domains:2 ~min_units_per_domain:1 ~units:n
          (fun ~worker:_ ~lo ~len ->
            for i = lo to lo + len - 1 do
              seen.(i) <-
                (match Tc.current () with
                | Some c -> c.Tc.trace_id
                | None -> "<none>")
            done)
      in
      Array.iteri
        (fun i id ->
          Alcotest.(check string)
            (Printf.sprintf "unit %d sees the spawning trace" i)
            ctx.Tc.trace_id id)
        seen)

(* --- chrome trace + slicing ---------------------------------------- *)

(* A two-request serve-style fixture: each request has a trace:<id>
   telemetry subtree and journal events (admission on the server PID,
   work on the worker PID). *)
let slice_fixture () =
  let r1 = Tc.mint_root () in
  let r2 = Tc.mint_root () in
  let leaf name total =
    { T.span_name = name; calls = 1; total_s = total; children = [] }
  in
  let request ctx work =
    {
      T.span_name = Tc.span_label ctx;
      calls = 1;
      total_s = 0.2;
      children = [ leaf work 0.15 ];
    }
  in
  let profile =
    {
      T.p_spans =
        [
          {
            T.span_name = "serve.request";
            calls = 2;
            total_s = 0.4;
            children = [ request r1 "estimate-a"; request r2 "estimate-b" ];
          };
        ];
      p_counters = [];
      p_dists = [];
    }
  in
  let ev seq pid kind fields =
    {
      Jn.ev_seq = seq;
      ev_time = 1000.0 +. float_of_int seq;
      ev_pid = pid;
      ev_level = Jn.Debug;
      ev_kind = kind;
      ev_fields = fields;
    }
  in
  let events =
    [
      ev 1 100 Jn.Run_started [ ("run", "serve") ];
      ev 2 100 Jn.Request_admitted
        (("request", "1") :: Tc.to_fields r1);
      ev 3 100 Jn.Worker_spawned
        (("worker_pid", "201") :: Tc.to_fields r1);
      ev 4 100 Jn.Request_admitted
        (("request", "2") :: Tc.to_fields r2);
      ev 5 100 Jn.Worker_spawned
        (("worker_pid", "202") :: Tc.to_fields r2);
      ev 6 201 Jn.Cache_hit (("cache", "matchlib") :: Tc.to_fields r1);
      ev 7 100 Jn.Request_done (("request", "1") :: Tc.to_fields r1);
      ev 8 100 Jn.Request_done (("request", "2") :: Tc.to_fields r2);
    ]
  in
  (r1, r2, profile, events)

let slice_selects_one_request =
  fresh (fun () ->
      let r1, r2, profile, events = slice_fixture () in
      (* Resolution accepts the trace id itself or the request number. *)
      Alcotest.(check (option string)) "trace id resolves verbatim"
        (Some r1.Tc.trace_id)
        (Tr.resolve_trace_id ~events r1.Tc.trace_id);
      Alcotest.(check (option string)) "request number resolves"
        (Some r2.Tc.trace_id)
        (Tr.resolve_trace_id ~events "2");
      Alcotest.(check (option string)) "garbage does not resolve" None
        (Tr.resolve_trace_id ~events "nope");
      let sliced, evs = Tr.slice ~trace_id:r1.Tc.trace_id ~events profile in
      (* Exactly request 1's events: every event of r1, none of r2, and
         the untraced run_started dropped. *)
      Alcotest.(check int) "exactly request 1's events" 4 (List.length evs);
      List.iter
        (fun e ->
          Alcotest.(check (option string)) "every sliced event is r1's"
            (Some r1.Tc.trace_id) (Jn.find e "trace"))
        evs;
      (* The profile keeps just the trace:<id> subtree, promoted to the
         top level. *)
      Alcotest.(check int) "one subtree" 1 (List.length sliced.T.p_spans);
      let root = List.hd sliced.T.p_spans in
      Alcotest.(check string) "subtree is the request's"
        (Tc.span_label r1) root.T.span_name;
      Alcotest.(check bool) "request's work is inside" true
        (List.exists
           (fun (s : T.span) -> s.T.span_name = "estimate-a")
           root.T.children))

let trace_export_anchors_worker_track =
  fresh (fun () ->
      let r1, _, profile, events = slice_fixture () in
      let sliced, evs = Tr.slice ~trace_id:r1.Tc.trace_id ~events profile in
      let trace = Tr.to_trace ~events:evs sliced in
      let trace_events =
        match trace with
        | C.Obj fields -> (
            match List.assoc_opt "traceEvents" fields with
            | Some (C.Arr evs) -> evs
            | _ -> Alcotest.fail "no traceEvents")
        | _ -> Alcotest.fail "not an object"
      in
      let field name ev =
        match ev with
        | C.Obj fields -> List.assoc_opt name fields
        | _ -> None
      in
      (* The request's span subtree lands on the worker's PID track, as
         anchored by its worker_spawned event. *)
      let request_span =
        List.find_opt
          (fun ev ->
            field "ph" ev = Some (C.Str "X")
            && field "name" ev = Some (C.Str (Tc.span_label r1)))
          trace_events
      in
      (match request_span with
      | None -> Alcotest.fail "request span missing from chrome trace"
      | Some ev ->
          Alcotest.(check bool) "anchored on the worker PID track" true
            (field "pid" ev = Some (C.Num 201.0)));
      (* And only request 1's instants made it in. *)
      let instants =
        List.filter (fun ev -> field "ph" ev = Some (C.Str "i")) trace_events
      in
      Alcotest.(check int) "only the request's instants" 4
        (List.length instants))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "tracectx"
    [
      ( "minting",
        [
          tc "root and child id structure" minting_shape;
          tc "with_ctx installs and restores" with_ctx_restores;
          tc "journal fields round-trip" fields_roundtrip;
        ] );
      ( "propagation",
        [
          tc "forked workers derive a child span" fork_derives_child;
          tc "journal events are stamped end-to-end" journal_events_stamped;
          tc "dpool domains inherit the context" domains_inherit;
        ] );
      ( "slicing",
        [
          tc "slice selects exactly one request" slice_selects_one_request;
          tc "chrome trace anchors the worker track"
            trace_export_anchors_worker_track;
        ] );
    ]
