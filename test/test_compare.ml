(* Cross-run comparison: span tolerance semantics (one-sided wall clock
   with a jitter floor), two-sided counter and scalar drift, the
   regression exit code, JSON rendering, and a fault-injected slowdown
   caught end to end. *)

module Cp = Runtime.Compare
module T = Runtime.Telemetry
module C = Runtime.Checkpoint
module E = Runtime.Cnt_error

let leaf ?(calls = 1) name total =
  { T.span_name = name; calls; total_s = total; children = [] }

let profile ?(counters = []) spans =
  { T.p_spans = spans; p_counters = counters; p_dists = [] }

let verdict_of items name =
  match List.find_opt (fun i -> i.Cp.i_name = name) items with
  | Some i -> i.Cp.i_verdict
  | None -> Alcotest.failf "no item named %s" name

let check_verdict items name expected =
  Alcotest.(check string) name
    (Cp.verdict_name expected)
    (Cp.verdict_name (verdict_of items name))

(* --- span semantics ------------------------------------------------ *)

let span_tolerance_semantics () =
  let base =
    profile
      [
        leaf "same" 1.0;
        leaf "slower_ok" 1.0;
        leaf "slower_bad" 1.0;
        leaf "faster" 1.0;
        leaf "gone" 1.0;
      ]
  in
  let cur =
    profile
      [
        leaf "same" 1.0;
        leaf "slower_ok" 1.4;  (* +40% < default 50% tolerance *)
        leaf "slower_bad" 1.6; (* +60% > tolerance *)
        leaf "faster" 0.3;     (* one-sided: fast is never a failure *)
        leaf "new" 1.0;
      ]
  in
  let items = Cp.compare_profiles ~base cur in
  check_verdict items "same" Cp.Within;
  check_verdict items "slower_ok" Cp.Within;
  check_verdict items "slower_bad" Cp.Regressed;
  check_verdict items "faster" Cp.Improved;
  check_verdict items "gone" Cp.Missing;
  check_verdict items "new" Cp.Added

let jitter_floor_ignores_fast_spans () =
  (* 10x slowdown, but both sides sit under min_wall_s: scheduler noise,
     not a regression. *)
  let base = profile [ leaf "tiny" 0.001 ] in
  let cur = profile [ leaf "tiny" 0.010 ] in
  check_verdict (Cp.compare_profiles ~base cur) "tiny" Cp.Within;
  (* Crossing the floor re-arms the gate. *)
  let cur' = profile [ leaf "tiny" 0.2 ] in
  check_verdict (Cp.compare_profiles ~base cur') "tiny" Cp.Regressed

let nested_spans_match_by_path () =
  let tree slow =
    [
      {
        T.span_name = "exp";
        calls = 1;
        total_s = 1.0;
        children = [ leaf "solve" (if slow then 0.9 else 0.3) ];
      };
    ]
  in
  let items = Cp.compare_profiles ~base:(profile (tree false))
      (profile (tree true))
  in
  check_verdict items "exp" Cp.Within;
  check_verdict items "exp/solve" Cp.Regressed

let attempts_do_not_regress () =
  (* calls legitimately differ between runs (retries); only wall clock is
     compared. *)
  let base = profile [ leaf ~calls:1 "exp" 1.0 ] in
  let cur = profile [ leaf ~calls:3 "exp" 1.1 ] in
  check_verdict (Cp.compare_profiles ~base cur) "exp" Cp.Within

(* --- counters and scalars ------------------------------------------ *)

let counter_drift_is_two_sided () =
  let base = profile ~counters:[ ("solves", 100); ("hits", 100) ] [] in
  let up = profile ~counters:[ ("solves", 115); ("hits", 100) ] [] in
  let down = profile ~counters:[ ("solves", 85); ("hits", 100) ] [] in
  check_verdict (Cp.compare_profiles ~base up) "solves" Cp.Regressed;
  (* Fewer solves is drift too — determinism, not speed, is the contract. *)
  check_verdict (Cp.compare_profiles ~base down) "solves" Cp.Regressed;
  check_verdict (Cp.compare_profiles ~base up) "hits" Cp.Within

let manifest_scalars_compared () =
  let entry ?(status = C.Passed) name scalars =
    C.entry ~experiment:name ~seed:42L ~patterns:256 ~wall_time:1.0
      ~attempts:1 ~status scalars
  in
  let man entries =
    List.fold_left C.add (C.empty ~run_name:"t") entries
  in
  let base =
    man
      [
        entry "table1" [ ("p_avg_uw", 1.00) ];
        entry "broken" ~status:C.Failed [];
      ]
  in
  let cur =
    man
      [
        entry "table1" [ ("p_avg_uw", 1.20) ];  (* 20% > 5% scalar rtol *)
        entry "broken" ~status:C.Failed [ ("junk", 9.9) ];
      ]
  in
  let items = Cp.compare_manifests ~base cur in
  check_verdict items "table1/p_avg_uw" Cp.Regressed;
  Alcotest.(check bool) "failed entries contribute no scalars" true
    (List.for_all (fun i -> i.Cp.i_name <> "broken/junk") items)

let tolerances_are_configurable () =
  let tol = { Cp.default with Cp.wall_rtol = 2.0 } in
  let base = profile [ leaf "exp" 1.0 ] in
  let cur = profile [ leaf "exp" 2.5 ] in
  check_verdict (Cp.compare_profiles ~tol ~base cur) "exp" Cp.Within;
  check_verdict (Cp.compare_profiles ~base cur) "exp" Cp.Regressed

(* --- regression gate ----------------------------------------------- *)

let clean_report_has_no_error () =
  let base = profile ~counters:[ ("k", 10) ] [ leaf "exp" 1.0 ] in
  let items = Cp.compare_profiles ~base base in
  let report = { Cp.tol = Cp.default; items } in
  Alcotest.(check bool) "identical runs compare clean" true
    (Cp.regression_error report = None);
  Alcotest.(check int) "no regressions listed" 0
    (List.length (Cp.regressions report))

let injected_slowdown_exits_28 () =
  (* Fault injection: take a healthy profile, artificially slow one span
     past tolerance, and check the failure is typed all the way to the
     process exit code. *)
  let base =
    profile ~counters:[ ("solves", 50) ]
      [ leaf "table1" 2.0; leaf "seq" 1.0 ]
  in
  let slowed =
    profile ~counters:[ ("solves", 50) ]
      [ leaf "table1" (2.0 *. 1.8); leaf "seq" 1.0 ]
  in
  let report =
    { Cp.tol = Cp.default; items = Cp.compare_profiles ~base slowed }
  in
  match Cp.regression_error report with
  | None -> Alcotest.fail "injected slowdown not caught"
  | Some e ->
      Alcotest.(check bool) "typed regression code" true
        (e.E.code = E.Regression);
      Alcotest.(check int) "distinct exit code" 28 (E.exit_code e);
      Alcotest.(check (option string)) "offender count in context"
        (Some "1")
        (List.assoc_opt "regressed" e.E.context);
      Alcotest.(check bool) "offender named in context" true
        (match List.assoc_opt "worst" e.E.context with
        | Some worst -> worst = "table1"
        | None -> false)

(* --- rendering ----------------------------------------------------- *)

let delta_rel_math () =
  let item verdict b c =
    { Cp.i_kind = Cp.Span; i_name = "x"; i_base = b; i_cur = c;
      i_verdict = verdict }
  in
  (match Cp.delta_rel (item Cp.Within (Some 2.0) (Some 3.0)) with
  | Some d -> Alcotest.(check (float 1e-9)) "+50%" 0.5 d
  | None -> Alcotest.fail "delta missing");
  Alcotest.(check bool) "no delta against zero base" true
    (Cp.delta_rel (item Cp.Within (Some 0.0) (Some 1.0)) = None);
  Alcotest.(check bool) "no delta for added items" true
    (Cp.delta_rel (item Cp.Added None (Some 1.0)) = None)

let json_report_roundtrips () =
  let base = profile ~counters:[ ("k", 10) ] [ leaf "exp" 1.0 ] in
  let cur = profile ~counters:[ ("k", 20) ] [ leaf "exp" 1.9 ] in
  let report =
    { Cp.tol = Cp.default; items = Cp.compare_profiles ~base cur }
  in
  let text = C.json_to_string (Cp.to_json report) in
  match C.json_of_string text with
  | Result.Error e -> Alcotest.failf "reparse: %s" (E.to_string e)
  | Ok (C.Obj fields) ->
      (match List.assoc_opt "regressions" fields with
      | Some (C.Num n) ->
          Alcotest.(check int) "regression count in JSON" 2 (int_of_float n)
      | _ -> Alcotest.fail "no regressions field");
      (match List.assoc_opt "items" fields with
      | Some (C.Arr items) ->
          Alcotest.(check int) "every item rendered"
            (List.length report.Cp.items)
            (List.length items)
      | _ -> Alcotest.fail "no items array")
  | Ok _ -> Alcotest.fail "report is not an object"

let human_rendering_smoke () =
  let base = profile ~counters:[ ("k", 10) ] [ leaf "exp" 1.0 ] in
  let cur = profile ~counters:[ ("k", 10) ] [ leaf "exp" 2.5 ] in
  let report =
    { Cp.tol = Cp.default; items = Cp.compare_profiles ~base cur }
  in
  let text = Format.asprintf "%a" Cp.pp report in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "rendering mentions %S" needle)
        true (contains needle))
    [ "regressed"; "exp"; "within tolerance" ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "compare"
    [
      ( "spans",
        [
          tc "tolerance semantics" span_tolerance_semantics;
          tc "jitter floor" jitter_floor_ignores_fast_spans;
          tc "nested spans match by path" nested_spans_match_by_path;
          tc "attempt counts are not compared" attempts_do_not_regress;
        ] );
      ( "drift",
        [
          tc "counter drift is two-sided" counter_drift_is_two_sided;
          tc "manifest scalars compared, failures excluded"
            manifest_scalars_compared;
          tc "tolerances are configurable" tolerances_are_configurable;
        ] );
      ( "gate",
        [
          tc "clean comparison has no error" clean_report_has_no_error;
          tc "injected slowdown exits 28" injected_slowdown_exits_28;
        ] );
      ( "rendering",
        [
          tc "delta_rel math" delta_rel_math;
          tc "JSON report round-trips" json_report_roundtrips;
          tc "human rendering smoke" human_rendering_smoke;
        ] );
    ]
