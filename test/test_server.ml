(* The estimation daemon (Runtime.Server): protocol framing, admission
   control, overload shedding, crash isolation, deadlines, the circuit
   breaker and graceful drain — all against a real forked daemon process
   speaking the wire protocol over a Unix socket, with toy handlers so
   the failure modes are deterministic and fast. *)

module Sv = Runtime.Server
module R = Runtime.Cnt_error
module C = Runtime.Checkpoint
module Jn = Runtime.Journal

let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Toy handlers: the request names its own behavior.                   *)

type job = { mode : string; payload : string; sleep_s : float }

let opt_str json name ~default =
  match Result.bind (C.field json name) (C.as_str name) with
  | Ok s -> s
  | Error _ -> default

let opt_num json name ~default =
  match Result.bind (C.field json name) (C.as_num name) with
  | Ok n -> n
  | Error _ -> default

let handlers =
  {
    Sv.admit =
      (fun json ->
        match Result.bind (C.field json "verb") (C.as_str "verb") with
        | Ok "work" ->
            let mode = opt_str json "mode" ~default:"echo" in
            if mode = "reject" then
              R.error R.Cli R.Validation_error "rejected at admission"
            else
              Ok
                {
                  mode;
                  payload = opt_str json "payload" ~default:"";
                  sleep_s = opt_num json "sleep_s" ~default:0.0;
                }
        | Ok v -> R.error R.Cli R.Validation_error "unknown verb %S" v
        | Error _ as e -> (match e with Error e -> Error e | _ -> assert false));
    execute =
      (fun j ->
        match j.mode with
        | "crash" ->
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            assert false
        | "hang" ->
            while true do
              Unix.sleepf 3600.0
            done;
            assert false
        | "fail" -> R.error R.Experiment R.Non_finite "synthetic failure"
        | _ ->
            if j.sleep_s > 0.0 then Unix.sleepf j.sleep_s;
            Ok (C.Obj [ ("payload", C.Str j.payload) ]));
    describe = (fun j -> [ ("mode", j.mode) ]);
  }

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle helpers. Socket paths must stay under the ~104-byte
   sun_path limit, so they live directly in the temp dir.              *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "cntsrv-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* Exit codes of the daemon child: encode the [Sv.run] outcome so the
   parent can assert on how the server stopped. *)
let exit_drained = 0
let exit_tripped = 3
let exit_error = 4

let start_server ?journal ?(tweak = fun c -> c) () =
  let sock = fresh_sock () in
  let cfg = tweak (Sv.default_config ~socket_path:sock) in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    Jn.set_verbosity None;
    (match journal with
    | None -> ()
    | Some path ->
        Jn.set_enabled true;
        ignore (Jn.open_sink ~path ()));
    let code =
      match Sv.run cfg handlers with
      | Ok Sv.Drained -> exit_drained
      | Ok Sv.Tripped -> exit_tripped
      | Error _ -> exit_error
    in
    Jn.close_sink ();
    Unix._exit code
  end
  else begin
    (* Wait until the daemon accepts. *)
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec ready () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> Unix.close fd
      | exception Unix.Unix_error _ ->
          Unix.close fd;
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "daemon did not come up";
          Unix.sleepf 0.02;
          ready ()
    in
    ready ();
    (sock, pid)
  end

let reap pid =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Alcotest.fail "daemon did not exit in time"
        end;
        Unix.sleepf 0.02;
        go ()
    | _, Unix.WEXITED c -> c
    | _, _ -> -1
  in
  go ()

let stop pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  reap pid

let with_server ?journal ?tweak f =
  let sock, pid = start_server ?journal ?tweak () in
  match f sock pid with
  | v ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      v
  | exception e ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      raise e

(* ------------------------------------------------------------------ *)
(* Client helpers.                                                     *)

let work ?(mode = "echo") ?(payload = "") ?sleep_s ?deadline_s () =
  C.Obj
    ([ ("verb", C.Str "work"); ("mode", C.Str mode); ("payload", C.Str payload) ]
    @ (match sleep_s with None -> [] | Some s -> [ ("sleep_s", C.Num s) ])
    @ match deadline_s with None -> [] | Some d -> [ ("deadline_s", C.Num d) ])

let call sock json = R.get_exn (Sv.call ~socket_path:sock ~timeout_s:15.0 json)

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let send_raw fd payload = R.get_exn (Sv.write_frame fd ~timeout_s:5.0 payload)
let send fd json = send_raw fd (C.json_to_string_compact json)

let recv fd =
  R.get_exn (Result.bind (Sv.read_frame fd ~timeout_s:15.0 ()) C.json_of_string)

let status resp =
  match Result.bind (C.field resp "status") (C.as_str "status") with
  | Ok s -> s
  | Error _ -> "?"

let check_ok_payload what expected resp =
  Alcotest.(check string) (what ^ " status") "ok" (status resp);
  match
    Result.bind (C.field resp "result") (fun r ->
        Result.bind (C.field r "payload") (C.as_str "payload"))
  with
  | Ok p -> Alcotest.(check string) what expected p
  | Error e -> Alcotest.failf "%s: bad response: %s" what (R.to_string e)

let check_error what code resp =
  match Sv.response_error resp with
  | Some e ->
      Alcotest.(check string) what (R.code_name code) (R.code_name e.R.code)
  | None -> Alcotest.failf "%s: expected an error response" what

(* ------------------------------------------------------------------ *)
(* Protocol basics                                                     *)

let health_and_echo () =
  with_server @@ fun sock pid ->
  let h = call sock (C.Obj [ ("verb", C.Str "health") ]) in
  Alcotest.(check string) "health status" "ok" (status h);
  (match
     Result.bind (C.field h "health") (fun o ->
         Result.bind (C.field o "state") (C.as_str "state"))
   with
  | Ok s -> Alcotest.(check string) "state" "running" s
  | Error e -> Alcotest.failf "health shape: %s" (R.to_string e));
  check_ok_payload "echo" "hello" (call sock (work ~payload:"hello" ()));
  Alcotest.(check int) "clean drain" exit_drained (stop pid)

let several_requests_one_connection () =
  with_server @@ fun sock _pid ->
  let fd = connect sock in
  send fd (work ~payload:"a" ());
  send fd (work ~payload:"b" ());
  (* Pipelined requests run on concurrent workers, so responses come
     back in completion order, not send order — both must arrive, in
     some order, on the one connection. *)
  let payload_of resp =
    match
      Result.bind (C.field resp "result") (fun r ->
          Result.bind (C.field r "payload") (C.as_str "payload"))
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "response shape: %s" (R.to_string e)
  in
  let got = List.sort compare [ payload_of (recv fd); payload_of (recv fd) ] in
  Alcotest.(check (list string)) "both answered" [ "a"; "b" ] got;
  Unix.close fd

let call_without_daemon () =
  match Sv.call ~socket_path:(fresh_sock ()) (work ()) with
  | Ok _ -> Alcotest.fail "connect to nothing succeeded"
  | Error e ->
      Alcotest.(check string) "io error" (R.code_name R.Io_error)
        (R.code_name e.R.code)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)

let oversized_request_refused () =
  with_server ~tweak:(fun c -> { c with Sv.max_request_bytes = 256 })
  @@ fun sock _pid ->
  let fd = connect sock in
  send fd (work ~payload:(String.make 1024 'x') ());
  check_error "oversized" R.Validation_error (recv fd);
  (* The framing-level refusal costs the connection, not the daemon. *)
  check_ok_payload "still serving" "ok" (call sock (work ~payload:"ok" ()));
  Unix.close fd

let malformed_json_rejected () =
  with_server @@ fun sock _pid ->
  let fd = connect sock in
  send_raw fd "{this is not json";
  check_error "malformed" R.Parse_error (recv fd);
  (* The frame boundary was clean, so the connection survives. *)
  send fd (work ~payload:"after" ());
  check_ok_payload "connection survives" "after" (recv fd);
  Unix.close fd

let truncated_frame_rejected () =
  with_server @@ fun sock _pid ->
  let fd = connect sock in
  (* Header promises 100 bytes; deliver 10 and half-close. *)
  let b = Bytes.create 14 in
  Bytes.set b 0 '\000';
  Bytes.set b 1 '\000';
  Bytes.set b 2 '\000';
  Bytes.set b 3 'd';
  Bytes.blit_string "0123456789" 0 b 4 10;
  ignore (Unix.write fd b 0 14);
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  check_error "truncated" R.Parse_error (recv fd);
  Unix.close fd

let zero_length_frame_rejected () =
  with_server @@ fun sock _pid ->
  let fd = connect sock in
  ignore (Unix.write fd (Bytes.make 4 '\000') 0 4);
  check_error "zero-length" R.Parse_error (recv fd);
  Unix.close fd

let unknown_verb_and_admission_reject () =
  with_server @@ fun sock _pid ->
  check_error "unknown verb" R.Validation_error
    (call sock (C.Obj [ ("verb", C.Str "nonsense") ]));
  check_error "admission reject" R.Validation_error
    (call sock (work ~mode:"reject" ()));
  check_error "missing verb" R.Validation_error
    (call sock (C.Obj [ ("x", C.Num 1.0) ]))

let bad_deadline_rejected () =
  with_server @@ fun sock _pid ->
  check_error "negative deadline" R.Validation_error
    (call sock (work ~deadline_s:(-1.0) ()))

(* ------------------------------------------------------------------ *)
(* Crash isolation, typed handler failures, deadlines                  *)

let worker_crash_isolated () =
  with_server @@ fun sock pid ->
  (* A sibling in flight must survive the crash next door. *)
  let slow = connect sock in
  send slow (work ~payload:"sibling" ~sleep_s:0.6 ());
  check_error "crash" R.Worker_killed (call sock (work ~mode:"crash" ()));
  check_ok_payload "sibling unharmed" "sibling" (recv slow);
  Unix.close slow;
  check_ok_payload "daemon alive" "alive" (call sock (work ~payload:"alive" ()));
  Alcotest.(check int) "clean drain after crash" exit_drained (stop pid)

let handler_error_is_not_a_crash () =
  with_server @@ fun sock _pid ->
  check_error "typed failure" R.Non_finite (call sock (work ~mode:"fail" ()));
  check_ok_payload "daemon alive" "x" (call sock (work ~payload:"x" ()))

let deadline_kills_hung_worker () =
  with_server ~tweak:(fun c -> { c with Sv.default_deadline_s = 0.4 })
  @@ fun sock _pid ->
  let t0 = Unix.gettimeofday () in
  check_error "deadline" R.Worker_timeout (call sock (work ~mode:"hang" ()));
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "killed promptly" true (dt < 5.0);
  check_ok_payload "daemon alive" "y" (call sock (work ~payload:"y" ()))

let per_request_deadline_overrides () =
  with_server @@ fun sock _pid ->
  (* Server default is 60 s; the request brings its own 0.3 s budget. *)
  check_error "own deadline" R.Worker_timeout
    (call sock (work ~mode:"hang" ~deadline_s:0.3 ()))

(* ------------------------------------------------------------------ *)
(* Overload shedding                                                   *)

let overload_sheds_with_retry_hint () =
  with_server ~tweak:(fun c ->
      { c with Sv.max_workers = 1; queue_limit = 0; retry_after_s = 2.5 })
  @@ fun sock _pid ->
  let slow = connect sock in
  send slow (work ~payload:"slow" ~sleep_s:1.0 ());
  Unix.sleepf 0.2;
  (* Worker busy, queue full (size 0): burst gets shed immediately. *)
  let shed = ref 0 in
  for _ = 1 to 3 do
    let resp = call sock (work ()) in
    Alcotest.(check string) "overloaded status" "overloaded" (status resp);
    (match Sv.response_error resp with
    | Some e ->
        Alcotest.(check string) "typed overload" (R.code_name R.Overloaded)
          (R.code_name e.R.code);
        if List.mem_assoc "retry_after_s" e.R.context then incr shed
    | None -> Alcotest.fail "overloaded response must decode to an error");
    ()
  done;
  Alcotest.(check int) "retry-after hint present" 3 !shed;
  check_ok_payload "slow request unaffected" "slow" (recv slow);
  Unix.close slow;
  (* Load gone: admitted again. *)
  check_ok_payload "recovered" "z" (call sock (work ~payload:"z" ()))

(* ------------------------------------------------------------------ *)
(* Graceful drain and the circuit breaker                              *)

let sigterm_drains_in_flight () =
  with_server @@ fun sock pid ->
  let fd = connect sock in
  send fd (work ~payload:"finishing" ~sleep_s:0.8 ());
  Unix.sleepf 0.2;
  Unix.kill pid Sys.sigterm;
  (* The in-flight request still completes and gets its response. *)
  check_ok_payload "drained in-flight" "finishing" (recv fd);
  Unix.close fd;
  Alcotest.(check int) "exit 0 after drain" exit_drained (reap pid)

let drain_timeout_aborts_stragglers () =
  with_server ~tweak:(fun c ->
      { c with Sv.drain_timeout_s = 0.3; default_deadline_s = 60.0 })
  @@ fun sock pid ->
  let fd = connect sock in
  send fd (work ~mode:"hang" ());
  Unix.sleepf 0.2;
  Unix.kill pid Sys.sigterm;
  (* Hung worker outlives the drain budget: typed abort, then exit. *)
  check_error "aborted by drain" R.Worker_timeout (recv fd);
  Unix.close fd;
  Alcotest.(check int) "still a clean drain" exit_drained (reap pid)

let breaker_trips_on_crash_churn () =
  with_server ~tweak:(fun c ->
      {
        c with
        Sv.breaker_threshold = 2;
        breaker_window_s = 60.0;
        backoff_initial_s = 0.01;
        backoff_max_s = 0.02;
      })
  @@ fun sock pid ->
  check_error "crash 1" R.Worker_killed (call sock (work ~mode:"crash" ()));
  check_error "crash 2" R.Worker_killed (call sock (work ~mode:"crash" ()));
  (* Two crashes inside the window: the breaker flips the daemon to
     draining and it exits on its own, reporting Tripped. *)
  Alcotest.(check int) "tripped" exit_tripped (reap pid)

(* ------------------------------------------------------------------ *)
(* The journal narrates the whole story                                *)

let journal_records_lifecycle () =
  let jpath =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cntsrv-journal-%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists jpath then Sys.remove jpath;
  (with_server ~journal:jpath @@ fun sock pid ->
   check_ok_payload "one ok" "j" (call sock (work ~payload:"j" ()));
   check_error "one crash" R.Worker_killed (call sock (work ~mode:"crash" ()));
   Alcotest.(check int) "drained" exit_drained (stop pid));
  let events, skipped = R.get_exn (Jn.load ~path:jpath) in
  Alcotest.(check int) "no torn lines" 0 skipped;
  let has k =
    List.exists (fun (e : Jn.event) -> e.Jn.ev_kind = k) events
  in
  List.iter
    (fun (name, k) ->
      Alcotest.(check bool) (name ^ " recorded") true (has k))
    [
      ("server_started", Jn.Server_started);
      ("request_admitted", Jn.Request_admitted);
      ("worker_spawned", Jn.Worker_spawned);
      ("request_done", Jn.Request_done);
      ("worker_killed", Jn.Worker_killed);
      ("server_draining", Jn.Server_draining);
      ("server_stopped", Jn.Server_stopped);
    ];
  Sys.remove jpath

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          tc "health and echo roundtrip" `Quick health_and_echo;
          tc "several requests, one connection" `Quick
            several_requests_one_connection;
          tc "call without a daemon is a typed io-error" `Quick
            call_without_daemon;
        ] );
      ( "admission",
        [
          tc "oversized request refused before payload" `Quick
            oversized_request_refused;
          tc "malformed JSON rejected, connection survives" `Quick
            malformed_json_rejected;
          tc "truncated frame rejected" `Quick truncated_frame_rejected;
          tc "zero-length frame rejected" `Quick zero_length_frame_rejected;
          tc "unknown verb / admission reject / missing verb" `Quick
            unknown_verb_and_admission_reject;
          tc "invalid deadline rejected" `Quick bad_deadline_rejected;
        ] );
      ( "isolation",
        [
          tc "worker crash isolated from siblings" `Quick worker_crash_isolated;
          tc "typed handler failure is not a crash" `Quick
            handler_error_is_not_a_crash;
          tc "deadline kills a hung worker" `Quick deadline_kills_hung_worker;
          tc "per-request deadline overrides default" `Quick
            per_request_deadline_overrides;
        ] );
      ( "overload",
        [ tc "burst sheds with retry hint" `Quick overload_sheds_with_retry_hint ] );
      ( "drain",
        [
          tc "SIGTERM drains in-flight work, exit 0" `Quick
            sigterm_drains_in_flight;
          tc "drain timeout aborts stragglers" `Quick
            drain_timeout_aborts_stragglers;
          tc "breaker trips on crash churn" `Quick breaker_trips_on_crash_churn;
        ] );
      ("journal", [ tc "lifecycle recorded as typed events" `Quick journal_records_lifecycle ]);
    ]
