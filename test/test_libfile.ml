(* Logic-family files (Cell.Libfile): the parser rejects malformed and
   semantically invalid files with line-numbered typed errors, the
   canonical export round-trips byte for byte (pinning the committed
   data/libraries/*.genlibp copies of the built-ins), registration
   shadows by name with a warning, and a family loaded from a data file
   estimates identically to the equivalent built-in. *)

module R = Runtime.Cnt_error
module G = Cell.Genlib
module L = Cell.Libfile

let code =
  Alcotest.testable (fun ppf c -> Format.pp_print_string ppf (R.code_name c)) ( = )

let data_file name = Filename.concat "../data/libraries" (name ^ L.extension)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* A minimal valid library, one line per list element (END on line 11). *)
let base_lines =
  [
    "LIBRARY t";
    "STYLE ambipolar";
    "TECH cntfet-32nm";
    "GATE INV 1 2 O=!A;";
    "  PU p(A)";
    "  PD n(A)";
    "  OUTINV 0";
    "  DELAY 2.4e-12";
    "  INCAP 3.6e-17";
    "  DRAINCAP 3.6e-17";
    "END";
  ]

let text_of lines = String.concat "\n" lines

let check_error name text expected_code expected_line =
  match L.parse text with
  | Ok _ -> Alcotest.failf "%s: expected a typed error, parsed fine" name
  | Result.Error e ->
      Alcotest.check code (name ^ " code") expected_code e.R.code;
      Alcotest.(check string)
        (name ^ " stage") "library" (R.stage_name e.R.stage);
      Alcotest.(check (option string))
        (name ^ " line")
        (Some (string_of_int expected_line))
        (List.assoc_opt "line" e.R.context);
      e

let minimal_parses () =
  match L.parse (text_of base_lines) with
  | Ok lib ->
      Alcotest.(check string) "name" "t" lib.G.name;
      Alcotest.(check int) "gates" 1 (List.length lib.G.gates)
  | Result.Error e -> Alcotest.failf "minimal library rejected: %a" R.pp e

(* --- parser fault injection ---------------------------------------- *)

let truncated_file () =
  (* Cut the file inside the GATE block: EOF reports the unterminated
     gate at the last line of the (8-line) fragment. *)
  let frag = List.filteri (fun i _ -> i < 8) base_lines in
  let e = check_error "truncated" (text_of frag) R.Parse_error 8 in
  Alcotest.(check bool)
    "names the gate" true
    (contains ~affix:"GATE INV" e.R.message)

let bad_cap () =
  let lines =
    List.map
      (fun l -> if l = "  INCAP 3.6e-17" then "  INCAP -3.6e-17" else l)
      base_lines
  in
  (* Value faults surface when the gate record is finished, at END. *)
  ignore (check_error "negative INCAP" (text_of lines) R.Validation_error 11)

let unparsable_cap () =
  let lines =
    List.map
      (fun l -> if l = "  INCAP 3.6e-17" then "  INCAP tiny" else l)
      base_lines
  in
  ignore (check_error "non-numeric INCAP" (text_of lines) R.Parse_error 9)

let unknown_cell () =
  let lines =
    List.map
      (fun l ->
        if l = "GATE INV 1 2 O=!A;" then "GATE NOPE 1 2 O=!A;" else l)
      base_lines
  in
  let e = check_error "unknown cell" (text_of lines) R.Validation_error 11 in
  Alcotest.(check bool)
    "names the cell" true
    (contains ~affix:"NOPE" e.R.message)

let duplicate_gate () =
  let dup = base_lines @ List.filteri (fun i _ -> i >= 3) base_lines in
  let e = check_error "duplicate gate" (text_of dup) R.Validation_error 19 in
  Alcotest.(check bool)
    "points at the first definition" true
    (contains ~affix:"first defined at line 4" e.R.message)

let bad_formula () =
  let lines =
    List.map
      (fun l ->
        if l = "GATE INV 1 2 O=!A;" then "GATE INV 1 2 O=A**B;" else l)
      base_lines
  in
  ignore (check_error "bad formula" (text_of lines) R.Parse_error 4)

let non_complementary () =
  let lines =
    List.map (fun l -> if l = "  PD n(A)" then "  PD n(!A)" else l) base_lines
  in
  let e =
    check_error "non-complementary" (text_of lines) R.Validation_error 11
  in
  Alcotest.(check bool)
    "says so" true
    (contains ~affix:"complementary" e.R.message)

let tgate_needs_ambipolar () =
  let lines =
    [
      "LIBRARY t";
      "STYLE static";
      "TECH cntfet-32nm";
      "GATE INV 1 2 O=!A;";
      "  PU p(A)";
      "  PD n(A)";
      "  OUTINV 0";
      "  DELAY 2.4e-12";
      "  INCAP 3.6e-17";
      "  DRAINCAP 3.6e-17";
      "END";
      "GATE XOR2 2 4 O=A ^ B;";
      "  PU tg(A,B)";
      "  PD tg(A,!B)";
      "  OUTINV 0";
      "  DELAY 2.4e-12";
      "  INCAP 3.6e-17 3.6e-17";
      "  DRAINCAP 7.2e-17";
      "END";
    ]
  in
  let e =
    check_error "tg in static style" (text_of lines) R.Validation_error 19
  in
  Alcotest.(check bool)
    "says so" true
    (contains ~affix:"STYLE ambipolar" e.R.message)

let missing_inv () =
  let lines =
    List.map
      (fun l ->
        match l with
        | "GATE INV 1 2 O=!A;" -> "GATE BUF 1 2 O=A;"
        | "  PU p(A)" -> "  PU p(!A)"
        | "  PD n(A)" -> "  PD n(!A)"
        | other -> other)
      base_lines
  in
  ignore (check_error "missing INV" (text_of lines) R.Validation_error 11)

(* --- canonical export round-trips ---------------------------------- *)

let builtin_roundtrips () =
  List.iter
    (fun lib ->
      let text = L.export lib in
      match L.parse ~path:(lib.G.name ^ L.extension) text with
      | Result.Error e ->
          Alcotest.failf "%s: export does not load back: %a" lib.G.name R.pp e
      | Ok reloaded ->
          Alcotest.(check string)
            (lib.G.name ^ " byte-identical re-export")
            text (L.export reloaded);
          Alcotest.(check int)
            (lib.G.name ^ " gate count")
            (List.length lib.G.gates)
            (List.length reloaded.G.gates))
    G.all_libraries

let committed_files_match_builtins () =
  (* The committed data/libraries copies are exactly the canonical
     export of the built-ins — regenerate with
     `cntpower library export <name> -o data/libraries/<name>.genlibp`
     whenever a built-in changes. *)
  List.iter
    (fun lib ->
      let path = data_file lib.G.name in
      let committed = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string)
        (path ^ " is the canonical export")
        (L.export lib) committed;
      match L.load_file path with
      | Ok loaded ->
          Alcotest.(check string) "same name" lib.G.name loaded.G.name
      | Result.Error e -> Alcotest.failf "%s: %a" path R.pp e)
    G.all_libraries

(* --- registry ------------------------------------------------------ *)

let with_clean_registry f =
  G.reset_registry ();
  Fun.protect ~finally:G.reset_registry f

let registry_shadowing () =
  with_clean_registry (fun () ->
      let parsed =
        match L.parse (L.export G.cmos) with
        | Ok l -> l
        | Result.Error e -> Alcotest.failf "parse: %a" R.pp e
      in
      let warnings = L.register parsed in
      Alcotest.(check int) "one warning" 1 (List.length warnings);
      Alcotest.(check bool)
        "warns about the built-in" true
        (contains ~affix:"built-in" (List.hd warnings));
      (* The file shadows the built-in by name without growing the list. *)
      Alcotest.(check int)
        "library count unchanged" (List.length G.all_libraries)
        (List.length (G.libraries ()));
      (match G.find_library "cmos" with
      | Some l -> Alcotest.(check bool) "resolves to the file" true (l == parsed)
      | None -> Alcotest.fail "cmos vanished");
      G.reset_registry ();
      match G.find_library "cmos" with
      | Some l ->
          Alcotest.(check bool) "built-in restored" true (l == G.cmos)
      | None -> Alcotest.fail "cmos vanished after reset")

let registry_fresh_and_reload () =
  with_clean_registry (fun () ->
      match L.load_file (data_file "ptl-ambipolar") with
      | Result.Error e -> Alcotest.failf "ptl: %a" R.pp e
      | Ok lib ->
          Alcotest.(check (list string)) "fresh: no warning" [] (L.register lib);
          Alcotest.(check int)
            "appended"
            (List.length G.all_libraries + 1)
            (List.length (G.libraries ()));
          let warnings = L.register lib in
          Alcotest.(check int) "reload warns" 1 (List.length warnings);
          Alcotest.(check bool)
            "about the earlier registration" true
            (contains ~affix:"earlier" (List.hd warnings)))

let discover_search_path () =
  let dir = Filename.temp_file "cntpower-libpath" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir;
      Unix.putenv L.libpath_env "")
    (fun () ->
      let path = Filename.concat dir ("t" ^ L.extension) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (text_of base_lines));
      (* Noise on the search path: wrong extension is not discovered. *)
      Out_channel.with_open_bin (Filename.concat dir "notes.txt") (fun oc ->
          Out_channel.output_string oc "not a library");
      Unix.putenv L.libpath_env dir;
      Alcotest.(check (list string)) "discovered" [ path ] (L.discover ());
      with_clean_registry (fun () ->
          match L.load_search_path () with
          | [ (p, Ok (lib, [])) ] ->
              Alcotest.(check string) "path" path p;
              Alcotest.(check string) "name" "t" lib.G.name
          | outcomes ->
              Alcotest.failf "unexpected outcomes (%d)" (List.length outcomes)))

(* --- end-to-end: data file vs built-in, and the PTL family --------- *)

let estimate_via lib =
  let entry = Circuits.Suite.find "C1355" in
  let nl = entry.Circuits.Suite.generate () in
  let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
  let ml = Techmap.Matchlib.build lib in
  let mapped = R.get_exn (Techmap.Mapper.map_checked ml aig) in
  (nl, mapped, Techmap.Estimate.run ~patterns:512 ~seed:9L mapped)

let data_file_estimates_like_builtin () =
  let _, _, builtin = estimate_via G.cmos in
  let loaded =
    match L.load_file (data_file "cmos") with
    | Ok l -> l
    | Result.Error e -> Alcotest.failf "load: %a" R.pp e
  in
  let _, _, from_file = estimate_via loaded in
  Alcotest.(check int)
    "same gates" builtin.Techmap.Estimate.gates from_file.Techmap.Estimate.gates;
  Alcotest.(check (float 0.0))
    "same area" builtin.Techmap.Estimate.area from_file.Techmap.Estimate.area;
  Alcotest.(check (float 0.0))
    "same delay" builtin.Techmap.Estimate.delay from_file.Techmap.Estimate.delay;
  Alcotest.(check (float 0.0))
    "same total power" builtin.Techmap.Estimate.total
    from_file.Techmap.Estimate.total

let ptl_family_end_to_end () =
  match L.load_file (data_file "ptl-ambipolar") with
  | Result.Error e -> Alcotest.failf "ptl: %a" R.pp e
  | Ok lib ->
      Alcotest.(check string) "name" "ptl-ambipolar" lib.G.name;
      Alcotest.(check int) "gates" 16 (List.length lib.G.gates);
      let nl, mapped, report = estimate_via lib in
      Alcotest.(check bool)
        "mapped netlist verifies" true
        (Techmap.Mapped.check mapped nl ~patterns:256 ~seed:5L);
      Alcotest.(check bool) "positive power" true (report.Techmap.Estimate.total > 0.0);
      Alcotest.(check bool) "positive delay" true (report.Techmap.Estimate.delay > 0.0)

let () =
  Alcotest.run "libfile"
    [
      ( "parse",
        Alcotest.
          [
            test_case "minimal library parses" `Quick minimal_parses;
            test_case "truncated file" `Quick truncated_file;
            test_case "negative INCAP" `Quick bad_cap;
            test_case "non-numeric INCAP" `Quick unparsable_cap;
            test_case "unknown cell" `Quick unknown_cell;
            test_case "duplicate gate" `Quick duplicate_gate;
            test_case "bad formula" `Quick bad_formula;
            test_case "non-complementary networks" `Quick non_complementary;
            test_case "tg requires ambipolar style" `Quick tgate_needs_ambipolar;
            test_case "missing INV" `Quick missing_inv;
          ] );
      ( "roundtrip",
        Alcotest.
          [
            test_case "built-ins export/load byte-identically" `Quick
              builtin_roundtrips;
            test_case "committed files are canonical exports" `Quick
              committed_files_match_builtins;
          ] );
      ( "registry",
        Alcotest.
          [
            test_case "file shadows built-in with warning" `Quick
              registry_shadowing;
            test_case "fresh name appends, reload warns" `Quick
              registry_fresh_and_reload;
            test_case "CNTPOWER_LIBPATH discovery" `Quick discover_search_path;
          ] );
      ( "end-to-end",
        Alcotest.
          [
            test_case "data-file cmos estimates like built-in" `Quick
              data_file_estimates_like_builtin;
            test_case "PTL family maps and estimates" `Quick
              ptl_family_end_to_end;
          ] );
    ]
