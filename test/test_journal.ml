(* Event journal: per-PID sequence ordering, JSONL round-trips, corrupt
   and torn-line recovery, worker event capture across a real fork, the
   disabled-mode no-op guarantee, and Chrome trace export built on top
   of journal + telemetry. *)

module Jn = Runtime.Journal
module T = Runtime.Telemetry
module C = Runtime.Checkpoint
module E = Runtime.Cnt_error
module S = Runtime.Supervisor
module Tr = Runtime.Trace_export

let temp_dir prefix =
  let d = Filename.temp_file prefix ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Every test owns the process-wide journal: start clean, leave clean,
   and never echo to the test harness's stderr. *)
let fresh f () =
  Jn.set_enabled true;
  Jn.set_verbosity None;
  Fun.protect
    ~finally:(fun () ->
      Jn.close_sink ();
      Jn.set_enabled false;
      Jn.set_verbosity (Some Jn.Info))
    f

let load_ok path =
  match Jn.load ~path with
  | Ok r -> r
  | Result.Error e -> Alcotest.failf "load: %s" (E.to_string e)

(* --- disabled mode ------------------------------------------------- *)

let disabled_is_noop () =
  Jn.set_enabled false;
  let dir = temp_dir "journal" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Filename.concat dir "events.jsonl" in
      (* With the journal disabled, emit must not create or write the
         sink — there is no sink to open in the first place, and the
         guarded call sites never build their field lists. *)
      Jn.emit Jn.Run_started [ ("run", "ghost") ];
      Jn.begin_capture ();
      Jn.emit Jn.Worker_spawned [ ("worker", "ghost") ];
      Alcotest.(check (list pass)) "no events captured" [] (Jn.end_capture ());
      Alcotest.(check bool) "no file written" false (Sys.file_exists path))

let disabled_zero_alloc () =
  Jn.set_enabled false;
  (* A live trace context must not reintroduce allocation: emit's guard
     comes before any field building, trace stamping included. *)
  Runtime.Tracectx.set (Some (Runtime.Tracectx.mint_root ()));
  Fun.protect
    ~finally:(fun () -> Runtime.Tracectx.set None)
    (fun () ->
      Jn.emit Jn.Run_started [];
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Jn.emit Jn.Worker_spawned []
      done;
      let allocated = Gc.minor_words () -. before in
      Alcotest.(check bool)
        (Printf.sprintf "disabled emit allocates nothing (saw %.0f words)"
           allocated)
        true
        (allocated < 100.0))

(* --- sink and ordering --------------------------------------------- *)

let seq_is_monotonic =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          E.get_exn (Jn.open_sink ~path ());
          Jn.emit Jn.Run_started [ ("run", "t") ];
          Jn.emit ~level:Jn.Debug Jn.Experiment_started
            [ ("experiment", "a") ];
          Jn.emit ~level:Jn.Warn Jn.Worker_timeout [ ("worker", "a") ];
          Jn.emit Jn.Run_finished [];
          Jn.close_sink ();
          let events, skipped = load_ok path in
          Alcotest.(check int) "no skips" 0 skipped;
          Alcotest.(check int) "all four lines" 4 (List.length events);
          let seqs = List.map (fun e -> e.Jn.ev_seq) events in
          Alcotest.(check bool) "per-PID seq strictly increasing" true
            (List.sort_uniq compare seqs = seqs);
          List.iter
            (fun e ->
              Alcotest.(check int) "all from this process" (Unix.getpid ())
                e.Jn.ev_pid)
            events;
          let kinds = List.map (fun e -> e.Jn.ev_kind) events in
          Alcotest.(check bool) "file order is emission order" true
            (kinds
            = [
                Jn.Run_started;
                Jn.Experiment_started;
                Jn.Worker_timeout;
                Jn.Run_finished;
              ])))

let fields_and_levels_survive =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          E.get_exn (Jn.open_sink ~path ());
          Jn.emit ~level:Jn.Warn Jn.Golden_drift
            [
              ("experiment", "table1");
              ("metric", "p_avg_uw");
              ("expected", "1.25");
            ];
          Jn.close_sink ();
          let events, _ = load_ok path in
          let e = List.hd events in
          Alcotest.(check bool) "level survives" true (e.Jn.ev_level = Jn.Warn);
          Alcotest.(check (option string)) "field survives" (Some "p_avg_uw")
            (Jn.find e "metric");
          Alcotest.(check (option string)) "absent field" None
            (Jn.find e "nope")))

let custom_kind_forward_compat () =
  (* Unknown event names from a future version parse as Custom, not a
     journal-wide failure. *)
  Alcotest.(check bool) "unknown name wraps" true
    (Jn.kind_of_name "frobnicated" = Jn.Custom "frobnicated");
  Alcotest.(check string) "custom round-trips" "frobnicated"
    (Jn.kind_name (Jn.Custom "frobnicated"));
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips" (Jn.kind_name k))
        true
        (Jn.kind_of_name (Jn.kind_name k) = k))
    [
      Jn.Run_started; Jn.Run_finished; Jn.Experiment_started;
      Jn.Experiment_done; Jn.Worker_spawned; Jn.Worker_exited;
      Jn.Worker_retry; Jn.Worker_timeout; Jn.Worker_killed;
      Jn.Checkpoint_written; Jn.Solver_damped_retry; Jn.Golden_drift;
    ]

(* --- corrupt-journal recovery -------------------------------------- *)

let corrupt_lines_are_skipped =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          E.get_exn (Jn.open_sink ~path ());
          Jn.emit Jn.Run_started [ ("run", "t") ];
          Jn.emit Jn.Run_finished [];
          Jn.close_sink ();
          (* Interleave garbage and tear the final line, as a kill -9
             mid-write would. *)
          let good = In_channel.with_open_text path In_channel.input_all in
          let lines = String.split_on_char '\n' (String.trim good) in
          Out_channel.with_open_text path (fun oc ->
              output_string oc (List.nth lines 0);
              output_string oc "\nnot json at all\n";
              output_string oc "{\"seq\": \"wrong type\"}\n";
              output_string oc (List.nth lines 1);
              output_string oc "\n{\"seq\":3,\"t\":1.0,\"pi");
          let events, skipped = load_ok path in
          Alcotest.(check int) "both good lines recovered" 2
            (List.length events);
          Alcotest.(check int) "three bad lines counted" 3 skipped;
          Alcotest.(check bool) "order of survivors intact" true
            (List.map (fun e -> e.Jn.ev_kind) events
            = [ Jn.Run_started; Jn.Run_finished ])))

let load_missing_is_typed () =
  match Jn.load ~path:"/nonexistent/events.jsonl" with
  | Ok _ -> Alcotest.fail "loaded a journal from nowhere"
  | Result.Error e ->
      Alcotest.(check bool) "typed io error" true (e.E.code = E.Io_error)

(* --- forked-worker capture ----------------------------------------- *)

let worker_events_merge =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          E.get_exn (Jn.open_sink ~path ());
          let parent_pid = Unix.getpid () in
          Jn.emit Jn.Run_started [ ("run", "fork") ];
          let outcome =
            S.run
              ~policy:{ S.timeout_s = 30.0; retries = 0; degrade = false }
              ~name:"journal-fork"
              (fun ~degraded:_ ->
                (* Inside the worker the supervisor has switched the
                   journal to capture mode: these events buffer in memory
                   and ride the result pipe back to the parent. *)
                Jn.emit ~level:Jn.Debug Jn.Experiment_started
                  [ ("experiment", "journal-fork") ];
                Unix.getpid ())
          in
          let worker_pid =
            match outcome.S.value with
            | Ok pid -> pid
            | Result.Error e ->
                Alcotest.failf "worker failed: %s" (E.to_string e)
          in
          Jn.emit Jn.Run_finished [];
          Jn.close_sink ();
          Alcotest.(check bool) "worker really was a fork" true
            (worker_pid <> parent_pid);
          let events, skipped = load_ok path in
          Alcotest.(check int) "merged file parses clean" 0 skipped;
          let from pid =
            List.filter (fun e -> e.Jn.ev_pid = pid) events
          in
          let worker_events = from worker_pid in
          Alcotest.(check bool) "worker event crossed the pipe" true
            (List.exists
               (fun e -> e.Jn.ev_kind = Jn.Experiment_started)
               worker_events);
          (* The parent narrates the supervision around it. *)
          let parent_kinds =
            List.map (fun e -> e.Jn.ev_kind) (from parent_pid)
          in
          Alcotest.(check bool) "parent logged the spawn" true
            (List.mem Jn.Worker_spawned parent_kinds);
          Alcotest.(check bool) "parent logged the clean exit" true
            (List.mem Jn.Worker_exited parent_kinds);
          (* Provenance: each PID's seq is strictly increasing even though
             the file interleaves two processes. *)
          List.iter
            (fun pid ->
              let seqs = List.map (fun e -> e.Jn.ev_seq) (from pid) in
              Alcotest.(check bool)
                (Printf.sprintf "pid %d seq strictly increasing" pid)
                true
                (List.sort_uniq compare seqs = seqs))
            [ parent_pid; worker_pid ]))

let timeout_is_journaled =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          E.get_exn (Jn.open_sink ~path ());
          let outcome =
            S.run
              ~policy:{ S.timeout_s = 0.2; retries = 0; degrade = false }
              ~name:"sleeper"
              (fun ~degraded:_ -> Unix.sleep 30)
          in
          Jn.close_sink ();
          (match outcome.S.value with
          | Ok _ -> Alcotest.fail "sleeper should have timed out"
          | Result.Error e ->
              Alcotest.(check bool) "typed timeout" true
                (e.E.code = E.Worker_timeout));
          let events, _ = load_ok path in
          let timeout =
            List.find_opt
              (fun e -> e.Jn.ev_kind = Jn.Worker_timeout)
              events
          in
          match timeout with
          | None -> Alcotest.fail "no worker_timeout event journaled"
          | Some e ->
              Alcotest.(check (option string)) "names the worker"
                (Some "sleeper") (Jn.find e "worker")))

(* --- trace export -------------------------------------------------- *)

let trace_fixture () =
  let leaf name total =
    { T.span_name = name; calls = 1; total_s = total; children = [] }
  in
  let profile =
    {
      T.p_spans =
        [
          {
            T.span_name = "exp1";
            calls = 1;
            total_s = 0.3;
            children = [ leaf "solve" 0.2; leaf "map" 0.05 ];
          };
          leaf "exp2" 0.1;
        ];
      p_counters = [ ("solves", 12) ];
      p_dists = [];
    }
  in
  let ev seq pid kind fields =
    {
      Jn.ev_seq = seq;
      ev_time = 1000.0 +. float_of_int seq;
      ev_pid = pid;
      ev_level = Jn.Debug;
      ev_kind = kind;
      ev_fields = fields;
    }
  in
  let events =
    [
      ev 1 100 Jn.Run_started [ ("run", "t") ];
      ev 2 200 Jn.Experiment_started [ ("experiment", "exp1") ];
      ev 3 300 Jn.Experiment_started [ ("experiment", "exp2") ];
      ev 4 100 Jn.Run_finished [];
    ]
  in
  (profile, events)

let trace_events json =
  match json with
  | C.Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (C.Arr evs) -> evs
      | _ -> Alcotest.fail "trace has no traceEvents array")
  | _ -> Alcotest.fail "trace is not an object"

let field_str ev name =
  match ev with
  | C.Obj fields -> (
      match List.assoc_opt name fields with
      | Some (C.Str s) -> Some s
      | _ -> None)
  | _ -> None

let trace_is_wellformed () =
  let profile, events = trace_fixture () in
  let trace = Tr.to_trace ~events profile in
  (* The whole trace must survive a render/reparse cycle: Chrome and
     Perfetto are strict JSON parsers. *)
  let reparsed =
    match C.json_of_string (C.json_to_string_compact trace) with
    | Ok j -> j
    | Result.Error e -> Alcotest.failf "reparse: %s" (E.to_string e)
  in
  let evs = trace_events reparsed in
  let phases =
    List.filter_map (fun e -> field_str e "ph") evs
  in
  Alcotest.(check bool) "has duration events" true (List.mem "X" phases);
  Alcotest.(check bool) "has instant events" true (List.mem "i" phases);
  Alcotest.(check bool) "has process metadata" true (List.mem "M" phases);
  (* Every span of the profile appears as a complete event. *)
  let names = List.filter_map (fun e -> field_str e "name") evs in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span exported") true (List.mem n names))
    [ "exp1"; "solve"; "map"; "exp2" ];
  (* Experiments land on the PID track of their experiment_started
     event, giving one lane per worker in the viewer. *)
  let pid_of name =
    List.find_map
      (fun e ->
        match (field_str e "ph", field_str e "name", e) with
        | Some "X", Some n, C.Obj fields when n = name -> (
            match List.assoc_opt "pid" fields with
            | Some (C.Num p) -> Some (int_of_float p)
            | _ -> None)
        | _ -> None)
      evs
  in
  Alcotest.(check (option int)) "exp1 on its worker track" (Some 200)
    (pid_of "exp1");
  Alcotest.(check (option int)) "exp2 on its worker track" (Some 300)
    (pid_of "exp2")

let trace_without_events () =
  (* A run profiled without journaling still exports: everything lays out
     sequentially on one synthetic track. *)
  let profile, _ = trace_fixture () in
  let trace = Tr.to_trace profile in
  let evs = trace_events trace in
  Alcotest.(check bool) "spans still exported" true
    (List.exists (fun e -> field_str e "name" = Some "exp1") evs)

let trace_save_roundtrip () =
  let dir = temp_dir "trace" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let profile, events = trace_fixture () in
      let path = Filename.concat dir "trace.json" in
      E.get_exn (Tr.save ~path ~events profile);
      let text = In_channel.with_open_text path In_channel.input_all in
      match C.json_of_string text with
      | Ok j ->
          Alcotest.(check bool) "file parses to a trace" true
            (trace_events j <> [])
      | Result.Error e -> Alcotest.failf "saved trace unparseable: %s"
            (E.to_string e))

(* --- size-based rotation ------------------------------------------- *)

let emit_n n =
  for i = 1 to n do
    Jn.emit ~level:Jn.Debug Jn.Checkpoint_written
      [ ("path", Printf.sprintf "padding-to-make-the-line-longer-%04d" i) ]
  done

let rotation_preserves_events =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          (* A limit small enough to force a handful of rotations but a
             keep budget large enough that nothing is evicted: every
             event must survive, in emission order, across segments. *)
          E.get_exn (Jn.open_sink ~max_bytes:2048 ~keep:50 ~path ());
          emit_n 200;
          Jn.close_sink ();
          Alcotest.(check bool) "rotated at least once" true
            (Sys.file_exists (path ^ ".1"));
          let events, skipped = load_ok path in
          Alcotest.(check int) "no torn lines across segments" 0 skipped;
          Alcotest.(check int) "every event survives rotation" 200
            (List.length events);
          let seqs = List.map (fun e -> e.Jn.ev_seq) events in
          Alcotest.(check bool)
            "segments concatenate oldest-first (seq increasing)" true
            (List.sort_uniq compare seqs = seqs)))

let rotation_evicts_past_keep =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          E.get_exn (Jn.open_sink ~max_bytes:1024 ~keep:2 ~path ());
          emit_n 300;
          Jn.close_sink ();
          Alcotest.(check bool) ".1 kept" true (Sys.file_exists (path ^ ".1"));
          Alcotest.(check bool) ".2 kept" true (Sys.file_exists (path ^ ".2"));
          Alcotest.(check bool) ".3 evicted" false
            (Sys.file_exists (path ^ ".3"));
          (* The retained window still loads clean and stays ordered —
             the oldest events are gone, not mangled. *)
          let events, skipped = load_ok path in
          Alcotest.(check int) "retained segments parse clean" 0 skipped;
          Alcotest.(check bool) "something was evicted" true
            (List.length events < 300);
          let seqs = List.map (fun e -> e.Jn.ev_seq) events in
          Alcotest.(check bool) "retained window is contiguous" true
            (match seqs with
            | [] -> false
            | first :: _ ->
                seqs = List.init (List.length seqs) (fun i -> first + i))))

let no_rotation_without_limit =
  fresh (fun () ->
      let dir = temp_dir "journal" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let path = Filename.concat dir "events.jsonl" in
          E.get_exn (Jn.open_sink ~path ());
          emit_n 200;
          Jn.close_sink ();
          Alcotest.(check bool) "no segment without max_bytes" false
            (Sys.file_exists (path ^ ".1"));
          let events, _ = load_ok path in
          Alcotest.(check int) "single file holds everything" 200
            (List.length events)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "journal"
    [
      ( "disabled",
        [
          tc "disabled journal is a no-op" disabled_is_noop;
          tc "disabled emit does not allocate" disabled_zero_alloc;
        ] );
      ( "ordering",
        [
          tc "sequence numbers are monotonic" seq_is_monotonic;
          tc "fields and levels survive the file" fields_and_levels_survive;
          tc "unknown kinds parse as custom" custom_kind_forward_compat;
        ] );
      ( "recovery",
        [
          tc "corrupt and torn lines are skipped" corrupt_lines_are_skipped;
          tc "load of missing file is typed" load_missing_is_typed;
        ] );
      ( "fork",
        [
          tc "worker events merge through the pipe" worker_events_merge;
          tc "timeouts are journaled" timeout_is_journaled;
        ] );
      ( "rotation",
        [
          tc "rotation preserves order across segments"
            rotation_preserves_events;
          tc "keep budget evicts oldest segments" rotation_evicts_past_keep;
          tc "no limit, no rotation" no_rotation_without_limit;
        ] );
      ( "trace",
        [
          tc "trace JSON is well-formed" trace_is_wellformed;
          tc "trace works without a journal" trace_without_events;
          tc "trace save/parse round-trip" trace_save_roundtrip;
        ] );
    ]
