module N = Nets.Netlist
module Sim = Nets.Sim
module Blif = Nets.Blif
module B = Logic.Bitvec
module T = Logic.Truthtable

let tt = Alcotest.testable T.pp T.equal

let full_adder () =
  let t = N.create () in
  let a = N.add_input t "a" and b = N.add_input t "b" and c = N.add_input t "c" in
  let x = N.add_node t N.Xor [| a; b |] in
  N.add_output t "sum" (N.add_node t N.Xor [| x; c |]);
  N.add_output t "carry" (N.add_node t N.Maj [| a; b; c |]);
  t

let eval_matches_truth () =
  let t = full_adder () in
  for m = 0 to 7 do
    let ins = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
    let outs = N.eval t ins in
    let total = (m land 1) + ((m lsr 1) land 1) + ((m lsr 2) land 1) in
    Alcotest.(check bool) "sum" (total land 1 = 1) outs.(0);
    Alcotest.(check bool) "carry" (total >= 2) outs.(1)
  done

let ops_eval () =
  let t = N.create () in
  let a = N.add_input t "a" and b = N.add_input t "b" in
  N.add_output t "nand" (N.add_node t N.Nand [| a; b |]);
  N.add_output t "nor" (N.add_node t N.Nor [| a; b |]);
  N.add_output t "xnor" (N.add_node t N.Xnor [| a; b |]);
  N.add_output t "buf" (N.add_node t N.Buf [| a |]);
  for m = 0 to 3 do
    let va = m land 1 = 1 and vb = m lsr 1 = 1 in
    let outs = N.eval t [| va; vb |] in
    Alcotest.(check bool) "nand" (not (va && vb)) outs.(0);
    Alcotest.(check bool) "nor" (not (va || vb)) outs.(1);
    Alcotest.(check bool) "xnor" (va = vb) outs.(2);
    Alcotest.(check bool) "buf" va outs.(3)
  done

let mux_semantics () =
  let t = N.create () in
  let s = N.add_input t "s" and a = N.add_input t "a" and b = N.add_input t "b" in
  N.add_output t "m" (N.add_node t N.Mux [| s; a; b |]);
  List.iter
    (fun (vs, va, vb) ->
      let outs = N.eval t [| vs; va; vb |] in
      Alcotest.(check bool) "mux" (if vs then vb else va) outs.(0))
    [ (false, true, false); (true, true, false); (false, false, true); (true, false, true) ]

let node_function_full_adder () =
  let t = full_adder () in
  let outs = N.outputs t in
  let _, sum = outs.(0) in
  let vars = N.inputs t in
  let f = N.node_function t sum vars in
  let parity =
    List.fold_left (fun acc i -> T.logxor acc (T.var 3 i)) (T.const 3 false) [ 0; 1; 2 ]
  in
  Alcotest.check tt "sum fn" parity f

let node_function_lut () =
  let t = N.create () in
  let a = N.add_input t "a" and b = N.add_input t "b" in
  let xor = T.logxor (T.var 2 0) (T.var 2 1) in
  let x = N.add_node t (N.Lut xor) [| a; b |] in
  let y = N.add_node t (N.Lut xor) [| x; a |] in
  N.add_output t "y" y;
  (* (a ^ b) ^ a = b *)
  let f = N.node_function t y (N.inputs t) in
  Alcotest.check tt "lut composition" (T.var 2 1) f

let sim_matches_eval () =
  let t = full_adder () in
  let r = Sim.run_random ~seed:17L t 1000 in
  let outs = Sim.output_values t r in
  let ins = N.inputs t in
  for p = 0 to 999 do
    let input_values = Array.map (fun id -> B.get r.Sim.node_values.(id) p) ins in
    let expected = N.eval t input_values in
    Array.iteri
      (fun i (_, v) ->
        Alcotest.(check bool) (Printf.sprintf "pattern %d out %d" p i) expected.(i) (B.get v p))
      outs
  done

let sim_signal_probability () =
  let t = N.create () in
  let a = N.add_input t "a" and b = N.add_input t "b" in
  let y = N.add_node t N.And [| a; b |] in
  N.add_output t "y" y;
  let r = Sim.run_random ~seed:23L t 100_000 in
  let p = Sim.signal_probability r y in
  Alcotest.(check bool) (Printf.sprintf "p(and)=%.3f ~ 0.25" p) true (abs_float (p -. 0.25) < 0.01)

let sim_toggle_rate_xor () =
  let t = N.create () in
  let a = N.add_input t "a" and b = N.add_input t "b" in
  let y = N.add_node t N.Xor [| a; b |] in
  N.add_output t "y" y;
  let r = Sim.run_random ~seed:29L t 100_000 in
  (* XOR of two independent uniform streams toggles with probability 1/2. *)
  let tr = Sim.toggle_rate r y in
  Alcotest.(check bool) (Printf.sprintf "toggle=%.3f ~ 0.5" tr) true (abs_float (tr -. 0.5) < 0.01)

let blif_roundtrip () =
  let t = full_adder () in
  let text = Blif.write_string ~model:"fa" t in
  let t2 = Blif.read_string text in
  Alcotest.(check int) "inputs" (N.num_inputs t) (N.num_inputs t2);
  Alcotest.(check int) "outputs" (N.num_outputs t) (N.num_outputs t2);
  for m = 0 to 7 do
    let ins = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
    Alcotest.(check (array bool)) (Printf.sprintf "m=%d" m) (N.eval t ins) (N.eval t2 ins)
  done

let blif_parses_dc_and_comments () =
  let text =
    "# a comment\n.model test\n.inputs a b c\n.outputs y\n.names a b c y\n1-1 1\n-11 1\n.end\n"
  in
  let t = Blif.read_string text in
  (* y = a&c | b&c *)
  List.iter
    (fun (va, vb, vc) ->
      let outs = N.eval t [| va; vb; vc |] in
      Alcotest.(check bool) "cover" ((va && vc) || (vb && vc)) outs.(0))
    [ (true, false, true); (false, true, true); (true, true, false); (false, false, true) ]

let blif_zero_cover () =
  let text = ".model z\n.inputs a b\n.outputs y\n.names a b y\n00 0\n11 0\n.end\n" in
  let t = Blif.read_string text in
  (* off-set cover: y = 0 at 00 and 11, so y = a xor b *)
  List.iter
    (fun (va, vb) ->
      let outs = N.eval t [| va; vb |] in
      Alcotest.(check bool) "offset cover" (va <> vb) outs.(0))
    [ (false, false); (true, false); (false, true); (true, true) ]

let blif_out_of_order_blocks () =
  let text =
    ".model ooo\n.inputs a b\n.outputs y\n.names t1 t2 y\n11 1\n.names a b t1\n11 1\n.names a b t2\n00 1\n.end\n"
  in
  let t = Blif.read_string text in
  (* y = (a&b) & (!a&!b) = 0 *)
  List.iter
    (fun (va, vb) ->
      let outs = N.eval t [| va; vb |] in
      Alcotest.(check bool) "const false" false outs.(0))
    [ (false, false); (true, true) ]

let blif_errors () =
  match Blif.parse_string ".model m\n.inputs a\n.outputs y\n.end\n" with
  | Ok _ -> Alcotest.fail "expected undriven-output error"
  | Error e ->
      Alcotest.(check bool)
        "undriven-net code" true
        (e.Runtime.Cnt_error.code = Runtime.Cnt_error.Undriven_net);
      Alcotest.(check (option string))
        "net context" (Some "y")
        (List.assoc_opt "net" e.Runtime.Cnt_error.context)

let () =
  Alcotest.run "nets"
    [
      ( "netlist",
        [
          Alcotest.test_case "full adder eval" `Quick eval_matches_truth;
          Alcotest.test_case "nand/nor/xnor/buf" `Quick ops_eval;
          Alcotest.test_case "mux semantics" `Quick mux_semantics;
          Alcotest.test_case "node_function full adder" `Quick node_function_full_adder;
          Alcotest.test_case "node_function lut composition" `Quick node_function_lut;
        ] );
      ( "sim",
        [
          Alcotest.test_case "matches eval" `Quick sim_matches_eval;
          Alcotest.test_case "signal probability" `Quick sim_signal_probability;
          Alcotest.test_case "xor toggle rate" `Quick sim_toggle_rate_xor;
        ] );
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick blif_roundtrip;
          Alcotest.test_case "dc + comments" `Quick blif_parses_dc_and_comments;
          Alcotest.test_case "offset cover" `Quick blif_zero_cover;
          Alcotest.test_case "out-of-order blocks" `Quick blif_out_of_order_blocks;
          Alcotest.test_case "undriven output error" `Quick blif_errors;
        ] );
    ]
