(* Experiments.Harness semantics: Keep_going vs Strict, exit codes,
   typed failure capture, scalar recording, checkpoint persistence and
   resume. Entries run in-process (policy = None) so the tests exercise
   harness logic, not fork plumbing (test_supervisor covers that). *)

module H = Experiments.Harness
module E = Runtime.Cnt_error
module C = Runtime.Checkpoint

let null = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let ok_entry name scalars =
  H.entry name ("doc " ^ name) (fun ~degraded:_ _ppf -> scalars)

let failing_entry name =
  H.entry name "always raises" (fun ~degraded:_ _ppf -> failwith "boom")

let typed_failing_entry name =
  H.entry name "raises a typed error" (fun ~degraded:_ _ppf ->
      E.failf E.Spice E.Convergence_failure "solver exhausted")

let config mode = { H.default_config with H.mode }

let status s name =
  match List.assoc_opt name s.H.results with
  | Some st -> st
  | None -> Alcotest.failf "no result for %s" name

let keep_going_runs_everything () =
  let s =
    H.run_all ~config:(config H.Keep_going) null
      [ failing_entry "bad"; ok_entry "good" [ ("v", 7.0) ] ]
  in
  (match status s "bad" with
  | H.Failed { error; _ } ->
      Alcotest.(check string) "typed internal failure" "internal"
        (E.code_name error.E.code);
      Alcotest.(check bool) "experiment context attached" true
        (List.mem ("experiment", "bad") error.E.context)
  | _ -> Alcotest.fail "bad must fail");
  (match status s "good" with
  | H.Passed { scalars; degraded; attempts; _ } ->
      Alcotest.(check (list (pair string (float 0.0))))
        "scalars recorded" [ ("v", 7.0) ] scalars;
      Alcotest.(check bool) "not degraded" false degraded;
      Alcotest.(check int) "one attempt" 1 attempts
  | _ -> Alcotest.fail "good must pass after a failure in keep-going mode");
  Alcotest.(check bool) "not aborted" false s.H.aborted;
  Alcotest.(check int) "one failure collected" 1 (List.length (H.failures s));
  Alcotest.(check int) "exit 10" 10 (H.exit_status s)

let strict_aborts_and_skips () =
  let s =
    H.run_all ~config:(config H.Strict) null
      [
        ok_entry "first" [];
        typed_failing_entry "second";
        ok_entry "third" [];
      ]
  in
  (match status s "first" with
  | H.Passed _ -> ()
  | _ -> Alcotest.fail "first must pass");
  (match status s "second" with
  | H.Failed { error; _ } ->
      Alcotest.(check string) "typed error preserved" "convergence-failure"
        (E.code_name error.E.code)
  | _ -> Alcotest.fail "second must fail");
  (match status s "third" with
  | H.Skipped -> ()
  | _ -> Alcotest.fail "third must be skipped after a strict abort");
  Alcotest.(check bool) "aborted" true s.H.aborted;
  Alcotest.(check int) "exit 11" 11 (H.exit_status s)

let all_pass_exit_zero () =
  let s =
    H.run_all ~config:(config H.Strict) null
      [ ok_entry "a" []; ok_entry "b" [ ("x", 1.0) ] ]
  in
  Alcotest.(check int) "exit 0" 0 (H.exit_status s);
  Alcotest.(check int) "no failures" 0 (List.length (H.failures s))

let summary_renders_all_statuses () =
  let s =
    H.run_all ~config:(config H.Keep_going) null
      [ ok_entry "fine" []; failing_entry "broken" ]
  in
  let text = Format.asprintf "%a" H.print_summary s in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pass line" true (contains "ok      fine");
  Alcotest.(check bool) "failure line" true (contains "FAILED  broken");
  Alcotest.(check bool) "counts" true (contains "1 passed, 1 failed")

let with_run_dir f =
  let dir = Filename.temp_file "cntpower-harness" "" in
  Sys.remove dir;
  f (Filename.concat dir "manifest.json")

let checkpoint_and_resume () =
  with_run_dir @@ fun path ->
  let base =
    {
      H.default_config with
      H.manifest_path = Some path;
      run_name = "t";
      seed = 7L;
      patterns = 64;
    }
  in
  let ran = ref [] in
  let tracked name scalars =
    H.entry name "tracked" (fun ~degraded:_ _ppf ->
        ran := name :: !ran;
        scalars)
  in
  let s1 =
    H.run_all ~config:base null
      [ tracked "alpha" [ ("a", 1.0) ]; failing_entry "beta" ]
  in
  Alcotest.(check int) "first run exits 10" 10 (H.exit_status s1);
  (* The manifest survived the run and recorded both outcomes. *)
  let m = Result.get_ok (C.load ~path) in
  Alcotest.(check bool) "alpha passed on disk" true
    ((Option.get (C.find m "alpha")).C.status = C.Passed);
  let beta = Option.get (C.find m "beta") in
  Alcotest.(check bool) "beta failed on disk" true (beta.C.status = C.Failed);
  Alcotest.(check bool) "failure text recorded" true (beta.C.error <> None);
  (* Resume: alpha is skipped, beta re-runs (now passing). *)
  ran := [];
  let s2 =
    H.run_all
      ~config:{ base with H.resume = true }
      null
      [ tracked "alpha" [ ("a", 1.0) ]; tracked "beta" [ ("b", 2.0) ] ]
  in
  Alcotest.(check (list string)) "only beta re-ran" [ "beta" ] !ran;
  (match status s2 "alpha" with
  | H.Resumed en ->
      Alcotest.(check (list (pair string (float 0.0))))
        "resumed entry carries the stored scalars" [ ("a", 1.0) ] en.C.scalars
  | _ -> Alcotest.fail "alpha must resume from the manifest");
  Alcotest.(check int) "resumed run exits 0" 0 (H.exit_status s2);
  let m2 = Result.get_ok (C.load ~path) in
  Alcotest.(check bool) "beta now passed on disk" true
    ((Option.get (C.find m2 "beta")).C.status = C.Passed)

let resume_keyed_on_workload () =
  with_run_dir @@ fun path ->
  let base =
    {
      H.default_config with
      H.manifest_path = Some path;
      seed = 7L;
      patterns = 64;
    }
  in
  let (_ : H.summary) = H.run_all ~config:base null [ ok_entry "alpha" [] ] in
  (* Different pattern count -> the stored pass is stale, re-run. *)
  let s =
    H.run_all
      ~config:{ base with H.resume = true; patterns = 128 }
      null
      [ ok_entry "alpha" [] ]
  in
  (match status s "alpha" with
  | H.Passed _ -> ()
  | _ -> Alcotest.fail "changed workload must not resume");
  (* Same workload resumes. *)
  let s' =
    H.run_all
      ~config:{ base with H.resume = true; patterns = 128 }
      null
      [ ok_entry "alpha" [] ]
  in
  match status s' "alpha" with
  | H.Resumed _ -> ()
  | _ -> Alcotest.fail "identical workload must resume"

let corrupt_manifest_restarts () =
  with_run_dir @@ fun path ->
  Result.get_ok
    (C.save ~path (C.empty ~run_name:"x"))
  |> ignore;
  let oc = open_out path in
  output_string oc "not json at all";
  close_out oc;
  let s =
    H.run_all
      ~config:
        { H.default_config with H.manifest_path = Some path; resume = true }
      null
      [ ok_entry "alpha" [] ]
  in
  (match status s "alpha" with
  | H.Passed _ -> ()
  | _ -> Alcotest.fail "corrupt manifest must re-run, not crash");
  (* And the manifest was rewritten with the fresh result. *)
  let m = Result.get_ok (C.load ~path) in
  Alcotest.(check bool) "manifest repaired" true (C.find m "alpha" <> None)

let supervised_crash_isolated () =
  (* End to end through the harness with a real forked worker: a worker
     that SIGKILLs itself fails typed; the harness and the other entries
     survive. *)
  let config =
    {
      H.default_config with
      H.policy = Some { Runtime.Supervisor.timeout_s = 30.0; retries = 0; degrade = false };
    }
  in
  let s =
    H.run_all ~config null
      [
        H.entry "crash" "kills its worker" (fun ~degraded:_ _ppf ->
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            []);
        ok_entry "after" [ ("ok", 1.0) ];
      ]
  in
  (match status s "crash" with
  | H.Failed { error; _ } ->
      Alcotest.(check string) "worker death typed" "worker-killed"
        (E.code_name error.E.code)
  | _ -> Alcotest.fail "crash entry must fail");
  (match status s "after" with
  | H.Passed _ -> ()
  | _ -> Alcotest.fail "subsequent entry must still run");
  Alcotest.(check int) "exit 10" 10 (H.exit_status s)

let () =
  Alcotest.run "harness"
    [
      ( "semantics",
        [
          Alcotest.test_case "keep-going collects failures" `Quick
            keep_going_runs_everything;
          Alcotest.test_case "strict aborts and skips" `Quick
            strict_aborts_and_skips;
          Alcotest.test_case "all pass exits 0" `Quick all_pass_exit_zero;
          Alcotest.test_case "summary rendering" `Quick
            summary_renders_all_statuses;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "checkpoint and resume" `Quick checkpoint_and_resume;
          Alcotest.test_case "resume keyed on workload" `Quick
            resume_keyed_on_workload;
          Alcotest.test_case "corrupt manifest restarts" `Quick
            corrupt_manifest_restarts;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "crash isolated end to end" `Quick
            supervised_crash_isolated;
        ] );
    ]
