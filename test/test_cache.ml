(* Persistent digest-keyed cache: Diskcache hit/miss/stale/corrupt
   behavior, matchlib artifact persistence, and the opt-in leakage-table
   persistence. Everything runs against a throwaway cache directory so
   the repo's _cache/ is never touched. *)

module DC = Runtime.Diskcache

let tc = Alcotest.test_case

(* One fresh directory per process; set_dir points the whole suite at it. *)
let temp_dir =
  lazy
    (let d =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "cntpower-cache-test-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     d)

let in_temp_cache f =
  let saved_dir = DC.dir () in
  let saved_enabled = DC.enabled () in
  DC.set_dir (Lazy.force temp_dir);
  DC.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      DC.set_dir saved_dir;
      DC.set_enabled saved_enabled)
    f

(* --- digest ---------------------------------------------------------- *)

let digest_is_length_framed () =
  Alcotest.(check bool)
    "part boundaries matter" false
    (DC.digest [ "ab"; "c" ] = DC.digest [ "a"; "bc" ]);
  Alcotest.(check string) "deterministic"
    (DC.digest [ "x"; "y" ])
    (DC.digest [ "x"; "y" ])

let path_rejects_separators () =
  Alcotest.(check bool) "slash rejected" true
    (try
       ignore (DC.path ~name:"../evil" ~digest:"00");
       false
     with Invalid_argument _ -> true)

(* --- load/store ------------------------------------------------------ *)

let roundtrip () =
  in_temp_cache @@ fun () ->
  let digest = DC.digest [ "roundtrip"; "v1" ] in
  DC.store ~name:"testart" ~digest [ 1; 2; 3 ];
  Alcotest.(check (option (list int)))
    "served back" (Some [ 1; 2; 3 ])
    (DC.load ~name:"testart" ~digest)

let store_first_wins () =
  in_temp_cache @@ fun () ->
  let digest = DC.digest [ "first-wins"; "v1" ] in
  DC.store ~name:"race" ~digest "winner";
  (* A second writer on the same key publishes nothing: the complete
     artifact already on disk is never replaced. *)
  DC.store ~name:"race" ~digest "loser";
  Alcotest.(check (option string))
    "first write wins" (Some "winner")
    (DC.load ~name:"race" ~digest)

(* The write-stampede regression: two processes racing on one key must
   each publish atomically, exactly one must win, and neither may leave
   temp-file litter or a torn artifact behind. *)
let store_stampede_two_writers () =
  in_temp_cache @@ fun () ->
  let digest = DC.digest [ "stampede"; "v1" ] in
  let payload tag = "payload-" ^ tag ^ String.make 8192 tag.[0] in
  let writer tag =
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        DC.store ~name:"stampede" ~digest (payload tag);
        Unix._exit 0
    | pid -> pid
  in
  let a = writer "a" in
  let b = writer "b" in
  ignore (Unix.waitpid [] a);
  ignore (Unix.waitpid [] b);
  (match DC.load ~name:"stampede" ~digest with
  | Some v ->
      Alcotest.(check bool)
        "one complete artifact" true
        (v = payload "a" || v = payload "b")
  | None -> Alcotest.fail "artifact missing after stampede");
  let leftovers =
    Sys.readdir (DC.dir ()) |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check (list string)) "no temp litter" [] leftovers

let unknown_digest_misses () =
  in_temp_cache @@ fun () ->
  Alcotest.(check (option (list int)))
    "no artifact" None
    (DC.load ~name:"testart" ~digest:(DC.digest [ "never-stored" ]))

let stale_digest_misses () =
  in_temp_cache @@ fun () ->
  (* A changed input changes the digest, hence the file name: the old
     artifact is simply not found. *)
  let old_digest = DC.digest [ "stale"; "input-v1" ] in
  let new_digest = DC.digest [ "stale"; "input-v2" ] in
  DC.store ~name:"stale" ~digest:old_digest 42;
  Alcotest.(check (option int))
    "new digest misses" None
    (DC.load ~name:"stale" ~digest:new_digest);
  Alcotest.(check (option int))
    "old digest still hits" (Some 42)
    (DC.load ~name:"stale" ~digest:old_digest)

let corrupt_file_misses () =
  in_temp_cache @@ fun () ->
  let digest = DC.digest [ "corrupt" ] in
  let path = DC.path ~name:"corrupt" ~digest in
  (* Garbage where the header should be. *)
  let oc = open_out_bin path in
  output_string oc "not a cache artifact at all";
  close_out oc;
  Alcotest.(check (option int)) "garbage = miss" None (DC.load ~name:"corrupt" ~digest);
  (* Correct header, truncated payload: Marshal fails, still a miss. *)
  DC.store ~name:"corrupt" ~digest (Array.make 1000 3.14);
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  Alcotest.(check bool) "truncated = miss" true
    (DC.load ~name:"corrupt" ~digest = (None : float array option))

let wrong_name_header_misses () =
  in_temp_cache @@ fun () ->
  let digest = DC.digest [ "renamed" ] in
  DC.store ~name:"original" ~digest 7;
  (* Copy the artifact under a different name: the embedded header no
     longer matches the requested name, so it must not be served. *)
  let src = DC.path ~name:"original" ~digest in
  let dst = DC.path ~name:"renamed" ~digest in
  let data = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> output_string oc data);
  Alcotest.(check (option int)) "foreign header = miss" None
    (DC.load ~name:"renamed" ~digest)

let disabled_bypasses () =
  in_temp_cache @@ fun () ->
  let digest = DC.digest [ "disabled" ] in
  DC.store ~name:"disabled" ~digest 1;
  DC.set_enabled false;
  Alcotest.(check (option int)) "load bypassed" None (DC.load ~name:"disabled" ~digest);
  let computes = ref 0 in
  let thunk () = incr computes; 99 in
  Alcotest.(check int) "with_cache is a plain call" 99
    (DC.with_cache ~name:"disabled2" ~digest thunk);
  Alcotest.(check int) "recomputes every time" 99
    (DC.with_cache ~name:"disabled2" ~digest thunk);
  Alcotest.(check int) "two computes" 2 !computes;
  Alcotest.(check bool) "nothing written" false
    (Sys.file_exists (DC.path ~name:"disabled2" ~digest));
  DC.set_enabled true

let with_cache_computes_once () =
  in_temp_cache @@ fun () ->
  let digest = DC.digest [ "once" ] in
  let computes = ref 0 in
  let thunk () = incr computes; "value" in
  Alcotest.(check string) "miss computes" "value"
    (DC.with_cache ~name:"once" ~digest thunk);
  Alcotest.(check string) "hit loads" "value"
    (DC.with_cache ~name:"once" ~digest thunk);
  Alcotest.(check int) "one compute" 1 !computes

(* --- orphaned temp-file GC ------------------------------------------- *)

(* A PID guaranteed dead: fork a child that exits immediately and reap
   it. Immediate reuse of a just-reaped PID is vanishingly unlikely. *)
let dead_pid () =
  match Unix.fork () with
  | 0 -> Unix._exit 0
  | pid ->
      ignore (Unix.waitpid [] pid);
      pid

let make_tmp name ~age =
  let p = Filename.concat (DC.dir ()) name in
  Out_channel.with_open_bin p (fun oc -> output_string oc "partial write");
  let old = Unix.gettimeofday () -. age in
  Unix.utimes p old old;
  p

let gc_reclaims_dead_orphans () =
  in_temp_cache @@ fun () ->
  let orphan =
    make_tmp
      (Printf.sprintf "orphan-deadbeef.bin.%d.tmp" (dead_pid ()))
      ~age:(DC.tmp_max_age_s () +. 100.)
  in
  let n = DC.gc_tmp () in
  Alcotest.(check bool) "at least the orphan reclaimed" true (n >= 1);
  Alcotest.(check bool) "orphan removed" false (Sys.file_exists orphan)

let gc_preserves_young_and_live () =
  in_temp_cache @@ fun () ->
  (* Young litter may belong to a writer mid-publish; old litter with a
     live owner belongs to a slow writer. Neither may be touched. *)
  let young =
    make_tmp (Printf.sprintf "young-d.bin.%d.tmp" (dead_pid ())) ~age:1.0
  in
  let live =
    make_tmp
      (Printf.sprintf "live-d.bin.%d.tmp" (Unix.getpid ()))
      ~age:(DC.tmp_max_age_s () +. 100.)
  in
  let not_tmp =
    make_tmp "plain-artifact.bin" ~age:(DC.tmp_max_age_s () +. 100.)
  in
  ignore (DC.gc_tmp ());
  Alcotest.(check bool) "young tmp survives" true (Sys.file_exists young);
  Alcotest.(check bool) "live-owner tmp survives" true (Sys.file_exists live);
  Alcotest.(check bool) "non-tmp file survives" true (Sys.file_exists not_tmp);
  List.iter Sys.remove [ young; live; not_tmp ]

let gc_runs_once_on_first_use () =
  in_temp_cache @@ fun () ->
  (* set_dir (via in_temp_cache) re-arms the once-per-process sweep; the
     first enabled load must collect the orphan as a side effect. *)
  let orphan =
    make_tmp
      (Printf.sprintf "auto-d.bin.%d.tmp" (dead_pid ()))
      ~age:(DC.tmp_max_age_s () +. 100.)
  in
  ignore (DC.load ~name:"unrelated" ~digest:(DC.digest [ "auto-sweep" ]));
  Alcotest.(check bool) "orphan swept by first load" false
    (Sys.file_exists orphan)

let gc_counts_reclaims () =
  in_temp_cache @@ fun () ->
  let module T = Runtime.Telemetry in
  let was = T.enabled () in
  Fun.protect
    ~finally:(fun () ->
      T.reset ();
      T.set_enabled was)
    (fun () ->
      T.set_enabled true;
      T.reset ();
      ignore
        (make_tmp
           (Printf.sprintf "counted-d.bin.%d.tmp" (dead_pid ()))
           ~age:(DC.tmp_max_age_s () +. 100.));
      let n = DC.gc_tmp () in
      Alcotest.(check (option int))
        "cache.tmp_reclaimed counter matches" (Some n)
        (T.find_counter (T.snapshot ()) "cache.tmp_reclaimed"))

(* --- matchlib -------------------------------------------------------- *)

let matchlib_digest_sensitivity () =
  let gen = Techmap.Matchlib.digest_of Cell.Genlib.generalized_cntfet in
  Alcotest.(check bool) "different library, different digest" false
    (gen = Techmap.Matchlib.digest_of Cell.Genlib.conventional_cntfet);
  (* with_tech keeps the genlib text but changes the corner — the digest
     must still move, which is why it hashes the marshalled library. *)
  let retech =
    Cell.Genlib.with_tech Cell.Genlib.generalized_cntfet Spice.Tech.cmos
  in
  Alcotest.(check bool) "different corner, different digest" false
    (gen = Techmap.Matchlib.digest_of retech)

let matchlib_build_persists () =
  in_temp_cache @@ fun () ->
  let lib = Cell.Genlib.conventional_cntfet in
  let digest = Techmap.Matchlib.digest_of lib in
  let artifact = DC.path ~name:"matchlib" ~digest in
  (* cache:false must never touch the disk. *)
  let uncached = Techmap.Matchlib.build ~cache:false lib in
  Alcotest.(check bool) "no artifact from cache:false" false
    (Sys.file_exists artifact);
  ignore (Techmap.Matchlib.build lib);
  Alcotest.(check bool) "artifact published" true (Sys.file_exists artifact);
  (* The warm load must index the same library. *)
  let warm = Techmap.Matchlib.build lib in
  Alcotest.(check int) "same index size"
    (Techmap.Matchlib.size uncached)
    (Techmap.Matchlib.size warm)

(* --- leakage persistence --------------------------------------------- *)

let leakage_persistence_roundtrip () =
  in_temp_cache @@ fun () ->
  let module L = Power.Leakage in
  let was = L.persistent () in
  Fun.protect
    ~finally:(fun () ->
      L.set_persistent was;
      L.clear_cache ())
    (fun () ->
      L.set_persistent true;
      L.clear_cache ();
      let p = Power.Pattern.Series [ Power.Pattern.Unit 2; Power.Pattern.Unit 1 ] in
      let cold = L.pattern_ioff Spice.Tech.cntfet p in
      let solves = (L.cache_stats ()).L.misses in
      Alcotest.(check bool) "cold run solved" true (solves > 0);
      L.flush ();
      (* A fresh table must reload the artifact: same value, zero solves. *)
      L.clear_cache ();
      let warm = L.pattern_ioff Spice.Tech.cntfet p in
      Alcotest.(check (float 0.0)) "identical current" cold warm;
      Alcotest.(check int) "no DC solve on warm path" 0
        (L.cache_stats ()).L.misses)

let leakage_off_by_default_stays_cold () =
  in_temp_cache @@ fun () ->
  let module L = Power.Leakage in
  let was = L.persistent () in
  Fun.protect
    ~finally:(fun () ->
      L.set_persistent was;
      L.clear_cache ())
    (fun () ->
      (* Publish an artifact, then turn persistence off: the solver must
         not consult it (exp_patterns' golden dc_solves depends on this). *)
      L.set_persistent true;
      L.clear_cache ();
      let p = Power.Pattern.Unit 3 in
      ignore (L.pattern_ioff Spice.Tech.cntfet p);
      L.flush ();
      L.set_persistent false;
      L.clear_cache ();
      ignore (L.pattern_ioff Spice.Tech.cntfet p);
      Alcotest.(check int) "solved again, not loaded" 1
        (L.cache_stats ()).L.misses)

let () =
  Alcotest.run "cache"
    [
      ( "diskcache",
        [
          tc "digest is length-framed" `Quick digest_is_length_framed;
          tc "path rejects separators" `Quick path_rejects_separators;
          tc "store/load roundtrip" `Quick roundtrip;
          tc "first writer wins" `Quick store_first_wins;
          tc "two forked writers: no stampede" `Quick store_stampede_two_writers;
          tc "unknown digest misses" `Quick unknown_digest_misses;
          tc "stale digest misses" `Quick stale_digest_misses;
          tc "corrupt/truncated file misses" `Quick corrupt_file_misses;
          tc "wrong-name header misses" `Quick wrong_name_header_misses;
          tc "disabled bypasses reads and writes" `Quick disabled_bypasses;
          tc "with_cache computes once" `Quick with_cache_computes_once;
        ] );
      ( "tmp-gc",
        [
          tc "reclaims old dead-owner orphans" `Quick gc_reclaims_dead_orphans;
          tc "preserves young and live-owner litter" `Quick
            gc_preserves_young_and_live;
          tc "sweeps automatically on first use" `Quick gc_runs_once_on_first_use;
          tc "counts reclaims" `Quick gc_counts_reclaims;
        ] );
      ( "matchlib",
        [
          tc "digest sensitivity" `Quick matchlib_digest_sensitivity;
          tc "build persists and reloads" `Slow matchlib_build_persists;
        ] );
      ( "leakage",
        [
          tc "persistence roundtrip" `Quick leakage_persistence_roundtrip;
          tc "off by default stays cold" `Quick leakage_off_by_default_stays_cold;
        ] );
    ]
