(* Telemetry registry: span nesting and aggregation, counters,
   distribution statistics, disabled-mode no-op guarantees, profile
   merge across a real fork, and JSON/file round-trips. *)

module T = Runtime.Telemetry
module C = Runtime.Checkpoint
module E = Runtime.Cnt_error
module S = Runtime.Supervisor

(* Every test owns the process-wide registry: start clean, leave clean. *)
let fresh f () =
  T.set_enabled true;
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

let find_span profile path =
  let rec go spans = function
    | [] -> None
    | [ name ] -> List.find_opt (fun s -> s.T.span_name = name) spans
    | name :: rest -> (
        match List.find_opt (fun s -> s.T.span_name = name) spans with
        | Some s -> go s.T.children rest
        | None -> None)
  in
  go profile.T.p_spans path

let get_span profile path =
  match find_span profile path with
  | Some s -> s
  | None ->
      Alcotest.failf "span %s not found" (String.concat "/" path)

(* --- disabled mode ------------------------------------------------- *)

let disabled_is_identity () =
  T.set_enabled false;
  T.reset ();
  let r = T.with_span "ghost" (fun () -> 41 + 1) in
  T.count "ghost.counter" 7;
  T.observe "ghost.dist" 3.5;
  Alcotest.(check int) "with_span returns f ()" 42 r;
  let p = T.snapshot () in
  Alcotest.(check int) "no spans recorded" 0 (List.length p.T.p_spans);
  Alcotest.(check int) "no counters recorded" 0 (List.length p.T.p_counters);
  Alcotest.(check int) "no dists recorded" 0 (List.length p.T.p_dists)

let disabled_zero_alloc () =
  T.set_enabled false;
  T.reset ();
  (* Warm up so any one-time allocation is out of the way. *)
  T.count "warm" 1;
  T.observe "warm" 1.0;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    T.count "hot.counter" 1;
    T.observe "hot.dist" 2.0
  done;
  let allocated = Gc.minor_words () -. before in
  (* Gc.minor_words itself returns a boxed float per call; allow that
     slack but nothing proportional to the 20k disabled entry points. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled count/observe allocate nothing (saw %.0f words)"
       allocated)
    true
    (allocated < 100.0)

(* --- spans --------------------------------------------------------- *)

let span_nesting =
  fresh (fun () ->
      T.with_span "outer" (fun () ->
          T.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1)));
      let p = T.snapshot () in
      let outer = get_span p [ "outer" ] in
      Alcotest.(check int) "outer called once" 1 outer.T.calls;
      let inner = get_span p [ "outer"; "inner" ] in
      Alcotest.(check int) "inner nested under outer" 1 inner.T.calls;
      Alcotest.(check bool)
        "inner time is contained in outer time" true
        (inner.T.total_s <= outer.T.total_s))

let span_aggregation =
  fresh (fun () ->
      for _ = 1 to 5 do
        T.with_span "top" (fun () -> T.with_span "leaf" (fun () -> ()))
      done;
      let p = T.snapshot () in
      Alcotest.(check int) "five calls fold into one node" 5
        (get_span p [ "top" ]).T.calls;
      Alcotest.(check int) "children aggregate by path" 5
        (get_span p [ "top"; "leaf" ]).T.calls;
      Alcotest.(check int) "one root node, not five" 1
        (List.length p.T.p_spans))

let span_ordering =
  fresh (fun () ->
      T.with_span "parent" (fun () ->
          T.with_span "cheap" (fun () -> ());
          T.with_span "costly" (fun () -> Unix.sleepf 0.02));
      let p = T.snapshot () in
      match (get_span p [ "parent" ]).T.children with
      | { T.span_name = "costly"; _ } :: { T.span_name = "cheap"; _ } :: [] ->
          ()
      | children ->
          Alcotest.failf "children not sorted by total_s desc: [%s]"
            (String.concat "; "
               (List.map (fun s -> s.T.span_name) children)))

let span_exception_safe =
  fresh (fun () ->
      (try T.with_span "throws" (fun () -> failwith "boom")
       with Failure _ -> ());
      T.with_span "after" (fun () -> ());
      let p = T.snapshot () in
      Alcotest.(check int) "raising span is still charged" 1
        (get_span p [ "throws" ]).T.calls;
      Alcotest.(check bool) "stack unwound: next span is a sibling, not a child"
        true
        (find_span p [ "throws"; "after" ] = None
        && find_span p [ "after" ] <> None))

(* --- counters and distributions ------------------------------------ *)

let counters_accumulate =
  fresh (fun () ->
      T.count "solves" 3;
      T.count "solves" 4;
      T.count "hits" 1;
      let p = T.snapshot () in
      Alcotest.(check (option int)) "increments add" (Some 7)
        (T.find_counter p "solves");
      Alcotest.(check (option int)) "independent counter" (Some 1)
        (T.find_counter p "hits");
      Alcotest.(check (option int)) "absent counter" None
        (T.find_counter p "misses"))

let dist_statistics =
  fresh (fun () ->
      List.iter (T.observe "lat") [ 4.0; 1.0; 3.0; 2.0; 5.0 ];
      let p = T.snapshot () in
      let d =
        match T.find_dist p "lat" with
        | Some d -> d
        | None -> Alcotest.fail "distribution missing"
      in
      Alcotest.(check int) "count" 5 d.T.d_count;
      Alcotest.(check (float 1e-9)) "min" 1.0 d.T.d_min;
      Alcotest.(check (float 1e-9)) "max" 5.0 d.T.d_max;
      Alcotest.(check (float 1e-9)) "mean" 3.0 (T.mean d);
      Alcotest.(check (float 1e-9)) "p50 (nearest rank)" 3.0
        (T.percentile d 0.5);
      Alcotest.(check (float 1e-9)) "p100 is the max" 5.0
        (T.percentile d 1.0))

let dist_empty_edge_cases =
  fresh (fun () ->
      (* A distribution nobody observed: statistics must be total, not
         raise on the empty sample. *)
      let d =
        { T.d_count = 0; d_sum = 0.0; d_min = infinity; d_max = neg_infinity;
          d_samples = [||] }
      in
      Alcotest.(check (float 1e-9)) "empty mean is 0" 0.0 (T.mean d);
      Alcotest.(check (float 1e-9)) "empty p50 is 0" 0.0 (T.percentile d 0.5);
      Alcotest.(check (float 1e-9)) "empty p95 is 0" 0.0
        (T.percentile d 0.95))

let dist_single_sample =
  fresh (fun () ->
      T.observe "one" 7.25;
      let p = T.snapshot () in
      let d = Option.get (T.find_dist p "one") in
      Alcotest.(check int) "count" 1 d.T.d_count;
      (* Every quantile of a single observation is that observation. *)
      Alcotest.(check (float 1e-9)) "p50" 7.25 (T.percentile d 0.5);
      Alcotest.(check (float 1e-9)) "p95" 7.25 (T.percentile d 0.95);
      Alcotest.(check (float 1e-9)) "mean" 7.25 (T.mean d);
      Alcotest.(check (float 1e-9)) "min = max" d.T.d_min d.T.d_max)

let dist_sample_bound =
  fresh (fun () ->
      let n = (T.max_samples * 4) + 17 in
      for i = 1 to n do
        T.observe "big" (float_of_int i)
      done;
      let p = T.snapshot () in
      let d = Option.get (T.find_dist p "big") in
      Alcotest.(check int) "every observation counted" n d.T.d_count;
      Alcotest.(check bool)
        (Printf.sprintf "sample stays bounded (%d <= %d)"
           (Array.length d.T.d_samples) T.max_samples)
        true
        (Array.length d.T.d_samples <= T.max_samples);
      Alcotest.(check (float 1e-9)) "extrema exact despite sampling"
        (float_of_int n) d.T.d_max;
      (* Systematic sampling keeps the quantile estimate honest. *)
      let p50 = T.percentile d 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "p50 %.0f within 10%% of the true median" p50)
        true
        (Float.abs (p50 -. (float_of_int n /. 2.0))
        < 0.1 *. float_of_int n))

(* --- merge --------------------------------------------------------- *)

let merge_with_prefix =
  fresh (fun () ->
      T.with_span "local" (fun () -> ());
      T.count "shared" 1;
      (* A detached profile, as a worker snapshot would be. *)
      let worker =
        {
          T.p_spans =
            [ { T.span_name = "inner"; calls = 2; total_s = 0.5; children = [] } ];
          p_counters = [ ("shared", 41); ("worker.only", 5) ];
          p_dists = [];
        }
      in
      T.merge ~prefix:[ "exp" ] worker;
      T.merge ~prefix:[ "exp" ] worker;
      let p = T.snapshot () in
      Alcotest.(check int) "grafted span adds across merges" 4
        (get_span p [ "exp"; "inner" ]).T.calls;
      Alcotest.(check (option int)) "counters add flat" (Some 83)
        (T.find_counter p "shared");
      Alcotest.(check (option int)) "worker-only counter appears" (Some 10)
        (T.find_counter p "worker.only");
      Alcotest.(check int) "local span untouched" 1
        (get_span p [ "local" ]).T.calls)

let merge_from_forked_worker =
  fresh (fun () ->
      let outcome =
        S.run
          ~policy:{ S.timeout_s = 30.0; retries = 0; degrade = false }
          ~name:"telemetry-fork"
          (fun ~degraded:_ ->
            (* The worker inherits enabled=true across the fork; profile
               only its own work, exactly as Experiments.Harness does. *)
            T.reset ();
            T.with_span "work" (fun () -> T.count "worker.units" 11);
            T.snapshot ())
      in
      match outcome.S.value with
      | Result.Error e -> Alcotest.failf "worker failed: %s" (E.to_string e)
      | Ok worker_profile ->
          T.merge ~prefix:[ "fork" ] worker_profile;
          let p = T.snapshot () in
          Alcotest.(check int) "worker span crossed the pipe" 1
            (get_span p [ "fork"; "work" ]).T.calls;
          Alcotest.(check (option int))
            "worker counter crossed the pipe" (Some 11)
            (T.find_counter p "worker.units");
          (* The parent's own supervision counters coexist. *)
          Alcotest.(check (option int)) "parent supervision counted" (Some 1)
            (T.find_counter p "supervisor.attempts"))

(* --- serialization ------------------------------------------------- *)

let sample_profile () =
  T.with_span "a" (fun () ->
      T.with_span "b" (fun () -> ());
      T.with_span "b" (fun () -> ()));
  T.count "k" 42;
  List.iter (T.observe "d") [ 1.0; 2.0; 3.0; 4.0 ];
  T.snapshot ()

let json_roundtrip =
  fresh (fun () ->
      let p = sample_profile () in
      let text = C.json_to_string (T.to_json p) in
      let json =
        match C.json_of_string text with
        | Ok j -> j
        | Result.Error e -> Alcotest.failf "reparse: %s" (E.to_string e)
      in
      match T.of_json json with
      | Result.Error e -> Alcotest.failf "of_json: %s" (E.to_string e)
      | Ok p' ->
          Alcotest.(check int) "span calls survive" 2
            (get_span p' [ "a"; "b" ]).T.calls;
          Alcotest.(check (option int)) "counters survive" (Some 42)
            (T.find_counter p' "k");
          let d = Option.get (T.find_dist p' "d") in
          Alcotest.(check int) "dist count survives" 4 d.T.d_count;
          Alcotest.(check (float 1e-9)) "dist mean survives" 2.5 (T.mean d);
          Alcotest.(check (float 1e-9)) "dist samples survive (p50)"
            (T.percentile (Option.get (T.find_dist p "d")) 0.5)
            (T.percentile d 0.5))

let of_json_rejects_garbage () =
  (match T.of_json (C.Str "nope") with
  | Ok _ -> Alcotest.fail "accepted a non-object profile"
  | Result.Error e ->
      Alcotest.(check bool) "typed parse error" true (e.E.code = E.Parse_error));
  match T.of_json (C.Obj [ ("version", C.Num 1.0) ]) with
  | Ok _ -> Alcotest.fail "accepted a profile missing its spans"
  | Result.Error _ -> ()

let save_load_roundtrip =
  fresh (fun () ->
      let p = sample_profile () in
      let dir = Filename.temp_file "telemetry" ".d" in
      Sys.remove dir;
      let path = Filename.concat dir "profile.json" in
      (match T.save ~path p with
      | Ok () -> ()
      | Result.Error e -> Alcotest.failf "save: %s" (E.to_string e));
      Fun.protect
        ~finally:(fun () ->
          (try Sys.remove path with Sys_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
        (fun () ->
          match T.load ~path with
          | Result.Error e -> Alcotest.failf "load: %s" (E.to_string e)
          | Ok p' ->
              Alcotest.(check int) "file round-trip preserves spans" 1
                (get_span p' [ "a" ]).T.calls;
              Alcotest.(check (option int))
                "file round-trip preserves counters" (Some 42)
                (T.find_counter p' "k")))

let load_missing_is_typed () =
  match T.load ~path:"/nonexistent/profile.json" with
  | Ok _ -> Alcotest.fail "loaded a profile from nowhere"
  | Result.Error e ->
      Alcotest.(check bool) "missing file is a typed io error" true
        (e.E.code = E.Io_error)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "telemetry"
    [
      ( "disabled",
        [
          tc "disabled entry points are identities" disabled_is_identity;
          tc "disabled count/observe do not allocate" disabled_zero_alloc;
        ] );
      ( "spans",
        [
          tc "nesting" span_nesting;
          tc "aggregation by path" span_aggregation;
          tc "children sorted by cost" span_ordering;
          tc "exception safety" span_exception_safe;
        ] );
      ( "metrics",
        [
          tc "counters accumulate" counters_accumulate;
          tc "distribution statistics" dist_statistics;
          tc "empty distribution statistics are total" dist_empty_edge_cases;
          tc "single-sample quantiles" dist_single_sample;
          tc "sample reservoir stays bounded" dist_sample_bound;
        ] );
      ( "merge",
        [
          tc "merge with prefix" merge_with_prefix;
          tc "merge from a forked worker" merge_from_forked_worker;
        ] );
      ( "serialization",
        [
          tc "JSON round-trip" json_roundtrip;
          tc "of_json rejects garbage" of_json_rejects_garbage;
          tc "save/load round-trip" save_load_roundtrip;
          tc "load of missing file is typed" load_missing_is_typed;
        ] );
    ]
