(* Campaign durability: the workqueue write-ahead log survives torn
   lines and dead lease owners, and the campaign runner survives poison
   shards (quarantine) and a SIGKILLed coordinator (resume re-runs only
   what is not recorded done). *)

module W = Runtime.Workqueue
module E = Runtime.Cnt_error
module C = Runtime.Checkpoint
module DC = Runtime.Diskcache
module Cg = Experiments.Campaign
module G = Cell.Genlib

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" E.pp e

let temp_dir prefix =
  let d = Filename.temp_file prefix ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

(* ------------------------------------------------------------------ *)
(* Workqueue log                                                       *)

let test_wq_roundtrip () =
  let path = Filename.concat (temp_dir "wq") "queue.jsonl" in
  let wq, skipped = ok (W.open_ ~path) in
  Alcotest.(check int) "fresh log skips nothing" 0 skipped;
  Alcotest.(check bool) "new shard enqueues" true (W.enqueue wq "a");
  Alcotest.(check bool) "re-enqueue is a no-op" false (W.enqueue wq "a");
  ignore (W.enqueue wq "b");
  ignore (W.enqueue wq "c");
  Alcotest.(check int) "first lease is attempt 1" 1 (W.lease wq "a" ~ttl_s:60.);
  W.mark_done wq "a" ~fields:[ ("wall_s", "1.5"); ("s:total_uW", "2.25") ];
  ignore (W.lease wq "b" ~ttl_s:60.);
  W.mark_failed wq "b" ~fields:[ ("error", "boom") ];
  W.close wq;
  let wq, skipped = ok (W.open_ ~path) in
  Alcotest.(check int) "clean log replays without skips" 0 skipped;
  Alcotest.(check (list string))
    "first-enqueue order preserved" [ "a"; "b"; "c" ] (W.shards wq);
  Alcotest.(check bool) "a replays done" true (W.state wq "a" = Some W.Done);
  Alcotest.(check (option string))
    "done fields survive replay" (Some "2.25")
    (List.assoc_opt "s:total_uW" (W.fields wq "a"));
  Alcotest.(check bool) "b replays failed" true (W.state wq "b" = Some W.Failed);
  Alcotest.(check int) "b consumed one attempt" 1 (W.attempts wq "b");
  Alcotest.(check (list string))
    "failed and enqueued shards are ready" [ "b"; "c" ] (W.ready wq);
  Alcotest.(check int) "re-lease is attempt 2" 2 (W.lease wq "b" ~ttl_s:60.);
  W.close wq

let test_wq_torn_lines () =
  let path = Filename.concat (temp_dir "wq") "queue.jsonl" in
  let wq, _ = ok (W.open_ ~path) in
  ignore (W.enqueue wq "a");
  ignore (W.lease wq "a" ~ttl_s:60.);
  W.mark_done wq "a" ~fields:[ ("wall_s", "0.5") ];
  ignore (W.enqueue wq "b");
  W.close wq;
  (* Simulate a crash mid-append: one garbage line, then a record torn
     short of its newline. *)
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
  output_string oc "this is not json\n";
  output_string oc "{\"t\": 12.5, \"shard\": \"tor";
  close_out oc;
  let wq, skipped = ok (W.open_ ~path) in
  Alcotest.(check int) "both corrupt lines skipped" 2 skipped;
  Alcotest.(check bool) "a still done" true (W.state wq "a" = Some W.Done);
  Alcotest.(check bool) "b still enqueued" true (W.state wq "b" = Some W.Enqueued);
  (* Appending after a torn final line must not merge into it. *)
  ignore (W.enqueue wq "c");
  W.close wq;
  let records, skipped = ok (W.load ~path) in
  Alcotest.(check int) "skip count stable after reopen" 2 skipped;
  Alcotest.(check bool) "record appended after torn line parses" true
    (List.exists
       (fun r -> r.W.rc_shard = "c" && r.W.rc_state = W.Enqueued)
       records)

let test_wq_stale_leases () =
  let path = Filename.concat (temp_dir "wq") "queue.jsonl" in
  let wq, _ = ok (W.open_ ~path) in
  ignore (W.enqueue wq "expired");
  ignore (W.lease wq "expired" ~ttl_s:(-1.0));
  ignore (W.enqueue wq "held");
  ignore (W.lease wq "held" ~ttl_s:3600.);
  ignore (W.enqueue wq "orphan");
  W.close wq;
  (* A coordinator in another process takes a lease and dies holding it. *)
  (match Unix.fork () with
  | 0 ->
      let wq, _ = ok (W.open_ ~path) in
      ignore (W.lease wq "orphan" ~ttl_s:3600.);
      W.close wq;
      Unix._exit 0
  | pid -> ignore (Unix.waitpid [] pid));
  let wq, _ = ok (W.open_ ~path) in
  let stale = W.stale_leases wq ~now:(Unix.gettimeofday ()) in
  Alcotest.(check (list string))
    "expired ttl and dead owner are stale, live own lease is not"
    [ "expired"; "orphan" ]
    (List.sort compare stale);
  W.close wq

(* ------------------------------------------------------------------ *)
(* Campaign runs                                                       *)

let small_entry name =
  List.find
    (fun (e : Circuits.Suite.entry) -> e.Circuits.Suite.name = name)
    Circuits.Suite.small

let test_cfg ~campaign ~runs_dir =
  {
    (Cg.default_config ~campaign) with
    Cg.runs_dir;
    circuits = [ small_entry "mult8"; small_entry "ham8" ];
    libraries = [ G.cmos ];
    seeds = [ 42L ];
    patterns = 256;
    workers = 2;
    shard_timeout_s = 120.0;
    max_attempts = 2;
    backoff_initial_s = 0.05;
    backoff_max_s = 0.2;
  }

(* Campaign workers rebuild the matchlib per fork; share it through a
   throwaway disk cache so the suite stays fast. *)
let with_campaign_env f =
  let runs = temp_dir "campaign-runs" in
  let cache = temp_dir "campaign-cache" in
  let old_dir = DC.dir () in
  let old_enabled = DC.enabled () in
  DC.set_dir cache;
  DC.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      DC.set_dir old_dir;
      DC.set_enabled old_enabled)
    (fun () -> f runs)

let done_records path shard =
  let records, _ = ok (W.load ~path) in
  List.filter
    (fun r -> r.W.rc_shard = shard && r.W.rc_state = W.Done)
    records
  |> List.length

let test_campaign_fresh_and_resume () =
  with_campaign_env @@ fun runs_dir ->
  let cfg = test_cfg ~campaign:"fresh" ~runs_dir in
  let s = ok (Cg.run cfg) in
  Alcotest.(check int) "two shards in the grid" 2 s.Cg.total;
  Alcotest.(check int) "both completed" 2 s.Cg.completed;
  Alcotest.(check int) "nothing resumed on a fresh run" 0 s.Cg.resumed;
  Alcotest.(check (list string)) "nothing quarantined" [] s.Cg.quarantined;
  let manifest = ok (C.load ~path:(Cg.manifest_path cfg)) in
  Alcotest.(check int) "manifest has one entry per shard" 2
    (List.length manifest.C.entries);
  List.iter
    (fun (e : C.entry) ->
      Alcotest.(check bool)
        (e.C.experiment ^ " passed") true
        (e.C.status = C.Passed);
      match List.assoc_opt "total_uW" e.C.scalars with
      | Some v -> Alcotest.(check bool) "total power positive" true (v > 0.0)
      | None -> Alcotest.fail "manifest entry missing total_uW")
    manifest.C.entries;
  (* Resuming a finished campaign re-runs nothing. *)
  let s = ok (Cg.run { cfg with Cg.resume = true }) in
  Alcotest.(check int) "resume completes nothing new" 0 s.Cg.completed;
  Alcotest.(check int) "resume counts both shards as done" 2 s.Cg.resumed;
  List.iter
    (fun sh ->
      Alcotest.(check int)
        (sh.Cg.sh_id ^ " ran exactly once")
        1
        (done_records (Cg.queue_path cfg) sh.Cg.sh_id))
    (Cg.enumerate cfg)

let test_campaign_poison_quarantine () =
  with_campaign_env @@ fun runs_dir ->
  let cfg =
    {
      (test_cfg ~campaign:"poison" ~runs_dir) with
      Cg.inject = { Cg.no_inject with Cg.inj_crash = [ "mult8" ] };
    }
  in
  let poison = "mult8/cmos/42" in
  let s = ok (Cg.run cfg) in
  Alcotest.(check (list string))
    "poison shard quarantined" [ poison ] s.Cg.quarantined;
  Alcotest.(check int) "healthy shard still completed" 1 s.Cg.completed;
  let wq, _ = ok (W.open_ ~path:(Cg.queue_path cfg)) in
  Alcotest.(check bool) "queue records the quarantine" true
    (W.state wq poison = Some W.Quarantined);
  Alcotest.(check int)
    "every attempt in the budget was consumed" cfg.Cg.max_attempts
    (W.attempts wq poison);
  Alcotest.(check bool) "healthy shard done in the queue" true
    (W.state wq "ham8/cmos/42" = Some W.Done);
  W.close wq;
  let manifest = ok (C.load ~path:(Cg.manifest_path cfg)) in
  Alcotest.(check bool) "no manifest entry for the poison shard" true
    (C.find manifest poison = None);
  Alcotest.(check bool) "manifest entry for the healthy shard" true
    (C.find manifest "ham8/cmos/42" <> None)

let test_campaign_sigkill_resume () =
  with_campaign_env @@ fun runs_dir ->
  let cfg =
    {
      (test_cfg ~campaign:"killed" ~runs_dir) with
      Cg.workers = 1;
      Cg.inject = { Cg.no_inject with Cg.inj_kill_after = Some 1 };
    }
  in
  (* The coordinator SIGKILLs itself right after the first done record
     hits the log — before the manifest write. Run it in a fork so the
     test survives. *)
  (match Unix.fork () with
  | 0 -> (
      match Cg.run cfg with
      | _ -> Unix._exit 7
      | exception _ -> Unix._exit 8)
  | pid -> (
      match snd (Unix.waitpid [] pid) with
      | Unix.WSIGNALED s when s = Sys.sigkill -> ()
      | st ->
          Alcotest.failf "expected the coordinator to die of SIGKILL, got %s"
            (match st with
            | Unix.WEXITED c -> Printf.sprintf "exit %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s)));
  (* Resume without injection: only the shard not recorded done re-runs. *)
  let cfg = { cfg with Cg.resume = true; Cg.inject = Cg.no_inject } in
  let s = ok (Cg.run cfg) in
  Alcotest.(check int) "one shard survived the kill as done" 1 s.Cg.resumed;
  Alcotest.(check int) "the other shard re-ran" 1 s.Cg.completed;
  Alcotest.(check (list string)) "nothing quarantined" [] s.Cg.quarantined;
  let manifest = ok (C.load ~path:(Cg.manifest_path cfg)) in
  List.iter
    (fun sh ->
      Alcotest.(check bool)
        (sh.Cg.sh_id ^ " in the manifest after resume")
        true
        (C.find manifest sh.Cg.sh_id <> None);
      Alcotest.(check int)
        (sh.Cg.sh_id ^ " executed exactly once")
        1
        (done_records (Cg.queue_path cfg) sh.Cg.sh_id))
    (Cg.enumerate cfg)

let () =
  Alcotest.run "campaign"
    [
      ( "workqueue",
        [
          Alcotest.test_case "roundtrip replay" `Quick test_wq_roundtrip;
          Alcotest.test_case "torn lines" `Quick test_wq_torn_lines;
          Alcotest.test_case "stale leases" `Quick test_wq_stale_leases;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "fresh run completes, resume is idempotent"
            `Quick test_campaign_fresh_and_resume;
          Alcotest.test_case "poison shard quarantined, rest complete"
            `Quick test_campaign_poison_quarantine;
          Alcotest.test_case "coordinator SIGKILL, resume without re-runs"
            `Quick test_campaign_sigkill_resume;
        ] );
    ]
