(* Supervisor and checkpoint layer: worker isolation, watchdog, retry
   with degradation, manifest durability, golden-gate comparisons. *)

module E = Runtime.Cnt_error
module S = Runtime.Supervisor
module C = Runtime.Checkpoint

let no_retry = { S.timeout_s = 30.0; retries = 0; degrade = false }

let code = Alcotest.testable (Fmt.of_to_string E.code_name) ( = )

let errcode outcome =
  match outcome.S.value with
  | Ok _ -> Alcotest.fail "expected a failed outcome"
  | Result.Error e -> e.E.code

(* --- supervisor ---------------------------------------------------- *)

let worker_roundtrip () =
  let outcome =
    S.run ~policy:no_retry ~name:"ok" (fun ~degraded:_ ->
        [ ("x", 1.5); ("y", 2.0) ])
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "scalars cross the process boundary"
    [ ("x", 1.5); ("y", 2.0) ]
    (match outcome.S.value with Ok v -> v | Result.Error _ -> []);
  Alcotest.(check int) "one attempt" 1 outcome.S.attempts;
  Alcotest.(check bool) "not degraded" false outcome.S.degraded

let worker_exception_typed () =
  let outcome =
    S.run ~policy:no_retry ~name:"raise" (fun ~degraded:_ ->
        failwith "boom in worker")
  in
  Alcotest.check code "Failure becomes a typed internal error" E.Internal
    (errcode outcome);
  Alcotest.(check int) "deterministic failures are not retried" 1
    outcome.S.attempts

let worker_sigkill () =
  let outcome =
    S.run ~policy:no_retry ~name:"killed" (fun ~degraded:_ ->
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        [])
  in
  Alcotest.check code "signal death is Worker_killed" E.Worker_killed
    (errcode outcome)

let worker_nonzero_exit () =
  let outcome =
    S.run ~policy:no_retry ~name:"exit3" (fun ~degraded:_ ->
        Unix._exit 3)
  in
  Alcotest.check code "nonzero exit is Worker_killed" E.Worker_killed
    (errcode outcome)

let worker_timeout () =
  let t0 = Unix.gettimeofday () in
  let outcome =
    S.run
      ~policy:{ S.timeout_s = 0.4; retries = 0; degrade = false }
      ~name:"hang"
      (fun ~degraded:_ ->
        Unix.sleep 30;
        [])
  in
  Alcotest.check code "watchdog fires as Worker_timeout" E.Worker_timeout
    (errcode outcome);
  Alcotest.(check bool) "the hung worker was killed promptly" true
    (Unix.gettimeofday () -. t0 < 10.0)

let degraded_retry_recovers () =
  (* First attempt dies; the retry runs with ~degraded:true and succeeds. *)
  let outcome =
    S.run
      ~policy:{ S.timeout_s = 30.0; retries = 1; degrade = true }
      ~name:"flaky"
      (fun ~degraded ->
        if not degraded then Unix.kill (Unix.getpid ()) Sys.sigkill;
        [ ("recovered", 1.0) ])
  in
  (match outcome.S.value with
  | Ok [ ("recovered", 1.0) ] -> ()
  | _ -> Alcotest.fail "expected the degraded retry to succeed");
  Alcotest.(check int) "two attempts" 2 outcome.S.attempts;
  Alcotest.(check bool) "tagged degraded" true outcome.S.degraded

let retry_budget_bounded () =
  let outcome =
    S.run
      ~policy:{ S.timeout_s = 30.0; retries = 2; degrade = true }
      ~name:"always-dies"
      (fun ~degraded:_ ->
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        [])
  in
  Alcotest.check code "still Worker_killed after the budget" E.Worker_killed
    (errcode outcome);
  Alcotest.(check int) "1 + retries attempts" 3 outcome.S.attempts

let retryable_classes () =
  Alcotest.(check bool) "timeout retryable" true
    (S.retryable (E.make E.Experiment E.Worker_timeout ""));
  Alcotest.(check bool) "killed retryable" true
    (S.retryable (E.make E.Experiment E.Worker_killed ""));
  Alcotest.(check bool) "internal not retryable" false
    (S.retryable (E.make E.Experiment E.Internal ""));
  Alcotest.(check bool) "convergence not retryable" false
    (S.retryable (E.make E.Spice E.Convergence_failure ""))

(* --- checkpoint manifest ------------------------------------------- *)

let tmpdir () = Filename.temp_file "cntpower-ckpt" "" |> fun f ->
  Sys.remove f;
  f

let sample_manifest () =
  let m = C.empty ~run_name:"test" in
  let e1 =
    C.entry ~experiment:"tgate" ~seed:42L ~patterns:1024 ~wall_time:0.5
      ~attempts:1 ~status:C.Passed
      [ ("n_configs", 8.0); ("max_drop", 0.11) ]
  in
  let e2 =
    C.entry ~experiment:"table1" ~seed:42L ~patterns:1024 ~wall_time:9.0
      ~attempts:2 ~status:C.Failed ~error:"experiment/worker-killed: boom" []
  in
  C.add (C.add m e1) e2

let manifest_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "manifest.json" in
  let m = sample_manifest () in
  (match C.save ~path m with
  | Ok () -> ()
  | Result.Error e -> Alcotest.failf "save failed: %s" (E.to_string e));
  match C.load ~path with
  | Result.Error e -> Alcotest.failf "load failed: %s" (E.to_string e)
  | Ok m' ->
      Alcotest.(check string) "run name" m.C.run_name m'.C.run_name;
      Alcotest.(check int) "entry count" 2 (List.length m'.C.entries);
      let e1 = Option.get (C.find m' "tgate") in
      Alcotest.(check (list (pair string (float 1e-12))))
        "scalars survive the round trip"
        [ ("n_configs", 8.0); ("max_drop", 0.11) ]
        e1.C.scalars;
      Alcotest.(check string) "digest preserved"
        (C.digest_scalars e1.C.scalars) e1.C.digest;
      let e2 = Option.get (C.find m' "table1") in
      Alcotest.(check bool) "failed status survives" true (e2.C.status = C.Failed);
      Alcotest.(check (option string)) "error text survives"
        (Some "experiment/worker-killed: boom") e2.C.error

let manifest_add_replaces () =
  let m = sample_manifest () in
  let e =
    C.entry ~experiment:"table1" ~seed:42L ~patterns:1024 ~wall_time:1.0
      ~attempts:1 ~status:C.Passed [ ("x", 1.0) ]
  in
  let m = C.add m e in
  Alcotest.(check int) "still two entries" 2 (List.length m.C.entries);
  Alcotest.(check bool) "replaced by the passing entry" true
    ((Option.get (C.find m "table1")).C.status = C.Passed)

let corrupt_manifest_is_typed () =
  let dir = tmpdir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "bad.json" in
  let oc = open_out path in
  output_string oc "{ \"run\": \"x\", \"entries\": [ { bogus ";
  close_out oc;
  (match C.load ~path with
  | Ok _ -> Alcotest.fail "corrupt JSON must not load"
  | Result.Error e ->
      Alcotest.check code "typed parse error" E.Parse_error e.E.code);
  match C.load ~path:(Filename.concat dir "absent.json") with
  | Ok _ -> Alcotest.fail "missing file must not load"
  | Result.Error e -> Alcotest.check code "typed io error" E.Io_error e.E.code

let json_parser_accepts_escapes () =
  match C.json_of_string "{\"a\\n\\\"b\": [1, -2.5e3, true, null, \"\\u0041\"]}" with
  | Result.Error e -> Alcotest.failf "parse failed: %s" (E.to_string e)
  | Ok (C.Obj [ (key, C.Arr [ C.Num a; C.Num b; C.Bool true; C.Null; C.Str s ]) ]) ->
      Alcotest.(check string) "escaped key" "a\n\"b" key;
      Alcotest.(check (float 0.0)) "int" 1.0 a;
      Alcotest.(check (float 0.0)) "exp" (-2500.0) b;
      Alcotest.(check string) "unicode escape" "A" s
  | Ok _ -> Alcotest.fail "unexpected shape"

(* --- golden gate --------------------------------------------------- *)

let golden_pass_and_drift () =
  let m = sample_manifest () in
  let golden = C.golden_of_manifest ~rtol:0.1 ~experiments:[ "tgate" ] m in
  Alcotest.(check int) "failed entries excluded" 2 (List.length golden);
  let exact =
    List.find (fun g -> g.C.g_metric = "n_configs") golden
  in
  Alcotest.(check (float 0.0)) "integral metrics pinned exactly" 0.0
    exact.C.g_rtol;
  Alcotest.(check int) "clean manifest passes" 0
    (List.length (C.check_golden m golden));
  (* Within tolerance: max_drop 0.11 -> 0.115 at rtol 0.1 passes. *)
  let nudged =
    C.add m
      (C.entry ~experiment:"tgate" ~seed:42L ~patterns:1024 ~wall_time:0.5
         ~attempts:1 ~status:C.Passed
         [ ("n_configs", 8.0); ("max_drop", 0.115) ])
  in
  Alcotest.(check int) "drift inside rtol passes" 0
    (List.length (C.check_golden nudged golden));
  (* Outside tolerance on the float, and any change on the exact count. *)
  let drifted =
    C.add m
      (C.entry ~experiment:"tgate" ~seed:42L ~patterns:1024 ~wall_time:0.5
         ~attempts:1 ~status:C.Passed
         [ ("n_configs", 9.0); ("max_drop", 0.2) ])
  in
  Alcotest.(check int) "both metrics drift" 2
    (List.length (C.check_golden drifted golden));
  (* A golden metric with no manifest entry is a drift with no actual. *)
  let missing =
    C.check_golden (C.empty ~run_name:"empty") golden
  in
  Alcotest.(check int) "missing entries drift" 2 (List.length missing);
  List.iter
    (fun d -> Alcotest.(check bool) "no actual value" true (d.C.d_actual = None))
    missing

let golden_file_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "golden.json" in
  let golden = C.golden_of_manifest (sample_manifest ()) in
  (match C.save_golden ~path golden with
  | Ok () -> ()
  | Result.Error e -> Alcotest.failf "save failed: %s" (E.to_string e));
  match C.load_golden ~path with
  | Result.Error e -> Alcotest.failf "load failed: %s" (E.to_string e)
  | Ok golden' ->
      Alcotest.(check int) "metric count" (List.length golden)
        (List.length golden');
      List.iter2
        (fun g g' ->
          Alcotest.(check string) "metric name" g.C.g_metric g'.C.g_metric;
          Alcotest.(check (float 0.0)) "value exact" g.C.g_value g'.C.g_value;
          Alcotest.(check (float 0.0)) "rtol exact" g.C.g_rtol g'.C.g_rtol)
        golden golden'

let () =
  Alcotest.run "supervisor"
    [
      ( "supervisor",
        [
          Alcotest.test_case "worker result roundtrip" `Quick worker_roundtrip;
          Alcotest.test_case "exception becomes typed error" `Quick
            worker_exception_typed;
          Alcotest.test_case "SIGKILL is Worker_killed" `Quick worker_sigkill;
          Alcotest.test_case "nonzero exit is Worker_killed" `Quick
            worker_nonzero_exit;
          Alcotest.test_case "watchdog timeout" `Quick worker_timeout;
          Alcotest.test_case "degraded retry recovers" `Quick
            degraded_retry_recovers;
          Alcotest.test_case "retry budget bounded" `Quick retry_budget_bounded;
          Alcotest.test_case "retryable classes" `Quick retryable_classes;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "manifest roundtrip" `Quick manifest_roundtrip;
          Alcotest.test_case "add replaces" `Quick manifest_add_replaces;
          Alcotest.test_case "corrupt manifest typed" `Quick
            corrupt_manifest_is_typed;
          Alcotest.test_case "json escapes" `Quick json_parser_accepts_escapes;
        ] );
      ( "golden",
        [
          Alcotest.test_case "pass and drift" `Quick golden_pass_and_drift;
          Alcotest.test_case "file roundtrip" `Quick golden_file_roundtrip;
        ] );
    ]
