(* Metrics snapshots: telemetry merge semantics, JSON round-trip,
   atomic save/load, hit ratios, and the Prometheus text rendering. *)

module M = Runtime.Metrics
module T = Runtime.Telemetry
module E = Runtime.Cnt_error

let temp_dir prefix =
  let d = Filename.temp_file prefix ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_telemetry f () =
  T.set_enabled true;
  T.reset ();
  Fun.protect ~finally:(fun () -> T.set_enabled false) f

(* --- make: merge semantics ----------------------------------------- *)

let telemetry_counters_fold_in =
  with_telemetry (fun () ->
      T.count "solver.iterations" 7;
      T.observe "request_wall_s" 0.25;
      T.observe "request_wall_s" 0.75;
      let m =
        M.make ~source:"test" ~started:(Unix.gettimeofday () -. 5.0) ()
      in
      Alcotest.(check string) "source" "test" m.M.m_source;
      Alcotest.(check bool) "uptime anchored" true (m.M.m_uptime_s >= 4.0);
      Alcotest.(check (option int)) "telemetry counter present" (Some 7)
        (List.assoc_opt "solver.iterations" m.M.m_counters);
      match List.assoc_opt "request_wall_s" m.M.m_dists with
      | None -> Alcotest.fail "telemetry dist missing"
      | Some d ->
          Alcotest.(check int) "dist count" 2 d.M.m_count;
          Alcotest.(check (float 1e-9)) "dist sum" 1.0 d.M.m_sum;
          Alcotest.(check (float 1e-9)) "dist max" 0.75 d.M.m_max)

let caller_counters_override =
  with_telemetry (fun () ->
      (* The server bumps both its own mutable state and a telemetry
         counter under the same name; the snapshot must not double
         count — the caller's lifecycle total is authoritative. *)
      T.count "serve.served" 3;
      T.count "serve.only_telemetry" 2;
      let m =
        M.make ~source:"serve" ~started:0.0
          ~counters:[ ("serve.served", 10) ]
          ()
      in
      Alcotest.(check (option int)) "caller total wins" (Some 10)
        (List.assoc_opt "serve.served" m.M.m_counters);
      Alcotest.(check (option int)) "telemetry-only counter kept" (Some 2)
        (List.assoc_opt "serve.only_telemetry" m.M.m_counters);
      Alcotest.(check int) "no duplicate rows" 1
        (List.length
           (List.filter (fun (k, _) -> k = "serve.served") m.M.m_counters)))

let disabled_telemetry_contributes_nothing () =
  T.set_enabled false;
  let m =
    M.make ~source:"test" ~started:0.0
      ~gauges:[ ("depth", 4.0) ]
      ~counters:[ ("served", 1) ]
      ()
  in
  Alcotest.(check int) "only caller counters" 1 (List.length m.M.m_counters);
  Alcotest.(check int) "no dists" 0 (List.length m.M.m_dists);
  Alcotest.(check (option (float 0.0))) "gauges kept" (Some 4.0)
    (List.assoc_opt "depth" m.M.m_gauges)

(* --- hit ratios ---------------------------------------------------- *)

let hit_ratios_from_pairs () =
  T.set_enabled false;
  let m =
    M.make ~source:"test" ~started:0.0
      ~counters:
        [
          ("cache.matchlib.hits", 9);
          ("cache.matchlib.misses", 1);
          ("cache.cold.hits", 0);
          ("cache.cold.misses", 0);
          ("orphan.hits", 5);
        ]
      ()
  in
  let ratios = M.hit_ratios m in
  (match List.find_opt (fun (b, _, _, _) -> b = "cache.matchlib") ratios with
  | None -> Alcotest.fail "matchlib pair missing"
  | Some (_, r, h, mi) ->
      Alcotest.(check (float 1e-9)) "ratio" 0.9 r;
      Alcotest.(check int) "hits" 9 h;
      Alcotest.(check int) "misses" 1 mi);
  Alcotest.(check bool) "0/0 pair omitted" true
    (not (List.exists (fun (b, _, _, _) -> b = "cache.cold") ratios));
  Alcotest.(check bool) "hits without misses is not a pair" true
    (not (List.exists (fun (b, _, _, _) -> b = "orphan") ratios))

(* --- serialization ------------------------------------------------- *)

let sample () =
  T.set_enabled false;
  M.make ~source:"campaign" ~started:0.0
    ~gauges:[ ("workers_busy", 3.0); ("queue_depth", 12.0) ]
    ~counters:[ ("campaign.done", 41); ("campaign.failed", 2) ]
    ()

let json_roundtrip () =
  let m = sample () in
  match M.of_json (M.to_json m) with
  | Result.Error e -> Alcotest.failf "of_json: %s" (E.to_string e)
  | Ok back ->
      Alcotest.(check string) "source survives" m.M.m_source back.M.m_source;
      Alcotest.(check (option (float 1e-9))) "gauge survives" (Some 3.0)
        (List.assoc_opt "workers_busy" back.M.m_gauges);
      Alcotest.(check (option int)) "counter survives" (Some 41)
        (List.assoc_opt "campaign.done" back.M.m_counters)

let save_load_roundtrip () =
  let dir = temp_dir "metrics" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Filename.concat dir "metrics.json" in
      E.get_exn (M.save ~path (sample ()));
      (* Atomic write convention: no temp-file residue next to it. *)
      Alcotest.(check bool) "no temp residue" true
        (Array.for_all
           (fun f -> f = "metrics.json")
           (Sys.readdir dir));
      match M.load ~path with
      | Ok m ->
          Alcotest.(check (option int)) "loaded counter" (Some 2)
            (List.assoc_opt "campaign.failed" m.M.m_counters)
      | Result.Error e -> Alcotest.failf "load: %s" (E.to_string e))

let load_missing_is_typed () =
  match M.load ~path:"/nonexistent/metrics.json" with
  | Ok _ -> Alcotest.fail "loaded metrics from nowhere"
  | Result.Error e ->
      Alcotest.(check bool) "typed io error" true (e.E.code = E.Io_error)

(* --- prometheus ---------------------------------------------------- *)

let prometheus_shape =
  with_telemetry (fun () ->
      T.observe "serve.request_wall_s" 0.5;
      let m =
        M.make ~source:"serve" ~started:0.0
          ~gauges:[ ("queue_depth", 2.0) ]
          ~counters:[ ("serve.served", 41) ]
          ()
      in
      let text = M.to_prometheus m in
      let lines = String.split_on_char '\n' text in
      let has p = List.exists (fun l -> l = p) lines in
      let has_prefix p =
        List.exists
          (fun l ->
            String.length l >= String.length p
            && String.sub l 0 (String.length p) = p)
          lines
      in
      Alcotest.(check bool) "ends with newline" true
        (String.length text > 0 && text.[String.length text - 1] = '\n');
      Alcotest.(check bool) "counter TYPE line" true
        (has "# TYPE cntpower_serve_served_total counter");
      Alcotest.(check bool) "counter sample" true
        (has "cntpower_serve_served_total 41");
      Alcotest.(check bool) "gauge sample" true
        (has "cntpower_queue_depth 2");
      Alcotest.(check bool) "summary TYPE line" true
        (has "# TYPE cntpower_serve_request_wall_s summary");
      Alcotest.(check bool) "p50 quantile series" true
        (has_prefix "cntpower_serve_request_wall_s{quantile=\"0.5\"}");
      Alcotest.(check bool) "summary count series" true
        (has_prefix "cntpower_serve_request_wall_s_count");
      (* Metric names must stay inside [a-zA-Z0-9_:] — dots sanitized. *)
      List.iter
        (fun l ->
          if String.length l > 0 && l.[0] <> '#' then
            let name =
              match String.index_opt l '{' with
              | Some i -> String.sub l 0 i
              | None -> (
                  match String.index_opt l ' ' with
                  | Some i -> String.sub l 0 i
                  | None -> l)
            in
            String.iter
              (fun c ->
                let ok =
                  (c >= 'a' && c <= 'z')
                  || (c >= 'A' && c <= 'Z')
                  || (c >= '0' && c <= '9')
                  || c = '_' || c = ':'
                in
                if not ok then
                  Alcotest.failf "bad char %C in metric name %S" c name)
              name)
        lines)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "metrics"
    [
      ( "make",
        [
          tc "telemetry counters and dists fold in" telemetry_counters_fold_in;
          tc "caller counters override telemetry" caller_counters_override;
          tc "disabled telemetry contributes nothing"
            disabled_telemetry_contributes_nothing;
        ] );
      ( "ratios", [ tc "hit ratios from counter pairs" hit_ratios_from_pairs ] );
      ( "serialization",
        [
          tc "json round-trip" json_roundtrip;
          tc "atomic save/load round-trip" save_load_roundtrip;
          tc "load of missing file is typed" load_missing_is_typed;
        ] );
      ( "prometheus", [ tc "text exposition shape" prometheus_shape ] );
    ]
