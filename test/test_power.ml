module P = Power.Pattern
module L = Power.Leakage
module Act = Power.Activity
module PM = Power.Powermodel
module Char = Power.Characterize
module N = Cell.Network
module Cells = Cell.Cells
module T = Logic.Truthtable

let pattern = Alcotest.testable P.pp P.equal

(* ------------------------------------------------------------------ *)
(* Pattern *)

let nor3_patterns () =
  (* Fig. 4: NOR3 at [0 0 0] leaves three parallel off devices; at [1 1 1]
     the pull-up series stack is off. *)
  let nor3 = Cells.find "NOR3" in
  let gp = P.analyze nor3.Cells.ambipolar ~pins:3 in
  Alcotest.check pattern "input 000" (P.Unit 3) gp.P.off_pattern.(0);
  Alcotest.check pattern "input 111"
    (P.Series [ P.Unit 1; P.Unit 1; P.Unit 1 ])
    gp.P.off_pattern.(7)

let nor3_vector_sharing () =
  (* The paper's example: [1 1 0] and [1 0 1] generate the same pattern. *)
  let nor3 = Cells.find "NOR3" in
  let gp = P.analyze nor3.Cells.ambipolar ~pins:3 in
  (* vector encoding: bit i = input i; [1 1 0] = A=1 B=1 C=0 = 0b011 *)
  Alcotest.check pattern "110 = 101" gp.P.off_pattern.(0b011) gp.P.off_pattern.(0b101)

let inverter_pattern_is_unit () =
  let inv = Cells.inverter in
  let gp = P.analyze inv.Cells.ambipolar ~pins:1 in
  Alcotest.check pattern "v=0" (P.Unit 1) gp.P.off_pattern.(0);
  Alcotest.check pattern "v=1" (P.Unit 1) gp.P.off_pattern.(1)

let canonicalization () =
  (* Nested/parallel structures normalize: parallel units merge, nesting
     flattens, order is canonical. *)
  let env _ = false in
  let net =
    N.Par
      [
        N.Dev (N.Fixed_n (N.sig_ 0));
        N.Par [ N.Dev (N.Fixed_n (N.sig_ 1)); N.Dev (N.Fixed_n (N.sig_ 2)) ];
      ]
  in
  match P.of_network net env with
  | Some p -> Alcotest.check pattern "merged units" (P.Unit 3) p
  | None -> Alcotest.fail "expected a pattern"

let on_network_has_no_pattern () =
  let env _ = true in
  let net = N.Dev (N.Fixed_n (N.sig_ 0)) in
  Alcotest.(check bool) "conducting network reduces to short" true
    (P.of_network net env = None)

let shorted_parallel_branch_removed () =
  (* An off device in parallel with an on device disappears (the paper's
     "off-transistors shorted by parallel on-transistors are removed"). *)
  let env i = i = 0 in
  let net =
    N.Ser
      [
        N.Par [ N.Dev (N.Fixed_n (N.sig_ 0)); N.Dev (N.Fixed_n (N.sig_ 1)) ];
        N.Dev (N.Fixed_n (N.sig_ 2));
      ]
  in
  match P.of_network net env with
  | Some p -> Alcotest.check pattern "only the series off remains" (P.Unit 1) p
  | None -> Alcotest.fail "expected a pattern"

let tgate_off_is_two_units () =
  let env _ = false in
  let net = N.Dev (N.Tgate (N.sig_ 0, N.sig_ 1)) in
  match P.of_network net env with
  | Some p -> Alcotest.check pattern "tgate off" (P.Unit 2) p
  | None -> Alcotest.fail "expected a pattern"

let census_is_26 () =
  Alcotest.(check int) "26 distinct patterns" 26
    (List.length (Char.pattern_census_all ()))

let device_counts_consistent () =
  List.iter
    (fun (c : Cells.t) ->
      let gp = P.analyze c.Cells.ambipolar ~pins:c.Cells.pins in
      let expected = N.impl_transistors c.Cells.ambipolar in
      Array.iteri
        (fun v on ->
          Alcotest.(check int)
            (Printf.sprintf "%s v=%d device balance" c.Cells.name v)
            expected
            (on + gp.P.off_devices.(v)
            (* inverters were counted once in on and once in off; they
               contribute 2 transistors to the impl count *)))
        gp.P.on_devices)
    Cells.all

(* ------------------------------------------------------------------ *)
(* Leakage *)

let unit_leakage_matches_tech () =
  L.clear_cache ();
  let i = L.pattern_ioff Spice.Tech.cmos (P.Unit 1) in
  let expected = Spice.Tech.cmos.Spice.Tech.ioff_unit in
  Alcotest.(check bool)
    (Printf.sprintf "unit %.3g ~ %.3g" i expected)
    true
    (abs_float (i -. expected) /. expected < 0.02)

let parallel_scales_linearly () =
  let u = L.pattern_ioff Spice.Tech.cmos (P.Unit 1) in
  let u3 = L.pattern_ioff Spice.Tech.cmos (P.Unit 3) in
  Alcotest.(check bool) "3x" true (abs_float (u3 -. (3.0 *. u)) /. u < 0.05)

let series_divides () =
  let u = L.pattern_ioff Spice.Tech.cmos (P.Unit 1) in
  let s2 = L.pattern_ioff Spice.Tech.cmos (P.Series [ P.Unit 1; P.Unit 1 ]) in
  Alcotest.(check bool) "stack leaks less" true (s2 < u && s2 > 0.0)

let empty_pattern_no_leak () =
  Alcotest.(check (float 0.0)) "unit 0" 0.0 (L.pattern_ioff Spice.Tech.cmos (P.Unit 0))

let cache_saves_solves () =
  L.clear_cache ();
  ignore (L.pattern_ioff Spice.Tech.cmos (P.Unit 2));
  ignore (L.pattern_ioff Spice.Tech.cmos (P.Unit 2));
  ignore (L.pattern_ioff Spice.Tech.cmos (P.Unit 2));
  let stats = L.cache_stats () in
  Alcotest.(check int) "one entry" 1 stats.L.entries;
  Alcotest.(check int) "one miss" 1 stats.L.misses;
  Alcotest.(check int) "two hits" 2 stats.L.hits;
  Alcotest.(check (float 1e-9)) "hit ratio" (2.0 /. 3.0) (L.hit_ratio stats)

let hit_ratio_zero_lookups () =
  (* A fresh cache has no lookups: the ratio must be a defined 0.0, not a
     0/0 NaN that poisons downstream telemetry. *)
  L.clear_cache ();
  let stats = L.cache_stats () in
  Alcotest.(check int) "no hits" 0 stats.L.hits;
  Alcotest.(check int) "no misses" 0 stats.L.misses;
  Alcotest.(check (float 0.0)) "ratio defined at 0/0" 0.0
    (L.hit_ratio stats)

let classification_matches_brute_force () =
  (* A1: for a few gates, per-vector leakage computed through pattern
     classification equals direct per-vector DC simulation of the full off
     network (which is what classification avoids). *)
  let tech = Spice.Tech.cntfet in
  List.iter
    (fun name ->
      let cell = Cells.find name in
      let gp = P.analyze cell.Cells.ambipolar ~pins:cell.Cells.pins in
      let fast = L.gate_ioff tech gp in
      (* Brute force: re-solve each vector's pattern without the cache. *)
      Array.iteri
        (fun v p ->
          L.clear_cache ();
          let direct =
            L.pattern_ioff tech p
            +. (float_of_int gp.P.extra_unit_offs *. L.pattern_ioff tech (P.Unit 1))
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s v=%d" name v)
            true
            (abs_float (direct -. fast.(v)) <= 1e-15))
        gp.P.off_pattern)
    [ "NAND2"; "NOR3"; "GNAND2"; "XOR2"; "AOI21" ]

(* ------------------------------------------------------------------ *)
(* Activity *)

let paper_activity_factors () =
  let alpha name = Act.gate_alpha (Cells.tt (Cells.find name)) in
  Alcotest.(check (float 1e-9)) "NAND2" 0.25 (alpha "NAND2");
  Alcotest.(check (float 1e-9)) "NOR2" 0.25 (alpha "NOR2");
  Alcotest.(check (float 1e-9)) "NAND3" 0.125 (alpha "NAND3");
  Alcotest.(check (float 1e-9)) "XOR2" 0.5 (alpha "XOR2");
  Alcotest.(check (float 1e-9)) "XNOR2" 0.5 (alpha "XNOR2");
  Alcotest.(check (float 1e-9)) "XOR3" 0.5 (alpha "XOR3");
  Alcotest.(check (float 1e-9)) "INV" 0.5 (alpha "INV")

let toggle_alpha_values () =
  Alcotest.(check (float 1e-9)) "xor toggle" 0.5 (Act.toggle_alpha (Cells.tt (Cells.find "XOR2")));
  Alcotest.(check (float 1e-9)) "nand toggle" 0.375
    (Act.toggle_alpha (Cells.tt (Cells.find "NAND2")))

let embedding_xor_does_not_raise_alpha () =
  (* The paper's observation: GNAND2 has the same output distribution as
     NAND2, so embedding the XOR costs no activity. *)
  let alpha name = Act.gate_alpha (Cells.tt (Cells.find name)) in
  Alcotest.(check (float 1e-9)) "GNAND2 = NAND2" (alpha "NAND2") (alpha "GNAND2");
  Alcotest.(check (float 1e-9)) "GNOR2 = NOR2" (alpha "NOR2") (alpha "GNOR2");
  Alcotest.(check (float 1e-9)) "GAOI21 = AOI21" (alpha "AOI21") (alpha "GAOI21")

(* ------------------------------------------------------------------ *)
(* Powermodel *)

let equations () =
  let vdd = 0.9 in
  let pd = PM.dynamic ~alpha:0.25 ~c_load:100e-18 ~f:1e9 ~vdd () in
  Alcotest.(check bool) "pd" true (abs_float (pd -. (0.25 *. 100e-18 *. 1e9 *. 0.81)) < 1e-15);
  Alcotest.(check bool) "psc = 0.15 pd" true
    (abs_float (PM.short_circuit_of_dynamic pd -. (0.15 *. pd)) < 1e-18);
  Alcotest.(check bool) "ps" true (abs_float (PM.static_power ~ioff:2e-9 ~vdd -. 1.8e-9) < 1e-15);
  let c = PM.make ~alpha:0.25 ~c_load:100e-18 ~ioff:2e-9 ~ig:1e-10 ~vdd () in
  Alcotest.(check bool) "total" true
    (abs_float (PM.total c -. (c.PM.dynamic +. c.PM.short_circuit +. c.PM.static +. c.PM.gate_leak))
    < 1e-18)

let edp_matches_table1_formula () =
  (* Check against a row of the paper: C2670 CMOS, PT = 25.42 uW,
     delay = 320 ps -> EDP = 8.13e-24. *)
  let edp = PM.edp ~total_power:25.42e-6 ~delay:320e-12 () in
  Alcotest.(check bool) (Printf.sprintf "edp %.3g" edp) true
    (abs_float (edp -. 8.13e-24) /. 8.13e-24 < 0.01)

(* ------------------------------------------------------------------ *)
(* Characterize *)

let characterization_sane () =
  let lc = Char.characterize Cell.Genlib.generalized_cntfet in
  Alcotest.(check int) "all gates" 46 (List.length lc.Char.gates);
  List.iter
    (fun (g : Char.gate_char) ->
      Alcotest.(check bool) "alpha in (0, 0.5]" true (g.Char.alpha > 0.0 && g.Char.alpha <= 0.5);
      Alcotest.(check bool) "positive power" true (PM.total g.Char.power > 0.0);
      Alcotest.(check bool) "ioff positive" true (g.Char.avg_ioff > 0.0))
    lc.Char.gates;
  Alcotest.(check int) "26 patterns in generalized lib" 26 lc.Char.pattern_count

let saving_vs_cmos_in_band () =
  let gen = Char.characterize Cell.Genlib.generalized_cntfet in
  let cmos = Char.characterize Cell.Genlib.cmos in
  let saving = Char.compare_totals gen cmos in
  (* Paper: 28 %. Accept the 20-45 % band for the reproduction. *)
  Alcotest.(check bool) (Printf.sprintf "saving %.1f%%" (saving *. 100.0)) true
    (saving > 0.20 && saving < 0.45)

let static_order_of_magnitude () =
  let gen = Char.characterize Cell.Genlib.generalized_cntfet in
  let cmos = Char.characterize Cell.Genlib.cmos in
  let ratio = cmos.Char.avg_static /. gen.Char.avg_static in
  Alcotest.(check bool) (Printf.sprintf "ratio %.1f" ratio) true (ratio > 5.0 && ratio < 20.0)

let gate_leak_shares () =
  let gen = Char.characterize Cell.Genlib.generalized_cntfet in
  let cmos = Char.characterize Cell.Genlib.cmos in
  Alcotest.(check bool) "cmos PG ~ 10% PS" true
    (cmos.Char.avg_gate_leak /. cmos.Char.avg_static > 0.05
    && cmos.Char.avg_gate_leak /. cmos.Char.avg_static < 0.2);
  Alcotest.(check bool) "cntfet PG < 1% PS" true
    (gen.Char.avg_gate_leak /. gen.Char.avg_static < 0.01)

let inverter_caps () =
  Alcotest.(check (float 1e-21)) "cntfet 36aF" 36e-18
    (Spice.Tech.inverter_input_cap Spice.Tech.cntfet);
  Alcotest.(check (float 1e-21)) "cmos 52aF" 52e-18
    (Spice.Tech.inverter_input_cap Spice.Tech.cmos)

(* qcheck: random pattern trees obey leakage physics. *)
let qcheck_pattern_gen =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then map (fun k -> P.Unit (1 + k)) (int_bound 2)
    else
      frequency
        [
          (3, map (fun k -> P.Unit (1 + k)) (int_bound 2));
          (2, map (fun parts -> P.Series parts) (list_size (int_range 2 3) (gen (depth - 1))));
          (2, map (fun parts -> P.Parallel parts) (list_size (int_range 2 3) (gen (depth - 1))));
        ]
  in
  gen 2

let leakage_positive =
  QCheck.Test.make ~count:60 ~name:"pattern leakage is positive and bounded"
    (QCheck.make qcheck_pattern_gen)
    (fun p ->
      let i = L.pattern_ioff Spice.Tech.cntfet p in
      (* No pattern can leak more than all its devices in parallel. *)
      let rec max_units = function
        | P.Unit k -> k
        | P.Series parts | P.Parallel parts ->
            List.fold_left (fun acc q -> acc + max_units q) 0 parts
      in
      let bound =
        float_of_int (max_units p) *. Spice.Tech.cntfet.Spice.Tech.ioff_unit *. 1.05
      in
      i > 0.0 && i <= bound)

let leakage_parallel_monotone =
  QCheck.Test.make ~count:40 ~name:"adding a parallel branch increases leakage"
    (QCheck.make qcheck_pattern_gen)
    (fun p ->
      let i = L.pattern_ioff Spice.Tech.cntfet p in
      let bigger = L.pattern_ioff Spice.Tech.cntfet (P.Parallel [ p; P.Unit 1 ]) in
      bigger > i)

let leakage_series_monotone =
  QCheck.Test.make ~count:40 ~name:"adding a series device decreases leakage"
    (QCheck.make qcheck_pattern_gen)
    (fun p ->
      let i = L.pattern_ioff Spice.Tech.cntfet p in
      let smaller = L.pattern_ioff Spice.Tech.cntfet (P.Series [ p; P.Unit 1 ]) in
      smaller < i +. 1e-18)

let () =
  Alcotest.run "power"
    [
      ( "pattern",
        [
          Alcotest.test_case "nor3 fig4" `Quick nor3_patterns;
          Alcotest.test_case "nor3 vector sharing" `Quick nor3_vector_sharing;
          Alcotest.test_case "inverter unit" `Quick inverter_pattern_is_unit;
          Alcotest.test_case "canonicalization" `Quick canonicalization;
          Alcotest.test_case "on network" `Quick on_network_has_no_pattern;
          Alcotest.test_case "shorted branch removed" `Quick shorted_parallel_branch_removed;
          Alcotest.test_case "tgate off" `Quick tgate_off_is_two_units;
          Alcotest.test_case "census = 26" `Quick census_is_26;
          Alcotest.test_case "device counts" `Quick device_counts_consistent;
        ] );
      ( "leakage",
        [
          Alcotest.test_case "unit matches tech" `Quick unit_leakage_matches_tech;
          Alcotest.test_case "parallel linear" `Quick parallel_scales_linearly;
          Alcotest.test_case "series divides" `Quick series_divides;
          Alcotest.test_case "empty pattern" `Quick empty_pattern_no_leak;
          Alcotest.test_case "cache saves solves" `Quick cache_saves_solves;
          Alcotest.test_case "hit ratio with zero lookups" `Quick
            hit_ratio_zero_lookups;
          Alcotest.test_case "classification = brute force" `Slow classification_matches_brute_force;
        ] );
      ( "leakage-properties",
        List.map QCheck_alcotest.to_alcotest
          [ leakage_positive; leakage_parallel_monotone; leakage_series_monotone ] );
      ( "activity",
        [
          Alcotest.test_case "paper values" `Quick paper_activity_factors;
          Alcotest.test_case "toggle defn" `Quick toggle_alpha_values;
          Alcotest.test_case "xor embedding free" `Quick embedding_xor_does_not_raise_alpha;
        ] );
      ( "powermodel",
        [
          Alcotest.test_case "equations" `Quick equations;
          Alcotest.test_case "edp table1 formula" `Quick edp_matches_table1_formula;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "library sane" `Slow characterization_sane;
          Alcotest.test_case "saving vs cmos" `Slow saving_vs_cmos_in_band;
          Alcotest.test_case "static order of magnitude" `Slow static_order_of_magnitude;
          Alcotest.test_case "gate leak shares" `Slow gate_leak_shares;
          Alcotest.test_case "inverter caps" `Quick inverter_caps;
        ] );
    ]
