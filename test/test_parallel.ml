(* Domain-parallel simulation: the pool's work-sharing contract, the
   PRNG jump that splits the stimulus stream, and — the property the
   whole tentpole rests on — bit-identical simulation results for any
   domain count, on both the netlist and the mapped-cell kernels. *)

module B = Logic.Bitvec
module P = Logic.Prng
module D = Runtime.Dpool
module T = Runtime.Telemetry
module Sim = Nets.Sim

let tc = Alcotest.test_case

(* --- Dpool --------------------------------------------------------- *)

let pool_covers_all_units () =
  List.iter
    (fun (units, domains) ->
      let seen = Array.make (max 1 units) 0 in
      let stats =
        D.run ~domains ~min_units_per_domain:1 ~units (fun ~worker:_ ~lo ~len ->
            for u = lo to lo + len - 1 do
              seen.(u) <- seen.(u) + 1
            done)
      in
      if units > 0 then
        Array.iteri
          (fun u n ->
            Alcotest.(check int) (Printf.sprintf "unit %d once" u) 1 n)
          (Array.sub seen 0 units);
      Alcotest.(check int) "per-worker units sum"
        units
        (Array.fold_left ( + ) 0 stats.D.units))
    [ (0, 4); (1, 4); (7, 2); (64, 4); (1000, 3); (1000, 1) ]

let pool_small_work_is_sequential () =
  let stats =
    D.run ~domains:4 ~min_units_per_domain:256 ~units:100
      (fun ~worker ~lo:_ ~len:_ -> Alcotest.(check int) "worker 0" 0 worker)
  in
  Alcotest.(check int) "one domain" 1 stats.D.domains_used

let pool_propagates_exception () =
  Alcotest.check_raises "re-raised" (Failure "boom") (fun () ->
      ignore
        (D.run ~domains:2 ~min_units_per_domain:1 ~units:64
           (fun ~worker:_ ~lo ~len:_ -> if lo = 0 then failwith "boom")))

let pool_default_respects_env () =
  (* set_default overrides everything; None falls back to env/auto. *)
  D.set_default (Some 3);
  Alcotest.(check int) "configured" 3 (D.default_domains ());
  D.set_default None;
  Alcotest.(check bool) "auto >= 1" true (D.default_domains () >= 1)

(* CNTPOWER_DOMAINS validation runs in a forked child so the parent's
   environment (and the other env-sensitive tests) stay untouched —
   [Unix.putenv] has no inverse. These tests are registered BEFORE any
   pool test: OCaml 5 forbids [Unix.fork] once a domain has ever been
   spawned, and the pool tests spawn domains. *)
let in_child f =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 -> ( try Unix._exit (if f () then 0 else 1) with _ -> Unix._exit 2)
  | pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> true
      | _ -> false)

let env_domains_validation () =
  List.iter
    (fun (value, expect_ok) ->
      Alcotest.(check bool)
        (Printf.sprintf "CNTPOWER_DOMAINS=%S" value)
        true
        (in_child (fun () ->
             Unix.putenv D.env_var value;
             match D.env_domains_checked () with
             | Ok (Some n) -> expect_ok && n >= 1
             | Ok None -> false (* set but reported unset *)
             | Error msg ->
                 (* reject with a diagnostic that names the variable *)
                 let contains hay needle =
                   let nh = String.length hay and nn = String.length needle in
                   let rec go i =
                     i + nn <= nh
                     && (String.sub hay i nn = needle || go (i + 1))
                   in
                   go 0
                 in
                 (not expect_ok) && contains msg D.env_var)))
    [
      ("4", true);
      ("1", true);
      ("banana", false);
      ("0", false);
      ("-2", false);
      ("", false);
      ("999", false);
    ]

let env_domains_unset_is_none () =
  (* In this suite nothing sets the variable in the parent, so checked ()
     must report "unset" rather than an error or a phantom value. *)
  match Sys.getenv_opt D.env_var with
  | Some _ -> () (* ambient CI value: covered by the cases above *)
  | None ->
      Alcotest.(check bool)
        "unset -> Ok None" true
        (D.env_domains_checked () = Ok None)

let env_garbage_warns_and_falls_back () =
  Alcotest.(check bool)
    "garbage ignored with usable fallback" true
    (in_child (fun () ->
         Unix.putenv D.env_var "garbage";
         D.set_default None;
         D.default_domains () >= 1))

let env_valid_value_is_used () =
  Alcotest.(check bool)
    "valid env value selects domain count" true
    (in_child (fun () ->
         Unix.putenv D.env_var "3";
         D.set_default None;
         D.default_domains () = 3))

let pool_merges_worker_telemetry () =
  let was = T.enabled () in
  T.set_enabled true;
  T.reset ();
  ignore
    (D.run ~domains:4 ~min_units_per_domain:1 ~units:100
       (fun ~worker:_ ~lo:_ ~len -> T.count "test.pool.units" len));
  let prof = T.snapshot () in
  T.set_enabled was;
  Alcotest.(check (option int))
    "counts from every domain merged" (Some 100)
    (T.find_counter prof "test.pool.units")

(* --- Prng.jump ----------------------------------------------------- *)

let jump_matches_sequential () =
  let a = P.create 99L in
  for _ = 1 to 1000 do
    ignore (P.next64 a)
  done;
  let b = P.create 99L in
  P.jump b 1000;
  Alcotest.(check int64) "1000-draw jump" (P.next64 a) (P.next64 b);
  let c = P.create 99L in
  P.jump c 0;
  let d = P.create 99L in
  Alcotest.(check int64) "0-draw jump" (P.next64 d) (P.next64 c)

let stimulus_matches_sequential_fill () =
  List.iter
    (fun (inputs, patterns) ->
      let rng = P.create 42L in
      let expected =
        Array.init inputs (fun _ ->
            let v = B.create patterns in
            B.fill_random rng v;
            v)
      in
      List.iter
        (fun domains ->
          let got =
            Sim.random_stimulus ~domains ~seed:42L ~inputs ~patterns ()
          in
          Array.iteri
            (fun i v ->
              Alcotest.(check bool)
                (Printf.sprintf "input %d, %d domains" i domains)
                true (B.equal expected.(i) v))
            got)
        [ 1; 2; 4 ])
    [ (1, 64); (3, 1000); (5, 20000) ]

(* --- bit-exact parallel simulation --------------------------------- *)

let mult8 = lazy (Circuits.Multiplier.generate ~width:8)

let run_random_deterministic_across_domains () =
  let nl = Lazy.force mult8 in
  let reference = Sim.run_random ~domains:1 ~seed:7L nl 50_000 in
  List.iter
    (fun domains ->
      let r = Sim.run_random ~domains ~seed:7L nl 50_000 in
      Alcotest.(check int) "patterns" reference.Sim.num_patterns r.Sim.num_patterns;
      Array.iteri
        (fun id v ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d, %d domains" id domains)
            true
            (B.equal reference.Sim.node_values.(id) v))
        r.Sim.node_values)
    [ 2; 4 ]

let mapped_mult4 =
  lazy
    (let nl = Circuits.Multiplier.generate ~width:4 in
     let aig = Aigs.Opt.resyn2rs (Aigs.Aig.of_netlist nl) in
     let ml = Techmap.Matchlib.build ~cache:false Cell.Genlib.generalized_cntfet in
     (nl, Techmap.Mapper.map ml aig))

let mapped_simulate_deterministic_across_domains () =
  let _, mapped = Lazy.force mapped_mult4 in
  (* 70 K patterns = ~1100 words: enough for the pool to actually split
     across 4 domains (256-word minimum share). *)
  let stimulus =
    Sim.random_stimulus ~domains:1 ~seed:11L
      ~inputs:(Array.length mapped.Techmap.Mapped.pi_nets) ~patterns:70_000 ()
  in
  let reference = Techmap.Mapped.simulate ~domains:1 mapped stimulus in
  List.iter
    (fun domains ->
      let values = Techmap.Mapped.simulate ~domains mapped stimulus in
      Array.iteri
        (fun net v ->
          Alcotest.(check bool)
            (Printf.sprintf "net %d, %d domains" net domains)
            true
            (B.equal reference.(net) v))
        values)
    [ 2; 4 ]

let mapped_check_deterministic_across_domains () =
  let nl, mapped = Lazy.force mapped_mult4 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "verified with %d domains" domains)
        true
        (Techmap.Mapped.check ~domains mapped nl ~patterns:2048 ~seed:4L))
    [ 1; 2; 4 ]

let estimate_report_identical_across_domains () =
  let _, mapped = Lazy.force mapped_mult4 in
  let r1 = Techmap.Estimate.run ~domains:1 ~patterns:70_000 ~seed:5L mapped in
  List.iter
    (fun domains ->
      let r = Techmap.Estimate.run ~domains ~patterns:70_000 ~seed:5L mapped in
      (* Float-for-float equality, not tolerance: the parallel sweep must
         produce the very same toggle counts and probabilities. *)
      Alcotest.(check (float 0.0)) "dynamic" r1.Techmap.Estimate.dynamic
        r.Techmap.Estimate.dynamic;
      Alcotest.(check (float 0.0)) "static" r1.Techmap.Estimate.static
        r.Techmap.Estimate.static;
      Alcotest.(check (float 0.0)) "total" r1.Techmap.Estimate.total
        r.Techmap.Estimate.total)
    [ 2; 4 ]

let parallel_metadata_in_profile () =
  let _, mapped = Lazy.force mapped_mult4 in
  let was = T.enabled () in
  T.set_enabled true;
  T.reset ();
  ignore (Techmap.Estimate.run ~domains:2 ~patterns:30_000 mapped);
  let prof = T.snapshot () in
  T.set_enabled was;
  (match T.find_dist prof "sim.domains" with
  | Some d -> Alcotest.(check bool) "domains observed" true (T.mean d >= 1.0)
  | None -> Alcotest.fail "sim.domains not observed");
  let per_domain =
    List.filter
      (fun (name, _) ->
        String.length name > 4
        && String.sub name 0 4 = "sim."
        && Filename.check_suffix name ".patterns_simulated")
      prof.T.p_counters
  in
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 per_domain in
  Alcotest.(check int) "per-domain patterns sum to the sweep" 30_000 total

let () =
  Alcotest.run "parallel"
    [
      ( "dpool",
        [
          (* env tests first: they fork, which is illegal after the pool
             tests below have spawned domains. *)
          tc "env validation matches --domains" `Quick env_domains_validation;
          tc "env unset reports none" `Quick env_domains_unset_is_none;
          tc "env garbage warns and falls back" `Quick
            env_garbage_warns_and_falls_back;
          tc "env valid value is used" `Quick env_valid_value_is_used;
          tc "covers all units exactly once" `Quick pool_covers_all_units;
          tc "small work stays sequential" `Quick pool_small_work_is_sequential;
          tc "exception propagates" `Quick pool_propagates_exception;
          tc "default resolution" `Quick pool_default_respects_env;
          tc "worker telemetry merged" `Quick pool_merges_worker_telemetry;
        ] );
      ( "prng",
        [
          tc "jump = n sequential draws" `Quick jump_matches_sequential;
          tc "parallel stimulus = sequential fill" `Quick
            stimulus_matches_sequential_fill;
        ] );
      ( "determinism",
        [
          tc "run_random bit-exact for 1/2/4 domains" `Slow
            run_random_deterministic_across_domains;
          tc "Mapped.simulate bit-exact for 1/2/4 domains" `Slow
            mapped_simulate_deterministic_across_domains;
          tc "Mapped.check stable across domains" `Slow
            mapped_check_deterministic_across_domains;
          tc "Estimate.run reports identical floats" `Slow
            estimate_report_identical_across_domains;
          tc "parallel metadata lands in the profile" `Slow
            parallel_metadata_in_profile;
        ] );
    ]
