(** Transient analysis: explicit adaptive time integration of node voltages
    over the device models.

    Used to {e derive} the intrinsic-delay technology booster that the paper
    takes from Deng et al. [10] ("the intrinsic CNTFET delay is 5x lower
    than the MOSFET delay"): stepping an inverter of each technology into
    its characterization load and measuring the 50 %-crossing propagation
    delay. Only capacitors at circuit nodes are modeled (C dV/dt = -I);
    nodes driven by sources follow their stimulus exactly. *)

type stimulus = float -> float
(** Voltage of a driven node as a function of time (seconds). *)

val step : ?t0:float -> ?rise:float -> low:float -> high:float -> unit -> stimulus
(** Linear ramp from [low] to [high] starting at [t0] (default 0) over
    [rise] seconds (default 1 ps). *)

type waveform = { times : float array; voltages : float array }

type diagnostics = {
  settle_steps : int;  (** DC-settle relaxation steps of the final attempt *)
  steps : int;  (** integration steps of the final attempt *)
  retries : int;  (** accuracy-halving retries that were needed *)
  min_dt : float;  (** smallest time step taken, s *)
  residual : float;  (** largest per-step voltage change when settle exited, V *)
  converged : bool;
}

val pp_diagnostics : Format.formatter -> diagnostics -> unit

val simulate_checked :
  Circuit.t ->
  caps:(Circuit.node * float) list ->
  drives:(Circuit.node * stimulus) list ->
  tstop:float ->
  ?dv_max:float ->
  ?samples:int ->
  ?max_retries:int ->
  Circuit.node list ->
  ((Circuit.node * waveform) list * diagnostics, Runtime.Cnt_error.t) result
(** Hardened entry point. Validates the circuit and every input (finite
    caps and stimuli, node ids in range, no zero-capacitance free node),
    then integrates; non-finite voltages and budget exhaustion trigger up to
    [max_retries] (default 2) retries with halved [dv_max] and damped settle
    updates before surfacing as typed [spice/non-finite] or
    [spice/convergence-failure] errors. Never returns a partial waveform. *)

val simulate :
  Circuit.t ->
  caps:(Circuit.node * float) list ->
  drives:(Circuit.node * stimulus) list ->
  tstop:float ->
  ?dv_max:float ->
  ?samples:int ->
  Circuit.node list ->
  (Circuit.node * waveform) list
(** [simulate circuit ~caps ~drives ~tstop watch] integrates from the DC
    solution at t = 0 (with every [drives] stimulus evaluated at 0) to
    [tstop], returning sampled waveforms for the watched nodes. Free nodes
    must appear in [caps]; driven nodes follow their stimulus. [dv_max]
    bounds the per-step voltage change (default 2 mV). Raising wrapper
    around {!simulate_checked}: raises [Runtime.Cnt_error.Error] instead of
    ever returning a truncated waveform. *)

val crossing_time : waveform -> float -> [ `Rising | `Falling ] -> float option
(** First time the waveform crosses the given level in the given direction
    (linear interpolation between samples). *)

val inverter_delay : Tech.t -> float
(** Propagation delay (input 50 % to output 50 %, falling output) of an
    inverter built in the given technology corner driving its intrinsic
    drain capacitance plus a fanout-3 inverter load. *)
