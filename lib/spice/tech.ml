type family = Cmos_bulk_32 | Cntfet_32

type t = {
  family : family;
  vdd : float;
  temp_vt : float;
  vth_n : float;
  vth_p : float;
  ss_factor : float;
  sat_exponent : float;
  ispec : float;
  ioff_unit : float;
  ig_on_unit : float;
  ig_off_unit : float;
  c_gate : float;
  c_drain : float;
  tau : float;
}

let vt_room = 0.02585

(* EKV forward normalized current at a given overdrive. *)
let ekv_if ~n ~alpha ~vth ~vt vgs =
  let l = log (1.0 +. exp ((vgs -. vth) /. (2.0 *. n *. vt))) in
  l ** alpha

(* Specific current chosen so that Ids(Vgs=0, Vds=Vdd) = ioff_unit. *)
let derive_ispec ~n ~alpha ~vth ~vt ~vdd ioff_unit =
  let f0 = ekv_if ~n ~alpha ~vth ~vt 0.0 in
  let fr = ekv_if ~n ~alpha ~vth ~vt (-.vdd) in
  ioff_unit /. (f0 -. fr)

let make family ~vth ~ss_factor ~sat_exponent ~ioff_unit ~ig_on_unit ~ig_off_unit ~c_gate
    ~c_drain ~tau =
  let vdd = 0.9 in
  {
    family;
    vdd;
    temp_vt = vt_room;
    vth_n = vth;
    vth_p = vth;
    ss_factor;
    sat_exponent;
    ispec =
      derive_ispec ~n:ss_factor ~alpha:sat_exponent ~vth ~vt:vt_room ~vdd ioff_unit;
    ioff_unit;
    ig_on_unit;
    ig_off_unit;
    c_gate;
    c_drain;
    tau;
  }

(* 32 nm bulk CMOS, metal gate + strained channel (ITRS 2007 / MASTAR-class
   first-order values). Gate cap chosen so an inverter presents 52 aF. *)
let cmos =
  make Cmos_bulk_32 ~vth:0.30 ~ss_factor:1.5 ~sat_exponent:1.4 ~ioff_unit:2.0e-9 ~ig_on_unit:1.0e-10
    ~ig_off_unit:1.0e-11 ~c_gate:26.0e-18 ~c_drain:26.0e-18 ~tau:12.0e-12

(* MOSFET-like CNTFET: 32 nm gate, 3 CNTs per channel, high-κ insulator
   (negligible gate tunneling), thick back insulator (low junction leakage),
   5x lower intrinsic delay [Deng et al., ISSCC'07]. Inverter input cap
   36 aF. *)
let cntfet =
  make Cntfet_32 ~vth:0.30 ~ss_factor:1.1 ~sat_exponent:1.65 ~ioff_unit:1.0e-10 ~ig_on_unit:4.0e-13
    ~ig_off_unit:4.0e-14 ~c_gate:18.0e-18 ~c_drain:18.0e-18 ~tau:2.4e-12

let frequency = 1.0e9
let short_circuit_fraction = 0.15
let fanout = 3
let inverter_input_cap t = 2.0 *. t.c_gate

let with_vdd t vdd = { t with vdd }

let with_temperature t ~kelvin = { t with temp_vt = vt_room *. kelvin /. 300.0 }

let with_vth_shift t dv = { t with vth_n = t.vth_n +. dv; vth_p = t.vth_p +. dv }

let pp_family ppf = function
  | Cmos_bulk_32 -> Format.pp_print_string ppf "cmos-32nm"
  | Cntfet_32 -> Format.pp_print_string ppf "cntfet-32nm"

let validate t =
  let open Runtime.Validate in
  let stage = Runtime.Cnt_error.Spice in
  let* () =
    all
      [
        Result.map (fun _ -> ()) (positive ~stage ~what:"vdd" t.vdd);
        Result.map (fun _ -> ()) (positive ~stage ~what:"temp_vt" t.temp_vt);
        Result.map (fun _ -> ()) (finite ~stage ~what:"vth_n" t.vth_n);
        Result.map (fun _ -> ()) (finite ~stage ~what:"vth_p" t.vth_p);
        Result.map (fun _ -> ()) (positive ~stage ~what:"ss_factor" t.ss_factor);
        Result.map (fun _ -> ()) (positive ~stage ~what:"sat_exponent" t.sat_exponent);
        Result.map (fun _ -> ()) (positive ~stage ~what:"ispec" t.ispec);
        Result.map (fun _ -> ()) (positive ~stage ~what:"ioff_unit" t.ioff_unit);
        Result.map (fun _ -> ()) (non_negative ~stage ~what:"ig_on_unit" t.ig_on_unit);
        Result.map (fun _ -> ()) (non_negative ~stage ~what:"ig_off_unit" t.ig_off_unit);
        Result.map (fun _ -> ()) (positive ~stage ~what:"c_gate" t.c_gate);
        Result.map (fun _ -> ()) (positive ~stage ~what:"c_drain" t.c_drain);
        Result.map (fun _ -> ()) (positive ~stage ~what:"tau" t.tau);
      ]
  in
  Ok t
