(** Element-level circuit netlists for DC analysis.

    Small circuits only (the paper's I_off patterns reduce to a handful of
    devices), so nodes are managed through a simple name table and the
    solver uses dense linear algebra. Node ["0"]/["gnd"] is ground. *)

type t

type node = int

val create : unit -> t

val node : t -> string -> node
(** Find or create a named node. ["0"] and ["gnd"] are the ground node. *)

val ground : node

val add_vsource : t -> node -> float -> unit
(** Ideal voltage source from the node to ground. *)

val add_resistor : t -> node -> node -> float -> unit

val add_transistor : t -> Device.kind -> d:node -> g:node -> s:node -> ?pg:node -> unit -> unit
(** Four-terminal for {!Device.Ambipolar} ([pg] required), three-terminal
    otherwise. *)

val num_nodes : t -> int

type solution

val node_voltage : solution -> node -> float

val source_current : t -> solution -> node -> float
(** Current delivered by the voltage source attached at the node (positive
    = flowing out of the source into the circuit). *)

val solve : ?max_iter:int -> ?tol:float -> t -> solution
(** Newton–Raphson nodal analysis. Raises [Runtime.Cnt_error.Error] with
    code [Convergence_failure], [Singular_matrix] or [Non_finite] when the
    iteration fails. Use {!solve_checked} at hardened boundaries. *)

val solve_checked :
  ?max_iter:int -> ?tol:float -> t -> (solution, Runtime.Cnt_error.t) result
(** {!validate} followed by {!solve}, with every failure (including wrapped
    unexpected exceptions) returned as a typed error. *)

val validate : t -> (unit, Runtime.Cnt_error.t) result
(** Well-formedness of the element list: finite source voltages, positive
    finite resistances, and device model cards that pass
    {!Tech.validate}. *)

val node_currents : t -> float array -> float array
(** [node_currents t v] evaluates, for the node-voltage assignment [v]
    (indexed by node id), the current flowing {e out} of every node through
    the circuit elements. Used by {!Transient} for time integration. *)

val is_source : t -> node -> bool
(** Whether a voltage source is attached at the node. *)

val source_value : t -> node -> float
(** DC value of the source attached at the node. Raises [Not_found] if
    there is none. *)
