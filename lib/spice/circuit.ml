type node = int

type element =
  | Resistor of node * node * float
  | Transistor of Device.kind * node * node * node * node (* d g s pg *)

type t = {
  names : (string, node) Hashtbl.t;
  mutable next : node;
  mutable elements : element list;
  mutable sources : (node * float) list;
}

let ground = 0

let create () =
  let names = Hashtbl.create 16 in
  Hashtbl.replace names "0" ground;
  Hashtbl.replace names "gnd" ground;
  { names; next = 1; elements = []; sources = [] }

let node t name =
  match Hashtbl.find_opt t.names name with
  | Some n -> n
  | None ->
      let n = t.next in
      t.next <- n + 1;
      Hashtbl.replace t.names name n;
      n

let stage = Runtime.Cnt_error.Spice

let add_vsource t n v =
  if n = ground then
    Runtime.Cnt_error.failf stage Runtime.Cnt_error.Validation_error
      "voltage source attached to the ground node";
  if not (Float.is_finite v) then
    Runtime.Cnt_error.failf
      ~context:[ ("value", Printf.sprintf "%h" v) ]
      stage Runtime.Cnt_error.Non_finite "voltage source value must be finite";
  t.sources <- (n, v) :: t.sources

let add_resistor t a b r =
  if not (Float.is_finite r && r > 0.0) then
    Runtime.Cnt_error.failf
      ~context:[ ("value", Printf.sprintf "%h" r) ]
      stage Runtime.Cnt_error.Validation_error
      "resistance must be finite and > 0";
  t.elements <- Resistor (a, b, r) :: t.elements

let add_transistor t kind ~d ~g ~s ?pg () =
  let pg =
    match (kind, pg) with
    | Device.Ambipolar _, Some p -> p
    | Device.Ambipolar _, None -> invalid_arg "ambipolar device needs a polarity gate"
    | (Device.Nmos _ | Device.Pmos _), _ -> ground
  in
  t.elements <- Transistor (kind, d, g, s, pg) :: t.elements

let num_nodes t = t.next

type solution = float array

let node_voltage sol n = sol.(n)

let gmin = 1.0e-12

(* Current leaving each node through the passive/active elements. *)
let injections t (v : float array) =
  let out = Array.make (Array.length v) 0.0 in
  List.iter
    (fun el ->
      match el with
      | Resistor (a, b, r) ->
          let i = (v.(a) -. v.(b)) /. r in
          out.(a) <- out.(a) +. i;
          out.(b) <- out.(b) -. i
      | Transistor (kind, d, g, s, pg) ->
          let i = Device.ids kind ~vg:v.(g) ~vd:v.(d) ~vs:v.(s) ~vpg:v.(pg) in
          out.(d) <- out.(d) +. i;
          out.(s) <- out.(s) -. i)
    t.elements;
  (* gmin to ground keeps floating nodes well-defined. *)
  Array.iteri (fun n vn -> if n <> ground then out.(n) <- out.(n) +. (gmin *. vn)) out;
  out

(* Dense Gaussian elimination with partial pivoting; solves in place. *)
let gauss_solve a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if abs_float a.(row).(col) > abs_float a.(!pivot).(col) then pivot := row
    done;
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    let p = a.(col).(col) in
    if abs_float p < 1.0e-30 then
      Runtime.Cnt_error.failf
        ~context:[ ("pivot", Printf.sprintf "%.3g" p); ("column", string_of_int col) ]
        stage Runtime.Cnt_error.Singular_matrix
        "Circuit.solve: singular Jacobian";
    for row = col + 1 to n - 1 do
      let f = a.(row).(col) /. p in
      if f <> 0.0 then begin
        for k = col to n - 1 do
          a.(row).(k) <- a.(row).(k) -. (f *. a.(col).(k))
        done;
        b.(row) <- b.(row) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref b.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. a.(row).(row)
  done;
  x

let solve ?(max_iter = 200) ?(tol = 1.0e-11) t =
  let n = t.next in
  let v = Array.make n 0.0 in
  let fixed = Array.make n false in
  fixed.(ground) <- true;
  List.iter
    (fun (nd, value) ->
      v.(nd) <- value;
      fixed.(nd) <- true)
    t.sources;
  (* Unknown nodes get a mid-rail initial guess to help convergence. *)
  let vdd_guess =
    List.fold_left (fun acc (_, value) -> max acc value) 0.0 t.sources
  in
  Array.iteri (fun i f -> if not f then v.(i) <- vdd_guess /. 2.0) fixed;
  let unknowns = ref [] in
  for i = n - 1 downto 0 do
    if not fixed.(i) then unknowns := i :: !unknowns
  done;
  let unknowns = Array.of_list !unknowns in
  let m = Array.length unknowns in
  if m = 0 then v
  else begin
    let converged = ref false in
    let iter = ref 0 in
    let last_worst = ref infinity in
    while (not !converged) && !iter < max_iter do
      incr iter;
      let f0 = injections t v in
      let residual = Array.map (fun nd -> f0.(nd)) unknowns in
      (* Numeric Jacobian by forward differences. *)
      let jac = Array.make_matrix m m 0.0 in
      let dv = 1.0e-6 in
      Array.iteri
        (fun j nd ->
          let saved = v.(nd) in
          v.(nd) <- saved +. dv;
          let f1 = injections t v in
          v.(nd) <- saved;
          Array.iteri
            (fun i nd_i -> jac.(i).(j) <- (f1.(nd_i) -. f0.(nd_i)) /. dv)
            unknowns)
        unknowns;
      let delta = gauss_solve jac (Array.map (fun r -> -.r) residual) in
      (* Damped update, clamped to the rail range for robustness. *)
      let max_step = 0.2 in
      let worst = ref 0.0 in
      Array.iteri
        (fun j nd ->
          let d = delta.(j) in
          let d = if d > max_step then max_step else if d < -.max_step then -.max_step else d in
          v.(nd) <- v.(nd) +. d;
          if abs_float d > !worst then worst := abs_float d)
        unknowns;
      if not (Float.is_finite !worst) then
        Runtime.Cnt_error.failf
          ~context:[ ("iteration", string_of_int !iter) ]
          stage Runtime.Cnt_error.Non_finite
          "Circuit.solve: non-finite Newton update";
      last_worst := !worst;
      if !worst < tol then converged := true
    done;
    if not !converged then
      Runtime.Cnt_error.failf
        ~context:
          [
            ("iterations", string_of_int !iter);
            ("residual", Printf.sprintf "%.3g" !last_worst);
          ]
        stage Runtime.Cnt_error.Convergence_failure
        "Circuit.solve: Newton did not converge";
    v
  end

let validate t =
  let open Runtime.Validate in
  let element_checks =
    List.concat_map
      (fun el ->
        match el with
        | Resistor (_, _, r) ->
            [ Result.map (fun _ -> ()) (positive ~stage ~what:"resistance" r) ]
        | Transistor (kind, _, _, _, _) ->
            [ Result.map (fun _ -> ()) (Tech.validate (Device.tech kind)) ])
      t.elements
  in
  let source_checks =
    List.map
      (fun (_, value) ->
        Result.map (fun _ -> ()) (finite ~stage ~what:"source voltage" value))
      t.sources
  in
  all (source_checks @ element_checks)

let solve_checked ?max_iter ?tol t =
  match validate t with
  | Result.Error _ as e -> e
  | Ok () -> Runtime.Cnt_error.protect ~stage (fun () -> solve ?max_iter ?tol t)

let source_current t sol n =
  let inj = injections t sol in
  inj.(n)

let node_currents t v = injections t v
let is_source t n = n = ground || List.mem_assoc n t.sources
let source_value t n = if n = ground then 0.0 else List.assoc n t.sources
