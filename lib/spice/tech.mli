(** Technology parameter tables.

    Plays the role of the paper's MASTAR/ITRS 32 nm bulk data [11] and of
    the Stanford CNTFET model card [9]: first-order constants from which the
    device models and the gate characterization derive leakage currents,
    capacitances and delays. Both corners share V_DD = 0.9 V and f = 1 GHz
    (Section 4 of the paper). *)

type family = Cmos_bulk_32 | Cntfet_32
(** 32 nm bulk CMOS (metal gate, strained channel) and MOSFET-like CNTFET
    (32 nm gate, 3 CNTs per channel, high-κ gate dielectric). *)

type t = {
  family : family;
  vdd : float;  (** supply voltage, V *)
  temp_vt : float;  (** thermal voltage kT/q, V *)
  vth_n : float;  (** n-device threshold, V *)
  vth_p : float;  (** p-device threshold magnitude, V *)
  ss_factor : float;  (** subthreshold slope factor n (SS = n·vt·ln 10) *)
  sat_exponent : float;
      (** exponent of the EKV interpolation function: 2 is the ideal
          long-channel square law; short-channel (velocity-saturated) bulk
          CMOS sits near 1.4, near-ballistic CNTFETs near 1.65 *)
  ispec : float;  (** EKV specific current per unit device, A *)
  ioff_unit : float;  (** off-current of a unit device at Vgs=0, Vds=Vdd, A *)
  ig_on_unit : float;  (** gate tunneling current of a fully-biased ON device, A *)
  ig_off_unit : float;  (** gate tunneling of an OFF device, A *)
  c_gate : float;  (** unit gate capacitance, F *)
  c_drain : float;  (** unit drain/source capacitance, F *)
  tau : float;  (** intrinsic per-stage delay unit, s *)
}

val cmos : t
val cntfet : t

val vt_room : float
(** Thermal voltage kT/q at the 300 K calibration point, V. *)

val derive_ispec :
  n:float -> alpha:float -> vth:float -> vt:float -> vdd:float -> float -> float
(** [derive_ispec ~n ~alpha ~vth ~vt ~vdd ioff_unit] is the EKV specific
    current that makes a unit device leak exactly [ioff_unit] at Vgs = 0,
    Vds = Vdd. Library files that state a corner by its off-current (the
    measurable quantity) rather than by [ispec] go through this. *)

val frequency : float
(** Operating frequency used throughout the paper's evaluation: 1 GHz. *)

val short_circuit_fraction : float
(** P_SC = 0.15 · P_D (Nose & Sakurai conjecture adopted by the paper). *)

val fanout : int
(** Load fanout assumed during gate characterization (3). *)

val inverter_input_cap : t -> float
(** Gate capacitance of an inverter (one n + one p device); the paper quotes
    36 aF for CNTFET vs 52 aF for CMOS. *)

val pp_family : Format.formatter -> family -> unit

val validate : t -> (t, Runtime.Cnt_error.t) result
(** Reject corners with non-finite or out-of-range parameters (NaN/Inf
    thresholds, non-positive supply, capacitances or currents). Hardened
    entry points call this before using a corner, so a corrupted model card
    surfaces as a typed [spice/non-finite] or [spice/validation-error]
    instead of NaNs propagating into every downstream figure. *)

(** {1 Corner derivation}

    Derived corners keep the device's specific current (its physical
    strength) and shift only the operating condition, so off-currents,
    on-currents and delays respond through the model rather than being
    re-calibrated — which is the point of sensitivity analysis. *)

val with_vdd : t -> float -> t
(** Same devices at a different supply. *)

val with_temperature : t -> kelvin:float -> t
(** Same devices at a different temperature (thermal voltage scales as
    kT/q; 300 K is the calibration point). *)

val with_vth_shift : t -> float -> t
(** Same devices with both thresholds shifted by the given amount (V) —
    the process-variation knob for Monte-Carlo leakage analysis. *)
