type stimulus = float -> float

let step ?(t0 = 0.0) ?(rise = 1.0e-12) ~low ~high () t =
  if t <= t0 then low
  else if t >= t0 +. rise then high
  else low +. ((high -. low) *. (t -. t0) /. rise)

type waveform = { times : float array; voltages : float array }

type diagnostics = {
  settle_steps : int;
  steps : int;
  retries : int;
  min_dt : float;
  residual : float;
  converged : bool;
}

let pp_diagnostics ppf d =
  Format.fprintf ppf
    "settle=%d steps=%d retries=%d min_dt=%.3gs residual=%.3gV converged=%b"
    d.settle_steps d.steps d.retries d.min_dt d.residual d.converged

let stage = Runtime.Cnt_error.Spice

(* Below this per-step voltage change the settle relaxation is considered
   quasi-static (relative to dv_max); below this absolute node current the
   state is already at equilibrium even if dt clamping keeps the dv
   criterion from triggering. *)
let settle_current_tol = 1.0e-16

(* One integration attempt at a fixed accuracy setting. [damping] scales the
   settle-phase updates only: it changes how the relaxation walks to the
   fixed point, not the fixed point itself, so a damped retry converges to
   the same initial condition. *)
let attempt circuit ~cap ~driven ~tstop ~dv_max ~samples ~damping watch =
  let n = Circuit.num_nodes circuit in
  let v = Array.make n 0.0 in
  for node = 0 to n - 1 do
    if Circuit.is_source circuit node then v.(node) <- Circuit.source_value circuit node;
    match driven.(node) with Some s -> v.(node) <- s 0.0 | None -> ()
  done;
  let free node =
    (not (Circuit.is_source circuit node)) && driven.(node) = None && cap.(node) > 0.0
  in
  (* The guarded dV/dt of a free node; caps were validated > 0 for free
     nodes, so the division cannot produce infinities from a zero cap. *)
  let rate currents node = currents.(node) /. cap.(node) in
  let adaptive_dt currents bound =
    let dt = ref bound in
    for node = 1 to n - 1 do
      if free node then begin
        let r = abs_float (rate currents node) in
        if r > 0.0 then dt := min !dt (dv_max /. r)
      end
    done;
    max !dt 1.0e-18
  in
  (* Settle free nodes to a quasi-static start: integrate with the t = 0
     stimulus frozen until the state stops moving or the currents vanish. *)
  let settle_budget = 200_000 in
  let settle_steps = ref 0 in
  let residual = ref infinity in
  let moving = ref true in
  let failure = ref None in
  while !moving && !failure = None && !settle_steps < settle_budget do
    incr settle_steps;
    let currents = Circuit.node_currents circuit v in
    let dt = adaptive_dt currents (tstop /. 10.0) in
    let biggest = ref 0.0 in
    let imax = ref 0.0 in
    for node = 1 to n - 1 do
      if free node then begin
        let dv = -.(rate currents node) *. dt *. damping in
        v.(node) <- v.(node) +. dv;
        if abs_float dv > !biggest then biggest := abs_float dv;
        if abs_float currents.(node) > !imax then imax := abs_float currents.(node)
      end
    done;
    residual := !biggest;
    if not (Float.is_finite !biggest) then
      failure :=
        Some
          (Runtime.Cnt_error.makef
             ~context:[ ("settle_step", string_of_int !settle_steps) ]
             stage Runtime.Cnt_error.Non_finite
             "Transient.simulate: non-finite voltage during DC settle")
    else if !biggest < dv_max /. 100.0 || !imax < settle_current_tol then
      moving := false
  done;
  match !failure with
  | Some e -> Result.Error e
  | None when !moving ->
      Runtime.Cnt_error.error
        ~context:
          [
            ("settle_steps", string_of_int !settle_steps);
            ("residual", Printf.sprintf "%.3g" !residual);
            ("dv_max", Printf.sprintf "%.3g" dv_max);
          ]
        stage Runtime.Cnt_error.Convergence_failure
        "Transient.simulate: DC settle exhausted its budget without reaching \
         a quasi-static state"
  | None -> (
      let sample_dt = tstop /. float_of_int samples in
      let recorded = List.map (fun node -> (node, ref [ (0.0, v.(node)) ])) watch in
      let t = ref 0.0 in
      let next_sample = ref sample_dt in
      let steps = ref 0 in
      let min_dt = ref infinity in
      let max_steps = 5_000_000 in
      while !t < tstop && !failure = None && !steps < max_steps do
        incr steps;
        (* Adaptive step: bound every free node's voltage change. *)
        let currents = Circuit.node_currents circuit v in
        let dt = adaptive_dt currents (tstop /. 1000.0) in
        let dt = min dt (tstop -. !t) in
        if dt < !min_dt then min_dt := dt;
        let finite = ref true in
        for node = 1 to n - 1 do
          if Circuit.is_source circuit node then ()
          else
            match driven.(node) with
            | Some s ->
                v.(node) <- s (!t +. dt);
                if not (Float.is_finite v.(node)) then finite := false
            | None ->
                if cap.(node) > 0.0 then v.(node) <- v.(node) -. (rate currents node *. dt);
                if not (Float.is_finite v.(node)) then finite := false
        done;
        if not !finite then
          failure :=
            Some
              (Runtime.Cnt_error.makef
                 ~context:
                   [ ("t", Printf.sprintf "%.3g" !t); ("step", string_of_int !steps) ]
                 stage Runtime.Cnt_error.Non_finite
                 "Transient.simulate: non-finite voltage during integration");
        t := !t +. dt;
        if !t >= !next_sample then begin
          List.iter (fun (node, acc) -> acc := (!t, v.(node)) :: !acc) recorded;
          next_sample := !next_sample +. sample_dt
        end
      done;
      match !failure with
      | Some e -> Result.Error e
      | None when !t < tstop ->
          (* Silent-partial-waveform hazard of the unhardened solver: the
             step budget ran out before tstop. Surface it as a typed
             failure instead of returning a truncated result. *)
          Runtime.Cnt_error.error
            ~context:
              [
                ("steps", string_of_int !steps);
                ("t", Printf.sprintf "%.3g" !t);
                ("tstop", Printf.sprintf "%.3g" tstop);
                ("min_dt", Printf.sprintf "%.3g" !min_dt);
              ]
            stage Runtime.Cnt_error.Convergence_failure
            "Transient.simulate: step budget exhausted before tstop"
      | None ->
          let waves =
            List.map
              (fun (node, acc) ->
                let pts = List.rev !acc in
                ( node,
                  {
                    times = Array.of_list (List.map fst pts);
                    voltages = Array.of_list (List.map snd pts);
                  } ))
              recorded
          in
          let diag =
            {
              settle_steps = !settle_steps;
              steps = !steps;
              retries = 0;
              min_dt = (if !min_dt = infinity then 0.0 else !min_dt);
              residual = !residual;
              converged = true;
            }
          in
          Ok (waves, diag))

let validate_inputs circuit ~caps ~drives ~tstop ~dv_max ~samples watch =
  let open Runtime.Validate in
  let* () = Circuit.validate circuit in
  let n = Circuit.num_nodes circuit in
  let in_range what node =
    require ~stage
      ~context:[ (what, string_of_int node) ]
      (node >= 0 && node < n)
      (Printf.sprintf "%s node id out of range" what)
  in
  let* _ = positive ~stage ~what:"tstop" tstop in
  let* _ = positive ~stage ~what:"dv_max" dv_max in
  let* () = require ~stage (samples > 0) "samples must be > 0" in
  let* () =
    all
      (List.map
         (fun (node, c) ->
           let* () = in_range "cap" node in
           Result.map (fun _ -> ()) (non_negative ~stage ~what:"capacitance" c))
         caps)
  in
  let* () =
    all
      (List.map
         (fun (node, s) ->
           let* () = in_range "drive" node in
           let v0 = s 0.0 in
           require ~stage ~code:Runtime.Cnt_error.Non_finite
             ~context:[ ("node", string_of_int node); ("value", Printf.sprintf "%h" v0) ]
             (Float.is_finite v0) "stimulus value at t=0 must be finite")
         drives)
  in
  all (List.map (in_range "watch") watch)

let simulate_checked circuit ~caps ~drives ~tstop ?(dv_max = 2.0e-3) ?(samples = 400)
    ?(max_retries = 2) watch =
  match validate_inputs circuit ~caps ~drives ~tstop ~dv_max ~samples watch with
  | Result.Error _ as e -> e
  | Ok () -> (
      let n = Circuit.num_nodes circuit in
      let cap = Array.make n 0.0 in
      List.iter (fun (node, c) -> cap.(node) <- c) caps;
      let driven = Array.make n None in
      List.iter (fun (node, s) -> driven.(node) <- Some s) drives;
      (* Zero-capacitance free nodes have no state equation: their voltage
         would silently freeze. Reject them up front. *)
      let zero_cap = ref [] in
      for node = n - 1 downto 1 do
        if
          (not (Circuit.is_source circuit node))
          && driven.(node) = None
          && cap.(node) <= 0.0
        then zero_cap := node :: !zero_cap
      done;
      match !zero_cap with
      | _ :: _ ->
          Runtime.Cnt_error.error
            ~context:
              [ ("nodes", String.concat "," (List.map string_of_int !zero_cap)) ]
            stage Runtime.Cnt_error.Validation_error
            "Transient.simulate: free node(s) without capacitance"
      | [] ->
          (* Bounded retries: each one halves the step-accuracy bound and
             damps the settle relaxation. *)
          let module T = Runtime.Telemetry in
          let rec go retry dv_max damping last_error =
            if retry > max_retries then begin
              T.count "spice.transient.failures" 1;
              Result.Error
                (Runtime.Cnt_error.with_context last_error
                   [ ("retries", string_of_int max_retries) ])
            end
            else
              match attempt circuit ~cap ~driven ~tstop ~dv_max ~samples ~damping watch with
              | Ok (waves, diag) ->
                  T.count "spice.transient.solves" 1;
                  T.count "spice.transient.settle_steps" diag.settle_steps;
                  T.count "spice.transient.steps" diag.steps;
                  T.count "spice.transient.damped_retries" retry;
                  T.observe "spice.transient.settle_residual_v" diag.residual;
                  Ok (waves, { diag with retries = retry })
              | Result.Error e ->
                  T.count "spice.transient.damped_attempts_failed" 1;
                  if Runtime.Journal.enabled () then
                    Runtime.Journal.emit ~level:Runtime.Journal.Debug
                      Runtime.Journal.Solver_damped_retry
                      [
                        ("retry", string_of_int (retry + 1));
                        ("dv_max", Printf.sprintf "%.3g" (dv_max /. 2.0));
                        ("error", Runtime.Cnt_error.code_name e.Runtime.Cnt_error.code);
                      ];
                  go (retry + 1) (dv_max /. 2.0) (damping *. 0.5) e
          in
          go 0 dv_max 1.0
            (Runtime.Cnt_error.make stage Runtime.Cnt_error.Internal "unreachable"))

let simulate circuit ~caps ~drives ~tstop ?dv_max ?samples watch =
  match simulate_checked circuit ~caps ~drives ~tstop ?dv_max ?samples watch with
  | Ok (waves, _) -> waves
  | Result.Error e -> Runtime.Cnt_error.raise_error e

let crossing_time w level direction =
  let n = Array.length w.times in
  let rec scan i =
    if i + 1 >= n then None
    else begin
      let v0 = w.voltages.(i) and v1 = w.voltages.(i + 1) in
      let crossed =
        match direction with
        | `Rising -> v0 < level && v1 >= level
        | `Falling -> v0 > level && v1 <= level
      in
      if crossed then begin
        let t0 = w.times.(i) and t1 = w.times.(i + 1) in
        let frac = if v1 = v0 then 0.0 else (level -. v0) /. (v1 -. v0) in
        Some (t0 +. (frac *. (t1 -. t0)))
      end
      else scan (i + 1)
    end
  in
  scan 0

let inverter_delay (tech : Tech.t) =
  let tech = Runtime.Cnt_error.get_exn (Tech.validate tech) in
  let vdd = tech.Tech.vdd in
  let c = Circuit.create () in
  let vdd_node = Circuit.node c "vdd" in
  let input = Circuit.node c "in" in
  let out = Circuit.node c "out" in
  Circuit.add_vsource c vdd_node vdd;
  Circuit.add_transistor c (Device.Pmos tech) ~d:out ~g:input ~s:vdd_node ();
  Circuit.add_transistor c (Device.Nmos tech) ~d:out ~g:input ~s:Circuit.ground ();
  (* Load: own drain caps + fanout-3 inverter input loads. *)
  let c_load =
    (2.0 *. tech.Tech.c_drain) +. (float_of_int Tech.fanout *. Tech.inverter_input_cap tech)
  in
  let t_edge = 2.0e-12 in
  let stim = step ~t0:t_edge ~rise:0.5e-12 ~low:0.0 ~high:vdd () in
  let tstop = 60.0e-12 in
  let waves =
    simulate c
      ~caps:[ (out, c_load) ]
      ~drives:[ (input, stim) ]
      ~tstop ~samples:3000 [ out ]
  in
  let wave = List.assoc out waves in
  let half = vdd /. 2.0 in
  let t_in = t_edge +. 0.25e-12 in
  match crossing_time wave half `Falling with
  | Some t_out -> t_out -. t_in
  | None ->
      Runtime.Cnt_error.failf stage Runtime.Cnt_error.Mismatch
        "Transient.inverter_delay: output never crossed 50%%"
