module E = Runtime.Cnt_error

let stage = E.Netlist

type report = { dangling_nodes : int; unused_inputs : string list }

let clean r = r.dangling_nodes = 0 && r.unused_inputs = []

let pp_report ppf r =
  if clean r then Format.pp_print_string ppf "well-formed"
  else
    Format.fprintf ppf "%d dangling node(s)%s" r.dangling_nodes
      (match r.unused_inputs with
      | [] -> ""
      | ins -> Printf.sprintf ", unused input(s): %s" (String.concat "," ins))

let find_cycle ~nodes ~deps =
  (* 0 = white, 1 = on stack, 2 = done. *)
  let color = Hashtbl.create 16 in
  let col n = Option.value ~default:0 (Hashtbl.find_opt color n) in
  let cycle = ref None in
  let rec visit path n =
    if !cycle = None then
      match col n with
      | 1 ->
          (* Found: slice the path back to the repeated node. *)
          let rec take acc = function
            | [] -> acc
            | m :: _ when m = n -> m :: acc
            | m :: rest -> take (m :: acc) rest
          in
          cycle := Some (take [] path)
      | 2 -> ()
      | _ ->
          Hashtbl.replace color n 1;
          List.iter (visit (n :: path)) (deps n);
          Hashtbl.replace color n 2
  in
  List.iter (visit []) nodes;
  !cycle

let dup_name names =
  let seen = Hashtbl.create 16 in
  List.find_opt
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.replace seen n ();
        false
      end)
    names

let check t =
  let ( let* ) = Result.bind in
  let outs = Netlist.outputs t in
  let* () =
    if Array.length outs = 0 then
      E.error stage E.Validation_error "netlist has no primary outputs"
    else Ok ()
  in
  let* () =
    match dup_name (Array.to_list (Array.map fst outs)) with
    | Some name ->
        E.error
          ~context:[ ("net", name) ]
          stage E.Multiply_driven_net "duplicate output name %S" name
    | None -> Ok ()
  in
  let input_names = Array.to_list (Array.map (Netlist.input_name t) (Netlist.inputs t)) in
  let* () =
    match dup_name input_names with
    | Some name ->
        E.error
          ~context:[ ("net", name) ]
          stage E.Validation_error "duplicate input name %S" name
    | None -> Ok ()
  in
  (* Backward reachability from the outputs over the fanin edges. *)
  let n = Netlist.size t in
  let live = Array.make n false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      Array.iter mark (Netlist.fanins t id)
    end
  in
  Array.iter (fun (_, id) -> mark id) outs;
  let dangling = ref 0 in
  Netlist.iter_nodes t (fun id op _ ->
      match op with
      | Netlist.Input | Netlist.Constant _ -> ()
      | _ -> if not live.(id) then incr dangling);
  let unused =
    Array.to_list (Netlist.inputs t)
    |> List.filter (fun id -> not live.(id))
    |> List.map (Netlist.input_name t)
  in
  Ok { dangling_nodes = !dangling; unused_inputs = unused }

let check_exn t = E.get_exn (check t)
