(** 64-way parallel bit simulation of netlists.

    This is the engine behind the 640 K random-pattern power estimation of
    the paper (Section 4): input vectors are packed 64 per machine word, and
    the whole netlist is evaluated with word-level logic operations.

    The netlist is first lowered to a flat instruction stream over raw
    word buffers (no per-gate allocation in the inner loop), then the
    pattern axis is sharded into word-aligned chunks across domains with
    {!Runtime.Dpool}. Word-level bitwise operations are word-local, so
    the result is bit-identical for any domain count — including the
    random stimulus, whose PRNG stream is split per chunk with
    {!Logic.Prng.jump}. [?domains] defaults to
    {!Runtime.Dpool.default_domains} ([--domains N] on the CLI); small
    pattern counts fall back to a sequential loop. *)

type result = {
  num_patterns : int;
  node_values : Logic.Bitvec.t array;  (** indexed by node id *)
}

val run : ?domains:int -> Netlist.t -> Logic.Bitvec.t array -> result
(** [run t input_vectors] simulates with the given per-input stimulus (in
    [Netlist.inputs] order; all vectors must have equal length). *)

val random_stimulus :
  ?domains:int ->
  ?seed:int64 ->
  inputs:int ->
  patterns:int ->
  unit ->
  Logic.Bitvec.t array
(** [inputs] fresh vectors of [patterns] uniform random bits each —
    exactly the vectors a single [Prng.create seed] generator produces
    filling vector 0 word-by-word, then vector 1, ... (bit-identical for
    any [?domains]). *)

val run_random : ?domains:int -> ?seed:int64 -> Netlist.t -> int -> result
(** [run_random t n] simulates [n] uniform random patterns (deterministic
    given [seed], default [42L], for any domain count). *)

val signal_probability : result -> int -> float
(** Fraction of patterns on which the node evaluates to 1. *)

val toggle_rate : result -> int -> float
(** Average number of value changes per consecutive pattern pair — the
    switching activity [alpha] of the node under the applied stimulus,
    treating patterns as consecutive clock cycles. *)

val output_values : Netlist.t -> result -> (string * Logic.Bitvec.t) array
