module T = Logic.Truthtable
module E = Runtime.Cnt_error

let stage = E.Netlist

let err ?(context = []) ~line code fmt =
  Format.kasprintf
    (fun message ->
      Result.Error
        (E.make
           ~context:(("line", string_of_int line) :: context)
           stage code message))
    fmt

(* Logical lines with the 1-based number of their first physical line:
   backslash continuations joined, comments stripped. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let rec join acc start pending lineno = function
    | [] -> List.rev (if pending = "" then acc else (start, pending) :: acc)
    | line :: rest ->
        let lineno = lineno + 1 in
        let line = strip_comment line in
        let line = String.trim line in
        if line = "" then
          join (if pending = "" then acc else (start, pending) :: acc) 0 "" lineno rest
        else begin
          let start = if pending = "" then lineno else start in
          if line.[String.length line - 1] = '\\' then
            join acc start
              (pending ^ String.sub line 0 (String.length line - 1) ^ " ")
              lineno rest
          else join ((start, pending ^ line) :: acc) 0 "" lineno rest
        end
  in
  join [] 0 "" 0 raw

let tokens line =
  String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

type names_block = { line : int; ins : string list; out : string; cover : (string * char) list }
(* cover: (input pattern, output char) rows *)

(* Scan the token stream into declarations and .names blocks, enforcing the
   textual well-formedness rules (single model, terminated file, no
   duplicate drivers). Structural rules (loops, undriven signals) are
   checked on the resulting block graph. *)
let scan_blocks text =
  let ( let* ) = Result.bind in
  let lines = logical_lines text in
  let last_line = List.fold_left (fun _ (n, _) -> n) 0 lines in
  let inputs = ref [] and outputs = ref [] and blocks = ref [] in
  let model = ref None in
  let driver_line : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let ended = ref false in
  let rec scan = function
    | [] ->
        if !ended then Ok ()
        else
          err ~line:last_line E.Parse_error
            "truncated BLIF: missing .end directive"
    | (line, _) :: _ when !ended ->
        err ~line E.Parse_error "content after .end"
    | (line, text) :: rest -> (
        match tokens text with
        | ".model" :: name -> (
            let name = String.concat " " name in
            match !model with
            | None ->
                model := Some name;
                scan rest
            | Some first ->
                err
                  ~context:[ ("first_model", first); ("duplicate_model", name) ]
                  ~line E.Parse_error
                  "duplicate .model directive (multi-model BLIF is not \
                   supported)")
        | ".end" :: _ ->
            ended := true;
            scan rest
        | ".inputs" :: names ->
            let* () =
              List.fold_left
                (fun acc name ->
                  let* () = acc in
                  if Hashtbl.mem driver_line name then
                    err
                      ~context:[ ("net", name) ]
                      ~line E.Multiply_driven_net "duplicate input %S" name
                  else begin
                    Hashtbl.replace driver_line name line;
                    Ok ()
                  end)
                (Ok ()) names
            in
            inputs := !inputs @ names;
            scan rest
        | ".outputs" :: names ->
            outputs := !outputs @ names;
            scan rest
        | ".names" :: signals -> (
            match List.rev signals with
            | [] -> err ~line E.Parse_error ".names with no signals"
            | out :: rev_ins ->
                let* () =
                  match Hashtbl.find_opt driver_line out with
                  | Some first ->
                      err
                        ~context:
                          [ ("net", out); ("first_driver_line", string_of_int first) ]
                        ~line E.Multiply_driven_net "net %S driven twice" out
                  | None ->
                      Hashtbl.replace driver_line out line;
                      Ok ()
                in
                let ins = List.rev rev_ins in
                let rec take_cover acc = function
                  | (row_line, row) :: more
                    when String.length row > 0 && row.[0] <> '.' -> (
                      match tokens row with
                      | [ pat; v ] when ins <> [] && String.length v = 1 ->
                          take_cover ((pat, v.[0]) :: acc) more
                      | [ v ] when ins = [] && String.length v = 1 ->
                          take_cover (("", v.[0]) :: acc) more
                      | _ ->
                          Result.Error (row_line, Printf.sprintf "bad cover row %S" row))
                  | remaining -> Ok (List.rev acc, remaining)
                in
                let* cover, remaining =
                  match take_cover [] rest with
                  | Ok x -> Ok x
                  | Result.Error (row_line, msg) ->
                      err ~line:row_line E.Parse_error "%s" msg
                in
                blocks := { line; ins; out; cover } :: !blocks;
                scan remaining)
        | directive :: _ when String.length directive > 0 && directive.[0] = '.' ->
            err ~line E.Unsupported "unsupported BLIF directive %S" directive
        | _ -> err ~line E.Parse_error "unexpected line %S" text)
  in
  let* () = scan lines in
  Ok (!inputs, !outputs, List.rev !blocks)

let build_block t ids b =
  let ( let* ) = Result.bind in
  let k = List.length b.ins in
  let* () =
    if k > 16 then
      err ~line:b.line ~context:[ ("net", b.out) ] E.Unsupported
        ".names with %d inputs (max 16)" k
    else Ok ()
  in
  let on_output_one = List.for_all (fun (_, v) -> v = '1') b.cover in
  let rows =
    if on_output_one then b.cover else List.filter (fun (_, v) -> v = '0') b.cover
  in
  let* () =
    if (not on_output_one) && List.exists (fun (_, v) -> v = '1') b.cover then
      err ~line:b.line ~context:[ ("net", b.out) ] E.Parse_error
        "mixed 0/1 cover for %s" b.out
    else Ok ()
  in
  let cube_of pat =
    if String.length pat <> k then
      err ~line:b.line ~context:[ ("net", b.out) ] E.Parse_error
        "cover width mismatch for %s" b.out
    else begin
      let pos = ref 0 and neg = ref 0 and bad = ref None in
      String.iteri
        (fun i c ->
          match c with
          | '1' -> pos := !pos lor (1 lsl i)
          | '0' -> neg := !neg lor (1 lsl i)
          | '-' -> ()
          | c -> bad := Some c)
        pat;
      match !bad with
      | Some c -> err ~line:b.line E.Parse_error "bad cover char %C" c
      | None -> Ok { T.pos = !pos; T.neg = !neg }
    end
  in
  let* cubes =
    List.fold_left
      (fun acc (pat, _) ->
        let* acc = acc in
        let* cube = cube_of pat in
        Ok (cube :: acc))
      (Ok []) rows
  in
  let tt = T.of_cubes k (List.rev cubes) in
  let tt = if on_output_one then tt else T.lognot tt in
  let fanins = Array.of_list (List.map (Hashtbl.find ids) b.ins) in
  let id =
    if k = 0 then Netlist.add_node t (Netlist.Constant (T.eval tt 0)) [||]
    else Netlist.add_node t (Netlist.Lut tt) fanins
  in
  Hashtbl.replace ids b.out id;
  Ok ()

(* Fixpoint stalled: explain why. A cycle among the remaining blocks is a
   combinational loop; otherwise some fanin is undriven. *)
let diagnose_stall remaining ids =
  let by_out = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_out b.out b) remaining;
  let missing =
    List.concat_map
      (fun b ->
        List.filter
          (fun i -> (not (Hashtbl.mem ids i)) && not (Hashtbl.mem by_out i))
          b.ins)
      remaining
    |> List.sort_uniq compare
  in
  match missing with
  | name :: _ ->
      let b = List.find (fun b -> List.mem name b.ins) remaining in
      err ~line:b.line
        ~context:[ ("net", name); ("undriven", String.concat "," missing) ]
        E.Undriven_net "signal %S is never driven" name
  | [] -> (
      let deps out =
        match Hashtbl.find_opt by_out out with
        | None -> []
        | Some b -> List.filter (Hashtbl.mem by_out) b.ins
      in
      let outs = List.map (fun b -> b.out) remaining in
      match Check.find_cycle ~nodes:outs ~deps with
      | Some cycle ->
          let b = Hashtbl.find by_out (List.hd cycle) in
          err ~line:b.line
            ~context:[ ("cycle", String.concat " -> " cycle) ]
            E.Combinational_loop "combinational loop through %S" (List.hd cycle)
      | None ->
          (* Unreachable: a stalled acyclic block set must miss a driver. *)
          err ~line:(List.hd remaining).line E.Internal
            "unresolved .names blocks without loop or missing driver")

let parse_string text =
  let ( let* ) = Result.bind in
  let* inputs, outputs, blocks = scan_blocks text in
  let t = Netlist.create () in
  let ids = Hashtbl.create 64 in
  List.iter (fun name -> Hashtbl.replace ids name (Netlist.add_input t name)) inputs;
  (* Blocks may reference each other in any order: resolve by repeated passes
     (combinational circuits are acyclic). *)
  let remaining = ref blocks in
  let progress = ref true in
  let failure = ref None in
  while !remaining <> [] && !progress && !failure = None do
    progress := false;
    let later = ref [] in
    List.iter
      (fun b ->
        if !failure = None then
          if List.for_all (fun i -> Hashtbl.mem ids i) b.ins then begin
            progress := true;
            match build_block t ids b with
            | Ok () -> ()
            | Result.Error e -> failure := Some e
          end
          else later := b :: !later)
      !remaining;
    remaining := List.rev !later
  done;
  match !failure with
  | Some e -> Result.Error e
  | None ->
      let* () =
        if !remaining <> [] then
          match diagnose_stall !remaining ids with
          | Ok _ -> assert false
          | Result.Error _ as e -> e
        else Ok ()
      in
      let* () =
        List.fold_left
          (fun acc name ->
            let* () = acc in
            match Hashtbl.find_opt ids name with
            | Some id ->
                Netlist.add_output t name id;
                Ok ()
            | None ->
                err ~line:0 ~context:[ ("net", name) ] E.Undriven_net
                  "undriven output %S" name)
          (Ok ()) outputs
      in
      Ok t

let parse_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text ->
      Result.map_error
        (fun e -> E.with_context e [ ("file", path) ])
        (parse_string text)
  | exception Sys_error msg -> Result.Error (E.make stage E.Io_error msg)

let read_string text = E.get_exn (parse_string text)
let read_file path = E.get_exn (parse_file path)

let node_name t id =
  match Netlist.op t id with
  | Netlist.Input -> Netlist.input_name t id
  | Netlist.Constant _ | Netlist.Buf | Netlist.Not | Netlist.And | Netlist.Or
  | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Xnor | Netlist.Mux
  | Netlist.Maj | Netlist.Lut _ ->
      Printf.sprintf "n%d" id

let write_string ?(model = "circuit") t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n.inputs" model);
  Array.iter (fun id -> Buffer.add_string buf (" " ^ Netlist.input_name t id)) (Netlist.inputs t);
  Buffer.add_string buf "\n.outputs";
  Array.iter (fun (name, _) -> Buffer.add_string buf (" " ^ name)) (Netlist.outputs t);
  Buffer.add_char buf '\n';
  let emit_cover fanin_names tt =
    let k = List.length fanin_names in
    let cubes = T.isop tt in
    if cubes = [] then Buffer.add_string buf "" (* constant 0: empty cover *)
    else
      List.iter
        (fun (c : T.cube) ->
          if k = 0 then Buffer.add_string buf "1\n"
          else begin
            for i = 0 to k - 1 do
              if (c.pos lsr i) land 1 = 1 then Buffer.add_char buf '1'
              else if (c.neg lsr i) land 1 = 1 then Buffer.add_char buf '0'
              else Buffer.add_char buf '-'
            done;
            Buffer.add_string buf " 1\n"
          end)
        cubes
  in
  Netlist.iter_nodes t (fun id op fanins ->
      match op with
      | Netlist.Input -> ()
      | Netlist.Constant _ | Netlist.Buf | Netlist.Not | Netlist.And | Netlist.Or
      | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Xnor | Netlist.Mux
      | Netlist.Maj | Netlist.Lut _ ->
          let k = Array.length fanins in
          let fanin_names = Array.to_list (Array.map (node_name t) fanins) in
          Buffer.add_string buf ".names";
          List.iter (fun n -> Buffer.add_string buf (" " ^ n)) fanin_names;
          Buffer.add_string buf (" " ^ node_name t id ^ "\n");
          let tt =
            match op with
            | Netlist.Lut tt -> tt
            | Netlist.Input -> assert false
            | Netlist.Constant _ | Netlist.Buf | Netlist.Not | Netlist.And
            | Netlist.Or | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Xnor
            | Netlist.Mux | Netlist.Maj ->
                let vars = Array.init k (fun i -> Logic.Expr.var i) in
                let e =
                  match op with
                  | Netlist.Constant b -> Logic.Expr.const b
                  | Netlist.Buf -> vars.(0)
                  | Netlist.Not -> Logic.Expr.not_ vars.(0)
                  | Netlist.And -> Logic.Expr.and_ (Array.to_list vars)
                  | Netlist.Or -> Logic.Expr.or_ (Array.to_list vars)
                  | Netlist.Xor -> Logic.Expr.xor (Array.to_list vars)
                  | Netlist.Nand -> Logic.Expr.not_ (Logic.Expr.and_ (Array.to_list vars))
                  | Netlist.Nor -> Logic.Expr.not_ (Logic.Expr.or_ (Array.to_list vars))
                  | Netlist.Xnor -> Logic.Expr.not_ (Logic.Expr.xor (Array.to_list vars))
                  | Netlist.Mux ->
                      Logic.Expr.or_
                        [ Logic.Expr.and_ [ vars.(0); vars.(2) ];
                          Logic.Expr.and_ [ Logic.Expr.not_ vars.(0); vars.(1) ] ]
                  | Netlist.Maj ->
                      Logic.Expr.or_
                        [ Logic.Expr.and_ [ vars.(0); vars.(1) ];
                          Logic.Expr.and_ [ vars.(0); vars.(2) ];
                          Logic.Expr.and_ [ vars.(1); vars.(2) ] ]
                  | Netlist.Input | Netlist.Lut _ -> assert false
                in
                Logic.Expr.to_tt k e
          in
          emit_cover fanin_names tt);
  (* Alias outputs whose name differs from their driver's printed name. *)
  Array.iter
    (fun (name, id) ->
      let driver = node_name t id in
      if driver <> name then
        Buffer.add_string buf (Printf.sprintf ".names %s %s\n1 1\n" driver name))
    (Netlist.outputs t);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model path t =
  let oc = open_out path in
  output_string oc (write_string ?model t);
  close_out oc
