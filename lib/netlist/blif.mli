(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Supports the combinational subset used by synthesis benchmarks:
    [.model], [.inputs], [.outputs], [.names] with single-output covers, and
    [.end]. Covers become {!Netlist.op.Lut} nodes.

    The reader is hardened: malformed directives, truncated files (missing
    [.end]), duplicate [.model] names, multiply-driven or undriven nets and
    combinational loops all surface as typed [netlist/*] errors whose
    context carries the offending 1-based line number ([("line", ...)]) and
    net names — never an escaping exception. *)

val parse_string : string -> (Netlist.t, Runtime.Cnt_error.t) result

val parse_file : string -> (Netlist.t, Runtime.Cnt_error.t) result
(** Adds [("file", path)] to the error context; I/O failures become
    [netlist/io-error]. *)

val read_string : string -> Netlist.t
(** Raising variant of {!parse_string}: raises [Runtime.Cnt_error.Error]. *)

val read_file : string -> Netlist.t

val write_string : ?model:string -> Netlist.t -> string
val write_file : ?model:string -> string -> Netlist.t -> unit
