(** Netlist well-formedness checking, run before technology mapping.

    {!Netlist.t} is acyclic and single-driver by construction, so the hard
    malformations (combinational loops, multiply-driven nets) are caught at
    the text boundary by {!Blif} — using {!find_cycle} from this module.
    What remains checkable on a built netlist is naming consistency and
    connectivity hygiene: duplicate port names and circuits with no outputs
    are errors; logic that drives no output ("dangling fanout") and unused
    primary inputs are reported so the pipeline can warn instead of
    silently estimating power for dead logic. *)

type report = {
  dangling_nodes : int;  (** gate nodes with no path to any primary output *)
  unused_inputs : string list;  (** primary inputs no output depends on *)
}

val clean : report -> bool
(** No dangling nodes and no unused inputs. *)

val pp_report : Format.formatter -> report -> unit

val check : Netlist.t -> (report, Runtime.Cnt_error.t) result
(** Errors (all stage [netlist]): [Validation_error] for a circuit with no
    outputs, [Multiply_driven_net] for duplicate output names,
    [Validation_error] for duplicate input names. *)

val check_exn : Netlist.t -> report
(** Raising variant of {!check}. *)

val find_cycle : nodes:string list -> deps:(string -> string list) -> string list option
(** Generic cycle finder over a named dependency graph (depth-first, three
    colors). Returns one cycle as a name path [n0 -> n1 -> ... -> n0]
    (first element repeated at the end is omitted), or [None] if the graph
    restricted to [nodes] is acyclic. Used by the BLIF reader to turn a
    stalled resolution fixpoint into a [Combinational_loop] diagnosis. *)
