module B = Logic.Bitvec
module TT = Logic.Truthtable
module T = Runtime.Telemetry

type result = { num_patterns : int; node_values : B.t array }

(* ------------------------------------------------------------------ *)
(* Flat compiled form. The netlist is lowered once per [run] into an
   instruction array over the raw int64 word buffers (inputs alias the
   stimulus vectors, every other node gets a preallocated vector), and
   the kernel below evaluates a word range with pure array arithmetic —
   no allocation, no dispatch beyond one match per instruction per
   chunk. Word-level bitwise ops are word-local, so evaluating disjoint
   word ranges on different domains produces exactly the sequential
   result; tail bits past [num_patterns] are clamped once at the end. *)

type kind =
  | Kconst of bool
  | Kbuf
  | Knot
  | Kand
  | Kor
  | Kxor
  | Knand
  | Knor
  | Kxnor
  | Kmux
  | Kmaj
  | Klut of TT.cube array

type instr = { dst : int64 array; srcs : int64 array array; kind : kind }

let compile t node_values =
  let rev = ref [] in
  Netlist.iter_nodes t (fun id op fanins ->
      let kind =
        match (op : Netlist.op) with
        | Netlist.Input -> None
        | Netlist.Constant b -> Some (Kconst b)
        | Netlist.Buf -> Some Kbuf
        | Netlist.Not -> Some Knot
        | Netlist.And -> Some Kand
        | Netlist.Or -> Some Kor
        | Netlist.Xor -> Some Kxor
        | Netlist.Nand -> Some Knand
        | Netlist.Nor -> Some Knor
        | Netlist.Xnor -> Some Kxnor
        | Netlist.Mux -> Some Kmux
        | Netlist.Maj -> Some Kmaj
        | Netlist.Lut tt -> Some (Klut (Array.of_list (TT.isop tt)))
      in
      match kind with
      | None -> ()
      | Some kind ->
          rev :=
            {
              dst = B.words node_values.(id);
              srcs = Array.map (fun f -> B.words node_values.(f)) fanins;
              kind;
            }
            :: !rev);
  Array.of_list (List.rev !rev)

(* Identity-seeded folds match the sequential [fold_map2] semantics:
   all-ones is the identity of AND, zero of OR and XOR, so a zero-fanin
   gate yields the identity and an n-ary gate the plain fold. *)
let eval_range instrs ~lo ~len =
  let hi = lo + len - 1 in
  let nary dst srcs init op negate =
    let n = Array.length srcs in
    for w = lo to hi do
      let acc = ref init in
      for i = 0 to n - 1 do
        acc := op !acc srcs.(i).(w)
      done;
      dst.(w) <- (if negate then Int64.lognot !acc else !acc)
    done
  in
  Array.iter
    (fun { dst; srcs; kind } ->
      match kind with
      | Kconst b ->
          let v = if b then -1L else 0L in
          for w = lo to hi do
            dst.(w) <- v
          done
      | Kbuf ->
          let a = srcs.(0) in
          for w = lo to hi do
            dst.(w) <- a.(w)
          done
      | Knot ->
          let a = srcs.(0) in
          for w = lo to hi do
            dst.(w) <- Int64.lognot a.(w)
          done
      | Kand -> nary dst srcs (-1L) Int64.logand false
      | Kor -> nary dst srcs 0L Int64.logor false
      | Kxor -> nary dst srcs 0L Int64.logxor false
      | Knand -> nary dst srcs (-1L) Int64.logand true
      | Knor -> nary dst srcs 0L Int64.logor true
      | Kxnor -> nary dst srcs 0L Int64.logxor true
      | Kmux ->
          let s = srcs.(0) and a = srcs.(1) and b = srcs.(2) in
          for w = lo to hi do
            let sw = s.(w) in
            dst.(w) <-
              Int64.logor (Int64.logand sw b.(w))
                (Int64.logand (Int64.lognot sw) a.(w))
          done
      | Kmaj ->
          let a = srcs.(0) and b = srcs.(1) and c = srcs.(2) in
          for w = lo to hi do
            let aw = a.(w) and bw = b.(w) and cw = c.(w) in
            dst.(w) <-
              Int64.logor (Int64.logand aw bw)
                (Int64.logor (Int64.logand aw cw) (Int64.logand bw cw))
          done
      | Klut cubes ->
          let ncubes = Array.length cubes and nsrc = Array.length srcs in
          for w = lo to hi do
            let acc = ref 0L in
            for c = 0 to ncubes - 1 do
              let { TT.pos; neg } = cubes.(c) in
              let prod = ref (-1L) in
              for i = 0 to nsrc - 1 do
                if (pos lsr i) land 1 = 1 then
                  prod := Int64.logand !prod srcs.(i).(w)
                else if (neg lsr i) land 1 = 1 then
                  prod := Int64.logand !prod (Int64.lognot srcs.(i).(w))
              done;
              acc := Int64.logor !acc !prod
            done;
            dst.(w) <- !acc
          done)
    instrs

let words_per_vec patterns = max 1 ((patterns + 63) / 64)

(* Patterns covered by the word range [lo, lo+len), clipped to the tail. *)
let patterns_in ~patterns ~lo ~len =
  let first = lo * 64 in
  let last = min ((lo + len) * 64) patterns in
  max 0 (last - first)

let run ?domains t input_vectors =
  let ins = Netlist.inputs t in
  assert (Array.length input_vectors = Array.length ins);
  let num_patterns =
    if Array.length input_vectors = 0 then 0 else B.length input_vectors.(0)
  in
  Array.iter (fun v -> assert (B.length v = num_patterns)) input_vectors;
  let node_values =
    Array.init (Netlist.size t) (fun _ -> B.create num_patterns)
  in
  Array.iteri (fun i id -> node_values.(id) <- input_vectors.(i)) ins;
  let instrs = compile t node_values in
  let wpv = words_per_vec num_patterns in
  let t0 = if T.enabled () then T.now () else 0.0 in
  let stats =
    Runtime.Dpool.run ?domains ~units:wpv (fun ~worker ~lo ~len ->
        eval_range instrs ~lo ~len;
        if T.enabled () then begin
          T.count "sim.words_evaluated" (Array.length instrs * len);
          T.count
            (Printf.sprintf "sim.d%d.patterns_simulated" worker)
            (patterns_in ~patterns:num_patterns ~lo ~len)
        end)
  in
  Array.iter B.clamp node_values;
  if T.enabled () then begin
    let dt = T.now () -. t0 in
    T.count "sim.nodes_evaluated" (Array.length instrs);
    T.observe "sim.domains" (float_of_int stats.Runtime.Dpool.domains_used);
    if dt > 0.0 && num_patterns > 0 then
      T.observe "sim.patterns_per_s" (float_of_int num_patterns /. dt)
  end;
  { num_patterns; node_values }

let random_stimulus ?domains ?(seed = 42L) ~inputs ~patterns () =
  let vecs = Array.init inputs (fun _ -> B.create patterns) in
  if inputs > 0 then begin
    let wpv = Array.length (B.words vecs.(0)) in
    (* One unit = one storage word, numbered in the exact order the
       sequential per-vector fill consumes PRNG draws; jumping the
       generator to a chunk's first draw keeps the parallel fill
       bit-identical to the sequential one. *)
    ignore
      (Runtime.Dpool.run ?domains ~units:(inputs * wpv)
         (fun ~worker:_ ~lo ~len ->
           let rng = Logic.Prng.create seed in
           Logic.Prng.jump rng lo;
           for u = lo to lo + len - 1 do
             (B.words vecs.(u / wpv)).(u mod wpv) <- Logic.Prng.next64 rng
           done));
    Array.iter B.clamp vecs
  end;
  vecs

let run_random ?domains ?(seed = 42L) t n =
  let stimulus =
    random_stimulus ?domains ~seed ~inputs:(Netlist.num_inputs t) ~patterns:n ()
  in
  run ?domains t stimulus

let signal_probability r id =
  if r.num_patterns = 0 then 0.0
  else float_of_int (B.popcount r.node_values.(id)) /. float_of_int r.num_patterns

let toggle_rate r id =
  if r.num_patterns <= 1 then 0.0
  else float_of_int (B.transitions r.node_values.(id)) /. float_of_int (r.num_patterns - 1)

let output_values t r =
  Array.map (fun (name, id) -> (name, r.node_values.(id))) (Netlist.outputs t)
