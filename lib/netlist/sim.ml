module B = Logic.Bitvec
module T = Logic.Truthtable

type result = { num_patterns : int; node_values : B.t array }

let apply_op op (args : B.t array) num_patterns =
  let fold_map2 f init =
    if Array.length args = 0 then init
    else Array.fold_left f args.(0) (Array.sub args 1 (Array.length args - 1))
  in
  match (op : Netlist.op) with
  | Netlist.Input -> invalid_arg "Sim.apply_op: Input"
  | Netlist.Constant b ->
      let v = B.create num_patterns in
      if b then B.lognot v else v
  | Netlist.Buf -> B.copy args.(0)
  | Netlist.Not -> B.lognot args.(0)
  | Netlist.And -> fold_map2 B.logand (B.lognot (B.create num_patterns))
  | Netlist.Or -> fold_map2 B.logor (B.create num_patterns)
  | Netlist.Xor -> fold_map2 B.logxor (B.create num_patterns)
  | Netlist.Nand -> B.lognot (fold_map2 B.logand (B.lognot (B.create num_patterns)))
  | Netlist.Nor -> B.lognot (fold_map2 B.logor (B.create num_patterns))
  | Netlist.Xnor -> B.lognot (fold_map2 B.logxor (B.create num_patterns))
  | Netlist.Mux ->
      B.logor (B.logand args.(0) args.(2)) (B.logand (B.lognot args.(0)) args.(1))
  | Netlist.Maj ->
      B.logor
        (B.logand args.(0) args.(1))
        (B.logor (B.logand args.(0) args.(2)) (B.logand args.(1) args.(2)))
  | Netlist.Lut tt ->
      (* Evaluate via the irredundant cover: OR of word-level cube products. *)
      let cubes = T.isop tt in
      let acc = ref (B.create num_patterns) in
      List.iter
        (fun (c : T.cube) ->
          let prod = ref (B.lognot (B.create num_patterns)) in
          Array.iteri
            (fun i arg ->
              if (c.pos lsr i) land 1 = 1 then prod := B.logand !prod arg
              else if (c.neg lsr i) land 1 = 1 then prod := B.logand !prod (B.lognot arg))
            args;
          acc := B.logor !acc !prod)
        cubes;
      !acc

let run t input_vectors =
  let module T = Runtime.Telemetry in
  let ins = Netlist.inputs t in
  assert (Array.length input_vectors = Array.length ins);
  let num_patterns =
    if Array.length input_vectors = 0 then 0 else B.length input_vectors.(0)
  in
  Array.iter (fun v -> assert (B.length v = num_patterns)) input_vectors;
  let node_values = Array.make (Netlist.size t) (B.create num_patterns) in
  Array.iteri (fun i id -> node_values.(id) <- input_vectors.(i)) ins;
  let t0 = if T.enabled () then T.now () else 0.0 in
  let evaluated = ref 0 in
  Netlist.iter_nodes t (fun id op fanins ->
      match op with
      | Netlist.Input -> ()
      | Netlist.Constant _ | Netlist.Buf | Netlist.Not | Netlist.And | Netlist.Or
      | Netlist.Xor | Netlist.Nand | Netlist.Nor | Netlist.Xnor | Netlist.Mux
      | Netlist.Maj | Netlist.Lut _ ->
          incr evaluated;
          let args = Array.map (fun f -> node_values.(f)) fanins in
          node_values.(id) <- apply_op op args num_patterns);
  if T.enabled () then begin
    let dt = T.now () -. t0 in
    let words_per_vec = (num_patterns + 63) / 64 in
    T.count "sim.nodes_evaluated" !evaluated;
    T.count "sim.words_evaluated" (!evaluated * words_per_vec);
    if dt > 0.0 && num_patterns > 0 then
      T.observe "sim.patterns_per_s" (float_of_int num_patterns /. dt)
  end;
  { num_patterns; node_values }

let run_random ?(seed = 42L) t n =
  let rng = Logic.Prng.create seed in
  let vectors =
    Array.init (Netlist.num_inputs t) (fun _ ->
        let v = B.create n in
        B.fill_random rng v;
        v)
  in
  run t vectors

let signal_probability r id =
  if r.num_patterns = 0 then 0.0
  else float_of_int (B.popcount r.node_values.(id)) /. float_of_int r.num_patterns

let toggle_rate r id =
  if r.num_patterns <= 1 then 0.0
  else float_of_int (B.transitions r.node_values.(id)) /. float_of_int (r.num_patterns - 1)

let output_values t r =
  Array.map (fun (name, id) -> (name, r.node_values.(id))) (Netlist.outputs t)
