(** Packed bit vectors used for 64-way parallel logic simulation.

    A [Bitvec.t] holds [length] bits packed into 64-bit words. Bit [i] of the
    vector is bit [i mod 64] of word [i / 64]. Logical operations are
    word-parallel, which is what makes 640 K-pattern power estimation cheap. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. *)

val length : t -> int

val words : t -> int64 array
(** Underlying storage (shared, not copied). Bits beyond [length] in the last
    word are kept at zero by all operations of this module. *)

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val fill_random : Prng.t -> t -> unit
(** Overwrite every bit with an independent fair coin flip. Draws exactly
    one {!Prng.next64} per storage word (i.e. [max 1 (words)]), in word
    order — parallel fills rely on this draw count to split the stream
    with {!Prng.jump}. *)

val clamp : t -> unit
(** Re-zero the bits past [length] in the last word. Only needed by code
    that writes {!words} directly (the flat simulation kernels); every
    operation of this module already maintains the invariant. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val equal : t -> t -> bool
val popcount : t -> int

val transitions : t -> int
(** [transitions v] counts indices [i] with [get v i <> get v (i+1)] — the
    number of toggles along the bit sequence, used for switching-activity
    estimation when bits encode consecutive simulation cycles. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
