type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let split t = create (next64 t)

(* SplitMix64 is counter-mode: the k-th output is mix (seed + k*golden),
   so skipping is a single multiply-add on the state. *)
let jump t n =
  assert (n >= 0);
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int n) golden)
