(** Deterministic SplitMix64 pseudo-random number generator.

    All stochastic parts of the reproduction (random simulation patterns,
    randomized benchmark generators) draw from this generator so that every
    experiment is bit-reproducible across runs and machines. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val jump : t -> int -> unit
(** [jump t n] advances [t] by exactly [n] draws in O(1): the next
    {!next64} returns what the [(n+1)]-th call would have. SplitMix64 is
    a counter-mode generator, so parallel simulation can hand each worker
    a jumped copy and produce streams bit-identical to one sequential
    generator filling the whole pattern axis. [n] must be
    non-negative. *)
