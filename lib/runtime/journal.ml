module E = Cnt_error
module J = Checkpoint

type level = Debug | Info | Warn

type kind =
  | Run_started
  | Run_finished
  | Experiment_started
  | Experiment_done
  | Worker_spawned
  | Worker_exited
  | Worker_retry
  | Worker_timeout
  | Worker_killed
  | Checkpoint_written
  | Solver_damped_retry
  | Golden_drift
  | Cache_hit
  | Cache_miss
  | Cache_write
  | Server_started
  | Server_draining
  | Server_stopped
  | Request_admitted
  | Request_rejected
  | Request_done
  | Overload_shed
  | Worker_respawned
  | Breaker_tripped
  | Shard_enqueued
  | Shard_leased
  | Shard_done
  | Shard_failed
  | Shard_quarantined
  | Lease_reclaimed
  | Custom of string

type event = {
  ev_seq : int;
  ev_time : float;
  ev_pid : int;
  ev_level : level;
  ev_kind : kind;
  ev_fields : (string * string) list;
}

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | _ -> None

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

let kind_name = function
  | Run_started -> "run_started"
  | Run_finished -> "run_finished"
  | Experiment_started -> "experiment_started"
  | Experiment_done -> "experiment_done"
  | Worker_spawned -> "worker_spawned"
  | Worker_exited -> "worker_exited"
  | Worker_retry -> "worker_retry"
  | Worker_timeout -> "worker_timeout"
  | Worker_killed -> "worker_killed"
  | Checkpoint_written -> "checkpoint_written"
  | Solver_damped_retry -> "solver_damped_retry"
  | Golden_drift -> "golden_drift"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Cache_write -> "cache_write"
  | Server_started -> "server_started"
  | Server_draining -> "server_draining"
  | Server_stopped -> "server_stopped"
  | Request_admitted -> "request_admitted"
  | Request_rejected -> "request_rejected"
  | Request_done -> "request_done"
  | Overload_shed -> "overload_shed"
  | Worker_respawned -> "worker_respawned"
  | Breaker_tripped -> "breaker_tripped"
  | Shard_enqueued -> "shard_enqueued"
  | Shard_leased -> "shard_leased"
  | Shard_done -> "shard_done"
  | Shard_failed -> "shard_failed"
  | Shard_quarantined -> "shard_quarantined"
  | Lease_reclaimed -> "lease_reclaimed"
  | Custom s -> s

let kind_of_name = function
  | "run_started" -> Run_started
  | "run_finished" -> Run_finished
  | "experiment_started" -> Experiment_started
  | "experiment_done" -> Experiment_done
  | "worker_spawned" -> Worker_spawned
  | "worker_exited" -> Worker_exited
  | "worker_retry" -> Worker_retry
  | "worker_timeout" -> Worker_timeout
  | "worker_killed" -> Worker_killed
  | "checkpoint_written" -> Checkpoint_written
  | "solver_damped_retry" -> Solver_damped_retry
  | "golden_drift" -> Golden_drift
  | "cache_hit" -> Cache_hit
  | "cache_miss" -> Cache_miss
  | "cache_write" -> Cache_write
  | "server_started" -> Server_started
  | "server_draining" -> Server_draining
  | "server_stopped" -> Server_stopped
  | "request_admitted" -> Request_admitted
  | "request_rejected" -> Request_rejected
  | "request_done" -> Request_done
  | "overload_shed" -> Overload_shed
  | "worker_respawned" -> Worker_respawned
  | "breaker_tripped" -> Breaker_tripped
  | "shard_enqueued" -> Shard_enqueued
  | "shard_leased" -> Shard_leased
  | "shard_done" -> Shard_done
  | "shard_failed" -> Shard_failed
  | "shard_quarantined" -> Shard_quarantined
  | "lease_reclaimed" -> Lease_reclaimed
  | other -> Custom other

(* ------------------------------------------------------------------ *)
(* State                                                               *)

let on = ref false
let seq = ref 0
let sink : out_channel option ref = ref None
let capture : event list ref option ref = ref None
let echo_threshold : level option ref = ref (Some Info)

(* Rotation state: remembered so [write_line] can roll the sink over
   when it crosses the size bound. [sink_bytes] is seeded from the file
   size at open (the sink appends) and counted per line thereafter. *)
let sink_path : string option ref = ref None
let rot_max_bytes : int option ref = ref None
let rot_keep = ref 4
let sink_bytes = ref 0

let enabled () = !on
let set_enabled b = on := b
let set_verbosity v = echo_threshold := v
let verbosity () = !echo_threshold

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let event_to_json ev =
  J.Obj
    [
      ("seq", J.Num (float_of_int ev.ev_seq));
      ("t", J.Num ev.ev_time);
      ("pid", J.Num (float_of_int ev.ev_pid));
      ("level", J.Str (level_name ev.ev_level));
      ("event", J.Str (kind_name ev.ev_kind));
      ("fields", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) ev.ev_fields));
    ]

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let event_of_json j =
  let* seq = Result.bind (J.field j "seq") (J.as_num "seq") in
  let* ev_time = Result.bind (J.field j "t") (J.as_num "t") in
  let* pid = Result.bind (J.field j "pid") (J.as_num "pid") in
  let* level_str = Result.bind (J.field j "level") (J.as_str "level") in
  let* ev_level =
    match level_of_name level_str with
    | Some l -> Ok l
    | None -> E.error E.Cli E.Parse_error "unknown event level %S" level_str
  in
  let* kind_str = Result.bind (J.field j "event") (J.as_str "event") in
  let* ev_fields =
    match J.field j "fields" with
    | Ok (J.Obj fields) ->
        map_result
          (fun (k, v) ->
            let* s = J.as_str k v in
            Ok (k, s))
          fields
    | Ok _ -> E.error E.Cli E.Parse_error "field \"fields\" must be an object"
    | Error e -> Error e
  in
  Ok
    {
      ev_seq = int_of_float seq;
      ev_time;
      ev_pid = int_of_float pid;
      ev_level;
      ev_kind = kind_of_name kind_str;
      ev_fields;
    }

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let close_sink () =
  match !sink with
  | None -> ()
  | Some oc ->
      sink := None;
      sink_path := None;
      (try close_out oc with Sys_error _ -> ())

let rotated_path path i = Printf.sprintf "%s.%d" path i

let open_sink ?max_bytes ?(keep = 4) ~path () =
  close_sink ();
  match
    mkdir_p (Filename.dirname path);
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  with
  | oc ->
      sink := Some oc;
      sink_path := Some path;
      rot_max_bytes := max_bytes;
      rot_keep := max 1 keep;
      sink_bytes :=
        (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0);
      Ok ()
  | exception Sys_error msg ->
      E.error ~context:[ ("path", path) ] E.Cli E.Io_error "%s" msg
  | exception Unix.Unix_error (err, _, _) ->
      E.error ~context:[ ("path", path) ] E.Cli E.Io_error "%s"
        (Unix.error_message err)

(* Roll the live file to [path.1], shifting [path.i] to [path.i+1] and
   dropping the oldest segment past [keep]. Best-effort: a rotation that
   fails (permissions, races) leaves the journal appending to the live
   file rather than losing events. *)
let rotate_sink path =
  (match !sink with
  | None -> ()
  | Some oc ->
      sink := None;
      (try close_out oc with Sys_error _ -> ()));
  let keep = !rot_keep in
  (try
     let oldest = rotated_path path keep in
     if Sys.file_exists oldest then Sys.remove oldest
   with Sys_error _ -> ());
  for i = keep - 1 downto 1 do
    let src = rotated_path path i in
    if Sys.file_exists src then
      try Sys.rename src (rotated_path path (i + 1)) with Sys_error _ -> ()
  done;
  (try Sys.rename path (rotated_path path 1) with Sys_error _ -> ());
  (match
     open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
   with
  | oc -> sink := Some oc
  | exception Sys_error _ -> ());
  sink_bytes := 0

(* A whole line then a flush: a crash can tear at most the line being
   written, and readers skip torn lines (see [load]). *)
let write_line ev =
  match !sink with
  | None -> ()
  | Some oc -> (
      try
        let line = J.json_to_string_compact (event_to_json ev) in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        sink_bytes := !sink_bytes + String.length line + 1;
        match (!rot_max_bytes, !sink_path) with
        | Some limit, Some path when !sink_bytes >= limit -> rotate_sink path
        | _ -> ()
      with Sys_error _ -> ())

let append_events evs = List.iter write_line evs

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let pp_event ppf ev =
  Format.fprintf ppf "%s" (kind_name ev.ev_kind);
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) ev.ev_fields

let echoes level =
  match !echo_threshold with
  | None -> false
  | Some th -> level_rank level >= level_rank th

let emit ?(level = Info) ?msg kind fields =
  if !on then begin
    incr seq;
    (* Stamp the active trace context onto every event (unless the call
       site already carried trace fields): this is what lets [cntpower
       trace --request] slice one request out of a shared journal. The
       list append only happens when the journal is on, preserving the
       zero-alloc disabled path. *)
    let fields =
      match Tracectx.current () with
      | Some ctx when not (List.mem_assoc "trace" fields) ->
          fields @ Tracectx.to_fields ctx
      | _ -> fields
    in
    let ev =
      {
        ev_seq = !seq;
        ev_time = Unix.gettimeofday ();
        ev_pid = Unix.getpid ();
        ev_level = level;
        ev_kind = kind;
        ev_fields = fields;
      }
    in
    (match !capture with
    | Some buf -> buf := ev :: !buf
    | None -> write_line ev);
    if echoes level then
      match msg with
      | Some m -> Format.eprintf "%s@." m
      | None -> Format.eprintf "journal: %a@." pp_event ev
  end

let begin_capture () =
  if !on then begin
    (* The inherited channel shares the parent's file description; the
       worker must never write through it. Dropping the reference (without
       closing: closing would flush shared state) is enough — the worker
       _exits without running at_exit. *)
    sink := None;
    capture := Some (ref []);
    seq := 0
  end

let end_capture () =
  match !capture with
  | None -> []
  | Some buf ->
      capture := None;
      List.rev !buf

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

let find ev name = List.assoc_opt name ev.ev_fields

let parse_lines text (evs0, skipped0) =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun (evs, skipped) line ->
      if String.trim line = "" then (evs, skipped)
      else
        match
          let* j = J.json_of_string line in
          event_of_json j
        with
        | Ok ev -> (ev :: evs, skipped)
        | Error _ -> (evs, skipped + 1))
    (evs0, skipped0) lines

let load ~path =
  let* main_text = J.read_file path in
  (* Rotated segments, oldest (highest index) first, then the live file:
     [load] sees one logical journal in append order. A rotated segment
     that vanishes mid-read (a concurrent rotation) is tolerated; only
     the live file being unreadable is an error. *)
  let rec segments i acc =
    let p = rotated_path path i in
    if Sys.file_exists p then segments (i + 1) (p :: acc) else acc
  in
  let acc =
    List.fold_left
      (fun acc p ->
        match J.read_file p with
        | Ok text -> parse_lines text acc
        | Error _ -> acc)
      ([], 0) (segments 1 [])
  in
  let events, skipped = parse_lines main_text acc in
  Ok (List.rev events, skipped)
