module T = Telemetry
module C = Checkpoint
module E = Cnt_error

type tolerances = {
  wall_rtol : float;
  counter_rtol : float;
  scalar_rtol : float;
  dist_rtol : float;
  min_wall_s : float;
}

let default =
  {
    wall_rtol = 0.5;
    counter_rtol = 0.1;
    scalar_rtol = 0.05;
    dist_rtol = 0.5;
    min_wall_s = 0.05;
  }

type verdict = Within | Regressed | Improved | Missing | Added
type kind = Span | Counter | Scalar | Dist

type item = {
  i_kind : kind;
  i_name : string;
  i_base : float option;
  i_cur : float option;
  i_verdict : verdict;
}

type report = { tol : tolerances; items : item list }

let verdict_name = function
  | Within -> "within"
  | Regressed -> "regressed"
  | Improved -> "improved"
  | Missing -> "missing"
  | Added -> "added"

let kind_name = function
  | Span -> "span"
  | Counter -> "counter"
  | Scalar -> "scalar"
  | Dist -> "dist"

let delta_rel i =
  match (i.i_base, i.i_cur) with
  | Some b, Some c when Float.abs b > 0.0 -> Some ((c -. b) /. Float.abs b)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)

(* Flatten a span tree into (path, total_s) rows; calls are not compared
   (attempt counts legitimately differ between runs). *)
let flatten_spans spans =
  let rec go prefix acc (s : T.span) =
    let path = prefix ^ s.T.span_name in
    let acc = (path, s.T.total_s) :: acc in
    List.fold_left (go (path ^ "/")) acc s.T.children
  in
  List.fold_left (go "") [] spans

(* Union of two assoc lists by key, preserving a deterministic order. *)
let union_keys base cur =
  let keys = List.map fst base @ List.map fst cur in
  List.sort_uniq String.compare keys

let pair ~kind ~verdict base cur =
  let keys = union_keys base cur in
  List.map
    (fun name ->
      let b = List.assoc_opt name base in
      let c = List.assoc_opt name cur in
      {
        i_kind = kind;
        i_name = name;
        i_base = b;
        i_cur = c;
        i_verdict = verdict b c;
      })
    keys

let span_verdict tol b c =
  match (b, c) with
  | None, None -> Within
  | Some _, None -> Missing
  | None, Some _ -> Added
  | Some b, Some c ->
      if b < tol.min_wall_s && c < tol.min_wall_s then Within
      else if c > b *. (1.0 +. tol.wall_rtol) then Regressed
      else if c < b *. (1.0 -. tol.wall_rtol) then Improved
      else Within

(* Distributions in the profile are throughput-like (patterns/s, parallel
   speedup): higher is better, so only a drop beyond tolerance fails. *)
let dist_verdict rtol b c =
  match (b, c) with
  | None, None -> Within
  | Some _, None -> Missing
  | None, Some _ -> Added
  | Some b, Some c ->
      if c < b *. (1.0 -. rtol) then Regressed
      else if c > b *. (1.0 +. rtol) then Improved
      else Within

let drift_verdict rtol b c =
  match (b, c) with
  | None, None -> Within
  | Some _, None -> Missing
  | None, Some _ -> Added
  | Some b, Some c ->
      let scale = Float.max (Float.abs b) 1e-300 in
      if Float.abs (c -. b) > rtol *. scale then Regressed else Within

let compare_profiles ?(tol = default) ~base cur =
  let spans =
    pair ~kind:Span
      ~verdict:(span_verdict tol)
      (flatten_spans base.T.p_spans)
      (flatten_spans cur.T.p_spans)
  in
  let counters =
    pair ~kind:Counter
      ~verdict:(drift_verdict tol.counter_rtol)
      (List.map (fun (k, v) -> (k, float_of_int v)) base.T.p_counters)
      (List.map (fun (k, v) -> (k, float_of_int v)) cur.T.p_counters)
  in
  let dists =
    pair ~kind:Dist
      ~verdict:(dist_verdict tol.dist_rtol)
      (List.map (fun (k, d) -> (k, T.mean d)) base.T.p_dists)
      (List.map (fun (k, d) -> (k, T.mean d)) cur.T.p_dists)
  in
  spans @ counters @ dists

let manifest_scalars (m : C.manifest) =
  List.concat_map
    (fun (e : C.entry) ->
      if e.C.status = C.Failed then []
      else
        List.map (fun (k, v) -> (e.C.experiment ^ "/" ^ k, v)) e.C.scalars)
    m.C.entries

let compare_manifests ?(tol = default) ~base cur =
  pair ~kind:Scalar
    ~verdict:(drift_verdict tol.scalar_rtol)
    (manifest_scalars base) (manifest_scalars cur)

let regressions r =
  List.filter (fun i -> i.i_verdict = Regressed) r.items

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_value ppf = function
  | None -> Format.fprintf ppf "%10s" "-"
  | Some v ->
      if Float.abs v >= 1e4 || (Float.abs v < 1e-3 && v <> 0.0) then
        Format.fprintf ppf "%10.3e" v
      else Format.fprintf ppf "%10.4g" v

let pp_item ppf i =
  Format.fprintf ppf "  %-9s %-44s %a %a" (verdict_name i.i_verdict) i.i_name
    pp_value i.i_base pp_value i.i_cur;
  (match delta_rel i with
  | Some d -> Format.fprintf ppf "  %+7.1f%%" (100.0 *. d)
  | None -> Format.fprintf ppf "  %8s" "-");
  Format.fprintf ppf "@."

let pp ppf r =
  let section kind title =
    match List.filter (fun i -> i.i_kind = kind) r.items with
    | [] -> ()
    | items ->
        Format.fprintf ppf "%s (%-44s %10s %10s %9s):@." title "name" "base"
          "current" "delta";
        (* Noise control: inside tolerance AND unremarkable rows are
           summarized, everything notable is printed. *)
        let notable, quiet =
          List.partition (fun i -> i.i_verdict <> Within) items
        in
        List.iter (pp_item ppf) notable;
        if quiet <> [] then
          Format.fprintf ppf "  (%d more within tolerance)@."
            (List.length quiet)
  in
  section Span "spans";
  section Counter "counters";
  section Dist "dists (means)";
  section Scalar "scalars";
  let count v =
    List.length (List.filter (fun i -> i.i_verdict = v) r.items)
  in
  Format.fprintf ppf
    "compare: %d compared — %d regressed, %d improved, %d missing, %d added@."
    (List.length r.items) (count Regressed) (count Improved) (count Missing)
    (count Added)

let to_json r =
  let num_opt = function None -> C.Null | Some v -> C.Num v in
  C.Obj
    [
      ( "tolerances",
        C.Obj
          [
            ("wall_rtol", C.Num r.tol.wall_rtol);
            ("counter_rtol", C.Num r.tol.counter_rtol);
            ("scalar_rtol", C.Num r.tol.scalar_rtol);
            ("dist_rtol", C.Num r.tol.dist_rtol);
            ("min_wall_s", C.Num r.tol.min_wall_s);
          ] );
      ( "items",
        C.Arr
          (List.map
             (fun i ->
               C.Obj
                 [
                   ("kind", C.Str (kind_name i.i_kind));
                   ("name", C.Str i.i_name);
                   ("base", num_opt i.i_base);
                   ("current", num_opt i.i_cur);
                   ("delta_rel", num_opt (delta_rel i));
                   ("verdict", C.Str (verdict_name i.i_verdict));
                 ])
             r.items) );
      ("regressions", C.Num (float_of_int (List.length (regressions r))));
    ]

let regression_error r =
  match regressions r with
  | [] -> None
  | regs ->
      let worst =
        List.sort
          (fun a b ->
            compare
              (Option.value ~default:0.0 (delta_rel b))
              (Option.value ~default:0.0 (delta_rel a)))
          regs
      in
      let names =
        List.filteri (fun idx _ -> idx < 5) worst
        |> List.map (fun i -> i.i_name)
        |> String.concat ","
      in
      Some
        (E.makef
           ~context:
             [
               ("regressed", string_of_int (List.length regs));
               ("worst", names);
             ]
           E.Cli E.Regression
           "%d of %d compared metrics regressed beyond tolerance"
           (List.length regs) (List.length r.items))
