(** Durable run manifests and the golden-result regression gate.

    A run of [cntpower all] writes `_runs/<name>/manifest.json` after
    every completed experiment: name, seed, pattern count, wall time, a
    digest of the scalar outputs and the scalars themselves. A later
    invocation with [--resume] skips entries already recorded as passed
    (same seed and pattern count), and [cntpower golden --check] compares
    the manifest scalars against a committed golden file with per-metric
    relative tolerances — the paper's headline numbers as a machine
    regression gate.

    The JSON reader/writer is self-contained (no external dependency) and
    accepts standard JSON; malformed input surfaces as a typed
    [Parse_error] with position context, never an exception. *)

(** Minimal JSON document model. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_of_string : string -> (json, Cnt_error.t) result
val json_to_string : json -> string
(** Pretty-printed with two-space indentation and a trailing newline. *)

val json_to_string_compact : json -> string
(** Single-line rendering without a trailing newline; used for JSONL
    event lines ({!Journal}) and the Chrome trace ({!Trace_export}). *)

(** {2 Decoding and I/O helpers}

    Shared with {!Telemetry} so every on-disk artifact ([manifest.json],
    [golden.json], [profile.json]) uses one JSON dialect and one typed
    error path. *)

val field : json -> string -> (json, Cnt_error.t) result
(** Required object field; a missing field or a non-object is a typed
    [Parse_error]. *)

val as_num : string -> json -> (float, Cnt_error.t) result
val as_str : string -> json -> (string, Cnt_error.t) result
val as_arr : string -> json -> (json list, Cnt_error.t) result

val write_atomic : path:string -> string -> (unit, Cnt_error.t) result
(** Write text to a temp file next to [path] and rename it into place,
    creating parent directories as needed. *)

val read_file : string -> (string, Cnt_error.t) result

type status = Passed | Degraded | Failed

val status_name : status -> string

type entry = {
  experiment : string;
  seed : int64;
  patterns : int;
  wall_time : float;  (** s *)
  attempts : int;
  status : status;
  error : string option;  (** rendered {!Cnt_error.t} for [Failed] *)
  digest : string;  (** MD5 hex over the canonical scalar rendering *)
  scalars : (string * float) list;
}

type manifest = {
  run_name : string;
  created : float;  (** unix epoch seconds of the first write *)
  entries : entry list;  (** completion order *)
}

val empty : run_name:string -> manifest

val digest_scalars : (string * float) list -> string

val entry :
  experiment:string ->
  seed:int64 ->
  patterns:int ->
  wall_time:float ->
  attempts:int ->
  status:status ->
  ?error:string ->
  (string * float) list ->
  entry
(** Builds an entry, computing the digest from the scalars. *)

val add : manifest -> entry -> manifest
(** Append, replacing any previous entry for the same experiment. *)

val find : manifest -> string -> entry option

val save : path:string -> manifest -> (unit, Cnt_error.t) result
(** Atomic: writes a temp file in the target directory (created if
    missing) and renames it over [path]. *)

val load : path:string -> (manifest, Cnt_error.t) result

(** {1 Golden results} *)

type golden_metric = {
  g_experiment : string;
  g_metric : string;
  g_value : float;
  g_rtol : float;  (** relative tolerance; [0.] means exact *)
}

type drift = {
  d_experiment : string;
  d_metric : string;
  d_expected : float;
  d_actual : float option;  (** [None]: metric or experiment missing *)
  d_rtol : float;
}

val golden_of_manifest :
  ?rtol:float -> ?experiments:string list -> manifest -> golden_metric list
(** One metric per scalar of every passed entry (optionally restricted to
    [experiments]). Integral values get tolerance [0.] — counts like the
    26-pattern census must match exactly — everything else [rtol]
    (default 0.1). *)

val save_golden : path:string -> golden_metric list -> (unit, Cnt_error.t) result
val load_golden : path:string -> (golden_metric list, Cnt_error.t) result

val check_golden : manifest -> golden_metric list -> drift list
(** Empty list = gate passes. A golden metric whose experiment or scalar
    is absent from the manifest (or recorded as [Failed]) is a drift with
    [d_actual = None]; a present value drifts when
    [|actual - expected| > rtol * max(|expected|, tiny)]. *)

val pp_drift : Format.formatter -> drift -> unit
