(** Fault-tolerant power-estimation daemon ([cntpower serve]).

    A Unix-domain-socket server speaking a tiny length-prefixed JSON
    protocol: each frame is a 4-byte big-endian payload length followed
    by that many bytes of JSON. A request is one JSON object with a
    ["verb"] field; the response is one framed JSON object with a
    ["status"] of ["ok"], ["error"] (a typed {!Cnt_error.t} payload) or
    ["overloaded"] (shed under load, with a [retry_after_s] hint).
    Connections may send several requests back to back; responses come
    in completion order.

    Robustness is the design center, in layers:

    - {b admission control}: frames larger than [max_request_bytes] are
      refused before their payload is read; malformed JSON, bad
      parameters and ill-formed netlists are refused by the caller's
      [admit] callback with a typed error — all before any work is
      scheduled.
    - {b overload shedding}: at most [max_workers] requests run at once
      and at most [queue_limit] wait; anything beyond that gets an
      immediate [overloaded] response instead of unbounded buffering.
    - {b crash isolation with deadlines}: every admitted request runs in
      its own forked worker ({!Supervisor.spawn_async}); a worker that
      crashes yields a typed [worker-killed] error for that request
      only, and one that outlives the request deadline is SIGKILLed and
      reported as [worker-timeout]. Siblings and the server never see
      either.
    - {b backoff and circuit breaker}: after a crash, dispatch pauses
      for an exponentially growing backoff (reset by the next success);
      if crash churn exceeds [breaker_threshold] crashes within
      [breaker_window_s], the breaker trips and the server drains.
    - {b graceful drain}: on SIGTERM/SIGINT (or the breaker) the server
      stops accepting, finishes queued and in-flight requests up to
      [drain_timeout_s], aborts stragglers with typed errors, then
      reports its final stats.

    The server narrates itself through {!Journal} (server lifecycle,
    request admission/rejection/completion, shed, respawn, breaker) and
    {!Telemetry} ([serve.*] counters plus the [serve.request_wall_s]
    distribution), so [_runs/serve-<ts>/] artifacts work with
    [cntpower stats]/[trace]/[compare] unchanged. A ["health"] verb is
    answered inline with uptime, queue depth, worker states and cache
    warmth, and a ["metrics"] verb — also inline, ahead of shedding, so
    it works under load and while draining — returns a {!Metrics}
    snapshot (request counts by verb and outcome, queue depth, in-flight
    workers, latency distributions, cache hit ratios).

    Every admitted request mints a {!Tracectx}: its journal events, the
    forked worker's events, and the per-request telemetry subtree (under
    [serve.request/trace:<id>]) all carry the same trace id, so
    [cntpower trace --request <id>] can slice one request end-to-end. *)

type config = {
  socket_path : string;
  max_workers : int;  (** concurrent forked workers (>= 1) *)
  queue_limit : int;  (** admitted requests allowed to wait (>= 0) *)
  max_request_bytes : int;  (** admission cap on the frame payload *)
  default_deadline_s : float;  (** per-request deadline when unspecified *)
  max_deadline_s : float;  (** cap on client-supplied deadlines *)
  drain_timeout_s : float;  (** budget for finishing work when draining *)
  breaker_threshold : int;  (** worker crashes within the window that trip *)
  breaker_window_s : float;
  backoff_initial_s : float;  (** dispatch pause after a crash; doubles *)
  backoff_max_s : float;
  retry_after_s : float;  (** hint carried by [overloaded] responses *)
  metrics_path : string option;
      (** when set, a {!Metrics} snapshot is written atomically here at
          least every [metrics_interval_s] while the loop runs (and once
          on stop) — the [cntpower top] file source *)
  metrics_interval_s : float;
}

val default_config : socket_path:string -> config
(** 4 workers, queue 16, 8 MiB frames, 60 s deadline (cap 3600 s), 30 s
    drain, breaker at 5 crashes / 60 s, backoff 0.05 s doubling to 2 s,
    no metrics file (1 s interval when one is set). *)

(** The domain logic, supplied by the caller so the server core stays
    generic (and testable with toy handlers). *)
type 'job handlers = {
  admit : Checkpoint.json -> ('job, Cnt_error.t) result;
      (** Runs in the server process on every non-health request, after
          the overload check: cheap validation (parameter ranges, BLIF
          parse + well-formedness) that turns garbage into a typed
          refusal before a worker is spawned. *)
  execute : 'job -> (Checkpoint.json, Cnt_error.t) result;
      (** Runs in the forked worker; its [Ok] JSON becomes the
          response's [result] field. The job crosses the fork by
          inheritance — no marshalling, so parsed netlists are fine. *)
  describe : 'job -> (string * string) list;
      (** Journal fields identifying the job (circuit name, library,
          pattern count) for [request_admitted] events. *)
}

type stop = Drained  (** clean SIGTERM/SIGINT drain: exit 0 *)
          | Tripped  (** circuit breaker: exit as [Worker_killed] (26) *)

val run : config -> 'job handlers -> (stop, Cnt_error.t) result
(** Bind the socket (replacing a stale file, refusing a live one) and
    serve until a drain completes. Only socket setup failures surface as
    [Error]; per-request failures are responses, never exits. *)

(** {2 Client side}

    Used by [cntpower request], the benchmark harness and the tests. *)

val call :
  socket_path:string ->
  ?timeout_s:float ->
  Checkpoint.json ->
  (Checkpoint.json, Cnt_error.t) result
(** One request/response over a fresh connection: connect, send one
    frame, read one frame (under [timeout_s], default 60 s), close.
    Transport failures — no socket, refused connection, timeout, torn
    response — are typed [Io_error]s; a server-side failure is an [Ok]
    response whose payload {!response_error} decodes. *)

val error_to_json : Cnt_error.t -> Checkpoint.json
val error_of_json : Checkpoint.json -> Cnt_error.t option

val response_error : Checkpoint.json -> Cnt_error.t option
(** Decode the typed error of an ["error"] (or ["overloaded"]) response;
    [None] for ["ok"]. An [overloaded] response decodes to code
    [Overloaded] so clients exit 29. *)

(** {2 Wire format helpers} (exposed for the protocol tests) *)

val write_frame :
  Unix.file_descr -> ?timeout_s:float -> string -> (unit, Cnt_error.t) result

val read_frame :
  Unix.file_descr ->
  ?timeout_s:float ->
  ?max_bytes:int ->
  unit ->
  (string, Cnt_error.t) result
