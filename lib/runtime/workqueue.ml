module E = Cnt_error
module J = Checkpoint
module Jn = Journal

type state = Enqueued | Leased | Done | Failed | Quarantined

let state_name = function
  | Enqueued -> "enqueued"
  | Leased -> "leased"
  | Done -> "done"
  | Failed -> "failed"
  | Quarantined -> "quarantined"

let all_states = [ Enqueued; Leased; Done; Failed; Quarantined ]
let state_of_name s = List.find_opt (fun st -> state_name st = s) all_states

type record = {
  rc_time : float;
  rc_pid : int;
  rc_shard : string;
  rc_state : state;
  rc_attempt : int;
  rc_expires : float;
  rc_fields : (string * string) list;
}

type status = {
  mutable st_state : state;
  mutable st_attempts : int;
  mutable st_expires : float;
  mutable st_owner : int;
  mutable st_fields : (string * string) list;
}

type t = {
  wq_path : string;
  wq_oc : out_channel;
  wq_tbl : (string, status) Hashtbl.t;
  mutable wq_order : string list;  (* first-enqueue order, reversed *)
}

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let record_to_json rc =
  J.Obj
    [
      ("t", J.Num rc.rc_time);
      ("pid", J.Num (float_of_int rc.rc_pid));
      ("shard", J.Str rc.rc_shard);
      ("state", J.Str (state_name rc.rc_state));
      ("attempt", J.Num (float_of_int rc.rc_attempt));
      ("expires", J.Num rc.rc_expires);
      ("fields", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) rc.rc_fields));
    ]

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let record_of_json j =
  let* rc_time = Result.bind (J.field j "t") (J.as_num "t") in
  let* pid = Result.bind (J.field j "pid") (J.as_num "pid") in
  let* rc_shard = Result.bind (J.field j "shard") (J.as_str "shard") in
  let* state_str = Result.bind (J.field j "state") (J.as_str "state") in
  let* rc_state =
    match state_of_name state_str with
    | Some s -> Ok s
    | None -> E.error E.Cli E.Parse_error "unknown shard state %S" state_str
  in
  let* attempt = Result.bind (J.field j "attempt") (J.as_num "attempt") in
  let* rc_expires = Result.bind (J.field j "expires") (J.as_num "expires") in
  let* rc_fields =
    match J.field j "fields" with
    | Ok (J.Obj fields) ->
        map_result
          (fun (k, v) ->
            let* s = J.as_str k v in
            Ok (k, s))
          fields
    | Ok _ -> E.error E.Cli E.Parse_error "field \"fields\" must be an object"
    | Error e -> Error e
  in
  Ok
    {
      rc_time;
      rc_pid = int_of_float pid;
      rc_shard;
      rc_state;
      rc_attempt = int_of_float attempt;
      rc_expires;
      rc_fields;
    }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let apply tbl order rc =
  let st =
    match Hashtbl.find_opt tbl rc.rc_shard with
    | Some st -> st
    | None ->
        let st =
          {
            st_state = rc.rc_state;
            st_attempts = 0;
            st_expires = 0.0;
            st_owner = 0;
            st_fields = [];
          }
        in
        Hashtbl.add tbl rc.rc_shard st;
        order := rc.rc_shard :: !order;
        st
  in
  st.st_state <- rc.rc_state;
  (match rc.rc_state with
  | Leased ->
      st.st_attempts <- max st.st_attempts rc.rc_attempt;
      st.st_expires <- rc.rc_expires;
      st.st_owner <- rc.rc_pid
  | Done | Quarantined -> st.st_fields <- rc.rc_fields
  | Enqueued | Failed -> ())

let parse_lines text =
  String.split_on_char '\n' text
  |> List.fold_left
       (fun (rcs, skipped) line ->
         if String.trim line = "" then (rcs, skipped)
         else
           match
             let* j = J.json_of_string line in
             record_of_json j
           with
           | Ok rc -> (rc :: rcs, skipped)
           | Error _ -> (rcs, skipped + 1))
       ([], 0)
  |> fun (rcs, skipped) -> (List.rev rcs, skipped)

let load ~path =
  let* text = J.read_file path in
  Ok (parse_lines text)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let open_ ~path =
  let text =
    if Sys.file_exists path then J.read_file path else Ok ""
  in
  let* text = text in
  let records, skipped = parse_lines text in
  match
    mkdir_p (Filename.dirname path);
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  with
  | oc ->
      (* A crash can tear the final line short of its newline; appending
         straight after it would merge the next record into the torn
         line, losing it on the following replay. Terminate it first. *)
      let n = String.length text in
      if n > 0 && text.[n - 1] <> '\n' then begin
        output_char oc '\n';
        flush oc
      end;
      let tbl = Hashtbl.create 64 in
      let order = ref [] in
      List.iter (apply tbl order) records;
      Ok ({ wq_path = path; wq_oc = oc; wq_tbl = tbl; wq_order = !order }, skipped)
  | exception Sys_error msg ->
      E.error ~context:[ ("path", path) ] E.Cli E.Io_error "%s" msg
  | exception Unix.Unix_error (err, _, _) ->
      E.error ~context:[ ("path", path) ] E.Cli E.Io_error "%s"
        (Unix.error_message err)

let close t = try close_out t.wq_oc with Sys_error _ -> ()
let path t = t.wq_path

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

(* Whole line then flush: a crash tears at most this record, and replay
   skips torn lines (same contract as Journal.write_line). *)
let append t rc =
  (try
     output_string t.wq_oc (J.json_to_string_compact (record_to_json rc));
     output_char t.wq_oc '\n';
     flush t.wq_oc
   with Sys_error _ -> ());
  let order = ref t.wq_order in
  apply t.wq_tbl order rc;
  t.wq_order <- !order

let journal_kind = function
  | Enqueued -> (Jn.Shard_enqueued, Jn.Debug)
  | Leased -> (Jn.Shard_leased, Jn.Debug)
  | Done -> (Jn.Shard_done, Jn.Info)
  | Failed -> (Jn.Shard_failed, Jn.Warn)
  | Quarantined -> (Jn.Shard_quarantined, Jn.Warn)

let transition t shard state ~attempt ~expires ~fields =
  append t
    {
      rc_time = Unix.gettimeofday ();
      rc_pid = Unix.getpid ();
      rc_shard = shard;
      rc_state = state;
      rc_attempt = attempt;
      rc_expires = expires;
      rc_fields = fields;
    };
  if Jn.enabled () then begin
    let kind, level = journal_kind state in
    Jn.emit ~level kind
      (("shard", shard) :: ("attempt", string_of_int attempt) :: fields)
  end

let enqueue t shard =
  if Hashtbl.mem t.wq_tbl shard then false
  else begin
    transition t shard Enqueued ~attempt:0 ~expires:0.0 ~fields:[];
    true
  end

let attempts t shard =
  match Hashtbl.find_opt t.wq_tbl shard with
  | Some st -> st.st_attempts
  | None -> 0

let lease t shard ~ttl_s =
  let attempt = attempts t shard + 1 in
  transition t shard Leased ~attempt
    ~expires:(Unix.gettimeofday () +. ttl_s)
    ~fields:[];
  attempt

let mark_done t shard ~fields =
  transition t shard Done ~attempt:(attempts t shard) ~expires:0.0 ~fields

let mark_failed t shard ~fields =
  transition t shard Failed ~attempt:(attempts t shard) ~expires:0.0 ~fields

let mark_quarantined t shard ~fields =
  transition t shard Quarantined ~attempt:(attempts t shard) ~expires:0.0
    ~fields

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let state t shard =
  Option.map (fun st -> st.st_state) (Hashtbl.find_opt t.wq_tbl shard)

let fields t shard =
  match Hashtbl.find_opt t.wq_tbl shard with
  | Some st -> st.st_fields
  | None -> []

let shards t = List.rev t.wq_order

let count t state =
  Hashtbl.fold
    (fun _ st n -> if st.st_state = state then n + 1 else n)
    t.wq_tbl 0

let ready t =
  List.filter
    (fun shard ->
      match state t shard with
      | Some (Enqueued | Failed) -> true
      | _ -> false)
    (shards t)

let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception _ -> true

let stale_leases t ~now =
  List.filter
    (fun shard ->
      match Hashtbl.find_opt t.wq_tbl shard with
      | Some { st_state = Leased; st_expires; st_owner; _ } ->
          st_expires <= now
          || (st_owner <> Unix.getpid () && not (pid_alive st_owner))
      | _ -> false)
    (shards t)
