let default_dir = "_cache"
let cache_dir = ref default_dir

(* One orphaned-tmp sweep per process per directory (see [gc_tmp]);
   retargeting the cache re-arms it. *)
let swept = ref false

let set_dir d =
  cache_dir := d;
  swept := false

let dir () = !cache_dir

let on = ref true
let enabled () = !on
let set_enabled b = on := b

let magic = "cntpower-cache v1"

let digest parts =
  let b = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let check_name name =
  if
    name = ""
    || String.exists (fun c -> c = '/' || c = '\\' || c = '\000') name
  then invalid_arg "Diskcache.path: name must be a single path component"

let path ~name ~digest =
  check_name name;
  Filename.concat !cache_dir (Printf.sprintf "%s-%s.bin" name digest)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal kind ~name ~digest ~file extra =
  if Journal.enabled () then
    Journal.emit kind
      (("cache", name) :: ("digest", digest) :: ("path", file) :: extra)

(* --- orphaned temp files ------------------------------------------- *)

(* [store] publishes through "<artifact>.<pid>.tmp" and removes only its
   own temp file; a writer killed between creating it and [publish]
   leaves it behind forever. The sweep removes temp litter that is
   plausibly dead: older than the age threshold AND not owned by a live
   process (the PID rides in the file name). *)

let tmp_max_age = ref 3600.0
let set_tmp_max_age_s s = tmp_max_age := s
let tmp_max_age_s () = !tmp_max_age

let tmp_owner f =
  (* "<name>-<digest>.bin.<pid>.tmp" *)
  match Filename.chop_suffix_opt ~suffix:".tmp" f with
  | None -> None
  | Some base -> (
      match Filename.extension base with
      | "" -> None
      | ext -> int_of_string_opt (String.sub ext 1 (String.length ext - 1)))

let owner_alive = function
  | None -> false
  | Some pid -> (
      pid > 0
      &&
      match Unix.kill pid 0 with
      | () -> true
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
      | exception _ -> true)

let gc_tmp () =
  let d = !cache_dir in
  let now = Unix.gettimeofday () in
  let reclaimed = ref 0 in
  (match Sys.readdir d with
  | exception Sys_error _ -> ()
  | files ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".tmp" then begin
            let p = Filename.concat d f in
            match Unix.stat p with
            | exception Unix.Unix_error (_, _, _) -> ()
            | st ->
                let age = now -. st.Unix.st_mtime in
                if
                  age > !tmp_max_age
                  && not (owner_alive (tmp_owner f))
                then begin
                  match Sys.remove p with
                  | () ->
                      incr reclaimed;
                      if Journal.enabled () then
                        Journal.emit ~level:Journal.Debug
                          (Journal.Custom "cache_tmp_reclaimed")
                          [
                            ("path", p);
                            ("age_s", Printf.sprintf "%.0f" age);
                          ]
                  | exception Sys_error _ -> ()
                end
          end)
        files);
  if !reclaimed > 0 then Telemetry.count "cache.tmp_reclaimed" !reclaimed;
  !reclaimed

let maybe_gc () =
  if not !swept then begin
    swept := true;
    ignore (gc_tmp ())
  end

let load ~name ~digest =
  if not !on then None
  else begin
    maybe_gc ();
    let file = path ~name ~digest in
    let header = Printf.sprintf "%s %s %s" magic name digest in
    let result =
      match open_in_bin file with
      | exception Sys_error _ -> None
      | ic -> (
          match
            let line = input_line ic in
            if line <> header then None else Some (Marshal.from_channel ic)
          with
          | v ->
              close_in_noerr ic;
              v
          | exception _ ->
              close_in_noerr ic;
              None)
    in
    (match result with
    | Some _ ->
        Telemetry.count (Printf.sprintf "cache.%s.hits" name) 1;
        journal Journal.Cache_hit ~name ~digest ~file []
    | None ->
        Telemetry.count (Printf.sprintf "cache.%s.misses" name) 1;
        journal Journal.Cache_miss ~name ~digest ~file []);
    result
  end

(* First writer wins. [link] is atomic and fails with [EEXIST] when a
   sibling racing on the same key already published; the loser discards
   its temp file. Both artifacts carry the same digest-keyed content, so
   which copy survives is irrelevant — what matters is that a reader
   never observes a half-written file and that the winner's complete
   artifact is never clobbered by a slower writer's [rename]. *)
let publish ~tmp ~file =
  match Unix.link tmp file with
  | () ->
      Sys.remove tmp;
      `Won
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      Sys.remove tmp;
      `Lost

let store ~name ~digest v =
  if !on then begin
    maybe_gc ();
    let file = path ~name ~digest in
    match
      if Sys.file_exists file then `Lost
      else begin
        mkdir_p (Filename.dirname file);
        let tmp = Printf.sprintf "%s.%d.tmp" file (Unix.getpid ()) in
        let oc = open_out_bin tmp in
        Printf.fprintf oc "%s %s %s\n" magic name digest;
        Marshal.to_channel oc v [];
        close_out oc;
        publish ~tmp ~file
      end
    with
    | `Won ->
        Telemetry.count (Printf.sprintf "cache.%s.writes" name) 1;
        journal Journal.Cache_write ~name ~digest ~file []
    | `Lost ->
        Telemetry.count (Printf.sprintf "cache.%s.write_races" name) 1;
        journal Journal.Cache_write ~name ~digest ~file
          [ ("outcome", "lost-race") ]
    | exception e ->
        let err =
          match e with
          | Sys_error m -> m
          | Unix.Unix_error (err, _, _) -> Unix.error_message err
          | e -> Printexc.to_string e
        in
        if Journal.enabled () then
          Journal.emit ~level:Journal.Warn Journal.Cache_write
            [
              ("cache", name);
              ("digest", digest);
              ("path", file);
              ("error", err);
            ]
  end

let with_cache ~name ~digest f =
  if not !on then f ()
  else
    match load ~name ~digest with
    | Some v -> v
    | None ->
        let v = f () in
        store ~name ~digest v;
        v
