(** Durable campaign work-queue: an append-only write-ahead shard log.

    A campaign ([cntpower campaign]) decomposes a sweep into shards —
    one (circuit × library × seed) cell each — and records every state
    transition as one flushed JSON line in
    [_runs/<campaign>/queue.jsonl]:

    {v enqueued -> leased -> done
                        \-> failed -> leased -> ... -> quarantined v}

    Lines are written whole and flushed immediately (the {!Journal}
    idiom), so a [kill -9] of the coordinator tears at most the line in
    flight; {!open_} skips torn lines and reports how many. Because the
    log is the single durable source of truth, replaying it reconstructs
    the exact queue state: which shards are done (with their result
    scalars carried in the [done] record's fields), which hold a stale
    lease from a dead coordinator, and how many attempts each has
    consumed. Resume is therefore "open the log, reclaim stale leases,
    run whatever is not [done]".

    The queue knows nothing about what a shard {e is} — shards are
    opaque string ids with opaque string fields — so the module stays in
    [lib/runtime] with no dependency on the experiment layer. *)

type state = Enqueued | Leased | Done | Failed | Quarantined

val state_name : state -> string
val state_of_name : string -> state option

type record = {
  rc_time : float;  (** unix epoch seconds of the append *)
  rc_pid : int;  (** appending process (the lease owner for [Leased]) *)
  rc_shard : string;
  rc_state : state;
  rc_attempt : int;  (** lease ordinal, from 1; [0] for [enqueued] *)
  rc_expires : float;  (** lease expiry epoch; [0.] for non-lease records *)
  rc_fields : (string * string) list;
}

type t

val open_ : path:string -> ((t * int), Cnt_error.t) result
(** Open (or create, with parent directories) the queue log at [path],
    replay existing records into in-memory per-shard state, and return
    the handle plus the number of torn/corrupt lines skipped. Only an
    unreadable or unwritable file is an error. *)

val close : t -> unit
val path : t -> string

(** {2 Appending transitions}

    Each call appends one flushed record and updates the replayed state;
    the on-disk log and the in-memory view never diverge. A matching
    journal event ([shard_enqueued] .. [shard_quarantined]) is emitted
    when the {!Journal} is enabled. *)

val enqueue : t -> string -> bool
(** Record a shard as available. Returns [false] (and appends nothing)
    when the shard is already known — re-enqueueing on resume is a
    no-op. *)

val lease : t -> string -> ttl_s:float -> int
(** Take a time-stamped lease: appends a [leased] record owned by this
    PID expiring at [now + ttl_s] and returns the attempt ordinal (one
    more than the attempts consumed so far). *)

val mark_done : t -> string -> fields:(string * string) list -> unit
(** Terminal success. [fields] should carry everything needed to rebuild
    the shard's manifest entry (wall time, result scalars): the done
    record makes the result durable even if the coordinator dies before
    the manifest write. *)

val mark_failed : t -> string -> fields:(string * string) list -> unit
(** One attempt failed; the shard becomes eligible for re-lease. Also
    used to reclaim a stale lease on resume. *)

val mark_quarantined : t -> string -> fields:(string * string) list -> unit
(** Terminal failure: attempts exhausted, shard set aside. *)

(** {2 Replayed state} *)

val state : t -> string -> state option
(** [None]: the shard is not in the log. *)

val attempts : t -> string -> int
(** Lease ordinals consumed so far (max attempt seen across records). *)

val fields : t -> string -> (string * string) list
(** Fields of the shard's most recent terminal record ([done] or
    [quarantined]); [[]] otherwise. *)

val shards : t -> string list
(** Every known shard, in first-enqueue order. *)

val count : t -> state -> int

val ready : t -> string list
(** Shards eligible for (re-)lease — state [Enqueued] or [Failed] — in
    enqueue order. Leased shards are not ready; reclaim stale leases
    first (see {!stale_leases}). *)

val stale_leases : t -> now:float -> string list
(** Shards stuck in [Leased] whose lease expired before [now] or whose
    owner process is gone — the residue of a SIGKILLed coordinator. The
    caller decides whether each becomes [failed] (retry) or
    [quarantined] (budget exhausted). *)

val pid_alive : int -> bool
(** Signal-0 probe; [true] when in doubt (e.g. EPERM). *)

(** {2 Reading without a handle} *)

val load : path:string -> (record list * int, Cnt_error.t) result
(** Records in file order plus skipped-line count — for tests and
    consistency checks; does not open an append sink. *)
