(** Persistent digest-keyed artifact cache under [_cache/].

    Expensive pure computations (the matchlib pattern index, leakage DC
    characterizations) marshal their results to
    [_cache/<name>-<digest>.bin] and reload them on the next run. The
    caller owns the digest: {!digest} hashes every input that can change
    the artifact — source text, parameters, a format-version string, the
    compiler version (Marshal is not stable across compilers). A changed
    input therefore changes the file name; stale artifacts are never
    reused, merely orphaned.

    Files carry a one-line text header ([cntpower-cache v1 <name>
    <digest>]) checked before unmarshalling; a truncated, corrupt or
    foreign file degrades to a miss and a rebuild, never an error.
    Writes go through a PID-suffixed temp file published with an atomic
    [link]: the first writer racing on a key wins and later writers
    discard their temp files (counted as [cache.<name>.write_races]), so
    a complete artifact, once published, is never replaced by a
    concurrent sibling mid-read.

    Every lookup records [cache.<name>.hits] / [.misses] / [.writes]
    {!Telemetry} counters and emits {!Journal.Cache_hit} /
    [Cache_miss] / [Cache_write] events, so a profile shows exactly
    which artifacts were served from disk.

    A writer killed between creating its temp file and publishing leaves
    [<artifact>.<pid>.tmp] litter behind; the first enabled {!load} or
    {!store} of a process sweeps the cache directory and reclaims temp
    files that are both older than {!tmp_max_age_s} and not owned by a
    live process (counted as [cache.tmp_reclaimed]).

    The cache is on by default; [--no-cache] calls [set_enabled false],
    turning {!with_cache} into a plain call (no reads, no writes, no
    counters). *)

val default_dir : string
(** ["_cache"], relative to the working directory. *)

val set_dir : string -> unit
(** Redirect the cache root (tests point it at a temp directory). *)

val dir : unit -> string

val enabled : unit -> bool

val set_enabled : bool -> unit
(** [false] = bypass entirely: {!load} always misses (without counting),
    {!store} does nothing. *)

val digest : string list -> string
(** Hex digest of the given parts, length-framed so part boundaries
    matter ([["ab"; "c"] <> ["a"; "bc"]]). *)

val path : name:string -> digest:string -> string
(** [<dir>/<name>-<digest>.bin]. [name] must be a single path component
    ([Invalid_argument] otherwise). *)

val load : name:string -> digest:string -> 'a option
(** Serve an artifact if a well-formed file for exactly this
    [name]/[digest] exists. The ['a] is trusted — pairing a digest with
    the wrong type is a caller bug, which the format-version digest part
    exists to prevent. *)

val store : name:string -> digest:string -> 'a -> unit
(** Atomically publish an artifact; when a concurrent writer (or an
    earlier run) already published this key, the write is discarded —
    first writer wins. Failures (read-only FS, disk full) are swallowed
    after a [Warn] journal event — the cache is an optimization, never a
    correctness dependency. *)

val with_cache : name:string -> digest:string -> (unit -> 'a) -> 'a
(** [load], or compute-and-[store] on a miss. Equal to just calling the
    thunk when disabled. *)

(** {2 Orphaned-temp-file garbage collection} *)

val gc_tmp : unit -> int
(** Sweep the cache directory now and return how many orphaned temp
    files were reclaimed: [*.tmp] entries older than {!tmp_max_age_s}
    whose embedded owner PID is not a live process. Runs automatically
    once per process on the first enabled {!load}/{!store} (re-armed by
    {!set_dir}); exposed for tests and long-lived daemons. Failures
    (unreadable directory, races with a concurrent sweep) are
    swallowed — reclaiming litter is an optimization. *)

val set_tmp_max_age_s : float -> unit
(** Age threshold for the sweep; default 3600 s. Young temp files are
    never touched — they may belong to a writer mid-publish. *)

val tmp_max_age_s : unit -> float
