(** Chunked work-sharing across OCaml 5 domains.

    A tiny reusable pool for data-parallel kernels: the caller describes
    its work as [units] independent items (for the bit-sliced simulators a
    unit is one 64-pattern machine word, so chunks are word-aligned by
    construction), and {!run} partitions the index space into contiguous
    chunks that worker domains pull from a shared atomic cursor until the
    work is drained. Domains are spawned with stdlib [Domain.spawn] and
    joined before {!run} returns — no domain outlives the call, so the
    pool composes with the fork-based {!Supervisor} (never fork while
    domains are alive; here none ever are across a fork point).

    Telemetry recorded inside worker domains lands in their per-domain
    {!Telemetry} registries; the pool snapshots each one inside the
    worker and merges it into the caller's registry after join, so
    parallel kernels neither race on the tables nor lose counts.

    Work below [min_units_per_domain] per domain runs sequentially on the
    calling domain — spawning costs tens of microseconds, which would
    dominate a 512-pattern verification sweep. *)

val max_domains : int
(** Upper bound on worker domains per pool run (64). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_default : int option -> unit
(** Override the process-wide default domain count used when {!run} gets
    no [?domains] ([None] restores auto detection). Set once from the CLI
    ([--domains N]) before any parallel work; forked workers inherit it. *)

val env_var : string
(** Name of the domain-count environment variable, ["CNTPOWER_DOMAINS"]. *)

val env_domains_checked : unit -> (int option, string) result
(** Validate the [CNTPOWER_DOMAINS] environment variable exactly like
    [--domains]: [Ok None] when unset, [Ok (Some n)] for an integer in
    [1, max_domains], and [Error msg] (naming the variable and the
    offending value) otherwise. The CLI calls this at startup and turns
    [Error] into a typed usage error instead of silently falling back. *)

val default_domains : unit -> int
(** The effective default: the {!set_default} override if any, else the
    [CNTPOWER_DOMAINS] environment variable (when it parses as an int in
    [1, max_domains] — garbage earns one stderr warning and is ignored,
    see {!env_domains_checked}), else {!recommended}. *)

type stats = {
  domains_used : int;  (** workers that actually ran (1 = sequential) *)
  chunks : int;  (** chunks the index space was split into *)
  units : int array;
      (** units processed per worker, indexed [0 .. domains_used - 1];
          worker 0 is the calling domain *)
}

val run :
  ?domains:int ->
  ?min_units_per_domain:int ->
  units:int ->
  (worker:int -> lo:int -> len:int -> unit) ->
  stats
(** [run ~units f] calls [f ~worker ~lo ~len] over disjoint contiguous
    ranges covering exactly [0 .. units - 1]. [f] must be safe to call
    concurrently from different domains on disjoint ranges (the simulators
    write disjoint word slices of shared buffers). [worker] identifies the
    executing domain (stable within one run) for per-domain accounting.

    [?domains] caps the worker count (clamped to [1, max_domains]);
    default {!default_domains}. When [units / min_units_per_domain]
    (default 256) allows fewer domains than requested, the pool shrinks —
    down to a plain sequential loop on the calling domain for small work.

    An exception raised by any chunk is re-raised (with its backtrace)
    after all domains have joined and worker telemetry has been merged. *)
