let classify x =
  match Float.classify_float x with
  | Float.FP_nan | Float.FP_infinite -> `Non_finite
  | Float.FP_zero -> `Zero
  | Float.FP_normal | Float.FP_subnormal -> if x < 0.0 then `Negative else `Positive

let ctx what x = [ (what, Printf.sprintf "%h" x) ]

let finite ~stage ~what x =
  match classify x with
  | `Non_finite ->
      Cnt_error.error ~context:(ctx what x) stage Cnt_error.Non_finite
        "%s must be finite" what
  | _ -> Ok x

let positive ~stage ~what x =
  match classify x with
  | `Non_finite ->
      Cnt_error.error ~context:(ctx what x) stage Cnt_error.Non_finite
        "%s must be finite" what
  | `Zero | `Negative ->
      Cnt_error.error ~context:(ctx what x) stage Cnt_error.Validation_error
        "%s must be > 0" what
  | `Positive -> Ok x

let non_negative ~stage ~what x =
  match classify x with
  | `Non_finite ->
      Cnt_error.error ~context:(ctx what x) stage Cnt_error.Non_finite
        "%s must be finite" what
  | `Negative ->
      Cnt_error.error ~context:(ctx what x) stage Cnt_error.Validation_error
        "%s must be >= 0" what
  | `Zero | `Positive -> Ok x

let require ~stage ?(code = Cnt_error.Validation_error) ?context cond msg =
  if cond then Ok () else Result.Error (Cnt_error.make ?context stage code msg)

let rec all = function
  | [] -> Ok ()
  | Ok () :: rest -> all rest
  | (Result.Error _ as e) :: _ -> e

let ( let* ) = Result.bind
