(** Live operational metrics snapshots for the daemon and the campaign
    coordinator.

    {!Telemetry} aggregates a run's performance profile for post-hoc
    analysis; this module turns the same registries — plus caller-supplied
    instantaneous gauges (queue depth, in-flight workers) and lifecycle
    counters (served / shed / quarantined totals) — into a small,
    serializable point-in-time snapshot that can be polled while the
    system is under load. Three surfaces consume it:

    - the [metrics] verb on the {!Server} daemon socket answers with a
      snapshot inline (never queued behind work, still served while
      draining);
    - the campaign coordinator writes one atomically to
      [_runs/<name>/metrics.json] after every shard completion;
    - [cntpower top] / [cntpower metrics] render either source as a
      one-screen status, JSON, or Prometheus text exposition.

    Building a snapshot is lock-free: {!make} reads the calling domain's
    telemetry registry ({!Telemetry.snapshot}) and the caller's own
    mutable counters — no locks, no cross-domain coordination. *)

type dist_summary = {
  m_count : int;
  m_sum : float;
  m_min : float;
  m_max : float;
  m_p50 : float;
  m_p95 : float;
}

type t = {
  m_source : string;  (** which subsystem: ["serve"] or ["campaign"] *)
  m_time : float;  (** unix epoch seconds at snapshot *)
  m_uptime_s : float;
  m_gauges : (string * float) list;  (** instantaneous, sorted by name *)
  m_counters : (string * int) list;  (** monotonic totals, sorted *)
  m_dists : (string * dist_summary) list;  (** sorted by name *)
}

val make :
  source:string ->
  started:float ->
  ?gauges:(string * float) list ->
  ?counters:(string * int) list ->
  unit ->
  t
(** Snapshot now: caller-supplied gauges and counters merged with the
    calling domain's telemetry counters and distribution summaries (when
    telemetry is enabled; a disabled registry contributes nothing). A
    caller counter takes precedence over a telemetry counter of the same
    name — the caller's lifecycle totals are authoritative. [started]
    anchors [m_uptime_s]. *)

val hit_ratios : t -> (string * float * int * int) list
(** Cache effectiveness derived from counter pairs: for every counter
    [<base>.hits] with a sibling [<base>.misses], yields
    [(base, hits /. (hits + misses), hits, misses)]. Empty pairs (0/0)
    are omitted. *)

val to_json : t -> Checkpoint.json
val of_json : Checkpoint.json -> (t, Cnt_error.t) result

val save : path:string -> t -> (unit, Cnt_error.t) result
(** Atomic write (temp + rename), same convention as {!Checkpoint.save}:
    a poller never reads a torn snapshot. *)

val load : path:string -> (t, Cnt_error.t) result

val pp : Format.formatter -> t -> unit
(** One-screen human rendering: header with source/uptime, gauges,
    counters (sorted by value, largest first), cache hit ratios, and
    distribution summaries — the [cntpower top] refresh body. *)

val to_prometheus : t -> string
(** Prometheus text exposition (version 0.0.4): counters as
    [cntpower_<name>_total], gauges as [cntpower_<name>], distributions
    as summaries with [quantile="0.5"/"0.95"] series plus [_sum] and
    [_count], names sanitized to the metric charset. Ends with a trailing
    newline as scrapers require. *)
