(** Fault-injection harness.

    A fault case perturbs an input (NaN device parameter, truncated BLIF,
    zero-capacitance node, combinational loop, ...) and runs a slice of the
    pipeline on it. The harness classifies what happened:

    - {!verdict.Graceful}: the pipeline returned a typed {!Cnt_error.t} —
      the desired behavior under a fault;
    - {!verdict.Survived}: the pipeline absorbed the perturbation and
      produced a value (acceptable when the fault is benign);
    - {!verdict.Escaped}: a raw exception escaped — a robustness bug.

    Tests assert that no case yields [Escaped]. *)

type verdict =
  | Graceful of Cnt_error.t
  | Survived
  | Escaped of string  (** the escaped exception, printed *)

type outcome = { name : string; description : string; verdict : verdict }

val inject :
  name:string -> description:string -> (unit -> ('a, Cnt_error.t) result) -> outcome
(** Run one fault case. Exceptions raised by the thunk (including
    {!Cnt_error.Error}, which counts as [Escaped] — hardened entry points
    must return [result], not raise) are caught and classified. *)

val graceful : outcome -> bool
(** True for [Graceful _] — the pipeline refused the fault with a typed
    error. *)

val contained : outcome -> bool
(** True unless the verdict is [Escaped _]. *)

val pp_outcome : Format.formatter -> outcome -> unit

val summarize : Format.formatter -> outcome list -> int
(** Print one line per outcome and return the number of [Escaped] cases. *)

(** {2 Input perturbation helpers} *)

val corrupt_float : [ `Nan | `Pos_inf | `Neg_inf | `Zero | `Negate ] -> float -> float

val truncate_text : fraction:float -> string -> string
(** Keep the leading [fraction] (0..1) of the text — simulates a partially
    written file. *)
