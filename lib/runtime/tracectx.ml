type t = {
  trace_id : string;
  span_id : string;
  parent_id : string option;
}

(* One counter for both id kinds: uniqueness is all that matters, and a
   shared atomic keeps minting race-free across domains. Forked children
   inherit the counter value but stamp their own PID, so ids stay unique
   across the worker tree without any coordination. *)
let counter = Atomic.make 0
let next () = Atomic.fetch_and_add counter 1 + 1

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current () = Domain.DLS.get key
let set ctx = Domain.DLS.set key ctx

let mint_root () =
  let pid = Unix.getpid () in
  {
    trace_id = Printf.sprintf "t%d-%d" pid (next ());
    span_id = Printf.sprintf "s%d-%d" pid (next ());
    parent_id = None;
  }

let child ctx =
  {
    trace_id = ctx.trace_id;
    span_id = Printf.sprintf "s%d-%d" (Unix.getpid ()) (next ());
    parent_id = Some ctx.span_id;
  }

let with_ctx ctx f =
  let saved = current () in
  set (Some ctx);
  Fun.protect ~finally:(fun () -> set saved) f

let span_label ctx = "trace:" ^ ctx.trace_id

let trace_of_label s =
  let prefix = "trace:" in
  let n = String.length prefix in
  if String.length s > n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

let to_fields ctx =
  let base = [ ("trace", ctx.trace_id); ("span", ctx.span_id) ] in
  match ctx.parent_id with
  | None -> base
  | Some p -> base @ [ ("parent", p) ]

let of_fields fields =
  match (List.assoc_opt "trace" fields, List.assoc_opt "span" fields) with
  | Some trace_id, Some span_id ->
      Some { trace_id; span_id; parent_id = List.assoc_opt "parent" fields }
  | _ -> None
