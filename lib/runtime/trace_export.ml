module T = Telemetry
module J = Checkpoint

let us s = s *. 1e6

(* One X event per span node; children are laid out sequentially from the
   parent's start so the tree shape and the measured durations survive
   even though Telemetry aggregates by path rather than timestamping
   individual calls. A child whose name has its own anchor in [starts] —
   a per-request [trace:<id>] subtree whose worker spawn the journal
   timestamped — is promoted onto that track instead of being laid
   inline, giving one causally-linked lane per request/shard. *)
let rec span_events ~starts ~pid ~start (s : T.span) acc =
  let ev =
    J.Obj
      [
        ("name", J.Str s.T.span_name);
        ("cat", J.Str "span");
        ("ph", J.Str "X");
        ("ts", J.Num (us start));
        ("dur", J.Num (us s.T.total_s));
        ("pid", J.Num (float_of_int pid));
        ("tid", J.Num 0.0);
        ("args", J.Obj [ ("calls", J.Num (float_of_int s.T.calls)) ]);
      ]
  in
  let acc, _ =
    List.fold_left
      (fun (acc, cursor) (child : T.span) ->
        match List.assoc_opt child.T.span_name starts with
        | Some (cpid, cstart) when cpid <> pid ->
            (span_events ~starts ~pid:cpid ~start:cstart child acc, cursor)
        | _ ->
            ( span_events ~starts ~pid ~start:cursor child acc,
              cursor +. child.T.total_s ))
      (acc, start) s.T.children
  in
  ev :: acc

let instant_event ~t0 (ev : Journal.event) =
  J.Obj
    [
      ("name", J.Str (Journal.kind_name ev.Journal.ev_kind));
      ("cat", J.Str "journal");
      ("ph", J.Str "i");
      ("ts", J.Num (us (ev.Journal.ev_time -. t0)));
      ("pid", J.Num (float_of_int ev.Journal.ev_pid));
      ("tid", J.Num 0.0);
      ("s", J.Str "p");
      ( "args",
        J.Obj
          (("level", J.Str (Journal.level_name ev.Journal.ev_level))
          :: ("seq", J.Str (string_of_int ev.Journal.ev_seq))
          :: List.map (fun (k, v) -> (k, J.Str v)) ev.Journal.ev_fields) );
    ]

let process_name ~pid name =
  J.Obj
    [
      ("name", J.Str "process_name");
      ("ph", J.Str "M");
      ("pid", J.Num (float_of_int pid));
      ("tid", J.Num 0.0);
      ("args", J.Obj [ ("name", J.Str name) ]);
    ]

let to_trace ?(events = []) (p : T.profile) =
  let t0 =
    List.fold_left
      (fun acc ev -> Float.min acc ev.Journal.ev_time)
      infinity events
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let main_pid =
    match
      List.find_opt
        (fun ev -> ev.Journal.ev_kind = Journal.Run_started)
        events
    with
    | Some ev -> ev.Journal.ev_pid
    | None -> ( match events with ev :: _ -> ev.Journal.ev_pid | [] -> 0)
  in
  (* Anchors for span subtrees, keyed by span name. Two sources: an
     experiment's first [experiment_started] (first wins: retries
     re-start the same experiment and the merged tree covers all
     attempts), and a request/shard's [worker_spawned] carrying trace
     fields — the latter anchors the [trace:<id>] telemetry subtree on
     the worker's PID track. *)
  let starts =
    List.fold_left
      (fun acc ev ->
        match ev.Journal.ev_kind with
        | Journal.Experiment_started -> (
            match Journal.find ev "experiment" with
            | Some exp when not (List.mem_assoc exp acc) ->
                (exp, (ev.Journal.ev_pid, ev.Journal.ev_time -. t0)) :: acc
            | _ -> acc)
        | Journal.Worker_spawned -> (
            match
              ( Journal.find ev "trace",
                Option.bind (Journal.find ev "worker_pid") int_of_string_opt )
            with
            | Some id, Some wpid when not (List.mem_assoc ("trace:" ^ id) acc)
              ->
                ("trace:" ^ id, (wpid, ev.Journal.ev_time -. t0)) :: acc
            | _ -> acc)
        | _ -> acc)
      [] events
  in
  let metadata =
    process_name ~pid:main_pid "cntpower (driver)"
    :: List.filter_map
         (fun (exp, (pid, _)) ->
           if pid = main_pid then None
           else Some (process_name ~pid ("worker: " ^ exp)))
         starts
  in
  let spans, _ =
    List.fold_left
      (fun (acc, cursor) (s : T.span) ->
        match List.assoc_opt s.T.span_name starts with
        | Some (pid, start) -> (span_events ~starts ~pid ~start s acc, cursor)
        | None ->
            ( span_events ~starts ~pid:main_pid ~start:cursor s acc,
              cursor +. s.T.total_s ))
      ([], 0.0) p.T.p_spans
  in
  let instants = List.map (instant_event ~t0) events in
  J.Obj
    [
      ("traceEvents", J.Arr (metadata @ List.rev spans @ instants));
      ("displayTimeUnit", J.Str "ms");
    ]

let save ~path ?events p =
  J.write_atomic ~path (J.json_to_string_compact (to_trace ?events p) ^ "\n")

(* ------------------------------------------------------------------ *)
(* Per-request slicing                                                 *)

let resolve_trace_id ~events arg =
  let has_trace id =
    List.exists (fun ev -> Journal.find ev "trace" = Some id) events
  in
  if has_trace arg then Some arg
  else
    (* Not a trace id: try it as a request number and read the trace id
       off any journal event of that request. *)
    List.find_map
      (fun ev ->
        if Journal.find ev "request" = Some arg then Journal.find ev "trace"
        else None)
      events

let rec collect_subtrees name acc (s : T.span) =
  let acc = if s.T.span_name = name then s :: acc else acc in
  List.fold_left (collect_subtrees name) acc s.T.children

let slice ~trace_id ?(events = []) (p : T.profile) =
  let label = "trace:" ^ trace_id in
  let spans = List.rev (List.fold_left (collect_subtrees label) [] p.T.p_spans) in
  let evs =
    List.filter (fun ev -> Journal.find ev "trace" = Some trace_id) events
  in
  ({ T.p_spans = spans; p_counters = []; p_dists = [] }, evs)
