module T = Telemetry
module J = Checkpoint

let us s = s *. 1e6

(* One X event per span node; children are laid out sequentially from the
   parent's start so the tree shape and the measured durations survive
   even though Telemetry aggregates by path rather than timestamping
   individual calls. *)
let rec span_events ~pid ~start (s : T.span) acc =
  let ev =
    J.Obj
      [
        ("name", J.Str s.T.span_name);
        ("cat", J.Str "span");
        ("ph", J.Str "X");
        ("ts", J.Num (us start));
        ("dur", J.Num (us s.T.total_s));
        ("pid", J.Num (float_of_int pid));
        ("tid", J.Num 0.0);
        ("args", J.Obj [ ("calls", J.Num (float_of_int s.T.calls)) ]);
      ]
  in
  let acc, _ =
    List.fold_left
      (fun (acc, cursor) child ->
        (span_events ~pid ~start:cursor child acc, cursor +. child.T.total_s))
      (acc, start) s.T.children
  in
  ev :: acc

let instant_event ~t0 (ev : Journal.event) =
  J.Obj
    [
      ("name", J.Str (Journal.kind_name ev.Journal.ev_kind));
      ("cat", J.Str "journal");
      ("ph", J.Str "i");
      ("ts", J.Num (us (ev.Journal.ev_time -. t0)));
      ("pid", J.Num (float_of_int ev.Journal.ev_pid));
      ("tid", J.Num 0.0);
      ("s", J.Str "p");
      ( "args",
        J.Obj
          (("level", J.Str (Journal.level_name ev.Journal.ev_level))
          :: ("seq", J.Str (string_of_int ev.Journal.ev_seq))
          :: List.map (fun (k, v) -> (k, J.Str v)) ev.Journal.ev_fields) );
    ]

let process_name ~pid name =
  J.Obj
    [
      ("name", J.Str "process_name");
      ("ph", J.Str "M");
      ("pid", J.Num (float_of_int pid));
      ("tid", J.Num 0.0);
      ("args", J.Obj [ ("name", J.Str name) ]);
    ]

let to_trace ?(events = []) (p : T.profile) =
  let t0 =
    List.fold_left
      (fun acc ev -> Float.min acc ev.Journal.ev_time)
      infinity events
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let main_pid =
    match
      List.find_opt
        (fun ev -> ev.Journal.ev_kind = Journal.Run_started)
        events
    with
    | Some ev -> ev.Journal.ev_pid
    | None -> ( match events with ev :: _ -> ev.Journal.ev_pid | [] -> 0)
  in
  (* First experiment_started wins: retries re-start the same experiment
     and the merged span tree covers all attempts from the first. *)
  let starts =
    List.fold_left
      (fun acc ev ->
        match
          (ev.Journal.ev_kind, Journal.find ev "experiment")
        with
        | Journal.Experiment_started, Some exp
          when not (List.mem_assoc exp acc) ->
            (exp, (ev.Journal.ev_pid, ev.Journal.ev_time -. t0)) :: acc
        | _ -> acc)
      [] events
  in
  let metadata =
    process_name ~pid:main_pid "cntpower (driver)"
    :: List.filter_map
         (fun (exp, (pid, _)) ->
           if pid = main_pid then None
           else Some (process_name ~pid ("worker: " ^ exp)))
         starts
  in
  let spans, _ =
    List.fold_left
      (fun (acc, cursor) (s : T.span) ->
        match List.assoc_opt s.T.span_name starts with
        | Some (pid, start) -> (span_events ~pid ~start s acc, cursor)
        | None ->
            ( span_events ~pid:main_pid ~start:cursor s acc,
              cursor +. s.T.total_s ))
      ([], 0.0) p.T.p_spans
  in
  let instants = List.map (instant_event ~t0) events in
  J.Obj
    [
      ("traceEvents", J.Arr (metadata @ List.rev spans @ instants));
      ("displayTimeUnit", J.Str "ms");
    ]

let save ~path ?events p =
  J.write_atomic ~path (J.json_to_string_compact (to_trace ?events p) ^ "\n")
