module E = Cnt_error

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse of string * int  (* message, offset *)

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (msg, !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      value)
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf cp =
    (* enough for the escapes we ever emit or accept *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else (
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "truncated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' -> (
                  match hex4 () with
                  | cp -> utf8 buf cp
                  | exception _ -> fail "malformed \\u escape")
              | _ -> fail "unknown escape");
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string (String.sub s start (!pos - start)) with
    | f -> f
    | exception _ -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after the document";
    v
  with
  | v -> Ok v
  | exception Parse (msg, off) ->
      E.error
        ~context:[ ("offset", string_of_int off) ]
        E.Cli E.Parse_error "malformed JSON: %s" msg

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_to_string v =
  let b = Buffer.create 1024 in
  let indent d = Buffer.add_string b (String.make (2 * d) ' ') in
  let rec emit d = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s -> escape_string b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            indent (d + 1);
            emit (d + 1) item)
          items;
        Buffer.add_char b '\n';
        indent d;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            indent (d + 1);
            escape_string b k;
            Buffer.add_string b ": ";
            emit (d + 1) v)
          fields;
        Buffer.add_char b '\n';
        indent d;
        Buffer.add_char b '}'
  in
  emit 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Compact single-line rendering: one journal event per line in
   events.jsonl, and the (large) Chrome trace file, where pretty-printing
   would triple the size. *)
let json_to_string_compact v =
  let b = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s -> escape_string b s
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            emit item)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape_string b k;
            Buffer.add_char b ':';
            emit v)
          fields;
        Buffer.add_char b '}'
  in
  emit v;
  Buffer.contents b

(* Decoding helpers: every shape violation is a typed parse error naming
   the offending field. *)

let field obj name =
  match obj with
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> E.error E.Cli E.Parse_error "missing field %S" name)
  | _ -> E.error E.Cli E.Parse_error "expected an object around %S" name

let field_opt obj name =
  match obj with
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let as_num name = function
  | Num f -> Ok f
  | _ -> E.error E.Cli E.Parse_error "field %S must be a number" name

let as_str name = function
  | Str s -> Ok s
  | _ -> E.error E.Cli E.Parse_error "field %S must be a string" name

let as_arr name = function
  | Arr l -> Ok l
  | _ -> E.error E.Cli E.Parse_error "field %S must be an array" name

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)

type status = Passed | Degraded | Failed

let status_name = function
  | Passed -> "passed"
  | Degraded -> "degraded"
  | Failed -> "failed"

let status_of_name = function
  | "passed" -> Ok Passed
  | "degraded" -> Ok Degraded
  | "failed" -> Ok Failed
  | other -> E.error E.Cli E.Parse_error "unknown entry status %S" other

type entry = {
  experiment : string;
  seed : int64;
  patterns : int;
  wall_time : float;
  attempts : int;
  status : status;
  error : string option;
  digest : string;
  scalars : (string * float) list;
}

type manifest = { run_name : string; created : float; entries : entry list }

let empty ~run_name = { run_name; created = Unix.gettimeofday (); entries = [] }

let digest_scalars scalars =
  let canonical =
    List.map (fun (k, v) -> Printf.sprintf "%s=%.17g" k v) scalars
    |> List.sort String.compare |> String.concat ";"
  in
  Digest.to_hex (Digest.string canonical)

let entry ~experiment ~seed ~patterns ~wall_time ~attempts ~status ?error
    scalars =
  {
    experiment;
    seed;
    patterns;
    wall_time;
    attempts;
    status;
    error;
    digest = digest_scalars scalars;
    scalars;
  }

let add m e =
  let entries =
    List.filter (fun e' -> e'.experiment <> e.experiment) m.entries @ [ e ]
  in
  { m with entries }

let find m name = List.find_opt (fun e -> e.experiment = name) m.entries

let entry_to_json e =
  Obj
    [
      ("experiment", Str e.experiment);
      ("seed", Str (Int64.to_string e.seed));
      ("patterns", Num (float_of_int e.patterns));
      ("wall_time", Num e.wall_time);
      ("attempts", Num (float_of_int e.attempts));
      ("status", Str (status_name e.status));
      ("error", match e.error with None -> Null | Some s -> Str s);
      ("digest", Str e.digest);
      ("scalars", Obj (List.map (fun (k, v) -> (k, Num v)) e.scalars));
    ]

let entry_of_json j =
  let* experiment = Result.bind (field j "experiment") (as_str "experiment") in
  let* seed_str = Result.bind (field j "seed") (as_str "seed") in
  let* seed =
    match Int64.of_string_opt seed_str with
    | Some s -> Ok s
    | None -> E.error E.Cli E.Parse_error "field \"seed\" is not an int64"
  in
  let* patterns = Result.bind (field j "patterns") (as_num "patterns") in
  let* wall_time = Result.bind (field j "wall_time") (as_num "wall_time") in
  let* attempts = Result.bind (field j "attempts") (as_num "attempts") in
  let* status_str = Result.bind (field j "status") (as_str "status") in
  let* status = status_of_name status_str in
  let error =
    match field_opt j "error" with Some (Str s) -> Some s | _ -> None
  in
  let* digest = Result.bind (field j "digest") (as_str "digest") in
  let* scalars =
    match field j "scalars" with
    | Ok (Obj fields) ->
        map_result
          (fun (k, v) ->
            let* f = as_num k v in
            Ok (k, f))
          fields
    | Ok _ -> E.error E.Cli E.Parse_error "field \"scalars\" must be an object"
    | Error _ -> Ok []
  in
  Ok
    {
      experiment;
      seed;
      patterns = int_of_float patterns;
      wall_time;
      attempts = int_of_float attempts;
      status;
      error;
      digest;
      scalars;
    }

let manifest_to_json m =
  Obj
    [
      ("run", Str m.run_name);
      ("created", Num m.created);
      ("entries", Arr (List.map entry_to_json m.entries));
    ]

let manifest_of_json j =
  let* run_name = Result.bind (field j "run") (as_str "run") in
  let* created = Result.bind (field j "created") (as_num "created") in
  let* entries_json = Result.bind (field j "entries") (as_arr "entries") in
  let* entries = map_result entry_of_json entries_json in
  Ok { run_name; created; entries }

(* ------------------------------------------------------------------ *)
(* Disk I/O: atomic write, typed I/O errors.                           *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let write_atomic ~path text =
  match
    mkdir_p (Filename.dirname path);
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc text;
    close_out oc;
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      E.error ~context:[ ("path", path) ] E.Cli E.Io_error "%s" msg
  | exception Unix.Unix_error (err, _, _) ->
      E.error ~context:[ ("path", path) ] E.Cli E.Io_error "%s"
        (Unix.error_message err)

let read_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  with
  | text -> Ok text
  | exception Sys_error msg ->
      E.error ~context:[ ("path", path) ] E.Cli E.Io_error "%s" msg

let with_path_context path = function
  | Ok _ as ok -> ok
  | Result.Error e -> Result.Error (E.with_context e [ ("path", path) ])

let save ~path m = write_atomic ~path (json_to_string (manifest_to_json m))

let load ~path =
  let* text = read_file path in
  with_path_context path
    (let* j = json_of_string text in
     manifest_of_json j)

(* ------------------------------------------------------------------ *)
(* Golden results                                                      *)

type golden_metric = {
  g_experiment : string;
  g_metric : string;
  g_value : float;
  g_rtol : float;
}

type drift = {
  d_experiment : string;
  d_metric : string;
  d_expected : float;
  d_actual : float option;
  d_rtol : float;
}

let golden_of_manifest ?(rtol = 0.1) ?experiments m =
  let wanted e =
    match experiments with
    | None -> true
    | Some names -> List.mem e.experiment names
  in
  List.concat_map
    (fun e ->
      if e.status = Failed || not (wanted e) then []
      else
        List.map
          (fun (k, v) ->
            {
              g_experiment = e.experiment;
              g_metric = k;
              g_value = v;
              (* exact for counts: the 26-pattern census must stay 26 *)
              g_rtol = (if Float.is_integer v then 0.0 else rtol);
            })
          e.scalars)
    m.entries

let golden_to_json metrics =
  Obj
    [
      ( "metrics",
        Arr
          (List.map
             (fun g ->
               Obj
                 [
                   ("experiment", Str g.g_experiment);
                   ("metric", Str g.g_metric);
                   ("value", Num g.g_value);
                   ("rtol", Num g.g_rtol);
                 ])
             metrics) );
    ]

let golden_of_json j =
  let* metrics_json = Result.bind (field j "metrics") (as_arr "metrics") in
  map_result
    (fun mj ->
      let* g_experiment =
        Result.bind (field mj "experiment") (as_str "experiment")
      in
      let* g_metric = Result.bind (field mj "metric") (as_str "metric") in
      let* g_value = Result.bind (field mj "value") (as_num "value") in
      let* g_rtol = Result.bind (field mj "rtol") (as_num "rtol") in
      Ok { g_experiment; g_metric; g_value; g_rtol })
    metrics_json

let save_golden ~path metrics =
  write_atomic ~path (json_to_string (golden_to_json metrics))

let load_golden ~path =
  let* text = read_file path in
  with_path_context path
    (let* j = json_of_string text in
     golden_of_json j)

let check_golden m metrics =
  List.filter_map
    (fun g ->
      let drift actual =
        {
          d_experiment = g.g_experiment;
          d_metric = g.g_metric;
          d_expected = g.g_value;
          d_actual = actual;
          d_rtol = g.g_rtol;
        }
      in
      match find m g.g_experiment with
      | None -> Some (drift None)
      | Some e when e.status = Failed -> Some (drift None)
      | Some e -> (
          match List.assoc_opt g.g_metric e.scalars with
          | None -> Some (drift None)
          | Some actual ->
              let scale = Float.max (Float.abs g.g_value) 1e-300 in
              if Float.abs (actual -. g.g_value) > g.g_rtol *. scale then
                Some (drift (Some actual))
              else None))
    metrics

let pp_drift ppf d =
  match d.d_actual with
  | None ->
      Format.fprintf ppf "%s/%s: expected %.6g but missing from the manifest"
        d.d_experiment d.d_metric d.d_expected
  | Some actual ->
      Format.fprintf ppf
        "%s/%s: expected %.6g +/- %.1f%%, manifest has %.6g (drift %+.2f%%)"
        d.d_experiment d.d_metric d.d_expected (100.0 *. d.d_rtol) actual
        (100.0 *. (actual -. d.d_expected) /. Float.max (Float.abs d.d_expected) 1e-300)
