(** Chrome [trace_event] export of a run's profile and journal.

    Converts a merged {!Telemetry} profile plus the {!Journal} events of
    the same run into the JSON array format understood by
    [chrome://tracing] and Perfetto ([ui.perfetto.dev]):

    - every telemetry span becomes a complete ([ph = "X"]) event. Spans
      are aggregated by path (calls + total wall), not individually
      timestamped, so the exporter synthesizes a timeline: a top-level
      experiment span starts at its [experiment_started] journal event
      (on the worker's PID track — one track per worker) and its children
      are laid out sequentially inside it, preserving the measured
      durations and the tree shape;
    - every journal event becomes an instant ([ph = "i"]) event on its
      emitting PID's track, with the event fields as [args];
    - process-name metadata labels each worker track with its
      experiment.

    Timestamps are microseconds relative to the earliest journal event
    (or 0 when no events are given). *)

val to_trace :
  ?events:Journal.event list -> Telemetry.profile -> Checkpoint.json
(** The trace document: [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val save :
  path:string ->
  ?events:Journal.event list ->
  Telemetry.profile ->
  (unit, Cnt_error.t) result
(** Atomic write of the compact rendering (same convention as
    {!Checkpoint.write_atomic}). *)

(** {2 Per-request slicing}

    Every daemon request / campaign shard / harness experiment mints a
    {!Tracectx}, so its journal events carry [trace] fields and its
    telemetry subtree is rooted at a span named [trace:<id>]. These
    helpers cut one request's story out of a shared run directory
    ([cntpower trace --request <id>]). *)

val resolve_trace_id :
  events:Journal.event list -> string -> string option
(** Accepts either a trace id (any event carries it verbatim) or a
    request number (the [request] journal field); returns the trace id,
    or [None] when the journal knows nothing about the argument. *)

val slice :
  trace_id:string ->
  ?events:Journal.event list ->
  Telemetry.profile ->
  Telemetry.profile * Journal.event list
(** The sub-profile (every [trace:<id>] subtree, promoted to top level;
    counters and dists are run-global, so dropped) and only the events
    stamped with that trace — ready to pass to {!to_trace}/{!save}, where
    the subtree anchors on its worker's PID track. *)
