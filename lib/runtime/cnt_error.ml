type stage =
  | Logic
  | Netlist
  | Aig
  | Techmap
  | Spice
  | Power
  | Experiment
  | Library
  | Cli

type code =
  | Parse_error
  | Validation_error
  | Non_finite
  | Convergence_failure
  | Singular_matrix
  | Combinational_loop
  | Undriven_net
  | Multiply_driven_net
  | Unmapped_node
  | Missing_signal
  | Mismatch
  | Unsupported
  | Io_error
  | Worker_timeout
  | Worker_killed
  | Regression
  | Overloaded
  | Shard_quarantined
  | Internal

type t = {
  stage : stage;
  code : code;
  message : string;
  context : (string * string) list;
}

exception Error of t

let make ?(context = []) stage code message = { stage; code; message; context }

let makef ?context stage code fmt =
  Format.kasprintf (fun message -> make ?context stage code message) fmt

let error ?context stage code fmt =
  Format.kasprintf
    (fun message -> Result.Error (make ?context stage code message))
    fmt

let raise_error e = raise (Error e)

let failf ?context stage code fmt =
  Format.kasprintf
    (fun message -> raise (Error (make ?context stage code message)))
    fmt

let with_context e pairs = { e with context = e.context @ pairs }

let stage_name = function
  | Logic -> "logic"
  | Netlist -> "netlist"
  | Aig -> "aig"
  | Techmap -> "techmap"
  | Spice -> "spice"
  | Power -> "power"
  | Experiment -> "experiment"
  | Library -> "library"
  | Cli -> "cli"

let all_stages =
  [ Logic; Netlist; Aig; Techmap; Spice; Power; Experiment; Library; Cli ]

let stage_of_name s = List.find_opt (fun st -> stage_name st = s) all_stages

let code_name = function
  | Parse_error -> "parse-error"
  | Validation_error -> "validation-error"
  | Non_finite -> "non-finite"
  | Convergence_failure -> "convergence-failure"
  | Singular_matrix -> "singular-matrix"
  | Combinational_loop -> "combinational-loop"
  | Undriven_net -> "undriven-net"
  | Multiply_driven_net -> "multiply-driven-net"
  | Unmapped_node -> "unmapped-node"
  | Missing_signal -> "missing-signal"
  | Mismatch -> "mismatch"
  | Unsupported -> "unsupported"
  | Io_error -> "io-error"
  | Worker_timeout -> "worker-timeout"
  | Worker_killed -> "worker-killed"
  | Regression -> "regression"
  | Overloaded -> "overloaded"
  | Shard_quarantined -> "shard-quarantined"
  | Internal -> "internal"

let all_codes =
  [
    Parse_error; Validation_error; Non_finite; Convergence_failure;
    Singular_matrix; Combinational_loop; Undriven_net; Multiply_driven_net;
    Unmapped_node; Missing_signal; Mismatch; Unsupported; Io_error;
    Worker_timeout; Worker_killed; Regression; Overloaded; Shard_quarantined;
    Internal;
  ]

let code_of_name s = List.find_opt (fun c -> code_name c = s) all_codes

let pp ppf e =
  Format.fprintf ppf "%s/%s: %s" (stage_name e.stage) (code_name e.code)
    e.message;
  match e.context with
  | [] -> ()
  | pairs ->
      Format.fprintf ppf " (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k v))
        pairs

let to_string e = Format.asprintf "%a" pp e

let of_exn ~stage = function
  | Error e -> e
  | Failure msg -> make stage Internal msg
  | Invalid_argument msg -> make stage Validation_error msg
  | Sys_error msg -> make stage Io_error msg
  | Not_found -> make stage Missing_signal "Not_found"
  | exn -> make stage Internal (Printexc.to_string exn)

let protect ~stage f =
  match f () with
  | x -> Ok x
  | exception Stack_overflow ->
      Result.Error (make stage Internal "stack overflow")
  | exception Out_of_memory -> Result.Error (make stage Internal "out of memory")
  | exception exn -> Result.Error (of_exn ~stage exn)

let get_exn = function Ok x -> x | Result.Error e -> raise (Error e)

(* 0 = success, 10/11 = harness summary codes; each error class gets its own
   code so CI and scripts can distinguish failure modes without parsing. *)
let exit_code e =
  match e.code with
  | Parse_error -> 12
  | Validation_error -> 13
  | Non_finite -> 14
  | Convergence_failure -> 15
  | Singular_matrix -> 16
  | Combinational_loop -> 17
  | Undriven_net -> 18
  | Multiply_driven_net -> 19
  | Unmapped_node -> 20
  | Missing_signal -> 21
  | Mismatch -> 22
  | Unsupported -> 23
  | Io_error -> 24
  | Worker_timeout -> 25
  | Worker_killed -> 26
  | Internal -> 27
  | Regression -> 28
  | Overloaded -> 29
  | Shard_quarantined -> 30
