module E = Cnt_error
module J = Checkpoint
module T = Telemetry

type dist_summary = {
  m_count : int;
  m_sum : float;
  m_min : float;
  m_max : float;
  m_p50 : float;
  m_p95 : float;
}

type t = {
  m_source : string;
  m_time : float;
  m_uptime_s : float;
  m_gauges : (string * float) list;
  m_counters : (string * int) list;
  m_dists : (string * dist_summary) list;
}

let summarize (d : T.dist) =
  {
    m_count = d.T.d_count;
    m_sum = d.T.d_sum;
    m_min = (if d.T.d_count = 0 then 0.0 else d.T.d_min);
    m_max = (if d.T.d_count = 0 then 0.0 else d.T.d_max);
    m_p50 = T.percentile d 0.5;
    m_p95 = T.percentile d 0.95;
  }

let by_name (a, _) (b, _) = compare (a : string) b

let make ~source ~started ?(gauges = []) ?(counters = []) () =
  let prof =
    if T.enabled () then T.snapshot ()
    else { T.p_spans = []; p_counters = []; p_dists = [] }
  in
  (* Caller counters win over telemetry counters with the same name: the
     caller's lifecycle totals (served/shed/...) are authoritative, and
     telemetry may track the same names. *)
  let merged =
    List.fold_left
      (fun acc (name, n) -> (name, n) :: List.remove_assoc name acc)
      prof.T.p_counters counters
  in
  let now = Unix.gettimeofday () in
  {
    m_source = source;
    m_time = now;
    m_uptime_s = max 0.0 (now -. started);
    m_gauges = List.sort by_name gauges;
    m_counters = List.sort by_name merged;
    m_dists =
      List.sort by_name
        (List.map (fun (name, d) -> (name, summarize d)) prof.T.p_dists);
  }

let drop_suffix s suffix =
  let n = String.length s and m = String.length suffix in
  if n > m && String.sub s (n - m) m = suffix then Some (String.sub s 0 (n - m))
  else None

let hit_ratios m =
  List.filter_map
    (fun (name, hits) ->
      match drop_suffix name ".hits" with
      | None -> None
      | Some base -> (
          match List.assoc_opt (base ^ ".misses") m.m_counters with
          | Some misses when hits + misses > 0 ->
              Some
                ( base,
                  float_of_int hits /. float_of_int (hits + misses),
                  hits,
                  misses )
          | _ -> None))
    m.m_counters

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let dist_to_json d =
  J.Obj
    [
      ("count", J.Num (float_of_int d.m_count));
      ("sum", J.Num d.m_sum);
      ("min", J.Num d.m_min);
      ("max", J.Num d.m_max);
      ("p50", J.Num d.m_p50);
      ("p95", J.Num d.m_p95);
    ]

let to_json m =
  J.Obj
    [
      ("version", J.Num 1.0);
      ("source", J.Str m.m_source);
      ("time", J.Num m.m_time);
      ("uptime_s", J.Num m.m_uptime_s);
      ("gauges", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) m.m_gauges));
      ( "counters",
        J.Obj
          (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) m.m_counters)
      );
      ("dists", J.Obj (List.map (fun (k, d) -> (k, dist_to_json d)) m.m_dists));
    ]

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let num_field j name =
  let* v = J.field j name in
  J.as_num name v

let dist_of_json name j =
  let* m_count = num_field j "count" in
  let* m_sum = num_field j "sum" in
  let* m_min = num_field j "min" in
  let* m_max = num_field j "max" in
  let* m_p50 = num_field j "p50" in
  let* m_p95 = num_field j "p95" in
  Ok (name, { m_count = int_of_float m_count; m_sum; m_min; m_max; m_p50; m_p95 })

let assoc_field j name =
  match J.field j name with
  | Ok (J.Obj fields) -> Ok fields
  | Ok _ -> E.error E.Cli E.Parse_error "field %S must be an object" name
  | Error e -> Error e

let of_json j =
  let* source = Result.bind (J.field j "source") (J.as_str "source") in
  let* time = num_field j "time" in
  let* uptime = num_field j "uptime_s" in
  let* gauge_fields = assoc_field j "gauges" in
  let* m_gauges =
    map_result
      (fun (k, v) ->
        let* n = J.as_num k v in
        Ok (k, n))
      gauge_fields
  in
  let* counter_fields = assoc_field j "counters" in
  let* m_counters =
    map_result
      (fun (k, v) ->
        let* n = J.as_num k v in
        Ok (k, int_of_float n))
      counter_fields
  in
  let* dist_fields = assoc_field j "dists" in
  let* m_dists = map_result (fun (k, v) -> dist_of_json k v) dist_fields in
  Ok
    {
      m_source = source;
      m_time = time;
      m_uptime_s = uptime;
      m_gauges;
      m_counters;
      m_dists;
    }

let save ~path m = J.write_atomic ~path (J.json_to_string (to_json m))

let load ~path =
  let* text = J.read_file path in
  let* j = J.json_of_string text in
  of_json j

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp ppf m =
  Format.fprintf ppf "%s metrics — up %.1f s@." m.m_source m.m_uptime_s;
  if m.m_gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (k, v) ->
        if Float.is_integer v then Format.fprintf ppf "  %-32s %.0f@." k v
        else Format.fprintf ppf "  %-32s %.3f@." k v)
      m.m_gauges
  end;
  if m.m_counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    let by_value =
      List.sort (fun (_, a) (_, b) -> compare (b : int) a) m.m_counters
    in
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-32s %d@." k v) by_value
  end;
  (match hit_ratios m with
  | [] -> ()
  | ratios ->
      Format.fprintf ppf "cache hit ratios:@.";
      List.iter
        (fun (base, ratio, hits, misses) ->
          Format.fprintf ppf "  %-32s %5.1f%%  (%d hit / %d miss)@." base
            (100.0 *. ratio) hits misses)
        ratios);
  if m.m_dists <> [] then begin
    Format.fprintf ppf "distributions:@.";
    List.iter
      (fun (k, d) ->
        Format.fprintf ppf
          "  %-32s n=%d mean=%.4g p50=%.4g p95=%.4g max=%.4g@." k d.m_count
          (if d.m_count = 0 then 0.0 else d.m_sum /. float_of_int d.m_count)
          d.m_p50 d.m_p95 d.m_max)
      m.m_dists
  end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let to_prometheus m =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# TYPE cntpower_uptime_seconds gauge";
  line "cntpower_uptime_seconds{source=%S} %g" m.m_source m.m_uptime_s;
  List.iter
    (fun (k, v) ->
      let name = "cntpower_" ^ sanitize k in
      line "# TYPE %s gauge" name;
      line "%s %g" name v)
    m.m_gauges;
  List.iter
    (fun (k, v) ->
      let name = "cntpower_" ^ sanitize k ^ "_total" in
      line "# TYPE %s counter" name;
      line "%s %d" name v)
    m.m_counters;
  List.iter
    (fun (k, d) ->
      let name = "cntpower_" ^ sanitize k in
      line "# TYPE %s summary" name;
      line "%s{quantile=\"0.5\"} %g" name d.m_p50;
      line "%s{quantile=\"0.95\"} %g" name d.m_p95;
      line "%s_sum %g" name d.m_sum;
      line "%s_count %d" name d.m_count)
    m.m_dists;
  Buffer.contents buf
