module E = Cnt_error
module J = Checkpoint

let ( let* ) = Result.bind

type config = {
  socket_path : string;
  max_workers : int;
  queue_limit : int;
  max_request_bytes : int;
  default_deadline_s : float;
  max_deadline_s : float;
  drain_timeout_s : float;
  breaker_threshold : int;
  breaker_window_s : float;
  backoff_initial_s : float;
  backoff_max_s : float;
  retry_after_s : float;
  metrics_path : string option;
  metrics_interval_s : float;
}

let default_config ~socket_path =
  {
    socket_path;
    max_workers = 4;
    queue_limit = 16;
    max_request_bytes = 8 * 1024 * 1024;
    default_deadline_s = 60.0;
    max_deadline_s = 3600.0;
    drain_timeout_s = 30.0;
    breaker_threshold = 5;
    breaker_window_s = 60.0;
    backoff_initial_s = 0.05;
    backoff_max_s = 2.0;
    retry_after_s = 1.0;
    metrics_path = None;
    metrics_interval_s = 1.0;
  }

type 'job handlers = {
  admit : J.json -> ('job, E.t) result;
  execute : 'job -> (J.json, E.t) result;
  describe : 'job -> (string * string) list;
}

type stop = Drained | Tripped

(* ------------------------------------------------------------------ *)
(* Error payloads                                                      *)

let error_to_json (e : E.t) =
  J.Obj
    [
      ("stage", J.Str (E.stage_name e.E.stage));
      ("code", J.Str (E.code_name e.E.code));
      ("message", J.Str e.E.message);
      ("context", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) e.E.context));
    ]

let error_of_json j =
  match
    let* stage_s = Result.bind (J.field j "stage") (J.as_str "stage") in
    let* code_s = Result.bind (J.field j "code") (J.as_str "code") in
    let* message = Result.bind (J.field j "message") (J.as_str "message") in
    let context =
      match J.field j "context" with
      | Ok (J.Obj pairs) ->
          List.filter_map
            (fun (k, v) -> match v with J.Str s -> Some (k, s) | _ -> None)
            pairs
      | _ -> []
    in
    let stage = Option.value ~default:E.Cli (E.stage_of_name stage_s) in
    let code = Option.value ~default:E.Internal (E.code_of_name code_s) in
    Ok (E.make ~context stage code message)
  with
  | Ok e -> Some e
  | Error _ -> None

let ok_response result = J.Obj [ ("status", J.Str "ok"); ("result", result) ]

let health_response fields =
  J.Obj [ ("status", J.Str "ok"); ("health", J.Obj fields) ]

let error_response e =
  J.Obj [ ("status", J.Str "error"); ("error", error_to_json e) ]

let overloaded_response ~retry_after_s ~state =
  J.Obj
    [
      ("status", J.Str "overloaded");
      ("retry_after_s", J.Num retry_after_s);
      ("state", J.Str state);
    ]

let response_error j =
  match Result.bind (J.field j "status") (J.as_str "status") with
  | Ok "ok" -> None
  | Ok "error" -> (
      match J.field j "error" with
      | Ok ej -> (
          match error_of_json ej with
          | Some e -> Some e
          | None -> Some (E.make E.Cli E.Internal "undecodable error payload"))
      | Error _ -> Some (E.make E.Cli E.Internal "error response without payload"))
  | Ok "overloaded" ->
      let retry =
        match Result.bind (J.field j "retry_after_s") (J.as_num "retry_after_s") with
        | Ok r -> Printf.sprintf "%g" r
        | Error _ -> "?"
      in
      Some
        (E.make
           ~context:[ ("retry_after_s", retry) ]
           E.Cli E.Overloaded "server shed the request; retry later")
  | Ok other -> Some (E.makef E.Cli E.Internal "unknown response status %S" other)
  | Error _ -> Some (E.make E.Cli E.Internal "response without status")

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian payload length, then the JSON bytes.     *)

let header_bytes = 4

let encode_len n =
  let b = Bytes.create header_bytes in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  b

let decode_len b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let ignore_sigpipe =
  lazy
    (if not Sys.win32 then
       try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

(* Wait until [fd] is ready in direction [dir] or the deadline passes. *)
let wait_fd fd dir ~deadline =
  let rec go () =
    let budget = deadline -. Unix.gettimeofday () in
    if budget <= 0.0 then false
    else
      let r, w = match dir with `R -> ([ fd ], []) | `W -> ([], [ fd ]) in
      match Unix.select r w [] budget with
      | [], [], _ -> go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let io_error fmt = E.error E.Cli E.Io_error fmt

let write_frame fd ?(timeout_s = 30.0) payload =
  Lazy.force ignore_sigpipe;
  let deadline = Unix.gettimeofday () +. timeout_s in
  let n = String.length payload in
  let buf = Bytes.create (header_bytes + n) in
  Bytes.blit (encode_len n) 0 buf 0 header_bytes;
  Bytes.blit_string payload 0 buf header_bytes n;
  let total = Bytes.length buf in
  let rec go off =
    if off >= total then Ok ()
    else
      match Unix.write fd buf off (total - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if wait_fd fd `W ~deadline then go off
          else io_error "frame write timed out after %.1fs" timeout_s
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (err, _, _) ->
          io_error "frame write failed: %s" (Unix.error_message err)
  in
  go 0

let read_frame fd ?(timeout_s = 60.0) ?(max_bytes = 64 * 1024 * 1024) () =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let read_exactly n what =
    let buf = Bytes.create n in
    let rec go off =
      if off >= n then Ok buf
      else
        match Unix.read fd buf off (n - off) with
        | 0 -> io_error "connection closed mid-%s (%d of %d bytes)" what off n
        | r -> go (off + r)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            if wait_fd fd `R ~deadline then go off
            else io_error "frame read timed out after %.1fs" timeout_s
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error (err, _, _) ->
            io_error "frame read failed: %s" (Unix.error_message err)
    in
    go 0
  in
  let* header = read_exactly header_bytes "header" in
  let n = decode_len header 0 in
  if n <= 0 || n > max_bytes then
    io_error "frame length %d outside (0, %d]" n max_bytes
  else
    let* payload = read_exactly n "payload" in
    Ok (Bytes.to_string payload)

(* ------------------------------------------------------------------ *)
(* Client                                                              *)

let call ~socket_path ?(timeout_s = 60.0) json =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
      | exception Unix.Unix_error (err, _, _) ->
          E.error
            ~context:[ ("socket", socket_path) ]
            E.Cli E.Io_error "cannot connect: %s" (Unix.error_message err)
      | () ->
          let* () = write_frame fd ~timeout_s (J.json_to_string_compact json) in
          let* payload = read_frame fd ~timeout_s () in
          J.json_of_string payload)

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_open : bool;
}

type 'job queued = {
  q_id : int;
  q_conn : conn;
  q_job : 'job;
  q_deadline_s : float;
  q_ctx : Tracectx.t;  (** minted at admission; follows the request *)
}

type 'job flight = {
  f_req : 'job queued;
  f_async : J.json Supervisor.async;
  f_deadline : float;
  f_started : float;
}

type drain_reason = [ `No | `Signal | `Breaker ]

type 'job state = {
  cfg : config;
  h : 'job handlers;
  listen_fd : Unix.file_descr;
  sig_r : Unix.file_descr;
  started : float;
  mutable accepting : bool;
  mutable conns : conn list;
  mutable queue : 'job queued list;  (** oldest first *)
  mutable flights : 'job flight list;
  mutable draining : drain_reason;
  mutable drain_deadline : float;
  mutable next_conn : int;
  mutable next_req : int;
  mutable served : int;
  mutable failed : int;
  mutable shed : int;
  mutable rejected : int;
  mutable crashes : int;
  mutable deadline_kills : int;
  mutable crash_times : float list;
  mutable backoff_s : float;
  mutable backoff_until : float;
  mutable respawn_pending : bool;
  mutable verb_counts : (string * int) list;
  mutable last_metrics_write : float;
}

let jn kind fields = if Journal.enabled () then Journal.emit kind fields
let jnw kind fields =
  if Journal.enabled () then Journal.emit ~level:Journal.Warn kind fields

let req_ctx id = ("request", string_of_int id)

(* Best-effort response: a client that vanished or stalled must never
   wedge the loop, so a failed write just closes that connection. *)
let close_conn st conn =
  if conn.c_open then begin
    conn.c_open <- false;
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c -> c.c_id <> conn.c_id) st.conns;
    st.queue <- List.filter (fun q -> q.q_conn.c_id <> conn.c_id) st.queue
  end

let respond st conn json =
  if conn.c_open then
    match write_frame conn.c_fd ~timeout_s:5.0 (J.json_to_string_compact json) with
    | Ok () -> ()
    | Error _ -> close_conn st conn

let cache_entries () =
  if not (Diskcache.enabled ()) then 0
  else
    match Sys.readdir (Diskcache.dir ()) with
    | files ->
        Array.fold_left
          (fun n f -> if Filename.check_suffix f ".bin" then n + 1 else n)
          0 files
    | exception Sys_error _ -> 0

let state_name st =
  match st.draining with
  | `No -> "running"
  | `Signal -> "draining"
  | `Breaker -> "draining-breaker"

let health st now =
  health_response
    [
      ("state", J.Str (state_name st));
      ("pid", J.Num (float_of_int (Unix.getpid ())));
      ("socket", J.Str st.cfg.socket_path);
      ("uptime_s", J.Num (now -. st.started));
      ("workers_busy", J.Num (float_of_int (List.length st.flights)));
      ("workers_max", J.Num (float_of_int st.cfg.max_workers));
      ("queue_depth", J.Num (float_of_int (List.length st.queue)));
      ("queue_limit", J.Num (float_of_int st.cfg.queue_limit));
      ("served", J.Num (float_of_int st.served));
      ("failed", J.Num (float_of_int st.failed));
      ("shed", J.Num (float_of_int st.shed));
      ("rejected", J.Num (float_of_int st.rejected));
      ("worker_crashes", J.Num (float_of_int st.crashes));
      ("deadline_kills", J.Num (float_of_int st.deadline_kills));
      ("backoff_active", J.Bool (now < st.backoff_until));
      ("cache_entries", J.Num (float_of_int (cache_entries ())));
    ]

let final_stats st =
  [
    ("served", string_of_int st.served);
    ("failed", string_of_int st.failed);
    ("shed", string_of_int st.shed);
    ("rejected", string_of_int st.rejected);
    ("worker_crashes", string_of_int st.crashes);
    ("deadline_kills", string_of_int st.deadline_kills);
  ]

(* One live snapshot: the loop's own lifecycle totals (authoritative, and
   available even with telemetry off) plus whatever the telemetry
   registry has accumulated — latency dists, cache counters. Served both
   by the [metrics] verb (inline, ahead of shedding, so it works under
   load and while draining) and as periodic [metrics.json] writes. *)
let metrics_snapshot st now =
  Metrics.make ~source:"serve" ~started:st.started
    ~gauges:
      [
        ("queue_depth", float_of_int (List.length st.queue));
        ("queue_limit", float_of_int st.cfg.queue_limit);
        ("workers_busy", float_of_int (List.length st.flights));
        ("workers_max", float_of_int st.cfg.max_workers);
        ("connections_open", float_of_int (List.length st.conns));
        ("cache_entries", float_of_int (cache_entries ()));
        ("backoff_active", if now < st.backoff_until then 1.0 else 0.0);
        ("draining", if st.draining = `No then 0.0 else 1.0);
      ]
    ~counters:
      ([
         ("serve.served", st.served);
         ("serve.failed", st.failed);
         ("serve.shed", st.shed);
         ("serve.rejected", st.rejected);
         ("serve.worker_crashes", st.crashes);
         ("serve.deadline_kills", st.deadline_kills);
       ]
      @ List.map (fun (v, n) -> ("serve.verb." ^ v, n)) st.verb_counts)
    ()

let metrics_response st now =
  J.Obj
    [
      ("status", J.Str "ok");
      ("metrics", Metrics.to_json (metrics_snapshot st now));
    ]

let write_metrics st now =
  match st.cfg.metrics_path with
  | None -> ()
  | Some path ->
      st.last_metrics_write <- now;
      ignore (Metrics.save ~path (metrics_snapshot st now))

(* ------------------------------------------------------------------ *)
(* Lifecycle transitions                                               *)

let stop_accepting st =
  if st.accepting then begin
    st.accepting <- false;
    (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink st.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ())
  end

let start_drain st reason now =
  if st.draining = `No then begin
    st.draining <- reason;
    st.drain_deadline <- now +. st.cfg.drain_timeout_s;
    stop_accepting st;
    jn Journal.Server_draining
      [
        ("reason", match reason with `Breaker -> "breaker" | _ -> "signal");
        ("in_flight", string_of_int (List.length st.flights));
        ("queued", string_of_int (List.length st.queue));
        ("drain_timeout_s", Printf.sprintf "%.1f" st.cfg.drain_timeout_s);
      ]
  end

let shed st conn ~why =
  st.shed <- st.shed + 1;
  Telemetry.count "serve.shed" 1;
  jnw Journal.Overload_shed
    [
      ("reason", why);
      ("queue_depth", string_of_int (List.length st.queue));
      ("in_flight", string_of_int (List.length st.flights));
    ];
  respond st conn
    (overloaded_response ~retry_after_s:st.cfg.retry_after_s ~state:(state_name st))

let reject st conn id e =
  st.rejected <- st.rejected + 1;
  Telemetry.count "serve.rejected" 1;
  jnw Journal.Request_rejected
    [ req_ctx id; ("code", E.code_name e.E.code); ("message", e.E.message) ];
  respond st conn (error_response e)

(* ------------------------------------------------------------------ *)
(* Dispatch and completion                                             *)

let fds_to_close_in_child st =
  st.listen_fd :: st.sig_r :: List.map (fun c -> c.c_fd) st.conns

let dispatch st req now =
  if st.respawn_pending then begin
    st.respawn_pending <- false;
    jn Journal.Worker_respawned
      [ ("backoff_s", Printf.sprintf "%.3f" st.backoff_s) ]
  end;
  let name = Printf.sprintf "req-%d" req.q_id in
  let execute = st.h.execute in
  let job = req.q_job in
  (* Spawn under the request's context: the Worker_spawned event gets the
     trace fields and the fork inherits the context, so everything the
     worker journals links back to this request. The per-request span
     label in the telemetry prefix makes each request's profile subtree
     addressable in profile.json. *)
  Tracectx.with_ctx req.q_ctx (fun () ->
      match
        Supervisor.spawn_async
          ~telemetry_prefix:[ "serve.request"; Tracectx.span_label req.q_ctx ]
          ~close_in_child:(fds_to_close_in_child st) ~name (fun () ->
            match execute job with Ok j -> j | Error e -> E.raise_error e)
      with
      | async ->
          st.flights <-
            {
              f_req = req;
              f_async = async;
              f_deadline = now +. req.q_deadline_s;
              f_started = now;
            }
            :: st.flights
      | exception e ->
          let err = E.of_exn ~stage:E.Experiment e in
          st.failed <- st.failed + 1;
          respond st req.q_conn (error_response err))

let try_dispatch st now =
  let rec go () =
    if
      List.length st.flights < st.cfg.max_workers
      && st.queue <> []
      && now >= st.backoff_until
    then begin
      match st.queue with
      | [] -> ()
      | req :: rest ->
          st.queue <- rest;
          dispatch st req now;
          go ()
    end
  in
  go ()

let request_done flight ~status ~wall extra =
  Telemetry.observe "serve.request_wall_s" wall;
  jn Journal.Request_done
    ([
       req_ctx flight.f_req.q_id;
       ("status", status);
       ("wall_s", Printf.sprintf "%.4f" wall);
     ]
    @ extra)

let breaker_hot st now =
  st.crash_times <-
    List.filter (fun t -> now -. t <= st.cfg.breaker_window_s) st.crash_times;
  List.length st.crash_times >= st.cfg.breaker_threshold

let on_worker_done st flight result now =
  Tracectx.with_ctx flight.f_req.q_ctx @@ fun () ->
  st.flights <- List.filter (fun f -> f.f_req.q_id <> flight.f_req.q_id) st.flights;
  let wall = now -. flight.f_started in
  match result with
  | Ok json ->
      st.served <- st.served + 1;
      Telemetry.count "serve.served" 1;
      st.backoff_s <- st.cfg.backoff_initial_s;
      request_done flight ~status:"ok" ~wall [];
      respond st flight.f_req.q_conn (ok_response json)
  | Error e when e.E.code = E.Worker_killed ->
      (* The worker died, not the request: isolate, back off, maybe trip. *)
      st.failed <- st.failed + 1;
      st.crashes <- st.crashes + 1;
      Telemetry.count "serve.worker_crashes" 1;
      st.crash_times <- now :: st.crash_times;
      st.backoff_until <- now +. st.backoff_s;
      st.backoff_s <- Float.min (st.backoff_s *. 2.0) st.cfg.backoff_max_s;
      st.respawn_pending <- true;
      request_done flight ~status:"crashed" ~wall
        [ ("code", E.code_name e.E.code) ];
      respond st flight.f_req.q_conn
        (error_response (E.with_context e [ req_ctx flight.f_req.q_id ]));
      if breaker_hot st now && st.draining = `No then begin
        jnw Journal.Breaker_tripped
          [
            ("crashes", string_of_int (List.length st.crash_times));
            ("window_s", Printf.sprintf "%.1f" st.cfg.breaker_window_s);
          ];
        Telemetry.count "serve.breaker_trips" 1;
        start_drain st `Breaker now
      end
  | Error e ->
      (* Typed failure from the handler itself: the worker is fine. *)
      st.failed <- st.failed + 1;
      Telemetry.count "serve.request_errors" 1;
      st.backoff_s <- st.cfg.backoff_initial_s;
      request_done flight ~status:"error" ~wall
        [ ("code", E.code_name e.E.code) ];
      respond st flight.f_req.q_conn (error_response e)

let kill_deadline st flight now =
  Tracectx.with_ctx flight.f_req.q_ctx @@ fun () ->
  Supervisor.async_abort flight.f_async;
  st.flights <- List.filter (fun f -> f.f_req.q_id <> flight.f_req.q_id) st.flights;
  st.failed <- st.failed + 1;
  st.deadline_kills <- st.deadline_kills + 1;
  Telemetry.count "serve.deadline_kills" 1;
  let wall = now -. flight.f_started in
  jnw Journal.Worker_timeout
    [
      req_ctx flight.f_req.q_id;
      ("worker_pid", string_of_int (Supervisor.async_pid flight.f_async));
      ("deadline_s", Printf.sprintf "%.1f" flight.f_req.q_deadline_s);
    ];
  request_done flight ~status:"deadline" ~wall [];
  respond st flight.f_req.q_conn
    (error_response
       (E.makef
          ~context:
            [
              req_ctx flight.f_req.q_id;
              ("deadline_s", Printf.sprintf "%.1f" flight.f_req.q_deadline_s);
            ]
          E.Experiment E.Worker_timeout
          "request exceeded its %.1fs deadline and its worker was killed"
          flight.f_req.q_deadline_s))

(* ------------------------------------------------------------------ *)
(* Request admission                                                   *)

let parse_deadline st json =
  match J.field json "deadline_s" with
  | Error _ -> Ok st.cfg.default_deadline_s
  | Ok dj ->
      let* d = J.as_num "deadline_s" dj in
      if Float.is_finite d && d > 0.0 then
        Ok (Float.min d st.cfg.max_deadline_s)
      else
        E.error
          ~context:[ ("deadline_s", Printf.sprintf "%h" d) ]
          E.Cli E.Validation_error
          "deadline_s must be a finite number of seconds > 0"

let bump_verb st v =
  st.verb_counts <-
    (match List.assoc_opt v st.verb_counts with
    | Some n -> (v, n + 1) :: List.remove_assoc v st.verb_counts
    | None -> (v, 1) :: st.verb_counts)

let process_request st conn json now =
  Telemetry.count "serve.requests" 1;
  let id = st.next_req in
  st.next_req <- id + 1;
  let verb =
    match Result.bind (J.field json "verb") (J.as_str "verb") with
    | Ok v -> Ok v
    | Error _ ->
        E.error ~context:[ req_ctx id ] E.Cli E.Validation_error
          "request needs a string \"verb\" field"
  in
  (match verb with Ok v -> bump_verb st v | Error _ -> bump_verb st "invalid");
  match verb with
  | Error e -> reject st conn id e
  | Ok "health" -> respond st conn (health st now)
  (* Like health, metrics answers inline ahead of shedding: an operator's
     poll must work exactly when the server is loaded or draining. *)
  | Ok "metrics" -> respond st conn (metrics_response st now)
  | Ok _ when st.draining <> `No -> shed st conn ~why:"draining"
  | Ok _
    when List.length st.flights >= st.cfg.max_workers
         && List.length st.queue >= st.cfg.queue_limit ->
      (* Shed before validating: admission work is exactly what an
         overloaded server must not spend on traffic it will refuse. *)
      shed st conn ~why:"queue-full"
  | Ok _ -> (
      (* Every admitted request starts a trace: the context follows the
         request through queueing, the forked worker, and completion, so
         the journal and profile can be sliced per request. *)
      let ctx = Tracectx.mint_root () in
      match
        let* deadline_s = parse_deadline st json in
        let* job = st.h.admit json in
        Ok (deadline_s, job)
      with
      | Error e ->
          Tracectx.with_ctx ctx (fun () ->
              reject st conn id (E.with_context e [ req_ctx id ]))
      | Ok (deadline_s, job) ->
          let req =
            {
              q_id = id;
              q_conn = conn;
              q_job = job;
              q_deadline_s = deadline_s;
              q_ctx = ctx;
            }
          in
          Telemetry.count "serve.admitted" 1;
          Tracectx.with_ctx ctx (fun () ->
              jn Journal.Request_admitted
                ([
                   req_ctx id;
                   ("conn", string_of_int conn.c_id);
                   ("deadline_s", Printf.sprintf "%.1f" deadline_s);
                 ]
                @ st.h.describe job));
          st.queue <- st.queue @ [ req ];
          try_dispatch st now)

(* Frame reassembly: the connection buffer accumulates raw bytes; every
   complete [header + payload] is peeled off and processed. A length
   prefix beyond the admission cap is refused without reading the
   payload, and a framing-level violation costs the connection. *)
let process_buffer st conn now =
  let rec go () =
    if conn.c_open then begin
      let len = Buffer.length conn.c_buf in
      if len >= header_bytes then begin
        let raw = Buffer.to_bytes conn.c_buf in
        let n = decode_len raw 0 in
        if n <= 0 then begin
          reject st conn st.next_req
            (E.make E.Cli E.Parse_error "zero-length frame");
          close_conn st conn
        end
        else if n > st.cfg.max_request_bytes then begin
          reject st conn st.next_req
            (E.makef
               ~context:
                 [
                   ("bytes", string_of_int n);
                   ("max_request_bytes", string_of_int st.cfg.max_request_bytes);
                 ]
               E.Cli E.Validation_error
               "request of %d bytes exceeds the %d-byte admission limit" n
               st.cfg.max_request_bytes);
          close_conn st conn
        end
        else if len >= header_bytes + n then begin
          let payload = Bytes.sub_string raw header_bytes n in
          Buffer.clear conn.c_buf;
          Buffer.add_subbytes conn.c_buf raw (header_bytes + n)
            (len - header_bytes - n);
          (match J.json_of_string payload with
          | Error e ->
              reject st conn st.next_req
                (E.with_context e [ ("frame_bytes", string_of_int n) ])
          | Ok json -> process_request st conn json now);
          go ()
        end
      end
    end
  in
  go ()

let on_conn_readable st conn now =
  let chunk = Bytes.create 65536 in
  let rec read_some () =
    match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
    | 0 ->
        (* EOF. Bytes left in the buffer are a frame that will never
           complete: tell the peer (its write side may still be open —
           the truncated-frame probe in the tests half-closes) and drop
           the connection. *)
        if Buffer.length conn.c_buf > 0 then
          reject st conn st.next_req
            (E.makef
               ~context:[ ("buffered_bytes", string_of_int (Buffer.length conn.c_buf)) ]
               E.Cli E.Parse_error
               "connection closed mid-frame (truncated request)");
        close_conn st conn
    | n ->
        Buffer.add_subbytes conn.c_buf chunk 0 n;
        process_buffer st conn now;
        if conn.c_open then read_some ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some ()
    | exception Unix.Unix_error _ -> close_conn st conn
  in
  read_some ()

let accept_ready st =
  let rec go () =
    match Unix.accept st.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let conn =
          { c_id = st.next_conn; c_fd = fd; c_buf = Buffer.create 256; c_open = true }
        in
        st.next_conn <- st.next_conn + 1;
        st.conns <- conn :: st.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Socket setup                                                        *)

let bind_socket path =
  let addr = Unix.ADDR_UNIX path in
  let* () =
    if not (Sys.file_exists path) then Ok ()
    else begin
      (* Either a stale socket from a crashed server (safe to replace) or
         a live sibling (refuse: two servers on one path lose requests). *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe addr with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        E.error
          ~context:[ ("socket", path) ]
          E.Cli E.Io_error "socket is already being served"
      else
        match Unix.unlink path with
        | () -> Ok ()
        | exception Unix.Unix_error (err, _, _) ->
            E.error
              ~context:[ ("socket", path) ]
              E.Cli E.Io_error "cannot remove stale socket: %s"
              (Unix.error_message err)
    end
  in
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd addr;
       Unix.listen fd 64;
       Unix.set_nonblock fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
      E.error
        ~context:[ ("socket", path) ]
        E.Cli E.Io_error "cannot bind: %s" (Unix.error_message err)

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let validate_config cfg =
  let* () =
    Validate.require ~stage:E.Cli (cfg.max_workers >= 1)
      "serve: workers must be >= 1"
  in
  let* () =
    Validate.require ~stage:E.Cli (cfg.queue_limit >= 0)
      "serve: queue limit must be >= 0"
  in
  let* () =
    Validate.require ~stage:E.Cli (cfg.max_request_bytes >= 64)
      "serve: max request bytes must be >= 64"
  in
  let* () =
    Validate.require ~stage:E.Cli
      (Float.is_finite cfg.default_deadline_s && cfg.default_deadline_s > 0.0)
      "serve: default deadline must be finite and > 0"
  in
  Validate.require ~stage:E.Cli
    (Float.is_finite cfg.drain_timeout_s && cfg.drain_timeout_s >= 0.0)
    "serve: drain timeout must be finite and >= 0"

let drain_expired st now =
  (* The drain budget is spent: abort stragglers with typed errors so
     every accepted request still gets exactly one response. *)
  List.iter
    (fun flight ->
      Tracectx.with_ctx flight.f_req.q_ctx @@ fun () ->
      Supervisor.async_abort flight.f_async;
      st.failed <- st.failed + 1;
      jnw Journal.Worker_killed
        [
          req_ctx flight.f_req.q_id;
          ("worker_pid", string_of_int (Supervisor.async_pid flight.f_async));
          ("reason", "drain-timeout");
        ];
      request_done flight ~status:"aborted" ~wall:(now -. flight.f_started) [];
      respond st flight.f_req.q_conn
        (error_response
           (E.make
              ~context:[ req_ctx flight.f_req.q_id ]
              E.Experiment E.Worker_timeout
              "server drain timeout expired before the request finished")))
    st.flights;
  st.flights <- [];
  List.iter
    (fun req ->
      respond st req.q_conn
        (error_response
           (E.make ~context:[ req_ctx req.q_id ] E.Cli E.Overloaded
              "server stopped before the queued request ran")))
    st.queue;
  st.queue <- []

let run cfg h =
  let* () = validate_config cfg in
  let* listen_fd = bind_socket cfg.socket_path in
  Lazy.force ignore_sigpipe;
  let sig_r, sig_w = Unix.pipe () in
  Unix.set_nonblock sig_r;
  (* Belt and braces: the self-pipe wakes a sleeping [select] instantly,
     and the flag — polled every loop iteration, which the bounded select
     timeout guarantees runs at least once a second — keeps a drain
     request alive even if the pipe write is ever lost. *)
  let drain_flag = ref false in
  let notify _ =
    drain_flag := true;
    try ignore (Unix.write sig_w (Bytes.make 1 '!') 0 1) with _ -> ()
  in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle notify) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle notify) in
  let now0 = Unix.gettimeofday () in
  let st =
    {
      cfg;
      h;
      listen_fd;
      sig_r;
      started = now0;
      accepting = true;
      conns = [];
      queue = [];
      flights = [];
      draining = `No;
      drain_deadline = infinity;
      next_conn = 1;
      next_req = 1;
      served = 0;
      failed = 0;
      shed = 0;
      rejected = 0;
      crashes = 0;
      deadline_kills = 0;
      crash_times = [];
      backoff_s = cfg.backoff_initial_s;
      backoff_until = 0.0;
      respawn_pending = false;
      verb_counts = [];
      last_metrics_write = 0.0;
    }
  in
  jn Journal.Server_started
    [
      ("socket", cfg.socket_path);
      ("pid", string_of_int (Unix.getpid ()));
      ("workers", string_of_int cfg.max_workers);
      ("queue_limit", string_of_int cfg.queue_limit);
      ("max_request_bytes", string_of_int cfg.max_request_bytes);
      ("default_deadline_s", Printf.sprintf "%.1f" cfg.default_deadline_s);
    ];
  let finished = ref None in
  let finish reason = finished := Some reason in
  let cleanup () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    (try Unix.close sig_r with Unix.Unix_error _ -> ());
    (try Unix.close sig_w with Unix.Unix_error _ -> ());
    stop_accepting st;
    List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) st.conns;
    st.conns <- []
  in
  Fun.protect ~finally:cleanup (fun () ->
      while !finished = None do
        let now = Unix.gettimeofday () in
        if !drain_flag then start_drain st `Signal now;
        if now -. st.last_metrics_write >= cfg.metrics_interval_s then
          write_metrics st now;
        (* Reap expired in-flight deadlines before dispatching more. *)
        List.iter
          (fun flight -> if now > flight.f_deadline then kill_deadline st flight now)
          (List.filter (fun f -> now > f.f_deadline) st.flights);
        if st.draining <> `No && now > st.drain_deadline then drain_expired st now;
        try_dispatch st now;
        if st.draining <> `No && st.queue = [] && st.flights = [] then
          finish (match st.draining with `Breaker -> Tripped | _ -> Drained)
        else begin
          let read_fds =
            (st.sig_r :: (if st.accepting then [ st.listen_fd ] else []))
            @ List.map (fun c -> c.c_fd) st.conns
            @ List.map (fun f -> Supervisor.async_fd f.f_async) st.flights
          in
          let next_deadline =
            List.fold_left
              (fun acc f -> Float.min acc f.f_deadline)
              (if st.draining <> `No then st.drain_deadline else infinity)
              st.flights
          in
          let next_deadline =
            if st.queue <> [] && st.backoff_until > now then
              Float.min next_deadline st.backoff_until
            else next_deadline
          in
          let timeout =
            if next_deadline = infinity then 1.0
            else Float.max 0.01 (Float.min 1.0 (next_deadline -. now))
          in
          match Unix.select read_fds [] [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
              let now = Unix.gettimeofday () in
              if List.mem st.sig_r ready then begin
                let b = Bytes.create 16 in
                (try ignore (Unix.read st.sig_r b 0 16)
                 with Unix.Unix_error _ -> ());
                start_drain st `Signal now
              end;
              (* Completions first: they free worker slots and must win
                 races against their own deadlines. Stepped under the
                 request's context so the parent-side Worker_exited /
                 Worker_killed events carry its trace fields. *)
              List.iter
                (fun flight ->
                  if List.mem (Supervisor.async_fd flight.f_async) ready then
                    match
                      Tracectx.with_ctx flight.f_req.q_ctx (fun () ->
                          Supervisor.async_step flight.f_async)
                    with
                    | `Pending -> ()
                    | `Done result -> on_worker_done st flight result now)
                st.flights;
              List.iter
                (fun conn ->
                  if conn.c_open && List.mem conn.c_fd ready then
                    on_conn_readable st conn now)
                st.conns;
              if st.accepting && List.mem st.listen_fd ready then accept_ready st
        end
      done;
      let reason = Option.get !finished in
      write_metrics st (Unix.gettimeofday ());
      jn Journal.Server_stopped
        (("reason", match reason with Tripped -> "breaker" | Drained -> "drained")
        :: final_stats st);
      Ok reason)
