let max_domains = 64

let recommended () = Domain.recommended_domain_count ()

let configured : int option ref = ref None

let set_default d =
  match d with
  | None -> configured := None
  | Some n ->
      if n < 1 || n > max_domains then
        invalid_arg "Dpool.set_default: domains out of range"
      else configured := Some n

let env_var = "CNTPOWER_DOMAINS"

let env_domains_checked () =
  match Sys.getenv_opt env_var with
  | None -> Ok None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= max_domains -> Ok (Some n)
      | Some n ->
          Error
            (Printf.sprintf "%s=%d is outside 1..%d" env_var n max_domains)
      | None -> Error (Printf.sprintf "%s=%S is not an integer" env_var s))

let env_warned = ref false

let env_domains () =
  match env_domains_checked () with
  | Ok v -> v
  | Error msg ->
      (* Library fallback path (CLI startup validates and errors instead):
         say so once rather than silently pretending the variable is
         unset. *)
      if not !env_warned then begin
        env_warned := true;
        Printf.eprintf "cntpower: warning: ignoring %s\n%!" msg
      end;
      None

let default_domains () =
  match !configured with
  | Some n -> n
  | None -> (
      match env_domains () with
      | Some n -> n
      | None ->
          let n = recommended () in
          if n < 1 then 1 else if n > max_domains then max_domains else n)

type stats = { domains_used : int; chunks : int; units : int array }

let run ?domains ?(min_units_per_domain = 256) ~units f =
  if units < 0 then invalid_arg "Dpool.run: negative units";
  let requested =
    match domains with
    | Some d -> if d < 1 then 1 else if d > max_domains then max_domains else d
    | None -> default_domains ()
  in
  let mupd = if min_units_per_domain < 1 then 1 else min_units_per_domain in
  let by_work = units / mupd in
  let d = min requested (max 1 by_work) in
  if d <= 1 || units = 0 then begin
    if units > 0 then f ~worker:0 ~lo:0 ~len:units;
    { domains_used = 1; chunks = (if units > 0 then 1 else 0); units = [| units |] }
  end
  else begin
    (* Chunks several times smaller than a per-domain share smooth out load
       imbalance between slices without contending on the cursor. *)
    let chunk = max mupd (units / (d * 8)) in
    let nchunks = (units + chunk - 1) / chunk in
    let cursor = Atomic.make 0 in
    let done_units = Array.make d 0 in
    let failure : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let worker_body worker =
      let rec loop () =
        let c = Atomic.fetch_and_add cursor 1 in
        if c < nchunks && Atomic.get failure = None then begin
          let lo = c * chunk in
          let len = min chunk (units - lo) in
          (try f ~worker ~lo ~len
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          done_units.(worker) <- done_units.(worker) + len;
          loop ()
        end
      in
      loop ()
    in
    (* The trace context is per-domain state: capture the spawner's and
       re-install it in each worker so journal events emitted from the
       parallel region stay correlated to the request that caused them. *)
    let ctx = Tracectx.current () in
    let spawned =
      Array.init (d - 1) (fun i ->
          Domain.spawn (fun () ->
              Tracectx.set ctx;
              worker_body (i + 1);
              (* Snapshot inside the worker: its DLS registry is only
                 reachable from here. *)
              Telemetry.snapshot ()))
    in
    worker_body 0;
    let profiles = Array.map Domain.join spawned in
    Array.iter (fun p -> Telemetry.merge p) profiles;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    { domains_used = d; chunks = nchunks; units = done_units }
  end
