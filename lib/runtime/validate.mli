(** Input-validation helpers shared by the hardened layers.

    All functions return [('a, Cnt_error.t) result] with code
    [Validation_error] (or [Non_finite] for NaN/infinity) and put the
    offending parameter name and value into the error context. *)

val finite : stage:Cnt_error.stage -> what:string -> float -> (float, Cnt_error.t) result
(** Reject NaN and infinities. *)

val positive : stage:Cnt_error.stage -> what:string -> float -> (float, Cnt_error.t) result
(** Reject NaN, infinities, zero and negatives. *)

val non_negative :
  stage:Cnt_error.stage -> what:string -> float -> (float, Cnt_error.t) result
(** Reject NaN, infinities and negatives; zero is allowed. *)

val require :
  stage:Cnt_error.stage ->
  ?code:Cnt_error.code ->
  ?context:(string * string) list ->
  bool ->
  string ->
  (unit, Cnt_error.t) result
(** [require ~stage cond msg] is [Ok ()] when [cond] holds, otherwise a
    [Validation_error] (or [?code]) carrying [msg]. *)

val all : (unit, Cnt_error.t) result list -> (unit, Cnt_error.t) result
(** First error wins; [Ok ()] if every check passed. *)

val ( let* ) :
  ('a, Cnt_error.t) result -> ('a -> ('b, Cnt_error.t) result) -> ('b, Cnt_error.t) result
(** Result bind, re-exported so hardened modules can open [Validate]. *)
