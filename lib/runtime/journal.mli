(** Append-only structured event journal for supervised runs.

    While {!Telemetry} answers "where did the time go", the journal
    answers "what happened": every run of [cntpower all] appends typed,
    leveled events — run/experiment lifecycle, worker spawns and deaths,
    retries, checkpoint writes, damped solver recoveries, golden drift —
    to [_runs/<name>/events.jsonl], one JSON object per line. Lines are
    written whole and flushed immediately, so a [kill -9] of the driver
    loses at most the event in flight and the file stays parseable.

    Like {!Telemetry}, collection is off by default and every entry point
    is a single branch on one flag when disabled; call sites that build
    field lists guard on {!enabled} so the disabled pipeline allocates
    nothing.

    Forked workers cannot share the parent's file offset, so a worker
    {!begin_capture}s on entry (dropping the inherited sink), buffers its
    events in memory, and the supervisor ships them back over the result
    pipe for the parent to {!append_events} — same transport as worker
    telemetry profiles. Events carry the emitting PID and a per-process
    monotonic sequence number, so the merged file keeps full provenance:
    file order is append order, and per-PID [seq] is strictly
    increasing. *)

type level = Debug | Info | Warn

type kind =
  | Run_started
  | Run_finished
  | Experiment_started
  | Experiment_done
  | Worker_spawned
  | Worker_exited
  | Worker_retry
  | Worker_timeout
  | Worker_killed
  | Checkpoint_written
  | Solver_damped_retry
  | Golden_drift
  | Cache_hit  (** a persistent on-disk cache served an artifact *)
  | Cache_miss  (** artifact absent or stale; recomputed *)
  | Cache_write  (** artifact (re)written to [_cache/] *)
  | Server_started  (** [cntpower serve] bound its socket and is accepting *)
  | Server_draining
      (** the daemon stopped accepting and is finishing in-flight work
          (SIGTERM/SIGINT, or the crash-churn circuit breaker) *)
  | Server_stopped  (** the daemon exited; fields carry the final stats *)
  | Request_admitted  (** a request passed admission and was dispatched/queued *)
  | Request_rejected  (** admission refused a request with a typed error *)
  | Request_done  (** a response was sent; fields carry status and wall time *)
  | Overload_shed  (** queue full (or draining): immediate overloaded reply *)
  | Worker_respawned
      (** dispatch resumed after a worker crash and its backoff window *)
  | Breaker_tripped
      (** worker crash churn exceeded the threshold; server flips to drain *)
  | Shard_enqueued  (** a campaign shard entered the work-queue log *)
  | Shard_leased
      (** the campaign coordinator took a time-stamped lease on a shard *)
  | Shard_done  (** a shard completed; fields carry wall time and attempt *)
  | Shard_failed
      (** an attempt failed (worker death, timeout, typed error); the
          shard stays eligible for retry until its attempt budget runs out *)
  | Shard_quarantined
      (** a shard exhausted its attempts and was set aside; the campaign
          continues degraded *)
  | Lease_reclaimed
      (** on resume, a lease whose owner died (or expired) was reclaimed *)
  | Custom of string
      (** forward compatibility: unknown names parse as [Custom] rather
          than failing the whole journal *)

type event = {
  ev_seq : int;  (** monotonic per emitting process, from 1 *)
  ev_time : float;  (** unix epoch seconds *)
  ev_pid : int;  (** emitting process *)
  ev_level : level;
  ev_kind : kind;
  ev_fields : (string * string) list;
}

val level_name : level -> string
val kind_name : kind -> string
val kind_of_name : string -> kind

val enabled : unit -> bool
val set_enabled : bool -> unit

val set_verbosity : level option -> unit
(** Echo threshold for the live stderr rendering of events: [None]
    silences all chatter ([--log-level quiet]), [Some Info] echoes info
    and warnings (default), [Some Debug] echoes everything. The on-disk
    journal always records every event regardless of verbosity. *)

val verbosity : unit -> level option

val open_sink :
  ?max_bytes:int -> ?keep:int -> path:string -> unit -> (unit, Cnt_error.t) result
(** Open (append, create, parent directories as needed) the JSONL sink.
    Any previously open sink is closed first. When [max_bytes] is given,
    the sink rotates once it crosses that size: the live file becomes
    [path.1], existing [path.i] shift to [path.i+1], and segments past
    [keep] (default 4) are dropped — bounding a long-lived daemon's
    journal to roughly [(keep + 1) * max_bytes]. {!load} reads rotated
    segments back in order. *)

val close_sink : unit -> unit
(** Flush and close the sink if open. Safe to call when none is. *)

val emit : ?level:level -> ?msg:string -> kind -> (string * string) list -> unit
(** Record one event: stamp it with the next sequence number, the clock,
    the PID, and the active {!Tracectx} (as [trace]/[span]/[parent]
    fields, unless the call site already supplied a [trace] field), write
    it to the sink (or the capture buffer inside a worker), and echo one
    line to stderr when [level] passes the verbosity threshold ([msg]
    overrides the default rendering). No-op when disabled — guard
    field-list construction on {!enabled} in hot paths. *)

val begin_capture : unit -> unit
(** Worker-side, immediately after [fork]: drop the inherited sink and
    buffer subsequent events in memory with a fresh sequence counter.
    No-op when disabled. *)

val end_capture : unit -> event list
(** Return the buffered events in emission order and leave capture mode.
    [[]] when not capturing. *)

val append_events : event list -> unit
(** Parent-side: write already-stamped events (a worker's capture) to the
    sink verbatim — no re-stamping, no echo (the worker already echoed to
    the shared stderr as it ran). *)

val event_to_json : event -> Checkpoint.json
val event_of_json : Checkpoint.json -> (event, Cnt_error.t) result

val load : path:string -> (event list * int, Cnt_error.t) result
(** Parse a journal: rotated segments ([path.N] oldest first, then
    [path.1]) followed by the live file, as one logical event stream in
    append order, plus the number of malformed lines skipped. A torn
    final line (the crash case) or an interleaved corrupt line degrades
    to a skip count, never a failure; only the live file being unreadable
    is an error. *)

val find : event -> string -> string option
(** Field lookup. *)

val pp_event : Format.formatter -> event -> unit
(** One-line human rendering, e.g.
    ["worker_spawned worker=table1 worker_pid=4243"]. *)
