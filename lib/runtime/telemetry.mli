(** Per-run performance telemetry: spans, counters and distributions.

    The pipeline (pattern classification, transient characterization,
    technology mapping, 640 K-pattern power estimation) instruments its
    hot layers through this module. Everything hangs off one process-wide
    registry:

    - {b spans} ({!with_span}) measure hierarchical wall-clock regions,
      aggregated by path — calling [with_span "techmap.map"] 18 times
      under the same parent yields one tree node with [calls = 18];
    - {b counters} ({!count}) are monotonic integer totals (DC solves,
      cache hits, words simulated);
    - {b distributions} ({!observe}) keep min/mean/max plus a bounded
      deterministic sample for p50/p95 (simulator patterns/s, settle
      residuals).

    Collection is off by default. When disabled every entry point is a
    cheap branch on one flag — no allocation, no clock read — so the
    instrumentation can stay in release paths ([cntpower all] without
    [--profile] pays nothing; verified by the [telemetry-span-disabled]
    microbenchmark).

    The registry is plain data, so a forked worker
    ({!Runtime.Supervisor.run}) can {!reset} on entry, {!snapshot} on
    exit, marshal the profile back over the result pipe and have the
    parent {!merge} it under a span named for the experiment. Profiles
    serialize to the same dependency-free JSON as {!Checkpoint}
    ([_runs/<name>/profile.json]).

    {b Domain safety.} Registries are per-domain ([Domain.DLS]): the
    calling (main) domain owns the process-wide registry, and every
    domain spawned by {!Runtime.Dpool} records into a private fresh one,
    so parallel simulation kernels never race on the tables or lose
    counter increments. The pool snapshots each worker registry inside
    the worker and {!merge}s it into the spawner's after [join] — the
    same path used for forked supervisor workers. A domain spawned
    outside {!Runtime.Dpool} gets its own registry too, but nothing
    merges it back; route parallel work through the pool if its
    telemetry matters. The disabled mode is still one branch on a flag,
    with no allocation and no DLS access. *)

type span = {
  span_name : string;
  calls : int;  (** completed invocations aggregated into this node *)
  total_s : float;  (** wall-clock seconds across all calls *)
  children : span list;  (** sorted by [total_s], largest first *)
}

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_samples : float array;
      (** bounded systematic sample of the observations, used for
          quantile estimates; at most {!max_samples} values *)
}

type profile = {
  p_spans : span list;
  p_counters : (string * int) list;  (** sorted by name *)
  p_dists : (string * dist) list;  (** sorted by name *)
}

val max_samples : int
(** Upper bound on [d_samples] per distribution (512). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop all recorded spans, counters and distributions (the enabled flag
    is left as is). Must not be called while spans are open. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); exposed so instrumented
    libraries can time throughput without their own [unix] dependency. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], charging its wall time to the span node
    [name] under the innermost open span. When disabled this is exactly
    [f ()]. Exception-safe: the span is closed (and charged) even if [f]
    raises. Direct recursion double-charges the recursive frames; name
    recursion levels distinctly if that matters. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the monotonic counter [name]. No-op when
    disabled. *)

val observe : string -> float -> unit
(** [observe name v] records [v] into the distribution [name]. No-op when
    disabled. *)

val snapshot : unit -> profile
(** Immutable copy of the registry (open spans are not included). The
    result is free of closures and safe to [Marshal]. *)

val merge : ?prefix:string list -> profile -> unit
(** Fold a profile (typically a forked worker's snapshot) into the live
    registry: span trees are grafted under the path [prefix] (created as
    needed, default root) adding calls and totals node-wise; counters add;
    distributions combine counts/sums/extrema and interleave samples up to
    the bound. Works even while collection is disabled — merging is an
    explicit act. *)

val mean : dist -> float

val percentile : dist -> float -> float
(** [percentile d q] with [q] in [0, 1], estimated from the retained
    sample (nearest-rank). 0 on an empty distribution. *)

val find_counter : profile -> string -> int option
val find_dist : profile -> string -> dist option

val to_json : profile -> Checkpoint.json
val of_json : Checkpoint.json -> (profile, Cnt_error.t) result
(** Round-trips spans, counters and distribution state. The emitted JSON
    additionally carries derived [mean]/[p50]/[p95] fields per
    distribution for downstream consumers; they are recomputed, not
    parsed, on load. *)

val save : path:string -> profile -> (unit, Cnt_error.t) result
(** Atomic write (same convention as {!Checkpoint.save}). *)

val load : path:string -> (profile, Cnt_error.t) result

val pp : Format.formatter -> profile -> unit
(** Human rendering: the span tree with calls and totals, then counters
    and distribution summaries ([cntpower stats]). *)
