(** Structured errors for the cntpower pipeline.

    Every recoverable failure in the pipeline — parse errors, solver
    non-convergence, netlist malformations, mapping dead-ends — is described
    by a {!t}: the pipeline {!stage} it arose in, a machine-readable
    {!code}, a human-readable message and a list of context key/value pairs
    (line numbers, node names, residuals, ...).

    Layers expose [_checked] entry points returning [('a, t) result]; the
    legacy raising entry points raise {!Error} so that the CLI and the
    experiment harness can catch one exception type at the boundary and
    translate it into an exit code. *)

type stage =
  | Logic  (** expression / truth-table / SAT layer *)
  | Netlist  (** gate-level netlists, BLIF I/O, well-formedness checks *)
  | Aig  (** AIG construction and optimization *)
  | Techmap  (** matching, covering, mapped-netlist verification *)
  | Spice  (** device models, DC solve, transient analysis *)
  | Power  (** power characterization and estimation *)
  | Experiment  (** experiment drivers (E1-E15, ablations) *)
  | Library  (** declarative library files (genlib-plus) and the registry *)
  | Cli  (** command-line driver *)

type code =
  | Parse_error  (** malformed input text (BLIF, AIGER, genlib) *)
  | Validation_error  (** invalid parameter or circuit description *)
  | Non_finite  (** NaN or infinity where a finite number is required *)
  | Convergence_failure  (** iterative solver exhausted its budget *)
  | Singular_matrix  (** linear solve hit a (near-)singular Jacobian *)
  | Combinational_loop  (** cyclic combinational dependency *)
  | Undriven_net  (** a net is referenced but never driven *)
  | Multiply_driven_net  (** a net has more than one driver *)
  | Unmapped_node  (** technology mapping found no cover for a node *)
  | Missing_signal  (** a named signal was expected but absent *)
  | Mismatch  (** equivalence check or cross-validation failed *)
  | Unsupported  (** valid input outside the supported subset *)
  | Io_error  (** file system failure *)
  | Worker_timeout  (** a supervised worker exceeded its wall-clock watchdog *)
  | Worker_killed  (** a supervised worker died on a signal or nonzero exit *)
  | Regression  (** cross-run comparison found drift beyond tolerance *)
  | Overloaded
      (** the estimation daemon shed the request under load; retry later *)
  | Shard_quarantined
      (** a campaign shard exhausted its attempts and was set aside; the
          rest of the campaign completed degraded *)
  | Internal  (** wrapped unexpected exception; a bug if user-visible *)

type t = {
  stage : stage;
  code : code;
  message : string;
  context : (string * string) list;  (** e.g. [("line", "12"); ("net", "y")] *)
}

exception Error of t
(** The single exception used by raising entry points of hardened layers. *)

val make : ?context:(string * string) list -> stage -> code -> string -> t

val makef :
  ?context:(string * string) list ->
  stage ->
  code ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [makef stage code fmt ...] builds an error with a formatted message. *)

val error :
  ?context:(string * string) list ->
  stage ->
  code ->
  ('a, Format.formatter, unit, ('b, t) result) format4 ->
  'a
(** [error stage code fmt ...] is [Result.Error (makef ...)]. *)

val raise_error : t -> 'a
(** Raise {!Error}. *)

val failf :
  ?context:(string * string) list ->
  stage ->
  code ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** [failf stage code fmt ...] raises {!Error} with a formatted message. *)

val with_context : t -> (string * string) list -> t
(** Append context pairs (outermost last). *)

val stage_name : stage -> string
val code_name : code -> string

val stage_of_name : string -> stage option
(** Inverse of {!stage_name}; used to revive typed errors from a wire
    payload ([cntpower serve] responses). *)

val code_of_name : string -> code option
(** Inverse of {!code_name}. *)

val pp : Format.formatter -> t -> unit
(** ["spice/convergence-failure: <message> (steps=200000, dv_max=0.002)"] *)

val to_string : t -> string

val of_exn : stage:stage -> exn -> t
(** Wrap an arbitrary exception: {!Error} payloads pass through untouched,
    [Failure]/[Invalid_argument]/[Sys_error] become typed errors in [stage],
    anything else becomes [Internal] (with the exception text preserved). *)

val protect : stage:stage -> (unit -> 'a) -> ('a, t) result
(** Run a thunk, converting any escaping exception via {!of_exn}.
    [Stack_overflow] and [Out_of_memory] are also captured; asynchronous
    exceptions are not re-raised. *)

val get_exn : ('a, t) result -> 'a
(** [Ok x -> x], [Result.Error e -> raise (Error e)]. *)

val exit_code : t -> int
(** Distinct process exit code per error class, in 12..30 (documented in the
    README). Reserved: 0 success, 10 keep-going run with failures,
    11 strict run aborted. Supervised-worker failures use 25
    ([Worker_timeout]) and 26 ([Worker_killed]); performance-regression
    drift detected by [cntpower compare] uses 28 ([Regression]); a request
    shed by an overloaded [cntpower serve] daemon uses 29 ([Overloaded]);
    a campaign that finished with quarantined shards uses 30
    ([Shard_quarantined]). *)
