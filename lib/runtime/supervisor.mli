(** Process-isolated execution of experiment workloads.

    Each job runs in a forked worker process; the supervisor reads the
    worker's marshalled result from a pipe under a wall-clock watchdog.
    A worker that outlives its watchdog is SIGKILLed and reported as a
    {!Cnt_error.Worker_timeout}; a worker that dies on a signal (OOM
    killer, segfault, external [kill]) or exits nonzero is reported as a
    {!Cnt_error.Worker_killed}. Either class of infrastructure failure is
    retried under a bounded policy, with the retry flagged as *degraded*
    so the job can shed load (the harness halves the pattern count).

    When the {!Journal} is enabled the supervisor narrates itself:
    [worker_spawned] / [worker_exited] / [worker_retry] /
    [worker_timeout] / [worker_killed] events from the parent, and the
    worker's own captured events (it {!Journal.begin_capture}s right
    after the fork) ride the result pipe back next to the result and are
    appended to the on-disk journal with their worker-PID provenance.

    On platforms without [fork] (Windows) jobs run in-process: results
    and typed errors are identical but the watchdog cannot interrupt a
    wedged job and worker death takes the supervisor with it. *)

type policy = {
  timeout_s : float;  (** wall-clock budget per attempt; [<= 0.] disables *)
  retries : int;  (** extra attempts after an infrastructure failure *)
  degrade : bool;  (** run retries with [~degraded:true] *)
}

val default_policy : policy
(** [{ timeout_s = 900.; retries = 1; degrade = true }] *)

type 'a outcome = {
  value : ('a, Cnt_error.t) result;
  attempts : int;  (** total attempts made, >= 1 *)
  degraded : bool;  (** the returned value came from a degraded retry *)
  wall_time : float;  (** seconds across all attempts *)
}

val can_fork : bool
(** [true] on Unix: workers are genuinely process-isolated. *)

val run :
  ?policy:policy -> name:string -> (degraded:bool -> 'a) -> 'a outcome
(** [run ~name f] executes [f ~degraded:false] in a forked worker and
    returns its result. The worker's value (or typed error) is marshalled
    back to the supervisor, so ['a] must not contain closures. Any
    exception escaping [f] becomes a typed error via
    {!Cnt_error.protect}; it is NOT retried — only [Worker_timeout] and
    [Worker_killed] are, since a deterministic in-job failure would just
    fail again. *)

val retryable : Cnt_error.t -> bool
(** [true] exactly for the [Worker_timeout] / [Worker_killed] codes. *)

(** {2 Non-blocking workers}

    {!run} is synchronous: one worker, watched to completion. The
    estimation daemon ({!Server}) instead multiplexes a bounded pool of
    concurrent workers from a single [select] loop, so it needs the fork /
    poll / reap steps exposed separately. The child-side contract is the
    same as {!run}'s (typed errors, captured journal events riding the
    result pipe), plus an optional per-worker telemetry profile: with
    [?telemetry_prefix] set and {!Telemetry.enabled}, the worker resets
    its registry on entry, snapshots on exit, and the parent merges the
    snapshot under that span prefix when the result is reaped. *)

type 'a async
(** A forked worker whose result pipe is polled rather than awaited. *)

val spawn_async :
  ?telemetry_prefix:string list ->
  ?close_in_child:Unix.file_descr list ->
  name:string ->
  (unit -> 'a) ->
  'a async
(** Fork a worker running [f ()]. [close_in_child] lists descriptors the
    child must not keep open (the server's listening socket and client
    connections — a long-running worker holding them would defeat EOF
    detection and drain). Emits [worker_spawned] when the journal is on. *)

val async_pid : 'a async -> int

val async_fd : 'a async -> Unix.file_descr
(** The parent's (non-blocking) read end of the result pipe; put it in
    your [select] read set and call {!async_step} when it fires. *)

val async_step :
  'a async -> [ `Pending | `Done of ('a, Cnt_error.t) result ]
(** Drain whatever the pipe currently holds. [`Done] exactly once, at
    EOF: the worker is reaped and classified like {!run} does — clean
    exit with a payload yields its result (journal events appended,
    telemetry merged), anything else a typed [Worker_killed]. Calling
    again after [`Done] returns a typed [Internal] error. *)

val async_abort : 'a async -> unit
(** SIGKILL the worker, reap it, close the pipe. No result, no journal
    event — the caller narrates why (deadline, drain timeout). Safe to
    call after [`Done] (no-op). *)
