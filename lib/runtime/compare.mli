(** Cross-run regression comparison of telemetry profiles and manifests.

    [cntpower compare] diffs two runs the way [cntpower golden --check]
    gates metrics: structurally, with configurable relative tolerances,
    and with a distinct typed exit code ({!Cnt_error.Regression}, 28) so
    CI can gate on performance drift.

    Span trees are matched by path ([table1/techmap.map/...]); wall-clock
    regressions are one-sided (only slower-than-tolerance fails — faster
    is reported as improved), and spans below [min_wall_s] in both runs
    are ignored as timing jitter. Counters and manifest scalars are
    deterministic for a fixed seed, so their drift is two-sided. *)

type tolerances = {
  wall_rtol : float;  (** allowed relative slowdown per span (default 0.5) *)
  counter_rtol : float;  (** allowed relative counter drift (default 0.1) *)
  scalar_rtol : float;  (** allowed relative scalar drift (default 0.05) *)
  dist_rtol : float;
      (** allowed relative drop of a distribution mean (default 0.5);
          distributions are throughput-like, so only lower-than-tolerance
          regresses *)
  min_wall_s : float;
      (** spans faster than this in both runs never regress (default 0.05) *)
}

val default : tolerances

type verdict =
  | Within  (** present in both, inside tolerance *)
  | Regressed  (** drift beyond tolerance — fails the gate *)
  | Improved  (** wall clock faster than tolerance (informational) *)
  | Missing  (** in the baseline only (informational) *)
  | Added  (** in the current run only (informational) *)

type kind = Span | Counter | Scalar | Dist

type item = {
  i_kind : kind;
  i_name : string;  (** span path joined with "/", counter or exp/metric *)
  i_base : float option;
  i_cur : float option;
  i_verdict : verdict;
}

type report = { tol : tolerances; items : item list }

val verdict_name : verdict -> string
val kind_name : kind -> string

val compare_profiles :
  ?tol:tolerances -> base:Telemetry.profile -> Telemetry.profile -> item list
(** [compare_profiles ~base cur]: span wall-clock items (seconds), then
    counter items, then distribution means ([sim.patterns_per_s],
    [sim.parallel_speedup], ...), each name sorted. Distribution drift is
    one-sided: only a mean dropping more than [dist_rtol] regresses. *)

val compare_manifests :
  ?tol:tolerances -> base:Checkpoint.manifest -> Checkpoint.manifest -> item list
(** Scalar items of entries present in either manifest; scalars of failed
    entries count as absent. *)

val regressions : report -> item list

val delta_rel : item -> float option
(** [(cur - base) / |base|] when both sides are present and base is
    nonzero. *)

val pp : Format.formatter -> report -> unit
(** Human table: spans with base/current/delta, then counters, then
    scalars, then a one-line verdict count. *)

val to_json : report -> Checkpoint.json

val regression_error : report -> Cnt_error.t option
(** [Some] typed {!Cnt_error.Regression} (exit code 28) when any item
    regressed, with the offender count in context. *)
