(** Process-inherited trace correlation context.

    A trace context is a [trace id / span id / parent span id] triple
    minted at every entry point — one per [cntpower serve] request, per
    campaign shard, per [cntpower all] experiment — and carried through
    everything that work causes: it rides a [fork] into
    {!Supervisor.spawn_async} workers for free (process memory), is
    re-installed in {!Dpool} domains by the pool, and is stamped onto
    every {!Journal} event so post-hoc tools ([cntpower trace
    --request <id>]) can slice one request's events and spans out of a
    shared journal end-to-end.

    Ids are counter-based — no [Random], no clock: [t<pid>-<n>] /
    [s<pid>-<n>] from a per-process atomic counter. A forked worker
    inherits the counter value, but its PID differs, so ids stay unique
    across the whole worker tree without coordination.

    The current context is per-domain state ({!Domain.DLS}), mirroring
    {!Telemetry}'s registries: domains never share a mutable context, and
    the pool captures the spawning domain's context and {!set}s it inside
    each worker domain. *)

type t = {
  trace_id : string;  (** stable across the whole request/shard tree *)
  span_id : string;  (** this unit of work *)
  parent_id : string option;  (** the span that caused this one *)
}

val current : unit -> t option
(** The calling domain's active context, if any. *)

val set : t option -> unit
(** Install (or clear) the calling domain's context. Used by forked
    workers ({!child} of the inherited context) and by {!Dpool} worker
    domains (the spawning domain's context verbatim). *)

val mint_root : unit -> t
(** A fresh trace: new trace id, new root span, no parent. Call once at
    each entry point. *)

val child : t -> t
(** A child span in the same trace: fresh span id, parent = the given
    context's span. Forked workers derive their own span this way so the
    journal distinguishes the request's events from its workers'. *)

val with_ctx : t -> (unit -> 'a) -> 'a
(** [with_ctx ctx f] runs [f] with [ctx] installed and restores the
    previous context afterwards, even on exceptions. *)

val span_label : t -> string
(** The telemetry span-path component for this trace, ["trace:<id>"] —
    used as a prefix segment when merging worker profiles so per-request
    subtrees are addressable in [profile.json]. *)

val trace_of_label : string -> string option
(** Inverse of {!span_label}: [Some id] when the string is a
    ["trace:<id>"] label. *)

val to_fields : t -> (string * string) list
(** Journal-field rendering: [("trace", ...); ("span", ...)] plus
    [("parent", ...)] when there is one. *)

val of_fields : (string * string) list -> t option
(** Recover a context from journal fields written by {!to_fields}. *)
