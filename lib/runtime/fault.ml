type verdict =
  | Graceful of Cnt_error.t
  | Survived
  | Escaped of string

type outcome = { name : string; description : string; verdict : verdict }

let inject ~name ~description f =
  let verdict =
    match f () with
    | Ok _ -> Survived
    | Result.Error e -> Graceful e
    | exception exn -> Escaped (Printexc.to_string exn)
  in
  { name; description; verdict }

let graceful o = match o.verdict with Graceful _ -> true | Survived | Escaped _ -> false
let contained o = match o.verdict with Escaped _ -> false | Graceful _ | Survived -> true

let pp_outcome ppf o =
  match o.verdict with
  | Graceful e -> Format.fprintf ppf "GRACEFUL %-24s %a" o.name Cnt_error.pp e
  | Survived -> Format.fprintf ppf "SURVIVED %-24s (%s)" o.name o.description
  | Escaped exn -> Format.fprintf ppf "ESCAPED  %-24s %s" o.name exn

let summarize ppf outcomes =
  List.iter (fun o -> Format.fprintf ppf "%a@." pp_outcome o) outcomes;
  List.length (List.filter (fun o -> not (contained o)) outcomes)

let corrupt_float how x =
  match how with
  | `Nan -> Float.nan
  | `Pos_inf -> Float.infinity
  | `Neg_inf -> Float.neg_infinity
  | `Zero -> 0.0
  | `Negate -> -.x

let truncate_text ~fraction s =
  let n = String.length s in
  let keep = max 0 (min n (int_of_float (fraction *. float_of_int n))) in
  String.sub s 0 keep
