module E = Cnt_error
module J = Checkpoint

(* ------------------------------------------------------------------ *)
(* Snapshot types (plain data: marshal- and JSON-friendly)             *)

type span = {
  span_name : string;
  calls : int;
  total_s : float;
  children : span list;
}

type dist = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_samples : float array;
}

type profile = {
  p_spans : span list;
  p_counters : (string * int) list;
  p_dists : (string * dist) list;
}

let max_samples = 512

(* ------------------------------------------------------------------ *)
(* Live registry                                                       *)

type node = {
  n_name : string;
  mutable n_calls : int;
  mutable n_total : float;
  n_children : (string, node) Hashtbl.t;
}

(* Distribution accumulator with a deterministic systematic sample: keep
   every [stride]-th observation; when the buffer fills, drop every other
   retained sample and double the stride. Uniform-ish coverage of the
   stream without randomness. *)
type dstate = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  s_samples : float array;
  mutable s_stored : int;
  mutable s_stride : int;
  mutable s_since : int;  (* observations since the last retained one *)
}

let fresh_node name =
  { n_name = name; n_calls = 0; n_total = 0.0; n_children = Hashtbl.create 8 }

(* The whole mutable state lives in a per-domain registry: the main domain
   owns the process-wide registry (exactly the old global behavior), and
   every domain spawned by {!Dpool} gets a fresh one on first use, so
   parallel simulation kernels never race on the hashtables or lose
   counter increments. A worker domain snapshots its registry before
   joining and the pool merges it into the spawner's — the same
   snapshot/merge path already used for forked supervisor workers. *)
type registry = {
  mutable g_root : node;
  mutable g_stack : node list;
  g_counters : (string, int ref) Hashtbl.t;
  g_dists : (string, dstate) Hashtbl.t;
}

let fresh_registry () =
  {
    g_root = fresh_node "";
    g_stack = [];
    g_counters = Hashtbl.create 32;
    g_dists = Hashtbl.create 16;
  }

let registry_key = Domain.DLS.new_key fresh_registry
let registry () = Domain.DLS.get registry_key

(* The enabled flag is shared across domains; it is only flipped outside
   parallel sections (CLI setup, bench harness), and Domain.spawn/join
   establish the needed happens-before edges for workers to observe it. *)
let on = ref false

let enabled () = !on
let set_enabled b = on := b

let reset () =
  let r = registry () in
  r.g_root <- fresh_node "";
  r.g_stack <- [];
  Hashtbl.reset r.g_counters;
  Hashtbl.reset r.g_dists

let now () = Unix.gettimeofday ()

let child_of parent name =
  match Hashtbl.find_opt parent.n_children name with
  | Some n -> n
  | None ->
      let n = fresh_node name in
      Hashtbl.replace parent.n_children name n;
      n

let with_span name f =
  if not !on then f ()
  else begin
    let r = registry () in
    let parent = match r.g_stack with n :: _ -> n | [] -> r.g_root in
    let node = child_of parent name in
    let t0 = Unix.gettimeofday () in
    r.g_stack <- node :: r.g_stack;
    Fun.protect
      ~finally:(fun () ->
        node.n_calls <- node.n_calls + 1;
        node.n_total <- node.n_total +. (Unix.gettimeofday () -. t0);
        match r.g_stack with _ :: rest -> r.g_stack <- rest | [] -> ())
      f
  end

let count name n =
  if !on then
    let counters = (registry ()).g_counters in
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace counters name (ref n)

let fresh_dstate () =
  {
    s_count = 0;
    s_sum = 0.0;
    s_min = infinity;
    s_max = neg_infinity;
    s_samples = Array.make max_samples 0.0;
    s_stored = 0;
    s_stride = 1;
    s_since = 0;
  }

let dstate_add d v =
  d.s_count <- d.s_count + 1;
  d.s_sum <- d.s_sum +. v;
  if v < d.s_min then d.s_min <- v;
  if v > d.s_max then d.s_max <- v;
  d.s_since <- d.s_since + 1;
  if d.s_since >= d.s_stride then begin
    d.s_since <- 0;
    if d.s_stored = max_samples then begin
      let kept = ref 0 in
      for i = 0 to max_samples - 1 do
        if i land 1 = 0 then begin
          d.s_samples.(!kept) <- d.s_samples.(i);
          incr kept
        end
      done;
      d.s_stored <- !kept;
      d.s_stride <- d.s_stride * 2
    end;
    d.s_samples.(d.s_stored) <- v;
    d.s_stored <- d.s_stored + 1
  end

let find_dstate name =
  let dists = (registry ()).g_dists in
  match Hashtbl.find_opt dists name with
  | Some d -> d
  | None ->
      let d = fresh_dstate () in
      Hashtbl.replace dists name d;
      d

let observe name v = if !on then dstate_add (find_dstate name) v

(* ------------------------------------------------------------------ *)
(* Snapshot & merge                                                    *)

let rec span_of_node n =
  let children =
    Hashtbl.fold (fun _ c acc -> span_of_node c :: acc) n.n_children []
    |> List.sort (fun a b -> compare b.total_s a.total_s)
  in
  { span_name = n.n_name; calls = n.n_calls; total_s = n.n_total; children }

let dist_of_dstate d =
  {
    d_count = d.s_count;
    d_sum = d.s_sum;
    d_min = d.s_min;
    d_max = d.s_max;
    d_samples = Array.sub d.s_samples 0 d.s_stored;
  }

let sorted_assoc tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  let r = registry () in
  {
    p_spans = (span_of_node r.g_root).children;
    p_counters = sorted_assoc r.g_counters (fun c -> !c);
    p_dists = sorted_assoc r.g_dists dist_of_dstate;
  }

let rec merge_span parent s =
  let node = child_of parent s.span_name in
  node.n_calls <- node.n_calls + s.calls;
  node.n_total <- node.n_total +. s.total_s;
  List.iter (merge_span node) s.children

let merge_dist name (d : dist) =
  let s = find_dstate name in
  s.s_count <- s.s_count + d.d_count;
  s.s_sum <- s.s_sum +. d.d_sum;
  if d.d_min < s.s_min then s.s_min <- d.d_min;
  if d.d_max > s.s_max then s.s_max <- d.d_max;
  (* Interleave the incoming samples with the retained ones, bounded. *)
  Array.iter
    (fun v ->
      if s.s_stored < max_samples then begin
        s.s_samples.(s.s_stored) <- v;
        s.s_stored <- s.s_stored + 1
      end)
    d.d_samples

let merge ?(prefix = []) p =
  let reg = registry () in
  let anchor =
    List.fold_left (fun parent name -> child_of parent name) reg.g_root prefix
  in
  List.iter (merge_span anchor) p.p_spans;
  List.iter
    (fun (name, n) ->
      match Hashtbl.find_opt reg.g_counters name with
      | Some r -> r := !r + n
      | None -> Hashtbl.replace reg.g_counters name (ref n))
    p.p_counters;
  List.iter (fun (name, d) -> merge_dist name d) p.p_dists

(* ------------------------------------------------------------------ *)
(* Derived statistics                                                  *)

let mean d = if d.d_count = 0 then 0.0 else d.d_sum /. float_of_int d.d_count

let percentile d q =
  let n = Array.length d.d_samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy d.d_samples in
    Array.sort compare sorted;
    let rank = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
    sorted.(max 0 (min (n - 1) rank))
  end

let find_counter p name = List.assoc_opt name p.p_counters
let find_dist p name = List.assoc_opt name p.p_dists

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let rec span_to_json s =
  J.Obj
    [
      ("name", J.Str s.span_name);
      ("calls", J.Num (float_of_int s.calls));
      ("total_s", J.Num s.total_s);
      ("children", J.Arr (List.map span_to_json s.children));
    ]

let dist_to_json (name, d) =
  J.Obj
    [
      ("name", J.Str name);
      ("count", J.Num (float_of_int d.d_count));
      ("sum", J.Num d.d_sum);
      ("min", J.Num (if d.d_count = 0 then 0.0 else d.d_min));
      ("max", J.Num (if d.d_count = 0 then 0.0 else d.d_max));
      (* Derived conveniences for downstream readers; recomputed on load. *)
      ("mean", J.Num (mean d));
      ("p50", J.Num (percentile d 0.5));
      ("p95", J.Num (percentile d 0.95));
      ("samples", J.Arr (Array.to_list (Array.map (fun v -> J.Num v) d.d_samples)));
    ]

let to_json p =
  J.Obj
    [
      ("version", J.Num 1.0);
      ("spans", J.Arr (List.map span_to_json p.p_spans));
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) p.p_counters)
      );
      ("dists", J.Arr (List.map dist_to_json p.p_dists));
    ]

let ( let* ) = Result.bind

let field j name = J.field j name
let as_num = J.as_num
let as_str = J.as_str
let as_arr = J.as_arr

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let rec span_of_json j =
  let* span_name = Result.bind (field j "name") (as_str "name") in
  let* calls = Result.bind (field j "calls") (as_num "calls") in
  let* total_s = Result.bind (field j "total_s") (as_num "total_s") in
  let* children_json = Result.bind (field j "children") (as_arr "children") in
  let* children = map_result span_of_json children_json in
  Ok { span_name; calls = int_of_float calls; total_s; children }

let dist_of_json j =
  let* name = Result.bind (field j "name") (as_str "name") in
  let* c = Result.bind (field j "count") (as_num "count") in
  let* d_sum = Result.bind (field j "sum") (as_num "sum") in
  let* d_min = Result.bind (field j "min") (as_num "min") in
  let* d_max = Result.bind (field j "max") (as_num "max") in
  let* samples_json = Result.bind (field j "samples") (as_arr "samples") in
  let* samples =
    map_result
      (function
        | J.Num v -> Ok v
        | _ -> E.error E.Cli E.Parse_error "dist samples must be numbers")
      samples_json
  in
  let d_count = int_of_float c in
  Ok
    ( name,
      {
        d_count;
        d_sum;
        d_min = (if d_count = 0 then infinity else d_min);
        d_max = (if d_count = 0 then neg_infinity else d_max);
        d_samples = Array.of_list samples;
      } )

let of_json j =
  let* spans_json = Result.bind (field j "spans") (as_arr "spans") in
  let* p_spans = map_result span_of_json spans_json in
  let* p_counters =
    match field j "counters" with
    | Ok (J.Obj fields) ->
        map_result
          (fun (k, v) ->
            let* f = as_num k v in
            Ok (k, int_of_float f))
          fields
    | Ok _ -> E.error E.Cli E.Parse_error "field \"counters\" must be an object"
    | Error e -> Error e
  in
  let* dists_json = Result.bind (field j "dists") (as_arr "dists") in
  let* p_dists = map_result dist_of_json dists_json in
  Ok { p_spans; p_counters; p_dists }

let save ~path p = J.write_atomic ~path (J.json_to_string (to_json p))

let load ~path =
  let* text = J.read_file path in
  match
    let* j = J.json_of_string text in
    of_json j
  with
  | Ok _ as ok -> ok
  | Error e -> Error (E.with_context e [ ("path", path) ])

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_duration ppf s =
  if s >= 1.0 then Format.fprintf ppf "%.2fs" s
  else if s >= 1e-3 then Format.fprintf ppf "%.2fms" (s *. 1e3)
  else Format.fprintf ppf "%.0fus" (s *. 1e6)

let pp ppf p =
  Format.fprintf ppf "span tree (calls, total wall):@.";
  if p.p_spans = [] then Format.fprintf ppf "  (no spans recorded)@.";
  let rec pp_span depth s =
    Format.fprintf ppf "  %s%-*s %6d  %a@."
      (String.make (2 * depth) ' ')
      (max 1 (36 - (2 * depth)))
      s.span_name s.calls pp_duration s.total_s;
    List.iter (pp_span (depth + 1)) s.children
  in
  List.iter (pp_span 0) p.p_spans;
  if p.p_counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    let top =
      List.sort (fun (_, a) (_, b) -> compare b a) p.p_counters
    in
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-36s %d@." name v)
      top
  end;
  if p.p_dists <> [] then begin
    Format.fprintf ppf "distributions:@.";
    List.iter
      (fun (name, d) ->
        Format.fprintf ppf
          "  %-36s n=%d mean=%.4g p50=%.4g p95=%.4g min=%.4g max=%.4g@." name
          d.d_count (mean d) (percentile d 0.5) (percentile d 0.95)
          (if d.d_count = 0 then 0.0 else d.d_min)
          (if d.d_count = 0 then 0.0 else d.d_max))
      p.p_dists
  end
