module E = Cnt_error

type policy = { timeout_s : float; retries : int; degrade : bool }

let default_policy = { timeout_s = 900.0; retries = 1; degrade = true }

type 'a outcome = {
  value : ('a, E.t) result;
  attempts : int;
  degraded : bool;
  wall_time : float;
}

let can_fork = not Sys.win32

let retryable (e : E.t) =
  match e.E.code with E.Worker_timeout | E.Worker_killed -> true | _ -> false

(* The worker writes [Marshal.to_bytes result] on this pipe and exits 0.
   Anything else — truncated payload, nonzero exit, signal death — is an
   infrastructure failure, typed below. *)

let flush_all_output () =
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  flush stdout;
  flush stderr

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigbus then "SIGBUS"
  else string_of_int s

let worker_ctx ~name pairs = ("worker", name) :: pairs

(* Read the pipe to EOF under the deadline. The payload is small (scalars
   plus a possible error), far below PIPE_BUF, so the worker never blocks
   on the write; the select loop exists purely to enforce the watchdog
   while the worker computes. *)
let read_until_eof ~deadline fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let budget =
      match deadline with
      | None -> 0.25
      | Some d -> d -. Unix.gettimeofday ()
    in
    if budget <= 0.0 then `Timeout
    else
      match Unix.select [ fd ] [] [] (Float.min budget 0.25) with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> `Eof (Buffer.to_bytes buf)
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* Worker journal events ride the result pipe next to the result itself
   (the same transport as worker telemetry profiles): the worker captures
   them in memory and the parent appends them to the on-disk journal. *)
let run_forked ~timeout_s ~name ~degraded f =
  flush_all_output ();
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (* Worker. Never let anything escape: compute, flush the inherited
         stdio so experiment output lands before the parent resumes, ship
         the result, and _exit without running parent atexit handlers. *)
      Unix.close rd;
      Journal.begin_capture ();
      (* The trace context rode the fork in process memory; derive a child
         span so the worker's events link back to the spawning request. *)
      Tracectx.set (Option.map Tracectx.child (Tracectx.current ()));
      let result = E.protect ~stage:E.Experiment (fun () -> f ~degraded) in
      let events = Journal.end_capture () in
      flush_all_output ();
      (try
         let payload =
           Marshal.to_bytes
             ((result, events) : (_, E.t) result * Journal.event list)
             []
         in
         let oc = Unix.out_channel_of_descr wr in
         output_bytes oc payload;
         flush oc
       with _ -> ());
      Unix._exit 0
  | pid -> (
      Unix.close wr;
      if Journal.enabled () then
        Journal.emit ~level:Debug Journal.Worker_spawned
          [
            ("worker", name);
            ("worker_pid", string_of_int pid);
            ("timeout_s", Printf.sprintf "%.1f" timeout_s);
            ("degraded", string_of_bool degraded);
          ];
      let deadline =
        if timeout_s > 0.0 then Some (Unix.gettimeofday () +. timeout_s)
        else None
      in
      let read_result = read_until_eof ~deadline rd in
      Unix.close rd;
      match read_result with
      | `Timeout ->
          Unix.kill pid Sys.sigkill;
          ignore (waitpid_retry pid);
          if Journal.enabled () then
            Journal.emit ~level:Warn Journal.Worker_timeout
              [
                ("worker", name);
                ("worker_pid", string_of_int pid);
                ("timeout_s", Printf.sprintf "%.1f" timeout_s);
              ];
          Result.Error
            (E.makef
               ~context:
                 (worker_ctx ~name
                    [ ("timeout_s", Printf.sprintf "%.1f" timeout_s) ])
               E.Experiment E.Worker_timeout
               "worker exceeded its %.1fs wall-clock watchdog and was killed"
               timeout_s)
      | `Eof payload -> (
          let killed detail =
            if Journal.enabled () then
              Journal.emit ~level:Warn Journal.Worker_killed
                (("worker", name)
                :: ("worker_pid", string_of_int pid)
                :: detail)
          in
          match waitpid_retry pid with
          | Unix.WEXITED 0 -> (
              match
                (Marshal.from_bytes payload 0
                  : (_, E.t) result * Journal.event list)
              with
              | result, events ->
                  Journal.append_events events;
                  if Journal.enabled () then
                    Journal.emit ~level:Debug Journal.Worker_exited
                      [
                        ("worker", name); ("worker_pid", string_of_int pid);
                      ];
                  result
              | exception _ ->
                  killed [ ("exit", "0") ];
                  Result.Error
                    (E.make
                       ~context:(worker_ctx ~name [])
                       E.Experiment E.Internal
                       "worker exited cleanly but returned no result"))
          | Unix.WEXITED code ->
              killed [ ("exit", string_of_int code) ];
              Result.Error
                (E.makef
                   ~context:
                     (worker_ctx ~name [ ("exit", string_of_int code) ])
                   E.Experiment E.Worker_killed "worker exited with code %d"
                   code)
          | Unix.WSIGNALED s | Unix.WSTOPPED s ->
              killed [ ("signal", signal_name s) ];
              Result.Error
                (E.makef
                   ~context:(worker_ctx ~name [ ("signal", signal_name s) ])
                   E.Experiment E.Worker_killed "worker killed by signal %s"
                   (signal_name s))))

(* ------------------------------------------------------------------ *)
(* Non-blocking workers: the server's event loop multiplexes many of
   these at once, polling each result pipe as select reports it readable
   and killing overdue workers itself. The child-side contract matches
   run_forked, with two additions: the payload carries an optional
   telemetry profile (the worker resets its registry on entry and
   snapshots on exit, so per-request profiles merge cleanly under a
   caller-chosen span prefix), and the child closes caller-supplied fds
   (listening sockets, peer connections) it must not keep alive. *)

type 'a async = {
  a_pid : int;
  a_fd : Unix.file_descr;
  a_name : string;
  a_buf : Buffer.t;
  a_telemetry_prefix : string list option;
  mutable a_reaped : bool;
}

let spawn_async ?telemetry_prefix ?(close_in_child = []) ~name f =
  flush_all_output ();
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        close_in_child;
      Journal.begin_capture ();
      Tracectx.set (Option.map Tracectx.child (Tracectx.current ()));
      let profiled = telemetry_prefix <> None && Telemetry.enabled () in
      if profiled then Telemetry.reset ();
      let result = E.protect ~stage:E.Experiment f in
      let profile = if profiled then Some (Telemetry.snapshot ()) else None in
      let events = Journal.end_capture () in
      flush_all_output ();
      (try
         let payload =
           Marshal.to_bytes
             ((result, events, profile)
               : (_, E.t) result * Journal.event list * Telemetry.profile option)
             []
         in
         let oc = Unix.out_channel_of_descr wr in
         output_bytes oc payload;
         flush oc
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close wr;
      Unix.set_nonblock rd;
      if Journal.enabled () then
        Journal.emit ~level:Debug Journal.Worker_spawned
          [ ("worker", name); ("worker_pid", string_of_int pid) ];
      {
        a_pid = pid;
        a_fd = rd;
        a_name = name;
        a_buf = Buffer.create 256;
        a_telemetry_prefix = telemetry_prefix;
        a_reaped = false;
      }

let async_pid a = a.a_pid
let async_fd a = a.a_fd

(* Classify a finished worker exactly like run_forked does, merging the
   shipped journal events and telemetry profile on the clean path. *)
let async_finish a =
  a.a_reaped <- true;
  (try Unix.close a.a_fd with Unix.Unix_error _ -> ());
  let name = a.a_name in
  let pid = a.a_pid in
  let killed detail =
    if Journal.enabled () then
      Journal.emit ~level:Warn Journal.Worker_killed
        (("worker", name) :: ("worker_pid", string_of_int pid) :: detail)
  in
  match waitpid_retry pid with
  | Unix.WEXITED 0 -> (
      match
        (Marshal.from_bytes (Buffer.to_bytes a.a_buf) 0
          : (_, E.t) result * Journal.event list * Telemetry.profile option)
      with
      | result, events, profile ->
          Journal.append_events events;
          (match (profile, a.a_telemetry_prefix) with
          | Some p, Some prefix -> Telemetry.merge ~prefix p
          | _ -> ());
          if Journal.enabled () then
            Journal.emit ~level:Debug Journal.Worker_exited
              [ ("worker", name); ("worker_pid", string_of_int pid) ];
          result
      | exception _ ->
          killed [ ("exit", "0") ];
          Result.Error
            (E.make
               ~context:(worker_ctx ~name [])
               E.Experiment E.Internal
               "worker exited cleanly but returned no result"))
  | Unix.WEXITED code ->
      killed [ ("exit", string_of_int code) ];
      Result.Error
        (E.makef
           ~context:(worker_ctx ~name [ ("exit", string_of_int code) ])
           E.Experiment E.Worker_killed "worker exited with code %d" code)
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      killed [ ("signal", signal_name s) ];
      Result.Error
        (E.makef
           ~context:(worker_ctx ~name [ ("signal", signal_name s) ])
           E.Experiment E.Worker_killed "worker killed by signal %s"
           (signal_name s))

let async_step a =
  if a.a_reaped then
    `Done
      (Result.Error
         (E.make
            ~context:(worker_ctx ~name:a.a_name [])
            E.Experiment E.Internal "worker result consumed twice"))
  else
    let chunk = Bytes.create 4096 in
    let rec drain () =
      match Unix.read a.a_fd chunk 0 (Bytes.length chunk) with
      | 0 -> `Done (async_finish a)
      | n ->
          Buffer.add_subbytes a.a_buf chunk 0 n;
          drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      | exception Unix.Unix_error _ -> `Done (async_finish a)
    in
    drain ()

let async_abort a =
  if not a.a_reaped then begin
    a.a_reaped <- true;
    (try Unix.close a.a_fd with Unix.Unix_error _ -> ());
    (try Unix.kill a.a_pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (waitpid_retry a.a_pid)
  end

let run_inprocess ~degraded f =
  E.protect ~stage:E.Experiment (fun () -> f ~degraded)

let run ?(policy = default_policy) ~name f =
  let t0 = Unix.gettimeofday () in
  let attempt ~degraded =
    if can_fork then
      run_forked ~timeout_s:policy.timeout_s ~name ~degraded f
    else run_inprocess ~degraded f
  in
  let rec go n =
    let degraded = policy.degrade && n > 1 in
    Telemetry.count "supervisor.attempts" 1;
    match attempt ~degraded with
    | Ok v ->
        {
          value = Ok v;
          attempts = n;
          degraded;
          wall_time = Unix.gettimeofday () -. t0;
        }
    | Result.Error e when n <= policy.retries && retryable e ->
        Telemetry.count "supervisor.retries" 1;
        let msg =
          Format.asprintf "supervisor: %s attempt %d failed (%a), retrying%s"
            name n E.pp e
            (if policy.degrade then " degraded" else "")
        in
        (* With the journal on, the retry notice is an event (echoed per
           --log-level); without it, keep the historical stderr warning. *)
        if Journal.enabled () then
          Journal.emit ~level:Info ~msg Journal.Worker_retry
            [
              ("worker", name);
              ("attempt", string_of_int n);
              ("error", E.code_name e.E.code);
            ]
        else Format.eprintf "%s@." msg;
        go (n + 1)
    | Result.Error e ->
        {
          value = Result.Error (E.with_context e [ ("attempts", string_of_int n) ]);
          attempts = n;
          degraded;
          wall_time = Unix.gettimeofday () -. t0;
        }
  in
  go 1
