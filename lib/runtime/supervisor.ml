module E = Cnt_error

type policy = { timeout_s : float; retries : int; degrade : bool }

let default_policy = { timeout_s = 900.0; retries = 1; degrade = true }

type 'a outcome = {
  value : ('a, E.t) result;
  attempts : int;
  degraded : bool;
  wall_time : float;
}

let can_fork = not Sys.win32

let retryable (e : E.t) =
  match e.E.code with E.Worker_timeout | E.Worker_killed -> true | _ -> false

(* The worker writes [Marshal.to_bytes result] on this pipe and exits 0.
   Anything else — truncated payload, nonzero exit, signal death — is an
   infrastructure failure, typed below. *)

let flush_all_output () =
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  flush stdout;
  flush stderr

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigbus then "SIGBUS"
  else string_of_int s

let worker_ctx ~name pairs = ("worker", name) :: pairs

(* Read the pipe to EOF under the deadline. The payload is small (scalars
   plus a possible error), far below PIPE_BUF, so the worker never blocks
   on the write; the select loop exists purely to enforce the watchdog
   while the worker computes. *)
let read_until_eof ~deadline fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let budget =
      match deadline with
      | None -> 0.25
      | Some d -> d -. Unix.gettimeofday ()
    in
    if budget <= 0.0 then `Timeout
    else
      match Unix.select [ fd ] [] [] (Float.min budget 0.25) with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> `Eof (Buffer.to_bytes buf)
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* Worker journal events ride the result pipe next to the result itself
   (the same transport as worker telemetry profiles): the worker captures
   them in memory and the parent appends them to the on-disk journal. *)
let run_forked ~timeout_s ~name ~degraded f =
  flush_all_output ();
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (* Worker. Never let anything escape: compute, flush the inherited
         stdio so experiment output lands before the parent resumes, ship
         the result, and _exit without running parent atexit handlers. *)
      Unix.close rd;
      Journal.begin_capture ();
      let result = E.protect ~stage:E.Experiment (fun () -> f ~degraded) in
      let events = Journal.end_capture () in
      flush_all_output ();
      (try
         let payload =
           Marshal.to_bytes
             ((result, events) : (_, E.t) result * Journal.event list)
             []
         in
         let oc = Unix.out_channel_of_descr wr in
         output_bytes oc payload;
         flush oc
       with _ -> ());
      Unix._exit 0
  | pid -> (
      Unix.close wr;
      if Journal.enabled () then
        Journal.emit ~level:Debug Journal.Worker_spawned
          [
            ("worker", name);
            ("worker_pid", string_of_int pid);
            ("timeout_s", Printf.sprintf "%.1f" timeout_s);
            ("degraded", string_of_bool degraded);
          ];
      let deadline =
        if timeout_s > 0.0 then Some (Unix.gettimeofday () +. timeout_s)
        else None
      in
      let read_result = read_until_eof ~deadline rd in
      Unix.close rd;
      match read_result with
      | `Timeout ->
          Unix.kill pid Sys.sigkill;
          ignore (waitpid_retry pid);
          if Journal.enabled () then
            Journal.emit ~level:Warn Journal.Worker_timeout
              [
                ("worker", name);
                ("worker_pid", string_of_int pid);
                ("timeout_s", Printf.sprintf "%.1f" timeout_s);
              ];
          Result.Error
            (E.makef
               ~context:
                 (worker_ctx ~name
                    [ ("timeout_s", Printf.sprintf "%.1f" timeout_s) ])
               E.Experiment E.Worker_timeout
               "worker exceeded its %.1fs wall-clock watchdog and was killed"
               timeout_s)
      | `Eof payload -> (
          let killed detail =
            if Journal.enabled () then
              Journal.emit ~level:Warn Journal.Worker_killed
                (("worker", name)
                :: ("worker_pid", string_of_int pid)
                :: detail)
          in
          match waitpid_retry pid with
          | Unix.WEXITED 0 -> (
              match
                (Marshal.from_bytes payload 0
                  : (_, E.t) result * Journal.event list)
              with
              | result, events ->
                  Journal.append_events events;
                  if Journal.enabled () then
                    Journal.emit ~level:Debug Journal.Worker_exited
                      [
                        ("worker", name); ("worker_pid", string_of_int pid);
                      ];
                  result
              | exception _ ->
                  killed [ ("exit", "0") ];
                  Result.Error
                    (E.make
                       ~context:(worker_ctx ~name [])
                       E.Experiment E.Internal
                       "worker exited cleanly but returned no result"))
          | Unix.WEXITED code ->
              killed [ ("exit", string_of_int code) ];
              Result.Error
                (E.makef
                   ~context:
                     (worker_ctx ~name [ ("exit", string_of_int code) ])
                   E.Experiment E.Worker_killed "worker exited with code %d"
                   code)
          | Unix.WSIGNALED s | Unix.WSTOPPED s ->
              killed [ ("signal", signal_name s) ];
              Result.Error
                (E.makef
                   ~context:(worker_ctx ~name [ ("signal", signal_name s) ])
                   E.Experiment E.Worker_killed "worker killed by signal %s"
                   (signal_name s))))

let run_inprocess ~degraded f =
  E.protect ~stage:E.Experiment (fun () -> f ~degraded)

let run ?(policy = default_policy) ~name f =
  let t0 = Unix.gettimeofday () in
  let attempt ~degraded =
    if can_fork then
      run_forked ~timeout_s:policy.timeout_s ~name ~degraded f
    else run_inprocess ~degraded f
  in
  let rec go n =
    let degraded = policy.degrade && n > 1 in
    Telemetry.count "supervisor.attempts" 1;
    match attempt ~degraded with
    | Ok v ->
        {
          value = Ok v;
          attempts = n;
          degraded;
          wall_time = Unix.gettimeofday () -. t0;
        }
    | Result.Error e when n <= policy.retries && retryable e ->
        Telemetry.count "supervisor.retries" 1;
        let msg =
          Format.asprintf "supervisor: %s attempt %d failed (%a), retrying%s"
            name n E.pp e
            (if policy.degrade then " degraded" else "")
        in
        (* With the journal on, the retry notice is an event (echoed per
           --log-level); without it, keep the historical stderr warning. *)
        if Journal.enabled () then
          Journal.emit ~level:Info ~msg Journal.Worker_retry
            [
              ("worker", name);
              ("attempt", string_of_int n);
              ("error", E.code_name e.E.code);
            ]
        else Format.eprintf "%s@." msg;
        go (n + 1)
    | Result.Error e ->
        {
          value = Result.Error (E.with_context e [ ("attempts", string_of_int n) ]);
          attempts = n;
          degraded;
          wall_time = Unix.gettimeofday () -. t0;
        }
  in
  go 1
