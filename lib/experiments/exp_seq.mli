(** Experiment E12 (extension): clocked circuits.

    The paper evaluates combinational blocks; this extension closes the
    loop for registered designs. A parallel CRC-32 engine (pure XOR trees
    feeding 32 registers — the extreme case of the paper's "circuits that
    contain binate operations") is mapped with the three libraries
    including transmission-gate flip-flops; power is estimated by
    cycle-accurate simulation of the mapped netlist so the state
    distribution (not a uniform-input assumption) drives the activity, and
    the clock tree, register switching and register leakage are charged
    explicitly. The ambipolar register needs no complement-clock rail,
    which shows up directly in the clock power. *)

type row = { library : string; report : Techmap.Seqmap.report }

val run : ?data_width:int -> ?cycles:int -> unit -> row list
val print : Format.formatter -> row list -> unit

val scalars : row list -> (string * float) list
(** Manifest scalars per library: gate count, energy per cycle (fJ), clock
    power (uW). *)
