module A = Aigs.Aig
module E = Techmap.Estimate
module G = Cell.Genlib

type row = { name : string; description : string; results : (string * E.report) list }

type summary = {
  rows : row list;
  averages : (string * E.report) list;
  improvement_vs_cmos : (string * (string * float) list) list;
}

module T = Runtime.Telemetry

let run ?(patterns = E.default_patterns) ?(seed = 42L) ?(circuits = Circuits.Suite.all) ?(verify = true) () =
  let matchlibs = List.map (fun lib -> (lib, Techmap.Matchlib.build lib)) (G.libraries ()) in
  let rows =
    List.map
      (fun (entry : Circuits.Suite.entry) ->
        T.with_span ("circuit." ^ entry.Circuits.Suite.name) (fun () ->
        let nl = entry.Circuits.Suite.generate () in
        (* Well-formedness gate before mapping: a malformed generator output
           fails here with a typed netlist/* error instead of surfacing as a
           cryptic mapper crash. *)
        let (_ : Nets.Check.report) = Nets.Check.check_exn nl in
        let aig = A.of_netlist nl in
        let opt = T.with_span "synth.resyn2rs" (fun () -> Aigs.Opt.resyn2rs aig) in
        let results =
          List.map
            (fun (lib, ml) ->
              let mapped = Techmap.Mapper.map ml opt in
              if verify && not (Techmap.Mapped.check mapped nl ~patterns:512 ~seed:99L)
              then
                Runtime.Cnt_error.failf
                  ~context:
                    [ ("circuit", entry.Circuits.Suite.name); ("library", lib.G.name) ]
                  Runtime.Cnt_error.Techmap Runtime.Cnt_error.Mismatch
                  "Table1: %s mapped with %s is not equivalent"
                  entry.Circuits.Suite.name lib.G.name;
              (lib.G.name, E.run ~patterns ~seed mapped))
            matchlibs
        in
        {
          name = entry.Circuits.Suite.name;
          description = entry.Circuits.Suite.description;
          results;
        }))
      circuits
  in
  let lib_names = List.map (fun (lib, _) -> lib.G.name) matchlibs in
  let mean sel name =
    let values = List.map (fun r -> sel (List.assoc name r.results)) rows in
    List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
  in
  let averages =
    List.map
      (fun name ->
        ( name,
          {
            E.gates = int_of_float (mean (fun r -> float_of_int r.E.gates) name +. 0.5);
            area = mean (fun r -> r.E.area) name;
            delay = mean (fun r -> r.E.delay) name;
            dynamic = mean (fun r -> r.E.dynamic) name;
            short_circuit = mean (fun r -> r.E.short_circuit) name;
            static = mean (fun r -> r.E.static) name;
            gate_leak = mean (fun r -> r.E.gate_leak) name;
            total = mean (fun r -> r.E.total) name;
            edp = mean (fun r -> r.E.edp) name;
          } ))
      lib_names
  in
  let cmos_avg = List.assoc "cmos" averages in
  let improvement_vs_cmos =
    List.filter_map
      (fun (name, avg) ->
        if name = "cmos" then None
        else
          Some
            ( name,
              [
                ("gates", 1.0 -. (float_of_int avg.E.gates /. float_of_int cmos_avg.E.gates));
                ("delay", cmos_avg.E.delay /. avg.E.delay);
                ("pd", 1.0 -. (avg.E.dynamic /. cmos_avg.E.dynamic));
                ("ps", 1.0 -. (avg.E.static /. cmos_avg.E.static));
                ("pt", 1.0 -. (avg.E.total /. cmos_avg.E.total));
                ("edp", cmos_avg.E.edp /. avg.E.edp);
              ] ))
      averages
  in
  { rows; averages; improvement_vs_cmos }

let print ppf summary =
  let metric_cells (r : E.report) =
    [
      string_of_int r.E.gates;
      Report.f1 (r.E.delay *. 1e12);
      Report.f2 (r.E.dynamic *. 1e6);
      Report.f2 (r.E.static *. 1e6);
      Report.f2 (r.E.total *. 1e6);
      Report.f2 (r.E.edp *. 1e24);
    ]
  in
  let lib_names = List.map fst summary.averages in
  let headers =
    Array.of_list
      ("Circuit" :: "Function"
      :: List.concat_map
           (fun lib ->
             let tag =
               match lib with
               | "cntfet-generalized" -> "GEN"
               | "cntfet-conventional" -> "CNV"
               | "cmos" -> "CMOS"
               | other -> other
             in
             List.map
               (fun m -> tag ^ ":" ^ m)
               [ "No."; "Delay"; "PD"; "PS"; "PT"; "EDP" ])
           lib_names)
  in
  let rows =
    List.map
      (fun r ->
        Array.of_list
          (r.name :: r.description
          :: List.concat_map (fun lib -> metric_cells (List.assoc lib r.results)) lib_names))
      summary.rows
  in
  let avg_row =
    Array.of_list
      ("Average" :: ""
      :: List.concat_map (fun lib -> metric_cells (List.assoc lib summary.averages)) lib_names)
  in
  Report.render ppf
    {
      Report.title =
        "E1 / Table 1: gate count, delay (ps), PD (uW), PS (uW), PT (uW), EDP (1e-24 J.s)";
      headers;
      rows = rows @ [ avg_row ];
    };
  List.iter
    (fun (lib, metrics) ->
      Format.fprintf ppf "Improvement of %s vs CMOS: " lib;
      List.iter
        (fun (metric, v) ->
          match metric with
          | "delay" | "edp" -> Format.fprintf ppf "%s %s  " metric (Report.times v)
          | _ -> Format.fprintf ppf "%s %s  " metric (Report.pct v))
        metrics;
      Format.fprintf ppf "@.")
    summary.improvement_vs_cmos;
  Format.fprintf ppf
    "(paper: GEN vs CMOS gates -24.2%%, delay 7.1x, PD -53.4%%, PS -94.5%%, PT -57.1%%, EDP 19.5x;@.";
  Format.fprintf ppf
    " CNV vs CMOS gates -3.2%%, delay 5.1x, PD -30.9%%, PS -92.7%%, PT -36.7%%, EDP 8.1x)@."

(* The headline claims of Table 1 as manifest scalars: per-library averages
   plus the improvement-vs-CMOS percentages (PT saving, EDP ratio). *)
let scalars summary =
  let averages =
    List.concat_map
      (fun (lib, (avg : E.report)) ->
        [
          (lib ^ ".gates", float_of_int avg.E.gates);
          (lib ^ ".delay_ps", avg.E.delay *. 1e12);
          (lib ^ ".total_uW", avg.E.total *. 1e6);
          (lib ^ ".edp_1e-24Js", avg.E.edp *. 1e24);
        ])
      summary.averages
  in
  let improvements =
    List.concat_map
      (fun (lib, metrics) ->
        List.map (fun (m, v) -> (lib ^ ".vs_cmos." ^ m, v)) metrics)
      summary.improvement_vs_cmos
  in
  averages @ improvements
